#!/bin/sh
# bench_compare.sh — benchstat-style comparison of the kernel/scheduler
# fast-path benchmarks against the committed baseline.
#
#   ./bench_compare.sh             compare current ns/op to BENCH_BASELINE.json
#                                  and the telemetry per-stage latency table to
#                                  STAGE_BASELINE.txt
#   ./bench_compare.sh -update     re-measure and rewrite both baselines
#   ./bench_compare.sh -soak-only  run just the dwcsd soak gate (CI uses this
#                                  for the real-traffic job; respects SOAK_DIR
#                                  and SOAK_FLAGS)
#
# The bench baseline is a flat JSON object: one "BenchmarkName": ns_per_op
# pair per line, so plain awk can read it and diffs stay line-per-benchmark.
# The stage baseline is the exact stages.txt of the deterministic 5 s
# telemetry run — simulated time, so any drift is a real behavior change,
# not noise. The overload baseline is likewise the exact ladder.txt of the
# deterministic 10 s overload sweep, and the chaos baseline the exact
# summary/recovery/violations output of the deterministic 6 s fleet-chaos
# run — a drift there means the fault plan, a migration decision, or the
# loss-window accounting changed. The soak baseline is different in kind:
# dwcsd -soak runs real UDP sockets on a wall clock, so SOAK_BASELINE.txt
# holds goodput/jitter/drop thresholds instead of exact bytes, and
# check_soak gates the summary line against them (set SOAK_DIR to keep the
# run's artifact directory for upload). The fleet-obs baseline pins the 64-card
# in-band observability run (rollups, scrape accounting, timeline excerpt,
# stitched traces); the same run also gates scrape overhead: in-band
# telemetry bytes must stay <= 2% of media goodput. The ctrl-chaos baseline
# pins the replicated-control-plane drill (controller crash + split brain:
# takeover, fencing, journal reconcile) and gates journal + checkpoint
# replication traffic at <= 2% of media bytes the same way.
set -e
cd "$(dirname "$0")"

BASELINE=BENCH_BASELINE.json
STAGE_BASELINE=STAGE_BASELINE.txt
OVERLOAD_BASELINE=OVERLOAD_BASELINE.txt
CHAOS_BASELINE=CHAOS_BASELINE.txt
FLEETOBS_BASELINE=FLEETOBS_BASELINE.txt
CTRLCHAOS_BASELINE=CTRLCHAOS_BASELINE.txt
SOAK_BASELINE=SOAK_BASELINE.txt
BENCHES='BenchmarkEngine|BenchmarkSimulationThroughput|BenchmarkMissScan|BenchmarkParallelEngine'

run_benches() {
	go test -run xxx -bench "$BENCHES" -benchmem -benchtime 0.5s ./... 2>/dev/null
}

run_stages() {
	tmp=$(mktemp -d)
	go run ./cmd/reprogen -telemetry -telemetry-out "$tmp" -dur 5 >/dev/null
	cat "$tmp/stages.txt"
	rm -rf "$tmp"
}

run_overload() {
	tmp=$(mktemp -d)
	go run ./cmd/reprogen -overload -overload-out "$tmp" -dur 10 >/dev/null
	cat "$tmp/ladder.txt"
	rm -rf "$tmp"
}

run_chaos() {
	go run ./cmd/clustersim -fleet-chaos -dur 6 -workers 1 2>/dev/null
}

run_fleetobs() {
	go run ./cmd/clustersim -fleet-obs -cards 64 -dur 6 -workers 1 2>/dev/null
}

run_ctrlchaos() {
	go run ./cmd/clustersim -ctrl-chaos -dur 8 -workers 1 2>/dev/null
}

# run_soak is the short CI shape: hundreds of sessions, flash arrivals,
# churn, ~2s of traffic. SOAK_DIR (optional) keeps the artifact directory
# so CI can upload it on failure; SOAK_FLAGS (optional) appends extra dwcsd
# flags — CI's regression self-test injects "-throttle 2ms" through it.
run_soak() {
	soak_out=${SOAK_DIR:-$(mktemp -d)}
	# shellcheck disable=SC2086 # SOAK_FLAGS is intentionally word-split
	go run ./cmd/dwcsd -soak 300 -period 20ms -dur 2s -churn 0.25 -flash \
		-artifacts "$soak_out" ${SOAK_FLAGS:-} 2>/dev/null
}

# check_obs_overhead fails when the run's in-band telemetry bytes exceed
# 2% of media goodput (the "in-band obs=...B media=...B overhead=..%" line
# of the scrape accounting table).
check_obs_overhead() {
	awk -F'overhead=' '/in-band obs=/ {
		pct = $2 + 0
		printf "scrape overhead: %s%% of media goodput (gate: 2%%)\n", pct
		found = 1
		if (pct > 2.0) { print "error: in-band scrape overhead above 2% gate" > "/dev/stderr"; exit 1 }
	}
	END { if (!found) { print "error: no overhead line in fleet-obs output" > "/dev/stderr"; exit 1 } }'
}

# check_journal_overhead fails when the control plane's journal + checkpoint
# replication traffic exceeds 2% of media bytes (the "ctrl-ha: ...
# journal=...B media=...B overhead=..%" summary line).
check_journal_overhead() {
	awk -F'overhead=' '/ctrl-ha:.*journal=/ {
		pct = $2 + 0
		printf "journal overhead: %s%% of media bytes (gate: 2%%)\n", pct
		found = 1
		if (pct > 2.0) { print "error: control-plane journal overhead above 2% gate" > "/dev/stderr"; exit 1 }
	}
	END { if (!found) { print "error: no ctrl-ha overhead line in ctrl-chaos output" > "/dev/stderr"; exit 1 } }'
}

# check_soak gates the soak summary line against the thresholds pinned in
# SOAK_BASELINE.txt: per-session goodput p50 must stay above the floor,
# jitter p95 and drop ratio below their ceilings.
check_soak() {
	awk -v baseline="$SOAK_BASELINE" '
	BEGIN {
		while ((getline line < baseline) > 0) {
			if (line ~ /^#/ || line == "") continue
			n = split(line, f, " ")
			if (n == 2) gate[f[1]] = f[2]
		}
		if (!("min_goodput_kbps_p50" in gate)) { print "error: no min_goodput_kbps_p50 in " baseline > "/dev/stderr"; bad = 1 }
	}
	/^soak summary:/ {
		found = 1
		for (i = 1; i <= NF; i++) {
			if (split($i, kv, "=") == 2) v[kv[1]] = kv[2] + 0
		}
		printf "soak gate: goodput_kbps_p50=%s (floor %s), jitter_ms_p95=%s (ceiling %s), drop_ratio=%s (ceiling %s)\n", \
			v["goodput_kbps_p50"], gate["min_goodput_kbps_p50"], \
			v["jitter_ms_p95"], gate["max_jitter_ms_p95"], \
			v["drop_ratio"], gate["max_drop_ratio"]
		if (v["goodput_kbps_p50"] < gate["min_goodput_kbps_p50"]) { print "error: session goodput p50 below the soak floor" > "/dev/stderr"; bad = 1 }
		if (v["jitter_ms_p95"] > gate["max_jitter_ms_p95"]) { print "error: jitter p95 above the soak ceiling" > "/dev/stderr"; bad = 1 }
		if (v["drop_ratio"] > gate["max_drop_ratio"]) { print "error: drop ratio above the soak ceiling" > "/dev/stderr"; bad = 1 }
	}
	END {
		if (!found) { print "error: no soak summary line in dwcsd output" > "/dev/stderr"; exit 1 }
		exit bad
	}'
}

if [ "$1" = "-update" ]; then
	run_stages > "$STAGE_BASELINE"
	echo "wrote $STAGE_BASELINE"
	run_overload > "$OVERLOAD_BASELINE"
	echo "wrote $OVERLOAD_BASELINE"
	run_chaos > "$CHAOS_BASELINE"
	echo "wrote $CHAOS_BASELINE"
	run_fleetobs > "$FLEETOBS_BASELINE"
	echo "wrote $FLEETOBS_BASELINE"
	run_ctrlchaos > "$CTRLCHAOS_BASELINE"
	echo "wrote $CTRLCHAOS_BASELINE"
	run_benches | awk '
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		lines[++n] = sprintf("  \"%s\": %s", name, $3)
	}
	END {
		print "{"
		for (i = 1; i <= n; i++) printf "%s%s\n", lines[i], (i < n ? "," : "")
		print "}"
	}' > "$BASELINE"
	echo "wrote $BASELINE"
	exit 0
fi

if [ "$1" = "-soak-only" ]; then
	if [ ! -f "$SOAK_BASELINE" ]; then
		echo "no $SOAK_BASELINE — commit the soak thresholds" >&2
		exit 1
	fi
	run_soak | check_soak
	exit 0
fi

if [ ! -f "$BASELINE" ]; then
	echo "no $BASELINE — run ./bench_compare.sh -update first" >&2
	exit 1
fi

# Per-stage latency table: simulated time, so it must match exactly.
if [ -f "$STAGE_BASELINE" ]; then
	if run_stages | diff -u "$STAGE_BASELINE" -; then
		echo "stage table: unchanged"
	else
		echo "stage table drifted from $STAGE_BASELINE (rerun with -update if intended)" >&2
		exit 1
	fi
else
	echo "no $STAGE_BASELINE — run ./bench_compare.sh -update first" >&2
fi

# Overload ladder table: also simulated time, also exact.
if [ -f "$OVERLOAD_BASELINE" ]; then
	if run_overload | diff -u "$OVERLOAD_BASELINE" -; then
		echo "overload ladder: unchanged"
	else
		echo "overload ladder drifted from $OVERLOAD_BASELINE (rerun with -update if intended)" >&2
		exit 1
	fi
else
	echo "no $OVERLOAD_BASELINE — run ./bench_compare.sh -update first" >&2
fi

# Fleet-chaos recovery tables: simulated time and a seeded fault plan, so
# they must match exactly too.
if [ -f "$CHAOS_BASELINE" ]; then
	if run_chaos | diff -u "$CHAOS_BASELINE" -; then
		echo "fleet-chaos tables: unchanged"
	else
		echo "fleet-chaos tables drifted from $CHAOS_BASELINE (rerun with -update if intended)" >&2
		exit 1
	fi
else
	echo "no $CHAOS_BASELINE — run ./bench_compare.sh -update first" >&2
fi

# Fleet-obs tables: the 64-card in-band scrape run is deterministic too, and
# its telemetry overhead is gated at 2% of media goodput.
if [ -f "$FLEETOBS_BASELINE" ]; then
	obs_out=$(run_fleetobs)
	if printf '%s\n' "$obs_out" | diff -u "$FLEETOBS_BASELINE" -; then
		echo "fleet-obs tables: unchanged"
	else
		echo "fleet-obs tables drifted from $FLEETOBS_BASELINE (rerun with -update if intended)" >&2
		exit 1
	fi
	printf '%s\n' "$obs_out" | check_obs_overhead
else
	echo "no $FLEETOBS_BASELINE — run ./bench_compare.sh -update first" >&2
fi

# Ctrl-chaos tables: the replicated-control-plane drill is deterministic, and
# its journal replication overhead is gated at 2% of media bytes.
if [ -f "$CTRLCHAOS_BASELINE" ]; then
	ha_out=$(run_ctrlchaos)
	if printf '%s\n' "$ha_out" | diff -u "$CTRLCHAOS_BASELINE" -; then
		echo "ctrl-chaos tables: unchanged"
	else
		echo "ctrl-chaos tables drifted from $CTRLCHAOS_BASELINE (rerun with -update if intended)" >&2
		exit 1
	fi
	printf '%s\n' "$ha_out" | check_journal_overhead
else
	echo "no $CTRLCHAOS_BASELINE — run ./bench_compare.sh -update first" >&2
fi

# Soak gate: real sockets on a wall clock, so thresholds instead of exact
# bytes. SOAK_BASELINE.txt is hand-pinned, not regenerated by -update.
if [ -f "$SOAK_BASELINE" ]; then
	run_soak | check_soak
else
	echo "no $SOAK_BASELINE — commit the soak thresholds" >&2
	exit 1
fi

run_benches | awk -v baseline="$BASELINE" '
BEGIN {
	while ((getline line < baseline) > 0) {
		gsub(/[",:{}]/, " ", line)
		n = split(line, f, " ")
		if (n >= 2) base[f[1]] = f[2]
	}
	printf "%-42s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
}
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	ns = $3
	if (name in base) {
		d = (ns - base[name]) / base[name] * 100
		printf "%-42s %12.2f %12.2f %+8.1f%%\n", name, base[name], ns, d
		seen[name] = 1
	} else {
		printf "%-42s %12s %12.2f %9s\n", name, "(none)", ns, "new"
		missing[name] = 1
	}
}
END {
	bad = 0
	for (name in base) if (!(name in seen)) {
		printf "%-42s %12.2f %12s %9s\n", name, base[name], "(gone)", "removed"
		gone[name] = 1
	}
	for (name in missing) {
		printf "error: benchmark %s has no baseline key in %s (run ./bench_compare.sh -update to pin it)\n", name, baseline > "/dev/stderr"
		bad = 1
	}
	for (name in gone) {
		printf "error: baseline key %s in %s matched no benchmark (stale key, or a benchmark was removed/renamed)\n", name, baseline > "/dev/stderr"
		bad = 1
	}
	exit bad
}'
