// Package repro is a full reproduction of "A Network Co-processor-Based
// Approach to Scalable Media Streaming in Servers" (Krishnamurthy, Schwan,
// West, Rosu — ICPP 2000): the DWCS media scheduler embedded on i960 RD I2O
// network interfaces inside the DVCM runtime-extension architecture, with
// the obsolete hardware substrate rebuilt as a deterministic discrete-event
// simulation.
//
// The library lives in internal/ packages (see DESIGN.md for the system
// inventory); this root package carries the benchmark harness that
// regenerates every table and figure of the paper's evaluation — run
//
//	go test -bench=. -benchmem
//
// or use cmd/reprogen for the paper-vs-measured comparison tables.
package repro
