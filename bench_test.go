// Benchmark harness: one bench per table and figure of the paper's
// evaluation (§4), plus ablation benches for the design choices called out
// in DESIGN.md §6. Each bench reports the reproduced headline metric via
// b.ReportMetric so `go test -bench=.` output reads side by side with the
// paper's numbers.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/cpu"
	"repro/internal/dwcs"
	"repro/internal/experiments"
	"repro/internal/fixed"
	"repro/internal/i2o"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/transport"
)

// --- Table 1: scheduler microbenchmarks, data cache disabled ---

func benchMicro(b *testing.B, arith cpu.Arithmetic, cacheOn bool, store nic.StoreKind) {
	var m experiments.Microbench
	for i := 0; i < b.N; i++ {
		m = experiments.RunMicrobench(arith, cacheOn, store)
	}
	b.ReportMetric(m.AvgSched.Microseconds(), "µs/frame-sched")
	b.ReportMetric(m.AvgNoSched.Microseconds(), "µs/frame-dispatch")
	b.ReportMetric(m.Overhead().Microseconds(), "µs/sched-overhead")
}

func BenchmarkTable1_SoftFP_CacheOff(b *testing.B) {
	benchMicro(b, cpu.SoftFP, false, nic.StoreDRAM) // paper: 129.67 / 34.6 µs
}

func BenchmarkTable1_Fixed_CacheOff(b *testing.B) {
	benchMicro(b, cpu.FixedPoint, false, nic.StoreDRAM) // paper: 108.48 / 30.35 µs
}

// --- Table 2: data cache enabled ---

func BenchmarkTable2_SoftFP_CacheOn(b *testing.B) {
	benchMicro(b, cpu.SoftFP, true, nic.StoreDRAM) // paper: 115.20 / 31.40 µs
}

func BenchmarkTable2_Fixed_CacheOn(b *testing.B) {
	benchMicro(b, cpu.FixedPoint, true, nic.StoreDRAM) // paper: 94.60 / 27.78 µs
}

// --- Table 3: hardware-queue register file ---

func BenchmarkTable3_HardwareQueues(b *testing.B) {
	benchMicro(b, cpu.FixedPoint, true, nic.StoreHardwareQueue) // paper: 96.48 / 27.80 µs
}

// --- Table 4: critical-path benchmarks ---

func BenchmarkTable4_CriticalPaths(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable4()
	}
	for _, r := range res.Rows {
		b.ReportMetric(r.Measured, "ms/"+r.Name[:strIdx(r.Name)])
	}
}

func strIdx(s string) int {
	for i, c := range s {
		if c == ':' {
			return i
		}
	}
	return len(s)
}

// --- Table 5: PCI card-to-card transfers ---

func BenchmarkTable5_PCITransfers(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable5()
	}
	b.ReportMetric(res.Rows[0].Measured, "µs/mpeg-dma")
	b.ReportMetric(res.Rows[1].Measured, "MB/s")
	b.ReportMetric(res.Rows[2].Measured, "µs/pio-read")
	b.ReportMetric(res.Rows[3].Measured, "µs/pio-write")
}

// --- Headline: host 50 µs vs NI 65 µs ---

func BenchmarkHeadlineOverhead(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunHeadline()
	}
	b.ReportMetric(res.Rows[0].Measured, "µs/host-sched")
	b.ReportMetric(res.Rows[1].Measured, "µs/ni-sched")
}

// --- Figures 6–8: host scheduler under web load ---

const benchFigureDur = experiments.FigureDuration

func BenchmarkFigure6_Utilization(b *testing.B) {
	var h *experiments.HostFigures
	for i := 0; i < b.N; i++ {
		h = experiments.RunHostFigures(benchFigureDur)
	}
	b.ReportMetric(h.Runs[0].Util.Mean(), "%util-noload")
	b.ReportMetric(h.Runs[45].Util.Mean(), "%util-45")
	b.ReportMetric(h.Runs[60].Util.Mean(), "%util-60")
}

func BenchmarkFigure7_HostBandwidth(b *testing.B) {
	var h *experiments.HostFigures
	for i := 0; i < b.N; i++ {
		h = experiments.RunHostFigures(benchFigureDur)
	}
	from, to := experiments.PeakWindow(benchFigureDur)
	b.ReportMetric(h.Runs[0].SettleBW("s1", benchFigureDur), "bps-noload")
	b.ReportMetric(h.Runs[45].SettleBWWindow("s1", from, to), "bps-45")
	b.ReportMetric(h.Runs[60].SettleBWWindow("s1", from, to), "bps-60")
}

func BenchmarkFigure8_HostQueuingDelay(b *testing.B) {
	var h *experiments.HostFigures
	for i := 0; i < b.N; i++ {
		h = experiments.RunHostFigures(benchFigureDur)
	}
	b.ReportMetric(h.Runs[0].QDelay["s1"].Max().Milliseconds(), "ms-noload")
	b.ReportMetric(h.Runs[45].QDelay["s1"].Max().Milliseconds(), "ms-45")
	b.ReportMetric(h.Runs[60].QDelay["s1"].Max().Milliseconds(), "ms-60")
}

// --- Figures 9–10: NI scheduler immunity ---

func BenchmarkFigure9_NIBandwidth(b *testing.B) {
	var f *experiments.NIFigures
	for i := 0; i < b.N; i++ {
		f = experiments.RunNIFigures(30 * sim.Second)
	}
	b.ReportMetric(f.NoLoad.SettleBW("s1", 30*sim.Second), "bps-noload")
	b.ReportMetric(f.Loaded60.SettleBW("s1", 30*sim.Second), "bps-60")
}

func BenchmarkFigure10_NIQueuingDelay(b *testing.B) {
	var f *experiments.NIFigures
	for i := 0; i < b.N; i++ {
		f = experiments.RunNIFigures(30 * sim.Second)
	}
	b.ReportMetric(f.NoLoad.QDelay["s1"].Max().Milliseconds(), "ms-noload")
	b.ReportMetric(f.Loaded60.QDelay["s1"].Max().Milliseconds(), "ms-60")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationPrecedence compares the paper's lowest-window-constraint-
// first ordering against the later EDF-first variant on the microbenchmark
// workload.
func BenchmarkAblationPrecedence(b *testing.B) {
	for _, prec := range []dwcs.Precedence{dwcs.LossFirst, dwcs.EDFFirst} {
		b.Run(prec.String(), func(b *testing.B) {
			clip := mpeg.GenerateDefault()
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(1)
				card := nic.New(eng, nic.Config{Name: "bench", CacheOn: true})
				sched := card.NewBenchScheduler(nic.SchedulerConfig{
					Precedence: prec, WorkConserving: true,
				})
				for s := 0; s < 4; s++ {
					sched.AddStream(dwcs.StreamSpec{ID: s, Period: sim.Second,
						Loss: fixed.New(1, 2), Lossy: true, BufCap: 40})
				}
				for j, f := range clip.Frames {
					sched.Enqueue(j%4, dwcs.Packet{Bytes: f.Size})
				}
				for sched.Schedule().Packet != nil {
				}
			}
		})
	}
}

// BenchmarkAblationSelector compares the four §3.1.1 schedule
// representations (scan, heaps, sorted list, calendar queue) as the stream
// count grows. The calendar requires the EDFFirst precedence, so the whole
// comparison runs under it.
func BenchmarkAblationSelector(b *testing.B) {
	for _, sel := range []dwcs.SelectorKind{dwcs.Scan, dwcs.Heaps, dwcs.SortedList, dwcs.Calendar} {
		for _, streams := range []int{4, 32, 128} {
			b.Run(fmt.Sprintf("%s/streams-%d", sel, streams), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					eng := sim.NewEngine(1)
					card := nic.New(eng, nic.Config{Name: "bench", CacheOn: true})
					sched := card.NewBenchScheduler(nic.SchedulerConfig{
						Selector: sel, Precedence: dwcs.EDFFirst, WorkConserving: true,
					})
					for s := 0; s < streams; s++ {
						sched.AddStream(dwcs.StreamSpec{ID: s, Period: sim.Second,
							Loss: fixed.New(int64(s%3), int64(s%3)+2), Lossy: true, BufCap: 8})
					}
					for j := 0; j < streams*8; j++ {
						sched.Enqueue(j%streams, dwcs.Packet{Bytes: 1000})
					}
					card.Meter.Reset()
					n := 0
					for sched.Schedule().Packet != nil {
						n++
					}
					cycles = card.Meter.Cycles() / int64(n)
				}
				b.ReportMetric(float64(cycles), "i960-cycles/decision")
			})
		}
	}
}

// BenchmarkAblationArithmetic isolates the fraction-arithmetic choice.
func BenchmarkAblationArithmetic(b *testing.B) {
	for _, arith := range []cpu.Arithmetic{cpu.SoftFP, cpu.FixedPoint} {
		b.Run(arith.String(), func(b *testing.B) {
			var m experiments.Microbench
			for i := 0; i < b.N; i++ {
				m = experiments.RunMicrobench(arith, true, nic.StoreDRAM)
			}
			b.ReportMetric(m.AvgSched.Microseconds(), "µs/frame-sched")
		})
	}
}

// BenchmarkAblationStore isolates the descriptor-store choice.
func BenchmarkAblationStore(b *testing.B) {
	for _, store := range []nic.StoreKind{nic.StoreDRAM, nic.StoreHardwareQueue} {
		for _, cache := range []bool{true, false} {
			b.Run(fmt.Sprintf("%s/cache-%v", store, cache), func(b *testing.B) {
				var m experiments.Microbench
				for i := 0; i < b.N; i++ {
					m = experiments.RunMicrobench(cpu.FixedPoint, cache, store)
				}
				b.ReportMetric(m.AvgSched.Microseconds(), "µs/frame-sched")
			})
		}
	}
}

// BenchmarkAblationFramePull compares frames resident in NI memory (the
// paper's single-copy design) against pulling each frame from host memory
// across the PCI bus at dispatch time (§3.1.2's rejected alternative).
func BenchmarkAblationFramePull(b *testing.B) {
	frame := int64(5000)
	for _, pull := range []bool{false, true} {
		name := "ni-resident"
		if pull {
			name = "host-pull"
		}
		b.Run(name, func(b *testing.B) {
			var perFrame sim.Time
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(1)
				seg := bus.New(eng, bus.PCI("pci0"))
				card := nic.New(eng, nic.Config{Name: "bench", CacheOn: true, PCI: seg})
				lapStart := card.Meter.Elapsed()
				const frames = 100
				done := 0
				var step func()
				step = func() {
					if done == frames {
						return
					}
					dispatch := func() {
						card.ChargeDispatch()
						done++
						step()
					}
					if pull {
						seg.DMA(frame, dispatch)
					} else {
						dispatch()
					}
				}
				step()
				eng.Run()
				perFrame = (eng.Now() + card.Meter.Elapsed() - lapStart) / frames
			}
			b.ReportMetric(perFrame.Microseconds(), "µs/frame")
		})
	}
}

// BenchmarkAblationDispatchCoupling compares coupled scheduling+dispatch
// against the decoupled dispatch queue of §3.1.1.
func BenchmarkAblationDispatchCoupling(b *testing.B) {
	for _, queue := range []int{0, 16} {
		name := "coupled"
		if queue > 0 {
			name = "decoupled"
		}
		b.Run(name, func(b *testing.B) {
			var drained sim.Time
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(1)
				seg := bus.New(eng, bus.PCI("pci0"))
				card := nic.New(eng, nic.Config{Name: "bench", CacheOn: true, PCI: seg})
				ext, err := card.LoadScheduler(nic.SchedulerConfig{
					WorkConserving: true, DispatchQueue: queue,
				})
				if err != nil {
					b.Fatal(err)
				}
				ext.AddStream(dwcs.StreamSpec{ID: 1, Period: sim.Second,
					Loss: fixed.New(1, 2), Lossy: true, BufCap: 64})
				for j := 0; j < 50; j++ {
					ext.Enqueue(1, dwcs.Packet{Bytes: 1000})
				}
				for eng.Now() < 5*sim.Second && ext.Sched.Len() > 0 {
					eng.RunUntil(eng.Now() + sim.Millisecond)
				}
				drained = eng.Now()
			}
			b.ReportMetric(drained.Milliseconds(), "ms/drain-50-decisions")
		})
	}
}

// BenchmarkAblationBusSegments compares the paper's separated-segment
// configuration against co-locating web-NI traffic with the scheduler NI.
func BenchmarkAblationBusSegments(b *testing.B) {
	for _, same := range []bool{false, true} {
		name := "separate-segments"
		if same {
			name = "same-segment"
		}
		b.Run(name, func(b *testing.B) {
			var run *experiments.StreamCurves
			for i := 0; i < b.N; i++ {
				run = experiments.RunNILoad(60, 20*sim.Second, same)
			}
			b.ReportMetric(run.SettleBW("s1", 20*sim.Second), "bps")
		})
	}
}

// BenchmarkSchedulerDecision measures the raw Go cost of one DWCS decision
// (library performance, not simulated-hardware time).
func BenchmarkSchedulerDecision(b *testing.B) {
	for _, streams := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("streams-%d", streams), func(b *testing.B) {
			sched := dwcs.New(dwcs.Config{WorkConserving: true})
			for s := 0; s < streams; s++ {
				sched.AddStream(dwcs.StreamSpec{ID: s, Period: sim.Second,
					Loss: fixed.New(1, 2), Lossy: true, BufCap: 4})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sched.Enqueue(i%streams, dwcs.Packet{Bytes: 1000})
				if d := sched.Schedule(); d.Packet == nil {
					b.Fatal("no dispatch")
				}
			}
		})
	}
}

// BenchmarkSimulationThroughput measures how many simulated events per
// second the DES kernel sustains (harness performance).
func BenchmarkSimulationThroughput(b *testing.B) {
	eng := sim.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(sim.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(sim.Microsecond, tick)
	eng.Run()
}

// --- Library microbenchmarks (Go performance, not simulated time) ---

// BenchmarkProtoEncapsulation measures the full Ethernet/IPv4/UDP/media
// encapsulation the real-network path performs per fragment.
func BenchmarkProtoEncapsulation(b *testing.B) {
	frag := make([]byte, proto.MaxMediaPayload)
	frags := proto.FragmentFrame(1, 1, frag)
	b.SetBytes(int64(len(frags[0])))
	var mac proto.MAC
	var ip proto.IP
	for i := 0; i < b.N; i++ {
		wire := proto.BuildMediaPacket(mac, mac, ip, ip, 1, 2, uint16(i), frags[0])
		if _, _, err := proto.ParseMediaPacket(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReassembler measures fragment ingestion and frame completion.
func BenchmarkReassembler(b *testing.B) {
	frame := make([]byte, 3*proto.MaxMediaPayload)
	frags := proto.FragmentFrame(1, 0, frame)
	r := proto.NewReassembler(nil)
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frags {
			if err := r.Ingest(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkI2ORoundTrip measures one host→IOP→host message in simulated
// time per wall iteration.
func BenchmarkI2ORoundTrip(b *testing.B) {
	eng := sim.NewEngine(1)
	iop := i2o.NewIOP(eng, i2o.Config{Name: "iop", PCI: bus.New(eng, bus.PCI("p"))})
	drv := i2o.NewHostDriver(iop)
	done := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drv.Submit(i2o.ExecutiveTID, i2o.FnUtilNop, nil, func(any, uint8) { done++ })
		eng.Run()
	}
	if done != b.N {
		b.Fatalf("completed %d of %d", done, b.N)
	}
}

// BenchmarkTransportThroughput measures reliable-transport delivery over a
// clean simulated link.
func BenchmarkTransportThroughput(b *testing.B) {
	eng := sim.NewEngine(1)
	var snd *transport.Sender
	delivered := 0
	sink := netsim.PortFunc(func(*netsim.Packet) { delivered++ })
	ackIn := netsim.PortFunc(func(p *netsim.Packet) { snd.Deliver(p) })
	ack := netsim.Fast100(eng, "ack", ackIn)
	rcv := transport.NewReceiver(eng, sink, ack, "snd")
	data := netsim.Fast100(eng, "data", rcv)
	snd = transport.NewSender(eng, data, 16, 50*sim.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snd.Send(&netsim.Packet{Bytes: 1400})
	}
	eng.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}
