GO ?= go

.PHONY: all test race bench repro telemetry build clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel harness fans simulation runs across goroutines; the race
# detector is the canary for any shared state leaking between runs.
race:
	$(GO) test -race ./...

# Kernel + scheduler fast-path benchmarks. Compare against the committed
# baseline with ./bench_compare.sh.
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkSimulationThroughput|BenchmarkMissScan' \
		-benchmem -benchtime 0.5s ./...

# Regenerate every table and figure of the paper's evaluation section.
repro:
	$(GO) run ./cmd/reprogen

# Instrumented observability run: Chrome trace JSON, Prometheus text, CSV
# snapshots, per-stage latency table, folded stacks, and cycle attribution,
# written to telemetry-out/. Inspect with ./cmd/tracetool.
telemetry:
	$(GO) run ./cmd/reprogen -telemetry -dur 20

clean:
	$(GO) clean ./...
