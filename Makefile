GO ?= go

.PHONY: all test race bench repro telemetry slo perfgate soak conformance build clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel harness fans simulation runs across goroutines; the race
# detector is the canary for any shared state leaking between runs.
race:
	$(GO) test -race ./...

# Kernel + scheduler fast-path benchmarks. Compare against the committed
# baseline with ./bench_compare.sh.
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkSimulationThroughput|BenchmarkMissScan' \
		-benchmem -benchtime 0.5s ./...

# Regenerate every table and figure of the paper's evaluation section.
repro:
	$(GO) run ./cmd/reprogen

# Instrumented observability run: Chrome trace JSON, Prometheus text, CSV
# snapshots, per-stage latency table, folded stacks, and cycle attribution,
# written to telemetry-out/. Inspect with ./cmd/tracetool.
telemetry:
	$(GO) run ./cmd/reprogen -telemetry -dur 20

# Chaos-diagnostics run: drives one protected scheduler card through a task
# hang, a memory leak, and refused late setups with the flight recorder and
# SLO monitor attached; incident dumps, the SLO health table, and the run-diff
# inputs land in slo-out/. See README "Diagnosing a bad run".
slo:
	$(GO) run ./cmd/reprogen -slo -dur 20

# Run-diff perf gate: regenerate the telemetry stage table and the overload
# ladder, then diff them against the committed baselines with tracetool.
# Exit 3 means a regression past the 10% threshold.
perfgate:
	rm -rf /tmp/perfgate-base /tmp/perfgate-new
	mkdir -p /tmp/perfgate-base /tmp/perfgate-new
	cp STAGE_BASELINE.txt /tmp/perfgate-base/stages.txt
	cp OVERLOAD_BASELINE.txt /tmp/perfgate-base/ladder.txt
	$(GO) run ./cmd/reprogen -telemetry -telemetry-out /tmp/perfgate-tel -dur 5 > /dev/null
	$(GO) run ./cmd/reprogen -overload -overload-out /tmp/perfgate-ov -dur 10 > /dev/null
	cp /tmp/perfgate-tel/stages.txt /tmp/perfgate-new/stages.txt
	cp /tmp/perfgate-ov/ladder.txt /tmp/perfgate-new/ladder.txt
	$(GO) run ./cmd/tracetool -diff /tmp/perfgate-base /tmp/perfgate-new

# Real-traffic soak: dwcsd paces thousands of in-process UDP client
# sessions through real sockets with flash arrivals and session churn, and
# writes the same artifact format sim runs produce (stages.txt, metrics.csv,
# slo.txt, incidents.txt, metrics.prom) to soak-out/. This shape
# deliberately overcommits the single pacer so DWCS's deadline-drop behavior
# is visible at scale; the summary line is not gated here — the thresholds in
# SOAK_BASELINE.txt are pinned for the short CI shape. Run
# "./bench_compare.sh -soak-only" for the gated version.
soak:
	$(GO) run ./cmd/dwcsd -soak 2000 -period 40ms -dur 5s -churn 0.25 -flash \
		-artifacts soak-out

# Sim-vs-real conformance: regenerate the diagnostics sim artifacts, run the
# gated CI-shape soak, then diff the two directories under wall-clock
# tolerances (stage medians within 50%, one-side-only stages demoted to
# info). Exit 3 means the real daemon regressed past the sim reference.
conformance:
	$(GO) run ./cmd/reprogen -slo -slo-out /tmp/conf-sim -dur 8 > /dev/null
	SOAK_DIR=/tmp/conf-soak ./bench_compare.sh -soak-only
	$(GO) run ./cmd/tracetool -diff -conformance /tmp/conf-sim /tmp/conf-soak

clean:
	$(GO) clean ./...
