package rundiff

import (
	"errors"
	"testing"
)

// FuzzParseMetricsCSV asserts the -diff CSV parser is total: any input either
// parses or returns an ErrParse-wrapped error — it never panics, and never
// half-succeeds into an error AND a result.
func FuzzParseMetricsCSV(f *testing.F) {
	f.Add("time_ms,component,metric,value\n1000,nic,tx_frames_total,100\n")
	f.Add("time_ms,component,metric,value\n")
	f.Add("")
	f.Add("time_ms,component,metric,value\n1000,nic,x\n")
	f.Add("time_ms,component,metric,value\n,,,\n")
	f.Add("time_ms,component,metric,value\nNaN,a,b,Inf\n")
	f.Add("time_ms,component,metric,value\n1e309,a,b,1e-309\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ParseMetricsCSV(input)
		if err != nil {
			if !errors.Is(err, ErrParse) {
				t.Fatalf("non-ErrParse error: %v", err)
			}
			if m != nil {
				t.Fatal("error with non-nil result")
			}
		}
	})
}

// FuzzParseLadder and FuzzParseStages extend the same totality guarantee to
// the other -diff table parsers.
func FuzzParseLadder(f *testing.F) {
	f.Add("load mult max_rung\nno web load 4 drop-B 1 2 3 4 5 6 7 8 9 10\n")
	f.Add("x 0 none 0 0 0 0 0 0 0 0 0 0")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		if _, err := ParseLadder(input); err != nil && !errors.Is(err, ErrParse) {
			t.Fatalf("non-ErrParse error: %v", err)
		}
	})
}

func FuzzParseStages(f *testing.F) {
	f.Add("stage count total_ms mean_us p50_us p95_us max_us\ndisk 1 2 3 4 5 6\n")
	f.Add("disk 1 2 3 4 5 6 7 8")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		if _, err := ParseStages(input); err != nil && !errors.Is(err, ErrParse) {
			t.Fatalf("non-ErrParse error: %v", err)
		}
	})
}
