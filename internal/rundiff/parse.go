package rundiff

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// StageRow is one parsed stages.txt row.
type StageRow struct {
	Count   float64
	TotalMS float64
	MeanUS  float64
	P50US   float64
	P95US   float64
	MaxUS   float64
}

// ParseStages parses a telemetry StageTable dump (stages.txt): a title line,
// a header, then `stage count total_ms mean_us p50_us p95_us max_us` rows.
func ParseStages(text string) (map[string]StageRow, error) {
	out := make(map[string]StageRow)
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "per-stage") ||
			strings.HasPrefix(line, "stage ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 7 {
			return nil, fmt.Errorf("%w: stages line %d: %d field(s), want 7: %q",
				ErrParse, i+1, len(f), line)
		}
		var vals [6]float64
		for j := 1; j < 7; j++ {
			v, err := strconv.ParseFloat(f[j], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: stages line %d field %d: %v",
					ErrParse, i+1, j+1, err)
			}
			vals[j-1] = v
		}
		out[f[0]] = StageRow{Count: vals[0], TotalMS: vals[1], MeanUS: vals[2],
			P50US: vals[3], P95US: vals[4], MaxUS: vals[5]}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: stages table has no rows", ErrParse)
	}
	return out, nil
}

func diffStages(a, b string, opt Options) ([]Finding, error) {
	ra, err := ParseStages(a)
	if err != nil {
		return nil, err
	}
	rb, err := ParseStages(b)
	if err != nil {
		return nil, err
	}
	ma, mb := map[string]float64{}, map[string]float64{}
	flatten := func(dst map[string]float64, rows map[string]StageRow) {
		for stage, r := range rows {
			dst[stage+".count"] = r.Count
			dst[stage+".mean_us"] = r.MeanUS
			dst[stage+".p50_us"] = r.P50US
			dst[stage+".p95_us"] = r.P95US
			dst[stage+".max_us"] = r.MaxUS
		}
	}
	flatten(ma, ra)
	flatten(mb, rb)
	// In conformance mode, stages only one side instruments carry no signal:
	// a sim chaos run measures disk/bus, the real daemon measures tx/wire.
	// A zero-count side against a populated one would otherwise explode into
	// ±1e9 "regressions" on every latency column of the stage.
	uninstrumented := map[string]bool{}
	if opt.WallClock {
		for stage, r := range ra {
			if o, ok := rb[stage]; ok && (r.Count == 0) != (o.Count == 0) {
				uninstrumented[stage] = true
			}
		}
	}
	// Latency columns regress when they grow; count changes are informational
	// (offered load legitimately differs across configs), handled by turning
	// their findings back down to info below.
	fs := compareMaps("stages.txt", ma, mb, opt,
		func(series string) bool { return !strings.HasSuffix(series, ".count") },
		nil)
	for i := range fs {
		if strings.HasSuffix(fs[i].Series, ".count") {
			fs[i].Severity = SevInfo
			fs[i].Note = "count drift is informational"
		}
		if stage, _, ok := strings.Cut(fs[i].Series, "."); ok && uninstrumented[stage] {
			fs[i].Severity = SevInfo
			fs[i].Note = "stage instrumented on one side only"
			continue
		}
		// On a wall clock a single preempted goroutine produces an arbitrary
		// max; the percentiles carry the conformance signal.
		if opt.WallClock && strings.HasSuffix(fs[i].Series, ".max_us") &&
			fs[i].Severity != SevInfo {
			fs[i].Severity = SevInfo
			fs[i].Note = "wall-clock max is noisy"
		}
	}
	return fs, nil
}

// ParseMetricsCSV parses a telemetry SnapshotsCSV dump into the LAST value of
// each component.metric series — the end-of-run state, which is what the
// cumulative counters and terminal gauges mean.
func ParseMetricsCSV(text string) (map[string]float64, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "time_ms,component,metric,value" {
		got := ""
		if len(lines) > 0 {
			got = lines[0]
		}
		return nil, fmt.Errorf("%w: metrics.csv header %q, want time_ms,component,metric,value",
			ErrParse, got)
	}
	out := make(map[string]float64)
	for i, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 4 {
			return nil, fmt.Errorf("%w: metrics.csv line %d: %d field(s), want 4",
				ErrParse, i+2, len(f))
		}
		if _, err := strconv.ParseFloat(f[0], 64); err != nil {
			return nil, fmt.Errorf("%w: metrics.csv line %d time %q: %v",
				ErrParse, i+2, f[0], err)
		}
		if f[1] == "" || f[2] == "" {
			return nil, fmt.Errorf("%w: metrics.csv line %d: empty component or metric",
				ErrParse, i+2)
		}
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: metrics.csv line %d value %q: %v",
				ErrParse, i+2, f[3], err)
		}
		out[f[1]+"."+f[2]] = v // snapshots are time-ordered: last write wins
	}
	return out, nil
}

func diffMetrics(a, b string, opt Options) ([]Finding, error) {
	ma, err := ParseMetricsCSV(a)
	if err != nil {
		return nil, err
	}
	mb, err := ParseMetricsCSV(b)
	if err != nil {
		return nil, err
	}
	// Only badness-directional series can regress; everything else that
	// moved is informational. compareMaps already elides sub-threshold
	// changes, so neutral series need their own pass-through rule.
	var fs []Finding
	for _, f := range compareMaps("metrics.csv", ma, mb, opt,
		func(string) bool { return true }, nil) {
		if !badness(f.Series) {
			f.Severity = SevInfo
		}
		fs = append(fs, f)
	}
	return fs, nil
}

// rungRank orders degradation-ladder rungs for escalation comparison.
var rungRank = map[string]int{
	"none": 0, "shed": 1, "drop-B": 2, "drop-BP": 3, "revoke": 4,
}

// LadderRow is one parsed ladder.txt cell.
type LadderRow struct {
	MaxRung string
	Ints    map[string]float64 // column name → value
}

var ladderCols = []string{"trans", "shed", "dropB", "dropP", "revok", "reins",
	"rejects", "admits", "breaches", "bp_engag"}

// ParseLadder parses an overload ladder/admission summary. The load column
// contains spaces ("no web load"), so rows parse right-to-left: the last 10
// fields are the integer columns, preceded by max_rung and mult; whatever
// remains is the load label.
func ParseLadder(text string) (map[string]LadderRow, error) {
	out := make(map[string]LadderRow)
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "overload ladder") ||
			strings.HasPrefix(line, "load ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 13 {
			return nil, fmt.Errorf("%w: ladder line %d: %d field(s), want >= 13",
				ErrParse, i+1, len(f))
		}
		ints := f[len(f)-10:]
		rung := f[len(f)-11]
		mult := f[len(f)-12]
		load := strings.Join(f[:len(f)-12], " ")
		if load == "" {
			return nil, fmt.Errorf("%w: ladder line %d: empty load label", ErrParse, i+1)
		}
		if _, ok := rungRank[rung]; !ok {
			return nil, fmt.Errorf("%w: ladder line %d: unknown rung %q", ErrParse, i+1, rung)
		}
		if _, err := strconv.Atoi(mult); err != nil {
			return nil, fmt.Errorf("%w: ladder line %d mult %q: %v", ErrParse, i+1, mult, err)
		}
		row := LadderRow{MaxRung: rung, Ints: make(map[string]float64, len(ladderCols))}
		for j, col := range ladderCols {
			v, err := strconv.ParseFloat(ints[j], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: ladder line %d %s %q: %v",
					ErrParse, i+1, col, ints[j], err)
			}
			row.Ints[col] = v
		}
		out[load+" ×"+mult] = row
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: ladder table has no rows", ErrParse)
	}
	return out, nil
}

func diffLadder(a, b string, opt Options) ([]Finding, error) {
	ra, err := ParseLadder(a)
	if err != nil {
		return nil, err
	}
	rb, err := ParseLadder(b)
	if err != nil {
		return nil, err
	}
	cells := make([]string, 0, len(ra))
	for k := range ra {
		if _, ok := rb[k]; ok {
			cells = append(cells, k)
		}
	}
	sort.Strings(cells)
	var fs []Finding
	for _, cell := range cells {
		va, vb := ra[cell], rb[cell]
		// Rung escalation is a regression regardless of magnitude: the
		// ladder climbing a rung means streams got visibly worse service.
		if va.MaxRung != vb.MaxRung {
			sev := SevImprovement
			if rungRank[vb.MaxRung] > rungRank[va.MaxRung] {
				sev = SevRegression
			}
			fs = append(fs, Finding{File: "ladder.txt",
				Series: cell + ".max_rung",
				A:      float64(rungRank[va.MaxRung]), B: float64(rungRank[vb.MaxRung]),
				Delta:    relDelta(float64(rungRank[va.MaxRung]), float64(rungRank[vb.MaxRung])),
				Severity: sev,
				Note:     va.MaxRung + " → " + vb.MaxRung})
		}
		ma, mb := map[string]float64{}, map[string]float64{}
		for _, col := range ladderCols {
			ma[cell+"."+col] = va.Ints[col]
			mb[cell+"."+col] = vb.Ints[col]
		}
		for _, f := range compareMaps("ladder.txt", ma, mb, opt, func(series string) bool {
			// Breaches, rejects, and degradation actions regress when they
			// grow; admits and reinstatements regress when they shrink.
			return !strings.HasSuffix(series, ".admits") && !strings.HasSuffix(series, ".reins")
		}, nil) {
			// Breach growth is always a regression — the invariant says zero.
			if strings.HasSuffix(f.Series, ".breaches") && f.B > f.A {
				f.Severity = SevRegression
			}
			fs = append(fs, f)
		}
	}
	return fs, nil
}

// ParseCycles parses a cycle-attribution table (cycles.txt) into cycles per
// component/operation. Rows render with or without the µs column; the total
// row and headers are skipped.
func ParseCycles(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "cycle attribution") ||
			strings.HasPrefix(line, "component ") || strings.HasPrefix(line, "total") {
			continue
		}
		f := strings.Fields(line)
		// component operation ops cycles [us] share% → 5 or 6 fields.
		if len(f) != 5 && len(f) != 6 {
			return nil, fmt.Errorf("%w: cycles line %d: %d field(s), want 5 or 6",
				ErrParse, i+1, len(f))
		}
		cycles, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: cycles line %d cycles %q: %v",
				ErrParse, i+1, f[3], err)
		}
		out[f[0]+"/"+f[1]] = cycles
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: cycle table has no rows", ErrParse)
	}
	return out, nil
}

func diffCycles(a, b string, opt Options) ([]Finding, error) {
	ca, err := ParseCycles(a)
	if err != nil {
		return nil, err
	}
	cb, err := ParseCycles(b)
	if err != nil {
		return nil, err
	}
	// More cycles on the same deterministic workload = the code path got
	// more expensive: a perf regression.
	return compareMaps("cycles.txt", ca, cb, opt,
		func(string) bool { return true }, nil), nil
}

// sloStateRank orders SLO health states for escalation comparison.
var sloStateRank = map[string]int{
	"ok": 0, "warn": 1, "burning": 2, "violated": 3,
}

// SLORow is one parsed slo.txt stream row.
type SLORow struct {
	Name        string
	StateRank   float64
	ShortBurn   float64
	LongBurn    float64
	Transitions float64
}

// SLOSummary is a parsed slo.txt: the card-level header plus per-stream rows
// keyed by stream ID.
type SLOSummary struct {
	Health     string
	Violations float64
	Streams    map[string]SLORow
}

// ParseSLO parses an slo.Monitor.Table dump (slo.txt): a header line
// `slo <name>: health=<state>, N eval(s), N transition(s), N violation(s)`
// followed by a column header and per-stream rows
// `id name state short_burn long_burn loss_tgt trans`.
func ParseSLO(text string) (*SLOSummary, error) {
	sum := &SLOSummary{Streams: make(map[string]SLORow)}
	sawHeader := false
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "id ") {
			continue
		}
		if strings.HasPrefix(line, "slo ") {
			_, after, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("%w: slo line %d: header %q has no ':'", ErrParse, i+1, line)
			}
			for _, tok := range strings.Split(after, ",") {
				tok = strings.TrimSpace(tok)
				if v, ok := strings.CutPrefix(tok, "health="); ok {
					if _, known := sloStateRank[v]; !known {
						return nil, fmt.Errorf("%w: slo line %d: unknown health %q", ErrParse, i+1, v)
					}
					sum.Health = v
				}
				if n, ok := strings.CutSuffix(tok, " violation(s)"); ok {
					v, err := strconv.ParseFloat(n, 64)
					if err != nil {
						return nil, fmt.Errorf("%w: slo line %d violations %q: %v", ErrParse, i+1, n, err)
					}
					sum.Violations = v
				}
			}
			if sum.Health == "" {
				return nil, fmt.Errorf("%w: slo line %d: header %q missing health=", ErrParse, i+1, line)
			}
			sawHeader = true
			continue
		}
		f := strings.Fields(line)
		if len(f) != 7 {
			return nil, fmt.Errorf("%w: slo line %d: %d field(s), want 7: %q",
				ErrParse, i+1, len(f), line)
		}
		rank, ok := sloStateRank[f[2]]
		if !ok {
			return nil, fmt.Errorf("%w: slo line %d: unknown state %q", ErrParse, i+1, f[2])
		}
		row := SLORow{Name: f[1], StateRank: float64(rank)}
		for _, fld := range []struct {
			idx int
			dst *float64
		}{{3, &row.ShortBurn}, {4, &row.LongBurn}, {6, &row.Transitions}} {
			v, err := strconv.ParseFloat(f[fld.idx], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: slo line %d field %d: %v", ErrParse, i+1, fld.idx+1, err)
			}
			*fld.dst = v
		}
		sum.Streams["s"+f[0]] = row
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: slo table has no header line", ErrParse)
	}
	return sum, nil
}

func diffSLO(a, b string, opt Options) ([]Finding, error) {
	sa, err := ParseSLO(a)
	if err != nil {
		return nil, err
	}
	sb, err := ParseSLO(b)
	if err != nil {
		return nil, err
	}
	var fs []Finding
	// Card-health escalation is a regression regardless of magnitude, like a
	// ladder rung: the worst stream's state visibly worsened.
	if sa.Health != sb.Health {
		sev := SevImprovement
		if sloStateRank[sb.Health] > sloStateRank[sa.Health] {
			sev = SevRegression
		}
		fs = append(fs, Finding{File: "slo.txt", Series: "health.rank",
			A: float64(sloStateRank[sa.Health]), B: float64(sloStateRank[sb.Health]),
			Delta:    relDelta(float64(sloStateRank[sa.Health]), float64(sloStateRank[sb.Health])),
			Severity: sev, Note: sa.Health + " → " + sb.Health})
	}
	if sa.Violations != sb.Violations {
		sev := SevImprovement
		if sb.Violations > sa.Violations {
			sev = SevRegression
		}
		fs = append(fs, Finding{File: "slo.txt", Series: "violations",
			A: sa.Violations, B: sb.Violations,
			Delta: relDelta(sa.Violations, sb.Violations), Severity: sev})
	}
	ma, mb := map[string]float64{}, map[string]float64{}
	flatten := func(dst map[string]float64, rows map[string]SLORow) {
		for id, r := range rows {
			dst[id+".state_rank"] = r.StateRank
			dst[id+".short_burn"] = r.ShortBurn
			dst[id+".long_burn"] = r.LongBurn
			dst[id+".transitions"] = r.Transitions
		}
	}
	flatten(ma, sa.Streams)
	flatten(mb, sb.Streams)
	for _, f := range compareMaps("slo.txt", ma, mb, opt,
		func(string) bool { return true }, nil) {
		// Per-stream state escalation regresses even when the relative delta
		// is small (warn → burning is +1 rank but always meaningful).
		if strings.HasSuffix(f.Series, ".state_rank") && f.B > f.A {
			f.Severity = SevRegression
		}
		fs = append(fs, f)
	}
	return fs, nil
}
