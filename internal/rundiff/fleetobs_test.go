package rundiff

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fleetobs"
	"repro/internal/sim"
)

// rollupFixture renders a real two-switch rollup through the fleet-obs
// renderer, so the parser is tested against the writer's format. scale and
// sick perturb ni04 (host h02, switch sw1).
func rollupFixture(goodput float64, sick bool) string {
	ni04 := fleetobs.CardStat{Card: 4, Host: "h02", Switch: "sw1",
		Streams: 2, GoodputMB: goodput}
	if sick {
		ni04.Dark = true
		ni04.Breaches = 3
	}
	return fleetobs.RenderRollup([]fleetobs.CardStat{
		{Card: 0, Host: "h00", Switch: "sw0", Streams: 2, GoodputMB: 4.0},
		ni04,
	})
}

func TestRollupRegressionNamesSwitchDomain(t *testing.T) {
	a := writeDir(t, map[string]string{"rollup.txt": rollupFixture(4.0, false)})
	b := writeDir(t, map[string]string{"rollup.txt": rollupFixture(2.0, true)})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Regression() {
		t.Fatalf("halved goodput + dark card not caught:\n%s", r.Table())
	}
	var goodput, health, breach bool
	for _, f := range r.Findings {
		if f.Severity != SevRegression {
			continue
		}
		switch {
		case f.Series == "ni04[sw1].goodput_mb":
			goodput = true
		case f.Series == "ni04[sw1].health":
			health = true
			if f.Note != "ok → dark" {
				t.Fatalf("health note %q, want ok → dark", f.Note)
			}
		case f.Series == "ni04[sw1].breaches":
			breach = true
		}
	}
	if !goodput || !health || !breach {
		t.Fatalf("missing regression (goodput=%v health=%v breach=%v):\n%s",
			goodput, health, breach, r.Table())
	}
	// The aggregate rows carry the same blast radius: the sick card's switch
	// domain and the fleet total regress too, the healthy switch does not.
	var sw1, sw0 bool
	for _, f := range r.Findings {
		if f.Severity != SevRegression {
			continue
		}
		sw1 = sw1 || strings.HasPrefix(f.Series, "sw1.")
		sw0 = sw0 || strings.HasPrefix(f.Series, "sw0.")
	}
	if !sw1 || sw0 {
		t.Fatalf("switch-domain rollup (sw1=%v sw0=%v):\n%s", sw1, sw0, r.Table())
	}

	// The reverse direction is an improvement, not a regression.
	r, err = DiffDirs(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Regression() {
		t.Fatalf("recovery flagged as regression:\n%s", r.Table())
	}
}

// timelineFixture renders a real incident timeline with one migrate event
// plus darkEvents scrape-dark events.
func timelineFixture(darkEvents int) string {
	tl := fleetobs.NewTimeline()
	tl.Add(fleetobs.TimelineEvent{At: sim.Second, Src: fleetobs.SrcController,
		SrcName: "dvcm", Kind: "migrate-live", Stream: 9, Seq: 44,
		Note: "ni04→ni06 epoch 0→1"})
	for i := 0; i < darkEvents; i++ {
		tl.Add(fleetobs.TimelineEvent{At: 2 * sim.Second, Src: fleetobs.SrcController,
			SrcName: "dvcm", Kind: "scrape-dark", Note: "ni04 answered nothing"})
	}
	return tl.Render()
}

func TestTimelineNewBadKindRegresses(t *testing.T) {
	a := writeDir(t, map[string]string{"timeline.txt": timelineFixture(0)})
	b := writeDir(t, map[string]string{"timeline.txt": timelineFixture(3)})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// scrape-dark went 0 → 3: a bad kind appearing only in the candidate
	// must regress even though the baseline never mentions it.
	var hit bool
	for _, f := range r.Findings {
		if f.Series == "count.scrape-dark" && f.Severity == SevRegression {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("new scrape-dark events not flagged:\n%s", r.Table())
	}
	// Dark events disappearing is an improvement.
	r, err = DiffDirs(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Regression() {
		t.Fatalf("disappearing dark events flagged as regression:\n%s", r.Table())
	}
}

func TestFleetObsParseErrorsWrapErrParse(t *testing.T) {
	for _, files := range []map[string]string{
		{"rollup.txt": "garbage\n"},
		{"rollup.txt": "fleet rollup (in-band, last scrape per card)\nscope h\nni00 h00 sw0 1 2 glowing 1.0 0.0 0.5 0 0\n"},
		{"timeline.txt": "not a timeline\n"},
		{"timeline.txt": "incident timeline: 1 event(s)\nt src\nhalf a line\n"},
	} {
		dir := writeDir(t, files)
		if _, err := DiffDirs(dir, dir, Options{}); !errors.Is(err, ErrParse) {
			t.Fatalf("%v: err %v, want ErrParse", files, err)
		}
	}
}
