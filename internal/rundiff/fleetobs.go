// Fleet-obs artifact handlers: rollup.txt (the in-band fleet rollup) and
// timeline.txt (the merged incident timeline) from `clustersim -fleet-obs`.
// Rollup series embed the row's switch domain — a goodput regression reads
// "ni03[sw0].goodput_mb", so the verdict names the failing switch domain
// without anyone re-opening the artifact.
package rundiff

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// healthRank orders rollup health states for escalation comparison; dark
// (unscrapeable) is worse than any answered state.
var healthRank = map[string]int{
	"ok": 0, "warn": 1, "burning": 2, "violated": 3, "dark": 4,
}

// RollupRow is one parsed rollup.txt scope line.
type RollupRow struct {
	Host   string
	Switch string
	Health string
	Ints   map[string]float64 // column name → value
}

var rollupCols = []string{"cards", "streams", "goodput_mb", "burn",
	"mem_pct", "breaches", "rung"}

// ParseRollup parses a fleet rollup artifact: a title line, a header, then
// `scope host sw cards streams health goodput_mb burn mem_pct breaches
// rung` rows (cards, hosts, switch domains, and the fleet total).
func ParseRollup(text string) (map[string]RollupRow, error) {
	out := make(map[string]RollupRow)
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "fleet rollup") ||
			strings.HasPrefix(line, "scope ") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 11 {
			return nil, fmt.Errorf("%w: rollup line %d: %d field(s), want 11: %q",
				ErrParse, i+1, len(f), line)
		}
		if _, ok := healthRank[f[5]]; !ok {
			return nil, fmt.Errorf("%w: rollup line %d: unknown health %q",
				ErrParse, i+1, f[5])
		}
		row := RollupRow{Host: f[1], Switch: f[2], Health: f[5],
			Ints: make(map[string]float64, len(rollupCols))}
		// Field layout: scope host sw cards streams health goodput_mb burn
		// mem_pct breaches rung — health splits the numeric columns.
		fields := []string{f[3], f[4], f[6], f[7], f[8], f[9], f[10]}
		for j, col := range rollupCols {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: rollup line %d %s %q: %v",
					ErrParse, i+1, col, fields[j], err)
			}
			row.Ints[col] = v
		}
		out[f[0]] = row
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: rollup table has no rows", ErrParse)
	}
	return out, nil
}

// scopeKey names a rollup scope with its switch domain when one is known, so
// findings carry the blast radius: "ni03[sw0]", "h01[sw0]", plain "sw1".
func scopeKey(scope string, row RollupRow) string {
	if row.Switch != "-" && row.Switch != scope {
		return scope + "[" + row.Switch + "]"
	}
	return scope
}

func diffRollup(a, b string, opt Options) ([]Finding, error) {
	ra, err := ParseRollup(a)
	if err != nil {
		return nil, err
	}
	rb, err := ParseRollup(b)
	if err != nil {
		return nil, err
	}
	scopes := make([]string, 0, len(ra))
	for k := range ra {
		if _, ok := rb[k]; ok {
			scopes = append(scopes, k)
		}
	}
	sort.Strings(scopes)
	var fs []Finding
	for _, scope := range scopes {
		va, vb := ra[scope], rb[scope]
		key := scopeKey(scope, vb)
		// Health escalation is a regression regardless of magnitude: the
		// scope's worst member got visibly sicker (dark being the worst —
		// the controller lost sight of it entirely).
		if va.Health != vb.Health {
			sev := SevImprovement
			if healthRank[vb.Health] > healthRank[va.Health] {
				sev = SevRegression
			}
			fs = append(fs, Finding{File: "rollup.txt",
				Series: key + ".health",
				A:      float64(healthRank[va.Health]), B: float64(healthRank[vb.Health]),
				Delta:    relDelta(float64(healthRank[va.Health]), float64(healthRank[vb.Health])),
				Severity: sev,
				Note:     va.Health + " → " + vb.Health})
		}
		ma, mb := map[string]float64{}, map[string]float64{}
		for _, col := range rollupCols {
			ma[key+"."+col] = va.Ints[col]
			mb[key+"."+col] = vb.Ints[col]
		}
		for _, f := range compareMaps("rollup.txt", ma, mb, opt, func(series string) bool {
			// Goodput regresses when it shrinks; burn, breaches, and the
			// scrape-degradation rung regress when they grow.
			return !strings.HasSuffix(series, ".goodput_mb")
		}, nil) {
			switch {
			// Card and stream counts drift with config, and budget occupancy
			// is load, not badness: informational.
			case strings.HasSuffix(f.Series, ".cards"),
				strings.HasSuffix(f.Series, ".streams"),
				strings.HasSuffix(f.Series, ".mem_pct"):
				f.Severity = SevInfo
			// Breach growth is always a regression — the invariant says zero.
			case strings.HasSuffix(f.Series, ".breaches") && f.B > f.A:
				f.Severity = SevRegression
			}
			fs = append(fs, f)
		}
	}
	return fs, nil
}

// ParseTimeline parses a merged incident timeline artifact into event
// counts per kind (the fixed-column form Timeline.Render writes).
func ParseTimeline(text string) (map[string]float64, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "incident timeline:") {
		return nil, fmt.Errorf("%w: not an incident timeline (header %q)",
			ErrParse, lines[0])
	}
	out := make(map[string]float64)
	for i, line := range lines[2:] {
		f := strings.Fields(line)
		if len(f) < 5 {
			return nil, fmt.Errorf("%w: timeline line %d: %d field(s), want >= 5",
				ErrParse, i+3, len(f))
		}
		out["count."+f[4]]++
	}
	return out, nil
}

// timelineBadness reports event kinds that should not become more frequent:
// faults, lost visibility, shed observability, aborted or lost streams.
func timelineBadness(series string) bool {
	for _, pat := range []string{
		"fault", "dark", "shed", "degrade", "abort", "lost", "wiped",
		"gap", "refused",
	} {
		if strings.Contains(series, pat) {
			return true
		}
	}
	return false
}

func diffTimeline(a, b string, opt Options) ([]Finding, error) {
	ca, err := ParseTimeline(a)
	if err != nil {
		return nil, err
	}
	cb, err := ParseTimeline(b)
	if err != nil {
		return nil, err
	}
	// Zero-fill each side with the other's kinds: a bad kind appearing only
	// in the candidate run (0 → n) must surface, and compareMaps only diffs
	// intersecting keys.
	for k := range ca {
		if _, ok := cb[k]; !ok {
			cb[k] = 0
		}
	}
	for k := range cb {
		if _, ok := ca[k]; !ok {
			ca[k] = 0
		}
	}
	var fs []Finding
	for _, f := range compareMaps("timeline.txt", ca, cb, opt,
		func(string) bool { return true }, nil) {
		if !timelineBadness(f.Series) {
			f.Severity = SevInfo
		}
		fs = append(fs, f)
	}
	return fs, nil
}
