// Package rundiff is the regression engine behind `tracetool -diff`: it
// compares two artifact directories produced by reprogen (a pinned baseline
// and a fresh run) and renders a verdict. The reproduction's whole value is
// that every number it prints is deterministic, so "did this change make the
// system worse" reduces to structured comparison of text artifacts — stage
// latency tables, metric series, overload ladder summaries, cycle profiles —
// with a relative threshold separating noise-free-but-intentional drift from
// regressions.
//
// Every parser here is total: malformed input returns an error wrapping
// ErrParse, never a panic, because CI feeds this whatever a broken run left
// behind. Findings are ordered by (file, series), so reports are themselves
// byte-stable artifacts.
package rundiff

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrParse wraps every malformed-artifact error so tracetool can map the
// whole class onto its parse-error exit code.
var ErrParse = errors.New("rundiff: malformed artifact")

// Severity classifies one compared series.
type Severity int

// Finding severities.
const (
	// SevInfo is a change that is neither clearly better nor worse (counts,
	// unclassified series).
	SevInfo Severity = iota
	// SevImprovement is a badness metric that went down past the threshold.
	SevImprovement
	// SevRegression is a badness metric that went up past the threshold (or
	// a ladder rung that escalated).
	SevRegression
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevImprovement:
		return "improvement"
	case SevRegression:
		return "REGRESSION"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Options tunes the comparison.
type Options struct {
	// Threshold is the relative change that counts as significant (default
	// 0.10 = 10%; 0.50 in WallClock mode). Below it, differing values are
	// reported as info only when ReportUnchanged is set, else elided.
	Threshold float64
	// ReportUnchanged includes sub-threshold and equal series in the report.
	ReportUnchanged bool
	// WallClock selects sim-vs-real conformance mode: one side (or both) of
	// the diff was measured on a wall clock instead of the deterministic
	// engine, so tolerances widen (default threshold 0.50), per-stage max
	// latency is demoted to info (a single preempted goroutine produces an
	// arbitrary max), and count drift stays informational. Direction-aware
	// badness is unchanged: drops, burns, and latency percentiles that grow
	// past the threshold still regress.
	WallClock bool
}

func (o *Options) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 0.10
		if o.WallClock {
			o.Threshold = 0.50
		}
	}
}

// Finding is one compared series.
type Finding struct {
	File     string
	Series   string
	A, B     float64
	Delta    float64 // relative change (B-A)/A; ±Inf collapsed to ±1e9
	Severity Severity
	Note     string
}

// Report is the full comparison result.
type Report struct {
	DirA, DirB string
	Mode       string // "" for exact runs, "conformance" under Options.WallClock
	Findings   []Finding
	Compared   []string // files present in both dirs and diffed
	MissingA   []string // required files present only in B
	MissingB   []string // required files present only in A
	Skipped    []string // optional files present on one side, noted and skipped
}

// Regression reports whether any finding regressed.
func (r *Report) Regression() bool {
	for _, f := range r.Findings {
		if f.Severity == SevRegression {
			return true
		}
	}
	return false
}

// Counts returns totals by severity.
func (r *Report) Counts() (info, improved, regressed int) {
	for _, f := range r.Findings {
		switch f.Severity {
		case SevInfo:
			info++
		case SevImprovement:
			improved++
		case SevRegression:
			regressed++
		}
	}
	return
}

// Table renders the human report.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run-diff %s → %s\n", r.DirA, r.DirB)
	if r.Mode != "" {
		fmt.Fprintf(&b, "mode: %s (wall-clock tolerances; max latency informational)\n", r.Mode)
	}
	fmt.Fprintf(&b, "compared: %s\n", strings.Join(r.Compared, ", "))
	if len(r.MissingA) > 0 {
		fmt.Fprintf(&b, "only in %s: %s\n", r.DirB, strings.Join(r.MissingA, ", "))
	}
	if len(r.MissingB) > 0 {
		fmt.Fprintf(&b, "only in %s: %s\n", r.DirA, strings.Join(r.MissingB, ", "))
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "skipped: %s\n", s)
	}
	if len(r.Findings) == 0 {
		b.WriteString("no significant differences\n")
	} else {
		fmt.Fprintf(&b, "%-12s %-11s %-38s %14s %14s %8s\n",
			"file", "verdict", "series", "a", "b", "delta")
		for _, f := range r.Findings {
			note := ""
			if f.Note != "" {
				note = "  " + f.Note
			}
			fmt.Fprintf(&b, "%-12s %-11s %-38s %14.3f %14.3f %+7.1f%%%s\n",
				f.File, f.Severity, f.Series, f.A, f.B, 100*f.Delta, note)
		}
	}
	info, improved, regressed := r.Counts()
	fmt.Fprintf(&b, "verdict: %d regression(s), %d improvement(s), %d info\n",
		regressed, improved, info)
	return b.String()
}

// JSON renders a machine-readable verdict. Hand-assembled so field order is
// fixed and output is byte-stable.
func (r *Report) JSON() string {
	var b strings.Builder
	info, improved, regressed := r.Counts()
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"dir_a\": %q,\n  \"dir_b\": %q,\n", r.DirA, r.DirB)
	if r.Mode != "" {
		fmt.Fprintf(&b, "  \"mode\": %q,\n", r.Mode)
	}
	fmt.Fprintf(&b, "  \"regression\": %v,\n", r.Regression())
	fmt.Fprintf(&b, "  \"regressions\": %d,\n  \"improvements\": %d,\n  \"info\": %d,\n",
		regressed, improved, info)
	b.WriteString("  \"findings\": [\n")
	for i, f := range r.Findings {
		sep := ","
		if i == len(r.Findings)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "    {\"file\": %q, \"series\": %q, \"a\": %s, \"b\": %s, \"delta\": %s, \"severity\": %q}%s\n",
			f.File, f.Series, trimFloat(f.A), trimFloat(f.B), trimFloat(f.Delta), f.Severity, sep)
	}
	b.WriteString("  ]\n}\n")
	return b.String()
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// badness reports whether a series name measures something that should not
// grow: drops, rejects, breaches, violations, stalls, misses, latency.
func badness(name string) bool {
	for _, pat := range []string{
		"drop", "reject", "breach", "stall", "violation", "shed", "late",
		"miss", "overwritten", "suppressed", "leak", "fail", "detected",
		"retries", "engage",
	} {
		if strings.Contains(name, pat) {
			return true
		}
	}
	return false
}

// relDelta computes (b-a)/a with a==0 handled: 0→0 is 0, 0→x is ±1e9
// (a finite stand-in for Inf that still prints).
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	if a == 0 {
		if b > 0 {
			return 1e9
		}
		return -1e9
	}
	return (b - a) / a
}

// classify turns a numeric change in a badness-directional series into a
// severity under the threshold.
func classify(a, b, threshold float64, worseWhenUp bool) (Severity, bool) {
	d := relDelta(a, b)
	if d == 0 {
		return SevInfo, false
	}
	mag := d
	if mag < 0 {
		mag = -mag
	}
	if mag < threshold {
		return SevInfo, false
	}
	up := d > 0
	if up == worseWhenUp {
		return SevRegression, true
	}
	return SevImprovement, true
}

// DiffDirs compares the known artifacts present in both directories.
// Artifact availability differs by run kind — only simulator runs emit
// cycles.txt (there is no cycle meter on a host CPU), only overload sweeps
// emit ladder.txt, only fleet runs emit rollup.txt/timeline.txt — so those
// are optional: present on one side only, they are noted and skipped
// instead of failing the comparison. stages.txt and metrics.csv are the
// required core every instrumented run (simulated or real) writes.
func DiffDirs(dirA, dirB string, opt Options) (*Report, error) {
	opt.defaults()
	r := &Report{DirA: dirA, DirB: dirB}
	if opt.WallClock {
		r.Mode = "conformance"
	}
	type handler func(a, b string, opt Options) ([]Finding, error)
	known := []struct {
		name     string
		fn       handler
		optional bool
	}{
		{"stages.txt", diffStages, false},
		{"metrics.csv", diffMetrics, false},
		{"slo.txt", diffSLO, true},
		{"ladder.txt", diffLadder, true},
		{"cycles.txt", diffCycles, true},
		{"rollup.txt", diffRollup, true},
		{"timeline.txt", diffTimeline, true},
	}
	for _, k := range known {
		pa, pb := filepath.Join(dirA, k.name), filepath.Join(dirB, k.name)
		da, errA := os.ReadFile(pa)
		db, errB := os.ReadFile(pb)
		switch {
		case errA != nil && errB != nil:
			continue // artifact absent from both runs: nothing to compare
		case errA != nil:
			if k.optional {
				r.Skipped = append(r.Skipped,
					fmt.Sprintf("%s (optional, only in %s)", k.name, dirB))
				continue
			}
			r.MissingA = append(r.MissingA, k.name)
			continue
		case errB != nil:
			if k.optional {
				r.Skipped = append(r.Skipped,
					fmt.Sprintf("%s (optional, only in %s)", k.name, dirA))
				continue
			}
			r.MissingB = append(r.MissingB, k.name)
			continue
		}
		fs, err := k.fn(string(da), string(db), opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.name, err)
		}
		r.Compared = append(r.Compared, k.name)
		r.Findings = append(r.Findings, fs...)
	}
	if len(r.Compared) == 0 {
		return nil, fmt.Errorf("%w: no comparable artifacts in %s and %s",
			ErrParse, dirA, dirB)
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].File != r.Findings[j].File {
			return r.Findings[i].File < r.Findings[j].File
		}
		return r.Findings[i].Series < r.Findings[j].Series
	})
	return r, nil
}

// compareMaps diffs two keyed series sets with a fixed direction rule.
func compareMaps(file string, a, b map[string]float64, opt Options,
	worseWhenUp func(series string) bool, note func(series string) string) []Finding {
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []Finding
	for _, k := range keys {
		av, bv := a[k], b[k]
		sev, significant := classify(av, bv, opt.Threshold, worseWhenUp(k))
		if !significant && !(opt.ReportUnchanged && av != bv) {
			continue
		}
		f := Finding{File: file, Series: k, A: av, B: bv,
			Delta: relDelta(av, bv), Severity: sev}
		if note != nil {
			f.Note = note(k)
		}
		out = append(out, f)
	}
	return out
}
