package rundiff

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// writeDir materializes an artifact directory from name → content.
func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// stagesTable builds a real StageTable from a SpanLog whose queue-stage
// latency is scaled by num/den — the injected-regression fixture.
func stagesTable(num, den sim.Time) string {
	var l telemetry.SpanLog
	for i := 0; i < 50; i++ {
		base := sim.Time(i) * sim.Millisecond
		l.Record(telemetry.Segment{Stream: 1, Seq: int64(i), Stage: telemetry.StageDisk,
			Where: "d0", Start: base, End: base + 5*sim.Millisecond})
		l.Record(telemetry.Segment{Stream: 1, Seq: int64(i), Stage: telemetry.StageQueue,
			Where: "ni0", Start: base, End: base + (2*sim.Millisecond*num)/den})
	}
	return l.StageTable()
}

func TestInjectedLatencyRegressionCaught(t *testing.T) {
	// Run B's queue-stage latency is 20% worse than run A's — above the 10%
	// default threshold, so the diff must flag a regression.
	a := writeDir(t, map[string]string{"stages.txt": stagesTable(1, 1)})
	b := writeDir(t, map[string]string{"stages.txt": stagesTable(6, 5)})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Regression() {
		t.Fatalf("20%% queue-latency regression not caught:\n%s", r.Table())
	}
	var hit bool
	for _, f := range r.Findings {
		if strings.HasPrefix(f.Series, "queue.") && f.Severity == SevRegression {
			hit = true
			if f.Delta < 0.15 || f.Delta > 0.25 {
				t.Fatalf("queue delta %.3f, want ~0.20", f.Delta)
			}
		}
		if strings.HasPrefix(f.Series, "disk.") && f.Severity == SevRegression {
			t.Fatalf("disk stage unchanged but flagged: %+v", f)
		}
	}
	if !hit {
		t.Fatalf("no queue-stage regression finding:\n%s", r.Table())
	}

	// Swapped direction is an improvement, not a regression.
	r2, err := DiffDirs(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Regression() {
		t.Fatalf("latency drop misread as regression:\n%s", r2.Table())
	}
}

func TestIdenticalDirsClean(t *testing.T) {
	files := map[string]string{"stages.txt": stagesTable(1, 1)}
	r, err := DiffDirs(writeDir(t, files), writeDir(t, files), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Regression() || len(r.Findings) != 0 {
		t.Fatalf("identical dirs produced findings:\n%s", r.Table())
	}
	if !strings.Contains(r.Table(), "no significant differences") {
		t.Fatalf("table:\n%s", r.Table())
	}
}

const metricsA = `time_ms,component,metric,value
1000,nic,tx_frames_total,100
1000,overload,admission_rejects_total,2
1000,overload,budget_used_bytes,50000
`

func TestMetricsBadnessDirection(t *testing.T) {
	metricsB := strings.NewReplacer(
		"admission_rejects_total,2", "admission_rejects_total,10",
		"tx_frames_total,100", "tx_frames_total,150",
	).Replace(metricsA)
	a := writeDir(t, map[string]string{"metrics.csv": metricsA})
	b := writeDir(t, map[string]string{"metrics.csv": metricsB})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rejects, tx *Finding
	for i := range r.Findings {
		switch r.Findings[i].Series {
		case "overload.admission_rejects_total":
			rejects = &r.Findings[i]
		case "nic.tx_frames_total":
			tx = &r.Findings[i]
		}
	}
	if rejects == nil || rejects.Severity != SevRegression {
		t.Fatalf("reject growth should regress: %+v\n%s", rejects, r.Table())
	}
	if tx == nil || tx.Severity != SevInfo {
		t.Fatalf("neutral throughput change should be info: %+v", tx)
	}
}

const ladderA = `overload ladder/admission summary (2 cells)
load       mult  max_rung  trans   shed  dropB  dropP  revok  reins rejects  admits breaches  bp_engag
no web load 4     drop-B        6     76      0      0      0      0       3       4        0         2
45% web    8     drop-B        8     90      4      0      0      0       4       4        0         3
`

func TestLadderEscalationAndBreachRegress(t *testing.T) {
	ladderB := strings.NewReplacer(
		"no web load 4     drop-B", "no web load 4     revoke",
		"0         3\n", "2         3\n", // breaches 0 → 2 in the second cell
	).Replace(ladderA)
	a := writeDir(t, map[string]string{"ladder.txt": ladderA})
	b := writeDir(t, map[string]string{"ladder.txt": ladderB})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Regression() {
		t.Fatalf("rung escalation + breaches not caught:\n%s", r.Table())
	}
	var rung, breach bool
	for _, f := range r.Findings {
		if strings.HasSuffix(f.Series, ".max_rung") && f.Severity == SevRegression {
			rung = true
			if !strings.Contains(f.Note, "drop-B → revoke") {
				t.Fatalf("rung note %q", f.Note)
			}
		}
		if strings.HasSuffix(f.Series, ".breaches") && f.Severity == SevRegression {
			breach = true
		}
	}
	if !rung || !breach {
		t.Fatalf("rung=%v breach=%v:\n%s", rung, breach, r.Table())
	}
	// De-escalation reads as improvement.
	r2, err := DiffDirs(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range r2.Findings {
		if strings.HasSuffix(f.Series, ".max_rung") && f.Severity != SevImprovement {
			t.Fatalf("de-escalation severity %v", f.Severity)
		}
	}
}

const cyclesA = `cycle attribution (i960RD-66)
component      operation             ops         cycles           us    share
dwcs           decision            10000        5000000       100.00    50.0%
nic            dispatch            10000        5000000       100.00    50.0%
total                                          10000000       200.00   100.0%
`

func TestCyclesGrowthRegresses(t *testing.T) {
	cyclesB := strings.Replace(cyclesA,
		"dwcs           decision            10000        5000000",
		"dwcs           decision            10000        7000000", 1)
	a := writeDir(t, map[string]string{"cycles.txt": cyclesA})
	b := writeDir(t, map[string]string{"cycles.txt": cyclesB})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Regression() {
		t.Fatalf("40%% cycle growth not caught:\n%s", r.Table())
	}
}

func TestMissingAndUnknownFiles(t *testing.T) {
	a := writeDir(t, map[string]string{
		"stages.txt": stagesTable(1, 1), "metrics.csv": metricsA})
	b := writeDir(t, map[string]string{"stages.txt": stagesTable(1, 1)})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MissingB) != 1 || r.MissingB[0] != "metrics.csv" {
		t.Fatalf("MissingB = %v", r.MissingB)
	}
	// Two dirs sharing no known artifacts cannot be compared at all.
	empty := t.TempDir()
	if _, err := DiffDirs(empty, empty, Options{}); !errors.Is(err, ErrParse) {
		t.Fatalf("empty dirs: %v, want ErrParse", err)
	}
}

func TestParseErrorsWrapErrParse(t *testing.T) {
	cases := map[string]map[string]string{
		"bad stages row":  {"stages.txt": "per-stage frame latency (simulated)\nstage count\ndisk 1 2\n"},
		"bad csv header":  {"metrics.csv": "nope,nope\n1,2,3,4\n"},
		"bad csv value":   {"metrics.csv": "time_ms,component,metric,value\n1000,nic,x,abc\n"},
		"bad ladder rung": {"ladder.txt": "load mult max_rung t s b p r i j a b c\nx 4 warp 1 2 3 4 5 6 7 8 9 10\n"},
		"empty cycles":    {"cycles.txt": "cycle attribution\n"},
	}
	for name, files := range cases {
		dir := writeDir(t, files)
		if _, err := DiffDirs(dir, dir, Options{}); !errors.Is(err, ErrParse) {
			t.Errorf("%s: err = %v, want ErrParse", name, err)
		}
	}
}

func TestReportJSONAndTableStable(t *testing.T) {
	a := writeDir(t, map[string]string{"stages.txt": stagesTable(1, 1)})
	b := writeDir(t, map[string]string{"stages.txt": stagesTable(6, 5)})
	r1, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.JSON() != r2.JSON() || r1.Table() != r2.Table() {
		t.Fatal("report output not deterministic")
	}
	if !strings.Contains(r1.JSON(), `"regression": true`) {
		t.Fatalf("JSON verdict:\n%s", r1.JSON())
	}
}

const sloA = `slo dwcsd: health=ok, 24 eval(s), 2 transition(s), 0 violation(s)
id   name           state      short_burn  long_burn   loss_tgt  trans
0    s0             ok               0.40       0.30     0.5000      1
1    s1             ok               0.20       0.20     0.5000      1
`

func TestSLOEscalationRegresses(t *testing.T) {
	sloB := strings.NewReplacer(
		"health=ok", "health=violated",
		"0 violation(s)", "1 violation(s)",
		"0    s0             ok     ", "0    s0             violated",
	).Replace(sloA)
	a := writeDir(t, map[string]string{"slo.txt": sloA, "stages.txt": stagesTable(1, 1)})
	b := writeDir(t, map[string]string{"slo.txt": sloB, "stages.txt": stagesTable(1, 1)})
	r, err := DiffDirs(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Regression() {
		t.Fatalf("SLO escalation not caught:\n%s", r.Table())
	}
	var health, stream, viol bool
	for _, f := range r.Findings {
		switch f.Series {
		case "health.rank":
			health = f.Severity == SevRegression && strings.Contains(f.Note, "ok → violated")
		case "s0.state_rank":
			stream = f.Severity == SevRegression
		case "violations":
			viol = f.Severity == SevRegression
		}
	}
	if !health || !stream || !viol {
		t.Fatalf("health=%v stream=%v violations=%v:\n%s", health, stream, viol, r.Table())
	}
	// Recovery in the other direction is an improvement, not a regression.
	r2, err := DiffDirs(b, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Regression() {
		t.Fatalf("SLO recovery misread as regression:\n%s", r2.Table())
	}
}

func TestSLOParseErrors(t *testing.T) {
	cases := map[string]string{
		"no header":     "id name state short long tgt trans\n0 s0 ok 0 0 0.5 0\n",
		"bad state":     "slo c: health=ok, 1 eval(s), 0 transition(s), 0 violation(s)\n0 s0 warp 0 0 0.5 0\n",
		"bad health":    "slo c: health=warp, 1 eval(s), 0 transition(s), 0 violation(s)\n",
		"short row":     "slo c: health=ok, 1 eval(s), 0 transition(s), 0 violation(s)\n0 s0 ok 0\n",
		"bad burn":      "slo c: health=ok, 1 eval(s), 0 transition(s), 0 violation(s)\n0 s0 ok x 0 0.5 0\n",
	}
	for name, text := range cases {
		if _, err := ParseSLO(text); !errors.Is(err, ErrParse) {
			t.Errorf("%s: err = %v, want ErrParse", name, err)
		}
	}
}

// TestOptionalArtifactsSkippedWithNote pins the real-run tolerance: a sim
// artifact dir carrying cycles.txt and ladder.txt diffed against a real-run
// dir that cannot produce them (no cycle meter, no overload sweep on a host)
// must compare the shared core and note the optional files, not fail.
func TestOptionalArtifactsSkippedWithNote(t *testing.T) {
	sim := writeDir(t, map[string]string{
		"stages.txt":  stagesTable(1, 1),
		"metrics.csv": metricsA,
		"cycles.txt":  cyclesA,
		"ladder.txt":  ladderA,
	})
	real := writeDir(t, map[string]string{
		"stages.txt":  stagesTable(1, 1),
		"metrics.csv": metricsA,
		"slo.txt":     sloA,
	})
	r, err := DiffDirs(sim, real, Options{})
	if err != nil {
		t.Fatalf("optional-file asymmetry should not error: %v", err)
	}
	if len(r.Compared) != 2 || r.Compared[0] != "stages.txt" || r.Compared[1] != "metrics.csv" {
		t.Fatalf("Compared = %v, want the shared core", r.Compared)
	}
	if len(r.MissingA) != 0 || len(r.MissingB) != 0 {
		t.Fatalf("optional files misfiled as missing: A=%v B=%v", r.MissingA, r.MissingB)
	}
	if len(r.Skipped) != 3 {
		t.Fatalf("Skipped = %v, want slo.txt + ladder.txt + cycles.txt notes", r.Skipped)
	}
	for _, s := range r.Skipped {
		if !strings.Contains(s, "optional") {
			t.Fatalf("skip note %q lacks the optional marker", s)
		}
	}
	if !strings.Contains(r.Table(), "skipped: ") {
		t.Fatalf("table missing skip notes:\n%s", r.Table())
	}
}

// TestWallClockConformanceMode pins the sim-vs-real tolerances: a 20% p95
// drift is below the widened 50% threshold (wall-clock noise), a 2× drift
// still regresses, and max_us growth is demoted to info with a note.
func TestWallClockConformanceMode(t *testing.T) {
	a := writeDir(t, map[string]string{"stages.txt": stagesTable(1, 1)})
	drift := writeDir(t, map[string]string{"stages.txt": stagesTable(6, 5)})
	double := writeDir(t, map[string]string{"stages.txt": stagesTable(2, 1)})

	r, err := DiffDirs(a, drift, Options{WallClock: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "conformance" {
		t.Fatalf("Mode = %q, want conformance", r.Mode)
	}
	if r.Regression() {
		t.Fatalf("20%% drift should be inside wall-clock tolerance:\n%s", r.Table())
	}
	if !strings.Contains(r.Table(), "mode: conformance") {
		t.Fatalf("table missing mode line:\n%s", r.Table())
	}

	r2, err := DiffDirs(a, double, Options{WallClock: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Regression() {
		t.Fatalf("2x queue latency should regress even with wall-clock tolerance:\n%s", r2.Table())
	}
	for _, f := range r2.Findings {
		if strings.HasSuffix(f.Series, ".max_us") {
			if f.Severity != SevInfo || !strings.Contains(f.Note, "noisy") {
				t.Fatalf("wall-clock max not demoted: %+v", f)
			}
		}
	}
	if !strings.Contains(r2.JSON(), `"mode": "conformance"`) {
		t.Fatalf("JSON missing mode:\n%s", r2.JSON())
	}

	// An explicit threshold overrides the widened default.
	r3, err := DiffDirs(a, drift, Options{WallClock: true, Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Regression() {
		t.Fatalf("explicit 10%% threshold ignored in conformance mode:\n%s", r3.Table())
	}
}
