package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCycleTime(t *testing.T) {
	m := I960RD()
	// 66 MHz → 15.15 ns/cycle.
	ct := m.CycleTime()
	if ct < 15 || ct > 16 {
		t.Fatalf("i960 cycle time = %v ns, want ~15", int64(ct))
	}
	if got := m.Duration(66_000_000); got != sim.Second {
		t.Fatalf("66M cycles at 66MHz = %v, want 1s", got)
	}
}

func TestNilMeterIsNoop(t *testing.T) {
	var m *Meter
	m.Int(5)
	m.Frac(3)
	m.CtxSwitch()
	m.ChargeCycles(100)
	m.Reset()
	if m.Cycles() != 0 || m.Elapsed() != 0 || m.Count(OpInt) != 0 {
		t.Fatal("nil meter should accumulate nothing")
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(I960RD())
	m.Int(10)
	m.Branch(5)
	m.MemRead(3)
	if got := m.Count(OpInt); got != 10 {
		t.Errorf("int count = %d", got)
	}
	want := int64(10*1 + 5*2 + 3*2)
	if got := m.Cycles(); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	m.Reset()
	if m.Cycles() != 0 {
		t.Error("reset did not clear cycles")
	}
}

func TestUncachedPenaltyAppliesOnlyToMemory(t *testing.T) {
	on := NewMeter(I960RD())
	off := NewMeter(I960RD())
	off.CacheOn = false
	for _, m := range []*Meter{on, off} {
		m.MemRead(10)
		m.MemWrite(10)
		m.Int(10)
		m.RegRead(10)
	}
	delta := off.Cycles() - on.Cycles()
	want := int64(20 * I960RD().UncachedPenalty)
	if delta != want {
		t.Fatalf("cache-off delta = %d cycles, want %d", delta, want)
	}
}

func TestRegisterAccessCheaperThanUncachedMemory(t *testing.T) {
	m := NewMeter(I960RD())
	m.CacheOn = false
	m.RegRead(1)
	reg := m.Cycles()
	m.Reset()
	m.MemRead(1)
	mem := m.Cycles()
	if reg >= mem {
		t.Fatalf("register read (%d) should be cheaper than uncached memory read (%d)", reg, mem)
	}
}

func TestFracChargesByArithmeticMode(t *testing.T) {
	model := I960RD()
	soft := NewMeter(model)
	soft.Arith = SoftFP
	fix := NewMeter(model)
	fix.Arith = FixedPoint
	soft.Frac(1)
	fix.Frac(1)
	if soft.Cycles() <= fix.Cycles() {
		t.Fatalf("softFP (%d cycles) should cost more than fixed (%d)", soft.Cycles(), fix.Cycles())
	}
	// NativeFP on an FPU-less model falls back to the software library.
	native := NewMeter(model)
	native.Arith = NativeFP
	native.Frac(1)
	if native.Cycles() != soft.Cycles() {
		t.Fatalf("nativeFP on i960 = %d cycles, want softFP cost %d", native.Cycles(), soft.Cycles())
	}
	// NativeFP on a host CPU uses the FPU.
	host := NewMeter(UltraSparc300())
	host.Arith = NativeFP
	host.Frac(1)
	if host.Cycles() >= soft.Cycles() {
		t.Fatalf("host native FP should be cheap, got %d cycles", host.Cycles())
	}
}

func TestSoftFPCostDominatesFixed(t *testing.T) {
	// The paper's ~20µs-per-decision gap requires softFP ≫ fixed per op.
	m := I960RD()
	if m.Cost[OpSoftFP] < 5*m.Cost[OpFixed] {
		t.Fatalf("softFP (%d) should be ≫ fixed (%d)", m.Cost[OpSoftFP], m.Cost[OpFixed])
	}
}

func TestLapAccounting(t *testing.T) {
	m := NewMeter(I960RD())
	lap := StartLap(m)
	m.Int(66) // 66 cycles = 1 µs at 66 MHz
	d1 := lap.Take()
	if d1 != sim.Microsecond {
		t.Fatalf("lap 1 = %v, want 1µs", d1)
	}
	m.Int(132)
	d2 := lap.Take()
	if d2 != 2*sim.Microsecond {
		t.Fatalf("lap 2 = %v, want 2µs", d2)
	}
	if lap.Take() != 0 {
		t.Fatal("empty lap should be 0")
	}
}

func TestLapOnNilMeter(t *testing.T) {
	lap := StartLap(nil)
	if lap.Take() != 0 {
		t.Fatal("nil-meter lap should be 0")
	}
}

func TestOpClassString(t *testing.T) {
	if OpSoftFP.String() != "softFP" {
		t.Errorf("OpSoftFP = %q", OpSoftFP.String())
	}
	if OpClass(99).String() != "OpClass(99)" {
		t.Errorf("unknown class = %q", OpClass(99).String())
	}
	if FixedPoint.String() != "fixedPoint" || SoftFP.String() != "softFP" || NativeFP.String() != "nativeFP" {
		t.Error("Arithmetic names wrong")
	}
	if Arithmetic(9).String() != "Arithmetic(9)" {
		t.Error("unknown Arithmetic name wrong")
	}
}

// Property: cycles are additive and order-independent for a fixed multiset
// of operations.
func TestMeterAdditive(t *testing.T) {
	f := func(ints, branches, reads uint8) bool {
		a := NewMeter(I960RD())
		a.Int(int(ints))
		a.Branch(int(branches))
		a.MemRead(int(reads))
		b := NewMeter(I960RD())
		b.MemRead(int(reads))
		b.Int(int(ints))
		b.Branch(int(branches))
		return a.Cycles() == b.Cycles()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Elapsed is monotone in charged work.
func TestElapsedMonotone(t *testing.T) {
	f := func(n uint16) bool {
		m := NewMeter(PentiumPro200())
		m.Int(int(n))
		before := m.Elapsed()
		m.Int(1)
		return m.Elapsed() >= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
