// Package cpu models the processors in the paper's testbed as per-operation
// cycle-cost meters.
//
// The reproduction does not emulate instruction sets. Instead, the real
// scheduler code (internal/dwcs) charges a Meter for every abstract
// operation it performs — memory reads and writes of descriptors, integer
// comparisons, branch decisions, fraction arithmetic — and the meter converts
// accumulated cycles into simulated time at the processor's clock rate.
// The paper's headline contrasts (software floating point vs fixed point,
// data cache on vs off, memory-mapped register file vs DRAM, 66 MHz i960 RD
// vs 300 MHz UltraSPARC) then emerge from operation counts and per-class
// costs rather than from hard-coded answers.
package cpu

import (
	"fmt"

	"repro/internal/sim"
)

// OpClass identifies a class of abstract operation with a per-model cycle
// cost.
type OpClass int

// Operation classes charged by the scheduler and substrate code.
const (
	OpInt      OpClass = iota // integer ALU operation
	OpBranch                  // conditional branch / loop step
	OpMemRead                 // data load (cost assumes cache hit; see UncachedPenalty)
	OpMemWrite                // data store
	OpRegRead                 // on-chip memory-mapped register read (no external bus cycle)
	OpRegWrite                // on-chip memory-mapped register write
	OpSoftFP                  // software floating-point library operation
	OpNativeFP                // hardware floating-point operation
	OpFixed                   // fixed-point fraction operation (internal/fixed)
	OpCall                    // function call / return overhead
	OpSyscall                 // OS system-call trap (host processors only)
	numOpClasses
)

var opNames = [numOpClasses]string{
	"int", "branch", "memRead", "memWrite", "regRead", "regWrite",
	"softFP", "nativeFP", "fixed", "call", "syscall",
}

// String returns the short name of the class.
func (c OpClass) String() string {
	if c < 0 || int(c) >= len(opNames) {
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
	return opNames[c]
}

// CycleObserver receives a Meter's charged work labeled with the
// (component, operation) context active when it was charged (see
// Meter.SetContext) — the hook behind the telemetry cycle-cost profiler.
// Charges are delivered as aggregated deltas at attribution boundaries
// (SetContext, Observe, Reset, Cycles) rather than one call per charge:
// the context can only change at those same boundaries, so attribution is
// identical, and the meter's per-operation fast paths carry no observer
// code and stay within the compiler's inlining budget. ops counts charged
// operations (0 for pure raw-cycle charges such as context switches);
// cycles is the full cost including any uncached-memory penalty.
type CycleObserver interface {
	ObserveCycles(component, operation string, ops, cycles int64)
}

// Model describes a processor: clock rate plus a cycle cost per operation
// class. Costs are for the cache-enabled case; UncachedPenalty is added to
// every memory read/write when the data cache is disabled, reproducing the
// paper's cache-off measurements (the VxWorks disk driver disables the data
// cache, §4.2).
type Model struct {
	Name            string
	ClockHz         int64
	HasFPU          bool
	Cost            [numOpClasses]int64
	UncachedPenalty int64 // extra cycles per memory access with data cache off
	CtxSwitch       int64 // cycles for a context switch including cache-pollution refill
}

// CycleTime returns the duration of one clock cycle.
func (m *Model) CycleTime() sim.Time {
	return sim.Time(int64(sim.Second) / m.ClockHz)
}

// Duration converts a cycle count into simulated time.
func (m *Model) Duration(cycles int64) sim.Time {
	return sim.Time(cycles * int64(sim.Second) / m.ClockHz)
}

// I960RD models the 66 MHz Intel i960 RD I/O co-processor on the I2O card:
// no FPU (software floating point costs hundreds of cycles), single-issue
// core, on-chip memory-mapped register file reachable without external bus
// cycles, and local DRAM that is slow when the data cache is off.
func I960RD() *Model {
	m := &Model{
		Name:            "i960RD-66MHz",
		ClockHz:         66_000_000,
		HasFPU:          false,
		UncachedPenalty: 8,
		CtxSwitch:       600,
	}
	m.Cost = [numOpClasses]int64{
		OpInt:      1,
		OpBranch:   2,
		OpMemRead:  2,
		OpMemWrite: 2,
		OpRegRead:  1,
		OpRegWrite: 1,
		OpSoftFP:   260, // VxWorks software-FP library call
		OpNativeFP: 260, // no FPU: native requests fall back to the library
		OpFixed:    28,  // fraction compare/update via integer ops and shifts
		OpCall:     8,
		OpSyscall:  0, // standalone VxWorks: no protection-domain crossing
	}
	return m
}

// PentiumPro200 models one 200 MHz Pentium Pro host CPU of the quad server.
func PentiumPro200() *Model {
	m := &Model{
		Name:            "PentiumPro-200MHz",
		ClockHz:         200_000_000,
		HasFPU:          true,
		UncachedPenalty: 30,
		CtxSwitch:       4000, // deep cache hierarchy + pollution (§1, contribution 2)
	}
	m.Cost = [numOpClasses]int64{
		OpInt:      1,
		OpBranch:   1,
		OpMemRead:  3,
		OpMemWrite: 3,
		OpRegRead:  3,
		OpRegWrite: 3,
		OpSoftFP:   200,
		OpNativeFP: 4,
		OpFixed:    20,
		OpCall:     6,
		OpSyscall:  500,
	}
	return m
}

// UltraSparc300 models the 300 MHz UltraSPARC on which the host-based DWCS
// overhead of ~50 µs was measured in the prior work the paper compares to.
func UltraSparc300() *Model {
	m := &Model{
		Name:            "UltraSPARC-300MHz",
		ClockHz:         300_000_000,
		HasFPU:          true,
		UncachedPenalty: 40,
		CtxSwitch:       5000,
	}
	m.Cost = [numOpClasses]int64{
		OpInt:      1,
		OpBranch:   1,
		OpMemRead:  3,
		OpMemWrite: 3,
		OpRegRead:  3,
		OpRegWrite: 3,
		OpSoftFP:   180,
		OpNativeFP: 4,
		OpFixed:    18,
		OpCall:     6,
		OpSyscall:  600,
	}
	return m
}

// Arithmetic selects how the scheduler's fraction arithmetic is charged —
// the paper's software-FP build versus its fixed-point build (§4.2).
type Arithmetic int

const (
	// SoftFP charges every fraction operation as a software floating-point
	// library call (the VxWorks FP library build).
	SoftFP Arithmetic = iota
	// FixedPoint charges fraction operations at integer/shift cost (the
	// paper's own fixed-point library build).
	FixedPoint
	// NativeFP charges hardware floating-point cost; only meaningful on
	// models with an FPU (host processors).
	NativeFP
)

// String names the arithmetic mode.
func (a Arithmetic) String() string {
	switch a {
	case SoftFP:
		return "softFP"
	case FixedPoint:
		return "fixedPoint"
	case NativeFP:
		return "nativeFP"
	default:
		return fmt.Sprintf("Arithmetic(%d)", int(a))
	}
}

// Meter accumulates operation counts and cycles for code executing on one
// processor. A nil *Meter is valid and charges nothing, so instrumented code
// can call it unconditionally.
type Meter struct {
	Model   *Model
	CacheOn bool       // data cache state (paper Tables 1 vs 2)
	Arith   Arithmetic // how fraction math is charged

	cycles int64
	counts [numOpClasses]int64

	obs       CycleObserver // optional; receives attribution deltas at context boundaries
	comp, op  string        // current attribution context
	obsOps    int64         // ops already reported to obs
	obsCycles int64         // cycles already reported to obs
}

// flushObserved reports everything charged since the previous flush to the
// observer, attributed to the current context. It runs only at attribution
// boundaries — SetContext, Observe, Reset, Cycles — so the per-charge fast
// paths (Op and friends) carry no observer code; the context cannot change
// between boundaries, so the aggregate attribution matches a per-charge
// report exactly. Callers guard on m.obs != nil.
func (m *Meter) flushObserved() {
	var ops int64
	for _, n := range m.counts {
		ops += n
	}
	if ops != m.obsOps || m.cycles != m.obsCycles {
		m.obs.ObserveCycles(m.comp, m.op, ops-m.obsOps, m.cycles-m.obsCycles)
		m.obsOps, m.obsCycles = ops, m.cycles
	}
}

// Observe attaches a cycle observer; nil detaches, flushing any pending
// attribution to the outgoing observer first. Charges made before attach
// are not reported retroactively.
func (m *Meter) Observe(obs CycleObserver) {
	if m == nil {
		return
	}
	if m.obs != nil {
		m.flushObserved()
	}
	m.obs = obs
	var ops int64
	for _, n := range m.counts {
		ops += n
	}
	m.obsOps, m.obsCycles = ops, m.cycles
}

// SetContext labels subsequent charges with a (component, operation) pair
// for cycle attribution and returns the previous labels so callers can
// restore them on exit:
//
//	prevC, prevO := m.SetContext("dwcs", "decision")
//	defer m.SetContext(prevC, prevO)
func (m *Meter) SetContext(component, operation string) (prevComponent, prevOperation string) {
	if m == nil {
		return "", ""
	}
	if m.obs != nil {
		m.flushObserved()
	}
	prevComponent, prevOperation = m.comp, m.op
	m.comp, m.op = component, operation
	return prevComponent, prevOperation
}

// NewMeter returns a meter for model with the cache enabled and fixed-point
// arithmetic.
func NewMeter(model *Model) *Meter {
	return &Meter{Model: model, CacheOn: true, Arith: FixedPoint}
}

// Op charges n operations of class c.
func (m *Meter) Op(c OpClass, n int) {
	if m == nil || n == 0 {
		return
	}
	m.counts[c] += int64(n)
	cost := m.Model.Cost[c]
	if !m.CacheOn && (c == OpMemRead || c == OpMemWrite) {
		cost += m.Model.UncachedPenalty
	}
	m.cycles += cost * int64(n)
}

// Int charges n integer ALU operations.
func (m *Meter) Int(n int) { m.Op(OpInt, n) }

// Branch charges n branches.
func (m *Meter) Branch(n int) { m.Op(OpBranch, n) }

// MemRead charges n data loads.
func (m *Meter) MemRead(n int) { m.Op(OpMemRead, n) }

// MemWrite charges n data stores.
func (m *Meter) MemWrite(n int) { m.Op(OpMemWrite, n) }

// RegRead charges n on-chip register reads.
func (m *Meter) RegRead(n int) { m.Op(OpRegRead, n) }

// RegWrite charges n on-chip register writes.
func (m *Meter) RegWrite(n int) { m.Op(OpRegWrite, n) }

// Call charges n function-call overheads.
func (m *Meter) Call(n int) { m.Op(OpCall, n) }

// Syscall charges n system-call traps.
func (m *Meter) Syscall(n int) { m.Op(OpSyscall, n) }

// Frac charges n fraction (loss-tolerance) operations according to the
// configured Arithmetic mode.
func (m *Meter) Frac(n int) {
	if m == nil {
		return
	}
	switch m.Arith {
	case SoftFP:
		m.Op(OpSoftFP, n)
	case NativeFP:
		if m.Model.HasFPU {
			m.Op(OpNativeFP, n)
		} else {
			m.Op(OpSoftFP, n)
		}
	default:
		m.Op(OpFixed, n)
	}
}

// CtxSwitch charges one context switch on the model.
func (m *Meter) CtxSwitch() {
	if m == nil {
		return
	}
	m.cycles += m.Model.CtxSwitch
}

// ChargeCycles adds raw cycles (driver fixed costs and the like).
func (m *Meter) ChargeCycles(c int64) {
	if m == nil {
		return
	}
	m.cycles += c
}

// Cycles returns accumulated cycles. When an observer is attached, pending
// attribution is flushed first, so an observer that saw every boundary
// reconciles exactly with the returned count.
func (m *Meter) Cycles() int64 {
	if m == nil {
		return 0
	}
	if m.obs != nil {
		m.flushObserved()
	}
	return m.cycles
}

// Count returns how many operations of class c were charged.
func (m *Meter) Count(c OpClass) int64 {
	if m == nil {
		return 0
	}
	return m.counts[c]
}

// Elapsed converts accumulated cycles to simulated time.
func (m *Meter) Elapsed() sim.Time {
	if m == nil {
		return 0
	}
	return m.Model.Duration(m.cycles)
}

// Reset zeroes the accumulated cycles and counts.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	if m.obs != nil {
		m.flushObserved()
	}
	m.cycles = 0
	m.counts = [numOpClasses]int64{}
	m.obsOps, m.obsCycles = 0, 0
}

// Lap returns the time accumulated since the previous Lap (or Reset) and
// marks the new lap start. It is how callers convert a burst of charged
// operations into one simulated-time interval.
type Lap struct {
	meter *Meter
	mark  int64
}

// StartLap begins interval accounting on m.
func StartLap(m *Meter) *Lap { return &Lap{meter: m, mark: m.Cycles()} }

// Take returns the simulated time of cycles charged since the last Take (or
// StartLap) and advances the mark.
func (l *Lap) Take() sim.Time {
	if l.meter == nil {
		return 0
	}
	now := l.meter.Cycles()
	d := l.meter.Model.Duration(now - l.mark)
	l.mark = now
	return d
}
