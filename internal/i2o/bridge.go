package i2o

import (
	"repro/internal/core"
)

// VCMBridge exposes a card's VCM as an I2O device: DVCM communication
// instructions travel as private-function (0xFF) message frames, which is
// how the paper's host-side DVCM API reaches the NI-resident extensions on
// I2O boards ("these extensions are implemented as device drivers
// interacting with the I2O boards via PCI interfaces", §2).
type VCMBridge struct {
	ID  TID
	VCM *core.VCM
}

// TID implements Device.
func (b *VCMBridge) TID() TID { return b.ID }

// Handle implements Device: route the embedded instruction into the VCM.
func (b *VCMBridge) Handle(f *Frame) (any, uint8) {
	if f.Function != FnPrivate {
		return nil, StatusErrBadFunction
	}
	in, ok := f.Payload.(core.Instr)
	if !ok {
		return "i2o: private frame payload is not a DVCM instruction", StatusErrAborted
	}
	res, err := b.VCM.Invoke(in)
	if err != nil {
		return err.Error(), StatusErrAborted
	}
	return res, StatusSuccess
}
