package i2o

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/nic"
	"repro/internal/sim"
)

func newIOP(eng *sim.Engine, mutate ...func(*Config)) (*IOP, *HostDriver) {
	cfg := Config{Name: "iop0", PCI: bus.New(eng, bus.PCI("pci0"))}
	for _, m := range mutate {
		m(&cfg)
	}
	iop := NewIOP(eng, cfg)
	return iop, NewHostDriver(iop)
}

func TestExecStatusGet(t *testing.T) {
	eng := sim.NewEngine(1)
	iop, drv := newIOP(eng)
	var got map[string]int
	drv.Submit(ExecutiveTID, FnExecStatusGet, nil, func(reply any, status uint8) {
		if status != StatusSuccess {
			t.Errorf("status = %#x", status)
		}
		got = reply.(map[string]int)
	})
	eng.Run()
	if got == nil {
		t.Fatal("no reply")
	}
	if got["devices"] != 1 {
		t.Errorf("devices = %d, want 1 (executive)", got["devices"])
	}
	if iop.Posted != 1 || iop.Replied != 1 {
		t.Errorf("posted/replied = %d/%d", iop.Posted, iop.Replied)
	}
}

func TestNopAndBadFunction(t *testing.T) {
	eng := sim.NewEngine(1)
	_, drv := newIOP(eng)
	var nopStatus, badStatus uint8 = 0xEE, 0xEE
	drv.Submit(ExecutiveTID, FnUtilNop, nil, func(_ any, s uint8) { nopStatus = s })
	drv.Submit(ExecutiveTID, FnUtilEventAck, nil, func(_ any, s uint8) { badStatus = s })
	eng.Run()
	if nopStatus != StatusSuccess {
		t.Errorf("nop status = %#x", nopStatus)
	}
	if badStatus != StatusErrBadFunction {
		t.Errorf("unsupported-function status = %#x", badStatus)
	}
}

func TestUnknownTarget(t *testing.T) {
	eng := sim.NewEngine(1)
	iop, drv := newIOP(eng)
	var status uint8
	drv.Submit(TID(99), FnUtilNop, nil, func(_ any, s uint8) { status = s })
	eng.Run()
	if status != StatusErrNoDevice {
		t.Fatalf("status = %#x", status)
	}
	if iop.Faulted != 1 {
		t.Fatalf("faulted = %d", iop.Faulted)
	}
}

func TestDeviceRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	iop, drv := newIOP(eng)
	echo := DeviceFunc{ID: 5, Fn: func(f *Frame) (any, uint8) {
		return f.Payload, StatusSuccess
	}}
	if err := iop.AttachDevice(echo); err != nil {
		t.Fatal(err)
	}
	if err := iop.AttachDevice(echo); err == nil {
		t.Fatal("duplicate TID should fail")
	}
	var got any
	drv.Submit(5, FnPrivate, "hello", func(reply any, status uint8) { got = reply })
	eng.Run()
	if got != "hello" {
		t.Fatalf("reply = %v", got)
	}
}

func TestMessagingCostsPCITime(t *testing.T) {
	eng := sim.NewEngine(1)
	seg := bus.New(eng, bus.PCI("pci0"))
	iop := NewIOP(eng, Config{Name: "iop0", PCI: seg})
	drv := NewHostDriver(iop)
	var doneAt sim.Time
	drv.Submit(ExecutiveTID, FnUtilNop, nil, func(any, uint8) { doneAt = eng.Now() })
	eng.Run()
	// The round trip pays alloc read + frame-post writes + dispatch +
	// reply reads + MFA return: well over the bare PIO write time, and the
	// bus must actually have carried words both ways.
	if doneAt < 60*sim.Microsecond {
		t.Fatalf("round trip = %v, implausibly fast", doneAt)
	}
	if seg.Stats.PIOReads == 0 || seg.Stats.PIOWrites == 0 {
		t.Fatalf("bus stats = %+v", seg.Stats)
	}
}

func TestInboundExhaustionRetries(t *testing.T) {
	eng := sim.NewEngine(1)
	_, drv := newIOP(eng, func(c *Config) { c.InboundMFAs = 2 })
	done := 0
	for i := 0; i < 20; i++ {
		drv.Submit(ExecutiveTID, FnUtilNop, nil, func(any, uint8) { done++ })
	}
	eng.Run()
	if done != 20 {
		t.Fatalf("completed %d of 20 with a 2-frame inbound pool", done)
	}
}

func TestOutboundExhaustionStallsThenDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	_, drv := newIOP(eng, func(c *Config) { c.OutboundMFAs = 1 })
	done := 0
	for i := 0; i < 10; i++ {
		drv.Submit(ExecutiveTID, FnUtilNop, nil, func(any, uint8) { done++ })
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("completed %d of 10 with a 1-frame outbound pool", done)
	}
}

func TestVCMBridgeCarriesDVCMInstructions(t *testing.T) {
	// Full stack: host OSM → I2O frames → VCM bridge → media-scheduler
	// extension on the card.
	eng := sim.NewEngine(1)
	seg := bus.New(eng, bus.PCI("pci0"))
	card := nic.New(eng, nic.Config{Name: "ni0", PCI: seg, CacheOn: true})
	ext, err := card.LoadScheduler(nic.SchedulerConfig{WorkConserving: true})
	if err != nil {
		t.Fatal(err)
	}
	iop := NewIOP(eng, Config{Name: "ni0-iop", PCI: seg})
	if err := iop.AttachDevice(&VCMBridge{ID: 1, VCM: card.VCM}); err != nil {
		t.Fatal(err)
	}
	drv := NewHostDriver(iop)

	spec := dwcs.StreamSpec{ID: 7, Name: "s", Period: 10 * sim.Millisecond,
		Loss: fixed.New(1, 2), Lossy: true, BufCap: 8}
	drv.Submit(1, FnPrivate, core.Instr{Ext: "dwcs", Op: "addStream", Arg: spec},
		func(_ any, status uint8) {
			if status != StatusSuccess {
				t.Errorf("addStream status = %#x", status)
			}
		})
	for i := 0; i < 3; i++ {
		drv.Submit(1, FnPrivate, core.Instr{Ext: "dwcs", Op: "enqueue",
			Arg: nic.EnqueueArgs{StreamID: 7, Packet: dwcs.Packet{Bytes: 500}}}, nil)
	}
	eng.RunUntil(sim.Second)
	if ext.Sent != 3 {
		t.Fatalf("scheduler sent %d frames, want 3", ext.Sent)
	}
	var stats dwcs.StreamStats
	drv.Submit(1, FnPrivate, core.Instr{Ext: "dwcs", Op: "stats", Arg: 7},
		func(reply any, status uint8) {
			stats = reply.(dwcs.StreamStats)
		})
	eng.Run()
	if stats.Serviced != 3 {
		t.Fatalf("stats over I2O = %+v", stats)
	}
}

func TestVCMBridgeErrors(t *testing.T) {
	eng := sim.NewEngine(1)
	_, drv := newIOP(eng)
	iop := drv.iop
	vcm := core.NewVCM("ni0")
	iop.AttachDevice(&VCMBridge{ID: 2, VCM: vcm})
	var s1, s2 uint8
	drv.Submit(2, FnUtilNop, nil, func(_ any, s uint8) { s1 = s })            // wrong function
	drv.Submit(2, FnPrivate, "not-an-instr", func(_ any, s uint8) { s2 = s }) // bad payload
	var s3 uint8
	drv.Submit(2, FnPrivate, core.Instr{Ext: "none"}, func(_ any, s uint8) { s3 = s }) // unknown ext
	eng.Run()
	if s1 != StatusErrBadFunction || s2 != StatusErrAborted || s3 != StatusErrAborted {
		t.Fatalf("statuses = %#x %#x %#x", s1, s2, s3)
	}
}

// Property: every submitted message gets exactly one completion, for any
// pool sizes.
func TestCompletionConservation(t *testing.T) {
	f := func(nMsgs, inPool, outPool uint8) bool {
		n := int(nMsgs)%64 + 1
		eng := sim.NewEngine(9)
		iop := NewIOP(eng, Config{
			Name:         "iop",
			PCI:          bus.New(eng, bus.PCI("p")),
			InboundMFAs:  int(inPool)%8 + 1,
			OutboundMFAs: int(outPool)%8 + 1,
		})
		drv := NewHostDriver(iop)
		done := 0
		for i := 0; i < n; i++ {
			drv.Submit(ExecutiveTID, FnUtilNop, nil, func(any, uint8) { done++ })
		}
		eng.Run()
		return done == n && drv.Outstanding() == 0 && iop.Replied == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsolicitedEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	iop, drv := newIOP(eng)
	// The event's ack lands on a device so we can observe it.
	acks := 0
	iop.AttachDevice(DeviceFunc{ID: 4, Fn: func(f *Frame) (any, uint8) {
		if f.Function == FnUtilEventAck {
			acks++
		}
		return nil, StatusSuccess
	}})
	var got Event
	drv.OnEvent(0x77, func(e Event) { got = e })
	eng.At(10*sim.Microsecond, func() { iop.PostEvent(4, 0x77, "link-down") })
	eng.Run()
	if got.Code != 0x77 || got.From != 4 || got.Data != "link-down" {
		t.Fatalf("event = %+v", got)
	}
	if drv.Events != 1 {
		t.Fatalf("events = %d", drv.Events)
	}
	if acks != 1 {
		t.Fatalf("acks = %d, want the OSM's automatic event ack", acks)
	}
}

func TestUnhandledEventStillCountsAndAcks(t *testing.T) {
	eng := sim.NewEngine(1)
	iop, drv := newIOP(eng)
	iop.AttachDevice(DeviceFunc{ID: 4, Fn: func(*Frame) (any, uint8) { return nil, StatusSuccess }})
	eng.At(sim.Microsecond, func() { iop.PostEvent(4, 0x99, nil) })
	eng.Run()
	if drv.Events != 1 {
		t.Fatalf("events = %d", drv.Events)
	}
	if drv.Outstanding() != 0 {
		t.Fatal("event handling leaked a pending transaction")
	}
}

func TestEventWithExhaustedOutboundPoolRetries(t *testing.T) {
	eng := sim.NewEngine(1)
	iop, drv := newIOP(eng, func(c *Config) { c.OutboundMFAs = 1 })
	iop.AttachDevice(DeviceFunc{ID: 4, Fn: func(*Frame) (any, uint8) { return nil, StatusSuccess }})
	seen := 0
	drv.OnEvent(1, func(Event) { seen++ })
	// Saturate the outbound pool with regular traffic while posting events.
	for i := 0; i < 5; i++ {
		drv.Submit(ExecutiveTID, FnUtilNop, nil, nil)
	}
	eng.At(sim.Microsecond, func() {
		for i := 0; i < 3; i++ {
			iop.PostEvent(4, 1, i)
		}
	})
	eng.Run()
	if seen != 3 {
		t.Fatalf("events seen = %d of 3", seen)
	}
}
