// Package i2o implements the I2O (Intelligent I/O) message-passing layer
// between the host and the i960 RD I/O processors.
//
// The paper's NIs are I2O-compliant boards (§1): "The I2O industry
// consortium has defined a specification for development of I/O hardware
// and software. It allows portable device driver development by defining a
// message-passing protocol between the host and peer I/O devices" (§5).
// The DVCM host API of internal/core rides on this layer.
//
// The model follows the I2O 1.5 architecture:
//
//   - Each IOP exposes an *inbound* queue pair (free-list FIFO + post FIFO)
//     and an *outbound* queue pair. Queue entries are MFAs — message frame
//     addresses — pointing at message frames in the IOP's shared memory.
//   - The host allocates an inbound MFA (a PIO read of the free FIFO),
//     fills the frame (PIO writes), and posts it (a PIO write). The IOP's
//     dispatcher consumes posted frames and routes them to target devices
//     (TIDs) by function code.
//   - Replies travel the outbound pair the opposite way; the host driver
//     polls or is interrupted, reads the reply frame, and returns the MFA
//     to the outbound free list.
//
// Message frames follow the spec's layout in spirit: version/offset, flags,
// size, target/initiator addresses, function code, transaction context, and
// an inline payload.
package i2o

import (
	"errors"
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// Function codes (a representative subset of the I2O spec's executive and
// device classes, plus the private code DVCM instructions use).
const (
	FnExecStatusGet    = 0xA0 // executive: status
	FnExecOutboundInit = 0xA1 // executive: initialize outbound queue
	FnUtilNop          = 0x10 // utility: no-op
	FnUtilEventReg     = 0x13 // utility: event notification (IOP → host)
	FnUtilEventAck     = 0x14 // utility: event acknowledge
	FnPrivate          = 0xFF // private/vendor: carries DVCM instructions
)

// Reply status codes.
const (
	StatusSuccess        = 0x00
	StatusErrBadFunction = 0x81
	StatusErrNoDevice    = 0x82
	StatusErrAborted     = 0x83
)

// TID identifies a target device on the IOP (the executive is TID 0).
type TID uint16

// ExecutiveTID is the IOP's own management device.
const ExecutiveTID TID = 0

// Frame is one I2O message frame.
type Frame struct {
	MFA       uint32 // message frame address (queue token)
	Function  uint8
	Target    TID
	Initiator TID
	Context   uint32 // transaction context, echoed in the reply
	Status    uint8  // reply status
	Payload   any    // inline payload (simulation carries Go values)
}

// frameWords is the PIO cost of moving one frame header+payload descriptor
// across the PCI bus (the spec's default frame is 64 bytes = 16 words).
const frameWords = 16

// Errors.
var (
	ErrNoFrames  = errors.New("i2o: inbound free list empty")
	ErrBadTarget = errors.New("i2o: no such target device")
	ErrQueueFull = errors.New("i2o: queue full")
)

// Device is a target on the IOP that consumes messages. The handler runs in
// IOP context and returns the reply payload and status.
type Device interface {
	// TID returns the device's address.
	TID() TID
	// Handle processes one message, returning reply payload and status.
	Handle(f *Frame) (reply any, status uint8)
}

// DeviceFunc adapts a function to Device.
type DeviceFunc struct {
	ID TID
	Fn func(f *Frame) (any, uint8)
}

// TID implements Device.
func (d DeviceFunc) TID() TID { return d.ID }

// Handle implements Device.
func (d DeviceFunc) Handle(f *Frame) (any, uint8) { return d.Fn(f) }

// IOP is one I/O processor's messaging unit: the four FIFOs plus the
// device table and dispatcher.
type IOP struct {
	eng  *sim.Engine
	name string
	pci  *bus.Bus

	inFree   []uint32 // MFAs available to the host
	inPost   []*Frame // host→IOP posted messages
	outFree  []uint32
	outPost  []*Frame // IOP→host replies
	frames   map[uint32]*Frame
	devices  map[TID]Device
	dispatch sim.Time // IOP-side per-message processing cost

	// OnOutbound, if set, is invoked when a reply is posted (models the
	// PCI interrupt to the host).
	OnOutbound func()

	// Stats.
	Posted  int64
	Replied int64
	Faulted int64
}

// Config sizes an IOP messaging unit.
type Config struct {
	Name         string
	PCI          *bus.Bus
	InboundMFAs  int      // frames on the inbound free list
	OutboundMFAs int      // frames on the outbound free list
	DispatchCost sim.Time // IOP processing per message (66 MHz i960 work)
}

// NewIOP initializes the queues, like the BIOS/IOP firmware handshake does.
func NewIOP(eng *sim.Engine, cfg Config) *IOP {
	if cfg.InboundMFAs == 0 {
		cfg.InboundMFAs = 32
	}
	if cfg.OutboundMFAs == 0 {
		cfg.OutboundMFAs = 32
	}
	if cfg.DispatchCost == 0 {
		cfg.DispatchCost = 25 * sim.Microsecond
	}
	iop := &IOP{
		eng:      eng,
		name:     cfg.Name,
		pci:      cfg.PCI,
		frames:   make(map[uint32]*Frame),
		devices:  make(map[TID]Device),
		dispatch: cfg.DispatchCost,
	}
	for i := 0; i < cfg.InboundMFAs; i++ {
		mfa := uint32(0x1000 + i*64)
		iop.inFree = append(iop.inFree, mfa)
		iop.frames[mfa] = &Frame{MFA: mfa}
	}
	for i := 0; i < cfg.OutboundMFAs; i++ {
		mfa := uint32(0x9000 + i*64)
		iop.outFree = append(iop.outFree, mfa)
		iop.frames[mfa] = &Frame{MFA: mfa}
	}
	// The executive answers status and no-op requests itself.
	iop.devices[ExecutiveTID] = DeviceFunc{ID: ExecutiveTID, Fn: iop.execHandle}
	return iop
}

// Name returns the IOP name.
func (iop *IOP) Name() string { return iop.name }

// AttachDevice registers a target device (e.g. the DVCM bridge).
func (iop *IOP) AttachDevice(d Device) error {
	if _, dup := iop.devices[d.TID()]; dup {
		return fmt.Errorf("i2o: TID %d already attached", d.TID())
	}
	iop.devices[d.TID()] = d
	return nil
}

func (iop *IOP) execHandle(f *Frame) (any, uint8) {
	switch f.Function {
	case FnExecStatusGet:
		return map[string]int{
			"inboundFree":  len(iop.inFree),
			"outboundFree": len(iop.outFree),
			"devices":      len(iop.devices),
		}, StatusSuccess
	case FnUtilNop:
		return nil, StatusSuccess
	default:
		return nil, StatusErrBadFunction
	}
}

// allocInbound pops an MFA from the inbound free list (host side; one PIO
// read).
func (iop *IOP) allocInbound(done func(mfa uint32, err error)) {
	iop.pci.PIORead(1, func() {
		if len(iop.inFree) == 0 {
			done(0, ErrNoFrames)
			return
		}
		mfa := iop.inFree[0]
		iop.inFree = iop.inFree[1:]
		done(mfa, nil)
	})
}

// post fills the frame and pushes it on the inbound post FIFO (host side;
// frame body + doorbell PIO writes), then schedules the IOP dispatcher.
func (iop *IOP) post(mfa uint32, fill func(*Frame), done func(err error)) {
	iop.pci.PIOWrite(frameWords+1, func() {
		f := iop.frames[mfa]
		fill(f)
		f.MFA = mfa
		iop.inPost = append(iop.inPost, f)
		iop.Posted++
		iop.eng.After(iop.dispatch, iop.drainInbound)
		done(nil)
	})
}

// drainInbound runs in IOP context: route one posted message to its device
// and produce the reply.
func (iop *IOP) drainInbound() {
	if len(iop.inPost) == 0 {
		return
	}
	f := iop.inPost[0]
	iop.inPost = iop.inPost[1:]
	dev, ok := iop.devices[f.Target]
	var reply any
	var status uint8
	if !ok {
		reply, status = nil, StatusErrNoDevice
		iop.Faulted++
	} else {
		reply, status = dev.Handle(f)
		if status != StatusSuccess {
			iop.Faulted++
		}
	}
	// Copy the request header before the frame returns to the free list —
	// a retried Submit may reuse and overwrite it while a stalled reply is
	// still pending.
	req := *f
	iop.inFree = append(iop.inFree, f.MFA)
	if len(iop.outFree) == 0 {
		// Spec behaviour: the IOP stalls replies until the host returns
		// outbound frames; model as retry.
		iop.eng.After(iop.dispatch, func() { iop.requeueReply(&req, reply, status) })
		return
	}
	iop.sendReply(&req, reply, status)
}

func (iop *IOP) requeueReply(req *Frame, reply any, status uint8) {
	if len(iop.outFree) == 0 {
		iop.eng.After(iop.dispatch, func() { iop.requeueReply(req, reply, status) })
		return
	}
	iop.sendReply(req, reply, status)
}

func (iop *IOP) sendReply(req *Frame, reply any, status uint8) {
	mfa := iop.outFree[0]
	iop.outFree = iop.outFree[1:]
	rf := iop.frames[mfa]
	rf.Function = req.Function
	rf.Target = req.Initiator
	rf.Initiator = req.Target
	rf.Context = req.Context
	rf.Status = status
	rf.Payload = reply
	iop.outPost = append(iop.outPost, rf)
	iop.Replied++
	if iop.OnOutbound != nil {
		iop.OnOutbound()
	}
}

// Event is an unsolicited IOP→host notification (link state change,
// temperature, device fault — the I2O utility-class event model).
type Event struct {
	Code uint32
	From TID
	Data any
}

// HostDriver is the host-resident OSM (operating-system service module): it
// tracks outstanding transactions and completes them when replies arrive,
// and dispatches unsolicited event notifications to registered handlers.
type HostDriver struct {
	iop      *IOP
	nextCtx  uint32
	pending  map[uint32]func(reply any, status uint8)
	handlers map[uint32]func(Event)

	// Sent counts messages submitted; Completed counts replies delivered;
	// Events counts notifications dispatched (unhandled ones included).
	Sent      int64
	Completed int64
	Events    int64
}

// NewHostDriver binds a driver to an IOP and hooks its outbound doorbell.
func NewHostDriver(iop *IOP) *HostDriver {
	d := &HostDriver{
		iop:      iop,
		pending:  make(map[uint32]func(any, uint8)),
		handlers: make(map[uint32]func(Event)),
	}
	iop.OnOutbound = d.poll
	return d
}

// OnEvent registers a handler for one event code.
func (d *HostDriver) OnEvent(code uint32, h func(Event)) { d.handlers[code] = h }

// Submit sends a message to target with the given function code and
// payload; complete runs when the reply arrives (it may be nil for posted
// writes the caller doesn't track).
func (d *HostDriver) Submit(target TID, function uint8, payload any, complete func(reply any, status uint8)) {
	d.iop.allocInbound(func(mfa uint32, err error) {
		if err != nil {
			// No inbound frames: back off one dispatch interval and retry,
			// as a real OSM does.
			d.iop.eng.After(d.iop.dispatch, func() {
				d.Submit(target, function, payload, complete)
			})
			return
		}
		d.nextCtx++
		ctx := d.nextCtx
		if complete != nil {
			d.pending[ctx] = complete
		}
		d.iop.post(mfa, func(f *Frame) {
			f.Function = function
			f.Target = target
			f.Initiator = 0xFFF // host
			f.Context = ctx
			f.Payload = payload
			f.Status = 0
		}, func(error) {
			d.Sent++
		})
	})
}

// poll drains the outbound post FIFO (host side: PIO read per frame plus
// the MFA return write).
func (d *HostDriver) poll() {
	if len(d.iop.outPost) == 0 {
		return
	}
	d.iop.pci.PIORead(frameWords, func() {
		if len(d.iop.outPost) == 0 {
			return
		}
		f := d.iop.outPost[0]
		d.iop.outPost = d.iop.outPost[1:]
		isEvent := f.Function == FnUtilEventReg
		var complete func(any, uint8)
		if !isEvent {
			complete = d.pending[f.Context]
			delete(d.pending, f.Context)
		}
		reply, status, ev := f.Payload, f.Status, Event{Code: f.Context, From: f.Initiator}
		if isEvent {
			ev.Data = f.Payload
		}
		// Return the MFA to the outbound free list (posted write).
		d.iop.pci.PIOWrite(1, func() {
			d.iop.outFree = append(d.iop.outFree, f.MFA)
			if isEvent {
				d.Events++
				if h := d.handlers[ev.Code]; h != nil {
					h(ev)
				}
				// Acknowledge per the spec's event protocol.
				d.Submit(ev.From, FnUtilEventAck, ev.Code, nil)
			} else {
				d.Completed++
				if complete != nil {
					complete(reply, status)
				}
			}
			// More replies may be waiting.
			d.poll()
		})
	})
}

// Outstanding reports transactions awaiting replies.
func (d *HostDriver) Outstanding() int { return len(d.pending) }

// PostEvent lets a device (or the executive) raise an unsolicited
// notification toward the host. It takes an outbound frame like a reply
// does, retrying while the pool is empty.
func (iop *IOP) PostEvent(from TID, code uint32, data any) {
	if len(iop.outFree) == 0 {
		iop.eng.After(iop.dispatch, func() { iop.PostEvent(from, code, data) })
		return
	}
	mfa := iop.outFree[0]
	iop.outFree = iop.outFree[1:]
	f := iop.frames[mfa]
	f.Function = FnUtilEventReg
	f.Target = 0xFFF // host
	f.Initiator = from
	f.Context = code
	f.Status = StatusSuccess
	f.Payload = data
	iop.outPost = append(iop.outPost, f)
	if iop.OnOutbound != nil {
		iop.OnOutbound()
	}
}
