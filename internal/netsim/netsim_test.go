package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestFullFrameWireTimeAbout120us(t *testing.T) {
	eng := sim.NewEngine(1)
	l := Fast100(eng, "eth0", nil)
	us := l.WireTime(MTU).Microseconds()
	if us < 115 || us > 130 {
		t.Fatalf("1500-byte frame = %.1f µs, want ≈120–125", us)
	}
}

func TestThousandByteFrameWireTime(t *testing.T) {
	eng := sim.NewEngine(1)
	l := Fast100(eng, "eth0", nil)
	us := l.WireTime(1000).Microseconds()
	if us < 80 || us > 90 {
		t.Fatalf("1000-byte frame = %.1f µs, want ≈85", us)
	}
}

func TestWireTimeFragmentsLargePayloads(t *testing.T) {
	eng := sim.NewEngine(1)
	l := Fast100(eng, "eth0", nil)
	one := l.WireTime(MTU)
	ten := l.WireTime(10 * MTU)
	if ten != 10*one {
		t.Fatalf("10×MTU = %v, want %v (10 fragments)", ten, 10*one)
	}
	if l.WireTime(0) <= 0 {
		t.Fatal("zero payload should still cost one frame of overhead")
	}
}

func TestEndToEndI960PathAbout1_2ms(t *testing.T) {
	// Table 4: i960 TX stack + wire + switch + client RX stack ≈ 1.2 ms.
	eng := sim.NewEngine(1)
	client := NewClient(eng, "player")
	sw := NewSwitch(eng, "sw0", 90*sim.Microsecond) // store-and-forward
	toClient := Fast100(eng, "sw-client", client)
	sw.Attach("player", toClient)
	niLink := Fast100(eng, "ni-eth", sw)

	var deliveredAt sim.Time
	client.OnFrame = func(p *Packet) { deliveredAt = eng.Now() }
	start := eng.Now()
	// The i960 sender pays its stack before the wire.
	eng.After(I960Stack().Tx, func() {
		niLink.Send(&Packet{Dst: "player", Bytes: 1000}, nil)
	})
	eng.Run()
	ms := (deliveredAt - start).Milliseconds()
	if ms < 1.0 || ms > 1.45 {
		t.Fatalf("end-to-end = %.3f ms, want ≈1.2", ms)
	}
}

func TestHostStackFasterThanI960(t *testing.T) {
	if HostStack().Tx >= I960Stack().Tx {
		t.Fatal("200 MHz host stack must beat 66 MHz i960 stack")
	}
}

func TestLinkSerializesTransmissions(t *testing.T) {
	eng := sim.NewEngine(1)
	var arrivals []sim.Time
	sink := PortFunc(func(p *Packet) { arrivals = append(arrivals, eng.Now()) })
	l := Fast100(eng, "eth0", sink)
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Bytes: 1000, Seq: int64(i)}, nil)
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	if gap != l.WireTime(1000) {
		t.Fatalf("inter-arrival %v, want wire time %v", gap, l.WireTime(1000))
	}
	if l.Packets != 3 || l.Bytes != 3000 {
		t.Fatalf("link stats: %d pkts %d bytes", l.Packets, l.Bytes)
	}
}

func TestOnWireFiresWhenTransmitterFree(t *testing.T) {
	eng := sim.NewEngine(1)
	l := Fast100(eng, "eth0", nil)
	var freeAt sim.Time
	l.Send(&Packet{Bytes: 1000}, func() { freeAt = eng.Now() })
	eng.Run()
	if freeAt != l.WireTime(1000) {
		t.Fatalf("transmitter free at %v, want %v", freeAt, l.WireTime(1000))
	}
}

func TestSwitchRoutesByDestination(t *testing.T) {
	eng := sim.NewEngine(1)
	var gotA, gotB int
	a := NewClient(eng, "a")
	a.OnFrame = func(*Packet) { gotA++ }
	b := NewClient(eng, "b")
	b.OnFrame = func(*Packet) { gotB++ }
	sw := NewSwitch(eng, "sw", 10*sim.Microsecond)
	sw.Attach("a", Fast100(eng, "la", a))
	sw.Attach("b", Fast100(eng, "lb", b))
	in := Fast100(eng, "in", sw)
	in.Send(&Packet{Dst: "a", Bytes: 100}, nil)
	in.Send(&Packet{Dst: "b", Bytes: 100}, nil)
	in.Send(&Packet{Dst: "nobody", Bytes: 100}, nil)
	eng.Run()
	if gotA != 1 || gotB != 1 {
		t.Fatalf("a=%d b=%d, want 1 each", gotA, gotB)
	}
	if sw.Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2 (unknown dst dropped)", sw.Forwarded)
	}
}

func TestAttachPortTap(t *testing.T) {
	eng := sim.NewEngine(1)
	got := 0
	sw := NewSwitch(eng, "sw", 0)
	sw.AttachPort("tap", PortFunc(func(*Packet) { got++ }))
	in := Fast100(eng, "in", sw)
	in.Send(&Packet{Dst: "tap", Bytes: 64}, nil)
	eng.Run()
	if got != 1 {
		t.Fatalf("tap saw %d packets", got)
	}
}

func TestClientAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewClient(eng, "player")
	c.BW = stats.NewBandwidthMeter("player", sim.Second)
	l := Fast100(eng, "eth", c)
	l.Send(&Packet{Bytes: 1000, Deadline: 1}, nil) // deadline long past
	l.Send(&Packet{Bytes: 500}, nil)
	eng.Run()
	if c.Received != 2 || c.RecvBytes != 1500 {
		t.Fatalf("client: %v", c)
	}
	if c.Late != 1 {
		t.Fatalf("late = %d, want 1", c.Late)
	}
	if len(c.Latencies) != 2 || c.MeanLatency() <= 0 {
		t.Fatalf("latencies: %v", c.Latencies)
	}
	c.BW.FlushUntil(sim.Second)
	if c.BW.Series.Len() == 0 {
		t.Fatal("bandwidth meter got no samples")
	}
}

func TestZeroRateLinkPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLink(eng, "bad", 0, 0, nil)
}

// Property: wire time is monotone in payload size.
func TestWireTimeMonotone(t *testing.T) {
	eng := sim.NewEngine(1)
	l := Fast100(eng, "eth", nil)
	f := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		return l.WireTime(int64(a)) <= l.WireTime(int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every sent packet is delivered exactly once through a switch.
func TestSwitchDeliveryProperty(t *testing.T) {
	f := func(n uint8) bool {
		eng := sim.NewEngine(5)
		c := NewClient(eng, "c")
		sw := NewSwitch(eng, "sw", sim.Microsecond)
		sw.Attach("c", Fast100(eng, "out", c))
		in := Fast100(eng, "in", sw)
		for i := 0; i < int(n); i++ {
			in.Send(&Packet{Dst: "c", Bytes: int64(i) * 10}, nil)
		}
		eng.Run()
		return c.Received == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
