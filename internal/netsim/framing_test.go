package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestATMFramingCellMath(t *testing.T) {
	f := ATMFraming{}
	// 40 bytes + 8 trailer = 48 → exactly 1 cell = 53×8 bits.
	if got := f.WireBits(40); got != 53*8 {
		t.Fatalf("40B = %d bits, want %d", got, 53*8)
	}
	// 41 bytes + 8 = 49 → 2 cells.
	if got := f.WireBits(41); got != 2*53*8 {
		t.Fatalf("41B = %d bits, want %d", got, 2*53*8)
	}
	if got := f.WireBits(0); got != 53*8 {
		t.Fatalf("0B = %d bits, want one cell", got)
	}
	if f.Name() != "atm-aal5" || (EthernetFraming{}).Name() != "ethernet" {
		t.Error("framing names")
	}
}

func TestATMLinkFasterButWithCellTax(t *testing.T) {
	eng := sim.NewEngine(1)
	eth := Fast100(eng, "eth", nil)
	atm := NewATM(eng, "atm", nil)
	// OC-3 outruns fast Ethernet for bulk payloads.
	if atm.WireTime(64<<10) >= eth.WireTime(64<<10) {
		t.Fatal("OC-3 should beat 100 Mbps Ethernet")
	}
	// The ~10% cell tax: efficiency is 48/53 before the trailer.
	bits := ATMFraming{}.WireBits(48000)
	if float64(bits)/float64(48000*8) < 53.0/48.0-0.01 {
		t.Fatalf("cell overhead missing: %d bits for 48000 bytes", bits)
	}
}

func TestATMDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewClient(eng, "c")
	atm := NewATM(eng, "atm", c)
	atm.Send(&Packet{Dst: "c", Bytes: 9000}, nil)
	eng.Run()
	if c.Received != 1 {
		t.Fatalf("received = %d", c.Received)
	}
}

func TestDropEveryInjectsLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewClient(eng, "c")
	l := Fast100(eng, "lossy", c)
	l.DropEvery = 5 // packets 5, 10, 15, 20 dropped
	for i := 0; i < 20; i++ {
		l.Send(&Packet{Dst: "c", Bytes: 1000, Seq: int64(i)}, nil)
	}
	eng.Run()
	if l.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", l.Dropped)
	}
	if c.Received != 16 {
		t.Fatalf("received = %d, want 16", c.Received)
	}
}

func TestDropStillFreesTransmitter(t *testing.T) {
	// A dropped packet must still occupy the wire (the loss happens at the
	// receiver side of the pipe), not wedge the link.
	eng := sim.NewEngine(1)
	c := NewClient(eng, "c")
	l := Fast100(eng, "lossy", c)
	l.DropEvery = 1 // drop everything
	fired := 0
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Dst: "c", Bytes: 100}, func() { fired++ })
	}
	eng.Run()
	if fired != 3 {
		t.Fatalf("onWire fired %d times", fired)
	}
	if c.Received != 0 {
		t.Fatalf("received = %d", c.Received)
	}
}

func TestMulticastGroupFanOut(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", 10*sim.Microsecond)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c := NewClient(eng, string(rune('a'+i)))
		clients = append(clients, c)
		sw.Attach(c.Name, Fast100(eng, "l"+c.Name, c))
		sw.JoinGroup("mcast-1", c.Name)
	}
	if sw.GroupSize("mcast-1") != 3 {
		t.Fatalf("group size = %d", sw.GroupSize("mcast-1"))
	}
	in := Fast100(eng, "in", sw)
	in.Send(&Packet{Dst: "mcast-1", Bytes: 1000}, nil)
	eng.Run()
	for _, c := range clients {
		if c.Received != 1 {
			t.Fatalf("client %s received %d", c.Name, c.Received)
		}
	}
	if sw.Forwarded != 3 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}

func TestMulticastLeaveGroup(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", 0)
	a := NewClient(eng, "a")
	b := NewClient(eng, "b")
	sw.Attach("a", Fast100(eng, "la", a))
	sw.Attach("b", Fast100(eng, "lb", b))
	sw.JoinGroup("g", "a")
	sw.JoinGroup("g", "b")
	sw.LeaveGroup("g", "a")
	sw.LeaveGroup("g", "zzz") // no-op
	in := Fast100(eng, "in", sw)
	in.Send(&Packet{Dst: "g", Bytes: 64}, nil)
	eng.Run()
	if a.Received != 0 || b.Received != 1 {
		t.Fatalf("a=%d b=%d", a.Received, b.Received)
	}
}

func TestMulticastFromNIScheduler(t *testing.T) {
	// One DWCS stream fanned to several players through a group address —
	// the paper's intro-level scalable-delivery technique composed with
	// NI-based scheduling.
	eng := sim.NewEngine(2)
	sw := NewSwitch(eng, "sw", 10*sim.Microsecond)
	var clients []*Client
	for i := 0; i < 4; i++ {
		c := NewClient(eng, string(rune('w'+i)))
		clients = append(clients, c)
		sw.Attach(c.Name, Fast100(eng, "l"+c.Name, c))
		sw.JoinGroup("vod-42", c.Name)
	}
	src := Fast100(eng, "src", sw)
	for seq := 0; seq < 10; seq++ {
		src.Send(&Packet{Dst: "vod-42", Seq: int64(seq), Bytes: 2000}, nil)
	}
	eng.Run()
	for _, c := range clients {
		if c.Received != 10 {
			t.Fatalf("client %s received %d of 10", c.Name, c.Received)
		}
	}
}
