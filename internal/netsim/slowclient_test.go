package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestClientRxRingCapDropsOverflow(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := NewClient(eng, "c")
	cl.RxStack = 10 * sim.Millisecond // slow player
	cl.MaxPending = 4
	for i := 0; i < 10; i++ {
		cl.Deliver(&Packet{Seq: int64(i), Bytes: 1000})
	}
	if cl.Pending() != 4 {
		t.Fatalf("pending = %d, want 4 (rx ring full)", cl.Pending())
	}
	if cl.RxDropped != 6 {
		t.Fatalf("RxDropped = %d, want 6", cl.RxDropped)
	}
	eng.Run()
	if cl.Received != 4 || cl.Pending() != 0 {
		t.Fatalf("received=%d pending=%d after drain, want 4/0", cl.Received, cl.Pending())
	}
}

func TestClientRingRefillsAsStackDrains(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := NewClient(eng, "c")
	cl.RxStack = 10 * sim.Millisecond
	cl.MaxPending = 2
	// Paced arrivals slower than the stack: nothing should drop.
	for i := 0; i < 6; i++ {
		i := i
		eng.At(sim.Time(i)*20*sim.Millisecond, func() {
			cl.Deliver(&Packet{Seq: int64(i), Bytes: 1000})
		})
	}
	eng.Run()
	if cl.Received != 6 || cl.RxDropped != 0 {
		t.Fatalf("received=%d dropped=%d, want 6/0", cl.Received, cl.RxDropped)
	}
}

func TestClientUnlimitedByDefault(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := NewClient(eng, "c")
	cl.RxStack = 10 * sim.Millisecond
	for i := 0; i < 100; i++ {
		cl.Deliver(&Packet{Seq: int64(i), Bytes: 1000})
	}
	eng.Run()
	if cl.Received != 100 || cl.RxDropped != 0 {
		t.Fatalf("received=%d dropped=%d, want 100/0", cl.Received, cl.RxDropped)
	}
}

func TestClientDrainingDropsUntilResume(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := NewClient(eng, "c")
	cl.SetDraining(true)
	cl.Deliver(&Packet{Seq: 0, Bytes: 1000})
	cl.Deliver(&Packet{Seq: 1, Bytes: 1000})
	cl.SetDraining(false)
	cl.Deliver(&Packet{Seq: 2, Bytes: 1000})
	eng.Run()
	if cl.RxDropped != 2 || cl.Received != 1 {
		t.Fatalf("dropped=%d received=%d, want 2/1", cl.RxDropped, cl.Received)
	}
}
