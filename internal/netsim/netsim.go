// Package netsim models the 100 Mbps switched Ethernet between the server's
// NIs and the remote MPEG clients.
//
// Calibration anchors from the paper:
//
//   - A full-size Ethernet frame takes ≈ 120 µs on a 100 Mbps link (§4.2:
//     the 65 µs scheduling overhead "corresponds to around half an Ethernet
//     frame time").
//   - End-to-end delivery of a 1000-byte media frame, including protocol
//     stack traversal at both ends and wire transmission, is ≈ 1.2 ms when
//     the sender's stack runs on the 66 MHz i960 RD (Table 4, "1.2net").
//
// Stack traversal costs are deliberately *not* inside Link: the sending
// stack runs on whichever processor drives the NI (the i960 or a host CPU),
// so internal/nic and internal/host charge it there. Link models
// serialization, propagation, and per-MTU framing overhead; Switch models
// store-and-forward forwarding; Client models the remote player's receive
// stack and records delivery statistics.
package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Ethernet framing constants.
const (
	MTU = 1500 // max payload bytes per Ethernet frame
	// PerFrameOverhead counts preamble (8) + MAC header (14) + FCS (4) +
	// inter-frame gap (12) + IP (20) + UDP (8) bytes of wire time per frame.
	PerFrameOverhead = 66
)

// Packet is one media frame in flight (possibly spanning several Ethernet
// frames on the wire).
type Packet struct {
	Src, Dst string
	StreamID int
	Seq      int64
	Bytes    int64    // media payload size
	Enqueued sim.Time // when the producer queued it (for queuing delay)
	Sent     sim.Time // when the sender handed it to the wire
	Deadline sim.Time // scheduler deadline, for lateness accounting
	Data     any      // opaque payload for control-plane traffic (DVCM RPC)

	// Dispatched is when the scheduler's dispatch decision handed the frame
	// to the protocol stack; zero when the sender is not instrumented.
	Dispatched sim.Time
	// FirstSent is Sent at the first hop. Sent is overwritten per hop
	// (switch forwarding re-sends), so telemetry keeps the original here.
	FirstSent sim.Time
}

// Port is anything that can accept a delivered packet.
type Port interface {
	Deliver(p *Packet)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(p *Packet)

// Deliver implements Port.
func (f PortFunc) Deliver(p *Packet) { f(p) }

// Framing computes how many bits a media payload of n bytes occupies on a
// particular link technology.
type Framing interface {
	// WireBits returns total bits on the wire for an n-byte payload.
	WireBits(n int64) int64
	// Name identifies the technology.
	Name() string
}

// EthernetFraming fragments payloads into MTU-sized frames, each paying
// PerFrameOverhead bytes.
type EthernetFraming struct{}

// WireBits implements Framing.
func (EthernetFraming) WireBits(n int64) int64 {
	frames := (n + MTU - 1) / MTU
	if frames == 0 {
		frames = 1
	}
	return (n + frames*PerFrameOverhead) * 8
}

// Name implements Framing.
func (EthernetFraming) Name() string { return "ethernet" }

// ATMFraming carries payloads in AAL5 PDUs over 53-byte cells with 48-byte
// payloads — the FORE SBA-200 interconnect the DVCM was first built on
// (§5). The AAL5 trailer adds 8 bytes and the PDU pads to a cell multiple.
type ATMFraming struct{}

// WireBits implements Framing.
func (ATMFraming) WireBits(n int64) int64 {
	pdu := n + 8 // AAL5 trailer
	cells := (pdu + 47) / 48
	if cells == 0 {
		cells = 1
	}
	return cells * 53 * 8
}

// Name implements Framing.
func (ATMFraming) Name() string { return "atm-aal5" }

// Link is one half-duplex transmit path at a fixed bit rate. Transmissions
// serialize FIFO; each completes after wire time plus propagation and is
// then delivered to the attached port.
type Link struct {
	eng     *sim.Engine
	name    string
	bps     int64
	prop    sim.Time
	dst     Port
	res     *sim.Resource
	framing Framing

	// DropEvery, when positive, drops every k-th packet after serialization
	// (deterministic loss injection for robustness tests).
	DropEvery int64

	// down, while true, loses every packet after serialization — a SAN
	// cable pull or port failure. The transmitter still burns wire time
	// (the sender can't tell), but nothing is delivered.
	down bool

	// Stats counts traffic.
	Packets int64
	Bytes   int64
	Dropped int64
}

// NewLink returns a link of rate bps from the sender to dst.
func NewLink(eng *sim.Engine, name string, bps int64, prop sim.Time, dst Port) *Link {
	if bps <= 0 {
		panic("netsim: link rate must be positive")
	}
	return &Link{eng: eng, name: name, bps: bps, prop: prop, dst: dst,
		res: sim.NewResource(eng, name), framing: EthernetFraming{}}
}

// NewATM returns an OC-3 (155.52 Mbps) ATM link with AAL5 framing and 2 µs
// propagation — the FORE-style system-area interconnect of the original
// DVCM (§5).
func NewATM(eng *sim.Engine, name string, dst Port) *Link {
	l := NewLink(eng, name, 155_520_000, 2*sim.Microsecond, dst)
	l.framing = ATMFraming{}
	return l
}

// Framing returns the link's framing model.
func (l *Link) Framing() Framing { return l.framing }

// Fast100 returns a 100 Mbps link with 2 µs propagation.
func Fast100(eng *sim.Engine, name string, dst Port) *Link {
	return NewLink(eng, name, 100_000_000, 2*sim.Microsecond, dst)
}

// WireTime returns the serialization time of a media payload of n bytes,
// including the link technology's framing overhead.
func (l *Link) WireTime(n int64) sim.Time {
	bits := l.framing.WireBits(n)
	// Split the division so huge payloads don't overflow int64 nanoseconds.
	secs := bits / l.bps
	rem := bits % l.bps
	return sim.Time(secs)*sim.Second + sim.Time(rem*int64(sim.Second)/l.bps)
}

// Send transmits p. onWire (may be nil) runs when the sender's transmitter
// is free again; delivery to the destination port happens after propagation.
func (l *Link) Send(p *Packet, onWire func()) {
	l.res.Acquire(func() {
		p.Sent = l.eng.Now()
		if p.FirstSent == 0 {
			p.FirstSent = p.Sent
		}
		t := l.WireTime(p.Bytes)
		l.Packets++
		l.Bytes += p.Bytes
		l.eng.After(t, func() {
			l.res.Release()
			if onWire != nil {
				onWire()
			}
		})
		if l.down || (l.DropEvery > 0 && l.Packets%l.DropEvery == 0) {
			l.Dropped++
			return
		}
		l.eng.After(t+l.prop, func() {
			if l.dst != nil {
				l.dst.Deliver(p)
			}
		})
	})
}

// SetDown fails or restores the link. While down, every transmission is
// lost after serialization (counted in Dropped).
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Utilization reports the transmit utilization of the link.
func (l *Link) Utilization() float64 { return l.res.Utilization() }

// Switch is a store-and-forward Ethernet switch: it receives a packet on
// any input, waits one forwarding latency plus the output serialization of
// the attached output link, and delivers it based on Dst address.
type Switch struct {
	eng     *sim.Engine
	name    string
	latency sim.Time
	ports   map[string]*Link
	groups  map[string][]string

	// Forwarded counts packets switched.
	Forwarded int64
}

// NewSwitch returns a switch with the given forwarding latency.
func NewSwitch(eng *sim.Engine, name string, latency sim.Time) *Switch {
	return &Switch{eng: eng, name: name, latency: latency, ports: make(map[string]*Link)}
}

// Attach binds destination address addr to an output link.
func (s *Switch) Attach(addr string, out *Link) { s.ports[addr] = out }

// AttachPort binds addr to a port directly (zero-cost output, used for
// locally attached measurement taps).
func (s *Switch) AttachPort(addr string, out Port) {
	l := NewLink(s.eng, s.name+"→"+addr, 100_000_000, 0, out)
	s.ports[addr] = l
}

// JoinGroup subscribes a destination address to a multicast group: packets
// addressed to the group fan out to every member — the multicast delivery
// the paper's introduction cites as the network-level scalability technique
// for media ("researchers have designed multicast techniques", §1).
func (s *Switch) JoinGroup(group, member string) {
	if s.groups == nil {
		s.groups = make(map[string][]string)
	}
	s.groups[group] = append(s.groups[group], member)
}

// LeaveGroup removes a member from a group.
func (s *Switch) LeaveGroup(group, member string) {
	ms := s.groups[group]
	for i, m := range ms {
		if m == member {
			s.groups[group] = append(ms[:i], ms[i+1:]...)
			return
		}
	}
}

// GroupSize reports a group's membership.
func (s *Switch) GroupSize(group string) int { return len(s.groups[group]) }

// Deliver implements Port: forward by destination address, fanning out to
// group members when the destination is a multicast group. Unknown
// destinations are dropped (counted nowhere, like a real L2 flood we don't
// model).
func (s *Switch) Deliver(p *Packet) {
	if members, ok := s.groups[p.Dst]; ok {
		for _, m := range members {
			cp := *p
			cp.Dst = m
			s.Deliver(&cp)
		}
		return
	}
	out, ok := s.ports[p.Dst]
	if !ok {
		return
	}
	s.Forwarded++
	s.eng.After(s.latency, func() { out.Send(p, nil) })
}

// Client models a remote MPEG player: a receive stack delay, delivery
// statistics, and optional per-stream bandwidth metering.
type Client struct {
	eng     *sim.Engine
	Name    string
	RxStack sim.Time

	// OnFrame, if set, observes every delivered packet after the receive
	// stack.
	OnFrame func(p *Packet)

	// BW, if set, meters goodput.
	BW *stats.BandwidthMeter

	// MaxPending caps frames resident in the receive stack (the player's rx
	// ring). A slow client otherwise accumulates pending deliveries without
	// bound while the server keeps sending. Zero keeps the historical
	// unlimited behaviour; overflow frames are dropped and counted.
	MaxPending int
	// RxDropped counts frames discarded at the rx ring — overflow while
	// MaxPending frames are pending, or any arrival while draining.
	RxDropped int64

	Received  int64
	RecvBytes int64
	Late      int64
	Latencies []sim.Time // send-to-delivered per packet
	Gaps      []sim.Time // inter-arrival gaps (delay-jitter raw data)

	lastArrival sim.Time
	gotFirst    bool
	pending     int  // frames inside the receive stack
	paused      bool // draining: the player stopped reading

	tel       *telemetry.Registry
	telFrames *telemetry.Counter
}

// Instrument attaches a telemetry registry: delivered media frames count
// under the netsim component, and every delivery records tx/wire/playout
// span segments for the frame's causal span.
func (c *Client) Instrument(reg *telemetry.Registry) {
	c.tel = reg
	c.telFrames = reg.Counter("netsim", "frames_delivered_total",
		"media frames delivered to clients after the receive stack")
}

// NewClient returns a client with a 200 µs receive stack.
func NewClient(eng *sim.Engine, name string) *Client {
	return &Client{eng: eng, Name: name, RxStack: 200 * sim.Microsecond}
}

// SetDraining marks the client as stalled (true): the player has stopped
// reading, so every arrival is dropped at the rx ring until the client
// resumes (false). Frames already inside the receive stack still complete.
func (c *Client) SetDraining(on bool) { c.paused = on }

// Pending reports frames currently inside the receive stack.
func (c *Client) Pending() int { return c.pending }

// Deliver implements Port.
func (c *Client) Deliver(p *Packet) {
	if c.paused || (c.MaxPending > 0 && c.pending >= c.MaxPending) {
		c.RxDropped++
		return
	}
	arrival := c.eng.Now()
	if c.tel != nil && p.StreamID > 0 {
		if p.Dispatched != 0 && p.FirstSent != 0 {
			c.tel.Span(p.StreamID, p.Seq, telemetry.StageTx, p.Src, p.Dispatched, p.FirstSent)
		}
		if p.FirstSent != 0 {
			c.tel.Span(p.StreamID, p.Seq, telemetry.StageWire, c.Name, p.FirstSent, arrival)
		}
	}
	c.pending++
	c.eng.After(c.RxStack, func() {
		c.pending--
		if c.tel != nil && p.StreamID > 0 {
			c.tel.Span(p.StreamID, p.Seq, telemetry.StagePlayout, c.Name, arrival, c.eng.Now())
		}
		c.telFrames.Inc()
		c.Received++
		c.RecvBytes += p.Bytes
		c.Latencies = append(c.Latencies, c.eng.Now()-p.Sent)
		if c.gotFirst {
			c.Gaps = append(c.Gaps, c.eng.Now()-c.lastArrival)
		}
		c.gotFirst = true
		c.lastArrival = c.eng.Now()
		if p.Deadline != 0 && c.eng.Now() > p.Deadline {
			c.Late++
		}
		if c.BW != nil {
			c.BW.Deliver(c.eng.Now(), int(p.Bytes))
		}
		if c.OnFrame != nil {
			c.OnFrame(p)
		}
	})
}

// MeanLatency returns the mean send-to-delivered latency.
func (c *Client) MeanLatency() sim.Time {
	return stats.Summarize(c.Latencies).Mean
}

// Jitter returns the mean absolute deviation of inter-arrival gaps — the
// delay-jitter metric of §4.2.3 ("frames are serviced at a rate with lower
// variability ... more uniform jitter-delay variation").
func (c *Client) Jitter() sim.Time {
	if len(c.Gaps) == 0 {
		return 0
	}
	var sum sim.Time
	for _, g := range c.Gaps {
		sum += g
	}
	mean := sum / sim.Time(len(c.Gaps))
	var dev sim.Time
	for _, g := range c.Gaps {
		d := g - mean
		if d < 0 {
			d = -d
		}
		dev += d
	}
	return dev / sim.Time(len(c.Gaps))
}

// String summarizes the client's deliveries.
func (c *Client) String() string {
	return fmt.Sprintf("%s: %d frames, %d bytes, %d late", c.Name, c.Received, c.RecvBytes, c.Late)
}

// StackProfile bundles the per-packet protocol processing costs a sender
// pays before the wire. The i960 profile reproduces the 1.2 ms end-to-end
// figure; the host profile is faster because the stack runs at 200 MHz.
type StackProfile struct {
	Name string
	Tx   sim.Time // sender-side UDP/IP + driver per media frame
}

// I960Stack is protocol processing on the 66 MHz i960 RD.
func I960Stack() StackProfile { return StackProfile{Name: "i960", Tx: 830 * sim.Microsecond} }

// HostStack is protocol processing on a 200 MHz host CPU (Intel 82557 NI).
func HostStack() StackProfile { return StackProfile{Name: "host", Tx: 190 * sim.Microsecond} }
