// Package bus models the server's bus domains: the 33 MHz/32-bit PCI I/O
// bus segments the I2O cards sit on, and the host system (front-side) bus.
//
// Reproduced behaviours:
//
//   - Card-to-card DMA at roughly half of theoretical PCI bandwidth
//     (Table 5: a 773665-byte MPEG file moves in 11673.84 µs = 66.27 MB/s
//     against the 132 MB/s theoretical peak), because every burst pays
//     arbitration, address-phase, and target-latency cycles.
//   - Programmed I/O word reads are round trips (3.6 µs) while writes are
//     posted (3.1 µs) (Table 5).
//   - A bus segment is a single arbitrated resource: concurrent masters
//     queue, which is what lets a dedicated scheduler NI on its own segment
//     stay isolated from web-server traffic on the other segment (§4.2.3).
package bus

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes one bus segment.
type Config struct {
	Name       string
	ClockHz    int64 // bus clock
	WidthBytes int64 // data-path width
	// EffNum/EffDen is burst efficiency: the fraction of bus cycles that
	// move data during a DMA burst (the rest are arbitration, address
	// phase, and target wait states).
	EffNum, EffDen int64
	DMASetup       sim.Time // per-transfer master setup (descriptor fetch, arbitration)
	PIOReadCycles  int64    // bus cycles for one non-posted word read round trip
	PIOWriteCycles int64    // bus cycles for one posted word write
}

// PCI returns the paper's 33 MHz, 32-bit PCI segment configuration. With
// 50% burst efficiency the effective DMA rate is 66 MB/s, matching the
// measured 66.27 MB/s of Table 5.
func PCI(name string) Config {
	return Config{
		Name:       name,
		ClockHz:    33_000_000,
		WidthBytes: 4,
		EffNum:     1,
		EffDen:     2,
		DMASetup:   4 * sim.Microsecond,
		// 3.6 µs and 3.1 µs at a 30.3 ns cycle.
		PIOReadCycles:  119,
		PIOWriteCycles: 102,
	}
}

// SystemBus returns the Pentium Pro front-side bus (66 MHz, 64-bit).
func SystemBus(name string) Config {
	return Config{
		Name:       name,
		ClockHz:    66_000_000,
		WidthBytes: 8,
		EffNum:     2,
		EffDen:     3,
		DMASetup:   1 * sim.Microsecond,
		// CPU-local bus: a word access is a handful of cycles.
		PIOReadCycles:  8,
		PIOWriteCycles: 4,
	}
}

// CycleTime returns the duration of one bus clock cycle.
func (c Config) CycleTime() sim.Time {
	return sim.Time(int64(sim.Second) / c.ClockHz)
}

// BytesPerSecond returns the effective DMA bandwidth.
func (c Config) BytesPerSecond() int64 {
	return c.ClockHz * c.WidthBytes * c.EffNum / c.EffDen
}

// Stats counts traffic on a segment — the paper's "traffic elimination"
// claims are assertions about these counters.
type Stats struct {
	DMABytes     int64
	DMATransfers int64
	PIOReads     int64
	PIOWrites    int64
}

// Bus is one arbitrated bus segment.
type Bus struct {
	eng *sim.Engine
	cfg Config
	res *sim.Resource

	// Stats accumulates traffic counters for traffic-elimination checks.
	Stats Stats
}

// New returns an idle bus segment on eng.
func New(eng *sim.Engine, cfg Config) *Bus {
	return &Bus{eng: eng, cfg: cfg, res: sim.NewResource(eng, cfg.Name)}
}

// Instrument exports the segment's traffic counters under the bus telemetry
// component. Several segments registered on one registry sum into one
// component-level series.
func (b *Bus) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("bus", "dma_transfers_total",
		"DMA transfers across bus segments", func() int64 { return b.Stats.DMATransfers })
	reg.CounterFunc("bus", "dma_bytes_total",
		"bytes moved by DMA across bus segments", func() int64 { return b.Stats.DMABytes })
	reg.CounterFunc("bus", "pio_reads_total",
		"programmed-I/O word reads", func() int64 { return b.Stats.PIOReads })
	reg.CounterFunc("bus", "pio_writes_total",
		"programmed-I/O word writes", func() int64 { return b.Stats.PIOWrites })
}

// Name returns the segment name.
func (b *Bus) Name() string { return b.cfg.Name }

// Config returns the segment configuration.
func (b *Bus) Config() Config { return b.cfg }

// DMATime returns how long a DMA of n bytes holds the bus (setup plus data
// movement at the effective rate). It is exact integer arithmetic so the
// reproduced Table 5 value is deterministic.
func (b *Bus) DMATime(n int64) sim.Time {
	if n < 0 {
		panic(fmt.Sprintf("bus %s: negative DMA size %d", b.cfg.Name, n))
	}
	data := sim.Time(n * int64(sim.Second) / b.cfg.BytesPerSecond())
	return b.cfg.DMASetup + data
}

// DMA performs a peer-to-peer DMA of n bytes across the segment, invoking
// done when the transfer completes. The bus is held for the whole transfer.
func (b *Bus) DMA(n int64, done func()) {
	b.Stats.DMABytes += n
	b.Stats.DMATransfers++
	b.res.Use(b.DMATime(n), done)
}

// PIORead performs words non-posted word reads, invoking done with the bus
// released afterwards.
func (b *Bus) PIORead(words int64, done func()) {
	b.Stats.PIOReads += words
	b.res.Use(sim.Time(words*b.cfg.PIOReadCycles)*b.cfg.CycleTime(), done)
}

// PIOWrite performs words posted word writes.
func (b *Bus) PIOWrite(words int64, done func()) {
	b.Stats.PIOWrites += words
	b.res.Use(sim.Time(words*b.cfg.PIOWriteCycles)*b.cfg.CycleTime(), done)
}

// PIOReadTime and PIOWriteTime expose per-word PIO costs for benchmarks.
func (b *Bus) PIOReadTime() sim.Time {
	return sim.Time(b.cfg.PIOReadCycles) * b.cfg.CycleTime()
}

// PIOWriteTime returns the duration of one posted word write.
func (b *Bus) PIOWriteTime() sim.Time {
	return sim.Time(b.cfg.PIOWriteCycles) * b.cfg.CycleTime()
}

// Utilization reports the fraction of simulated time the segment was held.
func (b *Bus) Utilization() float64 { return b.res.Utilization() }

// QueueLen reports masters currently waiting for the segment.
func (b *Bus) QueueLen() int { return b.res.QueueLen() }

// Bridge links two bus segments (host PCI bridge in Figure 3). A bridged
// transfer holds each segment in turn and pays a store-and-forward latency
// in between — the "bus-domain traversal" cost the paper's path A suffers
// and paths B/C avoid.
type Bridge struct {
	eng      *sim.Engine
	a, b     *Bus
	Latency  sim.Time
	Crossing int64 // count of bridged transfers, for traffic accounting
}

// NewBridge connects segments a and b with the given store-and-forward
// latency.
func NewBridge(eng *sim.Engine, a, b *Bus, latency sim.Time) *Bridge {
	return &Bridge{eng: eng, a: a, b: b, Latency: latency}
}

// Transfer moves n bytes from the 'from' segment to the other segment,
// calling done at completion. from must be one of the bridge's segments.
func (br *Bridge) Transfer(from *Bus, n int64, done func()) {
	var to *Bus
	switch from {
	case br.a:
		to = br.b
	case br.b:
		to = br.a
	default:
		panic("bus: Transfer from a segment not attached to this bridge")
	}
	br.Crossing++
	from.DMA(n, func() {
		br.eng.After(br.Latency, func() {
			to.DMA(n, done)
		})
	})
}
