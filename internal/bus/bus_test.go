package bus

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPCIEffectiveBandwidth(t *testing.T) {
	cfg := PCI("pci0")
	bps := cfg.BytesPerSecond()
	// 33 MHz × 4 B × 1/2 = 66 MB/s.
	if bps != 66_000_000 {
		t.Fatalf("effective bandwidth = %d B/s, want 66e6", bps)
	}
}

func TestTable5DMATime(t *testing.T) {
	// Table 5: 773665-byte MPEG file by DMA takes 11673.84 µs (66.27 MB/s).
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	got := b.DMATime(773665).Microseconds()
	if math.Abs(got-11673.84)/11673.84 > 0.02 {
		t.Fatalf("DMA of 773665 B = %.2f µs, want ≈11673.84 (±2%%)", got)
	}
}

func TestTable5PIOTimes(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	read := b.PIOReadTime().Microseconds()
	write := b.PIOWriteTime().Microseconds()
	if math.Abs(read-3.6) > 0.1 {
		t.Errorf("PIO read = %.2f µs, want ≈3.6", read)
	}
	if math.Abs(write-3.1) > 0.1 {
		t.Errorf("PIO write = %.2f µs, want ≈3.1", write)
	}
	if write >= read {
		t.Error("posted writes must be cheaper than reads")
	}
}

func TestSingleFrameDMAAbout15us(t *testing.T) {
	// §4.2.2: card-to-card transfer of a single 1000-byte frame ≈ 15 µs.
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	got := b.DMATime(1000).Microseconds()
	if got < 12 || got > 25 {
		t.Fatalf("1000-byte frame DMA = %.2f µs, want ~15", got)
	}
}

func TestDMACompletesAndCounts(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	doneAt := sim.Time(-1)
	b.DMA(1000, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != b.DMATime(1000) {
		t.Fatalf("done at %v, want %v", doneAt, b.DMATime(1000))
	}
	if b.Stats.DMABytes != 1000 || b.Stats.DMATransfers != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestBusArbitrationSerializes(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	var first, second sim.Time
	b.DMA(1000, func() { first = eng.Now() })
	b.DMA(1000, func() { second = eng.Now() })
	eng.Run()
	if second != 2*first {
		t.Fatalf("second DMA at %v, want %v (serialized)", second, 2*first)
	}
}

func TestPIOCallbacksAndStats(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	var rDone, wDone bool
	b.PIORead(10, func() { rDone = true })
	b.PIOWrite(20, func() { wDone = true })
	eng.Run()
	if !rDone || !wDone {
		t.Fatal("PIO callbacks did not fire")
	}
	if b.Stats.PIOReads != 10 || b.Stats.PIOWrites != 20 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestNegativeDMAPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.DMATime(-1)
}

func TestSystemBusFasterThanPCI(t *testing.T) {
	if SystemBus("sys").BytesPerSecond() <= PCI("pci").BytesPerSecond() {
		t.Fatal("system bus should outrun PCI")
	}
}

func TestBridgeTransferCrossesBothSegments(t *testing.T) {
	eng := sim.NewEngine(1)
	pci := New(eng, PCI("pci0"))
	sys := New(eng, SystemBus("sys"))
	br := NewBridge(eng, pci, sys, 500*sim.Nanosecond)
	var doneAt sim.Time
	br.Transfer(pci, 1000, func() { doneAt = eng.Now() })
	eng.Run()
	want := pci.DMATime(1000) + 500*sim.Nanosecond + sys.DMATime(1000)
	if doneAt != want {
		t.Fatalf("bridged transfer took %v, want %v", doneAt, want)
	}
	if pci.Stats.DMABytes != 1000 || sys.Stats.DMABytes != 1000 {
		t.Fatal("both segments should see the traffic")
	}
	if br.Crossing != 1 {
		t.Fatalf("crossing count = %d", br.Crossing)
	}
}

func TestBridgeTransferReverseDirection(t *testing.T) {
	eng := sim.NewEngine(1)
	pci := New(eng, PCI("pci0"))
	sys := New(eng, SystemBus("sys"))
	br := NewBridge(eng, pci, sys, 0)
	done := false
	br.Transfer(sys, 64, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("reverse transfer did not complete")
	}
}

func TestBridgeUnknownSegmentPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	pci := New(eng, PCI("pci0"))
	sys := New(eng, SystemBus("sys"))
	other := New(eng, PCI("pci1"))
	br := NewBridge(eng, pci, sys, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	br.Transfer(other, 10, nil)
}

func TestSeparateSegmentsDoNotContend(t *testing.T) {
	// The Figure 5 setup: web NI on segment 0, scheduler NI on segment 1.
	eng := sim.NewEngine(1)
	seg0 := New(eng, PCI("pci0"))
	seg1 := New(eng, PCI("pci1"))
	// Saturate segment 0.
	for i := 0; i < 50; i++ {
		seg0.DMA(1<<20, nil)
	}
	var frameDone sim.Time
	seg1.DMA(1000, func() { frameDone = eng.Now() })
	eng.Run()
	if frameDone != seg1.DMATime(1000) {
		t.Fatalf("segment-1 frame delayed to %v by segment-0 traffic", frameDone)
	}
}

// Property: DMA time is monotone and additive-superlinear-free in size
// (setup amortizes: t(a+b) <= t(a)+t(b)).
func TestDMATimeMonotoneSubadditive(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(eng, PCI("pci0"))
	f := func(a, bb uint32) bool {
		ta, tb := b.DMATime(int64(a)), b.DMATime(int64(bb))
		tsum := b.DMATime(int64(a) + int64(bb))
		if int64(a) <= int64(bb) && ta > tb {
			return false
		}
		return tsum <= ta+tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
