// Package fleetobs is the controller half of the fleet's in-band
// observability plane. The DVCM controller partition scrapes each card's
// telemetry, SLO, and flight-recorder state over the same simulated links
// the media rides (internal/cluster wires the transport side); this package
// owns what the controller does with the replies: deterministic fleet
// rollups (card → host → switch-domain health/goodput/burn tables), top-k
// streams by loss-window pressure, an incident timeline merging every
// card's flight-recorder events into one causally-ordered artifact, and the
// cross-migration span stitcher that reassembles a stream's
// disk→wire→playout trace across live migrations.
//
// Everything here is pure data-structure work on values the scrape plane
// already collected — no engine access, no clocks — so every renderer is a
// deterministic, byte-stable function of its inputs.
package fleetobs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dvcmnet"
	"repro/internal/sim"
)

// Modeled wire costs of the scrape protocol, charged like any other bytes.
// A scrape request is one DVCM control instruction and a reply header is one
// DVCM control response — the scrape plane is in-band control traffic, so it
// prices exactly like the rest of the control plane — plus one fixed-size
// entry per stream and per shipped flight-recorder event
// (blackbox.EventBytes each, but spelled here so the protocol has one home).
// A shed reply is header-only: the card answers "too busy" in one slot
// rather than going silent.
const (
	// ReqBytes is the size of one scrape request on the DVCM link.
	ReqBytes = dvcmnet.ControlReqBytes
	// ReplyHeaderBytes is the fixed cost of any scrape reply.
	ReplyHeaderBytes = dvcmnet.ControlRespBytes
	// StreamEntryBytes is the per-stream sample entry in a full reply.
	StreamEntryBytes = 48
	// EventEntryBytes is the per-flight-recorder-event entry in a full
	// reply (matches blackbox.EventBytes).
	EventEntryBytes = 64
	// ShedReplyBytes is a header-only refusal reply.
	ShedReplyBytes = dvcmnet.ControlRespBytes
)

// SrcController is the Src index of controller-local timeline events.
// SrcControllerB is the Src index for the standby controller replica's rows
// in a replicated-control-plane timeline; it sorts before SrcController so a
// takeover's fence broadcast renders above the ex-primary's rejected
// commands when both land on the same instant.
const (
	SrcController  = -1
	SrcControllerB = -2
)

// TimelineEvent is one entry of the merged incident timeline. Src orders
// same-instant events from different sources (SrcController sorts before
// every card); the unexported arrival ordinal breaks same-source ties in
// recording order, which is engine order and therefore deterministic.
type TimelineEvent struct {
	At      sim.Time
	Src     int // card index, or SrcController
	SrcName string
	Host    string // "-" when not applicable
	Switch  string // "-" when not applicable
	Kind    string
	Stream  int   // 0 = n/a
	Seq     int64 // 0 = n/a
	Note    string

	ord int
}

// Timeline accumulates events from every source and renders them merged.
type Timeline struct {
	events []TimelineEvent
	ords   map[int]int
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{ords: make(map[int]int)} }

// Add records one event. Arrival order per source is preserved as the final
// merge tie-break.
func (t *Timeline) Add(e TimelineEvent) {
	t.ords[e.Src]++
	e.ord = t.ords[e.Src]
	t.events = append(t.events, e)
}

// Len reports accumulated events.
func (t *Timeline) Len() int { return len(t.events) }

// Events returns the merged events in canonical order: by time, then source
// (controller first, then cards by index), then per-source arrival order.
func (t *Timeline) Events() []TimelineEvent {
	out := append([]TimelineEvent(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.ord < b.ord
	})
	return out
}

// Render writes the timeline in its byte-stable artifact form: one line per
// event, whitespace-aligned fixed columns (time, source, host, switch,
// kind) followed by the free-form note. stream=/seq= are prefixed onto the
// note so the line stays parseable by fields.
func (t *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incident timeline: %d event(s)\n", len(t.events))
	fmt.Fprintf(&b, "%-14s %-6s %-5s %-5s %-14s %s\n",
		"t", "src", "host", "sw", "kind", "detail")
	for _, e := range t.Events() {
		detail := e.Note
		if e.Seq != 0 {
			detail = fmt.Sprintf("seq=%d %s", e.Seq, detail)
		}
		if e.Stream != 0 {
			detail = fmt.Sprintf("stream=%d %s", e.Stream, detail)
		}
		host, sw := e.Host, e.Switch
		if host == "" {
			host = "-"
		}
		if sw == "" {
			sw = "-"
		}
		fmt.Fprintf(&b, "%-14v %-6s %-5s %-5s %-14s %s\n",
			e.At, e.SrcName, host, sw, e.Kind, strings.TrimRight(detail, " "))
	}
	return b.String()
}
