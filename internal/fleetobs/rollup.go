package fleetobs

import (
	"fmt"
	"sort"
	"strings"
)

// Health is the scrape-plane view of a card or domain's health. It extends
// the SLO states with "dark": the controller could not scrape the card at
// all (crashed, or never answered), which is worse than any answered state
// because nothing is known.
type Health int

// Health levels, worst last.
const (
	HealthOK Health = iota
	HealthWarn
	HealthBurning
	HealthViolated
	HealthDark
)

var healthNames = [...]string{"ok", "warn", "burning", "violated", "dark"}

// String names the health level.
func (h Health) String() string {
	if int(h) < len(healthNames) {
		return healthNames[h]
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// CardStat is the controller's latest in-band view of one card: the fields
// of the most recent scrape reply that the rollup aggregates. A card that
// was never successfully scraped is Dark and contributes only its existence.
type CardStat struct {
	Card    int
	Host    string
	Switch  string
	Dark    bool
	Streams int
	Health  Health
	// GoodputMB is megabytes received by the clients homed on the card.
	GoodputMB float64
	// Burn is the worst short-window SLO burn rate among the card's streams.
	Burn float64
	// MemPct is budget occupancy percent at scrape time.
	MemPct float64
	// Breaches is the card budget's lifetime breach count.
	Breaches int64
	// Rung is the scrape-degradation rung (0 = full rate).
	Rung int
}

func (c CardStat) health() Health {
	if c.Dark {
		return HealthDark
	}
	return c.Health
}

// rollupRow is one aggregated scope line.
type rollupRow struct {
	scope  string
	host   string
	sw     string
	cards  int
	stream int
	health Health
	good   float64
	burn   float64
	mem    float64
	breach int64
	rung   int
}

func (r *rollupRow) absorb(c CardStat) {
	r.cards++
	r.stream += c.Streams
	if h := c.health(); h > r.health {
		r.health = h
	}
	r.good += c.GoodputMB
	if c.Burn > r.burn {
		r.burn = c.Burn
	}
	if c.MemPct > r.mem {
		r.mem = c.MemPct
	}
	r.breach += c.Breaches
	if c.Rung > r.rung {
		r.rung = c.Rung
	}
}

// RenderRollup writes the fleet rollup artifact: one row per card, then one
// per host, per switch domain, and a fleet total — health is the worst
// member, goodput and breaches sum, burn/mem/rung are the worst member's.
// Rows render in card / host / switch name order, so the artifact is a pure
// function of the input set.
func RenderRollup(cards []CardStat) string {
	sorted := append([]CardStat(nil), cards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Card < sorted[j].Card })

	byHost := make(map[string]*rollupRow)
	bySwitch := make(map[string]*rollupRow)
	fleet := &rollupRow{scope: "fleet", host: "-", sw: "-"}
	var hosts, switches []string
	for _, c := range sorted {
		h, ok := byHost[c.Host]
		if !ok {
			h = &rollupRow{scope: c.Host, host: "-", sw: c.Switch}
			byHost[c.Host] = h
			hosts = append(hosts, c.Host)
		}
		s, ok := bySwitch[c.Switch]
		if !ok {
			s = &rollupRow{scope: c.Switch, host: "-", sw: "-"}
			bySwitch[c.Switch] = s
			switches = append(switches, c.Switch)
		}
		h.absorb(c)
		s.absorb(c)
		fleet.absorb(c)
	}
	sort.Strings(hosts)
	sort.Strings(switches)

	var b strings.Builder
	b.WriteString("fleet rollup (in-band, last scrape per card)\n")
	fmt.Fprintf(&b, "%-6s %-5s %-5s %5s %7s %-9s %10s %7s %8s %8s %5s\n",
		"scope", "host", "sw", "cards", "streams", "health",
		"goodput_mb", "burn", "mem_pct", "breaches", "rung")
	row := func(r *rollupRow) {
		fmt.Fprintf(&b, "%-6s %-5s %-5s %5d %7d %-9s %10.2f %7.2f %8.1f %8d %5d\n",
			r.scope, r.host, r.sw, r.cards, r.stream, r.health,
			r.good, r.burn, r.mem, r.breach, r.rung)
	}
	for _, c := range sorted {
		r := &rollupRow{scope: fmt.Sprintf("ni%02d", c.Card), host: c.Host, sw: c.Switch}
		r.absorb(c)
		row(r)
	}
	for _, h := range hosts {
		row(byHost[h])
	}
	for _, s := range switches {
		row(bySwitch[s])
	}
	row(fleet)
	return b.String()
}

// StreamPressure is one stream's loss-window pressure as last scraped: the
// short-window burn rate is "how fast is this stream eating its (x,y) loss
// window", which is exactly the top-k ranking the operator wants.
type StreamPressure struct {
	Stream    int
	Card      int
	Health    Health
	ShortBurn float64
	LongBurn  float64
}

// RenderTopK writes the top-k streams by loss-window pressure: short burn
// descending, then long burn descending, then stream ID ascending so ties
// are stable.
func RenderTopK(streams []StreamPressure, k int) string {
	sorted := append([]StreamPressure(nil), streams...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.ShortBurn != b.ShortBurn {
			return a.ShortBurn > b.ShortBurn
		}
		if a.LongBurn != b.LongBurn {
			return a.LongBurn > b.LongBurn
		}
		return a.Stream < b.Stream
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d streams by loss-window pressure (of %d scraped)\n", k, len(sorted))
	fmt.Fprintf(&b, "%-6s %-6s %-9s %10s %10s\n", "gid", "card", "health", "short_burn", "long_burn")
	for _, s := range sorted[:k] {
		fmt.Fprintf(&b, "%-6s %-6s %-9s %10.2f %10.2f\n",
			fmt.Sprintf("g%02d", s.Stream), fmt.Sprintf("ni%02d", s.Card),
			s.Health, s.ShortBurn, s.LongBurn)
	}
	return b.String()
}
