package fleetobs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Span-link kinds, matching what the migration controller records.
const (
	LinkLive  = "live"  // live migration: frame cursor preserved
	LinkCold  = "cold"  // cold restore from checkpoint: cursor may be stale
	LinkReadd = "readd" // fresh re-add: window and cursor restart
	LinkAbort = "abort" // handoff failed; the epoch did not advance
)

// stageCount covers disk..playout.
const stageCount = int(telemetry.StagePlayout) + 1

// EpochSummary is one placement's slice of a stitched stream trace.
type EpochSummary struct {
	Epoch      int
	Where      string // serving card, from the handoff links
	MinSeq     int64
	MaxSeq     int64
	Start      sim.Time
	End        sim.Time
	PerStage   [stageCount]int
	Complete   int // frames with a full disk→…→playout span inside this epoch
	FirstFull  []telemetry.Segment
	firstFullS int64
}

// Stitched is one stream's trace reassembled across every placement it
// lived on: per-epoch summaries joined by the explicit handoff links, plus
// the stitching bookkeeping (duplicates collapsed, segments that could not
// be attributed to any epoch).
type Stitched struct {
	Stream     int
	Epochs     []EpochSummary
	Links      []telemetry.SpanLink
	Deduped    int
	Unassigned int
}

// commitLinks returns the stream's epoch-advancing links sorted by target
// epoch (aborts excluded — they annotate, but no epoch exists after them).
func commitLinks(stream int, links []telemetry.SpanLink) []telemetry.SpanLink {
	var out []telemetry.SpanLink
	for _, l := range links {
		if l.Stream == stream && l.Kind != LinkAbort {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ToEpoch < out[j].ToEpoch })
	return out
}

// assignEpoch attributes one segment to an epoch. Segments stamped with an
// epoch at record time (the serving card knew its placement) are trusted.
// Unstamped segments (Epoch < 0: the client side of the wire, which never
// learns placements) are assigned by the handoff links: a live handoff
// preserves the frame cursor, so seq ≥ cursor proves the frame was served
// by the new placement even if it was still in flight when the link was
// recorded; cold restores and re-adds may rewind the cursor, so only the
// segment's start time against the import instant decides.
func assignEpoch(seg telemetry.Segment, commits []telemetry.SpanLink) int {
	if seg.Epoch >= 0 {
		return seg.Epoch
	}
	e := 0
	for _, l := range commits {
		matched := seg.Start >= l.At
		if l.Kind == LinkLive && seg.Seq >= l.Seq {
			matched = true
		}
		if !matched {
			break
		}
		e = l.ToEpoch
	}
	return e
}

// Stitch reassembles one stream's span history from segments gathered off
// every card's registry and the handoff links the migration controller
// recorded. Duplicate (epoch, seq, stage, where) segments — the dedup-replay
// path can legitimately record the same hop twice — collapse to one.
func Stitch(stream int, segs []telemetry.Segment, links []telemetry.SpanLink) *Stitched {
	st := &Stitched{Stream: stream}
	for _, l := range links {
		if l.Stream == stream {
			st.Links = append(st.Links, l)
		}
	}
	sort.Slice(st.Links, func(i, j int) bool {
		if st.Links[i].At != st.Links[j].At {
			return st.Links[i].At < st.Links[j].At
		}
		return st.Links[i].ToEpoch < st.Links[j].ToEpoch
	})
	commits := commitLinks(stream, links)

	type segKey struct {
		epoch int
		seq   int64
		stage telemetry.Stage
		where string
	}
	seen := make(map[segKey]bool)
	byEpoch := make(map[int][]telemetry.Segment)
	maxEpoch := 0
	for _, l := range commits {
		if l.ToEpoch > maxEpoch {
			maxEpoch = l.ToEpoch
		}
	}
	for _, seg := range segs {
		if seg.Stream != stream || int(seg.Stage) >= stageCount {
			continue
		}
		e := assignEpoch(seg, commits)
		if e < 0 || e > maxEpoch {
			st.Unassigned++
			continue
		}
		k := segKey{e, seg.Seq, seg.Stage, seg.Where}
		if seen[k] {
			st.Deduped++
			continue
		}
		seen[k] = true
		byEpoch[e] = append(byEpoch[e], seg)
	}

	for e := 0; e <= maxEpoch; e++ {
		es := EpochSummary{Epoch: e, MinSeq: -1, MaxSeq: -1}
		for _, l := range commits {
			if l.ToEpoch == e {
				es.Where = l.ToWhere
			}
			if l.FromEpoch == e && es.Where == "" {
				es.Where = l.FromWhere
			}
		}
		segs := byEpoch[e]
		sort.Slice(segs, func(i, j int) bool {
			a, b := segs[i], segs[j]
			if a.Seq != b.Seq {
				return a.Seq < b.Seq
			}
			if a.Stage != b.Stage {
				return a.Stage < b.Stage
			}
			return a.Start < b.Start
		})
		perSeq := make(map[int64]int)
		for _, s := range segs {
			if es.MinSeq < 0 || s.Seq < es.MinSeq {
				es.MinSeq = s.Seq
			}
			if s.Seq > es.MaxSeq {
				es.MaxSeq = s.Seq
			}
			if es.Start == 0 && es.End == 0 || s.Start < es.Start {
				es.Start = s.Start
			}
			if s.End > es.End {
				es.End = s.End
			}
			es.PerStage[s.Stage]++
			perSeq[s.Seq] |= 1 << s.Stage
		}
		full := int64(-1)
		all := 1<<stageCount - 1
		for seq, mask := range perSeq {
			if mask == all {
				es.Complete++
				if full < 0 || seq < full {
					full = seq
				}
			}
		}
		if full >= 0 {
			es.firstFullS = full
			for _, s := range segs {
				if s.Seq == full {
					es.FirstFull = append(es.FirstFull, s)
				}
			}
		}
		st.Epochs = append(st.Epochs, es)
	}
	return st
}

// Render writes the stitched trace in its byte-stable artifact form: one
// block per epoch with seq range and per-stage counts, handoff links
// spelled out between them (cold and readd handoffs are explicit gaps —
// the cursor may have rewound, so the epochs are *not* presented as one
// contiguous seq space), and the first frame of each epoch that completed
// a full disk→wire→playout span traced hop by hop.
func (st *Stitched) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stitched trace gid=%02d: %d epoch(s), %d link(s), deduped=%d, unassigned=%d\n",
		st.Stream, len(st.Epochs), len(st.Links), st.Deduped, st.Unassigned)
	linksFrom := make(map[int][]telemetry.SpanLink)
	for _, l := range st.Links {
		linksFrom[l.FromEpoch] = append(linksFrom[l.FromEpoch], l)
	}
	for _, es := range st.Epochs {
		where := es.Where
		if where == "" {
			where = "?"
		}
		fmt.Fprintf(&b, "epoch %d on %s: seq %d..%d span %v..%v  disk=%d bus=%d queue=%d tx=%d wire=%d playout=%d complete=%d\n",
			es.Epoch, where, es.MinSeq, es.MaxSeq, es.Start, es.End,
			es.PerStage[telemetry.StageDisk], es.PerStage[telemetry.StageBus],
			es.PerStage[telemetry.StageQueue], es.PerStage[telemetry.StageTx],
			es.PerStage[telemetry.StageWire], es.PerStage[telemetry.StagePlayout],
			es.Complete)
		if len(es.FirstFull) > 0 {
			fmt.Fprintf(&b, "  frame seq=%d full span:", es.firstFullS)
			for _, s := range es.FirstFull {
				fmt.Fprintf(&b, " %s[%v+%v]", s.Stage, s.Start, s.Dur())
			}
			b.WriteString("\n")
		}
		for _, l := range linksFrom[es.Epoch] {
			switch l.Kind {
			case LinkAbort:
				fmt.Fprintf(&b, "  handoff ABORT %s→%s at %v cursor seq=%d (epoch unchanged)\n",
					l.FromWhere, l.ToWhere, l.At, l.Seq)
			case LinkLive:
				fmt.Fprintf(&b, "  handoff live %s→%s at %v cursor seq=%d (cursor contiguous)\n",
					l.FromWhere, l.ToWhere, l.At, l.Seq)
			default:
				fmt.Fprintf(&b, "  handoff %s %s→%s at %v cursor seq=%d (EPOCH GAP: cursor not contiguous)\n",
					l.Kind, l.FromWhere, l.ToWhere, l.At, l.Seq)
			}
		}
	}
	return b.String()
}

// LiveMigrated reports whether the stream completed at least one live
// handoff — the acceptance filter for which stream to feature in the
// stitched artifact.
func (st *Stitched) LiveMigrated() bool {
	for _, l := range st.Links {
		if l.Kind == LinkLive {
			return true
		}
	}
	return false
}

// FullPath reports whether any epoch recorded a complete disk→…→playout
// frame span.
func (st *Stitched) FullPath() bool {
	for _, es := range st.Epochs {
		if es.Complete > 0 {
			return true
		}
	}
	return false
}
