// Control-plane replication rollup: the leader-change rows of the fleet's
// observability artifacts. The replicated DVCM controller (internal/cluster
// ctrlha) journals placement decisions and ships per-poll checkpoints
// between replicas; this renderer turns each replica's accounting into the
// byte-stable leadership table that rides next to the card rollup — who
// leads, at which epoch, how many takeovers, how much journal traffic, and
// how many stale commands the cards fenced.
package fleetobs

import (
	"fmt"
	"strings"
)

// CtrlStat is one controller replica's view for the control-plane rollup.
type CtrlStat struct {
	Name         string
	Leader       bool
	Epoch        int   // leader epoch the replica currently operates under
	Takeovers    int   // times this replica seized leadership
	CkptsSent    int   // full-state checkpoints shipped to the peer
	CkptsRecv    int   // checkpoints received from the peer
	JournalSent  int   // write-ahead journal entries shipped
	JournalBytes int64 // journal + checkpoint bytes on the wire
	Dropped      int   // replication messages lost to crash or partition
	Fenced       int   // this replica's stale-epoch commands rejected by cards
}

// RenderCtrlPlane writes the leadership table: one row per replica plus a
// fleet header naming the current leader and epoch. Deterministic function
// of its inputs; replicas render in the order given (replica ID order).
func RenderCtrlPlane(reps []CtrlStat) string {
	var b strings.Builder
	leader, epoch, takeovers := "none", 0, 0
	for _, r := range reps {
		if r.Epoch > epoch {
			epoch = r.Epoch
		}
		if r.Leader {
			leader = r.Name
		}
		takeovers += r.Takeovers
	}
	fmt.Fprintf(&b, "control plane: leader=%s epoch=%d takeovers=%d\n", leader, epoch, takeovers)
	fmt.Fprintf(&b, "%-8s %-9s %5s %9s %8s %8s %8s %9s %8s %7s\n",
		"replica", "role", "epoch", "takeover", "ckpt_tx", "ckpt_rx",
		"journal", "jbytes", "dropped", "fenced")
	for _, r := range reps {
		role := "follower"
		if r.Leader {
			role = "leader"
		}
		fmt.Fprintf(&b, "%-8s %-9s %5d %9d %8d %8d %8d %8dB %8d %7d\n",
			r.Name, role, r.Epoch, r.Takeovers, r.CkptsSent, r.CkptsRecv,
			r.JournalSent, r.JournalBytes, r.Dropped, r.Fenced)
	}
	return b.String()
}
