package fleetobs

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestTimelineMergeOrder(t *testing.T) {
	tl := NewTimeline()
	tl.Add(TimelineEvent{At: 2 * sim.Second, Src: 3, SrcName: "ni03", Kind: "fault", Note: "late"})
	tl.Add(TimelineEvent{At: 1 * sim.Second, Src: 5, SrcName: "ni05", Kind: "ladder", Note: "b"})
	tl.Add(TimelineEvent{At: 1 * sim.Second, Src: SrcController, SrcName: "dvcm", Kind: "scrape-degrade", Note: "a"})
	tl.Add(TimelineEvent{At: 1 * sim.Second, Src: 5, SrcName: "ni05", Kind: "ladder", Note: "c"})

	got := tl.Events()
	want := []string{"a", "b", "c", "late"}
	for i, e := range got {
		if e.Note != want[i] {
			t.Fatalf("merge order: event %d note=%q want %q", i, e.Note, want[i])
		}
	}
	// Same-instant: controller sorts before cards; same-source ties keep
	// arrival order.
	if got[0].Src != SrcController {
		t.Fatalf("controller event should sort first at equal time")
	}

	out := tl.Render()
	if !strings.Contains(out, "4 event(s)") {
		t.Fatalf("render header: %q", out)
	}
	// Rendering twice is byte-identical (sort is stable and pure).
	if out != tl.Render() {
		t.Fatalf("render not deterministic")
	}
}

func TestRollupAggregation(t *testing.T) {
	cards := []CardStat{
		{Card: 0, Host: "h00", Switch: "sw0", Streams: 2, Health: HealthOK, GoodputMB: 1.5, Burn: 0.2, MemPct: 30, Rung: 0},
		{Card: 1, Host: "h00", Switch: "sw0", Streams: 2, Health: HealthBurning, GoodputMB: 1.0, Burn: 2.5, MemPct: 60, Breaches: 0, Rung: 1},
		{Card: 2, Host: "h01", Switch: "sw0", Streams: 2, Health: HealthOK, GoodputMB: 1.4, Burn: 0.1, MemPct: 25},
		{Card: 3, Host: "h01", Switch: "sw0", Dark: true},
	}
	out := RenderRollup(cards)
	for _, want := range []string{
		"ni00", "ni03", "h00", "h01", "sw0", "fleet",
		"burning", "dark",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rollup missing %q:\n%s", want, out)
		}
	}
	// Host h00 aggregates worst health and summed goodput of its two cards.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "h00") {
			if !strings.Contains(line, "burning") || !strings.Contains(line, "2.50") {
				t.Fatalf("h00 row aggregation wrong: %q", line)
			}
		}
		if strings.HasPrefix(line, "fleet  ") && !strings.Contains(line, "dark") {
			t.Fatalf("fleet health should be dark (worst member): %q", line)
		}
	}
}

func TestTopKOrdering(t *testing.T) {
	out := RenderTopK([]StreamPressure{
		{Stream: 1, Card: 0, ShortBurn: 0.1},
		{Stream: 2, Card: 1, ShortBurn: 3.0, Health: HealthBurning},
		{Stream: 3, Card: 2, ShortBurn: 3.0, LongBurn: 1.0, Health: HealthWarn},
	}, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+2 rows, got %d lines:\n%s", len(lines), out)
	}
	// g03 wins the short-burn tie on long burn; g01 is cut by k=2.
	if !strings.HasPrefix(lines[2], "g03") || !strings.HasPrefix(lines[3], "g02") {
		t.Fatalf("topk order wrong:\n%s", out)
	}
}

func seg(stream int, seq int64, epoch int, stage telemetry.Stage, where string, start sim.Time) telemetry.Segment {
	return telemetry.Segment{
		Stream: stream, Seq: seq, Epoch: epoch, Stage: stage, Where: where,
		Start: start, End: start + sim.Millisecond,
	}
}

// fullFrame returns all six stages of one frame.
func fullFrame(stream int, seq int64, epoch int, where string, start sim.Time) []telemetry.Segment {
	var out []telemetry.Segment
	for st := telemetry.StageDisk; st <= telemetry.StagePlayout; st++ {
		e := epoch
		if st >= telemetry.StageTx {
			e = -1 // client side never knows the placement
		}
		out = append(out, seg(stream, seq, e, st, where, start+sim.Time(st)*sim.Millisecond))
	}
	return out
}

func TestStitchLiveMigration(t *testing.T) {
	var segs []telemetry.Segment
	// Epoch 0 on ni00: seqs 0..4. Epoch 1 on ni01: seqs 5..9.
	for s := int64(0); s < 5; s++ {
		segs = append(segs, fullFrame(7, s, 0, "ni00", sim.Time(s)*100*sim.Millisecond)...)
	}
	for s := int64(5); s < 10; s++ {
		segs = append(segs, fullFrame(7, s, 1, "ni01", sim.Time(s)*100*sim.Millisecond)...)
	}
	links := []telemetry.SpanLink{{
		Stream: 7, FromEpoch: 0, ToEpoch: 1, FromWhere: "ni00", ToWhere: "ni01",
		Seq: 5, At: 450 * sim.Millisecond, Kind: LinkLive,
	}}
	st := Stitch(7, segs, links)
	if len(st.Epochs) != 2 {
		t.Fatalf("want 2 epochs, got %d", len(st.Epochs))
	}
	if !st.LiveMigrated() || !st.FullPath() {
		t.Fatalf("live migration with full spans expected")
	}
	e0, e1 := st.Epochs[0], st.Epochs[1]
	if e0.MinSeq != 0 || e0.MaxSeq != 4 || e1.MinSeq != 5 || e1.MaxSeq != 9 {
		t.Fatalf("seq ranges wrong: e0=[%d,%d] e1=[%d,%d]", e0.MinSeq, e0.MaxSeq, e1.MinSeq, e1.MaxSeq)
	}
	// Client-side (epoch -1) spans were attributed by the cursor: every
	// frame completed in exactly one epoch.
	if e0.Complete != 5 || e1.Complete != 5 {
		t.Fatalf("complete counts wrong: %d/%d", e0.Complete, e1.Complete)
	}
	out := st.Render()
	if !strings.Contains(out, "cursor contiguous") || !strings.Contains(out, "ni00") || !strings.Contains(out, "ni01") {
		t.Fatalf("render missing handoff annotation:\n%s", out)
	}
	if !strings.Contains(out, "full span: disk[") || !strings.Contains(out, "playout[") {
		t.Fatalf("render missing disk→playout frame trace:\n%s", out)
	}
}

// A handoff that aborts mid-migration must not invent a phantom epoch: all
// spans stay in epoch 0 and the abort is annotated.
func TestStitchAbortMidHandoff(t *testing.T) {
	var segs []telemetry.Segment
	for s := int64(0); s < 6; s++ {
		segs = append(segs, fullFrame(3, s, 0, "ni02", sim.Time(s)*100*sim.Millisecond)...)
	}
	links := []telemetry.SpanLink{{
		Stream: 3, FromEpoch: 0, ToEpoch: 0, FromWhere: "ni02", ToWhere: "?",
		Seq: 4, At: 350 * sim.Millisecond, Kind: LinkAbort,
	}}
	st := Stitch(3, segs, links)
	if len(st.Epochs) != 1 {
		t.Fatalf("abort must not advance the epoch: got %d epochs", len(st.Epochs))
	}
	if st.Epochs[0].MinSeq != 0 || st.Epochs[0].MaxSeq != 5 {
		t.Fatalf("all seqs stay in epoch 0: [%d,%d]", st.Epochs[0].MinSeq, st.Epochs[0].MaxSeq)
	}
	if st.Unassigned != 0 {
		t.Fatalf("no segment should be orphaned by an abort: %d", st.Unassigned)
	}
	if !strings.Contains(st.Render(), "handoff ABORT") {
		t.Fatalf("abort not annotated:\n%s", st.Render())
	}
}

// Cold migration restores a stale checkpoint: the cursor rewinds, seq
// ranges overlap, and the stitcher must mark the gap explicitly and assign
// overlapping client-side seqs by time, never presenting the epochs as one
// contiguous cursor space.
func TestStitchColdMigrationExplicitGap(t *testing.T) {
	var segs []telemetry.Segment
	// Old card served seqs 0..7, crashed at t=750ms. Checkpoint was at
	// seq 5, so the new card re-serves 5..9 starting at t=1.5s.
	for s := int64(0); s < 8; s++ {
		segs = append(segs, fullFrame(9, s, 0, "ni04", sim.Time(s)*90*sim.Millisecond)...)
	}
	for s := int64(5); s < 10; s++ {
		segs = append(segs, fullFrame(9, s, 1, "ni06", 1500*sim.Millisecond+sim.Time(s-5)*90*sim.Millisecond)...)
	}
	links := []telemetry.SpanLink{{
		Stream: 9, FromEpoch: 0, ToEpoch: 1, FromWhere: "ni04", ToWhere: "ni06",
		Seq: 5, At: 1500 * sim.Millisecond, Kind: LinkCold,
	}}
	st := Stitch(9, segs, links)
	if len(st.Epochs) != 2 {
		t.Fatalf("want 2 epochs, got %d", len(st.Epochs))
	}
	e0, e1 := st.Epochs[0], st.Epochs[1]
	// Seqs 5..7 exist in BOTH epochs (re-served after the rewind); the
	// client-side duplicates were separated by time, not cursor.
	if e0.MaxSeq != 7 || e1.MinSeq != 5 {
		t.Fatalf("cold rewind overlap lost: e0 max=%d e1 min=%d", e0.MaxSeq, e1.MinSeq)
	}
	if e0.Complete != 8 || e1.Complete != 5 {
		t.Fatalf("complete counts wrong: %d/%d", e0.Complete, e1.Complete)
	}
	out := st.Render()
	if !strings.Contains(out, "EPOCH GAP") {
		t.Fatalf("cold handoff must be an explicit gap:\n%s", out)
	}
	if strings.Contains(out, "cursor contiguous") {
		t.Fatalf("cold handoff must not claim contiguity:\n%s", out)
	}
}

// A dedup-replayed in-flight frame records its hops twice; the stitched
// trace must contain exactly one span per (epoch, seq, stage).
func TestStitchDedupReplayedFrame(t *testing.T) {
	var segs []telemetry.Segment
	segs = append(segs, fullFrame(2, 0, 0, "ni00", 0)...)
	segs = append(segs, fullFrame(2, 1, 1, "ni01", 200*sim.Millisecond)...)
	// The replayed frame's queue hop arrived twice (dvcmnet retry absorbed
	// by dedup, but both attempts recorded the span).
	dup := seg(2, 1, 1, telemetry.StageQueue, "ni01", 202*sim.Millisecond)
	segs = append(segs, dup, dup)
	links := []telemetry.SpanLink{{
		Stream: 2, FromEpoch: 0, ToEpoch: 1, FromWhere: "ni00", ToWhere: "ni01",
		Seq: 1, At: 150 * sim.Millisecond, Kind: LinkLive,
	}}
	st := Stitch(2, segs, links)
	if st.Deduped != 2 {
		t.Fatalf("want 2 duplicate segments collapsed, got %d", st.Deduped)
	}
	if n := st.Epochs[1].PerStage[telemetry.StageQueue]; n != 1 {
		t.Fatalf("want exactly one stitched queue span for the replayed frame, got %d", n)
	}
}

func TestStitchNoLinksSingleEpoch(t *testing.T) {
	segs := fullFrame(1, 0, 0, "ni00", 0)
	st := Stitch(1, segs, nil)
	if len(st.Epochs) != 1 || st.Epochs[0].Complete != 1 {
		t.Fatalf("unmigrated stream should stitch to one complete epoch: %+v", st.Epochs)
	}
	if st.LiveMigrated() {
		t.Fatalf("no links means no live migration")
	}
}
