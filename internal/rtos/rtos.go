// Package rtos models the embedded VxWorks configuration the paper boots on
// each i960 RD card: a priority-preemptive "wind"-style task scheduler,
// binary semaphores, blocking I/O waits, and the timestamp-counter rollover
// management the paper adds to the kernel (§2).
//
// Tasks are Go routines driven in strict handoff by the simulation engine:
// exactly one task (or the kernel) executes at any instant and control
// passes through channels, so the simulation stays deterministic. A task
// consumes simulated CPU with Run (or Charge, which drains a cpu.Meter
// lap), blocks with Sleep/Await/Take, and the kernel always runs the
// highest-priority ready task, paying a context-switch cost on every
// switch. A CPU burst is not preempted mid-flight (bursts in this system
// are microseconds long); preemption happens at burst and blocking
// boundaries.
package rtos

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// TaskState enumerates task lifecycle states.
type TaskState int

// Task states.
const (
	Ready TaskState = iota
	Running
	Blocked
	Exited
)

type yieldKind int

const (
	yBlocked yieldKind = iota
	yBurst
	yExited
)

// Task is one VxWorks-style task.
type Task struct {
	name string
	prio int // lower number = higher priority, VxWorks style
	seq  int64

	state       TaskState
	wakePending bool
	sliceUsed   sim.Time // CPU consumed since last dispatch (time slicing)
	resume      chan struct{}
	yielded     chan yieldKind

	// CPUTime accumulates simulated CPU consumed by this task.
	CPUTime sim.Time
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Priority returns the task priority.
func (t *Task) Priority() int { return t.prio }

// State returns the task state.
func (t *Task) State() TaskState { return t.state }

// Kernel is one processor's task scheduler.
type Kernel struct {
	eng     *sim.Engine
	name    string
	ctxCost sim.Time

	ready           []*Task // sorted by (prio, seq)
	running         *Task
	last            *Task
	spawnSeq        int64
	dispatchPending bool
	halted          bool

	// TimeSlice, when positive, enables VxWorks kernelTimeSlice-style
	// round-robin among equal-priority tasks: a task whose burst ends is
	// also preempted by a *ready equal-priority* task once it has consumed
	// at least TimeSlice since it last got the CPU.
	TimeSlice sim.Time

	// Switches counts context switches (task-to-task transitions).
	Switches int64
	// BusyTime accumulates CPU time consumed by all tasks.
	BusyTime sim.Time
}

// NewKernel returns a kernel on eng charging ctxCost per context switch.
func NewKernel(eng *sim.Engine, name string, ctxCost sim.Time) *Kernel {
	return &Kernel{eng: eng, name: name, ctxCost: ctxCost}
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// Running returns the task currently holding the CPU, if any.
func (k *Kernel) Running() *Task { return k.running }

// Engine returns the simulation engine the kernel runs on.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Utilization reports the fraction of elapsed simulated time this kernel's
// tasks spent on the CPU.
func (k *Kernel) Utilization() float64 {
	if k.eng.Now() == 0 {
		return 0
	}
	return float64(k.BusyTime) / float64(k.eng.Now())
}

// TaskCtx is the API visible to a running task body.
type TaskCtx struct {
	k *Kernel
	t *Task
}

// Kernel returns the owning kernel.
func (tc *TaskCtx) Kernel() *Kernel { return tc.k }

// Now returns the current simulated time.
func (tc *TaskCtx) Now() sim.Time { return tc.k.eng.Now() }

// Spawn creates a task; it becomes ready immediately and runs when it is
// the highest-priority ready task.
func (k *Kernel) Spawn(name string, prio int, body func(tc *TaskCtx)) *Task {
	k.spawnSeq++
	t := &Task{
		name:    name,
		prio:    prio,
		seq:     k.spawnSeq,
		state:   Ready,
		resume:  make(chan struct{}),
		yielded: make(chan yieldKind),
	}
	go func() {
		<-t.resume
		body(&TaskCtx{k: k, t: t})
		t.state = Exited
		t.yielded <- yExited
	}()
	k.enqueueReady(t)
	k.kick()
	return t
}

func (k *Kernel) enqueueReady(t *Task) {
	t.state = Ready
	k.spawnSeq++
	t.seq = k.spawnSeq // append at the back of this priority class
	i := len(k.ready)
	for i > 0 {
		prev := k.ready[i-1]
		if prev.prio < t.prio || (prev.prio == t.prio && prev.seq < t.seq) {
			break
		}
		i--
	}
	k.ready = append(k.ready, nil)
	copy(k.ready[i+1:], k.ready[i:])
	k.ready[i] = t
}

// Halt freezes the processor (card crash / firmware wedge): the running
// task is parked at its next burst boundary, ready tasks stop being
// dispatched, and timer wakeups only mark tasks ready. Resume undoes it.
func (k *Kernel) Halt() { k.halted = true }

// Halted reports whether the kernel is frozen.
func (k *Kernel) Halted() bool { return k.halted }

// Resume restarts a halted kernel; ready tasks dispatch again.
func (k *Kernel) Resume() {
	if !k.halted {
		return
	}
	k.halted = false
	k.kick()
}

// kick schedules a dispatch if the CPU is idle.
func (k *Kernel) kick() {
	if k.halted || k.running != nil || k.dispatchPending || len(k.ready) == 0 {
		return
	}
	k.dispatchPending = true
	k.eng.After(0, k.dispatch)
}

func (k *Kernel) dispatch() {
	k.dispatchPending = false
	if k.halted || k.running != nil || len(k.ready) == 0 {
		return
	}
	t := k.ready[0]
	k.ready = k.ready[1:]
	if k.last != t && k.last != nil && k.ctxCost > 0 {
		// Pay the switch cost, then run.
		k.Switches++
		k.running = t // reserve the CPU during the switch
		k.eng.After(k.ctxCost, func() {
			if k.halted {
				// The crash landed mid-switch: park the task instead.
				k.running = nil
				k.enqueueReady(t)
				return
			}
			k.resumeTask(t)
		})
		return
	}
	if k.last != t {
		k.Switches++
	}
	k.running = t
	k.resumeTask(t)
}

// resumeTask hands the CPU to t and processes its next yield.
func (k *Kernel) resumeTask(t *Task) {
	k.running = t
	k.last = t
	t.state = Running
	t.sliceUsed = 0
	t.resume <- struct{}{}
	kind := <-t.yielded
	switch kind {
	case yBurst:
		// CPU stays reserved; the burst-completion event resumes the task.
	case yBlocked, yExited:
		k.running = nil
		k.kick()
	}
}

// wake makes t ready; if t has not yet blocked (a completion raced ahead of
// the block), the wakeup is remembered.
func (k *Kernel) wake(t *Task) {
	switch t.state {
	case Blocked:
		k.enqueueReady(t)
		k.kick()
	case Exited:
		// ignore
	default:
		t.wakePending = true
	}
}

// block parks the calling task until wake. Must be called from the task's
// own goroutine.
func (tc *TaskCtx) block() {
	t := tc.t
	if t.wakePending {
		t.wakePending = false
		return
	}
	t.state = Blocked
	t.yielded <- yBlocked
	<-t.resume
}

// Run consumes d of simulated CPU, holding the processor.
func (tc *TaskCtx) Run(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("rtos %s: negative run %v", tc.t.name, d))
	}
	if d == 0 {
		return
	}
	t := tc.t
	k := tc.k
	t.CPUTime += d
	k.BusyTime += d
	k.eng.After(d, func() {
		t.sliceUsed += d
		if k.halted {
			// The processor froze during this burst: park the task; Resume
			// re-dispatches it from the ready queue.
			k.running = nil
			k.enqueueReady(t)
			return
		}
		// Burst boundary: a preemption point. A higher-priority ready task
		// always takes the CPU; with time slicing enabled, an equal-
		// priority ready task does too once this task's slice is spent.
		preempt := len(k.ready) > 0 && k.ready[0].prio < t.prio
		if !preempt && k.TimeSlice > 0 && t.sliceUsed >= k.TimeSlice {
			preempt = len(k.ready) > 0 && k.ready[0].prio == t.prio
		}
		if preempt {
			k.running = nil
			k.enqueueReady(t)
			k.kick()
			return
		}
		t.state = Running
		t.resume <- struct{}{}
		kind := <-t.yielded
		switch kind {
		case yBurst:
			// another burst follows; CPU stays held
		case yBlocked, yExited:
			k.running = nil
			k.kick()
		}
	})
	t.state = Running
	t.yielded <- yBurst
	<-t.resume
}

// Charge consumes CPU for all cycles accumulated on lap since its last
// Take — the bridge between cpu.Meter-instrumented code and task time.
func (tc *TaskCtx) Charge(lap *cpu.Lap) { tc.Run(lap.Take()) }

// Sleep blocks the task for d.
func (tc *TaskCtx) Sleep(d sim.Time) {
	if d <= 0 {
		return
	}
	t := tc.t
	tc.k.eng.After(d, func() { tc.k.wake(t) })
	tc.block()
}

// SleepUntil blocks the task until absolute time at (no-op if in the past).
func (tc *TaskCtx) SleepUntil(at sim.Time) {
	now := tc.k.eng.Now()
	if at > now {
		tc.Sleep(at - now)
	}
}

// Await starts an asynchronous operation and blocks until its completion
// callback fires. start receives the completion function to pass to the
// substrate (disk read, DMA, link send, ...).
func (tc *TaskCtx) Await(start func(done func())) {
	t := tc.t
	start(func() { tc.k.wake(t) })
	tc.block()
}

// Semaphore is a counting semaphore usable from tasks (Take) and from
// interrupt context, i.e. plain engine callbacks (Give).
type Semaphore struct {
	k       *Kernel
	name    string
	count   int
	waiters []*Task
}

// NewSemaphore returns a semaphore with an initial count.
func NewSemaphore(k *Kernel, name string, initial int) *Semaphore {
	return &Semaphore{k: k, name: name, count: initial}
}

// Take decrements the semaphore, blocking the calling task while the count
// is zero.
func (s *Semaphore) Take(tc *TaskCtx) {
	if s.count > 0 {
		s.count--
		return
	}
	s.waiters = append(s.waiters, tc.t)
	tc.block()
}

// TryTake decrements without blocking, reporting success.
func (s *Semaphore) TryTake() bool {
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Give increments the semaphore, waking the longest-waiting task if any.
func (s *Semaphore) Give() {
	if len(s.waiters) > 0 {
		t := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.k.wake(t)
		return
	}
	s.count++
}

// Count returns the current count (waiters imply 0).
func (s *Semaphore) Count() int { return s.count }

// Timestamp models the i960 RD free-running timestamp counter: a width-
// limited register incrementing at a fixed rate. The paper adds "timestamp
// counter rollover management" to VxWorks; Extended reconstructs a
// monotonic 64-bit count from the rolling register, provided it is read at
// least once per wrap period.
type Timestamp struct {
	eng  *sim.Engine
	hz   int64
	bits uint

	lastRaw  uint64
	rollBase uint64
}

// NewTimestamp returns a counter of the given register width and rate.
func NewTimestamp(eng *sim.Engine, hz int64, bits uint) *Timestamp {
	if bits == 0 || bits > 63 {
		panic("rtos: timestamp width must be 1..63")
	}
	return &Timestamp{eng: eng, hz: hz, bits: bits}
}

// Raw returns the rolling register value at the current simulated time.
func (ts *Timestamp) Raw() uint64 {
	ticks := uint64(ts.eng.Now()) * uint64(ts.hz) / uint64(sim.Second)
	return ticks & ((1 << ts.bits) - 1)
}

// Extended returns a monotonic tick count, applying rollover management.
func (ts *Timestamp) Extended() uint64 {
	raw := ts.Raw()
	if raw < ts.lastRaw {
		ts.rollBase += 1 << ts.bits
	}
	ts.lastRaw = raw
	return ts.rollBase + raw
}

// WrapPeriod returns how long the register takes to wrap.
func (ts *Timestamp) WrapPeriod() sim.Time {
	return sim.Time(uint64(sim.Second) * (1 << ts.bits) / uint64(ts.hz))
}
