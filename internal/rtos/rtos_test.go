package rtos

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestSingleTaskRuns(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	ran := false
	k.Spawn("t", 100, func(tc *TaskCtx) {
		tc.Run(10 * sim.Microsecond)
		ran = true
	})
	eng.Run()
	if !ran {
		t.Fatal("task did not run")
	}
	if eng.Now() != 10*sim.Microsecond {
		t.Fatalf("now = %v", eng.Now())
	}
}

func TestPriorityOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var order []string
	for _, spec := range []struct {
		name string
		prio int
	}{{"low", 200}, {"high", 50}, {"mid", 100}} {
		spec := spec
		k.Spawn(spec.name, spec.prio, func(tc *TaskCtx) {
			order = append(order, spec.name)
			tc.Run(sim.Microsecond)
		})
	}
	eng.Run()
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunHoldsCPUExclusively(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var aDone, bStart sim.Time
	k.Spawn("a", 10, func(tc *TaskCtx) {
		tc.Run(100 * sim.Microsecond)
		aDone = tc.Now()
	})
	k.Spawn("b", 20, func(tc *TaskCtx) {
		bStart = tc.Now()
		tc.Run(50 * sim.Microsecond)
	})
	eng.Run()
	if bStart < aDone {
		t.Fatalf("b started at %v before a finished at %v", bStart, aDone)
	}
}

func TestSleepYieldsCPU(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var trace []string
	k.Spawn("sleeper", 10, func(tc *TaskCtx) {
		trace = append(trace, "s1")
		tc.Sleep(100 * sim.Microsecond)
		trace = append(trace, "s2")
	})
	k.Spawn("worker", 20, func(tc *TaskCtx) {
		tc.Run(10 * sim.Microsecond)
		trace = append(trace, "w")
	})
	eng.Run()
	want := []string{"s1", "w", "s2"}
	if len(trace) != 3 || trace[0] != want[0] || trace[1] != want[1] || trace[2] != want[2] {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestHigherPriorityWakeupPreemptsAtBoundary(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var highRanAt sim.Time
	k.Spawn("high", 10, func(tc *TaskCtx) {
		tc.Sleep(30 * sim.Microsecond)
		highRanAt = tc.Now()
	})
	k.Spawn("low", 200, func(tc *TaskCtx) {
		for i := 0; i < 10; i++ {
			tc.Run(10 * sim.Microsecond) // bursts; preemption at boundaries
		}
	})
	eng.Run()
	// high wakes at 30µs, exactly a burst boundary of low; it must run
	// right there, not after all of low's bursts (100µs).
	if highRanAt != 30*sim.Microsecond {
		t.Fatalf("high ran at %v, want 30µs", highRanAt)
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	eng := sim.NewEngine(1)
	ctx := 5 * sim.Microsecond
	k := NewKernel(eng, "ni0", ctx)
	var bDone sim.Time
	k.Spawn("a", 10, func(tc *TaskCtx) { tc.Run(10 * sim.Microsecond) })
	k.Spawn("b", 20, func(tc *TaskCtx) {
		tc.Run(10 * sim.Microsecond)
		bDone = tc.Now()
	})
	eng.Run()
	// a runs 0-10 (first dispatch: no previous task → no switch), switch 5,
	// b runs 15-25.
	if bDone != 25*sim.Microsecond {
		t.Fatalf("b done at %v, want 25µs", bDone)
	}
	if k.Switches == 0 {
		t.Fatal("no switches counted")
	}
}

func TestAwaitCompletesAfterCallback(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var done sim.Time
	k.Spawn("io", 10, func(tc *TaskCtx) {
		tc.Await(func(cb func()) {
			eng.After(70*sim.Microsecond, cb)
		})
		done = tc.Now()
	})
	eng.Run()
	if done != 70*sim.Microsecond {
		t.Fatalf("await done at %v", done)
	}
}

func TestAwaitImmediateCompletionDoesNotDeadlock(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	finished := false
	k.Spawn("io", 10, func(tc *TaskCtx) {
		tc.Await(func(cb func()) { cb() }) // completes synchronously
		finished = true
	})
	eng.Run()
	if !finished {
		t.Fatal("task stuck on pre-completed await")
	}
}

func TestSemaphoreBlocksAndWakes(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	sem := NewSemaphore(k, "frames", 0)
	var got sim.Time
	k.Spawn("consumer", 10, func(tc *TaskCtx) {
		sem.Take(tc)
		got = tc.Now()
	})
	k.Spawn("producer", 20, func(tc *TaskCtx) {
		tc.Sleep(40 * sim.Microsecond)
		sem.Give()
	})
	eng.Run()
	if got != 40*sim.Microsecond {
		t.Fatalf("consumer resumed at %v", got)
	}
}

func TestSemaphoreCountsAndTryTake(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	sem := NewSemaphore(k, "s", 2)
	if !sem.TryTake() || !sem.TryTake() {
		t.Fatal("initial counts should succeed")
	}
	if sem.TryTake() {
		t.Fatal("empty TryTake succeeded")
	}
	sem.Give()
	if sem.Count() != 1 {
		t.Fatalf("count = %d", sem.Count())
	}
}

func TestSemaphoreGiveFromInterruptContext(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	sem := NewSemaphore(k, "irq", 0)
	served := 0
	k.Spawn("worker", 10, func(tc *TaskCtx) {
		for i := 0; i < 3; i++ {
			sem.Take(tc)
			served++
			tc.Run(5 * sim.Microsecond)
		}
	})
	for i := 1; i <= 3; i++ {
		eng.At(sim.Time(i)*100*sim.Microsecond, sem.Give)
	}
	eng.Run()
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
}

func TestChargeDrainsMeterLap(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	m := cpu.NewMeter(cpu.I960RD())
	lap := cpu.StartLap(m)
	var took sim.Time
	k.Spawn("t", 10, func(tc *TaskCtx) {
		m.Int(660) // 660 cycles = 10 µs at 66 MHz
		tc.Charge(lap)
		took = tc.Now()
	})
	eng.Run()
	if took != 10*sim.Microsecond {
		t.Fatalf("charge consumed %v, want 10µs", took)
	}
}

func TestNegativeRunPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	panicked := false
	k.Spawn("bad", 10, func(tc *TaskCtx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		tc.Run(-1)
	})
	eng.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	k.Spawn("t", 10, func(tc *TaskCtx) {
		tc.Run(25 * sim.Microsecond)
		tc.Sleep(75 * sim.Microsecond)
	})
	eng.Run()
	u := k.Utilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestFIFOWithinSamePriority(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("t", 100, func(tc *TaskCtx) {
			order = append(order, i)
			tc.Run(sim.Microsecond)
		})
	}
	eng.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTimestampRaw(t *testing.T) {
	eng := sim.NewEngine(1)
	ts := NewTimestamp(eng, 66_000_000, 32)
	eng.RunUntil(sim.Second)
	if got := ts.Raw(); got != 66_000_000 {
		t.Fatalf("raw after 1s = %d, want 66e6", got)
	}
}

func TestTimestampRolloverManagement(t *testing.T) {
	eng := sim.NewEngine(1)
	// 16-bit counter at 66 MHz wraps every ~0.99 ms.
	ts := NewTimestamp(eng, 66_000_000, 16)
	wrap := ts.WrapPeriod()
	if wrap.Microseconds() < 900 || wrap.Microseconds() > 1100 {
		t.Fatalf("wrap period = %v", wrap)
	}
	var last uint64
	// Sample twice per wrap for 20 wraps: Extended must be monotonic.
	step := wrap / 2
	for i := 0; i < 40; i++ {
		eng.RunUntil(eng.Now() + step)
		got := ts.Extended()
		if got < last {
			t.Fatalf("Extended went backwards: %d < %d at %v", got, last, eng.Now())
		}
		last = got
	}
	if last < 39*uint64(step)*66/1000 { // sanity: roughly hz*elapsed
		t.Fatalf("Extended = %d, too small", last)
	}
}

func TestTimestampWidthValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, bits := range []uint{0, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			NewTimestamp(eng, 1000, bits)
		}()
	}
}

// Property: N equal-priority tasks each running a burst complete in spawn
// order with total time = sum of bursts.
func TestKernelSerializationProperty(t *testing.T) {
	f := func(bursts []uint8) bool {
		eng := sim.NewEngine(1)
		k := NewKernel(eng, "k", 0)
		var total sim.Time
		var order []int
		for i, b := range bursts {
			i := i
			d := sim.Time(b) * sim.Microsecond
			total += d
			k.Spawn("t", 50, func(tc *TaskCtx) {
				tc.Run(d)
				order = append(order, i)
			})
		}
		eng.Run()
		if eng.Now() != total {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSliceRoundRobinsEqualPriority(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	k.TimeSlice = 20 * sim.Microsecond
	var firstB sim.Time
	work := func(name string, mark *sim.Time) func(*TaskCtx) {
		return func(tc *TaskCtx) {
			for i := 0; i < 4; i++ {
				tc.Run(10 * sim.Microsecond)
				if mark != nil && *mark == 0 {
					*mark = tc.Now()
				}
			}
		}
	}
	k.Spawn("a", 100, work("a", nil))
	k.Spawn("b", 100, work("b", &firstB))
	eng.Run()
	// Without slicing, "a" runs all 40 µs first and b's first burst ends at
	// 50 µs. With a 20 µs slice the CPU rotates after two bursts, so b's
	// first burst completes at 30 µs.
	if firstB != 30*sim.Microsecond {
		t.Fatalf("b's first burst completed at %v, want 30µs (sliced rotation)", firstB)
	}
	if eng.Now() < 80*sim.Microsecond {
		t.Fatalf("total = %v, want both tasks' 80µs of work", eng.Now())
	}
}

func TestNoTimeSliceRunsToBlock(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	var order []string
	work := func(name string) func(*TaskCtx) {
		return func(tc *TaskCtx) {
			for i := 0; i < 3; i++ {
				tc.Run(10 * sim.Microsecond)
				order = append(order, name)
			}
		}
	}
	k.Spawn("a", 100, work("a"))
	k.Spawn("b", 100, work("b"))
	eng.Run()
	want := []string{"a", "a", "a", "b", "b", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTimeSliceDoesNotStarveLowerPriority(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni0", 0)
	k.TimeSlice = 10 * sim.Microsecond
	done := false
	k.Spawn("high", 50, func(tc *TaskCtx) {
		tc.Run(30 * sim.Microsecond)
	})
	k.Spawn("low", 200, func(tc *TaskCtx) {
		tc.Run(10 * sim.Microsecond)
		done = true
	})
	eng.Run()
	if !done {
		t.Fatal("low-priority task starved")
	}
}
