package rtos

import (
	"testing"

	"repro/internal/sim"
)

// TestWatchdogQuietWhilePetted: a healthy petter task keeps the watchdog
// from ever biting.
func TestWatchdogQuietWhilePetted(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni", 10*sim.Microsecond)
	w := NewWatchdog(eng, 100*sim.Millisecond, nil)
	w.SpawnPetter(k, "pet", 60, 25*sim.Millisecond)
	eng.RunUntil(5 * sim.Second)
	if w.Bites != 0 {
		t.Fatalf("bites = %d on a healthy kernel", w.Bites)
	}
	if w.Starving() > 25*sim.Millisecond {
		t.Fatalf("starving %v with a 25 ms petter", w.Starving())
	}
}

// TestWatchdogBitesHaltedKernel: halting the kernel starves the petter and
// the watchdog fires its reset callback, repeatedly, until Resume.
func TestWatchdogBitesHaltedKernel(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni", 10*sim.Microsecond)
	var bites []sim.Time
	w := NewWatchdog(eng, 100*sim.Millisecond, func() { bites = append(bites, eng.Now()) })
	w.SpawnPetter(k, "pet", 60, 25*sim.Millisecond)

	eng.At(sim.Second, k.Halt)
	eng.RunUntil(1500 * sim.Millisecond)
	if len(bites) < 3 {
		t.Fatalf("bites = %d in a 500 ms halt with a 100 ms timeout", len(bites))
	}
	if bites[0] > 1100*sim.Millisecond+sim.Millisecond {
		t.Fatalf("first bite at %v, want ≈1.1s", bites[0])
	}

	eng.At(1500*sim.Millisecond+sim.Microsecond, k.Resume)
	prior := len(bites)
	eng.RunUntil(3 * sim.Second)
	// Allow one race-window bite right at resume, then silence.
	if len(bites) > prior+1 {
		t.Fatalf("watchdog kept biting after resume: %d new", len(bites)-prior)
	}
}

// TestWatchdogBitesRunawayTask: a runaway highest-priority task starves the
// lower-priority petter; the watchdog detects the hang and goes quiet when
// the hog exits.
func TestWatchdogBitesRunawayTask(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni", 10*sim.Microsecond)
	w := NewWatchdog(eng, 100*sim.Millisecond, nil)
	w.SpawnPetter(k, "pet", 60, 25*sim.Millisecond)
	eng.At(sim.Second, func() {
		k.Spawn("hog", 0, func(tc *TaskCtx) { tc.Run(400 * sim.Millisecond) })
	})
	eng.RunUntil(5 * sim.Second)
	if w.Bites < 2 || w.Bites > 5 {
		t.Fatalf("bites = %d across a 400 ms hang, want 3-ish", w.Bites)
	}
	if w.Starving() > 25*sim.Millisecond {
		t.Fatal("petter did not recover after the hog exited")
	}
}

// TestWatchdogStop disarms for good.
func TestWatchdogStop(t *testing.T) {
	eng := sim.NewEngine(1)
	w := NewWatchdog(eng, 10*sim.Millisecond, nil)
	w.Stop()
	eng.Run() // must terminate: no re-arming events left
	if w.Bites != 0 {
		t.Fatalf("stopped watchdog bit %d times", w.Bites)
	}
}

// TestHaltParksMidBurstTask: a task whose CPU burst is in flight when the
// kernel halts is parked, then finishes after Resume.
func TestHaltParksMidBurstTask(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni", 0)
	var doneAt sim.Time
	k.Spawn("worker", 50, func(tc *TaskCtx) {
		tc.Run(10 * sim.Millisecond)
		doneAt = tc.Now()
	})
	eng.At(5*sim.Millisecond, k.Halt)
	eng.RunUntil(sim.Second)
	if doneAt != 0 {
		t.Fatalf("task completed at %v during a halt", doneAt)
	}
	if k.Running() != nil {
		t.Fatal("halted kernel still shows a running task")
	}
	eng.At(sim.Second, k.Resume)
	eng.RunUntil(2 * sim.Second)
	if doneAt < sim.Second {
		t.Fatalf("task completed at %v, want after resume", doneAt)
	}
}

// TestHaltBlocksNewSpawns: tasks spawned while halted run only after resume.
func TestHaltBlocksNewSpawns(t *testing.T) {
	eng := sim.NewEngine(1)
	k := NewKernel(eng, "ni", 0)
	k.Halt()
	ran := sim.Time(-1)
	k.Spawn("late", 50, func(tc *TaskCtx) { ran = tc.Now() })
	eng.RunUntil(sim.Second)
	if ran != -1 {
		t.Fatalf("task ran at %v on a halted kernel", ran)
	}
	k.Resume()
	eng.RunUntil(2 * sim.Second)
	if ran < sim.Second {
		t.Fatalf("task ran at %v, want ≥1s", ran)
	}
}
