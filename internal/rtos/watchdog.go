// Watchdog: the i960 RD carries a free-running hardware timer that the
// paper's VxWorks configuration can program as a deadman. A Watchdog lives
// on the simulation engine — *outside* the kernel it guards — so a halted
// or starved kernel cannot silence it. Software must Pet it at least once
// per timeout; otherwise it bites, firing the reset callback, and keeps
// biting once per timeout until pets resume (retry on failed resets).
package rtos

import "repro/internal/sim"

// Watchdog is a hardware deadman timer.
type Watchdog struct {
	eng     *sim.Engine
	timeout sim.Time
	onBite  func()
	ev      sim.Event
	stopped bool

	// Bites counts expirations; LastPet is the most recent feed.
	Bites   int64
	LastPet sim.Time
}

// NewWatchdog arms a watchdog that bites after timeout without a Pet.
func NewWatchdog(eng *sim.Engine, timeout sim.Time, onBite func()) *Watchdog {
	if timeout <= 0 {
		panic("rtos: watchdog timeout must be positive")
	}
	w := &Watchdog{eng: eng, timeout: timeout, onBite: onBite, LastPet: eng.Now()}
	w.arm()
	return w
}

func (w *Watchdog) arm() {
	w.ev = w.eng.After(w.timeout, w.bite)
}

func (w *Watchdog) bite() {
	if w.stopped {
		return
	}
	w.Bites++
	w.arm() // keep biting while starved: failed resets get retried
	if w.onBite != nil {
		w.onBite()
	}
}

// Observe chains fn to run after the existing reset callback on every
// bite — the flight recorder's tap on the deadman, attached without
// disturbing whatever recovery action the watchdog was armed with.
func (w *Watchdog) Observe(fn func()) {
	prev := w.onBite
	w.onBite = func() {
		if prev != nil {
			prev()
		}
		fn()
	}
}

// Pet feeds the watchdog, pushing the next bite a full timeout out.
func (w *Watchdog) Pet() {
	if w.stopped {
		return
	}
	w.LastPet = w.eng.Now()
	w.ev.Cancel()
	w.arm()
}

// Stop disarms the watchdog permanently.
func (w *Watchdog) Stop() {
	w.stopped = true
	w.ev.Cancel()
}

// Starving reports how long since the last pet.
func (w *Watchdog) Starving() sim.Time { return w.eng.Now() - w.LastPet }

// SpawnPetter starts a kernel task that pets the watchdog every `every`.
// Run it below the tasks whose liveness it vouches for: if a runaway
// higher-priority task hogs the CPU — or the kernel halts outright — the
// petter starves with it and the watchdog bites.
func (w *Watchdog) SpawnPetter(k *Kernel, name string, prio int, every sim.Time) *Task {
	if every <= 0 || every >= w.timeout {
		panic("rtos: pet period must be positive and below the watchdog timeout")
	}
	return k.Spawn(name, prio, func(tc *TaskCtx) {
		for {
			w.Pet()
			tc.Sleep(every)
		}
	})
}
