package testbed

import (
	"testing"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/nic"
	"repro/internal/sim"
)

func TestRigDefaults(t *testing.T) {
	r := New(Options{Seed: 1})
	if r.Host.NumCPU() != 2 || len(r.Segments) != 2 {
		t.Fatalf("defaults: cpus=%d segments=%d", r.Host.NumCPU(), len(r.Segments))
	}
}

func TestRigEndToEndStreaming(t *testing.T) {
	r := New(Options{Seed: 7})
	client := r.AddClient("player")
	_, ext := r.AddSchedulerNI("ni-sched", 1, nic.SchedulerConfig{
		EligibleEarly: 10 * sim.Millisecond,
	})
	diskCard, _ := r.AddDiskNI("ni-disk", 1, 0)

	if err := ext.AddStream(dwcs.StreamSpec{
		ID: 1, Name: "s1", Period: 40 * sim.Millisecond,
		Loss: fixed.New(1, 4), Lossy: true, BufCap: 32,
	}); err != nil {
		t.Fatal(err)
	}
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 40, FPS: 25, GOPPattern: "IBB", MeanFrame: 1500, Seed: 2})
	ext.SpawnPeerProducer(diskCard, clip, 1, "player", 40*sim.Millisecond, 1)
	r.Run(5 * sim.Second)
	if client.Received != 40 {
		t.Fatalf("client received %d of 40", client.Received)
	}
	client.BW.FlushUntil(5 * sim.Second)
	if client.BW.Series.Len() == 0 {
		t.Fatal("bandwidth meter idle")
	}
}

func TestRigStripedAndCachedDisks(t *testing.T) {
	r := New(Options{Seed: 3, Segments: 1})
	_, stripe := r.AddStripedDiskNI("ni-stripe", 0, 4, 16<<10)
	if stripe.Width() != 4 {
		t.Fatalf("stripe width = %d", stripe.Width())
	}
	card, _ := r.AddDiskNI("ni-cache", 0, 1<<20)
	if card.FS.Name() != "cache(dosFs)" {
		t.Fatalf("fs = %q", card.FS.Name())
	}
}

func TestRigValidation(t *testing.T) {
	r := New(Options{Seed: 1})
	r.AddClient("c")
	for _, f := range []func(){
		func() { r.AddClient("c") },
		func() { r.AddDiskNI("d", 9, 0) },
		func() {
			r.AddDiskNI("d", 0, 0)
			r.AddDiskNI("d", 0, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
