// Package testbed composes the paper's server topology — host CPUs, PCI
// segments, I2O cards, the Ethernet switch, and measuring clients — behind
// a small builder, so experiments, examples, and downstream users don't
// hand-wire the same Figure 1/Figure 5 plumbing every time.
package testbed

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/hostos"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options sizes a rig. Zero values get sensible defaults.
type Options struct {
	Seed          int64
	HostCPUs      int      // 0 = 2
	Quantum       sim.Time // 0 = 10 ms
	Segments      int      // PCI segments; 0 = 2
	SwitchLatency sim.Time // 0 = 90 µs store-and-forward
	BWWindow      sim.Time // client bandwidth-meter window; 0 = 1 s
}

// Rig is the composed testbed.
type Rig struct {
	Eng      *sim.Engine
	Host     *hostos.System
	Segments []*bus.Bus
	Switch   *netsim.Switch

	Cards   map[string]*nic.Card
	Clients map[string]*netsim.Client

	opts Options
}

// New builds an empty rig per opts.
func New(opts Options) *Rig {
	if opts.HostCPUs == 0 {
		opts.HostCPUs = 2
	}
	if opts.Quantum == 0 {
		opts.Quantum = 10 * sim.Millisecond
	}
	if opts.Segments == 0 {
		opts.Segments = 2
	}
	if opts.SwitchLatency == 0 {
		opts.SwitchLatency = 90 * sim.Microsecond
	}
	if opts.BWWindow == 0 {
		opts.BWWindow = sim.Second
	}
	eng := sim.NewEngine(opts.Seed)
	r := &Rig{
		Eng:     eng,
		Host:    hostos.New(eng, opts.HostCPUs, opts.Quantum),
		Switch:  netsim.NewSwitch(eng, "sw0", opts.SwitchLatency),
		Cards:   make(map[string]*nic.Card),
		Clients: make(map[string]*netsim.Client),
		opts:    opts,
	}
	for i := 0; i < opts.Segments; i++ {
		r.Segments = append(r.Segments, bus.New(eng, bus.PCI(fmt.Sprintf("pci%d", i))))
	}
	return r
}

// AddClient attaches a measuring client (with a bandwidth meter) to the
// switch under its own address.
func (r *Rig) AddClient(name string) *netsim.Client {
	if _, dup := r.Clients[name]; dup {
		panic("testbed: duplicate client " + name)
	}
	c := netsim.NewClient(r.Eng, name)
	c.BW = stats.NewBandwidthMeter(name, r.opts.BWWindow)
	r.Switch.Attach(name, netsim.Fast100(r.Eng, "sw-"+name, c))
	r.Clients[name] = c
	return c
}

// AddSchedulerNI places a dedicated scheduler card (cache enabled, no disk)
// on segment seg, wired to the switch, with the media-scheduler extension
// loaded.
func (r *Rig) AddSchedulerNI(name string, seg int, cfg nic.SchedulerConfig) (*nic.Card, *nic.SchedulerExt) {
	card := r.addCard(name, seg, true)
	card.ConnectEthernet(netsim.Fast100(r.Eng, name+"-eth", r.Switch))
	ext, err := card.LoadScheduler(cfg)
	if err != nil {
		panic(err)
	}
	return card, ext
}

// AddDiskNI places a disk-attached producer card on segment seg. cacheBytes
// > 0 fronts the filesystem with a media cache of that budget.
func (r *Rig) AddDiskNI(name string, seg int, cacheBytes int64) (*nic.Card, *disk.Disk) {
	card := r.addCard(name, seg, false)
	d := disk.New(r.Eng, disk.DefaultSCSI(name+"-disk"))
	var fs disk.FS = disk.NewDOSFS(d)
	if cacheBytes > 0 {
		fs = cache.New(r.Eng, fs, name, cacheBytes, 0)
	}
	card.AttachDisk(d, fs)
	return card, d
}

// AddStripedDiskNI places a producer card over a stripe of `width` spindles.
func (r *Rig) AddStripedDiskNI(name string, seg, width int, unit int64) (*nic.Card, *disk.Stripe) {
	card := r.addCard(name, seg, false)
	var spindles []*disk.Disk
	for i := 0; i < width; i++ {
		spindles = append(spindles, disk.New(r.Eng, disk.DefaultSCSI(fmt.Sprintf("%s-sp%d", name, i))))
	}
	stripe := disk.NewStripe(spindles, unit)
	card.AttachDisk(spindles[0], &disk.StripedFS{Stripe: stripe})
	return card, stripe
}

func (r *Rig) addCard(name string, seg int, cacheOn bool) *nic.Card {
	if _, dup := r.Cards[name]; dup {
		panic("testbed: duplicate card " + name)
	}
	if seg < 0 || seg >= len(r.Segments) {
		panic(fmt.Sprintf("testbed: no segment %d", seg))
	}
	card := nic.New(r.Eng, nic.Config{Name: name, PCI: r.Segments[seg], CacheOn: cacheOn})
	r.Cards[name] = card
	return card
}

// Run advances the rig to t.
func (r *Rig) Run(t sim.Time) { r.Eng.RunUntil(t) }
