package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// runPartition drives a fixed scenario: the data link is dark from t=0 to
// 500ms and 8 packets are queued into the outage. The RTO backoff doubles
// toward its ceiling, leaving a timer armed far past the restore instant.
// With restore=true the sender is told about the repair via LinkRestored;
// with restore=false it only sees the link come back (the pre-fix behavior).
// Returns when the transfer fully drained.
func runPartition(t *testing.T, restore bool) (doneAt sim.Time, snd *Sender) {
	t.Helper()
	p := newPipe(t, 4, 10*sim.Millisecond)
	p.data.SetDown(true)
	p.eng.At(500*sim.Millisecond, func() {
		p.data.SetDown(false)
		if restore {
			p.snd.LinkRestored()
		}
	})
	p.snd.OnAllAcked = func() { doneAt = p.eng.Now() }
	p.sendN(8)
	p.eng.Run()
	if len(p.received) != 8 || !inOrder(p.received) {
		t.Fatalf("received %d, in-order=%v", len(p.received), inOrder(p.received))
	}
	return doneAt, p.snd
}

// TestLinkRestoredClampsStaleTimer pins the stale-timer bug and its fix.
// During a 500ms partition the backoff schedule arms retransmission timers at
// 10, 30, 70, 150, 310, then 630ms — so a sender that merely watches its
// timer sits idle for 130ms after the link is already good. LinkRestored
// clamps: the probe goes out at the repair instant and go-back-N then
// recovers one lost in-flight packet per base RTO — seven more 10ms cycles —
// so the whole transfer drains before the stale timer would have fired at
// all.
func TestLinkRestoredClampsStaleTimer(t *testing.T) {
	stale, _ := runPartition(t, false)
	if stale < 630*sim.Millisecond {
		t.Fatalf("control drained at %v; expected the stale 630ms timer to gate recovery", stale)
	}
	fixed, snd := runPartition(t, true)
	if fixed < 500*sim.Millisecond || fixed > 575*sim.Millisecond {
		t.Fatalf("with LinkRestored drained at %v, want 500ms repair + ≤7 base-RTO recovery cycles", fixed)
	}
	if got := snd.RTO(); got != 10*sim.Millisecond {
		t.Fatalf("post-restore RTO = %v, want re-seeded base 10ms", got)
	}
}

// LinkRestored with nothing in flight must not invent traffic or arm timers.
func TestLinkRestoredIdleIsNoOp(t *testing.T) {
	eng := sim.NewEngine(5)
	l := netsim.Fast100(eng, "x", nil)
	s := NewSender(eng, l, 4, 10*sim.Millisecond)
	s.LinkRestored()
	eng.Run()
	if s.Sent != 0 || s.Retransmits != 0 {
		t.Fatalf("idle LinkRestored transmitted: sent=%d retransmits=%d", s.Sent, s.Retransmits)
	}
}
