package transport

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// armLinkFaults wires a chaos plan's LossBurst/LinkDown events onto the
// pipe's data link — the same injector shape the experiments use.
func armLinkFaults(t *testing.T, p *pipe, plan *faults.Plan) {
	t.Helper()
	err := plan.Arm(p.eng, faults.InjectorFuncs{
		OnInject: func(e faults.Event) {
			switch e.Kind {
			case faults.LossBurst:
				p.data.DropEvery = e.Factor
			case faults.LinkDown:
				p.data.SetDown(true)
			}
		},
		OnRecover: func(e faults.Event) {
			switch e.Kind {
			case faults.LossBurst:
				p.data.DropEvery = 0
			case faults.LinkDown:
				p.data.SetDown(false)
			}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSustainedLossBurstDrainsWithBoundedRetransmits: go-back-N rides out
// a drop-every-2 window injected mid-transfer; everything is delivered in
// order, OnAllAcked fires, and retransmits stay bounded.
func TestSustainedLossBurstDrainsWithBoundedRetransmits(t *testing.T) {
	p := newPipe(t, 8, 20*sim.Millisecond)
	armLinkFaults(t, p, &faults.Plan{Events: []faults.Event{
		{At: sim.Millisecond, Duration: 400 * sim.Millisecond,
			Kind: faults.LossBurst, Target: "data", Factor: 2},
	}})
	drained := false
	p.snd.OnAllAcked = func() { drained = true }
	p.sendN(50)
	p.eng.Run()
	if len(p.received) != 50 || !inOrder(p.received) {
		t.Fatalf("received %d, in-order=%v", len(p.received), inOrder(p.received))
	}
	if !drained {
		t.Fatal("OnAllAcked never fired")
	}
	if p.snd.Retransmits == 0 {
		t.Fatal("a drop-every-2 burst caused no retransmits")
	}
	// Every lost packet needs roughly one go-back-N recovery cycle; far
	// more than that is a storm.
	if p.snd.Retransmits > 100 {
		t.Fatalf("retransmits = %d for 50 packets, storm", p.snd.Retransmits)
	}
}

// TestLinkOutageBackoffPreventsStorm: a 2 s hard outage against a 10 ms
// RTO. Without exponential backoff the sender would fire ~200 retransmits
// into the dead link; with it the probe count is logarithmic and the
// transfer still completes after the link returns.
func TestLinkOutageBackoffPreventsStorm(t *testing.T) {
	p := newPipe(t, 4, 10*sim.Millisecond)
	armLinkFaults(t, p, &faults.Plan{Events: []faults.Event{
		{At: 5 * sim.Millisecond, Duration: 2 * sim.Second,
			Kind: faults.LinkDown, Target: "data"},
	}})
	drained := false
	p.snd.OnAllAcked = func() { drained = true }
	p.sendN(10)
	p.eng.Run()
	if len(p.received) != 10 || !inOrder(p.received) {
		t.Fatalf("received %d, in-order=%v", len(p.received), inOrder(p.received))
	}
	if !drained {
		t.Fatal("transfer never drained after the outage")
	}
	if p.snd.Retransmits > 15 {
		t.Fatalf("retransmits = %d across a 2 s outage, want logarithmic", p.snd.Retransmits)
	}
	if p.snd.RTO() != 10*sim.Millisecond {
		t.Fatalf("RTO = %v after recovery, want backoff reset", p.snd.RTO())
	}
}
