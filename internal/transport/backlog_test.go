package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// deadReceiverSender returns a sender whose data link delivers into a void —
// no receiver, no ACKs — so the unsent backlog can only grow.
func deadReceiverSender(window int) (*sim.Engine, *Sender) {
	eng := sim.NewEngine(3)
	void := netsim.PortFunc(func(*netsim.Packet) {})
	data := netsim.Fast100(eng, "data", void)
	return eng, NewSender(eng, data, window, 50*sim.Millisecond)
}

func TestBacklogCapRefusesSlowReceiverOverflow(t *testing.T) {
	eng, snd := deadReceiverSender(4)
	snd.MaxBacklog = 8
	accepted := 0
	for i := 0; i < 100; i++ {
		if snd.Send(&netsim.Packet{Dst: "rcv", Bytes: 1000}) {
			accepted++
		}
	}
	// The window absorbs 4 in flight, the backlog 8 more; the rest refused.
	if accepted != 12 {
		t.Fatalf("accepted %d of 100, want 12 (window 4 + backlog 8)", accepted)
	}
	if snd.BacklogDropped != 88 {
		t.Fatalf("BacklogDropped = %d, want 88", snd.BacklogDropped)
	}
	if snd.Outstanding() != 12 {
		t.Fatalf("outstanding = %d, want 12", snd.Outstanding())
	}
	eng.RunUntil(sim.Second)
	// Refused sends never consumed a sequence number: the accepted stream is
	// still gapless 0..11.
	for i, p := range append(append([]*netsim.Packet{}, snd.inFlit...), snd.queue...) {
		if p.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d; refused sends left a gap", i, p.Seq)
		}
	}
}

func TestBacklogUnlimitedByDefault(t *testing.T) {
	_, snd := deadReceiverSender(4)
	for i := 0; i < 1000; i++ {
		if !snd.Send(&netsim.Packet{Dst: "rcv", Bytes: 1000}) {
			t.Fatalf("send %d refused with no backlog cap", i)
		}
	}
	if snd.BacklogDropped != 0 || snd.Outstanding() != 1000 {
		t.Fatalf("dropped=%d outstanding=%d, want 0/1000", snd.BacklogDropped, snd.Outstanding())
	}
}

func TestBacklogDrainsAfterReceiverRevives(t *testing.T) {
	// A live pipe with a backlog cap: everything accepted below the cap is
	// still delivered reliably and in order.
	p := newPipe(t, 4, 50*sim.Millisecond)
	p.snd.MaxBacklog = 8
	for i := 0; i < 12; i++ {
		if !p.snd.Send(&netsim.Packet{Dst: "rcv", Bytes: 1000}) {
			t.Fatalf("send %d refused below the cap", i)
		}
	}
	p.eng.Run()
	if len(p.received) != 12 || !inOrder(p.received) {
		t.Fatalf("received %d in-order=%v, want 12 in order", len(p.received), inOrder(p.received))
	}
}
