package transport

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// pipe builds sender → data link → receiver → ack link → sender, returning
// the delivered-sequence sink and the two links.
type pipe struct {
	eng      *sim.Engine
	snd      *Sender
	rcv      *Receiver
	data     *netsim.Link
	ack      *netsim.Link
	received []int64
}

func newPipe(t *testing.T, window int, rto sim.Time) *pipe {
	if t != nil {
		t.Helper()
	}
	p := &pipe{eng: sim.NewEngine(3)}
	sink := netsim.PortFunc(func(pkt *netsim.Packet) {
		p.received = append(p.received, pkt.Seq)
	})
	// Build the loop: need the sender before the ack link's destination, so
	// wire via indirection.
	var snd *Sender
	ackIn := netsim.PortFunc(func(pkt *netsim.Packet) { snd.Deliver(pkt) })
	p.ack = netsim.Fast100(p.eng, "ack", ackIn)
	p.rcv = NewReceiver(p.eng, sink, p.ack, "sender")
	p.data = netsim.Fast100(p.eng, "data", p.rcv)
	snd = NewSender(p.eng, p.data, window, rto)
	p.snd = snd
	return p
}

func (p *pipe) sendN(n int) {
	for i := 0; i < n; i++ {
		p.snd.Send(&netsim.Packet{Dst: "rcv", Bytes: 1000})
	}
}

func inOrder(seqs []int64) bool {
	for i, s := range seqs {
		if s != int64(i) {
			return false
		}
	}
	return true
}

func TestReliableDeliveryCleanLink(t *testing.T) {
	p := newPipe(t, 8, 50*sim.Millisecond)
	p.sendN(50)
	p.eng.Run()
	if len(p.received) != 50 || !inOrder(p.received) {
		t.Fatalf("received %d in-order=%v", len(p.received), inOrder(p.received))
	}
	if p.snd.Retransmits != 0 {
		t.Fatalf("retransmits = %d on a clean link", p.snd.Retransmits)
	}
	if p.snd.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.snd.Outstanding())
	}
}

func TestRecoversFromDataLoss(t *testing.T) {
	p := newPipe(t, 8, 50*sim.Millisecond)
	p.data.DropEvery = 7
	p.sendN(40)
	p.eng.Run()
	if len(p.received) != 40 || !inOrder(p.received) {
		t.Fatalf("received %d, in-order=%v", len(p.received), inOrder(p.received))
	}
	if p.snd.Retransmits == 0 {
		t.Fatal("expected retransmissions on a lossy link")
	}
}

func TestRecoversFromAckLoss(t *testing.T) {
	p := newPipe(t, 4, 50*sim.Millisecond)
	p.ack.DropEvery = 3
	p.sendN(30)
	p.eng.Run()
	if len(p.received) != 30 || !inOrder(p.received) {
		t.Fatalf("received %d, in-order=%v", len(p.received), inOrder(p.received))
	}
	// ACK loss costs retransmissions but receivers discard the duplicates.
	if p.rcv.Duplicates == 0 && p.snd.Retransmits == 0 {
		t.Fatal("expected duplicate handling under ack loss")
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	p := newPipe(t, 4, sim.Second)
	p.sendN(20)
	// Before anything is ACKed, at most 4 first-transmissions have left.
	if p.snd.Sent != 4 {
		t.Fatalf("sent = %d before ACKs, want window of 4", p.snd.Sent)
	}
	p.eng.Run()
	if len(p.received) != 20 {
		t.Fatalf("received %d", len(p.received))
	}
}

func TestOnAllAckedFires(t *testing.T) {
	p := newPipe(t, 8, 50*sim.Millisecond)
	fired := 0
	p.snd.OnAllAcked = func() { fired++ }
	p.sendN(10)
	p.eng.Run()
	if fired == 0 {
		t.Fatal("OnAllAcked never fired")
	}
	if p.snd.Outstanding() != 0 {
		t.Fatal("window not drained")
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	l := netsim.Fast100(eng, "x", nil)
	for _, f := range []func(){
		func() { NewSender(eng, l, 0, sim.Second) },
		func() { NewSender(eng, l, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: any deterministic loss pattern on both links still yields
// complete, in-order, duplicate-free delivery.
func TestReliabilityProperty(t *testing.T) {
	f := func(dataLoss, ackLoss uint8, n uint8) bool {
		count := int(n)%40 + 1
		p := newPipe(nil, 6, 40*sim.Millisecond)
		if dataLoss%5 > 0 {
			p.data.DropEvery = int64(dataLoss%5) + 1
		}
		if ackLoss%5 > 0 {
			p.ack.DropEvery = int64(ackLoss%5) + 1
		}
		p.sendN(count)
		p.eng.Run()
		return len(p.received) == count && inOrder(p.received)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
