// Package transport is a reliable transport engine of the kind the I2O
// consortium moved onto intelligent NIs ("off-loading TCP/IP protocol
// processing to the NI from the host", §5): cumulative ACKs, a fixed send
// window, and go-back-N retransmission, running entirely against the
// simulated network.
//
// DWCS itself tolerates loss by window constraints; transport is for the
// *lossless* control and media paths (stream setup, stored-file transfer,
// lossless streams over lossy links). A Sender wraps an outbound
// netsim.Link; the Receiver delivers in-order packets upstream and returns
// cumulative ACKs on a reverse link.
package transport

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ackBytes is the wire size of an ACK segment.
const ackBytes = 40

// Sender is the transmit side: it owns transport sequencing for the frames
// handed to Send and guarantees in-order delivery to the remote Receiver.
type Sender struct {
	eng    *sim.Engine
	out    *netsim.Link
	window int64
	rto    sim.Time

	nextSeq int64            // next transport sequence to assign
	base    int64            // lowest unacked sequence
	sentHi  int64            // highest sequence ever transmitted
	queue   []*netsim.Packet // unsent backlog (seq assigned)
	inFlit  []*netsim.Packet // sent, unacked (base..)

	timer   sim.Event
	strikes uint // consecutive timeouts without an ACK advance

	// MaxBacklog caps the unsent queue: a receiver that stops ACKing (slow
	// or dead client) otherwise grows the backlog without bound while the
	// producer keeps calling Send. Zero keeps the historical unlimited
	// behaviour; overflowing packets are counted in BacklogDropped and never
	// consume a sequence number, so the reliable stream stays gapless.
	MaxBacklog     int
	BacklogDropped int64

	// Stats.
	Sent        int64 // first transmissions
	Retransmits int64
	Acked       int64

	// OnAllAcked, if set, fires whenever the in-flight window drains.
	OnAllAcked func()
}

// NewSender returns a sender with the given window (packets) and
// retransmission timeout.
func NewSender(eng *sim.Engine, out *netsim.Link, window int, rto sim.Time) *Sender {
	if window <= 0 || rto <= 0 {
		panic(fmt.Sprintf("transport: bad window %d / rto %v", window, rto))
	}
	return &Sender{eng: eng, out: out, window: int64(window), rto: rto}
}

// Instrument exports the sender's reliability counters under the transport
// telemetry component.
func (s *Sender) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("transport", "segments_sent_total",
		"first transmissions by reliable senders", func() int64 { return s.Sent })
	reg.CounterFunc("transport", "retransmits_total",
		"go-back-N retransmissions", func() int64 { return s.Retransmits })
	reg.CounterFunc("transport", "acks_total",
		"segments cumulatively acknowledged", func() int64 { return s.Acked })
	reg.CounterFunc("transport", "backlog_dropped_total",
		"sends refused at the backlog cap (slow receiver)", func() int64 { return s.BacklogDropped })
	reg.GaugeFunc("transport", "outstanding",
		"unacked segments (sent or queued) at scrape time",
		func() float64 { return float64(s.Outstanding()) })
	reg.GaugeFunc("transport", "rto_ms",
		"current (backed-off) retransmission timeout in milliseconds",
		func() float64 { return float64(s.RTO().Milliseconds()) })
}

// Send queues one packet for reliable, in-order delivery and reports whether
// it was accepted. The packet's Seq is overwritten with the transport
// sequence number. With MaxBacklog set, a Send arriving while the unsent
// queue is at the cap is refused (and counted) instead of queued.
func (s *Sender) Send(p *netsim.Packet) bool {
	if s.MaxBacklog > 0 && len(s.queue) >= s.MaxBacklog {
		s.BacklogDropped++
		return false
	}
	p.Seq = s.nextSeq
	s.nextSeq++
	s.queue = append(s.queue, p)
	s.pump()
	return true
}

// Outstanding reports unacked packets (sent or queued).
func (s *Sender) Outstanding() int { return len(s.queue) + len(s.inFlit) }

// pump transmits while the window has room.
func (s *Sender) pump() {
	for len(s.queue) > 0 && int64(len(s.inFlit)) < s.window {
		p := s.queue[0]
		s.queue = s.queue[1:]
		s.inFlit = append(s.inFlit, p)
		s.Sent++
		s.transmit(p)
	}
	s.arm()
}

func (s *Sender) transmit(p *netsim.Packet) {
	cp := *p // links mutate Sent timestamps; keep retransmission clean
	s.out.Send(&cp, nil)
	if p.Seq > s.sentHi {
		s.sentHi = p.Seq
	}
}

// rtoBackoffCap bounds the exponential RTO growth at 2^cap × rto, so the
// sender keeps probing a dead path at a low steady rate instead of going
// fully quiet.
const rtoBackoffCap = 10

// RTO returns the current (backed-off) retransmission timeout.
func (s *Sender) RTO() sim.Time { return s.rto << min(s.strikes, rtoBackoffCap) }

func (s *Sender) arm() {
	if len(s.inFlit) == 0 {
		s.timer.Cancel()
		return
	}
	if s.timer.Scheduled() {
		return
	}
	s.timer = s.eng.After(s.RTO(), s.timeout)
}

func (s *Sender) timeout() {
	// Retransmit only the base (lowest unacked) packet. Replaying the whole
	// window would re-present an identical packet pattern to the wire every
	// cycle, which a deterministic periodic-loss process can drop the same
	// way forever; advancing one packet per timeout shifts the pattern and
	// guarantees progress under any every-k loss.
	//
	// Consecutive timeouts double the RTO (up to rtoBackoffCap): during a
	// link outage the probe rate decays geometrically rather than hammering
	// the dead path at a fixed rate — retransmits stay logarithmic in the
	// outage length. Any ACK advance resets the backoff.
	if len(s.inFlit) > 0 {
		s.Retransmits++
		if s.strikes < rtoBackoffCap {
			s.strikes++
		}
		s.transmit(s.inFlit[0])
	}
	s.arm()
}

// LinkRestored tells the sender its outbound path just came back (a partition
// window closed, a dark link relit). During the outage the backoff doubled the
// RTO toward its 2^rtoBackoffCap ceiling and left that huge timer armed — so
// without this hook a restored link sits idle until the stale timer finally
// fires, even though the path has been good for seconds. Clamp: drop the
// backoff, cancel the stale timer, probe the base packet immediately, and
// re-arm at the base RTO. A no-op when nothing is in flight.
func (s *Sender) LinkRestored() {
	s.strikes = 0
	s.timer.Cancel()
	if len(s.inFlit) > 0 {
		s.Retransmits++
		s.transmit(s.inFlit[0])
	}
	s.arm()
}

// Deliver implements netsim.Port for the reverse (ACK) path: ack.Seq is the
// cumulative highest sequence received in order.
func (s *Sender) Deliver(ack *netsim.Packet) {
	cum := ack.Seq
	advanced := false
	for len(s.inFlit) > 0 && s.inFlit[0].Seq <= cum {
		s.inFlit = s.inFlit[1:]
		s.base = cum + 1
		s.Acked++
		advanced = true
	}
	if advanced {
		// Restart the timer for the remaining window; the path is alive
		// again, so drop any RTO backoff.
		s.strikes = 0
		s.timer.Cancel()
		s.pump()
		if len(s.inFlit) == 0 && len(s.queue) == 0 && s.OnAllAcked != nil {
			s.OnAllAcked()
		}
	}
}

// Receiver is the remote side: in-order delivery upstream plus cumulative
// ACK generation.
type Receiver struct {
	eng      *sim.Engine
	up       netsim.Port
	ackOut   *netsim.Link
	ackAddr  string
	expected int64

	// Stats.
	Delivered  int64
	OutOfOrder int64 // discarded (go-back-N keeps no reorder buffer)
	Duplicates int64
}

// NewReceiver returns a receiver forwarding in-order packets to up and
// ACKing on ackOut toward ackAddr.
func NewReceiver(eng *sim.Engine, up netsim.Port, ackOut *netsim.Link, ackAddr string) *Receiver {
	return &Receiver{eng: eng, up: up, ackOut: ackOut, ackAddr: ackAddr}
}

// Instrument exports the receiver's delivery counters under the transport
// telemetry component.
func (r *Receiver) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("transport", "delivered_total",
		"in-order segments delivered upstream", func() int64 { return r.Delivered })
	reg.CounterFunc("transport", "duplicates_total",
		"duplicate segments discarded", func() int64 { return r.Duplicates })
	reg.CounterFunc("transport", "out_of_order_total",
		"out-of-order segments discarded (go-back-N)", func() int64 { return r.OutOfOrder })
}

// Deliver implements netsim.Port for the data path.
func (r *Receiver) Deliver(p *netsim.Packet) {
	switch {
	case p.Seq == r.expected:
		r.expected++
		r.Delivered++
		if r.up != nil {
			r.up.Deliver(p)
		}
	case p.Seq < r.expected:
		r.Duplicates++
	default:
		r.OutOfOrder++
	}
	// Cumulative ACK for everything received in order so far (also re-ACKs
	// on duplicates/gaps, which is what unblocks the sender after loss).
	if r.expected > 0 {
		r.ackOut.Send(&netsim.Packet{
			Dst:      r.ackAddr,
			Seq:      r.expected - 1,
			Bytes:    ackBytes,
			StreamID: -1,
		}, nil)
	}
}
