package experiments

import (
	"repro/internal/cpu"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/nic"
	"repro/internal/sim"
)

// MicrobenchStreams is how many concurrent streams the Table 1–3 workload
// is split across.
const MicrobenchStreams = 4

// Microbench holds one microbenchmark configuration's measurements
// (§4.2: 151 frames pre-loaded into the circular buffers, then scheduled
// flat-out; the "w/o Scheduler" pass re-routes execution straight to the
// dispatch point).
type Microbench struct {
	Arith   cpu.Arithmetic
	CacheOn bool
	Store   nic.StoreKind

	Frames       int
	TotalSched   sim.Time
	AvgSched     sim.Time
	TotalNoSched sim.Time
	AvgNoSched   sim.Time
}

// Overhead returns the per-frame scheduling overhead — the difference
// between the scheduled and dispatch-only per-frame times, the number the
// paper headlines as ≈65 µs.
func (m Microbench) Overhead() sim.Time { return m.AvgSched - m.AvgNoSched }

// microStreamSpecs returns the stream set the clip is split across.
func microStreamSpecs(perStream int) []dwcs.StreamSpec {
	losses := []fixed.Frac{fixed.New(1, 2), fixed.New(1, 4), fixed.New(2, 8), fixed.New(3, 10)}
	specs := make([]dwcs.StreamSpec, MicrobenchStreams)
	for i := range specs {
		specs[i] = dwcs.StreamSpec{
			ID:     i,
			Name:   "micro",
			Period: sim.Second, // far future: no misses during the benchmark
			Loss:   losses[i%len(losses)],
			Lossy:  true,
			BufCap: perStream,
		}
	}
	return specs
}

// RunMicrobench measures one configuration of the Table 1–3 benchmark.
func RunMicrobench(arith cpu.Arithmetic, cacheOn bool, store nic.StoreKind) Microbench {
	clip := mpeg.GenerateDefault()
	perStream := (len(clip.Frames) + MicrobenchStreams - 1) / MicrobenchStreams

	run := func(noSched bool) (total sim.Time, frames int) {
		eng := sim.NewEngine(1)
		card := nic.New(eng, nic.Config{Name: "bench", CacheOn: cacheOn, Arith: arith})
		sched := card.NewBenchScheduler(nic.SchedulerConfig{
			Store:          store,
			WorkConserving: true,
		})
		for _, spec := range microStreamSpecs(perStream) {
			if err := sched.AddStream(spec); err != nil {
				panic(err)
			}
		}
		for i, f := range clip.Frames {
			if err := sched.Enqueue(i%MicrobenchStreams, dwcs.Packet{Bytes: f.Size, Offset: f.Offset}); err != nil {
				panic(err)
			}
		}
		card.Meter.Reset()
		for {
			if noSched {
				if sched.DequeueFCFS() == nil {
					break
				}
			} else {
				d := sched.Schedule()
				if d.Packet == nil {
					break
				}
			}
			card.ChargeDispatch()
			frames++
		}
		return card.Meter.Elapsed(), frames
	}

	m := Microbench{Arith: arith, CacheOn: cacheOn, Store: store}
	var n int
	m.TotalSched, n = run(false)
	m.Frames = n
	m.AvgSched = m.TotalSched / sim.Time(n)
	m.TotalNoSched, _ = run(true)
	m.AvgNoSched = m.TotalNoSched / sim.Time(n)
	return m
}

// paper values for Tables 1–3 (µs).
type microPaper struct {
	total, avg, totalNo, avgNo float64
}

var (
	t1SoftFP = microPaper{19580.88, 129.67, 5210.88, 34.6}
	t1Fixed  = microPaper{16425.36, 108.48, 4583.28, 30.35}
	t2SoftFP = microPaper{17398.56, 115.20, 4776.48, 31.40}
	t2Fixed  = microPaper{14295.60, 94.60, 4195.68, 27.78}
	t3Fixed  = microPaper{14569.68, 96.48, 4199.04, 27.80}
)

func microResult(id, title string, cfgs []Microbench, papers []microPaper, labels []string) *Result {
	res := &Result{ID: id, Title: title}
	for i, m := range cfgs {
		p := papers[i]
		l := labels[i]
		res.Add("Total Sched time ("+l+")", "µs", p.total, m.TotalSched.Microseconds())
		res.Add("Avg frame Sched time ("+l+")", "µs", p.avg, m.AvgSched.Microseconds())
		res.Add("Total time w/o Scheduler ("+l+")", "µs", p.totalNo, m.TotalNoSched.Microseconds())
		res.Add("Avg frame time w/o Sched ("+l+")", "µs", p.avgNo, m.AvgNoSched.Microseconds())
	}
	return res
}

// RunTable1 regenerates Table 1: scheduler microbenchmarks with the data
// cache disabled, software-FP vs fixed-point builds.
func RunTable1() *Result {
	soft := RunMicrobench(cpu.SoftFP, false, nic.StoreDRAM)
	fix := RunMicrobench(cpu.FixedPoint, false, nic.StoreDRAM)
	res := microResult("Table 1", "Scheduler microbenchmarks (data cache disabled)",
		[]Microbench{soft, fix}, []microPaper{t1SoftFP, t1Fixed}, []string{"software FP", "fixed point"})
	res.Note("fixed-point saves %.1f µs per decision (paper ≈21 µs)",
		(soft.AvgSched - fix.AvgSched).Microseconds())
	return res
}

// RunTable2 regenerates Table 2: the same with the data cache enabled.
func RunTable2() *Result {
	soft := RunMicrobench(cpu.SoftFP, true, nic.StoreDRAM)
	fix := RunMicrobench(cpu.FixedPoint, true, nic.StoreDRAM)
	res := microResult("Table 2", "Scheduler microbenchmarks (data cache enabled)",
		[]Microbench{soft, fix}, []microPaper{t2SoftFP, t2Fixed}, []string{"software FP", "fixed point"})
	res.Note("scheduler overhead (avg sched − avg w/o) = %.2f µs (paper ≈66.82 µs)",
		fix.Overhead().Microseconds())
	softOff := RunMicrobench(cpu.SoftFP, false, nic.StoreDRAM)
	fixOff := RunMicrobench(cpu.FixedPoint, false, nic.StoreDRAM)
	res.Note("data cache saves %.2f µs (soft FP) and %.2f µs (fixed) per frame (paper ≈14.47/13.88 µs)",
		(softOff.AvgSched - soft.AvgSched).Microseconds(),
		(fixOff.AvgSched - fix.AvgSched).Microseconds())
	return res
}

// RunTable3 regenerates Table 3: descriptor rings in the memory-mapped
// hardware-queue register file, fixed point, cache enabled.
func RunTable3() *Result {
	hw := RunMicrobench(cpu.FixedPoint, true, nic.StoreHardwareQueue)
	res := microResult("Table 3", "Scheduler microbenchmarks (hardware queues, cache enabled)",
		[]Microbench{hw}, []microPaper{t3Fixed}, []string{"fixed point"})
	dram := RunMicrobench(cpu.FixedPoint, true, nic.StoreDRAM)
	res.Note("register-file vs pinned-DRAM avg sched: %.2f vs %.2f µs — comparable, as in the paper",
		hw.AvgSched.Microseconds(), dram.AvgSched.Microseconds())
	return res
}

// RunHeadline regenerates the paper's headline comparison: host-based DWCS
// on a quiescent 300 MHz UltraSPARC (≈50 µs) vs the NI-based scheduler on
// the 66 MHz i960 RD (≈65 µs).
func RunHeadline() *Result {
	ni := RunMicrobench(cpu.FixedPoint, true, nic.StoreDRAM)

	// Host variant: same scheduler code metered on the UltraSPARC model
	// with native FP and host-process overheads.
	clip := mpeg.GenerateDefault()
	perStream := (len(clip.Frames) + MicrobenchStreams - 1) / MicrobenchStreams
	meter := cpu.NewMeter(cpu.UltraSparc300())
	meter.Arith = cpu.NativeFP
	sched := dwcs.New(dwcs.Config{
		WorkConserving:   true,
		Meter:            meter,
		DecisionOverhead: 14600, // shared-memory sync + gettimeofday syscalls
	})
	for _, spec := range microStreamSpecs(perStream) {
		if err := sched.AddStream(spec); err != nil {
			panic(err)
		}
	}
	for i, f := range clip.Frames {
		if err := sched.Enqueue(i%MicrobenchStreams, dwcs.Packet{Bytes: f.Size}); err != nil {
			panic(err)
		}
	}
	meter.Reset()
	frames := 0
	for {
		if d := sched.Schedule(); d.Packet == nil {
			break
		}
		frames++
	}
	hostPerFrame := meter.Elapsed() / sim.Time(frames)

	res := &Result{ID: "Headline", Title: "Scheduling overhead: host UltraSPARC vs NI i960 RD"}
	res.Add("host DWCS overhead (300 MHz UltraSPARC)", "µs", 50, hostPerFrame.Microseconds())
	res.Add("NI DWCS overhead (66 MHz i960 RD)", "µs", 65, ni.Overhead().Microseconds())
	res.Note("comparable despite the i960 running at ~1/4 the clock (paper §4)")
	return res
}
