package experiments

import (
	"testing"

	"repro/internal/sim"
)

func TestFleetObsDeterminismCanary(t *testing.T) {
	if err := FleetObsDeterminism(FleetObsConfig{Workers: 4, Dur: 4 * sim.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetObsArtifacts(t *testing.T) {
	a := RunFleetObs(FleetObsConfig{Workers: 1, Dur: 4 * sim.Second})
	for name, s := range map[string]string{
		"rollup": a.Rollup, "timeline": a.Timeline, "topk": a.TopK,
		"scrape": a.ScrapeStats, "stitched": a.Stitched, "summary": a.Summary,
	} {
		if s == "" {
			t.Fatalf("empty %s artifact", name)
		}
	}
	if a.Samples == 0 || a.ObsBytes == 0 {
		t.Fatalf("scrape plane moved no data: %s", a.Summary)
	}
	if a.Breaches != 0 {
		t.Fatalf("scrape plane breached a budget: %s", a.Summary)
	}
	if a.Chaos.Recv == 0 {
		t.Fatalf("no media delivered: %s", a.Chaos.Summary)
	}
}
