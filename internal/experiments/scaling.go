package experiments

import (
	"fmt"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/nic"
	"repro/internal/sim"
)

// ScalingPoint is one stream-count measurement of the paper's future-work
// study ("Experimentation is underway for studying bandwidth allocations
// for a large number of streams", §6).
type ScalingPoint struct {
	Streams       int
	Selector      dwcs.SelectorKind
	CyclesPerDec  int64
	MicrosPerDec  float64 // at the i960 RD's 66 MHz
	DecisionsPerS float64 // sustainable decision rate on the NI
}

// RunStreamScaling measures per-decision scheduling cost on the i960 RD as
// the stream count grows, for both the embedded linear scan and the
// Figure 4(a) heap structure.
func RunStreamScaling(counts []int) ([]ScalingPoint, *Result) {
	res := &Result{
		ID:    "Scaling",
		Title: "Decision cost vs stream count (future-work study, §6)",
	}
	// Every (selector, count) cell is an independent simulation; measure
	// the whole matrix across the worker pool, then report in the fixed
	// selector-major order so the table is byte-identical to a
	// sequential sweep.
	type cell struct {
		sel dwcs.SelectorKind
		n   int
	}
	var cells []cell
	for _, sel := range []dwcs.SelectorKind{dwcs.Scan, dwcs.Heaps, dwcs.SortedList, dwcs.Calendar} {
		for _, n := range counts {
			cells = append(cells, cell{sel, n})
		}
	}
	jobs := make([]func() ScalingPoint, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func() ScalingPoint { return measureScaling(c.sel, c.n) }
	}
	points := Collect(jobs)
	for _, p := range points {
		res.Add(fmt.Sprintf("%s, %d streams", p.Selector, p.Streams), "µs/decision", 0, p.MicrosPerDec)
	}
	res.Note("the heap and calendar structures keep decision cost near-flat; the scan " +
		"(and the sorted list's shifts) grow with n — the scalability argument behind Figure 4(a)")
	return points, res
}

func measureScaling(sel dwcs.SelectorKind, streams int) ScalingPoint {
	eng := sim.NewEngine(1)
	card := nic.New(eng, nic.Config{Name: "scale", CacheOn: true})
	sched := card.NewBenchScheduler(nic.SchedulerConfig{
		Selector: sel,
		// The calendar queue requires the deadline-primary variant; use it
		// for every selector so the comparison is apples to apples.
		Precedence:     dwcs.EDFFirst,
		WorkConserving: true,
	})
	for s := 0; s < streams; s++ {
		if err := sched.AddStream(dwcs.StreamSpec{
			ID:     s,
			Period: sim.Second,
			Loss:   fixed.New(int64(s%3), int64(s%3)+2),
			Lossy:  true,
			BufCap: 8,
		}); err != nil {
			panic(err)
		}
	}
	perStream := 6
	for j := 0; j < streams*perStream; j++ {
		if err := sched.Enqueue(j%streams, dwcs.Packet{Bytes: 1000}); err != nil {
			panic(err)
		}
	}
	card.Meter.Reset()
	decisions := 0
	for sched.Schedule().Packet != nil {
		decisions++
	}
	cycles := card.Meter.Cycles() / int64(decisions)
	us := card.Meter.Model.Duration(cycles).Microseconds()
	return ScalingPoint{
		Streams:       streams,
		Selector:      sel,
		CyclesPerDec:  cycles,
		MicrosPerDec:  us,
		DecisionsPerS: 1e6 / us,
	}
}
