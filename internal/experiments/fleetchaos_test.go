package experiments

import (
	"strings"
	"testing"
)

func TestFleetChaosDeterminismCanary(t *testing.T) {
	if err := FleetChaosDeterminism(FleetChaosConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetChaosArtifacts(t *testing.T) {
	a := RunFleetChaos(FleetChaosConfig{Workers: 1})
	for name, s := range map[string]string{
		"plan": a.Plan, "summary": a.Summary, "table": a.Table, "pulse": a.Pulse,
		"miglog": a.MigLog, "recovery": a.Recovery, "violations": a.Violations,
		"csv": a.CSV,
	} {
		if s == "" {
			t.Fatalf("empty %s artifact", name)
		}
	}
	if a.Recv == 0 {
		t.Fatalf("no media delivered: %s", a.Summary)
	}
	if a.Live+a.Cold == 0 {
		t.Fatalf("chaos displaced no streams: %s", a.Summary)
	}
	if a.ViolOutside != 0 {
		t.Fatalf("violations outside outage windows: %s", a.Summary)
	}
}

func TestFleetChaosSweepShape(t *testing.T) {
	table := FleetChaosSweep(1)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 1+2*5 {
		t.Fatalf("sweep rows = %d, want header + 10:\n%s", len(lines)-1, table)
	}
	if !strings.Contains(table, "all-three") || !strings.Contains(table, "2crash+part") {
		t.Fatalf("missing severity rows:\n%s", table)
	}
}
