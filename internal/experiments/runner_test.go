package experiments

import (
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func TestRunnerRunsEveryJobOnce(t *testing.T) {
	const n = 100
	var counts [n]int32
	Runner{}.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestRunnerSequentialFallback(t *testing.T) {
	// Workers=1 must run jobs in order on the calling goroutine.
	var order []int
	Runner{Workers: 1}.Run(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCollectPreservesJobOrder(t *testing.T) {
	const n = 64
	jobs := make([]func() int, n)
	for i := range jobs {
		i := i
		jobs[i] = func() int { return i * i }
	}
	out := Collect(jobs)
	if len(out) != n {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunnerZeroAndNegativeCounts(t *testing.T) {
	ran := false
	Runner{}.Run(0, func(int) { ran = true })
	Runner{}.Run(-3, func(int) { ran = true })
	if ran {
		t.Fatal("job ran for n <= 0")
	}
	Parallel() // no-op, must not hang
}

// TestParallelFanOutDeterministic is the harness's core guarantee: fanning
// independent simulation runs across the pool yields the same results as a
// sequential loop, because each run owns a private Engine and RNG.
func TestParallelFanOutDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	dur := 10 * sim.Second
	run := func(workers int) []int64 {
		loads := []float64{0, 45, 60}
		jobs := make([]func() int64, len(loads))
		for i, pct := range loads {
			pct := pct
			jobs[i] = func() int64 {
				c := RunHostLoad(pct, dur)
				return c.Sent<<32 | c.Dropped
			}
		}
		out := make([]int64, len(jobs))
		Runner{Workers: workers}.Run(len(jobs), func(i int) { out[i] = jobs[i]() })
		return out
	}
	seq := run(1)
	par := run(0)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("run %d diverged: sequential %x vs parallel %x", i, seq[i], par[i])
		}
	}
}
