// Fleet experiment: the multi-card scaling scenario on the partitioned
// conservative engine (cluster.RunFleet), wrapped for the artifact writers
// and the CI determinism canary. The canary is the enforcement point of the
// tentpole contract: one fleet configuration is run monolithically (single
// shared Engine), partitioned with Workers=1, and partitioned with
// Workers=N, and every artifact must be byte-identical across all three.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// FleetConfig parameterizes the fleet experiment.
type FleetConfig struct {
	Cards          int      // card complexes; 0 = 8
	StreamsPerCard int      // streams sourced per card; 0 = 2
	Dur            sim.Time // run length; 0 = 2 s
	Workers        int      // partition worker pool; 0 = GOMAXPROCS
}

// FleetArtifacts is everything one fleet run exports. All four strings are
// part of the byte-identical determinism contract; Rounds is an
// engine-internal diagnostic and is not.
type FleetArtifacts struct {
	Summary string
	Table   string
	Pulse   string
	CSV     string

	Recv   int64
	Late   int64
	Rounds int64
}

// RunFleet executes the partitioned fleet run.
func RunFleet(cfg FleetConfig) *FleetArtifacts {
	r := cluster.RunFleet(cluster.FleetConfig{
		Cards: cfg.Cards, StreamsPerCard: cfg.StreamsPerCard,
		Dur: cfg.Dur, Workers: cfg.Workers,
	})
	return &FleetArtifacts{
		Summary: r.Summary, Table: r.Table, Pulse: r.Pulse, CSV: r.CSV,
		Recv: r.TotalRecv, Late: r.TotalLate, Rounds: r.Rounds,
	}
}

// FleetDeterminism runs cfg monolithically, partitioned sequentially, and
// partitioned with cfg.Workers, and returns an error naming the first
// artifact that differs. nil means the engine kept the byte-identical
// contract for this configuration.
func FleetDeterminism(cfg FleetConfig) error {
	base := cluster.FleetConfig{
		Cards: cfg.Cards, StreamsPerCard: cfg.StreamsPerCard, Dur: cfg.Dur,
	}
	run := func(workers int, mono bool) map[string]string {
		c := base
		c.Workers, c.Monolithic = workers, mono
		r := cluster.RunFleet(c)
		return map[string]string{
			"summary": r.Summary, "table": r.Table,
			"pulse": r.Pulse, "csv": r.CSV,
		}
	}
	ref := run(1, false)
	for name, variant := range map[string]map[string]string{
		"monolithic":                           run(0, true),
		fmt.Sprintf("workers=%d", cfg.Workers): run(cfg.Workers, false),
	} {
		for _, art := range []string{"summary", "table", "pulse", "csv"} {
			if variant[art] != ref[art] {
				return fmt.Errorf("fleet determinism: %s artifact %q diverged from sequential partitioned run", name, art)
			}
		}
	}
	return nil
}
