package experiments

import (
	"strings"
	"testing"

	"repro/internal/overload"
	"repro/internal/sim"
)

// overloadTestConfig keeps the sweep short for tests while still crossing the
// budget ceiling and the ladder's revoke rung in its heaviest cells.
var overloadTestConfig = OverloadConfig{Dur: 10 * sim.Second}

// TestOverloadDeterminism is the canary: the same sweep executed serially and
// on a 4-worker pool must produce byte-identical artifacts — the property the
// CI overload step enforces end to end through reprogen.
func TestOverloadDeterminism(t *testing.T) {
	serial := overloadTestConfig
	serial.Workers = 1
	parallel := overloadTestConfig
	parallel.Workers = 4
	a := RunOverload(serial)
	b := RunOverload(parallel)
	if a.Ladder != b.Ladder {
		t.Errorf("ladder summary differs between worker counts:\n%s\nvs\n%s", a.Ladder, b.Ladder)
	}
	if a.CSV != b.CSV {
		t.Error("grid CSV differs between worker counts")
	}
	if a.Summary != b.Summary {
		t.Error("summary differs between worker counts")
	}
	if a.Table.String() != b.Table.String() {
		t.Error("claim table differs between worker counts")
	}
}

// TestOverloadClaim asserts the claim-4 shape: the protected NI never
// breaches its budget and keeps accounted bytes bounded in every cell, while
// the host baseline's backlog grows far past the card's entire memory.
func TestOverloadClaim(t *testing.T) {
	a := RunOverload(overloadTestConfig)
	var worst *OverloadPoint
	for _, pt := range a.Points {
		if pt.NIBreaches != 0 {
			t.Errorf("cell %.0f%%/%dx: %d budget breaches", pt.Load, pt.Mult, pt.NIBreaches)
		}
		if pt.NIBudgetPeak > pt.NIBudgetSize {
			t.Errorf("cell %.0f%%/%dx: peak %d exceeds budget %d",
				pt.Load, pt.Mult, pt.NIBudgetPeak, pt.NIBudgetSize)
		}
		if worst == nil || pt.Load >= worst.Load && pt.Mult >= worst.Mult {
			worst = pt
		}
	}
	if worst.HostQueuedPeakBytes <= worst.NIBudgetSize {
		t.Errorf("host backlog %d did not outgrow the NI budget %d — no collapse to contrast",
			worst.HostQueuedPeakBytes, worst.NIBudgetSize)
	}
	if worst.NIQueuedPeakBytes >= worst.HostQueuedPeakBytes {
		t.Errorf("NI rings %d not smaller than host rings %d",
			worst.NIQueuedPeakBytes, worst.HostQueuedPeakBytes)
	}
}

// TestOverloadLadderEngagesUnderPressure asserts the graceful-degradation
// machinery actually exercises in the sweep: oversubscribed cells shed and
// climb the ladder, admissions are refused then readmitted, and the mem-leak
// cells reach revoke and reverse it.
func TestOverloadLadderEngagesUnderPressure(t *testing.T) {
	a := RunOverload(overloadTestConfig)
	var shed, rejects, retries, revoked, reinstated, leaked int64
	maxRung := overload.RungNone
	for _, pt := range a.Points {
		shed += pt.NIShedTolerant
		rejects += pt.NIRejects
		retries += pt.NIRetryAdmits
		revoked += pt.NIRevoked
		reinstated += pt.NIReinstated
		leaked += pt.NILeakReclaimed
		if pt.NIMaxRung > maxRung {
			maxRung = pt.NIMaxRung
		}
		if pt.Mult == 1 && pt.NIMaxRung != overload.RungNone {
			t.Errorf("cell %.0f%%/1x climbed to %v at service rate", pt.Load, pt.NIMaxRung)
		}
		if pt.Mult == 1 && pt.NILateAdmits != 4 {
			t.Errorf("cell %.0f%%/1x admitted %d late setups, want all 4", pt.Load, pt.NILateAdmits)
		}
	}
	if shed == 0 {
		t.Error("no frames shed within loss tolerance anywhere in the sweep")
	}
	if rejects == 0 {
		t.Error("no admission rejects anywhere in the sweep")
	}
	if retries == 0 {
		t.Error("no rejected setup was ever readmitted from the retry queue")
	}
	if maxRung != overload.RungRevoke {
		t.Errorf("max rung %v, want revoke (mem-leak cells)", maxRung)
	}
	if leaked == 0 {
		t.Error("mem-leak fault never pinned bytes")
	}
	if revoked == 0 || reinstated != revoked {
		t.Errorf("revoked %d reinstated %d, want equal and positive", revoked, reinstated)
	}
	if !strings.Contains(a.Summary, "budget breaches across all cells: 0") {
		t.Errorf("summary lost the zero-breach verdict:\n%s", a.Summary)
	}
}
