package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// parseSimTime reverses sim.Time's adaptive String rendering ("3.786s",
// "495.000ms", ...) for timeline assertions.
func parseSimTime(s string) (sim.Time, bool) {
	for _, u := range []struct {
		suffix string
		unit   sim.Time
	}{{"ms", sim.Millisecond}, {"µs", sim.Microsecond}, {"ns", sim.Nanosecond}, {"s", sim.Second}} {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
		if err != nil {
			return 0, false
		}
		return sim.Time(v * float64(u.unit)), true
	}
	return 0, false
}

// TestCtrlChaosAcceptance pins the controller-chaos scenario's safety and
// liveness properties on the default configuration: the standby detects the
// primary's death and takes over within two poll periods, no stream is ever
// attached on two live cards, the deposed leaders' stale commands are fenced
// (and logged), the journal traffic stays under the 2% overhead gate, and no
// loss-window violation lands outside the padded outage windows.
func TestCtrlChaosAcceptance(t *testing.T) {
	a := RunCtrlChaos(CtrlChaosConfig{Workers: 2})

	if a.Takeovers < 1 {
		t.Fatalf("no takeover happened:\n%s", a.HATimeline)
	}
	if a.DoublePlaced != 0 {
		t.Errorf("%d stream(s) double-placed — fencing failed:\n%s",
			a.DoublePlaced, a.HASummary)
	}
	if a.FencedRejects < 1 {
		t.Errorf("no stale command was fenced; the scenario should depose a leader:\n%s",
			a.HATimeline)
	}
	if a.Adopted < 1 {
		t.Errorf("journal reconcile adopted nothing; the crash should land mid-migration:\n%s",
			a.HATimeline)
	}
	if a.Chaos.ViolOutside != 0 {
		t.Errorf("violOutside = %d, want 0 (violations must stay inside outage windows)",
			a.Chaos.ViolOutside)
	}
	if a.MediaBytes <= 0 || float64(a.JournalBytes) > 0.02*float64(a.MediaBytes) {
		t.Errorf("journal overhead gate: journal=%dB media=%dB (limit 2%%)",
			a.JournalBytes, a.MediaBytes)
	}

	// Takeover latency: the timeline's leader-takeover row must land within
	// two poll periods (plus the replication hop) of the crash.
	crashAt, tookAt := sim.Time(-1), sim.Time(-1)
	for _, line := range strings.Split(a.HATimeline, "\n") {
		fs := strings.Fields(line)
		if len(fs) < 5 {
			continue
		}
		at, ok := parseSimTime(fs[0])
		if !ok {
			continue
		}
		switch fs[4] {
		case "ctrl-crash":
			if crashAt < 0 {
				crashAt = at
			}
		case "leader-takeover":
			if tookAt < 0 {
				tookAt = at
			}
		}
	}
	if crashAt < 0 || tookAt < 0 {
		t.Fatalf("timeline missing crash or takeover rows:\n%s", a.HATimeline)
	}
	if lag := tookAt - crashAt; lag > 2*250*sim.Millisecond {
		t.Errorf("takeover lag %v exceeds two poll periods", lag)
	}

	// The control-plane rollup and the summary must agree on the leader.
	if !strings.Contains(a.CtrlPlane, "leader="+a.LeaderName) {
		t.Errorf("rollup disagrees with summary about the leader:\n%s\n%s",
			a.CtrlPlane, a.HASummary)
	}
}

// TestCtrlChaosDeterminism is the CI canary: monolithic, workers=1, and
// workers=4 must render byte-identical artifacts, HA timeline included.
func TestCtrlChaosDeterminism(t *testing.T) {
	if err := CtrlChaosDeterminism(CtrlChaosConfig{Workers: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestCtrlChaosWithoutControllerFaults proves the replicated control plane
// is quiescent when healthy: with controller faults disabled the standby
// never takes over, nothing is fenced, and the underlying chaos run still
// recovers every stream.
func TestCtrlChaosWithoutControllerFaults(t *testing.T) {
	a := RunCtrlChaos(CtrlChaosConfig{Workers: 2, CtrlCrashes: -1, CtrlPartitions: -1})
	if a.Takeovers != 0 || a.FencedRejects != 0 {
		t.Fatalf("healthy pair saw takeovers=%d fenced=%d:\n%s",
			a.Takeovers, a.FencedRejects, a.HATimeline)
	}
	if a.LeaderName != "ctl-a" || a.LeaderEpoch != 1 {
		t.Fatalf("healthy pair ended leader=%s epoch=%d, want ctl-a epoch 1",
			a.LeaderName, a.LeaderEpoch)
	}
	if a.DoublePlaced != 0 {
		t.Fatalf("double-placed streams on a healthy pair: %s", a.HASummary)
	}
	if a.JournalBytes <= 0 {
		t.Fatal("healthy pair shipped no journal/checkpoint traffic")
	}
}
