// Fleet-obs experiment: the in-band observability plane over the chaos
// fleet (cluster.RunFleetObs), wrapped for the artifact writers and the CI
// determinism canary. The canary extends the fleet's byte-identical contract
// to the scrape plane: every scrape decision, the merged incident timeline,
// the rollup tables, and the cross-migration stitched traces must not depend
// on the worker count or on monolithic-vs-partitioned execution.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// FleetObsConfig parameterizes the fleet-obs experiment. Zero values take
// the cluster-layer defaults (8 cards × 2 streams over 6 s, one fault of
// each kind, 200 ms scrapes; see cluster.FleetObsConfig).
type FleetObsConfig struct {
	Cards          int
	StreamsPerCard int
	Dur            sim.Time
	Workers        int

	ScrapeEvery sim.Time
	TopK        int

	// Chaos severity, as in FleetChaosConfig.
	HostCrashes   int
	NetPartitions int
	RollingDrains int
	FaultSeed     int64

	// Deterministic memory-pressure window (0 = off); see
	// cluster.FleetObsConfig.
	StressPct int
	StressAt  sim.Time
	StressDur sim.Time
}

// FleetObsArtifacts is everything one observed chaos run exports. Every
// string is part of the byte-identical determinism contract.
type FleetObsArtifacts struct {
	Chaos *FleetChaosArtifacts

	Rollup      string
	Timeline    string
	TopK        string
	ScrapeStats string
	Stitched    string
	Summary     string

	ObsBytes, MediaBytes   int64
	Reqs, Samples, Sheds   int64
	Skips, Dark            int64
	Degrades, Restores     int64
	Breaches               int64
	Links, StitchedLive    int
	EventsShipped, EvtLost int64
}

func (cfg FleetObsConfig) cluster() cluster.FleetObsConfig {
	return cluster.FleetObsConfig{
		FleetChaosConfig: cluster.FleetChaosConfig{
			Cards: cfg.Cards, StreamsPerCard: cfg.StreamsPerCard,
			Dur: cfg.Dur, Workers: cfg.Workers,
			HostCrashes: cfg.HostCrashes, NetPartitions: cfg.NetPartitions,
			RollingDrains: cfg.RollingDrains, FaultSeed: cfg.FaultSeed,
		},
		ScrapeEvery: cfg.ScrapeEvery, TopK: cfg.TopK,
		StressPct: cfg.StressPct, StressAt: cfg.StressAt, StressDur: cfg.StressDur,
	}
}

func obsArts(r *cluster.FleetObsResult) *FleetObsArtifacts {
	return &FleetObsArtifacts{
		Chaos:  chaosArts(r.Chaos),
		Rollup: r.Rollup, Timeline: r.Timeline, TopK: r.TopK,
		ScrapeStats: r.ScrapeStats, Stitched: r.Stitched, Summary: r.ObsSummary,
		ObsBytes: r.ObsBytes, MediaBytes: r.MediaBytes,
		Reqs: r.ScrapeReqs, Samples: r.ScrapeSamples, Sheds: r.ScrapeSheds,
		Skips: r.ScrapeSkips, Dark: r.ScrapeDark,
		Degrades: r.Degrades, Restores: r.Restores, Breaches: r.Breaches,
		Links: r.Links, StitchedLive: r.StitchedLive,
		EventsShipped: r.EventsShipped, EvtLost: r.EventsLost,
	}
}

// RunFleetObs executes one observed chaos run on the partitioned fleet.
func RunFleetObs(cfg FleetObsConfig) *FleetObsArtifacts {
	return obsArts(cluster.RunFleetObs(cfg.cluster()))
}

// fleetObsArtMap flattens the byte-compared artifacts for the canary.
func fleetObsArtMap(a *FleetObsArtifacts) map[string]string {
	return map[string]string{
		"rollup": a.Rollup, "timeline": a.Timeline, "topk": a.TopK,
		"scrape": a.ScrapeStats, "stitched": a.Stitched, "summary": a.Summary,
		"chaos-plan": a.Chaos.Plan, "chaos-summary": a.Chaos.Summary,
		"chaos-table": a.Chaos.Table, "chaos-miglog": a.Chaos.MigLog,
		"chaos-violations": a.Chaos.Violations, "chaos-csv": a.Chaos.CSV,
	}
}

// FleetObsDeterminism runs cfg monolithically, partitioned sequentially, and
// partitioned with cfg.Workers, and returns an error naming the first
// artifact that differs. nil means the scrape plane kept the byte-identical
// contract for this configuration.
func FleetObsDeterminism(cfg FleetObsConfig) error {
	run := func(workers int, mono bool) map[string]string {
		c := cfg.cluster()
		c.Workers, c.Monolithic = workers, mono
		return fleetObsArtMap(obsArts(cluster.RunFleetObs(c)))
	}
	ref := run(1, false)
	for name, variant := range map[string]map[string]string{
		"monolithic":                           run(0, true),
		fmt.Sprintf("workers=%d", cfg.Workers): run(cfg.Workers, false),
	} {
		for art, want := range ref {
			if variant[art] != want {
				return fmt.Errorf("fleet-obs determinism: %s artifact %q diverged from sequential partitioned run", name, art)
			}
		}
	}
	return nil
}
