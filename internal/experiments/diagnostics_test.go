package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestDiagnosticsDeterministicAndBudgeted is the tentpole acceptance test:
// two identical chaos runs produce byte-identical incident dumps, and the
// flight-recorder ring is charged to — and stays within — the card budget.
func TestDiagnosticsDeterministicAndBudgeted(t *testing.T) {
	cfg := DiagnosticsConfig{Dur: 8 * sim.Second}
	a := RunDiagnostics(cfg)
	b := RunDiagnostics(cfg)

	if a.Incidents != b.Incidents {
		t.Fatalf("incident dumps differ between identical runs:\n--- a ---\n%s\n--- b ---\n%s",
			a.Incidents, b.Incidents)
	}
	if a.SLO != b.SLO || a.MetricsCSV != b.MetricsCSV || a.Summary != b.Summary {
		t.Fatal("SLO table / metrics CSV / summary differ between identical runs")
	}

	if a.Triggers == 0 {
		t.Fatal("chaos run fired no incident triggers")
	}
	for _, want := range []string{"fault: mem-leak", "watchdog"} {
		if !strings.Contains(a.Incidents, want) {
			t.Fatalf("incident dump missing %q:\n%s", want, a.Incidents)
		}
	}
	if a.WatchdogBites == 0 {
		t.Fatal("task hang did not bite the watchdog")
	}

	// The ring pays for its memory like any other tenant and never exceeds
	// its configured charge.
	if a.RingCharge != a.RingBytes {
		t.Fatalf("ring charge %d != configured ring bytes %d", a.RingCharge, a.RingBytes)
	}
	if a.RingBytes > a.BudgetSize {
		t.Fatalf("ring %d B exceeds card budget %d B", a.RingBytes, a.BudgetSize)
	}
	if a.BudgetPeak > a.BudgetSize {
		t.Fatalf("budget peak %d exceeds size %d: breach", a.BudgetPeak, a.BudgetSize)
	}
	if a.Breaches != 0 {
		t.Fatalf("breaches = %d, want 0", a.Breaches)
	}
}

// TestDiagnosticsSLOBurnsUnderOverload: at 8× oversubscription the base
// streams cannot hold their windows; the monitor must escalate and the
// refusal path must fire.
func TestDiagnosticsSLOBurnsUnderOverload(t *testing.T) {
	a := RunDiagnostics(DiagnosticsConfig{Dur: 8 * sim.Second})
	if a.Health < 1 {
		t.Fatalf("health = %v under 8x overload, want at least warn\nslo:\n%s", a.Health, a.SLO)
	}
	if !strings.Contains(a.SLO, "ni-sched") {
		t.Fatalf("SLO table:\n%s", a.SLO)
	}
	if a.Rejects == 0 {
		t.Fatal("late setups were never refused; budget-refusal trigger untested")
	}
	if !strings.Contains(a.Incidents, "budget-refusal") {
		t.Fatalf("no budget-refusal incident:\n%s", a.Incidents)
	}
}
