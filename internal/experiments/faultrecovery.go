// Fault-recovery experiment: the robustness counterpart to Figures 7/9.
// A scheduler-NI testbed streams through a chaos schedule — the card
// crashes mid-run, its hardware watchdog detects the hang, streams fall
// back to the host-resident DWCS (§4.2.3's configuration, now a graceful-
// degradation tier), the card resets after a delay, and streams migrate
// home. The report plots per-stream bandwidth through fail → recover and
// counts DWCS violations outside the outage (there must be none: fault
// handling must not bleed into steady-state QoS).
package experiments

import (
	"repro/internal/bus"
	"repro/internal/dwcs"
	"repro/internal/faults"
	"repro/internal/host"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FaultConfig parameterizes RunFaultRecovery.
type FaultConfig struct {
	Dur  sim.Time     // observation length; 0 = 30 s
	Plan *faults.Plan // chaos schedule; nil = DefaultFaultPlan(Dur)
	// ResetDelay is how long a watchdog-initiated card reset takes
	// (firmware reload); 0 = 1 s.
	ResetDelay sim.Time
	// WatchdogTimeout is the card deadman period; 0 = 250 ms.
	WatchdogTimeout sim.Time
}

// Chaos-plan target names understood by the fault-recovery testbed.
const (
	TargetSchedNI = "ni-sched" // CardCrash / TaskHang
	TargetUplink  = "uplink"   // LinkDown / LossBurst on the card's Ethernet
)

// DefaultFaultPlan is the canonical schedule: a card crash a third of the
// way in (recovery is the watchdog's job, so no Duration), then a loss
// burst on the card's uplink in the post-recovery phase.
func DefaultFaultPlan(dur sim.Time) *faults.Plan {
	return &faults.Plan{Events: []faults.Event{
		{At: dur / 3, Kind: faults.CardCrash, Target: TargetSchedNI},
		{At: 2 * dur / 3, Duration: dur / 10, Kind: faults.LossBurst, Target: TargetUplink, Factor: 16},
	}}
}

// FaultRecovery is everything one chaos run produces.
type FaultRecovery struct {
	Dur sim.Time

	// Timeline of the first card crash (zero if the plan has none).
	CrashAt sim.Time // injection
	BiteAt  sim.Time // watchdog detection → failover to host
	ResetAt sim.Time // card back up → migrate home

	// Per-stream mean bandwidth by phase, and time from crash until the
	// stream's delivered bandwidth is back within 90% of its pre-fault
	// value (recovery includes detection + reset + resettling).
	PreBW     map[string]float64
	OutageBW  map[string]float64
	PostBW    map[string]float64
	RecoverIn map[string]sim.Time
	BW        map[string]*stats.Series // full per-stream curves

	// ViolationsOutsideOutage sums DWCS window violations recorded before
	// the crash and after recovery, on both schedulers. Must be zero: the
	// chaos window is the only place QoS may be hurt.
	ViolationsOutsideOutage int64
	// DetectionLoss counts frames injected into the dead card between the
	// crash and the watchdog bite — the price of the detection window.
	DetectionLoss int64

	Bites, Crashes, Resets int64
	Switches               int64 // failover transitions (2 = out and back)
	NISent, HostSent       int64
	Log                    *faults.Log
}

// RunFaultRecovery builds the testbed, arms the chaos plan, and runs it.
func RunFaultRecovery(cfg FaultConfig) *FaultRecovery {
	if cfg.Dur == 0 {
		cfg.Dur = 30 * sim.Second
	}
	if cfg.Plan == nil {
		cfg.Plan = DefaultFaultPlan(cfg.Dur)
	}
	if cfg.ResetDelay == 0 {
		cfg.ResetDelay = sim.Second
	}
	if cfg.WatchdogTimeout == 0 {
		cfg.WatchdogTimeout = 250 * sim.Millisecond
	}

	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 2, 10*sim.Millisecond)
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)

	fr := &FaultRecovery{
		Dur:       cfg.Dur,
		PreBW:     make(map[string]float64),
		OutageBW:  make(map[string]float64),
		PostBW:    make(map[string]float64),
		RecoverIn: make(map[string]sim.Time),
		BW:        make(map[string]*stats.Series),
		Log:       &faults.Log{},
	}

	specs := figureStreams()
	clients := make([]*netsim.Client, len(specs))
	for i, spec := range specs {
		cl := netsim.NewClient(eng, "client-"+spec.Name)
		cl.BW = stats.NewBandwidthMeter(spec.Name, bwWindow)
		sw.Attach(cl.Name, netsim.Fast100(eng, "sw-"+cl.Name, cl))
		clients[i] = cl
	}

	// Primary: the dedicated scheduler NI.
	seg := bus.New(eng, bus.PCI("pci0"))
	card := nic.New(eng, nic.Config{Name: TargetSchedNI, PCI: seg, CacheOn: true})
	uplink := netsim.Fast100(eng, TargetUplink, sw)
	card.ConnectEthernet(uplink)
	ext, err := card.LoadScheduler(nic.SchedulerConfig{EligibleEarly: eligibleEarly})
	if err != nil {
		panic(err)
	}
	// Backup: the host-resident DWCS through a dumb 82557 NI.
	hsched := host.NewScheduler(eng, sys, netsim.Fast100(eng, "host-eth", sw),
		host.SchedulerConfig{CPU: 0, EligibleEarly: eligibleEarly})
	for i, spec := range specs {
		if err := ext.AddStream(spec); err != nil {
			panic(err)
		}
		if err := hsched.AddStream(spec, clients[i].Name); err != nil {
			panic(err)
		}
	}

	// Producers inject at exactly the service rate (no oversubscription:
	// steady state must be violation-free) through the failover switch. The
	// NI path needs each frame tagged with its client address (the host
	// scheduler keeps its own stream→client map instead).
	dst := make(map[int]string, len(specs))
	for _, spec := range specs {
		dst[spec.ID] = "client-" + spec.Name
	}
	ft := &host.FailoverTarget{Primary: addrTarget{ext, dst}, Backup: hsched}
	clip := mpeg.GenerateDefault()
	for _, spec := range specs {
		host.StartProducer(eng, sys, ft, host.ProducerConfig{
			Clip: clip, StreamID: spec.ID, Every: streamPeriod,
			PerFrameCPU: producerFrameCPU, CPU: hostos.AnyCPU, Loop: true,
		})
	}

	// Self-healing loop: the watchdog detects the crashed kernel, fails
	// streams over to the host tier, and schedules the delayed card reset.
	// On reset the card's DWCS state is reloaded fresh (the backlog died
	// with the card) and streams migrate home.
	var violationsBeforeCrash int64
	var injectedAtCrash int64
	resetArmed := false
	card.StartWatchdog(cfg.WatchdogTimeout, func() {
		if !card.Crashed() || resetArmed {
			return // spurious bite (e.g. a task hang that clears itself)
		}
		resetArmed = true
		fr.BiteAt = eng.Now()
		fr.DetectionLoss = ft.ToPrimary - injectedAtCrash
		ft.FailToBackup()
		eng.After(cfg.ResetDelay, func() {
			for _, spec := range specs {
				_ = ext.Sched.RemoveStream(spec.ID)
			}
			card.Reset()
			fr.ResetAt = eng.Now()
			for _, spec := range specs {
				if err := ext.AddStream(spec); err != nil {
					panic(err)
				}
			}
			ft.RestorePrimary()
			resetArmed = false
		})
	})

	err = cfg.Plan.Arm(eng, faults.InjectorFuncs{
		OnInject: func(e faults.Event) {
			switch e.Kind {
			case faults.CardCrash:
				if fr.CrashAt == 0 {
					fr.CrashAt = eng.Now()
					injectedAtCrash = ft.ToPrimary
					for _, spec := range specs {
						if st, err := ext.Sched.Stats(spec.ID); err == nil {
							violationsBeforeCrash += st.Violations
						}
					}
				}
				card.Crash()
			case faults.TaskHang:
				card.HangHog(e.Duration)
			case faults.LinkDown:
				uplink.SetDown(true)
			case faults.LossBurst:
				uplink.DropEvery = e.Factor
			}
		},
		OnRecover: func(e faults.Event) {
			switch e.Kind {
			case faults.CardCrash:
				// Recovery belongs to the watchdog; a plan Duration on a
				// crash is only an annotation.
			case faults.LinkDown:
				uplink.SetDown(false)
			case faults.LossBurst:
				uplink.DropEvery = 0
			}
		},
	}, fr.Log)
	if err != nil {
		panic(err)
	}

	eng.RunUntil(cfg.Dur)

	fr.Bites = card.Watchdog.Bites
	fr.Crashes = card.Crashes
	fr.Resets = card.Resets
	fr.Switches = ft.Switches
	fr.NISent = ext.Sent
	fr.HostSent = hsched.Sent

	// Violations outside the outage: pre-crash plus post-recovery (the NI
	// stream stats were reloaded at reset, so they cover only the post
	// phase) plus everything the host tier recorded.
	fr.ViolationsOutsideOutage = violationsBeforeCrash
	for _, spec := range specs {
		if st, err := ext.Sched.Stats(spec.ID); err == nil {
			fr.ViolationsOutsideOutage += st.Violations
		}
		if st, err := hsched.Sched.Stats(spec.ID); err == nil {
			fr.ViolationsOutsideOutage += st.Violations
		}
	}

	for i, spec := range specs {
		clients[i].BW.FlushUntil(cfg.Dur)
		s := &clients[i].BW.Series
		fr.BW[spec.Name] = s
		if fr.CrashAt == 0 { // no crash in the plan: one long steady phase
			fr.PreBW[spec.Name] = s.Mean()
			continue
		}
		fr.PreBW[spec.Name] = meanWindow(s, 0, fr.CrashAt)
		fr.OutageBW[spec.Name] = meanWindow(s, fr.CrashAt, fr.ResetAt+bwWindow)
		fr.PostBW[spec.Name] = meanWindow(s, fr.ResetAt+bwWindow, cfg.Dur)
		fr.RecoverIn[spec.Name] = recoverTime(s, fr.CrashAt, fr.ResetAt, 0.9*fr.PreBW[spec.Name])
	}
	return fr
}

// addrTarget routes host-produced frames into the scheduler NI, tagging
// each with the stream's client address so the card knows where to send it.
type addrTarget struct {
	ext *nic.SchedulerExt
	dst map[int]string
}

// Enqueue implements host.EnqueueTarget.
func (a addrTarget) Enqueue(id int, p dwcs.Packet) error {
	if p.Payload == nil {
		p.Payload = nic.AddrPayload(a.dst[id])
	}
	return a.ext.Enqueue(id, p)
}

// meanWindow averages the series points in [from, to).
func meanWindow(s *stats.Series, from, to sim.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.At >= from && p.At < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// recoverTime returns how long after crashAt the series first reaches
// target at or after resetAt (-1 if never).
func recoverTime(s *stats.Series, crashAt, resetAt sim.Time, target float64) sim.Time {
	for _, p := range s.Points {
		if p.At >= resetAt && p.Value >= target {
			return p.At - crashAt
		}
	}
	return -1
}

// Result renders the run as a report table (paper column empty: the paper
// has no fault experiment — this extends it).
func (fr *FaultRecovery) Result() *Result {
	res := &Result{ID: "Fault", Title: "Chaos schedule: NI crash, watchdog reset, host fallback"}
	for _, spec := range figureStreams() {
		n := spec.Name
		res.Add(n+" pre-fault bw", "bps", 0, fr.PreBW[n])
		res.Add(n+" outage bw (host tier)", "bps", 0, fr.OutageBW[n])
		res.Add(n+" post-recovery bw", "bps", 0, fr.PostBW[n])
		res.Add(n+" recovery time", "ms", 0, fr.RecoverIn[n].Milliseconds())
	}
	res.Add("violations outside outage", "frames", 0, float64(fr.ViolationsOutsideOutage))
	res.Add("frames lost to detection window", "frames", 0, float64(fr.DetectionLoss))
	res.Add("watchdog bites", "", 0, float64(fr.Bites))
	res.Add("frames sent by host tier", "frames", 0, float64(fr.HostSent))
	if fr.CrashAt > 0 {
		res.Note("crash %v → bite %v (detection %v) → reset %v",
			fr.CrashAt, fr.BiteAt, fr.BiteAt-fr.CrashAt, fr.ResetAt)
	}
	res.Note("crashes=%d resets=%d failover switches=%d NI sent=%d",
		fr.Crashes, fr.Resets, fr.Switches, fr.NISent)
	for _, r := range fr.Log.Records {
		verb := "inject"
		if r.Recover {
			verb = "recover"
		}
		res.Note("chaos: %v %s %s %s", r.At, verb, r.Event.Kind, r.Event.Target)
	}
	return res
}
