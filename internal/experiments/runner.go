package experiments

import (
	"runtime"
	"sync"
)

// Runner fans independent simulation runs across a worker pool. Every run
// owns a private sim.Engine and RNG (each Run* helper constructs its own),
// so per-run determinism is untouched by the fan-out; results are collected
// by index, so callers observe exactly the order a sequential loop would
// have produced and reports stay byte-identical.
//
// The zero value uses GOMAXPROCS workers. Workers > 0 caps the pool (1
// recovers the sequential harness, useful for A/B timing).
type Runner struct {
	Workers int
}

// Run executes job(0) … job(n-1) across the pool and returns once all have
// completed. Jobs must not share mutable state; each typically builds and
// drains its own Engine.
func (r Runner) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// DefaultWorkers caps the default pool used by Collect and Parallel
// (0 = GOMAXPROCS). cmd/reprogen's -workers flag sets it, so one knob
// governs every fan-out in a run; results are collected by index either
// way, so the setting never changes output bytes.
var DefaultWorkers int

// Collect runs every job on the default pool and returns their results in
// job order, independent of completion order.
func Collect[T any](jobs []func() T) []T {
	return CollectWith(Runner{Workers: DefaultWorkers}, jobs)
}

// CollectWith is Collect on an explicit pool — the determinism canary runs
// the same jobs on Runner{Workers: 1} and a parallel pool and asserts the
// outputs are byte-identical.
func CollectWith[T any](r Runner, jobs []func() T) []T {
	out := make([]T, len(jobs))
	r.Run(len(jobs), func(i int) {
		out[i] = jobs[i]()
	})
	return out
}

// Parallel runs the given closures across the default pool and returns when
// all complete. Each closure must own its results (write to distinct
// variables or build its own engine).
func Parallel(jobs ...func()) {
	Runner{Workers: DefaultWorkers}.Run(len(jobs), func(i int) { jobs[i]() })
}
