// Diagnostics experiment: the observability tentpole's proving ground. One
// protected scheduler card is driven through a chaos schedule — producer
// oversubscription, a mid-run memory leak, a task hang that starves the
// watchdog petter, and late setup attempts that hit the admission ceiling —
// with the full diagnostic stack attached: a flight recorder charged against
// the card's own memory budget, an SLO monitor reading burn rates off the
// DWCS loss windows, and the telemetry registry snapshotting throughout.
// Every artifact (incident dumps, SLO table, metrics CSV) is byte-identical
// across runs; `reprogen -slo` writes them and CI diffs them.
package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/blackbox"
	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/faults"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

// Diagnostics testbed parameters.
const (
	// diagWatchdog is the scheduler card's deadman timeout; the injected
	// task hang lasts several timeouts, so the bite fires repeatedly while
	// the card is wedged — each bite is a recorded trigger.
	diagWatchdog = 50 * sim.Millisecond
	diagHang     = 160 * sim.Millisecond
	// diagRingBytes sizes the flight-recorder ring (256 events); it is
	// charged to the card budget under ClassBlackbox.
	diagRingBytes = 16 << 10
	// diagIncidents caps retained dumps; triggers beyond it are counted as
	// suppressed, proving incident storage is bounded.
	diagIncidents = 10
	// diagLeakKBps leaks fast enough to pin the budget at its absolute size
	// (each drip is capped at the free bytes), so the late setups that land
	// inside the leak window are refused at the high-water mark.
	diagLeakKBps = 1024
	// diagLatencyPeriods sets each stream's latency SLO to this many stream
	// periods of queue-stage wait.
	diagLatencyPeriods = 2
)

// DiagnosticsConfig parameterizes RunDiagnostics.
type DiagnosticsConfig struct {
	Dur  sim.Time // observation length; 0 = 30 s
	Mult int      // producer oversubscription; 0 = 8 (past the leak threshold)
}

// DiagnosticsArtifacts is everything one diagnostics run exports.
type DiagnosticsArtifacts struct {
	Dur sim.Time

	Incidents  string // flight-recorder dump (incidents + trailer)
	SLO        string // per-stream SLO health table
	MetricsCSV string // registry snapshots
	Stages     string // per-stage latency table
	Plan       string // the chaos plan that ran
	Summary    string

	// Ledger numbers the acceptance tests pin.
	Triggers      int64
	Suppressed    int64
	RingBytes     int64 // bytes charged for the ring
	RingCharge    int64 // ClassBlackbox bytes still charged at end of run
	BudgetPeak    int64
	BudgetSize    int64
	Breaches      int64
	Rejects       int64
	WatchdogBites int64
	Health        slo.State
	SLOViolations int64
}

// RunDiagnostics executes the chaos-diagnostics run on a single seed-42
// engine. Everything — scheduler decisions, ladder motion, fault arming,
// watchdog bites, SLO transitions — flows through the one event loop, so the
// incident dumps are a pure function of the configuration.
func RunDiagnostics(cfg DiagnosticsConfig) *DiagnosticsArtifacts {
	if cfg.Dur <= 0 {
		cfg.Dur = 30 * sim.Second
	}
	if cfg.Mult <= 0 {
		cfg.Mult = 8
	}
	a := &DiagnosticsArtifacts{Dur: cfg.Dur}

	eng := sim.NewEngine(42)
	reg := telemetry.New()

	seg := bus.New(eng, bus.PCI("pci0"))
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)

	diskCard := nic.New(eng, nic.Config{Name: "ni-disk", PCI: seg})
	d := disk.New(eng, disk.DefaultSCSI("ni-disk0"))
	diskCard.AttachDisk(d, disk.NewDOSFS(d))
	schedCard := nic.New(eng, nic.Config{
		Name: "ni-sched", PCI: seg, CacheOn: true, Memory: overloadCardMem,
	})
	schedCard.ConnectEthernet(netsim.Fast100(eng, "ni-sched-eth", sw))

	ext, err := schedCard.LoadScheduler(nic.SchedulerConfig{EligibleEarly: eligibleEarly})
	if err != nil {
		panic(err)
	}
	ext.Instrument(reg)

	ctl := overload.NewController(schedCard.Name, schedCard.Mem.Size())
	ctl.BP.High, ctl.BP.Low = overloadBPHigh, overloadBPLow
	ext.AttachOverload(ctl)
	ctl.Instrument(reg)

	// Deadman: the injected hang starves the petter; the bite itself is the
	// diagnostic event, so recovery is just the hog draining.
	schedCard.StartWatchdog(diagWatchdog, func() { a.WatchdogBites++ })

	// Flight recorder, charged against the card budget. Attached after the
	// watchdog so the bite tap lands.
	rec, err := blackbox.New(blackbox.Config{
		Name: schedCard.Name, Bytes: diagRingBytes,
		MaxIncidents: diagIncidents, Budget: ctl.Budget,
	})
	if err != nil {
		panic(err)
	}
	ext.AttachBlackbox(rec)
	rec.Instrument(reg)

	// Streams, producers, clients — the overload experiment's population.
	clip := mpeg.GenerateDefault()
	nominal := clip.MeanFrameSize()
	base := overloadStreams(nominal)
	late := overloadLateStreams(nominal)
	for _, spec := range append(append([]dwcs.StreamSpec{}, base...), late...) {
		cl := netsim.NewClient(eng, "client-"+spec.Name)
		sw.Attach(cl.Name, netsim.Fast100(eng, "sw-"+cl.Name, cl))
	}
	every := streamPeriod / sim.Time(cfg.Mult)
	spawn := func(spec dwcs.StreamSpec) {
		ext.SpawnPeerProducer(diskCard, clip, spec.ID, "client-"+spec.Name, every, 1<<30)
	}
	ext.OnReinstate = spawn

	// SLO monitor: loss budgets read off the DWCS windows, latency bounds a
	// small multiple of the period. Stats stay monotone across revocation by
	// freezing at the last observed value while the stream is gone.
	mon := slo.NewMonitor(schedCard.Name, slo.Config{})
	for _, spec := range base {
		spec := spec
		var lastA, lastL int64
		mon.Track(slo.FromSpec(spec, diagLatencyPeriods*streamPeriod),
			func() (int64, int64) {
				if st, err := ext.Sched.Stats(spec.ID); err == nil {
					lastA, lastL = st.Attempts(), st.Losses()
				}
				return lastA, lastL
			})
	}
	// Every stream transition lands in the ring, but the incident trigger is
	// card-level: the first stream to harden to violated flips the card's
	// health, and that is the moment worth a dump — not each sibling stream
	// confirming the same overload a tick later.
	sloBurned := false
	mon.OnChange = func(stream int, from, to slo.State) {
		rec.Record(blackbox.Event{At: eng.Now(), Kind: blackbox.KindSLO,
			Stream: stream, A: int64(from), B: int64(to),
			Note: from.String() + " -> " + to.String()})
		if to == slo.StateViolated && !sloBurned {
			sloBurned = true
			rec.Trigger(eng.Now(), "slo-burn")
		}
	}
	mon.Instrument(reg)
	mon.Start(eng)

	// Fan-out taps: pipeline spans feed the SLO latency windows and (queue
	// stage aside, which dispatch already records as decisions) the ring;
	// registry snapshots leave a marker event in the ring.
	reg.Spans.Observer = func(seg telemetry.Segment) {
		mon.ObserveSegment(seg)
		if seg.Stage != telemetry.StageQueue {
			rec.Record(blackbox.Event{At: seg.End, Kind: blackbox.KindSpan,
				Stream: seg.Stream, Seq: seg.Seq,
				A: int64(seg.Stage), B: int64(seg.End - seg.Start)})
		}
	}
	reg.OnSnapshot = func(at sim.Time, values int) {
		rec.Record(blackbox.Event{At: at, Kind: blackbox.KindSnapshot,
			A: int64(values)})
	}

	for _, spec := range base {
		if err := ext.AddStream(spec); err != nil {
			panic(err)
		}
		spawn(spec)
	}

	// Late setups under pressure: refusals at the high-water mark feed the
	// budget-refusal trigger. No retry queue here — the refusal is the event
	// this experiment is about.
	for i, spec := range late {
		spec := spec
		eng.At(cfg.Dur/2+sim.Time(i)*200*sim.Millisecond, func() {
			if err := ext.AddStream(spec); err != nil &&
				!errors.Is(err, overload.ErrAdmission) {
				panic(err)
			}
		})
	}

	// Chaos plan: a memory leak squeezing the budget through the back half,
	// and a task hang starving the watchdog petter. The injector tee mirrors
	// every arm/recovery into the flight recorder and triggers on arming.
	plan := &faults.Plan{Events: []faults.Event{
		{At: cfg.Dur / 4, Duration: diagHang, Kind: faults.TaskHang,
			Target: schedCard.Name},
		{At: cfg.Dur / 2, Duration: cfg.Dur / 4, Kind: faults.MemLeak,
			Target: schedCard.Name, Factor: diagLeakKBps},
	}}
	var stopLeak func()
	inj := faults.InjectorFuncs{
		OnInject: func(e faults.Event) {
			switch e.Kind {
			case faults.TaskHang:
				schedCard.HangHog(e.Duration)
			case faults.MemLeak:
				per := (e.Factor << 10) * int64(overloadSampleEvery) / int64(sim.Second)
				stopLeak = eng.Every(overloadSampleEvery, func() {
					n := per
					if free := ctl.Budget.Size() - ctl.Budget.Used(); free < n {
						n = free
					}
					if n > 0 {
						ctl.Budget.Leak(n)
					}
				})
			}
		},
		OnRecover: func(e faults.Event) {
			if e.Kind == faults.MemLeak {
				stopLeak()
				ctl.Budget.ReclaimLeak()
			}
		},
	}
	tapped := faults.Tee(inj, func(e faults.Event, recover bool) {
		ext.RecordFault(eng.Now(), e.Kind.String(), e.Target, recover)
	})
	if err := plan.Arm(eng, tapped, nil); err != nil {
		panic(err)
	}

	reg.SnapshotEvery(eng, sim.Second)
	eng.RunUntil(cfg.Dur)
	mon.Stop()

	a.Incidents = rec.DumpAll()
	a.SLO = mon.Table()
	a.MetricsCSV = reg.SnapshotsCSV()
	a.Stages = reg.Spans.StageTable()
	a.Plan = plan.String()
	a.Triggers = rec.Triggers
	a.Suppressed = rec.Suppressed
	a.RingBytes = rec.RingBytes()
	a.RingCharge = ctl.Budget.UsedClass(overload.ClassBlackbox)
	a.BudgetPeak = ctl.Budget.Peak()
	a.BudgetSize = ctl.Budget.Size()
	a.Breaches = ctl.Budget.Breaches
	a.Rejects = ctl.Budget.Rejects
	a.Health = mon.Health()
	a.SLOViolations = mon.Violations
	a.Summary = a.summarize(cfg, rec)
	return a
}

func (a *DiagnosticsArtifacts) summarize(cfg DiagnosticsConfig, rec *blackbox.Recorder) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diagnostics chaos run: %v at %dx oversubscription\n", a.Dur, cfg.Mult)
	fmt.Fprintf(&b, "  incidents: %d trigger(s), %d retained, %d suppressed\n",
		a.Triggers, len(rec.Incidents()), a.Suppressed)
	fmt.Fprintf(&b, "  flight-recorder ring: %d B charged to the card budget (class blackbox: %d B at end)\n",
		a.RingBytes, a.RingCharge)
	fmt.Fprintf(&b, "  card budget: peak %d of %d B, %d refusal(s), %d breach(es)\n",
		a.BudgetPeak, a.BudgetSize, a.Rejects, a.Breaches)
	fmt.Fprintf(&b, "  watchdog bites: %d\n", a.WatchdogBites)
	fmt.Fprintf(&b, "  SLO health at end: %s (%d violation transition(s))\n",
		a.Health, a.SLOViolations)
	return b.String()
}
