package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dvcmnet"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/host"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/webload"
)

// TelemetryConfig sizes the instrumented demonstration run.
type TelemetryConfig struct {
	// Dur is the simulated observation length (default 20 s).
	Dur sim.Time
	// Streams is how many VOD streams the cluster serves (default 2).
	Streams int
}

// TelemetryArtifacts is everything one instrumented run exports: the
// standard-format dumps (Chrome trace JSON, Prometheus text, snapshot CSV)
// plus the human-readable stage, folded-stack, and cycle-attribution tables.
// All fields are deterministic: byte-identical across runs and worker
// counts.
type TelemetryArtifacts struct {
	TraceJSON  []byte // Chrome trace-event JSON (Perfetto-loadable)
	Prom       string // Prometheus text exposition of the final state
	CSV        string // per-snapshot time series (time_ms,component,metric,value)
	StageTable string // per-stage frame latency table
	Folded     string // folded-stack lines for flamegraph tools
	CycleTable string // cycle-cost attribution from the profiled microbenchmark
	Summary    string // one-screen overview of the run

	Components []string // distinct instrumented components, sorted
	SpanCount  int      // causal span segments recorded
	Snapshots  int      // metric snapshots taken

	// Cycle reconciliation: the profiled microbenchmark pass against the
	// plain Table 2 measurement of the same configuration.
	ProfiledCycles int64    // profiler's attributed total
	MeteredCycles  int64    // the meter's own total for the same pass
	ProfiledTime   sim.Time // profiled total as simulated time
	BenchTotal     sim.Time // RunMicrobench TotalSched for the same config
}

// RunTelemetry executes the full-stack observability demonstration: a
// one-node cluster serving VOD streams (disk → bus → DWCS queue → wire →
// client), a host-based scheduler stream under web load, a DVCM management
// endpoint polling scheduler stats over the SAN, and a reliable transport
// pair on a lossy link — every substrate instrumented into one registry,
// snapshotted each simulated second — plus a cycle-profiled rerun of the
// Table 2 microbenchmark whose attribution must reconcile with the plain
// measurement to within one cycle.
func RunTelemetry(cfg TelemetryConfig) *TelemetryArtifacts {
	if cfg.Dur <= 0 {
		cfg.Dur = 20 * sim.Second
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 2
	}

	eng := sim.NewEngine(42)
	reg := telemetry.New()
	clip := mpeg.GenerateDefault()

	// Cluster path: one node, one scheduler NI, one producer NI. Instrument
	// before admission so clients attached later inherit the registry.
	c := newTelemetryCluster(eng)
	c.Instrument(reg)
	for i := 0; i < cfg.Streams; i++ {
		p, err := c.Admit(telemetryStreamRequest(fmt.Sprintf("vod%d", i+1), clip))
		if err != nil {
			panic(err)
		}
		c.AttachClient(p)
		c.Start(p, clip, producerEvery, 1<<30)
	}

	// Host path: the same DWCS code as a host process competing with web
	// load, delivering to its own client on the SAN switch.
	sys := hostos.New(eng, 1, 10*sim.Millisecond)
	webload.Daemons(eng, sys)
	reg.GaugeFunc("host", "cpu_utilization",
		"host CPU utilization percent across all processors", sys.TotalUtilization)
	hostCl := netsim.NewClient(eng, "client-host")
	hostCl.Instrument(reg)
	c.Switch.Attach(hostCl.Name, netsim.Fast100(eng, "san-"+hostCl.Name, hostCl))
	sched := host.NewScheduler(eng, sys, netsim.Fast100(eng, "host-eth", c.Switch),
		host.SchedulerConfig{EligibleEarly: eligibleEarly})
	sched.Instrument(reg)
	hostSpec := dwcs.StreamSpec{
		ID: 101, Name: "h1", Period: streamPeriod,
		Loss: fixed.New(1, 2), Lossy: true, BufCap: streamBufCap,
	}
	if err := sched.AddStream(hostSpec, hostCl.Name); err != nil {
		panic(err)
	}
	host.StartProducer(eng, sys, sched, host.ProducerConfig{
		Clip: clip, StreamID: hostSpec.ID, Every: producerEvery,
		PerFrameCPU: producerFrameCPU, CPU: hostos.AnyCPU, Loop: true,
	})
	webload.NewGenerator(eng, sys, webload.TargetUtilization("telemetry", 30, 1)).Start()

	// Control plane: a management endpoint polls the scheduler NI's DWCS
	// stats over the SAN once per second.
	mgmt := dvcmnet.Attach(eng, c.Switch, "mgmt", nil)
	mgmt.Instrument(reg)
	schedNI := c.Nodes[0].Schedulers[0]
	eng.Every(sim.Second, func() {
		mgmt.Invoke(schedNI.Card.Name, core.Instr{Ext: "dwcs", Op: "stats", Arg: 1},
			func(any, error) {})
	})

	// Reliable transport pair over a deterministically lossy link: every 7th
	// data packet is dropped, exercising the retransmit counters.
	var recv *transport.Receiver
	dataLink := netsim.Fast100(eng, "tp-data", netsim.PortFunc(func(p *netsim.Packet) {
		recv.Deliver(p)
	}))
	dataLink.DropEvery = 7
	sender := transport.NewSender(eng, dataLink, 8, 5*sim.Millisecond)
	ackLink := netsim.Fast100(eng, "tp-ack", netsim.PortFunc(func(p *netsim.Packet) {
		sender.Deliver(p)
	}))
	recv = transport.NewReceiver(eng, nil, ackLink, "tp-sender")
	sender.Instrument(reg)
	recv.Instrument(reg)
	eng.Every(100*sim.Millisecond, func() {
		sender.Send(&netsim.Packet{Src: "tp-a", Dst: "tp-b", Bytes: 1400, StreamID: -1})
	})

	reg.SnapshotEvery(eng, sim.Second)
	eng.RunUntil(cfg.Dur)

	// Cycle attribution: profile the Table 2 fixed-point pass and reconcile
	// against the plain measurement of the identical configuration.
	prof, meterCycles, model := profiledMicrobench()
	mb := RunMicrobench(cpu.FixedPoint, true, nic.StoreDRAM)

	traceJSON, err := telemetry.MarshalChrome(reg.Spans.ChromeEvents())
	if err != nil {
		panic(err)
	}
	a := &TelemetryArtifacts{
		TraceJSON:      traceJSON,
		Prom:           reg.PrometheusText(),
		CSV:            reg.SnapshotsCSV(),
		StageTable:     reg.Spans.StageTable(),
		Folded:         reg.Spans.Folded(),
		CycleTable:     prof.Table(model),
		Components:     reg.Components(),
		SpanCount:      reg.Spans.Len(),
		Snapshots:      reg.Snapshots(),
		ProfiledCycles: prof.Total(),
		MeteredCycles:  meterCycles,
		ProfiledTime:   model.Duration(prof.Total()),
		BenchTotal:     mb.TotalSched,
	}
	a.Summary = a.summarize(cfg)
	return a
}

// newTelemetryCluster builds the single-node cluster the demonstration
// streams from.
func newTelemetryCluster(eng *sim.Engine) *cluster.Cluster {
	return cluster.New(eng, []cluster.NodeConfig{{
		Name: "n0", Segments: 1, SchedulerNIs: 1, ProducerNIs: 1,
	}})
}

// telemetryStreamRequest shapes one VOD stream like the Figure 7/9 workload.
func telemetryStreamRequest(name string, clip *mpeg.Clip) cluster.StreamRequest {
	return cluster.StreamRequest{
		Name:       name,
		Period:     streamPeriod,
		FrameBytes: clip.MeanFrameSize(),
		Loss:       fixed.New(1, 2),
		Lossy:      true,
		BufCap:     streamBufCap,
	}
}

// profiledMicrobench reruns the Table 2 scheduled pass (fixed point, cache
// on, DRAM descriptor store) with a cycle profiler observing the card meter
// from the same instant the plain benchmark resets it, so the attributed
// total must equal the metered total exactly.
func profiledMicrobench() (prof *telemetry.Profiler, meterCycles int64, model *cpu.Model) {
	clip := mpeg.GenerateDefault()
	perStream := (len(clip.Frames) + MicrobenchStreams - 1) / MicrobenchStreams

	eng := sim.NewEngine(1)
	card := nic.New(eng, nic.Config{Name: "bench", CacheOn: true, Arith: cpu.FixedPoint})
	sched := card.NewBenchScheduler(nic.SchedulerConfig{
		Store:          nic.StoreDRAM,
		WorkConserving: true,
	})
	for _, spec := range microStreamSpecs(perStream) {
		if err := sched.AddStream(spec); err != nil {
			panic(err)
		}
	}
	for i, f := range clip.Frames {
		if err := sched.Enqueue(i%MicrobenchStreams, dwcs.Packet{Bytes: f.Size, Offset: f.Offset}); err != nil {
			panic(err)
		}
	}
	card.Meter.Reset()
	prof = telemetry.NewProfiler()
	card.Meter.Observe(prof)
	for {
		d := sched.Schedule()
		if d.Packet == nil {
			break
		}
		card.ChargeDispatch()
	}
	return prof, card.Meter.Cycles(), card.Meter.Model
}

// summarize renders the one-screen run overview.
func (a *TelemetryArtifacts) summarize(cfg TelemetryConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry run: %v simulated, %d cluster streams + 1 host stream\n",
		cfg.Dur, cfg.Streams)
	fmt.Fprintf(&b, "  components instrumented: %d (%s)\n",
		len(a.Components), strings.Join(a.Components, ", "))
	fmt.Fprintf(&b, "  span segments: %d   snapshots: %d\n", a.SpanCount, a.Snapshots)
	fmt.Fprintf(&b, "  cycle reconciliation: profiled %d cycles vs metered %d (Δ %d)\n",
		a.ProfiledCycles, a.MeteredCycles, a.ProfiledCycles-a.MeteredCycles)
	fmt.Fprintf(&b, "  profiled sched pass: %v vs Table 2 total %v (Δ %v)\n",
		a.ProfiledTime, a.BenchTotal, a.ProfiledTime-a.BenchTotal)
	return b.String()
}
