package experiments

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/host"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/webload"
)

// Figure workload parameters (§4.2.3, Figure 5 testbed).
const (
	// streamPeriod is the requested inter-frame service time of streams s1
	// and s2: ~6.25 frames/s of ~5.1 KB frames ≈ 256 kbps, matching the
	// ≈250–260 kbps settling bandwidths in Figures 7 and 9.
	streamPeriod = 160 * sim.Millisecond
	// eligibleEarly lets a frame go up to half a period early, giving the
	// scheduler headroom against moderate scheduling jitter.
	eligibleEarly = 80 * sim.Millisecond
	// producerEvery oversubscribes the scheduler 4×, so queues stay deep
	// (the paper's multi-second queuing delays).
	producerEvery = 40 * sim.Millisecond
	// streamBufCap bounds each stream's ring: ~64 frames × 160 ms ≈ 10 s of
	// backlog, the Figure 8 no-load plateau.
	streamBufCap = 64
	// bwWindow is the bandwidth-sample window of Figures 7 and 9.
	bwWindow = 2 * sim.Second
	// FigureDuration is the default observation length (Figures 6–8 span
	// ~100 s).
	FigureDuration = 100 * sim.Second
	// producerFrameCPU is the host CPU consumed per mean-size injected
	// frame (MPEG segmentation, filesystem read, copies on a 200 MHz
	// Pentium Pro); with 2×25 injections/s it contributes the ~15% baseline
	// utilization of the quiescent Figure 6 curve.
	producerFrameCPU = 4500 * sim.Microsecond
	// baselineUtilPct is that streaming baseline; web load levels are total
	// utilization including it.
	baselineUtilPct = 15
)

// figureStreams returns the two lossy streams s1 and s2.
func figureStreams() []dwcs.StreamSpec {
	specs := make([]dwcs.StreamSpec, 2)
	for i := range specs {
		specs[i] = dwcs.StreamSpec{
			ID:     i + 1,
			Name:   fmt.Sprintf("s%d", i+1),
			Period: streamPeriod,
			Loss:   fixed.New(1, 2),
			Lossy:  true,
			BufCap: streamBufCap,
		}
	}
	return specs
}

// StreamCurves is everything one load-level run produces.
type StreamCurves struct {
	Load    string
	Util    stats.Series                   // Figure 6: % CPU over time
	BW      map[string]*stats.Series       // Figures 7/9: bps per stream
	QDelay  map[string]*stats.DelayTracker // Figures 8/10
	Jitter  map[string]sim.Time            // §4.2.3 inter-arrival jitter per stream
	Sent    int64
	Dropped int64
}

// SettleBW returns the stream's mean bandwidth over the second half of the
// run — the "settling" value the paper quotes for unloaded runs.
func (c *StreamCurves) SettleBW(stream string, dur sim.Time) float64 {
	s, ok := c.BW[stream]
	if !ok {
		return 0
	}
	return s.MeanAfter(dur / 2)
}

// SettleBWWindow returns the stream's mean bandwidth over [from, to). The
// paper quotes loaded-run bandwidths during the high-load phase ("the
// period from 40s-80s" for the 60% run), so Figure 7's loaded rows measure
// the modulation peak of the second load cycle.
func (c *StreamCurves) SettleBWWindow(stream string, from, to sim.Time) float64 {
	s, ok := c.BW[stream]
	if !ok {
		return 0
	}
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.At >= from && p.At < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PeakWindow is where the second load-modulation peak falls in a run of
// dur: the analogue of the paper's 40–80 s loaded phase.
func PeakWindow(dur sim.Time) (from, to sim.Time) {
	return dur / 2, dur * 3 / 4
}

// RunHostLoad runs the host-based-scheduler experiment (Figure 5 with
// component 3 as an Intel 82557 NI) at the given web-load level.
func RunHostLoad(loadPct float64, dur sim.Time) *StreamCurves {
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 2, 15*sim.Millisecond)
	webload.Daemons(eng, sys)

	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	curves := &StreamCurves{
		Load:   loadName(loadPct),
		BW:     make(map[string]*stats.Series),
		QDelay: make(map[string]*stats.DelayTracker),
		Jitter: make(map[string]sim.Time),
	}
	var clients []*netsim.Client
	for _, spec := range figureStreams() {
		cl := netsim.NewClient(eng, "client-"+spec.Name)
		cl.BW = stats.NewBandwidthMeter(spec.Name, bwWindow)
		sw.Attach(cl.Name, netsim.Fast100(eng, "sw-"+cl.Name, cl))
		clients = append(clients, cl)
	}
	link := netsim.Fast100(eng, "host-eth", sw)

	sched := host.NewScheduler(eng, sys, link, host.SchedulerConfig{
		CPU:           0, // pbind to processor 0
		EligibleEarly: eligibleEarly,
	})
	clip := mpeg.GenerateDefault()
	for _, spec := range figureStreams() {
		if err := sched.AddStream(spec, "client-"+spec.Name); err != nil {
			panic(err)
		}
		host.StartProducer(eng, sys, sched, host.ProducerConfig{
			Clip: clip, StreamID: spec.ID, Every: producerEvery,
			PerFrameCPU: producerFrameCPU, CPU: hostos.AnyCPU, Loop: true,
		})
	}
	if loadPct > 0 {
		// The paper's load levels are *total* utilization including the
		// streaming workload's own ~15%; the web generator supplies the
		// remainder.
		webPct := loadPct - baselineUtilPct
		if webPct < 0 {
			webPct = 0
		}
		webload.NewGenerator(eng, sys, webload.TargetUtilization(curves.Load, webPct, 2)).Start()
	}
	sys.SampleUtilization(sim.Second, &curves.Util)

	eng.RunUntil(dur)
	for i, spec := range figureStreams() {
		clients[i].BW.FlushUntil(dur)
		curves.BW[spec.Name] = &clients[i].BW.Series
		curves.QDelay[spec.Name] = sched.QDelay[spec.ID]
		curves.Jitter[spec.Name] = clients[i].Jitter()
	}
	curves.Sent = sched.Sent
	curves.Dropped = sched.Dropped
	return curves
}

// RunNILoad runs the NI-based-scheduler experiment (Figure 5 with component
// 3 as an i960 RD I2O NI on its own bus segment): the web load hammers the
// host CPU and the web NI's segment while DWCS runs entirely on the card.
// sameSegment moves the web NI onto the scheduler's bus segment — the
// configuration the paper avoids — for the ablation benchmark.
func RunNILoad(loadPct float64, dur sim.Time, sameSegment bool) *StreamCurves {
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 1, 10*sim.Millisecond) // one CPU online (§4.2.3)
	webload.Daemons(eng, sys)

	seg0 := bus.New(eng, bus.PCI("pci0")) // web NI segment
	seg1 := bus.New(eng, bus.PCI("pci1")) // scheduler segment
	schedSeg := seg1
	webSeg := seg0
	if sameSegment {
		webSeg = seg1
	}

	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	curves := &StreamCurves{
		Load:   loadName(loadPct),
		BW:     make(map[string]*stats.Series),
		QDelay: make(map[string]*stats.DelayTracker),
		Jitter: make(map[string]sim.Time),
	}
	var clients []*netsim.Client
	for _, spec := range figureStreams() {
		cl := netsim.NewClient(eng, "client-"+spec.Name)
		cl.BW = stats.NewBandwidthMeter(spec.Name, bwWindow)
		sw.Attach(cl.Name, netsim.Fast100(eng, "sw-"+cl.Name, cl))
		clients = append(clients, cl)
	}

	// Disk card sources frames; dedicated scheduler card (cache enabled, no
	// disk) schedules and transmits — the paper's preferred split (§4.2).
	diskCard := nic.New(eng, nic.Config{Name: "ni-disk", PCI: schedSeg})
	d := disk.New(eng, disk.DefaultSCSI("ni-disk0"))
	diskCard.AttachDisk(d, disk.NewDOSFS(d))
	schedCard := nic.New(eng, nic.Config{Name: "ni-sched", PCI: schedSeg, CacheOn: true})
	schedCard.ConnectEthernet(netsim.Fast100(eng, "ni-sched-eth", sw))

	ext, err := schedCard.LoadScheduler(nic.SchedulerConfig{EligibleEarly: eligibleEarly})
	if err != nil {
		panic(err)
	}
	clip := mpeg.GenerateDefault()
	for _, spec := range figureStreams() {
		if err := ext.AddStream(spec); err != nil {
			panic(err)
		}
		ext.SpawnPeerProducer(diskCard, clip, spec.ID, "client-"+spec.Name, producerEvery, 1<<30)
	}

	if loadPct > 0 {
		g := webload.NewGenerator(eng, sys, webload.TargetUtilization(curves.Load, loadPct, 1))
		g.Start()
		// Web responses DMA across the web NI's bus segment.
		eng.Every(250*sim.Millisecond, func() {
			webSeg.DMA(64<<10, nil)
		})
	}
	sys.SampleUtilization(sim.Second, &curves.Util)

	eng.RunUntil(dur)
	for i, spec := range figureStreams() {
		clients[i].BW.FlushUntil(dur)
		curves.BW[spec.Name] = &clients[i].BW.Series
		curves.QDelay[spec.Name] = ext.QDelay[spec.ID]
		curves.Jitter[spec.Name] = clients[i].Jitter()
	}
	curves.Sent = ext.Sent
	curves.Dropped = ext.Dropped
	return curves
}

func loadName(pct float64) string {
	if pct == 0 {
		return "no web load"
	}
	return fmt.Sprintf("%.0f%% util", pct)
}

// HostFigures bundles the three host-scheduler runs shared by Figures 6–8.
type HostFigures struct {
	Dur  sim.Time
	Runs map[float64]*StreamCurves // keyed by load percent
}

// RunHostFigures executes the no-load, 45% and 60% runs once. The three
// load points are independent simulations (each RunHostLoad builds its own
// engine and RNG), so they fan out across the worker pool; results are
// keyed deterministically regardless of completion order.
func RunHostFigures(dur sim.Time) *HostFigures {
	pcts := []float64{0, 45, 60}
	jobs := make([]func() *StreamCurves, len(pcts))
	for i, pct := range pcts {
		pct := pct
		jobs[i] = func() *StreamCurves { return RunHostLoad(pct, dur) }
	}
	runs := Collect(jobs)
	h := &HostFigures{Dur: dur, Runs: map[float64]*StreamCurves{}}
	for i, pct := range pcts {
		h.Runs[pct] = runs[i]
	}
	return h
}

// Figure6 reports CPU utilization under the three load profiles.
func (h *HostFigures) Figure6() *Result {
	res := &Result{ID: "Figure 6", Title: "CPU utilization variation with server load"}
	res.Add("mean util, no web load", "%", 15, h.Runs[0].Util.Mean())
	res.Add("peak util, no web load", "%", 35, h.Runs[0].Util.Max())
	res.Add("mean util, 45% profile", "%", 45, h.Runs[45].Util.Mean())
	res.Add("mean util, 60% profile", "%", 60, h.Runs[60].Util.Mean())
	res.Add("peak util, 60% profile", "%", 85, h.Runs[60].Util.Max())
	return res
}

// Figure7 reports per-stream settling bandwidth under load. Loaded rows
// are measured during the high-load phase, as in the paper's plots.
func (h *HostFigures) Figure7() *Result {
	from, to := PeakWindow(h.Dur)
	res := &Result{ID: "Figure 7", Title: "Host-based scheduler: bandwidth variation with load"}
	res.Add("s1 settling bw, no web load", "bps", 250_000, h.Runs[0].SettleBW("s1", h.Dur))
	res.Add("s1 settling bw, 45% util", "bps", 230_000, h.Runs[45].SettleBWWindow("s1", from, to))
	res.Add("s1 settling bw, 60% util", "bps", 125_000, h.Runs[60].SettleBWWindow("s1", from, to))
	res.Add("s2 settling bw, no web load", "bps", 250_000, h.Runs[0].SettleBW("s2", h.Dur))
	res.Add("s2 settling bw, 60% util", "bps", 125_000, h.Runs[60].SettleBWWindow("s2", from, to))
	res.Note("dropped frames: %d (no load) → %d (45%%) → %d (60%%)",
		h.Runs[0].Dropped, h.Runs[45].Dropped, h.Runs[60].Dropped)
	return res
}

// Figure8 reports queuing delay growth under load.
func (h *HostFigures) Figure8() *Result {
	res := &Result{ID: "Figure 8", Title: "Host-based scheduler: queuing delay vs frames sent"}
	res.Add("s1 max queuing delay, no web load", "ms", 10_000,
		h.Runs[0].QDelay["s1"].Max().Milliseconds())
	res.Add("s1 max queuing delay, 45% util", "ms", 12_000,
		h.Runs[45].QDelay["s1"].Max().Milliseconds())
	res.Add("s1 max queuing delay, 60% util", "ms", 30_000,
		h.Runs[60].QDelay["s1"].Max().Milliseconds())
	return res
}

// NIFigures bundles the NI-scheduler runs shared by Figures 9 and 10.
type NIFigures struct {
	Dur      sim.Time
	NoLoad   *StreamCurves
	Loaded60 *StreamCurves
}

// RunNIFigures executes the unloaded and 60%-loaded NI runs, fanned across
// the worker pool.
func RunNIFigures(dur sim.Time) *NIFigures {
	runs := Collect([]func() *StreamCurves{
		func() *StreamCurves { return RunNILoad(0, dur, false) },
		func() *StreamCurves { return RunNILoad(60, dur, false) },
	})
	return &NIFigures{Dur: dur, NoLoad: runs[0], Loaded60: runs[1]}
}

// RunNIMatrix executes the full NI load × bus-segment matrix (the Figure
// 9/10 runs plus the same-segment ablation) in one parallel fan-out,
// returned in row-major (load, segment) order.
func RunNIMatrix(loads []float64, dur sim.Time) map[float64]map[bool]*StreamCurves {
	type cell struct {
		load float64
		same bool
	}
	var cells []cell
	for _, l := range loads {
		for _, same := range []bool{false, true} {
			cells = append(cells, cell{l, same})
		}
	}
	jobs := make([]func() *StreamCurves, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func() *StreamCurves { return RunNILoad(c.load, dur, c.same) }
	}
	runs := Collect(jobs)
	out := make(map[float64]map[bool]*StreamCurves, len(loads))
	for i, c := range cells {
		if out[c.load] == nil {
			out[c.load] = make(map[bool]*StreamCurves, 2)
		}
		out[c.load][c.same] = runs[i]
	}
	return out
}

// Figure9 reports the NI scheduler's bandwidth immunity to host load.
func (f *NIFigures) Figure9() *Result {
	res := &Result{ID: "Figure 9", Title: "NI bandwidth distribution: unaffected by system load"}
	res.Add("s1 settling bw, no web load", "bps", 260_000, f.NoLoad.SettleBW("s1", f.Dur))
	res.Add("s1 settling bw, 60% util", "bps", 260_000, f.Loaded60.SettleBW("s1", f.Dur))
	res.Add("s2 settling bw, 60% util", "bps", 250_000, f.Loaded60.SettleBW("s2", f.Dur))
	delta := f.Loaded60.SettleBW("s1", f.Dur) - f.NoLoad.SettleBW("s1", f.Dur)
	res.Note("load-induced change in s1 bandwidth: %+.0f bps (paper: none)", delta)
	res.Note("frames dropped under 60%% load: %d (paper: none)", f.Loaded60.Dropped)
	return res
}

// JitterComparison reproduces the §4.2.3 delay-jitter claim: the host
// scheduler's frame inter-arrival variability grows with load ("variation
// in the rate at which the scheduler receives CPU may increase delay-jitter
// already experienced by frames") while the NI scheduler's stays uniform.
func JitterComparison(h *HostFigures, n *NIFigures) *Result {
	res := &Result{ID: "Jitter", Title: "Delay-jitter at the client (§4.2.3)"}
	res.Add("host s1 jitter, no web load", "ms", 0, h.Runs[0].Jitter["s1"].Milliseconds())
	res.Add("host s1 jitter, 45% util", "ms", 0, h.Runs[45].Jitter["s1"].Milliseconds())
	res.Add("host s1 jitter, 60% util", "ms", 0, h.Runs[60].Jitter["s1"].Milliseconds())
	res.Add("NI s1 jitter, no web load", "ms", 0, n.NoLoad.Jitter["s1"].Milliseconds())
	res.Add("NI s1 jitter, 60% util", "ms", 0, n.Loaded60.Jitter["s1"].Milliseconds())
	res.Note("the paper reports this qualitatively: NI-scheduled streams see " +
		"\"more uniform jitter-delay variation\" regardless of host load")
	return res
}

// Figure10 reports the NI scheduler's queuing delay immunity.
func (f *NIFigures) Figure10() *Result {
	res := &Result{ID: "Figure 10", Title: "NI queuing delay: unaffected by system load"}
	res.Add("s1 max queuing delay, no web load", "ms", 11_000,
		f.NoLoad.QDelay["s1"].Max().Milliseconds())
	res.Add("s1 max queuing delay, 60% util", "ms", 11_000,
		f.Loaded60.QDelay["s1"].Max().Milliseconds())
	res.Add("s2 max queuing delay, 60% util", "ms", 11_000,
		f.Loaded60.QDelay["s2"].Max().Milliseconds())
	return res
}
