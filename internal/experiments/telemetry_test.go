package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// telemetryTestConfig keeps the instrumented run short for tests.
var telemetryTestConfig = TelemetryConfig{Dur: 5 * sim.Second, Streams: 2}

// TestTelemetryDeterminism is the canary: the same run executed serially and
// on a parallel pool must produce byte-identical artifacts.
func TestTelemetryDeterminism(t *testing.T) {
	job := func() *TelemetryArtifacts { return RunTelemetry(telemetryTestConfig) }
	serial := CollectWith(Runner{Workers: 1}, []func() *TelemetryArtifacts{job})
	parallel := CollectWith(Runner{Workers: 4},
		[]func() *TelemetryArtifacts{job, job, job, job})

	want := serial[0]
	for i, got := range parallel {
		if !bytes.Equal(got.TraceJSON, want.TraceJSON) {
			t.Errorf("run %d: trace JSON differs from serial run", i)
		}
		if got.Prom != want.Prom {
			t.Errorf("run %d: Prometheus text differs", i)
		}
		if got.CSV != want.CSV {
			t.Errorf("run %d: snapshot CSV differs", i)
		}
		if got.StageTable != want.StageTable {
			t.Errorf("run %d: stage table differs", i)
		}
		if got.Folded != want.Folded {
			t.Errorf("run %d: folded stacks differ", i)
		}
		if got.CycleTable != want.CycleTable {
			t.Errorf("run %d: cycle table differs", i)
		}
		if got.Summary != want.Summary {
			t.Errorf("run %d: summary differs", i)
		}
	}
}

// TestTelemetryComponents asserts every instrumented substrate shows up.
func TestTelemetryComponents(t *testing.T) {
	a := RunTelemetry(telemetryTestConfig)
	if len(a.Components) < 8 {
		t.Fatalf("got %d components (%v), want >= 8", len(a.Components), a.Components)
	}
	have := make(map[string]bool, len(a.Components))
	for _, c := range a.Components {
		have[c] = true
	}
	for _, want := range []string{
		"bus", "cluster", "disk", "dvcmnet", "dwcs", "host", "netsim", "nic", "transport",
	} {
		if !have[want] {
			t.Errorf("component %q missing from %v", want, a.Components)
		}
	}
	if a.SpanCount == 0 {
		t.Error("no span segments recorded")
	}
	if want := int(telemetryTestConfig.Dur / sim.Second); a.Snapshots != want {
		t.Errorf("snapshots = %d, want %d", a.Snapshots, want)
	}
	// Every causal stage must appear in the folded stacks: the cluster path
	// exercises disk/bus/queue/tx/wire/playout, the host path queue onward.
	for _, stage := range []string{"disk", "bus", "queue", "tx", "wire", "playout"} {
		if !strings.Contains(a.Folded, "frame;"+stage+";") {
			t.Errorf("stage %q missing from folded output", stage)
		}
	}
}

// TestTelemetryCycleReconciliation checks the profiler's attribution against
// the meter and the plain Table 2 measurement.
func TestTelemetryCycleReconciliation(t *testing.T) {
	a := RunTelemetry(telemetryTestConfig)
	if a.ProfiledCycles != a.MeteredCycles {
		t.Errorf("profiled %d cycles, metered %d — attribution must be exact",
			a.ProfiledCycles, a.MeteredCycles)
	}
	delta := a.ProfiledTime - a.BenchTotal
	if delta < 0 {
		delta = -delta
	}
	// Within one 66 MHz i960 cycle (~15.2 ns).
	if delta > 16 {
		t.Errorf("profiled pass %v vs Table 2 total %v: |Δ| = %dns, want <= 1 cycle",
			a.ProfiledTime, a.BenchTotal, delta)
	}
	if !strings.Contains(a.CycleTable, "dwcs") || !strings.Contains(a.CycleTable, "dispatch") {
		t.Errorf("cycle table missing expected rows:\n%s", a.CycleTable)
	}
}

// TestTelemetryExportFormats round-trips the Chrome trace and validates the
// Prometheus exposition.
func TestTelemetryExportFormats(t *testing.T) {
	a := RunTelemetry(telemetryTestConfig)

	events, err := telemetry.UnmarshalChrome(a.TraceJSON)
	if err != nil {
		t.Fatalf("UnmarshalChrome: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace JSON holds no events")
	}
	again, err := telemetry.MarshalChrome(events)
	if err != nil {
		t.Fatalf("MarshalChrome: %v", err)
	}
	if !bytes.Equal(again, a.TraceJSON) {
		t.Error("Chrome trace does not round-trip byte-identically")
	}

	families, samples, err := telemetry.CheckPrometheus(a.Prom)
	if err != nil {
		t.Fatalf("CheckPrometheus: %v", err)
	}
	if families < 8 || samples < families {
		t.Errorf("Prometheus dump too small: %d families, %d samples", families, samples)
	}
	if !strings.HasPrefix(a.CSV, "time_ms,component,metric,value\n") {
		t.Errorf("CSV missing header: %q", a.CSV[:min(len(a.CSV), 60)])
	}
}
