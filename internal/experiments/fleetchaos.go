// Fleet-chaos experiment: correlated failure domains and live stream
// migration on the partitioned fleet (cluster.RunFleetChaos), wrapped for
// the artifact writers and the CI determinism canary. The canary extends
// the fleet's byte-identical contract to chaos runs: the injected plan,
// every migration decision the controller makes, and all rendered
// artifacts must not depend on the worker count or on monolithic-vs-
// partitioned execution.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// FleetChaosConfig parameterizes the fleet-chaos experiment. Zero values
// take the cluster-layer defaults (8 cards × 2 streams over 6 s, one fault
// of each kind; see cluster.FleetChaosConfig).
type FleetChaosConfig struct {
	Cards          int
	StreamsPerCard int
	Dur            sim.Time
	Workers        int

	// Chaos severity: faults of each kind to draw. All three zero = one of
	// each; negative = none of that kind.
	HostCrashes   int
	NetPartitions int
	RollingDrains int
	FaultSeed     int64
}

// FleetChaosArtifacts is everything one chaos run exports. Every string is
// part of the byte-identical determinism contract; Rounds is not.
type FleetChaosArtifacts struct {
	Plan       string
	Summary    string
	Table      string
	Pulse      string
	MigLog     string
	Recovery   string
	Violations string
	CSV        string

	Live, Cold, Readds, Parked int
	ViolDuring, ViolOutside    int64
	Recv, Late                 int64
	Rounds                     int64
}

func (cfg FleetChaosConfig) cluster() cluster.FleetChaosConfig {
	return cluster.FleetChaosConfig{
		Cards: cfg.Cards, StreamsPerCard: cfg.StreamsPerCard,
		Dur: cfg.Dur, Workers: cfg.Workers,
		HostCrashes: cfg.HostCrashes, NetPartitions: cfg.NetPartitions,
		RollingDrains: cfg.RollingDrains, FaultSeed: cfg.FaultSeed,
	}
}

func chaosArts(r *cluster.FleetChaosResult) *FleetChaosArtifacts {
	return &FleetChaosArtifacts{
		Plan: r.Plan, Summary: r.Summary, Table: r.Table, Pulse: r.Pulse,
		MigLog: r.MigLog, Recovery: r.Recovery, Violations: r.Violations,
		CSV:  r.CSV,
		Live: r.LiveMigrations, Cold: r.ColdMigrations,
		Readds: r.Readds, Parked: r.Parked,
		ViolDuring: r.ViolDuring, ViolOutside: r.ViolOutside,
		Recv: r.TotalRecv, Late: r.TotalLate, Rounds: r.Rounds,
	}
}

// RunFleetChaos executes one chaos run on the partitioned fleet.
func RunFleetChaos(cfg FleetChaosConfig) *FleetChaosArtifacts {
	return chaosArts(cluster.RunFleetChaos(cfg.cluster()))
}

// FleetChaosDeterminism runs cfg monolithically, partitioned sequentially,
// and partitioned with cfg.Workers, and returns an error naming the first
// artifact that differs. nil means the chaos run kept the byte-identical
// contract for this configuration.
func FleetChaosDeterminism(cfg FleetChaosConfig) error {
	run := func(workers int, mono bool) map[string]string {
		c := cfg.cluster()
		c.Workers, c.Monolithic = workers, mono
		r := cluster.RunFleetChaos(c)
		return map[string]string{
			"plan": r.Plan, "summary": r.Summary, "table": r.Table,
			"pulse": r.Pulse, "miglog": r.MigLog, "recovery": r.Recovery,
			"violations": r.Violations, "csv": r.CSV,
		}
	}
	arts := []string{"plan", "summary", "table", "pulse", "miglog", "recovery", "violations", "csv"}
	ref := run(1, false)
	for name, variant := range map[string]map[string]string{
		"monolithic":                           run(0, true),
		fmt.Sprintf("workers=%d", cfg.Workers): run(cfg.Workers, false),
	} {
		for _, art := range arts {
			if variant[art] != ref[art] {
				return fmt.Errorf("fleet-chaos determinism: %s artifact %q diverged from sequential partitioned run", name, art)
			}
		}
	}
	return nil
}

// FleetChaosSweep runs the chaos scenario across fault severity × fleet
// size and renders a recovery table: how migration counts, recovery
// behaviour, and violation containment scale as the fleet grows and the
// correlated-fault load rises. Deterministic for a fixed config set.
func FleetChaosSweep(workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-22s %6s %6s %6s %6s %8s %10s %11s %8s\n",
		"cards", "severity", "live", "cold", "readd", "parked",
		"resumed", "violDuring", "violOutside", "recv")
	severities := []struct {
		name               string
		crash, part, drain int
	}{
		{"crash", 1, -1, -1},
		{"partition", -1, 1, -1},
		{"drain", -1, -1, 1},
		{"all-three", 1, 1, 1},
		{"2crash+part", 2, 1, -1},
	}
	for _, cards := range []int{8, 16} {
		for _, sev := range severities {
			a := RunFleetChaos(FleetChaosConfig{
				Cards: cards, Workers: workers,
				HostCrashes: sev.crash, NetPartitions: sev.part, RollingDrains: sev.drain,
			})
			moved := a.Live + a.Cold
			attempted := moved + a.Readds + a.Parked
			resumed := 100.0
			if attempted > 0 {
				resumed = 100 * float64(moved) / float64(attempted)
			}
			fmt.Fprintf(&b, "%-8d %-22s %6d %6d %6d %6d %7.0f%% %10d %11d %8d\n",
				cards, sev.name, a.Live, a.Cold, a.Readds, a.Parked,
				resumed, a.ViolDuring, a.ViolOutside, a.Recv)
		}
	}
	return b.String()
}
