package experiments

import (
	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// PathLatency measures one Table 4 configuration: the latency of a
// 1000-byte frame transfer from disk to a remote client, averaged over
// `transfers` strictly sequential transfers (§4.2.2: each transfer completes
// at the client before the next begins).
type PathLatency struct {
	Name     string
	PerFrame sim.Time
}

const (
	t4Transfers = 1000
	t4Frame     = 1000 // bytes
)

// clientRig is a switch + client measuring delivery times.
type clientRig struct {
	eng       *sim.Engine
	sw        *netsim.Switch
	client    *netsim.Client
	delivered func()
}

func newClientRig(eng *sim.Engine) *clientRig {
	r := &clientRig{eng: eng}
	r.client = netsim.NewClient(eng, "client")
	r.client.OnFrame = func(*netsim.Packet) {
		if r.delivered != nil {
			r.delivered()
		}
	}
	r.sw = netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	r.sw.Attach("client", netsim.Fast100(eng, "sw-client", r.client))
	return r
}

// runExptI measures path A (Figure 3): system disk → host filesystem →
// I/O-bus/system-bus crossing → host protocol stack → 82557 NI → network.
func runExptI(mkFS func(*sim.Engine, *disk.Disk) disk.FS, name string) PathLatency {
	eng := sim.NewEngine(1)
	rig := newClientRig(eng)
	hostLink := netsim.Fast100(eng, "host-eth", rig.sw)

	d := disk.New(eng, disk.DefaultSCSI("sys-disk"))
	fs := mkFS(eng, d)
	pci := bus.New(eng, bus.PCI("pci0"))
	sys := bus.New(eng, bus.SystemBus("sysbus"))
	bridge := bus.NewBridge(eng, pci, sys, 500*sim.Nanosecond)
	stack := netsim.HostStack()

	clip := mpeg.GenerateDefault()
	var start sim.Time
	var total sim.Time
	n := 0
	var step func()
	step = func() {
		if n == t4Transfers {
			return
		}
		start = eng.Now()
		f := clip.Frames[n%len(clip.Frames)]
		// Disk → filesystem buffers (crossing the PCI bridge into host
		// memory), then host stack, then the NI transmit.
		fs.Read(f.Offset, t4Frame, func() {
			bridge.Transfer(pci, t4Frame, func() {
				eng.After(stack.Tx, func() {
					rig.delivered = func() {
						total += eng.Now() - start
						n++
						step()
					}
					hostLink.Send(&netsim.Packet{Dst: "client", Bytes: t4Frame}, nil)
				})
			})
		})
	}
	step()
	eng.Run()
	return PathLatency{Name: name, PerFrame: total / t4Transfers}
}

// runExptII measures path C: NI-attached disk → NI CPU → network, on a
// single card with no other cards active.
func runExptII() PathLatency {
	eng := sim.NewEngine(1)
	rig := newClientRig(eng)
	pci := bus.New(eng, bus.PCI("pci0"))
	card := nic.New(eng, nic.Config{Name: "ni0", PCI: pci})
	d := disk.New(eng, disk.DefaultSCSI("ni-disk"))
	card.AttachDisk(d, disk.NewDOSFS(d))
	card.ConnectEthernet(netsim.Fast100(eng, "ni0-eth", rig.sw))

	clip := mpeg.GenerateDefault()
	var total sim.Time
	done := rtos.NewSemaphore(card.Kernel, "delivered", 0)
	rig.delivered = done.Give
	card.Kernel.Spawn("expt2", nic.PrioRelay, func(tc *rtos.TaskCtx) {
		for n := 0; n < t4Transfers; n++ {
			start := tc.Now()
			f := clip.Frames[n%len(clip.Frames)]
			tc.Await(func(cb func()) { card.FS.Read(f.Offset, t4Frame, cb) })
			card.Send(tc, &netsim.Packet{Src: card.Name, Dst: "client", Bytes: t4Frame})
			done.Take(tc) // strictly sequential transfers
			total += tc.Now() - start
		}
	})
	eng.Run()
	return PathLatency{Name: "II: NI Disk-NI CPU-Network", PerFrame: total / t4Transfers}
}

// runExptIII measures path B: disk on one card → PCI peer-to-peer DMA →
// dedicated scheduler/transmit card → network.
func runExptIII() PathLatency {
	eng := sim.NewEngine(1)
	rig := newClientRig(eng)
	pci := bus.New(eng, bus.PCI("pci0"))
	src := nic.New(eng, nic.Config{Name: "ni-disk", PCI: pci})
	d := disk.New(eng, disk.DefaultSCSI("ni-disk0"))
	src.AttachDisk(d, disk.NewDOSFS(d))
	tx := nic.New(eng, nic.Config{Name: "ni-tx", PCI: pci, CacheOn: true})
	tx.ConnectEthernet(netsim.Fast100(eng, "ni-tx-eth", rig.sw))

	clip := mpeg.GenerateDefault()
	var total sim.Time
	frameReady := rtos.NewSemaphore(tx.Kernel, "frame", 0)
	delivered := rtos.NewSemaphore(src.Kernel, "delivered", 0)
	rig.delivered = delivered.Give

	tx.Kernel.Spawn("expt3-tx", nic.PrioRelay, func(tc *rtos.TaskCtx) {
		for n := 0; n < t4Transfers; n++ {
			frameReady.Take(tc)
			tx.Send(tc, &netsim.Packet{Src: tx.Name, Dst: "client", Bytes: t4Frame})
		}
	})
	src.Kernel.Spawn("expt3-src", nic.PrioProducer, func(tc *rtos.TaskCtx) {
		for n := 0; n < t4Transfers; n++ {
			start := tc.Now()
			f := clip.Frames[n%len(clip.Frames)]
			tc.Await(func(cb func()) { src.FS.Read(f.Offset, t4Frame, cb) })
			tc.Await(func(cb func()) { src.PCI.DMA(t4Frame, cb) })
			frameReady.Give()
			delivered.Take(tc) // sequential: wait for client delivery
			total += tc.Now() - start
		}
	})
	eng.Run()
	return PathLatency{Name: "III: Disk-I/O Bus-NI CPU-Network", PerFrame: total / t4Transfers}
}

// RunTable4 regenerates Table 4: critical-path benchmarks for the three
// frame-transfer paths of Figure 3.
func RunTable4() *Result {
	ufs := runExptI(func(e *sim.Engine, d *disk.Disk) disk.FS { return disk.NewUFS(e, d) },
		"I: Disk-Host CPU-I/O Bus-Network (ufs)")
	vxfs := runExptI(func(e *sim.Engine, d *disk.Disk) disk.FS {
		f := disk.NewDOSFS(d)
		f.FATCached = false // the VxWorks dosFs mounted on Solaris
		return f
	}, "I: Disk-Host CPU-I/O Bus-Network (VxWorks fs)")
	two := runExptII()
	three := runExptIII()

	res := &Result{ID: "Table 4", Title: "Critical-path benchmarks (1000-byte frame, 1000 transfers)"}
	res.Add(ufs.Name, "ms", 1.0, ufs.PerFrame.Milliseconds())
	res.Add(vxfs.Name, "ms", 8.0, vxfs.PerFrame.Milliseconds())
	res.Add(two.Name, "ms", 5.4, two.PerFrame.Milliseconds())
	res.Add(three.Name, "ms", 5.415, three.PerFrame.Milliseconds())
	res.Note("III − II = %.3f ms (paper: 0.015 ms of PCI arbitration/synchronization)",
		(three.PerFrame - two.PerFrame).Milliseconds())
	return res
}

// RunTable5 regenerates Table 5: PCI card-to-card transfer benchmarks.
func RunTable5() *Result {
	eng := sim.NewEngine(1)
	seg := bus.New(eng, bus.PCI("pci0"))
	clip := mpeg.GenerateDefault()

	dmaTime := seg.DMATime(clip.Bytes)
	bw := float64(clip.Bytes) / dmaTime.Seconds() / 1e6

	res := &Result{ID: "Table 5", Title: "PCI card-to-card transfer benchmarks"}
	res.Add("MPEG file transfer by DMA (773665 bytes)", "µs", 11673.84, dmaTime.Microseconds())
	res.Add("DMA bandwidth", "MB/s", 66.27, bw)
	res.Add("Memory word read (PIO)", "µs", 3.6, seg.PIOReadTime().Microseconds())
	res.Add("Memory word write (PIO)", "µs", 3.1, seg.PIOWriteTime().Microseconds())
	res.Note("theoretical PCI peak 132 MB/s; burst overheads halve it, as measured in the paper")
	return res
}
