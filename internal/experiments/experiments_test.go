package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/nic"
	"repro/internal/sim"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %.2f, want %.2f ±%.0f%%", name, got, want, relTol*100)
	}
}

func TestResultRendering(t *testing.T) {
	res := &Result{ID: "Table X", Title: "demo"}
	res.Add("metric", "µs", 100, 110)
	res.Add("no-paper", "µs", 0, 5)
	res.Note("note %d", 7)
	out := res.String()
	for _, want := range []string{"Table X", "metric", "+10.0%", "note 7", "—"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if res.Rows[0].DevPct() != 10 {
		t.Errorf("DevPct = %v", res.Rows[0].DevPct())
	}
	if res.Rows[1].DevPct() != 0 {
		t.Errorf("DevPct without paper value = %v", res.Rows[1].DevPct())
	}
}

func TestTable1Shape(t *testing.T) {
	soft := RunMicrobench(cpu.SoftFP, false, nic.StoreDRAM)
	fix := RunMicrobench(cpu.FixedPoint, false, nic.StoreDRAM)
	if soft.Frames != 151 || fix.Frames != 151 {
		t.Fatalf("frames = %d/%d, want 151", soft.Frames, fix.Frames)
	}
	within(t, "softFP avg sched", soft.AvgSched.Microseconds(), 129.67, 0.15)
	within(t, "fixed avg sched", fix.AvgSched.Microseconds(), 108.48, 0.15)
	within(t, "softFP avg no-sched", soft.AvgNoSched.Microseconds(), 34.6, 0.15)
	within(t, "fixed avg no-sched", fix.AvgNoSched.Microseconds(), 30.35, 0.15)
	// Fixed-point saves ≈20 µs per decision (paper ≈21 µs).
	saving := (soft.AvgSched - fix.AvgSched).Microseconds()
	if saving < 15 || saving > 27 {
		t.Errorf("fixed-point saving = %.1f µs, want ≈21", saving)
	}
	if soft.AvgSched <= soft.AvgNoSched || fix.AvgSched <= fix.AvgNoSched {
		t.Error("scheduling must cost more than dispatch-only")
	}
}

func TestTable2ShapeAndCacheBenefit(t *testing.T) {
	softOn := RunMicrobench(cpu.SoftFP, true, nic.StoreDRAM)
	fixOn := RunMicrobench(cpu.FixedPoint, true, nic.StoreDRAM)
	softOff := RunMicrobench(cpu.SoftFP, false, nic.StoreDRAM)
	fixOff := RunMicrobench(cpu.FixedPoint, false, nic.StoreDRAM)
	within(t, "softFP cache-on avg sched", softOn.AvgSched.Microseconds(), 115.20, 0.15)
	within(t, "fixed cache-on avg sched", fixOn.AvgSched.Microseconds(), 94.60, 0.15)
	// Cache saves ≈14 µs per frame (paper 14.47 / 13.88).
	for _, c := range []struct {
		name    string
		on, off Microbench
	}{{"softFP", softOn, softOff}, {"fixed", fixOn, fixOff}} {
		d := (c.off.AvgSched - c.on.AvgSched).Microseconds()
		if d < 8 || d > 20 {
			t.Errorf("%s cache benefit = %.2f µs, want ≈14", c.name, d)
		}
	}
	// Scheduler overhead ≈66.8 µs (the paper's NI headline).
	within(t, "NI scheduling overhead", fixOn.Overhead().Microseconds(), 66.82, 0.12)
}

func TestTable3HardwareQueueComparable(t *testing.T) {
	hw := RunMicrobench(cpu.FixedPoint, true, nic.StoreHardwareQueue)
	dram := RunMicrobench(cpu.FixedPoint, true, nic.StoreDRAM)
	// §4.2.1: "comparable" — within a few percent either way.
	ratio := float64(hw.AvgSched) / float64(dram.AvgSched)
	if ratio < 0.85 || ratio > 1.1 {
		t.Fatalf("hw-queue/DRAM avg sched ratio = %.3f, want ≈1", ratio)
	}
	// With the cache disabled the register file must win: its accesses
	// generate no external bus cycles.
	hwOff := RunMicrobench(cpu.FixedPoint, false, nic.StoreHardwareQueue)
	dramOff := RunMicrobench(cpu.FixedPoint, false, nic.StoreDRAM)
	if hwOff.AvgSched >= dramOff.AvgSched {
		t.Errorf("cache-off: hw queue (%v) should beat DRAM (%v)", hwOff.AvgSched, dramOff.AvgSched)
	}
}

func TestHeadlineComparable(t *testing.T) {
	res := RunHeadline()
	host := res.Rows[0].Measured
	ni := res.Rows[1].Measured
	within(t, "host overhead", host, 50, 0.15)
	within(t, "NI overhead", ni, 65, 0.15)
	// "Comparable, although the i960 RD is a much slower processor."
	if ni/host > 2 {
		t.Errorf("NI/host overhead ratio = %.2f, want < 2", ni/host)
	}
}

func TestTable4Shape(t *testing.T) {
	res := RunTable4()
	var ufs, vxfs, two, three float64
	for _, r := range res.Rows {
		switch {
		case strings.Contains(r.Name, "(ufs)"):
			ufs = r.Measured
		case strings.Contains(r.Name, "VxWorks fs"):
			vxfs = r.Measured
		case strings.HasPrefix(r.Name, "II:"):
			two = r.Measured
		case strings.HasPrefix(r.Name, "III:"):
			three = r.Measured
		}
	}
	within(t, "Expt I ufs", ufs, 1.0, 0.30)
	within(t, "Expt I VxWorks fs", vxfs, 8.0, 0.20)
	within(t, "Expt II", two, 5.4, 0.10)
	within(t, "Expt III", three, 5.415, 0.10)
	// Orderings the paper's analysis rests on.
	if !(ufs < two && two < vxfs) {
		t.Errorf("ordering violated: ufs=%.2f II=%.2f vxfs=%.2f", ufs, two, vxfs)
	}
	// III − II is the ~15 µs PCI hop.
	delta := (three - two) * 1000 // µs
	if delta < 10 || delta > 40 {
		t.Errorf("III−II = %.1f µs, want ≈15–20", delta)
	}
}

func TestTable5Shape(t *testing.T) {
	res := RunTable5()
	for _, r := range res.Rows {
		if r.Paper == 0 {
			continue
		}
		within(t, r.Name, r.Measured, r.Paper, 0.05)
	}
}

// figureDur keeps the figure tests fast while preserving two full load-
// modulation cycles.
const figureDur = FigureDuration

func TestHostFiguresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure runs are slow")
	}
	h := RunHostFigures(figureDur)

	// Figure 6: utilization levels.
	within(t, "no-load mean util", h.Runs[0].Util.Mean(), 15, 0.35)
	within(t, "45% mean util", h.Runs[45].Util.Mean(), 45, 0.15)
	within(t, "60% mean util", h.Runs[60].Util.Mean(), 60, 0.15)
	if h.Runs[60].Util.Max() < 80 {
		t.Errorf("60%% run peak util = %.1f, want bursts above 80", h.Runs[60].Util.Max())
	}

	// Figure 7: bandwidth degradation, per stream.
	from, to := PeakWindow(figureDur)
	noLoad := h.Runs[0].SettleBW("s1", figureDur)
	at45 := h.Runs[45].SettleBWWindow("s1", from, to)
	at60 := h.Runs[60].SettleBWWindow("s1", from, to)
	within(t, "no-load settling bw", noLoad, 256000, 0.10)
	if at45 < 0.75*noLoad || at45 >= noLoad {
		t.Errorf("45%% bw = %.0f, want mild degradation from %.0f", at45, noLoad)
	}
	if at60 > 0.65*noLoad {
		t.Errorf("60%% bw = %.0f, want severe degradation from %.0f", at60, noLoad)
	}
	if !(at60 < at45 && at45 < noLoad) {
		t.Errorf("bw must degrade monotonically: %.0f, %.0f, %.0f", noLoad, at45, at60)
	}

	// Drops drive the degradation.
	if h.Runs[0].Dropped != 0 {
		t.Errorf("no-load run dropped %d frames", h.Runs[0].Dropped)
	}
	if h.Runs[60].Dropped <= h.Runs[45].Dropped || h.Runs[45].Dropped == 0 {
		t.Errorf("drops must grow with load: %d vs %d", h.Runs[45].Dropped, h.Runs[60].Dropped)
	}

	// Figure 8: queuing delay grows with load.
	d0 := h.Runs[0].QDelay["s1"].Max()
	d45 := h.Runs[45].QDelay["s1"].Max()
	d60 := h.Runs[60].QDelay["s1"].Max()
	within(t, "no-load max qdelay (ms)", d0.Milliseconds(), 10000, 0.15)
	if d45 < d0 {
		t.Errorf("45%% delay %v below no-load %v", d45, d0)
	}
	if float64(d60) < 1.5*float64(d0) {
		t.Errorf("60%% delay %v, want ≥1.5× no-load %v", d60, d0)
	}
}

func TestNIFiguresImmunity(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure runs are slow")
	}
	dur := 30 * sim.Second
	f := RunNIFigures(dur)

	// Figure 9: settling bandwidth ≈260 kbps, identical with and without
	// 60% host load.
	bw0 := f.NoLoad.SettleBW("s1", dur)
	bw60 := f.Loaded60.SettleBW("s1", dur)
	within(t, "NI settling bw", bw0, 256000, 0.10)
	if math.Abs(bw60-bw0) > 0.01*bw0 {
		t.Errorf("NI bandwidth moved under host load: %.0f vs %.0f", bw60, bw0)
	}
	if f.Loaded60.Dropped != 0 {
		t.Errorf("NI scheduler dropped %d frames under host load", f.Loaded60.Dropped)
	}

	// Figure 10: queuing delay ≈10–11 s, unchanged under load.
	d0 := f.NoLoad.QDelay["s1"].Max()
	d60 := f.Loaded60.QDelay["s1"].Max()
	within(t, "NI max qdelay (ms)", d0.Milliseconds(), 11000, 0.15)
	reldev := math.Abs(float64(d60-d0)) / float64(d0)
	if reldev > 0.02 {
		t.Errorf("NI delay moved under load: %v vs %v", d60, d0)
	}
}

func TestNISameSegmentAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure runs are slow")
	}
	// Placing the web NI's DMA traffic on the scheduler's bus segment (the
	// configuration the paper's Figure 5 avoids) must not help, and the
	// separated configuration must be at least as good. The full load ×
	// segment matrix fans out across the worker pool.
	dur := 20 * sim.Second
	matrix := RunNIMatrix([]float64{0, 60}, dur)
	for _, load := range []float64{0, 60} {
		sep, same := matrix[load][false], matrix[load][true]
		if same.SettleBW("s1", dur) > sep.SettleBW("s1", dur)*1.01 {
			t.Errorf("load %.0f%%: same-segment run outperformed separated run: %.0f vs %.0f",
				load, same.SettleBW("s1", dur), sep.SettleBW("s1", dur))
		}
	}
	// The matrix's separated 60% cell must agree with the direct run — the
	// fan-out must not perturb per-run determinism.
	direct := RunNILoad(60, dur, false)
	if got, want := matrix[60][false].Sent, direct.Sent; got != want {
		t.Errorf("parallel matrix diverged from direct run: sent %d vs %d", got, want)
	}
}

func TestFigureRunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a := RunHostLoad(45, 20*sim.Second)
	b := RunHostLoad(45, 20*sim.Second)
	if a.Sent != b.Sent || a.Dropped != b.Dropped {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Sent, a.Dropped, b.Sent, b.Dropped)
	}
}

func TestStreamScalingShape(t *testing.T) {
	points, res := RunStreamScaling([]int{4, 32, 128})
	if len(points) != 12 || len(res.Rows) != 12 { // 3 counts × 4 selectors
		t.Fatalf("points = %d", len(points))
	}
	get := func(sel string, n int) ScalingPoint {
		for _, p := range points {
			if p.Selector.String() == sel && p.Streams == n {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", sel, n)
		return ScalingPoint{}
	}
	// The scan grows roughly linearly with the stream count...
	scanRatio := get("scan", 128).MicrosPerDec / get("scan", 4).MicrosPerDec
	if scanRatio < 3 {
		t.Errorf("scan 128/4 cost ratio = %.1f, expected clear growth", scanRatio)
	}
	// ...while the heap stays much flatter and wins at scale.
	heapRatio := get("heaps", 128).MicrosPerDec / get("heaps", 4).MicrosPerDec
	if heapRatio > scanRatio/2 {
		t.Errorf("heap ratio %.1f not clearly flatter than scan %.1f", heapRatio, scanRatio)
	}
	if get("heaps", 128).MicrosPerDec >= get("scan", 128).MicrosPerDec {
		t.Error("heaps should beat scan at 128 streams")
	}
	// At the paper's own scale (4 streams) all four representations are
	// comparable — which is why the embedded code uses the scan.
	base := get("scan", 4).MicrosPerDec
	for _, sel := range []string{"heaps", "sortedList", "calendar"} {
		v := get(sel, 4).MicrosPerDec
		if v > 1.5*base || v < base/2 {
			t.Errorf("at 4 streams %s (%.1f) should be comparable to scan (%.1f)", sel, v, base)
		}
	}
	// The sorted list's O(1) best keeps it competitive throughout.
	if get("sortedList", 128).MicrosPerDec > get("scan", 128).MicrosPerDec {
		t.Error("sorted list should beat the scan at 128 streams")
	}
}

func TestJitterComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	h := RunHostFigures(figureDur)
	n := RunNIFigures(30 * sim.Second)
	res := JitterComparison(h, n)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	host0 := h.Runs[0].Jitter["s1"]
	host60 := h.Runs[60].Jitter["s1"]
	ni0 := n.NoLoad.Jitter["s1"]
	ni60 := n.Loaded60.Jitter["s1"]
	// Host jitter grows with load (§4.2.3).
	if float64(host60) < 1.5*float64(host0) {
		t.Errorf("host jitter did not grow with load: %v → %v", host0, host60)
	}
	// NI jitter is unchanged by host load and below the loaded host's.
	if ni60 != ni0 {
		t.Errorf("NI jitter moved under load: %v vs %v", ni0, ni60)
	}
	if ni60 >= host60 {
		t.Errorf("NI jitter (%v) should undercut loaded host jitter (%v)", ni60, host60)
	}
}
