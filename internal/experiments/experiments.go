// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each Run* function builds the corresponding testbed from
// the substrate packages, executes it deterministically, and returns the
// measured values alongside the paper's reported numbers so cmd/reprogen,
// the test suite, and bench_test.go all share one source of truth.
//
// The reproduction criterion is *shape*, not absolute equality (DESIGN.md
// §5): the simulated substrate is calibrated from the paper's own
// measurements, so headline values land close, but what the tests enforce
// is who wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Name     string
	Unit     string
	Paper    float64 // value reported in the paper (0 if none)
	Measured float64
}

// DevPct returns the relative deviation from the paper value in percent.
func (r Row) DevPct() float64 {
	if r.Paper == 0 {
		return 0
	}
	return 100 * (r.Measured - r.Paper) / r.Paper
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // "Table 1", "Figure 7", ...
	Title string
	Rows  []Row
	Notes []string
}

// Add appends a comparison row.
func (res *Result) Add(name, unit string, paper, measured float64) {
	res.Rows = append(res.Rows, Row{Name: name, Unit: unit, Paper: paper, Measured: measured})
}

// Note appends a free-form note rendered under the table.
func (res *Result) Note(format string, args ...any) {
	res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (res *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", res.ID, res.Title)
	w := 0
	for _, r := range res.Rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %12s  %12s  %8s  %s\n", w, "metric", "paper", "measured", "dev", "unit")
	for _, r := range res.Rows {
		paper := "—"
		dev := "—"
		if r.Paper != 0 {
			paper = fmt.Sprintf("%.2f", r.Paper)
			dev = fmt.Sprintf("%+.1f%%", r.DevPct())
		}
		fmt.Fprintf(&b, "  %-*s  %12s  %12.2f  %8s  %s\n", w, r.Name, paper, r.Measured, dev, r.Unit)
	}
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "  · %s\n", n)
	}
	return b.String()
}
