// Overload experiment: the robustness counterpart to claim 4 (§3.1.2, §4.2.3).
// The i960 RD carries only 4 MB of local memory, so an NI-resident scheduler
// cannot survive overload by queueing the way a host process can. This
// experiment sweeps offered load past capacity — a producer-oversubscription
// axis crossed with the paper's 45%/60% host web-load profiles — and runs each
// cell on two testbeds:
//
//   - the NI testbed, protected by an overload.Controller: budget admission
//     control at the high-water mark, tx-queue backpressure into the disk and
//     peer-DMA producers, and the graceful-degradation ladder
//     (shed-within-tolerance → drop B → drop B+P → revoke, all reversible);
//   - the host baseline of Figure 7, given effectively unbounded rings, which
//     absorbs the same overload by letting its backlog grow without limit.
//
// The claim reproduced: the NI degrades *gracefully* — zero budget breaches,
// resident bytes bounded by the card budget, admission rejects instead of
// collapse — while the host baseline's backlog and queuing delay blow up.
// Every cell runs on a private seed-42 engine, so the sweep is byte-identical
// at any worker count.
package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/faults"
	"repro/internal/fixed"
	"repro/internal/host"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/webload"
)

// Overload testbed parameters.
const (
	// overloadCardMem scales the card memory down from the real 4 MB so a
	// short run with a handful of streams reaches the memory ceiling; the
	// mechanisms under test are identical, only the wall is closer.
	overloadCardMem = 1536 << 10
	// overloadHostRing is the host baseline's per-stream ring capacity —
	// large enough that the host never refuses a frame and its backlog can
	// grow "without bound" within the run, the collapse the claim contrasts.
	overloadHostRing = 4096
	// overloadSampleEvery is the peak-tracking sample period.
	overloadSampleEvery = 100 * sim.Millisecond
	// overloadBPHigh/Low tune the backpressure gate near ring-full for this
	// testbed, so the pressure signal can cross the ladder's escalation
	// threshold instead of being flattened by early source gating.
	overloadBPHigh = 240
	overloadBPLow  = 120
	// At oversubscription >= overloadLeakMult a faults.MemLeak event erodes
	// the budget mid-run (dur/2 .. 3·dur/4) at overloadLeakKBps KB/s. The
	// squeeze pins occupancy above the escalation threshold long enough to
	// drive the ladder to its revoke rung; fault recovery reclaims the leak
	// and the controller reinstates the revoked streams.
	overloadLeakMult = 8
	overloadLeakKBps = 128
)

// overloadStreams returns the four resident streams in descending value
// order for revocation: s3 (loss 3/4) is the least valuable, then s2 and s1
// (loss 1/2, higher ID first), then s4 (loss 1/4).
func overloadStreams(nominal int64) []dwcs.StreamSpec {
	loss := []fixed.Frac{fixed.New(1, 2), fixed.New(1, 2), fixed.New(3, 4), fixed.New(1, 4)}
	specs := make([]dwcs.StreamSpec, len(loss))
	for i := range specs {
		specs[i] = dwcs.StreamSpec{
			ID:           i + 1,
			Name:         fmt.Sprintf("s%d", i+1),
			Period:       streamPeriod,
			Loss:         loss[i],
			Lossy:        true,
			BufCap:       streamBufCap,
			NominalBytes: nominal,
		}
	}
	return specs
}

// overloadLateStreams returns the mid-run setup attempts that exercise the
// admission path under live pressure.
func overloadLateStreams(nominal int64) []dwcs.StreamSpec {
	specs := make([]dwcs.StreamSpec, 4)
	for i := range specs {
		specs[i] = dwcs.StreamSpec{
			ID:           11 + i,
			Name:         fmt.Sprintf("o%d", i+1),
			Period:       streamPeriod,
			Loss:         fixed.New(1, 2),
			Lossy:        true,
			BufCap:       streamBufCap,
			NominalBytes: nominal,
		}
	}
	return specs
}

// OverloadPoint is one (web-load, oversubscription) cell of the sweep, run on
// both testbeds.
type OverloadPoint struct {
	Load float64 // host web-load percent (0, 45, 60)
	Mult int     // producer oversubscription multiple (1 = at service rate)

	// NI testbed (overload controller attached).
	NISent            int64
	NIDropped         int64 // deadline drops + tolerant sheds (scheduler side)
	NIShedTolerant    int64 // ladder rung 1: shed within DWCS loss windows
	NIShedB           int64 // ladder rung 2: B frames skipped at the source
	NIShedP           int64 // ladder rung 3: P frames skipped at the source
	NIRevoked         int64 // ladder rung 4: streams revoked
	NIReinstated      int64 // revocations reversed after pressure cleared
	NIRejects         int64 // stream setups refused at the high-water mark
	NILateAdmits      int64 // mid-run setups admitted on first try
	NIRetryAdmits     int64 // rejected setups admitted later from the FIFO retry queue
	NIWaiting         int   // setups still queued for readmission at end of run
	NIBreaches        int64 // accounted bytes over the absolute budget (claim: 0)
	NIBudgetPeak      int64 // peak accounted bytes
	NIBudgetSize      int64 // absolute budget
	NIQueuedPeakBytes int64 // peak payload bytes resident in scheduler rings
	NIViolations      int64 // DWCS window violations on live streams
	NIThrottled       int64 // producer fetches held by backpressure/headroom
	NIBPEngages       int64 // backpressure gate closures
	NILeakReclaimed   int64 // bytes a MemLeak fault pinned, reclaimed at recovery
	NIMaxRung         overload.Rung
	NITransitions     int64
	NIEvals           [5]int64 // controller evaluations spent at each rung
	NIGoodputKbps     float64

	// Host baseline (same streams, effectively unbounded rings).
	HostSent            int64
	HostDropped         int64
	HostViolations      int64
	HostQueuedPeakBytes int64
	HostMaxQDelayMs     int64
	HostGoodputKbps     float64
}

// OverloadConfig parameterizes RunOverload.
type OverloadConfig struct {
	Dur     sim.Time  // observation length per cell; 0 = 30 s
	Loads   []float64 // web-load percents; nil = {0, 45, 60}
	Mults   []int     // oversubscription multiples; nil = {1, 4, 8}
	Workers int       // worker pool for the sweep; 0 = GOMAXPROCS
}

// OverloadArtifacts is everything RunOverload produces. All four renderings
// are deterministic functions of the points, in grid order.
type OverloadArtifacts struct {
	Dur    sim.Time
	Points []*OverloadPoint // row-major (load, mult)

	Table   *Result
	Ladder  string // per-cell ladder/admission summary (pinned by OVERLOAD_BASELINE.txt)
	CSV     string
	Summary string
}

// RunOverload executes the overload sweep: every cell is two independent
// simulations (NI protected, host baseline) fanned across the worker pool and
// reassembled in grid order.
func RunOverload(cfg OverloadConfig) *OverloadArtifacts {
	if cfg.Dur == 0 {
		cfg.Dur = 30 * sim.Second
	}
	if cfg.Loads == nil {
		cfg.Loads = []float64{0, 45, 60}
	}
	if cfg.Mults == nil {
		cfg.Mults = []int{1, 4, 8}
	}
	type cell struct {
		load float64
		mult int
	}
	var cells []cell
	for _, l := range cfg.Loads {
		for _, m := range cfg.Mults {
			cells = append(cells, cell{l, m})
		}
	}
	jobs := make([]func() *OverloadPoint, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func() *OverloadPoint {
			pt := runOverloadNI(c.load, c.mult, cfg.Dur)
			runOverloadHost(pt, c.load, c.mult, cfg.Dur)
			return pt
		}
	}
	points := CollectWith(Runner{Workers: cfg.Workers}, jobs)
	a := &OverloadArtifacts{Dur: cfg.Dur, Points: points}
	a.Table = overloadTable(points)
	a.Ladder = overloadLadder(points)
	a.CSV = overloadCSV(points)
	a.Summary = overloadSummary(points)
	return a
}

// runOverloadNI runs one cell on the protected NI testbed: the RunNILoad
// topology (disk card feeding a dedicated scheduler card over PCI, web load
// on the host CPU and the other bus segment) with an overload controller
// attached and four mid-run setup attempts probing admission.
func runOverloadNI(loadPct float64, mult int, dur sim.Time) *OverloadPoint {
	pt := &OverloadPoint{Load: loadPct, Mult: mult}
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 1, 10*sim.Millisecond)
	webload.Daemons(eng, sys)

	seg0 := bus.New(eng, bus.PCI("pci0")) // web NI segment
	seg1 := bus.New(eng, bus.PCI("pci1")) // scheduler segment
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)

	diskCard := nic.New(eng, nic.Config{Name: "ni-disk", PCI: seg1})
	d := disk.New(eng, disk.DefaultSCSI("ni-disk0"))
	diskCard.AttachDisk(d, disk.NewDOSFS(d))
	schedCard := nic.New(eng, nic.Config{
		Name: "ni-sched", PCI: seg1, CacheOn: true, Memory: overloadCardMem,
	})
	schedCard.ConnectEthernet(netsim.Fast100(eng, "ni-sched-eth", sw))

	ext, err := schedCard.LoadScheduler(nic.SchedulerConfig{EligibleEarly: eligibleEarly})
	if err != nil {
		panic(err)
	}
	ctl := overload.NewController(schedCard.Name, schedCard.Mem.Size())
	ctl.BP.High, ctl.BP.Low = overloadBPHigh, overloadBPLow
	ctl.Ladder.OnChange = func(_, to overload.Rung) {
		if to > pt.NIMaxRung {
			pt.NIMaxRung = to
		}
	}
	ext.AttachOverload(ctl)

	clip := mpeg.GenerateDefault()
	nominal := clip.MeanFrameSize()
	base := overloadStreams(nominal)
	late := overloadLateStreams(nominal)

	clients := make(map[int]*netsim.Client)
	for _, spec := range append(append([]dwcs.StreamSpec{}, base...), late...) {
		cl := netsim.NewClient(eng, "client-"+spec.Name)
		sw.Attach(cl.Name, netsim.Fast100(eng, "sw-"+cl.Name, cl))
		clients[spec.ID] = cl
	}

	every := streamPeriod / sim.Time(mult)
	producers := make(map[int]*nic.Producer)
	spawn := func(spec dwcs.StreamSpec) {
		producers[spec.ID] = ext.SpawnPeerProducer(diskCard, clip, spec.ID,
			"client-"+spec.Name, every, 1<<30)
	}
	// A reinstated stream gets its producer back — the revocation rung is
	// fully reversible end to end.
	ext.OnReinstate = spawn
	for _, spec := range base {
		if err := ext.AddStream(spec); err != nil {
			panic(err)
		}
		spawn(spec)
	}

	// Mid-run setup attempts: under pressure they are refused at the
	// high-water mark and queue for FIFO readmission; at service-rate load
	// they are admitted outright.
	for i, spec := range late {
		spec := spec
		eng.At(dur/4+sim.Time(i)*200*sim.Millisecond, func() {
			err := ext.AddStream(spec)
			if err == nil {
				pt.NILateAdmits++
				spawn(spec)
				return
			}
			if !errors.Is(err, overload.ErrAdmission) {
				panic(err)
			}
			// Refused at the high-water mark: queue for FIFO readmission. The
			// retry probes CanAdmit first — a waiter woken while the budget is
			// still too tight for this footprint re-enrolls at the back
			// without burning another reject.
			cost := nic.StreamMemCost(spec)
			var retry func()
			retry = func() {
				if !ctl.Budget.CanAdmit(cost.Projected()) {
					ctl.Budget.AwaitSpace(retry)
					return
				}
				if err := ext.AddStream(spec); err == nil {
					pt.NIRetryAdmits++
					spawn(spec)
					return
				}
				ctl.Budget.AwaitSpace(retry)
			}
			ctl.Budget.AwaitSpace(retry)
		})
	}

	// Heaviest cells also take a mem-leak fault: a card task stops freeing,
	// its allocations accounted as ClassLeak. The leak allocates through the
	// card allocator, so it consumes free memory but can never breach the
	// absolute budget — producers are squeezed out instead, the ladder climbs
	// to revoke, and recovery reclaims the leak so revocations reverse.
	if mult >= overloadLeakMult {
		plan := &faults.Plan{Events: []faults.Event{{
			At: dur / 2, Duration: dur / 4, Kind: faults.MemLeak,
			Target: schedCard.Name, Factor: overloadLeakKBps,
		}}}
		var stopLeak func()
		inj := faults.InjectorFuncs{
			OnInject: func(e faults.Event) {
				per := (e.Factor << 10) * int64(overloadSampleEvery) / int64(sim.Second)
				stopLeak = eng.Every(overloadSampleEvery, func() {
					n := per
					if free := ctl.Budget.Size() - ctl.Budget.Used(); free < n {
						n = free
					}
					if n > 0 {
						ctl.Budget.Leak(n)
					}
				})
			},
			OnRecover: func(e faults.Event) {
				stopLeak()
				pt.NILeakReclaimed = ctl.Budget.ReclaimLeak()
			},
		}
		if err := plan.Arm(eng, inj, nil); err != nil {
			panic(err)
		}
	}

	if loadPct > 0 {
		g := webload.NewGenerator(eng, sys, webload.TargetUtilization(loadName(loadPct), loadPct, 1))
		g.Start()
		eng.Every(250*sim.Millisecond, func() {
			seg0.DMA(64<<10, nil)
		})
	}

	eng.Every(overloadSampleEvery, func() {
		if q := ext.Sched.QueuedBytes(); q > pt.NIQueuedPeakBytes {
			pt.NIQueuedPeakBytes = q
		}
	})

	eng.RunUntil(dur)

	pt.NISent = ext.Sent
	pt.NIDropped = ext.Dropped
	pt.NIShedTolerant = ctl.ShedTolerantFrames
	pt.NIShedB = ctl.ShedBFrames
	pt.NIShedP = ctl.ShedPFrames
	pt.NIRevoked = ctl.Revoked
	pt.NIReinstated = ctl.Reinstated
	pt.NIRejects = ctl.Budget.Rejects
	pt.NIWaiting = ctl.Budget.Waiting()
	pt.NIBreaches = ctl.Budget.Breaches
	pt.NIBudgetPeak = ctl.Budget.Peak()
	pt.NIBudgetSize = ctl.Budget.Size()
	pt.NIBPEngages = ctl.BP.Engages
	pt.NITransitions = ctl.Ladder.Transitions
	for r := overload.RungNone; r <= overload.RungRevoke; r++ {
		pt.NIEvals[r] = ctl.Ladder.Evals[r]
	}
	for _, id := range ext.Sched.StreamIDs() {
		if st, err := ext.Sched.Stats(id); err == nil {
			pt.NIViolations += st.Violations
		}
	}
	for _, p := range producers {
		pt.NIThrottled += p.Throttled
	}
	var recv int64
	for _, cl := range clients {
		recv += cl.RecvBytes
	}
	pt.NIGoodputKbps = float64(recv*8) / dur.Seconds() / 1000
	return pt
}

// runOverloadHost runs the same cell on the Figure 7 host baseline, with
// per-stream rings deep enough that nothing is ever refused: the backlog
// simply grows, which is the collapse the NI's budget forbids.
func runOverloadHost(pt *OverloadPoint, loadPct float64, mult int, dur sim.Time) {
	eng := sim.NewEngine(42)
	sys := hostos.New(eng, 2, 15*sim.Millisecond)
	webload.Daemons(eng, sys)

	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	clip := mpeg.GenerateDefault()
	specs := overloadStreams(clip.MeanFrameSize())
	for i := range specs {
		specs[i].BufCap = overloadHostRing
	}
	clients := make([]*netsim.Client, len(specs))
	for i, spec := range specs {
		cl := netsim.NewClient(eng, "client-"+spec.Name)
		sw.Attach(cl.Name, netsim.Fast100(eng, "sw-"+cl.Name, cl))
		clients[i] = cl
	}
	link := netsim.Fast100(eng, "host-eth", sw)

	sched := host.NewScheduler(eng, sys, link, host.SchedulerConfig{
		CPU: 0, EligibleEarly: eligibleEarly,
	})
	every := streamPeriod / sim.Time(mult)
	for _, spec := range specs {
		if err := sched.AddStream(spec, "client-"+spec.Name); err != nil {
			panic(err)
		}
		host.StartProducer(eng, sys, sched, host.ProducerConfig{
			Clip: clip, StreamID: spec.ID, Every: every,
			PerFrameCPU: producerFrameCPU, CPU: hostos.AnyCPU, Loop: true,
		})
	}
	if loadPct > 0 {
		webPct := loadPct - baselineUtilPct
		if webPct < 0 {
			webPct = 0
		}
		webload.NewGenerator(eng, sys, webload.TargetUtilization(loadName(loadPct), webPct, 2)).Start()
	}

	eng.Every(overloadSampleEvery, func() {
		if q := sched.QueuedBytes(); q > pt.HostQueuedPeakBytes {
			pt.HostQueuedPeakBytes = q
		}
	})

	eng.RunUntil(dur)

	pt.HostSent = sched.Sent
	pt.HostDropped = sched.Dropped
	for _, spec := range specs {
		if st, err := sched.Sched.Stats(spec.ID); err == nil {
			pt.HostViolations += st.Violations
		}
		if t := sched.QDelay[spec.ID]; t != nil {
			if ms := int64(t.Max().Milliseconds()); ms > pt.HostMaxQDelayMs {
				pt.HostMaxQDelayMs = ms
			}
		}
	}
	var recv int64
	for _, cl := range clients {
		recv += cl.RecvBytes
	}
	pt.HostGoodputKbps = float64(recv*8) / dur.Seconds() / 1000
}

// worst returns the highest-pressure cell (last grid point: max load × max
// oversubscription).
func worst(points []*OverloadPoint) *OverloadPoint {
	return points[len(points)-1]
}

// overloadTable renders the claim-4 comparison.
func overloadTable(points []*OverloadPoint) *Result {
	res := &Result{ID: "Overload", Title: "Overload protection: NI budget vs host collapse"}
	var breaches, rejects, revoked, reinstated int64
	var maxNIQueued int64
	for _, pt := range points {
		breaches += pt.NIBreaches
		rejects += pt.NIRejects
		revoked += pt.NIRevoked
		reinstated += pt.NIReinstated
		if pt.NIBudgetPeak > maxNIQueued {
			maxNIQueued = pt.NIBudgetPeak
		}
	}
	w := worst(points)
	res.Add("NI budget breaches, all cells", "", 0, float64(breaches))
	res.Add("NI peak accounted bytes, all cells", "bytes", 0, float64(maxNIQueued))
	res.Add("NI memory budget", "bytes", 0, float64(w.NIBudgetSize))
	res.Add("admission rejects, all cells", "", 0, float64(rejects))
	res.Add("streams revoked / reinstated", "", 0, float64(revoked))
	res.Add(fmt.Sprintf("NI ring bytes, %.0f%%/%dx", w.Load, w.Mult), "bytes", 0, float64(w.NIQueuedPeakBytes))
	res.Add(fmt.Sprintf("host ring bytes, %.0f%%/%dx", w.Load, w.Mult), "bytes", 0, float64(w.HostQueuedPeakBytes))
	res.Add(fmt.Sprintf("NI violations, %.0f%%/%dx", w.Load, w.Mult), "frames", 0, float64(w.NIViolations))
	res.Add(fmt.Sprintf("host violations, %.0f%%/%dx", w.Load, w.Mult), "frames", 0, float64(w.HostViolations))
	res.Add(fmt.Sprintf("host max queuing delay, %.0f%%/%dx", w.Load, w.Mult), "ms", 0, float64(w.HostMaxQDelayMs))
	res.Note("reinstated %d of %d revocations; %d setups still queued for readmission",
		reinstated, revoked, w.NIWaiting)
	if w.NIBudgetSize > 0 {
		res.Note("worst-cell host backlog = %.1f× the whole NI memory budget",
			float64(w.HostQueuedPeakBytes)/float64(w.NIBudgetSize))
	}
	return res
}

// overloadLadder renders the per-cell control summary pinned by
// OVERLOAD_BASELINE.txt: which rungs each cell reached, what each mechanism
// did, and the zero-breach invariant.
func overloadLadder(points []*OverloadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload ladder/admission summary (%d cells)\n", len(points))
	fmt.Fprintf(&b, "%-10s %-5s %-8s %6s %6s %6s %6s %6s %6s %7s %7s %8s %9s\n",
		"load", "mult", "max_rung", "trans", "shed", "dropB", "dropP", "revok", "reins",
		"rejects", "admits", "breaches", "bp_engag")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-10s %-5d %-8s %6d %6d %6d %6d %6d %6d %7d %7d %8d %9d\n",
			loadName(pt.Load), pt.Mult, pt.NIMaxRung, pt.NITransitions,
			pt.NIShedTolerant, pt.NIShedB, pt.NIShedP, pt.NIRevoked, pt.NIReinstated,
			pt.NIRejects, pt.NILateAdmits+pt.NIRetryAdmits, pt.NIBreaches, pt.NIBPEngages)
	}
	return b.String()
}

// overloadCSV renders the full grid, one row per cell.
func overloadCSV(points []*OverloadPoint) string {
	var b strings.Builder
	b.WriteString("load_pct,oversub,ni_sent,ni_dropped,ni_shed_tol,ni_shed_b,ni_shed_p," +
		"ni_revoked,ni_reinstated,ni_rejects,ni_late_admits,ni_retry_admits,ni_waiting," +
		"ni_breaches,ni_budget_peak,ni_budget_size,ni_ring_peak_bytes,ni_violations," +
		"ni_throttled,ni_bp_engages,ni_leak_reclaimed,ni_max_rung,ni_goodput_kbps," +
		"host_sent,host_dropped,host_violations,host_ring_peak_bytes,host_max_qdelay_ms,host_goodput_kbps\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%d,%d,%d,%d,%d,%.1f\n",
			pt.Load, pt.Mult, pt.NISent, pt.NIDropped, pt.NIShedTolerant, pt.NIShedB,
			pt.NIShedP, pt.NIRevoked, pt.NIReinstated, pt.NIRejects, pt.NILateAdmits,
			pt.NIRetryAdmits, pt.NIWaiting, pt.NIBreaches, pt.NIBudgetPeak, pt.NIBudgetSize,
			pt.NIQueuedPeakBytes, pt.NIViolations, pt.NIThrottled, pt.NIBPEngages,
			pt.NILeakReclaimed, int(pt.NIMaxRung), pt.NIGoodputKbps,
			pt.HostSent, pt.HostDropped, pt.HostViolations, pt.HostQueuedPeakBytes,
			pt.HostMaxQDelayMs, pt.HostGoodputKbps)
	}
	return b.String()
}

// overloadSummary renders the claim verdicts as prose.
func overloadSummary(points []*OverloadPoint) string {
	var b strings.Builder
	var breaches int64
	bounded := true
	for _, pt := range points {
		breaches += pt.NIBreaches
		if pt.NIBudgetPeak > pt.NIBudgetSize {
			bounded = false
		}
	}
	w := worst(points)
	fmt.Fprintf(&b, "Overload sweep: %d cells (web load × producer oversubscription)\n", len(points))
	fmt.Fprintf(&b, "  budget breaches across all cells: %d (claim: 0)\n", breaches)
	fmt.Fprintf(&b, "  NI resident bytes bounded by the card budget in every cell: %v\n", bounded)
	fmt.Fprintf(&b, "  worst cell (%s, %dx): NI peak %d B of %d B budget; host backlog peak %d B\n",
		loadName(w.Load), w.Mult, w.NIBudgetPeak, w.NIBudgetSize, w.HostQueuedPeakBytes)
	fmt.Fprintf(&b, "  worst cell violations: NI %d vs host %d; host max queuing delay %d ms\n",
		w.NIViolations, w.HostViolations, w.HostMaxQDelayMs)
	var revoked, reinstated, leaked int64
	for _, pt := range points {
		revoked += pt.NIRevoked
		reinstated += pt.NIReinstated
		leaked += pt.NILeakReclaimed
	}
	if leaked > 0 {
		fmt.Fprintf(&b, "  mem-leak fault pinned %d B at %dx oversubscription; ladder revoked %d stream(s), reinstated %d after reclaim\n",
			leaked, overloadLeakMult, revoked, reinstated)
	}
	return b.String()
}
