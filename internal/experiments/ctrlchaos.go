// Controller-chaos experiment: the replicated DVCM control plane under
// controller faults (cluster.RunCtrlChaos), wrapped for the artifact writers
// and the CI determinism canary. On top of the fleet-chaos scenario, the
// primary controller replica is killed mid-migration and the replica pair is
// later partitioned (split brain); the run proves the standby takes over
// within two poll periods, no stream is ever double-placed, the deposed
// leader's stale commands are fenced, and every artifact — including the
// merged HA incident timeline — is byte-identical across monolithic,
// sequential-partitioned, and parallel-partitioned execution.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// CtrlChaosConfig parameterizes the controller-chaos experiment. Zero values
// take the defaults: the standard 8×2 chaos fleet over 8 s (longer than the
// plain chaos run, so a crash, a takeover, a recovery, a split brain, and a
// heal all fit), one controller crash and one pair partition.
type CtrlChaosConfig struct {
	Cards          int
	StreamsPerCard int
	Dur            sim.Time
	Workers        int

	HostCrashes   int
	NetPartitions int
	RollingDrains int
	FaultSeed     int64

	// Controller faults (0 = 1 each; negative = none of that kind).
	CtrlCrashes    int
	CtrlPartitions int
}

// CtrlChaosArtifacts is everything one controller-chaos run exports. Every
// string is part of the byte-identical determinism contract; Rounds is not.
type CtrlChaosArtifacts struct {
	Chaos *FleetChaosArtifacts

	CtrlPlane  string
	HATimeline string
	HASummary  string

	JournalBytes, MediaBytes int64
	Takeovers                int
	Adopted, Reissued        int
	FencedRejects            int
	DoublePlaced             int
	LeaderName               string
	LeaderEpoch              int
}

func (cfg CtrlChaosConfig) cluster() cluster.FleetChaosConfig {
	dur := cfg.Dur
	if dur <= 0 {
		dur = 8 * sim.Second
	}
	return cluster.FleetChaosConfig{
		Cards: cfg.Cards, StreamsPerCard: cfg.StreamsPerCard,
		Dur: dur, Workers: cfg.Workers,
		HostCrashes: cfg.HostCrashes, NetPartitions: cfg.NetPartitions,
		RollingDrains: cfg.RollingDrains, FaultSeed: cfg.FaultSeed,
		CtrlHA: true, CtrlCrashes: cfg.CtrlCrashes, CtrlPartitions: cfg.CtrlPartitions,
	}
}

// RunCtrlChaos executes one controller-chaos run on the partitioned fleet.
func RunCtrlChaos(cfg CtrlChaosConfig) *CtrlChaosArtifacts {
	r := cluster.RunCtrlChaos(cfg.cluster())
	return &CtrlChaosArtifacts{
		Chaos:        chaosArts(r.Chaos),
		CtrlPlane:    r.CtrlPlane,
		HATimeline:   r.HATimeline,
		HASummary:    r.HASummary,
		JournalBytes: r.JournalBytes, MediaBytes: r.MediaBytes,
		Takeovers: r.Takeovers, Adopted: r.Adopted, Reissued: r.Reissued,
		FencedRejects: r.FencedRejects, DoublePlaced: r.DoublePlaced,
		LeaderName: r.LeaderName, LeaderEpoch: r.LeaderEpoch,
	}
}

func ctrlChaosArtMap(r *cluster.CtrlChaosResult) map[string]string {
	c := r.Chaos
	return map[string]string{
		"plan": c.Plan, "summary": c.Summary, "table": c.Table,
		"pulse": c.Pulse, "miglog": c.MigLog, "recovery": c.Recovery,
		"violations": c.Violations, "csv": c.CSV,
		"ctrlplane": r.CtrlPlane, "hatimeline": r.HATimeline,
		"hasummary": r.HASummary,
	}
}

// CtrlChaosDeterminism runs cfg monolithically, partitioned sequentially,
// and partitioned with cfg.Workers, and returns an error naming the first
// artifact that differs — the failover, the fencing, and the journal
// reconcile must not depend on worker count.
func CtrlChaosDeterminism(cfg CtrlChaosConfig) error {
	run := func(workers int, mono bool) map[string]string {
		c := cfg.cluster()
		c.Workers, c.Monolithic = workers, mono
		return ctrlChaosArtMap(cluster.RunCtrlChaos(c))
	}
	arts := []string{"plan", "summary", "table", "pulse", "miglog", "recovery",
		"violations", "csv", "ctrlplane", "hatimeline", "hasummary"}
	ref := run(1, false)
	for name, variant := range map[string]map[string]string{
		"monolithic":                           run(0, true),
		fmt.Sprintf("workers=%d", cfg.Workers): run(cfg.Workers, false),
	} {
		for _, art := range arts {
			if variant[art] != ref[art] {
				return fmt.Errorf("ctrl-chaos determinism: %s artifact %q diverged from sequential partitioned run", name, art)
			}
		}
	}
	return nil
}
