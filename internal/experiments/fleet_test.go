package experiments

import (
	"testing"

	"repro/internal/sim"
)

func TestFleetDeterminismCanary(t *testing.T) {
	if err := FleetDeterminism(FleetConfig{
		Cards: 3, StreamsPerCard: 1, Dur: 600 * sim.Millisecond, Workers: 4,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetArtifacts(t *testing.T) {
	a := RunFleet(FleetConfig{Cards: 2, StreamsPerCard: 1, Dur: 600 * sim.Millisecond, Workers: 2})
	for name, s := range map[string]string{
		"summary": a.Summary, "table": a.Table, "pulse": a.Pulse, "csv": a.CSV,
	} {
		if s == "" {
			t.Fatalf("empty %s artifact", name)
		}
	}
	if a.Recv == 0 {
		t.Fatalf("no media delivered: %s", a.Summary)
	}
}
