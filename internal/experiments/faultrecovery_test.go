package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestFaultRecoveryShape runs the default chaos schedule and checks the
// acceptance shape: the crash is detected, streams ride out the outage on
// the host tier, and after the card resets per-stream bandwidth returns to
// ≥90% of its pre-fault value with zero DWCS violations outside the outage.
func TestFaultRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-recovery run in -short mode")
	}
	fr := RunFaultRecovery(FaultConfig{Dur: 30 * sim.Second})

	if fr.Crashes != 1 || fr.Resets != 1 {
		t.Fatalf("crashes=%d resets=%d, want 1/1", fr.Crashes, fr.Resets)
	}
	if fr.CrashAt == 0 || fr.BiteAt <= fr.CrashAt || fr.ResetAt <= fr.BiteAt {
		t.Fatalf("timeline crash=%v bite=%v reset=%v out of order", fr.CrashAt, fr.BiteAt, fr.ResetAt)
	}
	if det := fr.BiteAt - fr.CrashAt; det > sim.Second {
		t.Fatalf("watchdog detection took %v, want < 1s", det)
	}
	if fr.Bites == 0 {
		t.Fatal("watchdog never bit")
	}
	if fr.Switches != 2 {
		t.Fatalf("failover switches = %d, want 2 (out and back)", fr.Switches)
	}
	if fr.HostSent == 0 {
		t.Fatal("host tier sent nothing during the outage")
	}
	if fr.NISent == 0 {
		t.Fatal("NI tier sent nothing")
	}

	for _, name := range []string{"s1", "s2"} {
		pre, outage, post := fr.PreBW[name], fr.OutageBW[name], fr.PostBW[name]
		if pre <= 0 {
			t.Fatalf("%s: no pre-fault bandwidth", name)
		}
		if outage <= 0 {
			t.Fatalf("%s: stream went fully dark through the outage (host fallback broken)", name)
		}
		if post < 0.9*pre {
			t.Fatalf("%s: post-recovery bw %.0f < 90%% of pre-fault %.0f", name, post, pre)
		}
		if fr.RecoverIn[name] < 0 {
			t.Fatalf("%s: bandwidth never recovered to 90%% of pre-fault", name)
		}
	}

	if fr.ViolationsOutsideOutage != 0 {
		t.Fatalf("%d DWCS violations outside the chaos window, want 0", fr.ViolationsOutsideOutage)
	}
	if len(fr.Log.Records) == 0 {
		t.Fatal("chaos log empty; plan never fired")
	}
}

// TestFaultRecoveryDeterminismAcrossWorkers is the determinism canary: the
// same seed and chaos schedule must yield byte-identical reports whether
// the runs execute sequentially or fanned across the worker pool.
func TestFaultRecoveryDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-recovery runs in -short mode")
	}
	job := func() string {
		return RunFaultRecovery(FaultConfig{Dur: 12 * sim.Second}).Result().String()
	}
	jobs := []func() string{job, job, job}

	seq := CollectWith(Runner{Workers: 1}, jobs)
	par := CollectWith(Runner{Workers: 3}, jobs)

	for i := range jobs {
		if seq[i] != seq[0] {
			t.Fatalf("sequential run %d diverged from run 0:\n%s\nvs\n%s", i, seq[i], seq[0])
		}
		if par[i] != seq[i] {
			t.Fatalf("parallel run %d diverged from sequential:\n%s\nvs\n%s", i, par[i], seq[i])
		}
	}
	if !strings.Contains(seq[0], "chaos:") {
		t.Fatalf("report missing the chaos log:\n%s", seq[0])
	}
}
