package core

import (
	"errors"
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

// echoExt is a toy extension.
type echoExt struct {
	name     string
	attached *VCM
	failAt   bool
}

func (e *echoExt) Name() string { return e.name }
func (e *echoExt) Attach(v *VCM) error {
	if e.failAt {
		return errors.New("boom")
	}
	e.attached = v
	return nil
}
func (e *echoExt) Invoke(op string, arg any) (any, error) {
	if op != "echo" {
		return nil, ErrBadOp
	}
	return arg, nil
}

func TestRegisterAndInvoke(t *testing.T) {
	v := NewVCM("ni0")
	ext := &echoExt{name: "echo"}
	if err := v.Register(ext); err != nil {
		t.Fatal(err)
	}
	if ext.attached != v {
		t.Fatal("Attach not called with owning VCM")
	}
	got, err := v.Invoke(Instr{Ext: "echo", Op: "echo", Arg: 42})
	if err != nil || got != 42 {
		t.Fatalf("Invoke = %v, %v", got, err)
	}
	if v.Invocations != 1 {
		t.Fatalf("invocations = %d", v.Invocations)
	}
}

func TestInvokeErrors(t *testing.T) {
	v := NewVCM("ni0")
	v.Register(&echoExt{name: "echo"})
	if _, err := v.Invoke(Instr{Ext: "nope"}); !errors.Is(err, ErrNoExtension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := v.Invoke(Instr{Ext: "echo", Op: "nope"}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateAndFailedRegistration(t *testing.T) {
	v := NewVCM("ni0")
	v.Register(&echoExt{name: "echo"})
	if err := v.Register(&echoExt{name: "echo"}); !errors.Is(err, ErrDupExtension) {
		t.Fatalf("err = %v", err)
	}
	if err := v.Register(&echoExt{name: "bad", failAt: true}); err == nil {
		t.Fatal("failed Attach should fail registration")
	}
	if got := v.Extensions(); len(got) != 1 || got[0] != "echo" {
		t.Fatalf("extensions = %v", got)
	}
}

func TestUnregister(t *testing.T) {
	v := NewVCM("ni0")
	v.Register(&echoExt{name: "echo"})
	if err := v.Unregister("echo"); err != nil {
		t.Fatal(err)
	}
	if err := v.Unregister("echo"); !errors.Is(err, ErrNoExtension) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeAsyncWithoutCrossingIsSynchronous(t *testing.T) {
	v := NewVCM("ni0")
	v.Register(&echoExt{name: "echo"})
	var got any
	v.InvokeAsync(Instr{Ext: "echo", Op: "echo", Arg: "hi"}, 4, func(res any, err error) {
		got = res
	})
	if got != "hi" {
		t.Fatalf("got %v", got)
	}
}

func TestInvokeAsyncPaysPCICrossing(t *testing.T) {
	eng := sim.NewEngine(1)
	seg := bus.New(eng, bus.PCI("pci0"))
	v := NewVCM("ni0")
	v.Crossing = CrossingFunc(func(words int64, deliver func()) {
		seg.PIOWrite(words, deliver)
	})
	v.Register(&echoExt{name: "echo"})
	var doneAt sim.Time
	v.InvokeAsync(Instr{Ext: "echo", Op: "echo", Arg: 1}, 8, func(any, error) {
		doneAt = eng.Now()
	})
	eng.Run()
	want := sim.Time(8) * seg.PIOWriteTime()
	if doneAt != want {
		t.Fatalf("crossed at %v, want %v (8 PIO words)", doneAt, want)
	}
	if seg.Stats.PIOWrites != 8 {
		t.Fatalf("bus writes = %d", seg.Stats.PIOWrites)
	}
}

func TestDVCMRouting(t *testing.T) {
	d := NewDVCM()
	a, b := NewVCM("node-a"), NewVCM("node-b")
	a.Register(&echoExt{name: "echo"})
	if err := d.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(b); err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(a); err == nil {
		t.Fatal("duplicate attach should fail")
	}
	if got := d.Nodes(); len(got) != 2 || got[0] != "node-a" || got[1] != "node-b" {
		t.Fatalf("nodes = %v", got)
	}
	if res, err := d.Invoke("node-a", Instr{Ext: "echo", Op: "echo", Arg: 7}); err != nil || res != 7 {
		t.Fatalf("invoke = %v, %v", res, err)
	}
	if _, err := d.Invoke("node-b", Instr{Ext: "echo"}); !errors.Is(err, ErrNoExtension) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Invoke("gone", Instr{}); !errors.Is(err, ErrNoVCM) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.VCM("gone"); !errors.Is(err, ErrNoVCM) {
		t.Fatalf("err = %v", err)
	}
}
