// Package core implements the DVCM — the Distributed Virtual Communication
// Machine of §2 — the paper's runtime-extension architecture that the media
// scheduler plugs into.
//
// The DVCM has three layers (Figure 2):
//
//  1. A host-side API: each node's application programs access DVCM
//     "communication instructions" through what looks like a memory-mapped
//     device. Here that is VCM.Invoke, and the host-to-NI crossing cost is
//     modelled as programmed-I/O writes on the card's PCI segment.
//  2. Low-level runtime support on the NI: supplied by internal/rtos and
//     internal/nic (VxWorks task support, memory, device access).
//  3. Run-time extensions supporting specific applications' needs — the
//     Extension interface. The media scheduler of §3 is one such extension
//     (internal/nic.SchedulerExt); tests register toy extensions.
//
// A DVCM instance ties the per-NI VCMs of a cluster together and routes
// instructions by node name.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by VCM operations.
var (
	ErrNoExtension  = errors.New("dvcm: no such extension")
	ErrDupExtension = errors.New("dvcm: extension already registered")
	ErrNoVCM        = errors.New("dvcm: no such VCM")
	ErrBadOp        = errors.New("dvcm: extension does not implement op")
)

// Instr is one communication instruction issued through the DVCM API.
type Instr struct {
	Ext string // target extension name
	Op  string // operation
	Arg any    // operation argument
}

// Extension is a service loaded into a VCM at run time, "extended and
// specialized much like extensible OS kernels ... SPIN and Exokernel" (§2).
type Extension interface {
	// Name identifies the extension for instruction routing.
	Name() string
	// Attach is called once when the extension is loaded.
	Attach(v *VCM) error
	// Invoke executes one operation. Unknown ops return ErrBadOp.
	Invoke(op string, arg any) (any, error)
}

// Crossing models the cost of delivering an instruction from a host program
// into the NI-resident VCM (PIO writes over the PCI segment plus a doorbell).
// Implementations invoke deliver when the instruction has crossed; a nil
// Crossing delivers synchronously (intra-card calls).
type Crossing interface {
	Cross(words int64, deliver func())
}

// CrossingFunc adapts a function to Crossing.
type CrossingFunc func(words int64, deliver func())

// Cross implements Crossing.
func (f CrossingFunc) Cross(words int64, deliver func()) { f(words, deliver) }

// VCM is the virtual communication machine resident on one NI (or, for the
// host-based baseline, on a host CPU).
type VCM struct {
	name string
	exts map[string]Extension

	// Crossing, if set, is charged for every Invoke arriving from the host
	// side via InvokeAsync.
	Crossing Crossing

	// Invocations counts instructions executed.
	Invocations int64
}

// NewVCM returns an empty VCM.
func NewVCM(name string) *VCM {
	return &VCM{name: name, exts: make(map[string]Extension)}
}

// Name returns the VCM's name.
func (v *VCM) Name() string { return v.name }

// Register loads an extension at run time.
func (v *VCM) Register(ext Extension) error {
	if _, dup := v.exts[ext.Name()]; dup {
		return fmt.Errorf("%w: %s", ErrDupExtension, ext.Name())
	}
	if err := ext.Attach(v); err != nil {
		return fmt.Errorf("dvcm: attach %s: %w", ext.Name(), err)
	}
	v.exts[ext.Name()] = ext
	return nil
}

// Unregister removes an extension.
func (v *VCM) Unregister(name string) error {
	if _, ok := v.exts[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoExtension, name)
	}
	delete(v.exts, name)
	return nil
}

// Extensions lists registered extension names, sorted.
func (v *VCM) Extensions() []string {
	names := make([]string, 0, len(v.exts))
	for n := range v.exts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invoke executes an instruction synchronously on the VCM — the path used
// by code already running on the card.
func (v *VCM) Invoke(in Instr) (any, error) {
	ext, ok := v.exts[in.Ext]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoExtension, in.Ext)
	}
	v.Invocations++
	return ext.Invoke(in.Op, in.Arg)
}

// InvokeAsync executes an instruction from the host side: the instruction
// words cross to the card (paying the Crossing cost) and the result is
// delivered to the callback. words sizes the PIO transfer; done may be nil.
func (v *VCM) InvokeAsync(in Instr, words int64, done func(any, error)) {
	run := func() {
		res, err := v.Invoke(in)
		if done != nil {
			done(res, err)
		}
	}
	if v.Crossing == nil {
		run()
		return
	}
	v.Crossing.Cross(words, run)
}

// DVCM is the cluster-wide distributed machine: one VCM per node/NI.
type DVCM struct {
	vcms map[string]*VCM
}

// NewDVCM returns an empty distributed machine.
func NewDVCM() *DVCM { return &DVCM{vcms: make(map[string]*VCM)} }

// Attach adds a node's VCM under its name.
func (d *DVCM) Attach(v *VCM) error {
	if _, dup := d.vcms[v.Name()]; dup {
		return fmt.Errorf("dvcm: node %s already attached", v.Name())
	}
	d.vcms[v.Name()] = v
	return nil
}

// VCM returns the named node's VCM.
func (d *DVCM) VCM(name string) (*VCM, error) {
	v, ok := d.vcms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoVCM, name)
	}
	return v, nil
}

// Nodes lists attached VCM names, sorted.
func (d *DVCM) Nodes() []string {
	names := make([]string, 0, len(d.vcms))
	for n := range d.vcms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invoke routes an instruction to the named node synchronously.
func (d *DVCM) Invoke(node string, in Instr) (any, error) {
	v, err := d.VCM(node)
	if err != nil {
		return nil, err
	}
	return v.Invoke(in)
}
