package blackbox

import (
	"strings"
	"testing"

	"repro/internal/overload"
	"repro/internal/sim"
)

// feed replays a fixed event sequence with a trigger mid-stream, the way a
// chaos run does, and returns the full dump.
func feed(t *testing.T, budget *overload.Budget) string {
	t.Helper()
	rec, err := New(Config{Name: "ni-0", Bytes: 1 << 10, MaxIncidents: 2, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	rec.StateFn = func() string { return budget.String() }
	for i := 0; i < 40; i++ { // 1 KiB ring holds 16 events: plenty of wraparound
		rec.Record(Event{At: sim.Time(i) * sim.Millisecond, Kind: KindDecision,
			Stream: 1 + i%3, Seq: int64(i)})
	}
	rec.Record(Event{At: 41 * sim.Millisecond, Kind: KindRefusal, Stream: 9,
		A: 278528, Note: "addStream refused"})
	rec.Trigger(41*sim.Millisecond, "budget-refusal")
	rec.Record(Event{At: 50 * sim.Millisecond, Kind: KindWatchdog, Note: "deadman"})
	rec.Trigger(50*sim.Millisecond, "watchdog")
	rec.Trigger(60*sim.Millisecond, "extra") // beyond MaxIncidents: suppressed
	dump := rec.DumpAll()
	rec.Close()
	return dump
}

func TestIdenticalRunsDumpByteIdentical(t *testing.T) {
	a := feed(t, overload.NewBudget("ni-0", 1<<20))
	b := feed(t, overload.NewBudget("ni-0", 1<<20))
	if a != b {
		t.Fatalf("identical runs produced different dumps:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "=== incident 1: budget-refusal at 41.000ms ===") ||
		!strings.Contains(a, "=== incident 2: watchdog at 50.000ms ===") {
		t.Fatalf("dump missing incident headers:\n%s", a)
	}
	if !strings.Contains(a, "3 trigger(s), 1 suppressed") {
		t.Fatalf("dump trailer should count 3 triggers / 1 suppressed:\n%s", a)
	}
	if !strings.Contains(a, "state:") || !strings.Contains(a, "ni-0: used") {
		t.Fatalf("incident should embed the budget state:\n%s", a)
	}
}

func TestRingChargedToAndBoundedByBudget(t *testing.T) {
	budget := overload.NewBudget("ni-0", 1<<20)
	rec, err := New(Config{Name: "ni-0", Bytes: 1 << 10, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rec.Capacity()) * EventBytes
	if got := budget.UsedClass(overload.ClassBlackbox); got != want {
		t.Fatalf("ring charge = %d, want %d", got, want)
	}
	// Recording far past capacity never grows the charge: the ring is the bound.
	for i := 0; i < 10*rec.Capacity(); i++ {
		rec.Record(Event{At: sim.Time(i), Kind: KindDecision, Seq: int64(i)})
	}
	if got := budget.UsedClass(overload.ClassBlackbox); got != want {
		t.Fatalf("ring charge grew to %d after wraparound, want %d", got, want)
	}
	if got := len(rec.Events()); got != rec.Capacity() {
		t.Fatalf("live events = %d, want capacity %d", got, rec.Capacity())
	}
	if rec.Overwritten != int64(9*rec.Capacity()) {
		t.Fatalf("Overwritten = %d, want %d", rec.Overwritten, 9*rec.Capacity())
	}
	// Oldest → newest ordering survives wraparound.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	rec.Close()
	if got := budget.UsedClass(overload.ClassBlackbox); got != 0 {
		t.Fatalf("charge after Close = %d, want 0", got)
	}
	charged, released := budget.Ledger()
	if charged != released {
		t.Fatalf("ledger conservation: charged %d != released %d", charged, released)
	}
	rec.Close() // idempotent
}

func TestNewRefusedWhenBudgetFull(t *testing.T) {
	budget := overload.NewBudget("ni-0", 1<<10)
	if err := budget.Charge(overload.ClassFrameBuf, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Name: "ni-0", Bytes: 1 << 10, Budget: budget}); err == nil {
		t.Fatal("New should refuse a ring the budget cannot hold")
	}
	if budget.UsedClass(overload.ClassBlackbox) != 0 {
		t.Fatal("refused construction must not leave a charge behind")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{})
	if r.Trigger(0, "x") != nil || r.Events() != nil || r.DumpAll() != "" {
		t.Fatal("nil recorder should no-op")
	}
	r.Close()
	r.Instrument(nil)
}
