// Package blackbox is a per-card flight recorder: a fixed-size, memory-bounded
// ring of the most recent scheduler decisions, span segments, overload-ladder
// transitions, faults, and metric snapshots, dumped as a deterministic incident
// report when something goes wrong. The design constraint is the paper's own:
// the i960 RD has 4 MB of on-board RAM (§3.1.2), and diagnostic state is
// card-resident like everything else, so the ring's bytes are charged against
// the card's overload.Budget (ClassBlackbox) exactly like stream state or
// frame buffers. A recorder that cannot afford its ring does not silently
// shrink — construction fails, and the caller decides what to give up.
//
// Triggers are pull-based: the recorder never watches anything itself. The
// wiring layer (nic.AttachBlackbox, experiments.RunDiagnostics) taps the
// existing hooks — faults.Tee on the chaos plan, rtos.Watchdog.Observe on the
// deadman, overload.Budget.OnReject on admission refusals, slo.Monitor state
// transitions — and calls Trigger with a reason. Every dump is a pure function
// of the simulated event sequence, so two identical runs produce byte-identical
// incident reports at any host worker count.
package blackbox

import (
	"fmt"
	"strings"

	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// EventBytes is the accounting cost of one ring slot. The Go-side Event struct
// is close to this, and the modeled card would store a packed 64-byte record;
// the charge is what matters, not the host representation.
const EventBytes = 64

// Kind classifies ring events.
type Kind int

// Ring event kinds.
const (
	// KindDecision is a scheduler dispatch: stream A won this service slot.
	KindDecision Kind = iota
	// KindDrop is a frame dropped or shed by the scheduler or ladder.
	KindDrop
	// KindSpan is a completed pipeline stage segment (queue wait, tx, ...).
	KindSpan
	// KindLadder is a degradation-ladder rung transition.
	KindLadder
	// KindSnapshot marks a telemetry registry snapshot (A = values written).
	KindSnapshot
	// KindFault is a chaos-plan injection or recovery crossing the card.
	KindFault
	// KindWatchdog is a deadman bite.
	KindWatchdog
	// KindRefusal is a budget admission refusal (A = projected bytes).
	KindRefusal
	// KindSLO is an SLO health-state transition (A = from, B = to).
	KindSLO
	// KindMigrate is a live-migration export or import crossing this card
	// (A/B = window position at the hop, Seq = frame cursor).
	KindMigrate
	// KindDomainFault is a correlated failure-domain event touching this
	// card (host crash, network partition, rolling drain).
	KindDomainFault
)

// String names the kind in dumps; fixed-width-ish short names keep the
// incident report compact and diffable.
func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	case KindDrop:
		return "drop"
	case KindSpan:
		return "span"
	case KindLadder:
		return "ladder"
	case KindSnapshot:
		return "snapshot"
	case KindFault:
		return "fault"
	case KindWatchdog:
		return "watchdog"
	case KindRefusal:
		return "refusal"
	case KindSLO:
		return "slo"
	case KindMigrate:
		return "migrate"
	case KindDomainFault:
		return "domain-fault"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one ring slot. A and B are kind-specific payloads (bytes, rungs,
// durations) so the slot stays fixed-size; Note carries a short label and is
// part of the modeled 64 bytes, not extra.
type Event struct {
	At     sim.Time
	Kind   Kind
	Stream int
	Seq    int64
	A, B   int64
	Note   string
}

// String renders one ring line.
func (e Event) String() string {
	s := fmt.Sprintf("%v %s", e.At, e.Kind)
	if e.Stream != 0 {
		s += fmt.Sprintf(" stream=%d", e.Stream)
	}
	if e.Seq != 0 {
		s += fmt.Sprintf(" seq=%d", e.Seq)
	}
	if e.A != 0 {
		s += fmt.Sprintf(" a=%d", e.A)
	}
	if e.B != 0 {
		s += fmt.Sprintf(" b=%d", e.B)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Config sizes a Recorder.
type Config struct {
	// Name labels the card the recorder flies on.
	Name string
	// Bytes is the ring's memory budget; capacity is Bytes / EventBytes.
	// Zero selects 16 KiB (256 events) — small against a 4 MB card.
	Bytes int64
	// MaxIncidents bounds retained dumps; beyond it triggers are counted as
	// suppressed instead of allocating. Zero selects 4.
	MaxIncidents int
	// Budget, when set, is charged Bytes under ClassBlackbox at construction
	// and credited back at Close. Construction fails if the charge is
	// refused: a card too full for diagnostics must say so, not under-record.
	Budget *overload.Budget
}

// Incident is one captured dump: the ring contents at trigger time plus the
// card state the wiring layer chose to attach.
type Incident struct {
	Seq    int // 1-based trigger ordinal
	At     sim.Time
	Reason string
	Events []Event // oldest → newest
	State  string  // StateFn output at trigger time
}

// Dump renders the incident as a deterministic, byte-stable report.
func (inc *Incident) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== incident %d: %s at %v ===\n", inc.Seq, inc.Reason, inc.At)
	fmt.Fprintf(&b, "ring: %d event(s)\n", len(inc.Events))
	for _, e := range inc.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	if inc.State != "" {
		b.WriteString("state:\n")
		for _, line := range strings.Split(strings.TrimRight(inc.State, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// Recorder is the flight recorder proper. Not safe for concurrent use — like
// the rest of the card model it lives on the deterministic engine loop.
type Recorder struct {
	cfg  Config
	ring []Event
	head int // next write position
	n    int // live events in ring

	// StateFn, when set, is sampled at every trigger and embedded in the
	// incident — typically the budget ledger, ladder rung, and registry
	// values of the card at that instant.
	StateFn func() string

	incidents []Incident

	// Recorded counts all events ever offered; Overwritten counts ring slots
	// lost to wraparound; Triggers counts Trigger calls; Suppressed counts
	// triggers beyond MaxIncidents that produced no retained dump.
	Recorded    int64
	Overwritten int64
	Triggers    int64
	Suppressed  int64
}

// New builds a recorder and charges its ring against cfg.Budget (if any).
func New(cfg Config) (*Recorder, error) {
	if cfg.Bytes <= 0 {
		cfg.Bytes = 16 << 10
	}
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = 4
	}
	capacity := int(cfg.Bytes / EventBytes)
	if capacity < 1 {
		return nil, fmt.Errorf("blackbox: %s: %d bytes holds no %d-byte events",
			cfg.Name, cfg.Bytes, EventBytes)
	}
	cfg.Bytes = int64(capacity) * EventBytes // charge exactly what the ring holds
	if cfg.Budget != nil {
		if err := cfg.Budget.Charge(overload.ClassBlackbox, cfg.Bytes); err != nil {
			return nil, fmt.Errorf("blackbox: %s: ring refused: %w", cfg.Name, err)
		}
	}
	return &Recorder{cfg: cfg, ring: make([]Event, capacity)}, nil
}

// Name returns the recorder's card label.
func (r *Recorder) Name() string { return r.cfg.Name }

// RingBytes returns the bytes charged for the ring.
func (r *Recorder) RingBytes() int64 { return r.cfg.Bytes }

// Capacity returns the ring capacity in events.
func (r *Recorder) Capacity() int { return len(r.ring) }

// Record appends an event, overwriting the oldest slot when full. Nil-safe so
// call sites can wire a recorder unconditionally.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.Recorded++
	if r.n == len(r.ring) {
		r.Overwritten++
	} else {
		r.n++
	}
	r.ring[r.head] = e
	r.head = (r.head + 1) % len(r.ring)
}

// Events returns the live ring contents oldest → newest.
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, 0, r.n)
	start := (r.head - r.n + len(r.ring)) % len(r.ring)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// EventsSince returns the live ring events whose recording ordinal is greater
// than since (ordinals are 1-based over every event ever offered, i.e. the
// Recorded counter at the time the event was written), along with the newest
// ordinal to pass back on the next call and the count of matching events that
// were already lost to ring wraparound. This is the incremental-scrape
// interface: a remote observer that polls faster than the ring wraps sees
// every event exactly once; one that polls too slowly learns how much history
// it missed instead of silently getting a gap.
func (r *Recorder) EventsSince(since int64) (events []Event, newest int64, lost int64) {
	if r == nil {
		return nil, since, 0
	}
	newest = r.Recorded
	if newest <= since {
		return nil, newest, 0
	}
	oldest := r.Recorded - int64(r.n) + 1 // ordinal of the oldest live event
	if since+1 < oldest {
		lost = oldest - since - 1
		since = oldest - 1
	}
	want := int(newest - since)
	start := (r.head - want + len(r.ring)) % len(r.ring)
	events = make([]Event, 0, want)
	for i := 0; i < want; i++ {
		events = append(events, r.ring[(start+i)%len(r.ring)])
	}
	return events, newest, lost
}

// Trigger captures an incident: ring contents plus StateFn output, stamped
// with at and reason. Beyond MaxIncidents the trigger is counted but the dump
// suppressed — incident storage is bounded like everything else on the card.
// The ring is NOT cleared: overlapping incidents share their history, which
// is what you want when a watchdog bite follows the refusal that caused it.
func (r *Recorder) Trigger(at sim.Time, reason string) *Incident {
	if r == nil {
		return nil
	}
	r.Triggers++
	if len(r.incidents) >= r.cfg.MaxIncidents {
		r.Suppressed++
		return nil
	}
	inc := Incident{
		Seq:    len(r.incidents) + 1,
		At:     at,
		Reason: reason,
		Events: r.Events(),
	}
	if r.StateFn != nil {
		inc.State = r.StateFn()
	}
	r.incidents = append(r.incidents, inc)
	return &r.incidents[len(r.incidents)-1]
}

// Incidents returns the retained dumps in trigger order.
func (r *Recorder) Incidents() []Incident {
	if r == nil {
		return nil
	}
	return r.incidents
}

// DumpAll renders every retained incident plus a recorder trailer; this is
// the artifact reprogen writes and CI uploads on failure.
func (r *Recorder) DumpAll() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "blackbox %s: ring %d×%dB=%dB, %d recorded, %d overwritten, %d trigger(s), %d suppressed\n",
		r.cfg.Name, len(r.ring), EventBytes, r.cfg.Bytes,
		r.Recorded, r.Overwritten, r.Triggers, r.Suppressed)
	for i := range r.incidents {
		b.WriteString(r.incidents[i].Dump())
	}
	return b.String()
}

// Instrument registers the recorder's counters under the "blackbox"
// component so incident activity shows up in metrics.csv alongside the
// overload and scheduler series the run-diff engine compares.
func (r *Recorder) Instrument(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.CounterFunc("blackbox", "events_recorded_total",
		"ring events offered to the flight recorder", func() int64 { return r.Recorded })
	reg.CounterFunc("blackbox", "ring_overwritten_total",
		"ring slots lost to wraparound", func() int64 { return r.Overwritten })
	reg.CounterFunc("blackbox", "incident_triggers_total",
		"incident triggers fired", func() int64 { return r.Triggers })
	reg.CounterFunc("blackbox", "incidents_suppressed_total",
		"triggers beyond the retained-incident cap", func() int64 { return r.Suppressed })
	reg.GaugeFunc("blackbox", "ring_bytes",
		"budget bytes charged for the event ring", func() float64 { return float64(r.cfg.Bytes) })
}

// Close releases the ring's budget charge. Safe to call once; the recorder
// keeps its incidents (the dump outlives the flight).
func (r *Recorder) Close() {
	if r == nil || r.cfg.Budget == nil {
		return
	}
	r.cfg.Budget.Release(overload.ClassBlackbox, r.cfg.Bytes)
	r.cfg.Budget = nil
}
