package slo

import (
	"strings"
	"testing"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// counters is a hand-cranked cumulative stat source.
type counters struct{ attempts, losses int64 }

func (c *counters) get() (int64, int64) { return c.attempts, c.losses }

func newTestMonitor(objs ...Objective) (*Monitor, []*counters) {
	m := NewMonitor("ni-0", Config{
		ShortWindow: 2 * sim.Second, LongWindow: 8 * sim.Second,
		EvalEvery: sim.Second, ViolateSustain: 3,
	})
	var cs []*counters
	for _, o := range objs {
		c := &counters{}
		m.Track(o, c.get)
		cs = append(cs, c)
	}
	return m, cs
}

func TestFromSpec(t *testing.T) {
	spec := dwcs.StreamSpec{ID: 7, Name: "cam-7", Loss: fixed.New(1, 4)}
	o := FromSpec(spec, 10*sim.Millisecond)
	if o.Stream != 7 || o.Name != "cam-7" || o.LossTarget != 0.25 ||
		o.LatencyTarget != 10*sim.Millisecond {
		t.Fatalf("FromSpec = %+v", o)
	}
	// Zero-valued Loss (lossless stream): no budget at all.
	if o := FromSpec(dwcs.StreamSpec{ID: 1}, 0); o.LossTarget != 0 {
		t.Fatalf("lossless LossTarget = %v, want 0", o.LossTarget)
	}
}

func TestBurnEscalationAndSustainToViolated(t *testing.T) {
	m, cs := newTestMonitor(Objective{Stream: 1, Name: "s1", LossTarget: 0.1})
	var trans []string
	m.OnChange = func(id int, from, to State) {
		trans = append(trans, from.String()+">"+to.String())
	}

	// Clean traffic: 100 attempts/eval, no loss.
	for i := 0; i < 4; i++ {
		cs[0].attempts += 100
		m.Eval()
	}
	if got := m.StreamState(1); got != StateOK {
		t.Fatalf("clean traffic state = %v, want ok", got)
	}

	// 40% loss = burn 4.0 against a 0.1 budget: past PageBurn on both
	// windows once the long window sees enough of it.
	for i := 0; i < 8; i++ {
		cs[0].attempts += 100
		cs[0].losses += 40
		m.Eval()
	}
	if got := m.StreamState(1); got != StateViolated {
		t.Fatalf("sustained 4× burn state = %v, want violated", got)
	}
	if m.Health() != StateViolated || m.Violations != 1 {
		t.Fatalf("health=%v violations=%d", m.Health(), m.Violations)
	}
	// Escalation passed through burning before hardening.
	joined := strings.Join(trans, " ")
	if !strings.Contains(joined, ">burning") || !strings.Contains(joined, "burning>violated") {
		t.Fatalf("transitions %v should pass through burning to violated", trans)
	}

	// Recovery: clean evals step the state down one rung per sustain period.
	for i := 0; i < 40; i++ {
		cs[0].attempts += 100
		m.Eval()
	}
	if got := m.StreamState(1); got != StateOK {
		t.Fatalf("after sustained clean traffic state = %v, want ok", got)
	}
}

func TestWarnWithoutPageStaysWarn(t *testing.T) {
	m, cs := newTestMonitor(Objective{Stream: 1, Name: "s1", LossTarget: 0.1})
	// 15% loss = burn 1.5: past WarnBurn (1) but short of PageBurn (2).
	for i := 0; i < 10; i++ {
		cs[0].attempts += 100
		cs[0].losses += 15
		m.Eval()
	}
	if got := m.StreamState(1); got != StateWarn {
		t.Fatalf("burn 1.5 state = %v, want warn", got)
	}
}

func TestLatencyBreachEscalates(t *testing.T) {
	m, cs := newTestMonitor(Objective{Stream: 2, Name: "s2",
		LossTarget: 0.5, LatencyTarget: 5 * sim.Millisecond})
	cs[0].attempts = 10
	// Queue-stage segment over the bound; other stages and streams ignored.
	m.ObserveSegment(telemetry.Segment{Stream: 2, Stage: telemetry.StageQueue,
		Start: 0, End: 8 * sim.Millisecond})
	m.ObserveSegment(telemetry.Segment{Stream: 2, Stage: telemetry.StageDisk,
		Start: 0, End: sim.Second})
	m.ObserveSegment(telemetry.Segment{Stream: 99, Stage: telemetry.StageQueue,
		Start: 0, End: sim.Second})
	m.Eval()
	if got := m.StreamState(2); got != StateBurning {
		t.Fatalf("latency breach state = %v, want burning", got)
	}
	// Bound latency clears after the breach rolls out of the short window.
	for i := 0; i < 20; i++ {
		cs[0].attempts += 10
		m.Eval()
	}
	if got := m.StreamState(2); got != StateOK {
		t.Fatalf("recovered state = %v, want ok", got)
	}
}

func TestZeroBudgetAnyLossBurns(t *testing.T) {
	m, cs := newTestMonitor(Objective{Stream: 1, Name: "s1", LossTarget: 0})
	for i := 0; i < 3; i++ {
		cs[0].attempts += 100
		cs[0].losses++
		m.Eval()
	}
	if got := m.StreamState(1); got < StateBurning {
		t.Fatalf("zero-budget loss state = %v, want at least burning", got)
	}
}

func TestHealthIsWorstStreamAndTableDeterministic(t *testing.T) {
	m, cs := newTestMonitor(
		Objective{Stream: 3, Name: "s3", LossTarget: 0.1},
		Objective{Stream: 1, Name: "s1", LossTarget: 0.1},
	)
	for i := 0; i < 6; i++ {
		cs[0].attempts += 100
		cs[0].losses += 50 // stream 3 burns
		cs[1].attempts += 100
		m.Eval()
	}
	if m.StreamState(1) != StateOK || m.StreamState(3) == StateOK {
		t.Fatal("only stream 3 should be unhealthy")
	}
	if m.Health() != m.StreamState(3) {
		t.Fatalf("health %v should match worst stream %v", m.Health(), m.StreamState(3))
	}
	a, b := m.Table(), m.Table()
	if a != b {
		t.Fatal("Table not deterministic")
	}
	// Sorted by ID: stream 1 row precedes stream 3 despite track order.
	if strings.Index(a, "\n1    s1") > strings.Index(a, "\n3    s3") {
		t.Fatalf("table rows not sorted by stream ID:\n%s", a)
	}
}

func TestMonitorOnEngineAndInstrument(t *testing.T) {
	eng := sim.NewEngine(42)
	m := NewMonitor("ni-0", Config{})
	c := &counters{}
	m.Track(Objective{Stream: 1, Name: "s1", LossTarget: 0.1}, c.get)
	eng.Every(100*sim.Millisecond, func() { c.attempts += 10; c.losses += 6 })
	m.Start(eng)
	m.Start(eng) // idempotent
	reg := telemetry.New()
	m.Instrument(reg)
	eng.RunUntil(20 * sim.Second)
	m.Stop()
	if m.Health() != StateViolated {
		t.Fatalf("60%% loss for 20s health = %v, want violated", m.Health())
	}
	vals := reg.ValuesText()
	if !strings.Contains(vals, "slo.health 3") ||
		!strings.Contains(vals, "slo.violations_total 1") {
		t.Fatalf("instrumented values:\n%s", vals)
	}
}
