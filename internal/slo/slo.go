// Package slo turns the reproduction's QoS mechanisms into monitored
// objectives. DWCS already *encodes* each stream's contract — the (x,y)
// window says x of every y packets may be lost or late (§2) — so the loss SLO
// is not invented, it is read off the stream spec: the error budget is x/y.
// Latency objectives come from the PR 3 pipeline spans: a stream whose
// queue-stage wait exceeds its bound is missing its playout deadline even if
// nothing was dropped.
//
// Evaluation is SRE-style multi-window burn rate. A stream's burn is its
// windowed loss ratio divided by its budget (burn 1.0 = spending exactly the
// budget; burn 2.0 = spending it twice as fast). A short window catches
// fast burns, a long window confirms they are real; both must agree before
// the state machine escalates past warn, which keeps one unlucky window from
// paging. Health runs ok → warn → burning → violated per stream, and a card's
// health is its worst stream — the early failover signal the cluster monitor
// consumes ahead of heartbeat loss.
//
// Everything is sampled on the simulation engine at a fixed cadence from
// cumulative counters, so the monitor is a pure function of simulated time:
// byte-identical tables at any worker count.
package slo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dwcs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// State is a stream's (or card's) SLO health.
type State int

// Health states, ordered by severity.
const (
	StateOK State = iota
	StateWarn
	StateBurning
	StateViolated
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StateBurning:
		return "burning"
	case StateViolated:
		return "violated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Objective is one stream's service-level objective.
type Objective struct {
	Stream int
	Name   string
	// LossTarget is the error budget as a fraction of attempts: x/y from the
	// stream's DWCS window. Zero means no loss is tolerated — any windowed
	// loss burns at +Inf and escalates immediately.
	LossTarget float64
	// LatencyTarget bounds the queue-stage wait; zero disables the latency
	// objective for the stream.
	LatencyTarget sim.Time
}

// FromSpec derives a stream's objective from its DWCS spec: the loss budget
// is the spec's (x,y) window ratio, the latency bound is supplied by the
// caller (typically a small multiple of the stream period).
func FromSpec(spec dwcs.StreamSpec, latency sim.Time) Objective {
	target := 0.0
	if spec.Loss.Den != 0 {
		target = float64(spec.Loss.Num) / float64(spec.Loss.Den)
	} else if spec.Loss.Num != 0 {
		target = float64(spec.Loss.Num) // zero Den normalizes to 1
	}
	return Objective{
		Stream:        spec.ID,
		Name:          spec.Name,
		LossTarget:    target,
		LatencyTarget: latency,
	}
}

// Config tunes the monitor's windows and thresholds.
type Config struct {
	// ShortWindow catches fast burns (default 2s); LongWindow confirms them
	// (default 8s). EvalEvery is the sampling cadence (default 500ms) and
	// also the bucket width, so LongWindow/EvalEvery buckets are retained.
	ShortWindow sim.Time
	LongWindow  sim.Time
	EvalEvery   sim.Time
	// WarnBurn enters warn when the short-window burn reaches it (default 1:
	// spending exactly the budget). PageBurn enters burning when BOTH windows
	// reach it (default 2: spending the budget twice over).
	WarnBurn float64
	PageBurn float64
	// ViolateSustain is how many consecutive burning evaluations harden the
	// state to violated (default 4), and symmetrically how many consecutive
	// clean evaluations step the state back down one rung.
	ViolateSustain int
}

func (c *Config) defaults() {
	if c.ShortWindow <= 0 {
		c.ShortWindow = 2 * sim.Second
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 8 * sim.Second
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 500 * sim.Millisecond
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 1
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 2
	}
	if c.ViolateSustain <= 0 {
		c.ViolateSustain = 4
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = c.ShortWindow
	}
}

// bucket is one EvalEvery-wide sample of a stream's deltas.
type bucket struct {
	attempts int64
	losses   int64
	latMax   sim.Time // worst queue-stage latency observed in the bucket
}

// stream is the monitor's per-stream ledger.
type stream struct {
	obj   Objective
	stats func() (attempts, losses int64) // cumulative, monotone

	prevAttempts int64
	prevLosses   int64
	latMax       sim.Time // accumulating for the current bucket

	buckets []bucket // ring: LongWindow/EvalEvery entries
	next    int
	filled  int

	state       State
	hot         int // consecutive evals meeting the burning condition
	cool        int // consecutive clean evals
	shortBurn   float64
	longBurn    float64
	latBreach   bool
	Transitions int64
}

// Monitor evaluates a set of stream objectives on one card.
type Monitor struct {
	Name string
	Cfg  Config

	// OnChange observes every per-stream state transition; the flight
	// recorder hangs KindSLO events and the slo-burn trigger here.
	OnChange func(stream int, from, to State)

	streams []*stream
	byID    map[int]*stream
	stop    func()

	Evals       int64
	Transitions int64
	Violations  int64 // transitions into StateViolated
}

// NewMonitor builds a monitor; cfg zero values select the defaults.
func NewMonitor(name string, cfg Config) *Monitor {
	cfg.defaults()
	return &Monitor{Name: name, Cfg: cfg, byID: make(map[int]*stream)}
}

// Track registers a stream objective with its cumulative counter source.
// stats must be monotone: total service attempts and total losses so far
// (dwcs.StreamStats.Attempts/Losses). Tracking order fixes table order for
// equal IDs; streams render sorted by ID.
func (m *Monitor) Track(obj Objective, stats func() (attempts, losses int64)) {
	n := int(m.Cfg.LongWindow / m.Cfg.EvalEvery)
	if n < 1 {
		n = 1
	}
	s := &stream{obj: obj, stats: stats, buckets: make([]bucket, n)}
	m.streams = append(m.streams, s)
	m.byID[obj.Stream] = s
}

// ObserveSegment feeds a completed pipeline span. Only queue-stage segments
// of tracked streams count against the latency objective; everything else is
// ignored, so the monitor can be wired directly as a SpanLog fan-out.
func (m *Monitor) ObserveSegment(seg telemetry.Segment) {
	if m == nil || seg.Stage != telemetry.StageQueue {
		return
	}
	s, ok := m.byID[seg.Stream]
	if !ok {
		return
	}
	if d := seg.End - seg.Start; d > s.latMax {
		s.latMax = d
	}
}

// window sums the most recent span of buckets.
func (s *stream) window(span, evalEvery sim.Time) (attempts, losses int64, latMax sim.Time) {
	n := int(span / evalEvery)
	if n < 1 {
		n = 1
	}
	if n > s.filled {
		n = s.filled
	}
	for i := 0; i < n; i++ {
		b := s.buckets[(s.next-1-i+len(s.buckets))%len(s.buckets)]
		attempts += b.attempts
		losses += b.losses
		if b.latMax > latMax {
			latMax = b.latMax
		}
	}
	return attempts, losses, latMax
}

// burn converts a windowed loss ratio into budget-relative spend.
func burn(attempts, losses int64, target float64) float64 {
	if attempts == 0 || losses == 0 {
		return 0
	}
	ratio := float64(losses) / float64(attempts)
	if target <= 0 {
		// No budget at all: any loss is an immediate maximal burn. 1e9
		// stands in for +Inf so the arithmetic stays finite and printable.
		return 1e9
	}
	return ratio / target
}

// Eval takes one sample of every stream and advances the state machines.
// Exposed for tests; Start schedules it on the engine.
func (m *Monitor) Eval() {
	m.Evals++
	for _, s := range m.streams {
		attempts, losses := s.stats()
		b := bucket{
			attempts: attempts - s.prevAttempts,
			losses:   losses - s.prevLosses,
			latMax:   s.latMax,
		}
		s.prevAttempts, s.prevLosses = attempts, losses
		s.latMax = 0
		s.buckets[s.next] = b
		s.next = (s.next + 1) % len(s.buckets)
		if s.filled < len(s.buckets) {
			s.filled++
		}

		sa, sl, slat := s.window(m.Cfg.ShortWindow, m.Cfg.EvalEvery)
		la, ll, _ := s.window(m.Cfg.LongWindow, m.Cfg.EvalEvery)
		s.shortBurn = burn(sa, sl, s.obj.LossTarget)
		s.longBurn = burn(la, ll, s.obj.LossTarget)
		s.latBreach = s.obj.LatencyTarget > 0 && slat > s.obj.LatencyTarget

		burning := (s.shortBurn >= m.Cfg.PageBurn && s.longBurn >= m.Cfg.PageBurn) || s.latBreach
		warn := s.shortBurn >= m.Cfg.WarnBurn || s.latBreach

		next := s.state
		switch {
		case burning:
			s.hot++
			s.cool = 0
			if s.state >= StateBurning && s.hot >= m.Cfg.ViolateSustain {
				next = StateViolated
			} else if s.state < StateBurning {
				next = StateBurning
			}
		case warn:
			s.hot = 0
			s.cool = 0
			if s.state < StateWarn {
				next = StateWarn
			}
		default:
			s.hot = 0
			s.cool++
			if s.state > StateOK && s.cool >= m.Cfg.ViolateSustain {
				next = s.state - 1
				s.cool = 0
			}
		}
		if next != s.state {
			from := s.state
			s.state = next
			s.Transitions++
			m.Transitions++
			if next == StateViolated {
				m.Violations++
			}
			if m.OnChange != nil {
				m.OnChange(s.obj.Stream, from, next)
			}
		}
	}
}

// Start schedules periodic evaluation on eng; Stop cancels it.
func (m *Monitor) Start(eng *sim.Engine) {
	if m.stop != nil {
		return
	}
	m.stop = eng.Every(m.Cfg.EvalEvery, m.Eval)
}

// Stop cancels periodic evaluation.
func (m *Monitor) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

// StreamState returns a tracked stream's current health.
func (m *Monitor) StreamState(id int) State {
	if s, ok := m.byID[id]; ok {
		return s.state
	}
	return StateOK
}

// Health is the card's health: the worst tracked stream.
func (m *Monitor) Health() State {
	worst := StateOK
	for _, s := range m.streams {
		if s.state > worst {
			worst = s.state
		}
	}
	return worst
}

// StreamSample is one tracked stream's structured health snapshot — the
// scrape-friendly form of one Table row.
type StreamSample struct {
	Stream      int
	Name        string
	State       State
	ShortBurn   float64
	LongBurn    float64
	Transitions int64
}

// Sample returns per-stream structured health, sorted by stream ID. It is
// the machine-readable Table: the fleet scrape plane ships these rows over
// the DVCM link instead of parsing rendered text.
func (m *Monitor) Sample() []StreamSample {
	if m == nil {
		return nil
	}
	out := make([]StreamSample, 0, len(m.streams))
	for _, s := range m.streams {
		out = append(out, StreamSample{
			Stream:      s.obj.Stream,
			Name:        s.obj.Name,
			State:       s.state,
			ShortBurn:   s.shortBurn,
			LongBurn:    s.longBurn,
			Transitions: s.Transitions,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// Tracked reports whether the monitor already tracks stream id — migration
// targets use this to avoid double-tracking a stream that returns to a card
// it previously lived on.
func (m *Monitor) Tracked(id int) bool {
	if m == nil {
		return false
	}
	_, ok := m.byID[id]
	return ok
}

// Instrument registers the monitor's series under the "slo" component.
func (m *Monitor) Instrument(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.GaugeFunc("slo", "health",
		"card health: worst stream state (0 ok … 3 violated)",
		func() float64 { return float64(m.Health()) })
	reg.CounterFunc("slo", "evals_total",
		"SLO evaluation passes", func() int64 { return m.Evals })
	reg.CounterFunc("slo", "transitions_total",
		"stream health-state transitions", func() int64 { return m.Transitions })
	reg.CounterFunc("slo", "violations_total",
		"transitions into violated", func() int64 { return m.Violations })
}

// Table renders per-stream health, sorted by stream ID — deterministic and
// diffable, the slo.txt artifact.
func (m *Monitor) Table() string {
	rows := make([]*stream, len(m.streams))
	copy(rows, m.streams)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].obj.Stream < rows[j].obj.Stream })
	var b strings.Builder
	fmt.Fprintf(&b, "slo %s: health=%s, %d eval(s), %d transition(s), %d violation(s)\n",
		m.Name, m.Health(), m.Evals, m.Transitions, m.Violations)
	fmt.Fprintf(&b, "%-4s %-14s %-9s %10s %10s %10s %6s\n",
		"id", "name", "state", "short_burn", "long_burn", "loss_tgt", "trans")
	for _, s := range rows {
		fmt.Fprintf(&b, "%-4d %-14s %-9s %10.2f %10.2f %10.4f %6d\n",
			s.obj.Stream, s.obj.Name, s.state, s.shortBurn, s.longBurn,
			s.obj.LossTarget, s.Transitions)
	}
	return b.String()
}
