package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 16)
	eng.At(10*sim.Microsecond, func() {
		l.Record(KindEnqueue, "ni0/dwcs", 1, 0, "")
	})
	eng.At(20*sim.Microsecond, func() {
		l.Recordf(KindDispatch, "ni0/dwcs", 1, 0, "late=%v", false)
	})
	eng.Run()
	evs := l.Events()
	if len(evs) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != 10*sim.Microsecond || evs[0].Kind != KindEnqueue {
		t.Fatalf("first = %+v", evs[0])
	}
	if evs[1].Note != "late=false" {
		t.Fatalf("note = %q", evs[1].Note)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 4)
	for i := 0; i < 10; i++ {
		l.Record(KindUser, "x", i, -1, "")
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d", len(evs))
	}
	for i, e := range evs {
		if e.Stream != 6+i {
			t.Fatalf("retained wrong window: %+v", evs)
		}
	}
	if l.Dropped != 6 {
		t.Fatalf("dropped = %d", l.Dropped)
	}
}

func TestFilters(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 0) // default capacity
	l.Record(KindDrop, "a", 1, 5, "")
	l.Record(KindDispatch, "a", 2, 6, "")
	l.Record(KindDrop, "b", 2, 7, "")
	if got := l.ByKind(KindDrop); len(got) != 2 {
		t.Fatalf("ByKind = %d", len(got))
	}
	if got := l.ByStream(2); len(got) != 2 {
		t.Fatalf("ByStream = %d", len(got))
	}
}

func TestDisabledAndNil(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 8)
	l.Enabled = false
	l.Record(KindUser, "x", -1, -1, "")
	if l.Len() != 0 {
		t.Fatal("disabled log recorded")
	}
	var nilLog *Log
	nilLog.Record(KindUser, "x", -1, -1, "") // must not panic
	nilLog.Recordf(KindUser, "x", -1, -1, "%d", 1)
}

func TestDumpAndSummary(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 8)
	l.Record(KindMiss, "ni0", 3, 9, "deadline passed")
	l.Record(KindMiss, "ni0", 3, 10, "")
	l.Record(KindIO, "disk0", -1, -1, "read 8k")
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "miss") || !strings.Contains(out, "s3#9") ||
		!strings.Contains(out, "deadline passed") {
		t.Fatalf("dump: %s", out)
	}
	sum := l.Summary()
	if !strings.Contains(sum, "miss=2") || !strings.Contains(sum, "io=1") {
		t.Fatalf("summary: %s", sum)
	}
}

func TestKindString(t *testing.T) {
	if KindDispatch.String() != "dispatch" {
		t.Error("kind name")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("unknown kind name")
	}
}

// Property: the ring retains exactly the last min(n, cap) events in order.
func TestRingRetentionProperty(t *testing.T) {
	f := func(n uint8, capSeed uint8) bool {
		cap := int(capSeed)%32 + 1
		eng := sim.NewEngine(1)
		l := New(eng, cap)
		for i := 0; i < int(n); i++ {
			l.Record(KindUser, "x", i, -1, "")
		}
		evs := l.Events()
		want := int(n)
		if want > cap {
			want = cap
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.Stream != int(n)-want+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeVisitsChronologicallyAfterWrap(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 4)
	for i := 0; i < 6; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Microsecond, func() {
			l.Record(KindUser, "src", i, int64(i), "")
		})
	}
	eng.Run()
	var seen []int
	l.Range(func(e Event) bool {
		seen = append(seen, e.Stream)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("visited %d events, want 4", len(seen))
	}
	for i, want := range []int{2, 3, 4, 5} {
		if seen[i] != want {
			t.Fatalf("range order = %v, want [2 3 4 5]", seen)
		}
	}
}

func TestRangeEarlyExit(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 8)
	for i := 0; i < 5; i++ {
		l.Record(KindUser, "src", i, -1, "")
	}
	n := 0
	l.Range(func(Event) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("visited %d events after early exit, want 2", n)
	}
	// Early exit must also work on the wrapped (full) half of the ring.
	for i := 5; i < 10; i++ {
		l.Record(KindUser, "src", i, -1, "")
	}
	n = 0
	l.Range(func(Event) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("visited %d events, want 1", n)
	}
}

func TestRangeNilLog(t *testing.T) {
	var l *Log
	l.Range(func(Event) bool {
		t.Fatal("nil log visited an event")
		return true
	})
}

func TestRecordClampsOutOfRangeKind(t *testing.T) {
	eng := sim.NewEngine(1)
	l := New(eng, 8)
	l.Record(Kind(200), "src", 1, -1, "bogus kind")
	l.Record(numKinds, "src", 2, -1, "first invalid value")
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Kind != KindUser {
			t.Errorf("kind = %v, want KindUser (clamped)", e.Kind)
		}
	}
	if got := l.Summary(); !strings.Contains(got, "user=2") {
		t.Errorf("summary = %q, want user=2", got)
	}
	if got := l.ByKind(KindUser); len(got) != 2 {
		t.Errorf("ByKind(KindUser) = %d events, want 2", len(got))
	}
}
