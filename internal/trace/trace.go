// Package trace is a lightweight structured event log for the simulated
// server: substrates record what happened and when (simulated time), and
// tools dump, filter, or summarize the log. It is the reproduction's
// equivalent of the instrumentation the paper says it "built ... to measure
// desired performance parameters at the scheduler card or at the remote
// client end" (§4.1).
//
// The log is a bounded ring: old events are overwritten once the capacity
// is reached, like an on-card trace buffer would be.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KindEnqueue Kind = iota
	KindDispatch
	KindDrop
	KindMiss
	KindIO
	KindBus
	KindNet
	// KindHandoff marks a stream placement handoff crossing this card: a
	// migration export, import, or re-add. Seq carries the frame cursor the
	// new placement starts from, so card-local traces can be stitched to the
	// fleet's span epochs.
	KindHandoff
	KindUser
	numKinds
)

var kindNames = [numKinds]string{
	"enqueue", "dispatch", "drop", "miss", "io", "bus", "net", "handoff", "user",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At     sim.Time
	Kind   Kind
	Source string // component, e.g. "ni0/dwcs"
	Stream int    // stream id, -1 when not stream-related
	Seq    int64  // sequence number, -1 when not applicable
	Note   string
}

// String renders one line.
func (e Event) String() string {
	b := fmt.Sprintf("%12v %-8s %-14s", e.At, e.Kind, e.Source)
	if e.Stream >= 0 {
		b += fmt.Sprintf(" s%d", e.Stream)
	}
	if e.Seq >= 0 {
		b += fmt.Sprintf("#%d", e.Seq)
	}
	if e.Note != "" {
		b += " " + e.Note
	}
	return b
}

// Log is a bounded event ring.
type Log struct {
	eng    *sim.Engine
	events []Event
	next   int
	full   bool

	// Dropped counts events lost to the bound (always 0 until the ring
	// wraps; afterwards it counts overwrites).
	Dropped int64
	// Enabled gates recording; a disabled log costs one branch per Record.
	Enabled bool
}

// New returns an enabled log of the given capacity.
func New(eng *sim.Engine, capacity int) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Log{eng: eng, events: make([]Event, capacity), Enabled: true}
}

// Record appends an event at the current simulated time. Out-of-range kinds
// are clamped to KindUser so they can't skew per-kind tallies (Summary) or
// dodge ByKind filters.
func (l *Log) Record(kind Kind, source string, stream int, seq int64, note string) {
	if l == nil || !l.Enabled {
		return
	}
	if kind >= numKinds {
		kind = KindUser
	}
	if l.full {
		l.Dropped++
	}
	l.events[l.next] = Event{
		At: l.eng.Now(), Kind: kind, Source: source, Stream: stream, Seq: seq, Note: note,
	}
	l.next++
	if l.next == len(l.events) {
		l.next = 0
		l.full = true
	}
}

// Recordf is Record with a formatted note.
func (l *Log) Recordf(kind Kind, source string, stream int, seq int64, format string, args ...any) {
	if l == nil || !l.Enabled {
		return
	}
	l.Record(kind, source, stream, seq, fmt.Sprintf(format, args...))
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l.full {
		return len(l.events)
	}
	return l.next
}

// Events returns retained events in chronological order.
func (l *Log) Events() []Event {
	if !l.full {
		return append([]Event(nil), l.events[:l.next]...)
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Range visits retained events in chronological order without copying the
// ring. fn returning false stops the walk.
func (l *Log) Range(fn func(Event) bool) {
	if l == nil {
		return
	}
	if l.full {
		for _, e := range l.events[l.next:] {
			if !fn(e) {
				return
			}
		}
	}
	for _, e := range l.events[:l.next] {
		if !fn(e) {
			return
		}
	}
}

// Filter returns retained events matching the predicate.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	l.Range(func(e Event) bool {
		if keep(e) {
			out = append(out, e)
		}
		return true
	})
	return out
}

// ByKind returns retained events of one kind.
func (l *Log) ByKind(k Kind) []Event {
	return l.Filter(func(e Event) bool { return e.Kind == k })
}

// ByStream returns retained events of one stream.
func (l *Log) ByStream(id int) []Event {
	return l.Filter(func(e Event) bool { return e.Stream == id })
}

// Dump writes the retained events to w, one per line.
func (l *Log) Dump(w io.Writer) error {
	var err error
	l.Range(func(e Event) bool {
		_, err = fmt.Fprintln(w, e)
		return err == nil
	})
	return err
}

// Summary tallies retained events by kind.
func (l *Log) Summary() string {
	var counts [numKinds]int
	l.Range(func(e Event) bool {
		counts[e.Kind]++
		return true
	})
	var parts []string
	for k, n := range counts {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), n))
		}
	}
	if l.Dropped > 0 {
		parts = append(parts, fmt.Sprintf("overwritten=%d", l.Dropped))
	}
	return strings.Join(parts, " ")
}
