// Partitioned, conservative-lookahead parallel simulation.
//
// A Topology splits one simulation into Partitions — each owns a private
// Engine (event heap, arena, RNG stream, clock) — joined by declared
// channels with a minimum latency ("lookahead"). The paper's hardware gives
// the partition boundary for free: each co-processor card is an independent
// OS-like domain, and every interaction between domains (PCI transfers,
// Ethernet hops, DVCM instructions) crosses a link whose latency is known
// and strictly positive. That latency is exactly the conservative safe
// horizon: while partition q's clock is at time T, nothing q does can
// affect partition p before T + lookahead(q→p), so p may burn down its own
// heap that far on another core without ever seeing an event out of order.
//
// The synchronization protocol is a synchronous LBTS (lower bound on
// timestamp) window scheme. Each round:
//
//  1. In-flight inter-partition messages are merged into their destination
//     heaps in a deterministic order — (deliver time, source partition ID,
//     source sequence) — so simultaneous timestamps from different
//     partitions always tie-break the same way, at any worker count.
//  2. Every partition computes its safe horizon: the minimum over inbound
//     channels of (source's next event time + channel lookahead).
//  3. All partitions with work below their horizon run in parallel, each on
//     its own heap, each collecting outbound messages in a private outbox.
//     The partition→worker mapping is fixed (partition ID mod workers), and
//     because partitions share no mutable state, the artifact stream of a
//     run is byte-identical whether Workers is 1 or N.
//
// Messages sent while processing a window always land at or beyond every
// destination's horizon (deliver time ≥ source time + lookahead ≥ horizon),
// which is the conservative-correctness invariant; Connect rejects
// non-positive lookahead because the window scheme cannot make progress
// safely without it.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// maxHorizon is the "no bound" sentinel; far enough from MaxInt64 that
// adding a lookahead cannot overflow.
const maxHorizon Time = math.MaxInt64 / 4

// edge is one directed channel in a topology's connectivity graph.
type edge struct {
	peer      int32
	lookahead Time
}

// Topology is a set of partitions joined by lookahead channels, run under a
// conservative parallel scheduler.
type Topology struct {
	// Workers caps the worker pool. 0 uses GOMAXPROCS; 1 recovers a fully
	// sequential engine (same windows, same merges, zero goroutines), which
	// is the reference the byte-identical-artifacts contract is pinned to.
	Workers int

	seed  int64
	parts []*Partition
	in    [][]edge // inbound channels per partition
	out   [][]edge // outbound channels per partition

	// Rounds counts synchronization windows executed, for
	// efficiency-diagnostic reporting (events per round is the
	// parallelism grain).
	Rounds int64

	scratch []xmsg // merge buffer, reused across rounds
}

// NewTopology returns an empty topology. seed decorrelates the partitions'
// RNG streams: partition i's engine is seeded with a deterministic function
// of (seed, i), so runs replay identically at any worker count.
func NewTopology(seed int64) *Topology { return &Topology{seed: seed} }

// AddPartition appends a partition with its own engine, RNG stream, and
// clock.
func (t *Topology) AddPartition(name string) *Partition {
	id := int32(len(t.parts))
	p := &Partition{
		id:   id,
		name: name,
		topo: t,
		// Golden-ratio stride decorrelates the per-partition RNG streams
		// while keeping them a pure function of (seed, partition ID).
		eng: NewEngine(t.seed + int64(uint64(id)*0x9E3779B97F4A7C15)),
	}
	t.parts = append(t.parts, p)
	t.in = append(t.in, nil)
	t.out = append(t.out, nil)
	return p
}

// Partitions returns the partitions in ID order.
func (t *Topology) Partitions() []*Partition { return t.parts }

// Connect declares a directed channel src→dst whose messages take at least
// lookahead to arrive. The lookahead must be strictly positive: it is the
// conservative safe horizon, and a zero-lookahead channel would force the
// window scheme to a zero-width window (no safe parallel progress at all),
// so it is a configuration error, not a degraded mode.
func (t *Topology) Connect(src, dst *Partition, lookahead Time) error {
	if src == nil || dst == nil || src.topo != t || dst.topo != t {
		return fmt.Errorf("sim: Connect: both partitions must belong to this topology")
	}
	if src == dst {
		return fmt.Errorf("sim: Connect: self-channel on %q (schedule locally via Eng instead)", src.name)
	}
	if lookahead <= 0 {
		return fmt.Errorf("sim: Connect %s→%s: lookahead %v is not positive; a conservative engine cannot make safe progress across a zero-lookahead channel", src.name, dst.name, lookahead)
	}
	for _, e := range t.out[src.id] {
		if e.peer == dst.id {
			return fmt.Errorf("sim: Connect %s→%s: channel already declared", src.name, dst.name)
		}
	}
	t.out[src.id] = append(t.out[src.id], edge{peer: dst.id, lookahead: lookahead})
	t.in[dst.id] = append(t.in[dst.id], edge{peer: src.id, lookahead: lookahead})
	return nil
}

// Lookahead reports the declared minimum latency of the src→dst channel
// (0, false when no channel exists).
func (t *Topology) Lookahead(src, dst *Partition) (Time, bool) {
	for _, e := range t.out[src.id] {
		if e.peer == dst.id {
			return e.lookahead, true
		}
	}
	return 0, false
}

// Partition is one conservatively synchronized domain: a private engine
// plus an outbox of timestamped messages bound for other partitions.
type Partition struct {
	id   int32
	name string
	topo *Topology
	eng  *Engine

	outbox []xmsg
	msgSeq uint64

	// per-round scheduling state, owned by the coordinator between windows
	// and read by exactly one worker during a window
	horizon Time
	active  bool
}

// ID returns the partition's index in its topology.
func (p *Partition) ID() int { return int(p.id) }

// Name returns the partition's diagnostic name.
func (p *Partition) Name() string { return p.name }

// Eng returns the partition's private engine. All substrate components of
// the partition (cards, buses, disks, links) are built on it exactly as
// they would be on a standalone engine.
func (p *Partition) Eng() *Engine { return p.eng }

// xmsg is one timestamped inter-partition message in an outbox.
type xmsg struct {
	at       Time
	src, dst int32
	seq      uint64
	fn       func()
	st       *msgState
}

// msgState backs a Msg handle. It is written by the owning partition's
// worker (cancelled) and by the single-threaded barrier merge (delivered,
// ev); the round barrier provides the happens-before edges between the two.
type msgState struct {
	cancelled bool
	delivered bool
	ev        Event
}

// Msg is a handle to an inter-partition message, analogous to Event for
// local schedules. The zero value is inert. A Msg may only be used by the
// partition that sent it.
type Msg struct{ st *msgState }

// Cancel suppresses the message if it has not yet crossed the window
// barrier. Once delivered into the destination partition the message is out
// of the sender's jurisdiction — like a frame already handed to the wire —
// and Cancel becomes a safe no-op: it never reaches across partitions, so
// it can never race with the destination's worker or cancel an unrelated
// event whose arena slot was reused. Safe on the zero value and after the
// callback has fired.
func (m Msg) Cancel() {
	if m.st == nil || m.st.delivered {
		return
	}
	m.st.cancelled = true
}

// Delivered reports whether the message has crossed the barrier into its
// destination partition's heap.
func (m Msg) Delivered() bool { return m.st != nil && m.st.delivered }

// Cancelled reports whether Cancel suppressed the message before delivery.
func (m Msg) Cancelled() bool { return m.st != nil && m.st.cancelled }

// Send schedules fn in partition dst at the sender's now+delay. The
// channel src→dst must have been declared with Connect, and delay must be
// at least its lookahead — sending faster than the channel's modeled
// latency would break the conservative horizon, so it panics as a modeling
// bug (exactly like scheduling in the past on an Engine).
func (p *Partition) Send(dst *Partition, delay Time, fn func()) Msg {
	if dst == nil || dst.topo != p.topo {
		panic(fmt.Sprintf("sim: partition %s: Send to a partition outside this topology", p.name))
	}
	var la Time
	found := false
	for _, e := range p.topo.out[p.id] {
		if e.peer == dst.id {
			la, found = e.lookahead, true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("sim: partition %s: Send to %s without a declared channel (Connect first)", p.name, dst.name))
	}
	if delay < la {
		panic(fmt.Sprintf("sim: partition %s: Send to %s with delay %v below the channel lookahead %v", p.name, dst.name, delay, la))
	}
	p.msgSeq++
	st := &msgState{}
	p.outbox = append(p.outbox, xmsg{
		at:  p.eng.Now() + delay,
		src: p.id,
		dst: dst.id,
		seq: p.msgSeq,
		fn:  fn,
		st:  st,
	})
	return Msg{st: st}
}

// deliver merges every outbox into the destination heaps. It runs
// single-threaded between windows. Messages are injected in
// (time, source partition ID, source sequence) order, so the destination
// engine's tie-break sequence numbers — and therefore the relative firing
// order of simultaneous cross-partition events — are identical at any
// worker count.
func (t *Topology) deliver() {
	n := 0
	for _, p := range t.parts {
		n += len(p.outbox)
	}
	if n == 0 {
		return
	}
	msgs := t.scratch[:0]
	for _, p := range t.parts {
		msgs = append(msgs, p.outbox...)
		p.outbox = p.outbox[:0]
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].at != msgs[j].at {
			return msgs[i].at < msgs[j].at
		}
		if msgs[i].src != msgs[j].src {
			return msgs[i].src < msgs[j].src
		}
		return msgs[i].seq < msgs[j].seq
	})
	for i := range msgs {
		m := &msgs[i]
		if m.st.cancelled {
			continue
		}
		m.st.ev = t.parts[m.dst].eng.At(m.at, m.fn)
		m.st.delivered = true
	}
	t.scratch = msgs[:0]
}

// horizons computes each partition's safe bound for the next window and
// reports whether any partition has work below its bound. cap is the
// exclusive upper limit on processable time (end+1 for RunUntil(end)).
func (t *Topology) horizons(cap Time) bool {
	// Next pending event per partition (cancelled-but-unreaped events
	// included — they only make the bound tighter, never wrong).
	next := make([]Time, len(t.parts))
	for i, p := range t.parts {
		if at, ok := p.eng.NextAt(); ok {
			next[i] = at
		} else {
			next[i] = maxHorizon
		}
	}
	// An idle partition is not silent forever: an in-flight causal chain can
	// wake it (a→b→a ping-pong has one side idle every round). Relax each
	// bound through inbound channels to the LBTS fixed point: next[i] becomes
	// a lower bound on the time of ANY event partition i can ever execute,
	// including ones that arrive later. Lookaheads are strictly positive, so
	// the relaxation converges (bounds only decrease, by at least one
	// channel's lookahead per hop, and never below the current global
	// minimum).
	lbts := next
	for changed := true; changed; {
		changed = false
		for i := range t.parts {
			for _, e := range t.in[i] {
				if nh := lbts[e.peer] + e.lookahead; nh < lbts[i] {
					lbts[i] = nh
					changed = true
				}
			}
		}
	}
	any := false
	for i, p := range t.parts {
		h := cap
		for _, e := range t.in[i] {
			if nh := lbts[e.peer] + e.lookahead; nh < h {
				h = nh
			}
		}
		p.horizon = h
		if at, ok := p.eng.NextAt(); ok {
			p.active = at < h
		} else {
			p.active = false
		}
		any = any || p.active
	}
	return any
}

// window runs every active partition up to (horizon-1] across the worker
// pool with the fixed partition→worker mapping (ID mod workers).
func (t *Topology) window(workers int) {
	t.Rounds++
	if workers <= 1 {
		for _, p := range t.parts {
			if p.active {
				p.eng.RunUntil(p.horizon - 1)
			}
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		busy := false
		for i := w; i < len(t.parts); i += workers {
			if t.parts[i].active {
				busy = true
				break
			}
		}
		if !busy {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(t.parts); i += workers {
				if p := t.parts[i]; p.active {
					p.eng.RunUntil(p.horizon - 1)
				}
			}
		}(w)
	}
	wg.Wait()
}

// RunUntil advances every partition to time end, firing all events with
// time ≤ end in conservative windows, then sets every clock to end. Events
// scheduled beyond end stay pending, exactly like Engine.RunUntil.
func (t *Topology) RunUntil(end Time) {
	if end < 0 {
		panic(fmt.Sprintf("sim: Topology.RunUntil(%v) before time zero", end))
	}
	t.run(end)
}

// Run fires events until no partition has any pending event or undelivered
// message. A model with self-rescheduling periodic events never drains;
// prefer RunUntil for such workloads, as with Engine.Run.
func (t *Topology) Run() { t.run(maxHorizon - 1) }

func (t *Topology) run(end Time) {
	workers := t.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(t.parts) {
		workers = len(t.parts)
	}
	for {
		t.deliver()
		if !t.horizons(end + 1) {
			break
		}
		t.window(workers)
	}
	for _, p := range t.parts {
		if end < maxHorizon-1 {
			p.eng.RunUntil(end) // no events remain ≤ end; aligns the clock
		}
	}
}

// Drain releases every partition engine's arena, heap, and free-list
// storage (see Engine.Drain) — long sweeps drop a finished scenario's peak
// event capacity before building the next one.
func (t *Topology) Drain() {
	for _, p := range t.parts {
		p.eng.Drain()
	}
}
