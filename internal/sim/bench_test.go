package sim

import "testing"

// BenchmarkEngineSteadyState is the kernel's hot loop: one event fires and
// schedules its successor, so the arena stays at one slot and the heap at
// one entry. This is the pattern every periodic substrate (producers,
// bandwidth meters, utilization samplers) drives; it must not allocate.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(Microsecond, tick)
	e.Run()
}

// BenchmarkEngineDepth256 keeps 256 events outstanding — the deep-queue
// regime of the figure runs (producers, meters, web load, per-packet
// timers all pending at once).
func BenchmarkEngineDepth256(b *testing.B) {
	const depth = 256
	e := NewEngine(1)
	fired := 0
	var reschedule func()
	reschedule = func() {
		fired++
		if fired <= b.N {
			e.After(Time(1+fired%97)*Microsecond, reschedule)
		}
	}
	for i := 0; i < depth; i++ {
		e.After(Time(1+i%97)*Microsecond, reschedule)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for fired < b.N {
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule-then-cancel cycle timers
// drive (transport RTO timers, paced wakeups): the cancelled event is
// reaped lazily by the next Step.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(Microsecond, func() {})
		ev.Cancel()
		e.Step()
	}
}
