package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineSteadyState is the kernel's hot loop: one event fires and
// schedules its successor, so the arena stays at one slot and the heap at
// one entry. This is the pattern every periodic substrate (producers,
// bandwidth meters, utilization samplers) drives; it must not allocate.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(Microsecond, tick)
	e.Run()
}

// BenchmarkEngineDepth256 keeps 256 events outstanding — the deep-queue
// regime of the figure runs (producers, meters, web load, per-packet
// timers all pending at once).
func BenchmarkEngineDepth256(b *testing.B) {
	const depth = 256
	e := NewEngine(1)
	fired := 0
	var reschedule func()
	reschedule = func() {
		fired++
		if fired <= b.N {
			e.After(Time(1+fired%97)*Microsecond, reschedule)
		}
	}
	for i := 0; i < depth; i++ {
		e.After(Time(1+i%97)*Microsecond, reschedule)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for fired < b.N {
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule-then-cancel cycle timers
// drive (transport RTO timers, paced wakeups): the cancelled event is
// reaped lazily by the next Step.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(Microsecond, func() {})
		ev.Cancel()
		e.Step()
	}
}

// parallelBenchWorkload wires the BenchmarkParallelEngine fleet: `cards`
// domains, each running `chains` self-rescheduling tick chains (the dense
// local card work: ring polls, pacing timers, meters) plus a periodic
// message to the next card in a ring (the sparse cross-card traffic:
// fleet-network hops). send must schedule a counted event in the next
// domain after ringLat — against the NEXT domain's counter, since that is
// whose worker executes it.
func parallelBenchWorkload(eng *Engine, card int, fired *int64, send func()) {
	const (
		chains  = 4
		tick    = 10 * Microsecond
		ringLat = 250 * Microsecond
	)
	for ch := 0; ch < chains; ch++ {
		var loop func()
		loop = func() {
			*fired++
			eng.After(tick, loop)
		}
		eng.At(Time(ch)+1, loop)
	}
	var pulse func()
	pulse = func() {
		*fired++
		send()
		eng.After(ringLat, pulse)
	}
	eng.At(Time(card)+2, pulse)
}

// BenchmarkParallelEngine pits the partitioned conservative engine against
// a monolithic single-heap run of the same 64-card fleet workload. The
// workersN variants use the fixed ID-mod-N worker mapping; speedup over
// the monolith scales with physical cores (the partition windows are
// ~250µs of lookahead holding ~100 events of local work each). ns/event is
// the metric pinned in BENCH_BASELINE.json alongside ns/op.
func BenchmarkParallelEngine(b *testing.B) {
	const (
		cards   = 64
		ringLat = 250 * Microsecond
		simFor  = 5 * Millisecond
	)

	b.Run("cards64/monolith", func(b *testing.B) {
		b.ReportAllocs()
		var fired int64
		for i := 0; i < b.N; i++ {
			eng := NewEngine(1)
			for c := 0; c < cards; c++ {
				parallelBenchWorkload(eng, c, &fired, func() {
					eng.After(ringLat, func() { fired++ })
				})
			}
			eng.RunUntil(simFor)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/event")
	})

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cards64/workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var fired int64
			var rounds int64
			// Counters are per-card: partitions run on different worker
			// goroutines, so a shared counter would race.
			perCard := make([]int64, cards)
			for i := 0; i < b.N; i++ {
				topo := NewTopology(1)
				parts := make([]*Partition, cards)
				for c := range parts {
					parts[c] = topo.AddPartition(fmt.Sprintf("card%02d", c))
				}
				for c := range parts {
					if err := topo.Connect(parts[c], parts[(c+1)%cards], ringLat); err != nil {
						b.Fatal(err)
					}
				}
				topo.Workers = workers
				for c := range parts {
					p, next := parts[c], parts[(c+1)%cards]
					dst := &perCard[(c+1)%cards]
					parallelBenchWorkload(p.Eng(), c, &perCard[c], func() {
						p.Send(next, ringLat, func() { *dst++ })
					})
				}
				topo.RunUntil(simFor)
				rounds += topo.Rounds
			}
			for _, n := range perCard {
				fired += n
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/event")
			b.ReportMetric(float64(fired)/float64(rounds), "events/round")
		})
	}
}
