package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.At(30*Microsecond, func() { got = append(got, e.Now()) })
	e.At(10*Microsecond, func() { got = append(got, e.Now()) })
	e.At(20*Microsecond, func() { got = append(got, e.Now()) })
	e.Run()
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	if len(got) != 3 {
		t.Fatalf("fired %d events, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events fired out of insertion order: %v", got)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestCancelSkipsEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v for cancelled event", e.Now())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(10, func() { count++ })
	e.At(20, func() { count++ })
	e.At(30, func() { count++ })
	e.RunUntil(20)
	if count != 2 {
		t.Fatalf("fired %d events, want 2", count)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	e.Run()
	if count != 3 {
		t.Fatalf("fired %d events total, want 3", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("now = %v, want 500", e.Now())
	}
}

func TestEveryTicksUntilStopped(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var stop func()
	stop = e.Every(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			stop()
		}
	})
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		if want := Time(10 * (i + 1)); at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var trace []int64
		for i := 0; i < 100; i++ {
			d := Time(e.Rand().Intn(1000) + 1)
			e.After(d, func() { trace = append(trace, int64(e.Now())) })
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "bus")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(Time(i), func() {
			r.Use(100, func() { order = append(order, i) })
		})
	}
	e.Run()
	if !sort.IntsAreSorted(order) || len(order) != 5 {
		t.Fatalf("grants out of FIFO order: %v", order)
	}
	// 5 sequential 100ns holds finish at 100, 200, ... 500.
	if e.Now() != 500 {
		t.Fatalf("finished at %v, want 500", e.Now())
	}
}

func TestResourceSerializesHolders(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk")
	active := 0
	maxActive := 0
	for i := 0; i < 8; i++ {
		r.Acquire(func() {
			active++
			if active > maxActive {
				maxActive = active
			}
			e.After(10, func() {
				active--
				r.Release()
			})
		})
	}
	e.Run()
	if maxActive != 1 {
		t.Fatalf("resource held by %d at once", maxActive)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Release()
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu")
	r.Use(100, nil)
	e.Run()
	e.RunUntil(200)
	got := r.Utilization()
	if got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		3 * Microsecond: "3.000µs",
		2 * Millisecond: "2.000ms",
		1 * Second:      "1.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

// Property: RunUntil never runs events scheduled after the horizon.
func TestRunUntilHorizonProperty(t *testing.T) {
	f := func(offsets []uint16, horizon uint16) bool {
		e := NewEngine(7)
		ok := true
		for _, off := range offsets {
			at := Time(off)
			e.At(at, func() {
				if e.Now() > Time(horizon) {
					ok = false
				}
			})
		}
		e.RunUntil(Time(horizon))
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelTwiceIsNoop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	ev := e.At(10, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
	// The arena slot has been recycled; a stale Cancel must not touch it.
	ev.Cancel()
	e.At(20, func() { count++ })
	e.Run()
	if count != 2 {
		t.Fatalf("stale Cancel suppressed a reused slot: count = %d", count)
	}
}

func TestCancelStaleHandleDoesNotTouchReusedSlot(t *testing.T) {
	e := NewEngine(1)
	var stale Event
	fired := 0
	stale = e.At(10, func() {})
	e.Run() // fires and recycles the slot

	// The next scheduled event reuses the same arena slot (LIFO free-list).
	ev2 := e.At(20, func() { fired++ })
	if stale.idx != ev2.idx {
		t.Fatalf("test premise broken: slots %d vs %d (free-list not LIFO?)", stale.idx, ev2.idx)
	}
	stale.Cancel() // generation mismatch: must not cancel ev2
	e.Run()
	if fired != 1 {
		t.Fatalf("stale handle cancelled a newer event in the reused slot (fired=%d)", fired)
	}
}

func TestScheduledReporting(t *testing.T) {
	e := NewEngine(1)
	var zero Event
	if zero.Scheduled() {
		t.Error("zero-value Event reports Scheduled")
	}
	zero.Cancel() // must not panic

	ev := e.At(10, func() {})
	if !ev.Scheduled() {
		t.Error("pending event not Scheduled")
	}
	ev.Cancel()
	if ev.Scheduled() {
		t.Error("cancelled event still Scheduled")
	}

	ev2 := e.At(20, func() {})
	e.Run()
	if ev2.Scheduled() {
		t.Error("fired event still Scheduled")
	}
}

func TestArenaReusesSlots(t *testing.T) {
	e := NewEngine(1)
	// A schedule-inside-callback chain must keep recycling one slot.
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run()
	if n != 1000 {
		t.Fatalf("ticked %d, want 1000", n)
	}
	if got := len(e.slots); got > 2 {
		t.Errorf("arena grew to %d slots for a steady-state chain, want ≤ 2", got)
	}
}

// Property: the arena kernel replays any (offset, cancel) pattern exactly
// like a reference ordering by (time, seq).
func TestHeapOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine(3)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, off := range offsets {
			at := Time(off)
			i := i
			e.At(at, func() { got = append(got, rec{e.Now(), i}) })
		}
		e.Run()
		if len(got) != len(offsets) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Drain must release the peak arena capacity a burst left behind, keep the
// clock/seq/RNG intact, and leave pre-Drain handles permanently inert —
// even when the new arena reuses the same slot indices at the same
// generation.
func TestDrainReleasesArenaHighWater(t *testing.T) {
	e := NewEngine(7)
	fired := 0
	var handles []Event
	for i := 0; i < 100000; i++ {
		handles = append(handles, e.At(Time(i), func() { fired++ }))
	}
	e.RunUntil(49999)
	if fired != 50000 {
		t.Fatalf("fired %d of the first 50000", fired)
	}
	if hw := e.ArenaCap(); hw < 50000 {
		t.Fatalf("arena high-water %d, want ≥ 50000 before Drain", hw)
	}
	r1 := e.Rand().Int63()
	e.Drain()
	if hw := e.ArenaCap(); hw != 0 {
		t.Fatalf("arena capacity %d after Drain, want 0", hw)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending after Drain", e.Pending())
	}
	if e.Now() != 49999 {
		t.Fatalf("Drain moved the clock to %v", e.Now())
	}
	if r2 := e.Rand().Int63(); r2 == r1 {
		t.Fatal("RNG did not advance — stream reset by Drain?")
	}

	// Regrow: a steady-state chain must stay tiny, not re-inflate.
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			e.After(Microsecond, tick)
		}
	}
	e.After(Microsecond, tick)
	// Stale handles must not cancel post-Drain events, even though slot 0
	// is reused at generation 0 again.
	for _, h := range handles {
		if h.Scheduled() {
			t.Fatal("pre-Drain handle claims to be scheduled")
		}
		h.Cancel()
	}
	e.Run()
	if n != 1000 {
		t.Fatalf("post-Drain chain ticked %d of 1000 — stale handle cancelled a live event", n)
	}
	if hw := e.ArenaCap(); hw > 64 {
		t.Fatalf("arena regrew to %d slots for a steady-state chain", hw)
	}
}

// A sweep that Drains between scenarios must not accumulate arena capacity
// across iterations: the high-water of each scenario is released, not
// summed.
func TestDrainBetweenScenarios(t *testing.T) {
	e := NewEngine(11)
	for round := 0; round < 5; round++ {
		for i := 0; i < 10000; i++ {
			e.After(Time(i), func() {})
		}
		e.Run()
		if hw := e.ArenaCap(); hw < 10000 {
			t.Fatalf("round %d: high-water %d, want ≥ 10000", round, hw)
		}
		e.Drain()
	}
	if hw := e.ArenaCap(); hw != 0 {
		t.Fatalf("capacity %d retained after final Drain", hw)
	}
}

func TestRunUntilCancelledHeadStopsAtBound(t *testing.T) {
	// A cancelled event at the head of the heap must not let RunUntil run
	// past its bound: Step's skip-ahead would fire the 30-tick event during
	// RunUntil(15), which under a partitioned topology executes state beyond
	// the conservative safe horizon.
	e := NewEngine(1)
	ev := e.At(10, func() { t.Fatal("cancelled event fired") })
	fired := false
	e.At(30, func() { fired = true })
	ev.Cancel()
	e.RunUntil(15)
	if fired {
		t.Fatal("RunUntil(15) fired an event scheduled at 30")
	}
	if e.Now() != 15 {
		t.Fatalf("now = %v, want 15", e.Now())
	}
	e.RunUntil(40)
	if !fired {
		t.Fatal("event at 30 never fired")
	}
}
