package sim

import (
	"fmt"
	"strings"
	"testing"
)

// buildPair returns a two-partition topology connected both ways with the
// given lookahead.
func buildPair(t *testing.T, la Time) (*Topology, *Partition, *Partition) {
	t.Helper()
	topo := NewTopology(1)
	a := topo.AddPartition("a")
	b := topo.AddPartition("b")
	if err := topo.Connect(a, b, la); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, a, la); err != nil {
		t.Fatal(err)
	}
	return topo, a, b
}

func TestTopologyPingPong(t *testing.T) {
	topo, a, b := buildPair(t, 10*Microsecond)
	var log []string
	hops := 0
	var ping func(from, to *Partition)
	ping = func(from, to *Partition) {
		from.Send(to, 10*Microsecond, func() {
			hops++
			log = append(log, fmt.Sprintf("%s@%v", to.Name(), to.Eng().Now()))
			if hops < 6 {
				ping(to, from)
			}
		})
	}
	ping(a, b)
	topo.Run()
	want := []string{"b@10.000µs", "a@20.000µs", "b@30.000µs", "a@40.000µs", "b@50.000µs", "a@60.000µs"}
	if got := strings.Join(log, " "); got != strings.Join(want, " ") {
		t.Fatalf("ping-pong log = %s", got)
	}
}

func TestConnectRejectsZeroLookahead(t *testing.T) {
	topo := NewTopology(1)
	a := topo.AddPartition("a")
	b := topo.AddPartition("b")
	if err := topo.Connect(a, b, 0); err == nil {
		t.Fatal("Connect with zero lookahead must error")
	}
	if err := topo.Connect(a, b, -Microsecond); err == nil {
		t.Fatal("Connect with negative lookahead must error")
	}
	if err := topo.Connect(a, a, Microsecond); err == nil {
		t.Fatal("self-channel must error")
	}
	if err := topo.Connect(a, b, Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(a, b, Microsecond); err == nil {
		t.Fatal("duplicate channel must error")
	}
}

func TestSendValidation(t *testing.T) {
	topo, a, b := buildPair(t, 10*Microsecond)
	_ = topo
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("below lookahead", func() { a.Send(b, 9*Microsecond, func() {}) })
	c := NewTopology(2).AddPartition("c")
	mustPanic("foreign partition", func() { a.Send(c, 10*Microsecond, func() {}) })
	topo2 := NewTopology(3)
	d := topo2.AddPartition("d")
	e := topo2.AddPartition("e")
	mustPanic("no channel", func() { d.Send(e, Second, func() {}) })
}

// Simultaneous cross-partition timestamps tie-break by source partition ID,
// then by per-source send sequence — regardless of the order the sends
// happen to execute in.
func TestCrossPartitionTieBreak(t *testing.T) {
	topo := NewTopology(1)
	dst := topo.AddPartition("dst") // ID 0
	p1 := topo.AddPartition("p1")   // ID 1
	p2 := topo.AddPartition("p2")   // ID 2
	for _, src := range []*Partition{p1, p2} {
		if err := topo.Connect(src, dst, Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	note := func(s string) func() { return func() { order = append(order, s) } }
	// Sends issued in reverse partition order, with identical deliver time:
	// delivery must still run p1 before p2, and each source's messages in
	// send order.
	p2.Send(dst, Millisecond, note("p2#1"))
	p2.Send(dst, Millisecond, note("p2#2"))
	p1.Send(dst, Millisecond, note("p1#1"))
	p1.Send(dst, Millisecond, note("p1#2"))
	topo.Run()
	want := "p1#1 p1#2 p2#1 p2#2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("tie-break order = %q, want %q", got, want)
	}
}

// Cancel before the barrier suppresses the message; Cancel after delivery
// is a safe no-op that neither fires twice nor reaches into the far
// partition's arena.
func TestMsgCancel(t *testing.T) {
	topo, a, b := buildPair(t, 10*Microsecond)
	fired := 0
	var zero Msg
	zero.Cancel() // zero value: inert
	if zero.Delivered() || zero.Cancelled() {
		t.Fatal("zero Msg must report nothing")
	}

	// Suppressed before the first window barrier.
	m1 := a.Send(b, 10*Microsecond, func() { fired++ })
	m1.Cancel()
	if !m1.Cancelled() {
		t.Fatal("m1 should report cancelled")
	}

	// Delivered, then cancelled from the sending side: the message has left
	// the sender's jurisdiction, so the callback still fires and the late
	// Cancel is a no-op (it must NOT cancel an unrelated event that reused
	// the same arena slot either — generation counters cover that).
	var m2 Msg
	m2 = a.Send(b, 10*Microsecond, func() { fired++ })
	a.Eng().At(0, func() {}) // give partition a some local work too
	topo.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (m1 cancelled, m2 delivered)", fired)
	}
	if !m2.Delivered() {
		t.Fatal("m2 should report delivered")
	}
	m2.Cancel() // after delivery and firing: safe no-op
	if m2.Cancelled() {
		t.Fatal("late Cancel must not mark a delivered message cancelled")
	}

	// Cancel between delivery and firing: also a no-op — conservative
	// semantics hand the message to the destination at the barrier.
	m3 := a.Send(b, 10*Microsecond, func() { fired++ })
	b.Eng().After(0, func() { m3.Cancel() }) // fires after delivery, before the message fires
	topo.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (delivered message is beyond recall)", fired)
	}
}

// partitionModel is an RNG-free workload used to pin the partitioned engine
// against a literal single shared Engine: per-domain periodic ticks plus
// periodic cross-domain messages, all appending to per-domain logs.
type partitionModel struct {
	logs [][]string
}

// buildDomain wires domain i of n on engine eng. send schedules fn in
// domain dst after delay (cross-domain channel). Tick times are ≡1 mod 1000
// and message arrivals ≡0 mod 1000, so a tick and an arrival never collide
// at the same nanosecond — the one situation where monolithic and
// partitioned engines may legally order a domain's log differently.
func (m *partitionModel) buildDomain(eng *Engine, i, n int, until Time, send func(dst int, delay Time, fn func())) {
	tick := 7*Microsecond + 1
	var ticks, inbox int
	var loop func()
	loop = func() {
		ticks++
		m.logs[i] = append(m.logs[i], fmt.Sprintf("d%d tick %d @%d", i, ticks, eng.Now()))
		if ticks%7 == 0 {
			dst := (i + 1) % n
			at := eng.Now()
			send(dst, 100*Microsecond-1, func() {
				m.logs[dst] = append(m.logs[dst], fmt.Sprintf("d%d recv from d%d sent@%d", dst, i, at))
			})
		}
		if eng.Now()+tick <= until {
			eng.After(tick, loop)
		}
	}
	eng.At(1, loop)
	_ = inbox
}

func runMonolith(n int, until Time) [][]string {
	m := &partitionModel{logs: make([][]string, n)}
	eng := NewEngine(1)
	for i := 0; i < n; i++ {
		i := i
		m.buildDomain(eng, i, n, until, func(dst int, delay Time, fn func()) {
			eng.After(delay, fn)
		})
	}
	eng.RunUntil(until)
	return m.logs
}

func runPartitioned(n int, until Time, workers int) [][]string {
	m := &partitionModel{logs: make([][]string, n)}
	topo := NewTopology(1)
	parts := make([]*Partition, n)
	for i := range parts {
		parts[i] = topo.AddPartition(fmt.Sprintf("d%d", i))
	}
	for i := range parts {
		if err := topo.Connect(parts[i], parts[(i+1)%n], 100*Microsecond-1); err != nil {
			panic(err)
		}
	}
	topo.Workers = workers
	for i := 0; i < n; i++ {
		i := i
		m.buildDomain(parts[i].Eng(), i, n, until, func(dst int, delay Time, fn func()) {
			parts[i].Send(parts[dst], delay, fn)
		})
	}
	topo.RunUntil(until)
	return m.logs
}

// The partitioned engine must replay the sequential engine exactly: same
// per-domain logs against a single shared Engine, and byte-identical at any
// worker count.
func TestPartitionedMatchesMonolith(t *testing.T) {
	const n = 5
	const until = 5 * Millisecond
	mono := runMonolith(n, until)
	for _, workers := range []int{1, 2, 4, 8} {
		got := runPartitioned(n, until, workers)
		for i := range mono {
			a, b := strings.Join(mono[i], "\n"), strings.Join(got[i], "\n")
			if a != b {
				t.Fatalf("workers=%d domain %d diverged from monolith:\nmono:\n%s\npart:\n%s", workers, i, a, b)
			}
		}
	}
}

// RunUntil must leave events beyond the bound pending and align every
// partition clock to the bound.
func TestTopologyRunUntil(t *testing.T) {
	topo, a, b := buildPair(t, Millisecond)
	fired := false
	a.Send(b, 10*Millisecond, func() { fired = true })
	a.Eng().At(2*Millisecond, func() {})
	topo.RunUntil(5 * Millisecond)
	if fired {
		t.Fatal("event beyond the bound fired")
	}
	if a.Eng().Now() != 5*Millisecond || b.Eng().Now() != 5*Millisecond {
		t.Fatalf("clocks = %v, %v, want both 5ms", a.Eng().Now(), b.Eng().Now())
	}
	topo.RunUntil(20 * Millisecond)
	if !fired {
		t.Fatal("pending message did not fire on the next RunUntil")
	}
}

// Partitions with no channels run to completion independently — the
// degenerate topology recovers the experiment harness's independent-run
// fan-out.
func TestTopologyIndependentPartitions(t *testing.T) {
	topo := NewTopology(1)
	counts := make([]int, 8)
	for i := 0; i < 8; i++ {
		p := topo.AddPartition(fmt.Sprintf("solo%d", i))
		i := i
		for j := 0; j < 100; j++ {
			p.Eng().At(Time(j)*Microsecond, func() { counts[i]++ })
		}
	}
	topo.Workers = 4
	topo.Run()
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("partition %d fired %d of 100", i, c)
		}
	}
}

func TestTopologyLookahead(t *testing.T) {
	topo, a, b := buildPair(t, 42*Microsecond)
	if la, ok := topo.Lookahead(a, b); !ok || la != 42*Microsecond {
		t.Fatalf("Lookahead(a,b) = %v, %v", la, ok)
	}
	topo2 := NewTopology(1)
	c := topo2.AddPartition("c")
	d := topo2.AddPartition("d")
	if _, ok := topo2.Lookahead(c, d); ok {
		t.Fatal("Lookahead on unconnected pair must report false")
	}
}

func TestCancelledEventNearHorizonKeepsCausality(t *testing.T) {
	// Regression: a cancelled local event sitting at a partition's heap head
	// used to let the window's RunUntil skip ahead and execute a live event
	// beyond the safe horizon; a message sent toward that partition in the
	// same round then arrived in its past and deliver panicked. The shape
	// here mirrors the failure: b cancels a timer inside its window while a
	// is still producing messages bound for b's overshot region.
	topo := NewTopology(1)
	topo.Workers = 1
	a := topo.AddPartition("a")
	b := topo.AddPartition("b")
	const la = 5 * Millisecond
	if err := topo.Connect(a, b, la); err != nil {
		t.Fatal(err)
	}
	if err := topo.Connect(b, a, la); err != nil {
		t.Fatal(err)
	}

	var got []Time
	// b: a live event at 1 ms arms a timeout timer at 6 ms and immediately
	// cancels it, leaving a cancelled head; b's next live event is far out
	// at 20 ms — exactly the skip-ahead bait.
	b.Eng().At(1*Millisecond, func() {
		tm := b.Eng().After(5*Millisecond, func() { t.Error("cancelled timer fired") })
		tm.Cancel()
	})
	b.Eng().At(20*Millisecond, func() { got = append(got, b.Eng().Now()) })

	// a: a chain of events each sending to b with the minimum delay, so b
	// keeps receiving messages shortly beyond a's clock the whole run.
	var chain func()
	chain = func() {
		if a.Eng().Now() >= 15*Millisecond {
			return
		}
		a.Send(b, la, func() { got = append(got, b.Eng().Now()) })
		a.Eng().After(1*Millisecond, chain)
	}
	a.Eng().At(1*Millisecond, chain)

	topo.RunUntil(30 * Millisecond) // deliver used to panic here
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events observed out of order: %v", got)
		}
	}
	if len(got) == 0 {
		t.Fatal("no events fired")
	}
}
