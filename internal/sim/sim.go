// Package sim is a deterministic discrete-event simulation kernel.
//
// Every substrate in this reproduction — the i960 RD network interface, the
// PCI bus, the disks, the Ethernet, the host OS — advances a shared virtual
// clock owned by an Engine. Events are callbacks ordered by (time, insertion
// sequence), so two runs with the same seed replay identically; there are no
// goroutines and no wall-clock dependencies, which keeps the reproduced
// tables and figures stable across machines.
//
// The pending-event queue is a flat 4-ary min-heap of indices into an event
// arena with a free-list: the steady-state schedule/fire cycle allocates
// nothing and never boxes events through interfaces, so the harness's own
// hot loop stays out of the way of the simulated hardware it measures (the
// paper makes the same argument for its i960 fast paths). Event handles
// carry a generation counter, so cancelling an event that already fired —
// or whose arena slot has since been reused — is a safe no-op.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in simulated time (or a duration between two such
// points), in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Microseconds returns t as a float64 count of microseconds (reporting only).
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a float64 count of milliseconds (reporting only).
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as float64 seconds (reporting only).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// eventSlot is one arena entry. Slots are recycled through the engine's
// free-list; gen increments on every recycle so stale Event handles cannot
// touch a reused slot.
type eventSlot struct {
	at  Time
	seq uint64
	fn  func()
	gen uint32
}

// Event is a handle to a scheduled callback. The zero value is inert: Cancel
// and Scheduled on it are safe no-ops, so callers can keep one Event field
// and never nil-check it.
type Event struct {
	eng   *Engine
	idx   int32
	gen   uint32
	epoch uint32
}

// Cancel prevents the event from firing. Safe to call more than once, after
// the event has fired, and on the zero value; a handle whose arena slot has
// been recycled for a newer event is recognised by its stale generation (or
// a stale Drain epoch) and left untouched.
func (ev Event) Cancel() {
	if ev.eng == nil || ev.epoch != ev.eng.epoch || int(ev.idx) >= len(ev.eng.slots) {
		return // zero value, or the arena was drained since this handle was minted
	}
	s := &ev.eng.slots[ev.idx]
	if s.gen != ev.gen {
		return // already fired (or cancelled and reaped): slot reused
	}
	s.fn = nil // reaped lazily by Step without advancing the clock
}

// Scheduled reports whether the event is still pending (not yet fired and
// not cancelled). The zero value reports false.
func (ev Event) Scheduled() bool {
	if ev.eng == nil || ev.epoch != ev.eng.epoch || int(ev.idx) >= len(ev.eng.slots) {
		return false
	}
	s := &ev.eng.slots[ev.idx]
	return s.gen == ev.gen && s.fn != nil
}

// Engine owns the virtual clock and the pending-event queue.
type Engine struct {
	now   Time
	seq   uint64
	epoch uint32 // bumped by Drain so pre-Drain handles stay inert
	rng   *rand.Rand
	slots []eventSlot // event arena
	free  []int32     // recycled arena slots
	heap  []int32     // 4-ary min-heap of arena indices, keyed by (at, seq)
}

// NewEngine returns an engine at time zero with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All stochastic
// substrate behaviour (disk seek spread, web request jitter) must draw from
// it so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.at = t
	s.seq = e.seq
	s.fn = fn
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	return Event{eng: e, idx: idx, gen: s.gen, epoch: e.epoch}
}

// After schedules fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Event { return e.At(e.now+d, fn) }

// less orders heap entries by (time, insertion sequence).
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

const heapArity = 4

func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !e.less(idx, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = idx
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], idx) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = idx
}

// Every schedules fn at now+period, then every period thereafter, until the
// returned stop function is called. fn observes the tick time via Now.
func (e *Engine) Every(period Time, fn func()) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
	return func() { stopped = true }
}

// popHead removes the earliest slot from the heap and recycles it,
// returning its callback (nil when the event was cancelled) and time.
func (e *Engine) popHead() (fn func(), at Time) {
	idx := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	s := &e.slots[idx]
	fn = s.fn
	at = s.at
	s.fn = nil
	s.gen++ // stale handles to this slot become inert
	e.free = append(e.free, idx)
	return fn, at
}

// Step fires the earliest pending event. It returns false when no events
// remain. Cancelled events are skipped without advancing the clock.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		fn, at := e.popHead()
		if fn == nil {
			continue // cancelled: reap without advancing the clock
		}
		e.now = at
		fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then sets the clock to t. Events
// scheduled beyond t remain pending.
//
// Cancelled events at or before t are reaped here rather than through
// Step: Step's skip-ahead would fire the next live event even when it
// lies beyond t, silently running past the bound. Under the partitioned
// topology that bound is the conservative safe horizon, so overshooting
// it is a causality violation (a partition executing state another
// partition may still send messages into).
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= t {
		fn, at := e.popHead()
		if fn == nil {
			continue // cancelled: reap without advancing the clock
		}
		e.now = at
		fn()
	}
	if e.now < t {
		e.now = t
	}
}

// NextAt returns the time of the earliest pending event (including
// cancelled ones not yet reaped) and whether any event is pending.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// Pending reports how many events (including cancelled ones not yet
// reaped) are queued. Intended for tests.
func (e *Engine) Pending() int { return len(e.heap) }

// Drain discards every pending event and releases the arena, heap, and
// free-list storage. A long sweep that reuses one engine (or parks a
// finished scenario while building the next) would otherwise hold its peak
// arena capacity for the whole run; Drain returns that memory to the
// allocator. The clock, sequence counter, and RNG are untouched, so a
// drained engine schedules and replays exactly as before. Handles minted
// before the Drain become permanently inert — they can never cancel an
// event scheduled afterwards, even one reusing the same arena slot.
func (e *Engine) Drain() {
	e.epoch++
	e.slots = nil
	e.free = nil
	e.heap = nil
}

// ArenaCap reports the event arena's current capacity in slots — the
// high-water mark of simultaneously pending events since the last Drain.
// Diagnostic, used by capacity-regression tests.
func (e *Engine) ArenaCap() int { return cap(e.slots) }

// Resource is a single server with a FIFO queue — the building block for
// bus arbitration, disk heads, and CPU cores. A holder acquires it, keeps it
// for some simulated time, and releases it; waiters are granted in arrival
// order.
type Resource struct {
	eng   *Engine
	name  string
	busy  bool
	queue []func()

	// BusyTime accumulates total held time, for utilization reporting.
	BusyTime  Time
	lastStart Time
}

// NewResource returns an idle resource attached to eng.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen reports how many acquirers are waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Acquire requests the resource; granted runs (possibly immediately, within
// this call) once the resource is free and it is this requester's turn. The
// holder must call Release exactly once.
func (r *Resource) Acquire(granted func()) {
	if !r.busy {
		r.busy = true
		r.lastStart = r.eng.Now()
		granted()
		return
	}
	r.queue = append(r.queue, granted)
}

// Release frees the resource and hands it to the next waiter, if any. The
// next grant runs immediately within this call at the current time.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: Release of idle resource " + r.name)
	}
	r.BusyTime += r.eng.Now() - r.lastStart
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	r.lastStart = r.eng.Now()
	next()
}

// Use acquires the resource, holds it for d, then releases it and calls
// done (done may be nil). It models a simple service demand.
func (r *Resource) Use(d Time, done func()) {
	r.Acquire(func() {
		r.eng.After(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Utilization returns the fraction of [0, now] the resource was held.
func (r *Resource) Utilization() float64 {
	total := r.eng.Now()
	if total == 0 {
		return 0
	}
	busy := r.BusyTime
	if r.busy {
		busy += r.eng.Now() - r.lastStart
	}
	return float64(busy) / float64(total)
}
