// Package sim is a deterministic discrete-event simulation kernel.
//
// Every substrate in this reproduction — the i960 RD network interface, the
// PCI bus, the disks, the Ethernet, the host OS — advances a shared virtual
// clock owned by an Engine. Events are callbacks ordered by (time, insertion
// sequence), so two runs with the same seed replay identically; there are no
// goroutines and no wall-clock dependencies, which keeps the reproduced
// tables and figures stable across machines.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in simulated time (or a duration between two such
// points), in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Microseconds returns t as a float64 count of microseconds (reporting only).
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t as a float64 count of milliseconds (reporting only).
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as float64 seconds (reporting only).
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. Cancel detaches it without disturbing the
// rest of the timeline.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// Cancel prevents the event from firing. Safe to call more than once and
// after the event has fired.
func (ev *Event) Cancel() { ev.fn = nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending-event queue.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
}

// NewEngine returns an engine at time zero with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All stochastic
// substrate behaviour (disk seek spread, web request jitter) must draw from
// it so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Every schedules fn at now+period, then every period thereafter, until the
// returned stop function is called. fn observes the tick time via Now.
func (e *Engine) Every(period Time, fn func()) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
	return func() { stopped = true }
}

// Step fires the earliest pending event. It returns false when no events
// remain. Cancelled events are skipped without advancing the clock.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ t, then sets the clock to t. Events
// scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		if !e.Step() {
			break
		}
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports how many events (including cancelled ones not yet
// reaped) are queued. Intended for tests.
func (e *Engine) Pending() int { return len(e.events) }

// Resource is a single server with a FIFO queue — the building block for
// bus arbitration, disk heads, and CPU cores. A holder acquires it, keeps it
// for some simulated time, and releases it; waiters are granted in arrival
// order.
type Resource struct {
	eng   *Engine
	name  string
	busy  bool
	queue []func()

	// BusyTime accumulates total held time, for utilization reporting.
	BusyTime  Time
	lastStart Time
}

// NewResource returns an idle resource attached to eng.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Busy reports whether the resource is currently held.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen reports how many acquirers are waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Acquire requests the resource; granted runs (possibly immediately, within
// this call) once the resource is free and it is this requester's turn. The
// holder must call Release exactly once.
func (r *Resource) Acquire(granted func()) {
	if !r.busy {
		r.busy = true
		r.lastStart = r.eng.Now()
		granted()
		return
	}
	r.queue = append(r.queue, granted)
}

// Release frees the resource and hands it to the next waiter, if any. The
// next grant runs immediately within this call at the current time.
func (r *Resource) Release() {
	if !r.busy {
		panic("sim: Release of idle resource " + r.name)
	}
	r.BusyTime += r.eng.Now() - r.lastStart
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	next := r.queue[0]
	r.queue = r.queue[1:]
	r.lastStart = r.eng.Now()
	next()
}

// Use acquires the resource, holds it for d, then releases it and calls
// done (done may be nil). It models a simple service demand.
func (r *Resource) Use(d Time, done func()) {
	r.Acquire(func() {
		r.eng.After(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Utilization returns the fraction of [0, now] the resource was held.
func (r *Resource) Utilization() float64 {
	total := r.eng.Now()
	if total == 0 {
		return 0
	}
	busy := r.BusyTime
	if r.busy {
		busy += r.eng.Now() - r.lastStart
	}
	return float64(busy) / float64(total)
}
