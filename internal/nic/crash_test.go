package nic

import (
	"testing"

	"repro/internal/dwcs"
	"repro/internal/faults"
	"repro/internal/sim"
)

// TestCardCrashFreezesAndResetResumes: a crash halts all streaming mid-flight.
// After the reset the frames that sat frozen through the outage have blown
// their deadlines — DWCS drops them, it does not replay stale media — and
// fresh traffic flows at full rate again.
func TestCardCrashFreezesAndResetResumes(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	for i := 0; i < 10; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 800})
	}
	r.eng.At(5*sim.Millisecond, r.card.Crash)
	r.eng.RunUntil(sim.Second)
	frozen := ext.Sent
	if frozen >= 10 || frozen == 0 {
		t.Fatalf("crash at 5 ms froze %d of 10 frames, want a partial send", frozen)
	}
	if !r.card.Crashed() || r.card.Crashes != 1 {
		t.Fatalf("crashed=%v crashes=%d", r.card.Crashed(), r.card.Crashes)
	}
	r.eng.At(sim.Second, r.card.Reset)
	r.eng.At(sim.Second+sim.Millisecond, func() {
		for i := 0; i < 10; i++ {
			ext.Enqueue(1, dwcs.Packet{Bytes: 800})
		}
	})
	r.eng.RunUntil(3 * sim.Second)
	if r.card.Crashed() || r.card.Resets != 1 {
		t.Fatalf("crashed=%v resets=%d after reset", r.card.Crashed(), r.card.Resets)
	}
	if ext.Sent != frozen+10 {
		t.Fatalf("sent %d after reset, want %d pre-crash + 10 fresh", ext.Sent, frozen)
	}
	if ext.Sent+ext.Dropped != 20 {
		t.Fatalf("sent %d + dropped %d ≠ 20: frames lost without trace", ext.Sent, ext.Dropped)
	}
	if ext.Dropped == 0 {
		t.Fatal("no deadline-miss drops from a 1 s outage")
	}
}

// TestWatchdogInitiatedReset: the card's own watchdog detects the crash and
// schedules the delayed reset, with no oracle involvement.
func TestWatchdogInitiatedReset(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))

	const resetDelay = 200 * sim.Millisecond
	resetArmed := false
	r.card.StartWatchdog(100*sim.Millisecond, func() {
		if resetArmed || !r.card.Crashed() {
			return // spurious bite or reset already in flight
		}
		resetArmed = true
		r.eng.After(resetDelay, r.card.Reset)
	})

	r.eng.At(sim.Second, r.card.Crash)
	r.eng.At(1100*sim.Millisecond, func() {
		// Mid-outage traffic queues on the frozen card and expires there.
		for i := 0; i < 5; i++ {
			ext.Enqueue(1, dwcs.Packet{Bytes: 800})
		}
	})
	// Post-recovery traffic must flow normally again.
	r.eng.At(2*sim.Second, func() {
		for i := 0; i < 5; i++ {
			ext.Enqueue(1, dwcs.Packet{Bytes: 800})
		}
	})
	r.eng.RunUntil(5 * sim.Second)
	if r.card.Resets != 1 {
		t.Fatalf("resets = %d, want watchdog-initiated 1", r.card.Resets)
	}
	if r.card.Crashed() {
		t.Fatal("card still crashed after watchdog reset")
	}
	if ext.Dropped != 5 {
		t.Fatalf("dropped %d, want the 5 frames that expired during the outage", ext.Dropped)
	}
	if ext.Sent != 5 {
		t.Fatalf("sent %d of 5 post-recovery frames", ext.Sent)
	}
	if r.card.Watchdog.Bites == 0 {
		t.Fatal("watchdog never bit")
	}
}

// TestTaskHangStarvesSchedulingUntilHogExits: an injected runaway task
// stalls dispatches; the watchdog notices; service resumes afterwards.
func TestTaskHangStarvesSchedulingUntilHogExits(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	w := r.card.StartWatchdog(100*sim.Millisecond, nil)

	r.eng.At(sim.Second, func() { r.card.HangHog(500 * sim.Millisecond) })
	r.eng.At(1050*sim.Millisecond, func() {
		for i := 0; i < 8; i++ {
			ext.Enqueue(1, dwcs.Packet{Bytes: 800})
		}
	})
	r.eng.RunUntil(1400 * sim.Millisecond)
	if ext.Sent != 0 {
		t.Fatalf("scheduler sent %d frames under a priority-0 hog", ext.Sent)
	}
	// Once the hog exits the starved frames are past deadline and dropped;
	// new traffic is serviced immediately.
	r.eng.At(2*sim.Second, func() {
		for i := 0; i < 8; i++ {
			ext.Enqueue(1, dwcs.Packet{Bytes: 800})
		}
	})
	r.eng.RunUntil(4 * sim.Second)
	if ext.Dropped != 8 {
		t.Fatalf("dropped %d, want the 8 frames starved past deadline", ext.Dropped)
	}
	if ext.Sent != 8 {
		t.Fatalf("sent %d of 8 after the hang cleared", ext.Sent)
	}
	if w.Bites < 3 {
		t.Fatalf("watchdog bites = %d across a 500 ms hang", w.Bites)
	}
}

// TestChaosPlanDrivesCardFaults wires a generated plan straight onto a card
// through a faults.Injector — the integration the experiments use.
func TestChaosPlanDrivesCardFaults(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))

	plan := &faults.Plan{Events: []faults.Event{
		{At: sim.Second, Duration: 500 * sim.Millisecond, Kind: faults.CardCrash, Target: "ni0"},
		{At: 3 * sim.Second, Duration: 200 * sim.Millisecond, Kind: faults.TaskHang, Target: "ni0"},
	}}
	var log faults.Log
	err := plan.Arm(r.eng, faults.InjectorFuncs{
		OnInject: func(e faults.Event) {
			switch e.Kind {
			case faults.CardCrash:
				r.card.Crash()
			case faults.TaskHang:
				r.card.HangHog(e.Duration)
			}
		},
		OnRecover: func(e faults.Event) {
			if e.Kind == faults.CardCrash {
				r.card.Reset()
			}
		},
	}, &log)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 600})
	}
	r.eng.RunUntil(6 * sim.Second)
	if ext.Sent != 20 {
		t.Fatalf("sent %d of 20 through crash+hang", ext.Sent)
	}
	if r.card.Crashes != 1 || r.card.Resets != 1 {
		t.Fatalf("crashes=%d resets=%d", r.card.Crashes, r.card.Resets)
	}
	if len(log.Records) != 4 {
		t.Fatalf("log records = %d, want 4", len(log.Records))
	}
}
