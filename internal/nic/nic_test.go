package nic

import (
	"errors"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rig is a one-card test bench: card on a PCI segment, Ethernet to a
// switch, one client.
type rig struct {
	eng    *sim.Engine
	pci    *bus.Bus
	card   *Card
	sw     *netsim.Switch
	client *netsim.Client
}

func newRig(t *testing.T, cacheOn bool) *rig {
	t.Helper()
	eng := sim.NewEngine(7)
	pci := bus.New(eng, bus.PCI("pci0"))
	card := New(eng, Config{Name: "ni0", PCI: pci, CacheOn: cacheOn})
	client := netsim.NewClient(eng, "client-1")
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	sw.Attach("client-1", netsim.Fast100(eng, "sw-c1", client))
	card.ConnectEthernet(netsim.Fast100(eng, "ni0-eth", sw))
	return &rig{eng: eng, pci: pci, card: card, sw: sw, client: client}
}

func (r *rig) attachDisk() {
	d := disk.New(r.eng, disk.DefaultSCSI(r.card.Name+"-disk"))
	r.card.AttachDisk(d, disk.NewDOSFS(d))
}

func streamSpec(id int, period sim.Time) dwcs.StreamSpec {
	return dwcs.StreamSpec{ID: id, Name: "s", Period: period,
		Loss: fixed.New(1, 2), Lossy: true, BufCap: 64}
}

func TestCardBoot(t *testing.T) {
	r := newRig(t, true)
	if r.card.Meter.Model.Name != "i960RD-66MHz" {
		t.Fatalf("model = %s", r.card.Meter.Model.Name)
	}
	if r.card.Mem.Size() != 4<<20 {
		t.Fatalf("memory = %d", r.card.Mem.Size())
	}
	if !r.card.Meter.CacheOn {
		t.Fatal("cache should start enabled")
	}
	r.attachDisk()
	if r.card.Meter.CacheOn {
		t.Fatal("attaching a disk must disable the data cache (§4.2)")
	}
}

func TestSchedulerExtensionVCMInstructions(t *testing.T) {
	r := newRig(t, true)
	ext, err := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.card.VCM.Extensions(); len(got) != 1 || got[0] != "dwcs" {
		t.Fatalf("extensions = %v", got)
	}
	if _, err := r.card.VCM.Invoke(core.Instr{Ext: "dwcs", Op: "addStream",
		Arg: streamSpec(1, 10*sim.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.card.VCM.Invoke(core.Instr{Ext: "dwcs", Op: "enqueue",
		Arg: EnqueueArgs{StreamID: 1, Packet: dwcs.Packet{Bytes: 1000}}}); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(100 * sim.Millisecond)
	res, err := r.card.VCM.Invoke(core.Instr{Ext: "dwcs", Op: "stats", Arg: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.(dwcs.StreamStats)
	if st.Enqueued != 1 || st.Serviced != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if ext.Sent != 1 {
		t.Fatalf("sent = %d", ext.Sent)
	}
	// Bad ops and args.
	if _, err := ext.Invoke("nope", nil); !errors.Is(err, core.ErrBadOp) {
		t.Fatalf("err = %v", err)
	}
	for _, in := range []core.Instr{
		{Ext: "dwcs", Op: "addStream", Arg: 7},
		{Ext: "dwcs", Op: "enqueue", Arg: "x"},
		{Ext: "dwcs", Op: "stats", Arg: "x"},
		{Ext: "dwcs", Op: "removeStream", Arg: "x"},
	} {
		if _, err := r.card.VCM.Invoke(in); err == nil {
			t.Errorf("op %s with bad arg should fail", in.Op)
		}
	}
	if _, err := r.card.VCM.Invoke(core.Instr{Ext: "dwcs", Op: "removeStream", Arg: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPacedStreamingDeliversAtRequestedRate(t *testing.T) {
	r := newRig(t, true)
	r.attachDisk()
	ext, err := r.card.LoadScheduler(SchedulerConfig{EligibleEarly: 5 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	T := 50 * sim.Millisecond
	if err := ext.AddStream(streamSpec(1, T)); err != nil {
		t.Fatal(err)
	}
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 40, FPS: 30, GOPPattern: "IBBPBB", MeanFrame: 1500, Seed: 3})
	ext.SpawnLocalProducer(clip, 1, "client-1", 10*sim.Millisecond, 1)
	r.eng.RunUntil(3 * sim.Second)
	// 40 frames at 20/s: all delivered within 2 s + warmup.
	if r.client.Received < 35 {
		t.Fatalf("client received %d frames, want ≥35", r.client.Received)
	}
	// Paced: inter-delivery ≈ T after warmup; total duration ≈ 40×50 ms.
	if r.client.Late > 2 {
		t.Fatalf("late frames = %d", r.client.Late)
	}
	if qd := ext.QDelay[1]; qd == nil || len(qd.Delays) == 0 {
		t.Fatal("no queuing delays recorded")
	}
}

func TestFrameMemoryFreedAfterDispatch(t *testing.T) {
	r := newRig(t, true)
	r.attachDisk()
	ext, _ := r.card.LoadScheduler(SchedulerConfig{EligibleEarly: 5 * sim.Millisecond})
	ext.AddStream(streamSpec(1, 20*sim.Millisecond))
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 30, FPS: 30, GOPPattern: "IBB", MeanFrame: 2000, Seed: 4})
	ext.SpawnLocalProducer(clip, 1, "client-1", 5*sim.Millisecond, 1)
	r.eng.RunUntil(5 * sim.Second)
	if r.card.Mem.Used() != 0 {
		t.Fatalf("card memory leaked: %d bytes live", r.card.Mem.Used())
	}
	if r.card.Mem.Peak() == 0 {
		t.Fatal("expected nonzero peak usage")
	}
}

func TestPeerProducerUsesPCIWithoutHost(t *testing.T) {
	eng := sim.NewEngine(7)
	pci := bus.New(eng, bus.PCI("pci0"))
	src := New(eng, Config{Name: "ni-disk", PCI: pci})
	d := disk.New(eng, disk.DefaultSCSI("d0"))
	src.AttachDisk(d, disk.NewDOSFS(d))
	schedCard := New(eng, Config{Name: "ni-sched", PCI: pci, CacheOn: true})
	client := netsim.NewClient(eng, "client-1")
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	sw.Attach("client-1", netsim.Fast100(eng, "sw-c1", client))
	schedCard.ConnectEthernet(netsim.Fast100(eng, "eth", sw))

	ext, err := schedCard.LoadScheduler(SchedulerConfig{EligibleEarly: 5 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ext.AddStream(streamSpec(1, 20*sim.Millisecond))
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 20, FPS: 30, GOPPattern: "IBB", MeanFrame: 1000, Seed: 5})
	prod := ext.SpawnPeerProducer(src, clip, 1, "client-1", 10*sim.Millisecond, 1)
	eng.RunUntil(3 * sim.Second)
	if client.Received < 18 {
		t.Fatalf("client received %d", client.Received)
	}
	if prod.Injected != 20 {
		t.Fatalf("injected = %d", prod.Injected)
	}
	if pci.Stats.DMATransfers < 20 {
		t.Fatalf("PCI DMA transfers = %d, want ≥20 (path B crosses the I/O bus)", pci.Stats.DMATransfers)
	}
	// The scheduler card keeps its data cache on: no disk attached to it.
	if !schedCard.Meter.CacheOn {
		t.Fatal("dedicated scheduler NI should keep its cache enabled (§4.2)")
	}
}

func TestHardwareQueueStore(t *testing.T) {
	r := newRig(t, true)
	ext, err := r.card.LoadScheduler(SchedulerConfig{Store: StoreHardwareQueue, WorkConserving: true})
	if err != nil {
		t.Fatal(err)
	}
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	before := r.card.Meter.Count(0) // placeholder read below
	_ = before
	if err := ext.Enqueue(1, dwcs.Packet{Bytes: 100}); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(50 * sim.Millisecond)
	if ext.Sent != 1 {
		t.Fatalf("sent = %d", ext.Sent)
	}
}

func TestHardwareQueueExhaustionPanics(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{Store: StoreHardwareQueue, WorkConserving: true})
	defer func() {
		if recover() == nil {
			t.Error("expected panic when the 1004-register file is exhausted")
		}
	}()
	for i := 0; i < 40; i++ {
		sp := streamSpec(i, 10*sim.Millisecond)
		sp.BufCap = 64 // 40 × 64 > 1004
		if err := ext.AddStream(sp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRelayExperimentIIShape(t *testing.T) {
	// Table 4 Expt II: NI disk → NI CPU → network ≈ 5.4 ms per 1000-byte
	// frame.
	r := newRig(t, false)
	r.attachDisk()
	const frames = 100
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: frames, FPS: 30, GOPPattern: "IBB", MeanFrame: 1000, Seed: 6})
	var doneAt sim.Time
	r.card.SpawnRelay(clip, "client-1", 1000, frames, func() { doneAt = r.eng.Now() })
	r.eng.Run()
	per := doneAt.Milliseconds() / frames
	if per < 4.6 || per > 6.0 {
		t.Fatalf("per-frame = %.2f ms, want ≈5.1–5.4", per)
	}
	if r.client.Received != frames {
		t.Fatalf("client received %d", r.client.Received)
	}
}

func TestSendWithoutLinkStillCounts(t *testing.T) {
	eng := sim.NewEngine(1)
	card := New(eng, Config{Name: "lone"})
	card.Kernel.Spawn("t", 10, func(tc *rtos.TaskCtx) {
		card.Send(tc, &netsim.Packet{Dst: "nowhere", Bytes: 100})
	})
	eng.Run()
	if card.FramesSent != 1 {
		t.Fatalf("FramesSent = %d", card.FramesSent)
	}
}

func TestSchedulerTraceRecordsLifecycle(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.Trace = trace.New(r.eng, 64)
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	for i := 0; i < 3; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 700})
	}
	r.eng.RunUntil(time500ms)
	enq := ext.Trace.ByKind(trace.KindEnqueue)
	disp := ext.Trace.ByKind(trace.KindDispatch)
	if len(enq) != 3 || len(disp) != 3 {
		t.Fatalf("trace: %d enqueues, %d dispatches", len(enq), len(disp))
	}
	if got := ext.Trace.ByStream(1); len(got) != 6 {
		t.Fatalf("stream events = %d", len(got))
	}
}

const time500ms = 500 * sim.Millisecond

func TestReconfigureInstruction(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	if _, err := ext.Invoke("reconfigure", ReconfigureArgs{
		StreamID: 1, Period: 80 * sim.Millisecond, Loss: fixed.New(0, 1),
	}); err != nil {
		t.Fatal(err)
	}
	if x, y, _ := ext.Sched.Window(1); x != 0 || y != 1 {
		t.Fatalf("window = %d/%d", x, y)
	}
	if _, err := ext.Invoke("reconfigure", "bad"); err == nil {
		t.Fatal("bad arg should fail")
	}
}
