package nic

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestDiskDegradationSlowsButDoesNotWedge injects a 5× disk slowdown in
// the middle of a streaming session: the producer falls behind, but the
// scheduler keeps draining and the session completes after recovery.
func TestDiskDegradationSlowsButDoesNotWedge(t *testing.T) {
	r := newRig(t, true)
	d := disk.New(r.eng, disk.DefaultSCSI("ni-disk"))
	r.card.AttachDisk(d, disk.NewDOSFS(d))
	ext, _ := r.card.LoadScheduler(SchedulerConfig{EligibleEarly: 10 * sim.Millisecond})
	ext.AddStream(streamSpec(1, 20*sim.Millisecond))
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 120, FPS: 30, GOPPattern: "IBB", MeanFrame: 1200, Seed: 3})
	ext.SpawnLocalProducer(clip, 1, "client-1", 20*sim.Millisecond, 1)

	r.eng.At(500*sim.Millisecond, func() { d.Degrade(5) })
	r.eng.At(1500*sim.Millisecond, func() { d.Degrade(1) })
	r.eng.RunUntil(10 * sim.Second)

	if r.client.Received != 120 {
		t.Fatalf("client received %d of 120 frames", r.client.Received)
	}
	if r.card.Mem.Used() != 0 {
		t.Fatalf("leaked %d bytes of card memory across the fault", r.card.Mem.Used())
	}
}

// TestLossyLinkDoesNotStallScheduler drops every 4th frame on the wire;
// the scheduler must keep pacing and account every frame as sent.
func TestLossyLinkDoesNotStallScheduler(t *testing.T) {
	eng := sim.NewEngine(7)
	pci := bus.New(eng, bus.PCI("pci0"))
	card := New(eng, Config{Name: "ni0", PCI: pci, CacheOn: true})
	client := netsim.NewClient(eng, "client-1")
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	lossy := netsim.Fast100(eng, "sw-c1", client)
	lossy.DropEvery = 4
	sw.Attach("client-1", lossy)
	card.ConnectEthernet(netsim.Fast100(eng, "ni0-eth", sw))

	ext, _ := card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	for i := 0; i < 40; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 1000})
	}
	eng.RunUntil(2 * sim.Second)
	if ext.Sent != 40 {
		t.Fatalf("sent = %d", ext.Sent)
	}
	if lossy.Dropped != 10 {
		t.Fatalf("wire dropped %d, want 10", lossy.Dropped)
	}
	if client.Received != 30 {
		t.Fatalf("client received %d, want 30", client.Received)
	}
}

// TestProducerOutrunsMemoryBudget drives a card with tiny memory: the
// producer must stall on allocation failures instead of crashing, and
// everything that was admitted must still be delivered.
func TestProducerOutrunsMemoryBudget(t *testing.T) {
	eng := sim.NewEngine(7)
	pci := bus.New(eng, bus.PCI("pci0"))
	card := New(eng, Config{Name: "ni0", PCI: pci, Memory: 8 << 10}) // 8 KB card
	d := disk.New(eng, disk.DefaultSCSI("dd"))
	card.AttachDisk(d, disk.NewDOSFS(d))
	client := netsim.NewClient(eng, "client-1")
	sw := netsim.NewSwitch(eng, "sw0", 90*sim.Microsecond)
	sw.Attach("client-1", netsim.Fast100(eng, "sw-c1", client))
	card.ConnectEthernet(netsim.Fast100(eng, "ni0-eth", sw))

	ext, _ := card.LoadScheduler(SchedulerConfig{EligibleEarly: 10 * sim.Millisecond})
	ext.AddStream(streamSpec(1, 20*sim.Millisecond))
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 40, FPS: 30, GOPPattern: "IBB", MeanFrame: 3000, Seed: 3})
	prod := ext.SpawnLocalProducer(clip, 1, "client-1", 5*sim.Millisecond, 1)
	eng.RunUntil(15 * sim.Second)
	if prod.Stalled == 0 {
		t.Fatal("expected allocation stalls on an 8 KB card")
	}
	if client.Received != 40 {
		t.Fatalf("client received %d of 40", client.Received)
	}
	if card.Mem.Used() != 0 {
		t.Fatalf("leaked %d bytes", card.Mem.Used())
	}
}

// TestStreamRemovalMidSession removes a stream while its producer is
// running: already-dispatched frames arrive, further enqueues bounce, and
// the other stream is unaffected.
func TestStreamRemovalMidSession(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	ext.AddStream(streamSpec(2, 10*sim.Millisecond))
	for i := 0; i < 10; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 500})
		ext.Enqueue(2, dwcs.Packet{Bytes: 500})
	}
	r.eng.RunUntil(20 * sim.Millisecond)
	if _, err := ext.Invoke("removeStream", 1); err != nil {
		t.Fatal(err)
	}
	if err := ext.Enqueue(1, dwcs.Packet{Bytes: 500}); err == nil {
		t.Fatal("enqueue to removed stream should fail")
	}
	r.eng.RunUntil(2 * sim.Second)
	st2, _ := ext.Sched.Stats(2)
	if st2.Serviced != 10 {
		t.Fatalf("stream 2 serviced %d of 10 after stream 1 removal", st2.Serviced)
	}
}

// TestSchedulerSurvivesEmptyAndBurstyPhases alternates idle periods with
// bursts, exercising the idle-wait/kick paths.
func TestSchedulerSurvivesEmptyAndBurstyPhases(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	ext.AddStream(streamSpec(1, 5*sim.Millisecond))
	total := 0
	for phase := 0; phase < 5; phase++ {
		at := sim.Time(phase) * 300 * sim.Millisecond
		r.eng.At(at, func() {
			for i := 0; i < 7; i++ {
				if ext.Enqueue(1, dwcs.Packet{Bytes: 400}) == nil {
					total++
				}
			}
		})
	}
	r.eng.RunUntil(3 * sim.Second)
	if int(ext.Sent) != total {
		t.Fatalf("sent %d of %d across idle/burst phases", ext.Sent, total)
	}
}
