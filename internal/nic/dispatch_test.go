package nic

import (
	"testing"

	"repro/internal/dwcs"
	"repro/internal/sim"
)

func TestDecoupledDispatchDeliversEverything(t *testing.T) {
	r := newRig(t, true)
	ext, err := r.card.LoadScheduler(SchedulerConfig{
		WorkConserving: true,
		DispatchQueue:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ext.AddStream(streamSpec(1, 10*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := ext.Enqueue(1, dwcs.Packet{Bytes: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.RunUntil(2 * sim.Second)
	if ext.Sent != 30 {
		t.Fatalf("sent = %d, want 30", ext.Sent)
	}
	if r.client.Received != 30 {
		t.Fatalf("client received %d", r.client.Received)
	}
	st, _ := ext.Sched.Stats(1)
	if st.Serviced != 30 {
		t.Fatalf("serviced = %d", st.Serviced)
	}
}

func TestDecoupledDispatchPreservesOrder(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{
		WorkConserving: true,
		DispatchQueue:  4,
	})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	var seqs []int64
	ext.OnDispatch = func(p *dwcs.Packet) { seqs = append(seqs, p.Seq) }
	for i := 0; i < 20; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 500})
	}
	r.eng.RunUntil(2 * sim.Second)
	if len(seqs) != 20 {
		t.Fatalf("dispatched %d", len(seqs))
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs)
		}
	}
}

func TestDecoupledSchedulingDecisionsOutpaceCoupled(t *testing.T) {
	// §3.1.1: "Asynchronous scheduling and dispatch ... allows scheduling
	// decisions to be made at a higher rate." Measure time for the
	// scheduler task to drain its backlog of decisions in each mode.
	drain := func(queue int) sim.Time {
		r := newRig(t, true)
		ext, _ := r.card.LoadScheduler(SchedulerConfig{
			WorkConserving: true,
			DispatchQueue:  queue,
		})
		ext.AddStream(streamSpec(1, 10*sim.Millisecond))
		var lastDecision sim.Time
		done := 0
		ext.OnDispatch = func(p *dwcs.Packet) {
			done++
		}
		_ = lastDecision
		for i := 0; i < 50; i++ {
			ext.Enqueue(1, dwcs.Packet{Bytes: 1000})
		}
		// Time until the *scheduler* has emptied its rings (decisions all
		// made), regardless of dispatch completion.
		for r.eng.Now() < 5*sim.Second && ext.Sched.Len() > 0 {
			r.eng.RunUntil(r.eng.Now() + sim.Millisecond)
		}
		return r.eng.Now()
	}
	coupled := drain(0)
	decoupled := drain(16)
	if decoupled >= coupled {
		t.Fatalf("decoupled decisions (%v) should outpace coupled (%v)", decoupled, coupled)
	}
}

func TestDecoupledDispatchBackpressure(t *testing.T) {
	// A tiny dispatch queue must not lose frames; the scheduler blocks
	// until the dispatcher catches up.
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{
		WorkConserving: true,
		DispatchQueue:  1,
	})
	ext.AddStream(streamSpec(1, 10*sim.Millisecond))
	for i := 0; i < 25; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 1000})
	}
	r.eng.RunUntil(3 * sim.Second)
	if ext.Sent != 25 || r.client.Received != 25 {
		t.Fatalf("sent=%d received=%d, want 25 each", ext.Sent, r.client.Received)
	}
}
