package nic

import (
	"fmt"

	"repro/internal/blackbox"
	"repro/internal/overload"
	"repro/internal/sim"
)

// AttachBlackbox wires a flight recorder to this extension. Scheduler
// decisions and drops flow into the ring from the dispatch and run paths;
// this call adds the card-level taps and triggers:
//
//   - overload ladder transitions are recorded (via Ladder.OnChange chaining,
//     the same pattern AttachOverload uses for tracing);
//   - budget admission refusals are recorded AND trigger an incident — a
//     refusal is the moment the card started turning work away;
//   - budget breaches are recorded AND trigger — the invariant says zero;
//   - watchdog bites are recorded AND trigger, if the card already has a
//     watchdog (start it with StartWatchdog before attaching).
//
// If the recorder has no StateFn, one is installed that dumps the budget
// ledger and ladder rung — the card state every incident should carry.
// Idempotent; call once per card, after AttachOverload.
func (ext *SchedulerExt) AttachBlackbox(rec *blackbox.Recorder) {
	if ext.Blackbox != nil || rec == nil {
		return
	}
	ext.Blackbox = rec
	now := ext.Card.Eng.Now

	if ov := ext.Overload; ov != nil {
		prevLadder := ov.Ladder.OnChange
		ov.Ladder.OnChange = func(from, to overload.Rung) {
			rec.Record(blackbox.Event{At: now(), Kind: blackbox.KindLadder,
				A: int64(from), B: int64(to),
				Note: from.String() + " -> " + to.String()})
			if prevLadder != nil {
				prevLadder(from, to)
			}
		}
		prevReject := ov.Budget.OnReject
		ov.Budget.OnReject = func(projected int64) {
			rec.Record(blackbox.Event{At: now(), Kind: blackbox.KindRefusal,
				A: projected, Note: "admission refused"})
			rec.Trigger(now(), "budget-refusal")
			if prevReject != nil {
				prevReject(projected)
			}
		}
		prevBreach := ov.Budget.OnBreach
		ov.Budget.OnBreach = func() {
			rec.Record(blackbox.Event{At: now(), Kind: blackbox.KindRefusal,
				A: ov.Budget.Used(), Note: "budget breach"})
			rec.Trigger(now(), "budget-breach")
			if prevBreach != nil {
				prevBreach()
			}
		}
		if rec.StateFn == nil {
			rec.StateFn = func() string {
				return fmt.Sprintf("%s\nladder rung: %s\nrevoked awaiting reinstate: %d",
					ov.Budget.String(), ov.Ladder.Rung(), len(ext.revoked))
			}
		}
	}

	if wd := ext.Card.Watchdog; wd != nil {
		wd.Observe(func() {
			rec.Record(blackbox.Event{At: now(), Kind: blackbox.KindWatchdog,
				Note: "deadman bite"})
			rec.Trigger(now(), "watchdog")
		})
	}
}

// RecordFault feeds a chaos-plan event into the flight recorder and triggers
// an incident when a fault arms (not on recovery — recovery is good news).
// Designed to sit behind faults.Tee:
//
//	faults.Tee(injector, ext.RecordFault)
func (ext *SchedulerExt) RecordFault(at sim.Time, kind, target string, recover bool) {
	note := kind + " " + target
	if recover {
		note += " recovered"
	}
	ext.Blackbox.Record(blackbox.Event{At: at, Kind: blackbox.KindFault, Note: note})
	if !recover {
		ext.Blackbox.Trigger(at, "fault: "+kind+" "+target)
	}
}
