// Package nic models the Intel i960 RD I2O network interface card: a 66 MHz
// co-processor running a VxWorks-style kernel, 4 MB of local pinned memory,
// the 1004-register hardware-queue file, two 100 Mbps Ethernet ports, two
// SCSI ports with optionally attached disks, and a PCI interface to the
// host (§1, §3.1.2).
//
// A Card hosts a core.VCM; LoadScheduler registers the paper's media-
// scheduler extension (SchedulerExt), which runs the real dwcs.Scheduler as
// a kernel task whose CPU consumption comes from the cpu.Meter charges the
// scheduler code performs. Producer tasks stream MPEG frames into the
// scheduler from NI-attached disks (path C of Figure 3) or across the PCI
// bus from a peer card (path B).
package nic

import (
	"errors"
	"fmt"

	"repro/internal/blackbox"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mem"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Task priorities on the NI kernel (VxWorks style: lower = higher).
const (
	PrioScheduler = 50  // the DWCS scheduler task
	PrioWatchdog  = 60  // watchdog petter: starves when anything above hangs
	PrioRelay     = 80  // store-and-forward relay tasks
	PrioProducer  = 100 // frame producer tasks
)

// Dispatch-path cost constants, calibrated against the Table 1–3
// "w/o Scheduler" columns: handing one frame descriptor to the Ethernet
// transmit machinery costs a fixed driver block plus descriptor/buffer
// administration memory traffic plus one fraction operation (a per-stream
// rate-statistics update that the paper's software-FP build pays library
// cost for).
const (
	txDriverCycles = 1715
	txMemReads     = 13
	txMemWrites    = 8
)

// Config describes one card.
type Config struct {
	Name    string
	PCI     *bus.Bus       // segment the card sits on
	CacheOn bool           // data-cache state (the disk driver forces it off, §4.2)
	Arith   cpu.Arithmetic // softFP or fixed-point build of the scheduler
	Memory  int64          // installed local memory; 0 = 4 MB
	Model   *cpu.Model     // nil = i960 RD 66 MHz
	Seed    int64          // reserved for stochastic card behaviour
}

// Card is one I2O NI.
type Card struct {
	Eng    *sim.Engine
	Name   string
	Kernel *rtos.Kernel
	Meter  *cpu.Meter
	Mem    *mem.Memory
	Regs   *mem.RegisterFile
	PCI    *bus.Bus
	Link   *netsim.Link // Ethernet port 0, nil until connected
	Disk   *disk.Disk   // SCSI port 0, nil unless attached
	FS     disk.FS
	Stack  netsim.StackProfile
	VCM    *core.VCM
	TSC    *rtos.Timestamp

	// FramesSent counts frames handed to the wire by any path on this card.
	FramesSent int64

	// Tel is the attached telemetry registry; nil (the default) disables
	// spans, metrics, and cycle attribution on this card.
	Tel *telemetry.Registry

	// Watchdog is the card's hardware deadman, if StartWatchdog armed one.
	Watchdog *rtos.Watchdog
	// Crashes and Resets count fault-injection lifecycle transitions.
	Crashes int64
	Resets  int64

	crashed bool
}

// Crash wedges the card (firmware fault, injected by internal/faults): the
// kernel halts, so no task — scheduler, producer, relay — makes progress
// until Reset. Frames already handed to the wire still deliver; everything
// queued on the card is frozen in place.
func (c *Card) Crash() {
	if c.crashed {
		return
	}
	c.crashed = true
	c.Crashes++
	c.Kernel.Halt()
}

// Reset brings a crashed card back: the kernel resumes and parked tasks run
// again. Callers that failed the card's streams over elsewhere should wipe
// and re-register them before resuming traffic.
func (c *Card) Reset() {
	if !c.crashed {
		return
	}
	c.crashed = false
	c.Resets++
	c.Kernel.Resume()
}

// Crashed reports whether the card is wedged.
func (c *Card) Crashed() bool { return c.crashed }

// HangHog injects an RTOS task hang: a runaway highest-priority task that
// holds the CPU for d, starving every other task (the watchdog petter
// included, which is how the hang gets detected).
func (c *Card) HangHog(d sim.Time) {
	c.Kernel.Spawn(c.Name+"/hog", 0, func(tc *rtos.TaskCtx) { tc.Run(d) })
}

// StartWatchdog arms the card's hardware watchdog with the given timeout
// and spawns the petter task that feeds it while the kernel is alive.
// onBite fires on expiry — typically scheduling a Reset after the card's
// reset latency. The watchdog keeps biting once per timeout while the card
// stays wedged, so a lost reset is retried.
func (c *Card) StartWatchdog(timeout sim.Time, onBite func()) *rtos.Watchdog {
	if c.Watchdog != nil {
		return c.Watchdog
	}
	c.Watchdog = rtos.NewWatchdog(c.Eng, timeout, onBite)
	c.Watchdog.SpawnPetter(c.Kernel, c.Name+"/wdpet", PrioWatchdog, timeout/4)
	return c.Watchdog
}

// New boots a card.
func New(eng *sim.Engine, cfg Config) *Card {
	model := cfg.Model
	if model == nil {
		model = cpu.I960RD()
	}
	size := cfg.Memory
	if size == 0 {
		size = mem.DefaultCardMemory
	}
	meter := cpu.NewMeter(model)
	meter.CacheOn = cfg.CacheOn
	meter.Arith = cfg.Arith
	c := &Card{
		Eng:    eng,
		Name:   cfg.Name,
		Kernel: rtos.NewKernel(eng, cfg.Name, model.Duration(model.CtxSwitch)),
		Meter:  meter,
		Mem:    mem.NewMemory(size),
		Regs:   mem.NewRegisterFile(meter),
		PCI:    cfg.PCI,
		Stack:  netsim.I960Stack(),
		VCM:    core.NewVCM(cfg.Name),
		TSC:    rtos.NewTimestamp(eng, model.ClockHz, 32),
	}
	if cfg.PCI != nil {
		c.VCM.Crossing = core.CrossingFunc(func(words int64, deliver func()) {
			cfg.PCI.PIOWrite(words, deliver)
		})
	}
	return c
}

// ConnectEthernet attaches the card's Ethernet port 0 to a link.
func (c *Card) ConnectEthernet(l *netsim.Link) { c.Link = l }

// AttachDisk attaches a disk and its filesystem to a SCSI port. Attaching a
// disk disables the data cache, as the paper's VxWorks driver does (§4.2).
func (c *Card) AttachDisk(d *disk.Disk, fs disk.FS) {
	c.Disk = d
	c.FS = fs
	c.Meter.CacheOn = false
}

// Instrument attaches a telemetry registry: the card's cycle meter reports
// to the registry's profiler and the card's frame counter is exported under
// the nic component. Idempotent; safe once per card.
func (c *Card) Instrument(reg *telemetry.Registry) {
	if reg == nil || c.Tel != nil {
		return
	}
	c.Tel = reg
	c.Meter.Observe(reg.Prof)
	reg.CounterFunc("nic", "frames_sent_total",
		"frames handed to the wire by NI cards", func() int64 { return c.FramesSent })
}

// ChargeDispatch charges the cost of handing one frame to the transmitter.
func (c *Card) ChargeDispatch() {
	prevC, prevO := c.Meter.SetContext("nic", "dispatch")
	defer c.Meter.SetContext(prevC, prevO)
	c.Meter.ChargeCycles(txDriverCycles)
	c.Meter.MemRead(txMemReads)
	c.Meter.MemWrite(txMemWrites)
	c.Meter.Frac(1)
}

// FrameBuf marks a packet payload as occupying card memory; the dispatch
// path frees it once the frame is on the wire (single-copy design, §3.1.2).
type FrameBuf struct {
	Mem  *mem.Memory
	Addr mem.Addr
}

// Release frees the frame's card memory.
func (f FrameBuf) Release() { f.Mem.Free(f.Addr) }

// releaser is any payload owning card memory (FrameBuf or wrappers
// embedding it).
type releaser interface{ Release() }

func releasePayload(p any) {
	if r, ok := p.(releaser); ok {
		r.Release()
	}
}

// Send pays protocol encapsulation on the card CPU and puts the frame on
// the wire. It must be called from a kernel task on this card.
func (c *Card) Send(tc *rtos.TaskCtx, pkt *netsim.Packet) { c.send(tc, pkt, nil) }

// send pays protocol encapsulation on the card CPU and puts the frame on
// the wire. It must be called from a kernel task.
func (c *Card) send(tc *rtos.TaskCtx, pkt *netsim.Packet, payload any) {
	tc.Run(c.Stack.Tx)
	c.FramesSent++
	if c.Link == nil {
		releasePayload(payload)
		return
	}
	c.Link.Send(pkt, func() { releasePayload(payload) })
}

// StoreKind selects where the scheduler's descriptor rings live.
type StoreKind int

// Descriptor stores.
const (
	// StoreDRAM keeps rings in pinned card memory (Table 2).
	StoreDRAM StoreKind = iota
	// StoreHardwareQueue keeps rings in the 1004-register memory-mapped
	// file (Table 3).
	StoreHardwareQueue
)

// String names the store kind.
func (k StoreKind) String() string {
	if k == StoreHardwareQueue {
		return "hw-queue"
	}
	return "dram"
}

// SchedulerConfig configures the media-scheduler extension.
type SchedulerConfig struct {
	Store          StoreKind
	Precedence     dwcs.Precedence
	Selector       dwcs.SelectorKind
	WorkConserving bool
	EligibleEarly  sim.Time
	// DecisionOverheadCycles models the per-decision fixed costs the
	// operation-level charges don't capture: two timestamp-counter reads,
	// wind-kernel loop overhead, and heap bookkeeping. 0 uses the value
	// calibrated against Table 2.
	DecisionOverheadCycles int64
	MaxDescriptors         int
	// DispatchQueue > 0 decouples scheduling and dispatch (§3.1.1): the
	// scheduler task deposits decisions in a FIFO of that depth and a
	// separate dispatcher task drains it. Decisions can then be made at a
	// higher rate, at the cost of additional queuing delay and jitter in
	// the dispatch queue. 0 keeps scheduling and dispatch coupled (the
	// paper's memory-conserving default).
	DispatchQueue int
}

// DefaultDecisionOverhead is calibrated so the fixed-point, cache-enabled
// configuration reproduces the ≈66.8 µs scheduling overhead of Table 2.
const DefaultDecisionOverhead = 4020

// SchedulerExt is the DVCM media-scheduler extension of §3.1: a
// dwcs.Scheduler plus the kernel task that runs it.
type SchedulerExt struct {
	Card  *Card
	Sched *dwcs.Scheduler

	// QDelay tracks queuing delay per stream (Figures 8 and 10).
	QDelay map[int]*stats.DelayTracker
	// OnDispatch observes every dispatched packet (before the wire).
	OnDispatch func(p *dwcs.Packet)
	// Trace, when set, records enqueue/dispatch/drop events.
	Trace *trace.Log

	// Sent and Dropped count scheduler outcomes.
	Sent    int64
	Dropped int64

	// Overload is the card's overload controller once AttachOverload wired
	// one; nil (the default) leaves every admission and pressure path
	// exactly as before.
	Overload *overload.Controller
	// Blackbox is the card's flight recorder once AttachBlackbox wired one;
	// nil (the default) records nothing (blackbox.Recorder is nil-safe).
	Blackbox *blackbox.Recorder
	// OnReinstate fires when a revoked stream is readmitted, so the harness
	// can restart its producer.
	OnReinstate func(spec dwcs.StreamSpec)

	ovCost  map[int]overload.StreamCost // admission charge per stream
	revoked []dwcs.StreamSpec           // revocation order, for FIFO reinstatement

	telQDelay *telemetry.Histogram

	work *rtos.Semaphore
	kick func() // wakes a paced sleep early; nil when not sleeping
	task *rtos.Task
	regB int // next free register-file word for ring allocation

	// decoupled-dispatch state (nil/unused when coupled)
	dispatchQ   []*dwcs.Packet
	dispatchSem *rtos.Semaphore
	dispatchCap int
}

// buildScheduler constructs the DWCS instance for cfg, allocating ring
// stores from the register file when requested. next tracks register-file
// allocation across streams.
func (c *Card) buildScheduler(cfg SchedulerConfig, next *int) *dwcs.Scheduler {
	if cfg.DecisionOverheadCycles == 0 {
		cfg.DecisionOverheadCycles = DefaultDecisionOverhead
	}
	newStore := func(words int) mem.WordStore {
		if cfg.Store == StoreHardwareQueue {
			if *next+words > mem.HardwareQueueRegisters {
				panic(fmt.Sprintf("nic %s: hardware queue exhausted (%d + %d words)", c.Name, *next, words))
			}
			r := mem.NewRegion(c.Regs, *next, words)
			*next += words
			return r
		}
		return mem.NewDRAMStore(c.Meter, words)
	}
	return dwcs.New(dwcs.Config{
		Precedence:       cfg.Precedence,
		Selector:         cfg.Selector,
		WorkConserving:   cfg.WorkConserving,
		EligibleEarly:    cfg.EligibleEarly,
		Meter:            c.Meter,
		Now:              c.Eng.Now,
		DecisionOverhead: cfg.DecisionOverheadCycles,
		NewStore:         newStore,
		MaxDescriptors:   cfg.MaxDescriptors,
	})
}

// NewBenchScheduler builds the scheduler exactly as LoadScheduler does but
// without registering the extension or starting its task — the meter-driven
// Table 1–3 microbenchmarks step it by hand.
func (c *Card) NewBenchScheduler(cfg SchedulerConfig) *dwcs.Scheduler {
	var next int
	return c.buildScheduler(cfg, &next)
}

// LoadScheduler creates the extension, registers it on the card's VCM under
// the name "dwcs", and starts the scheduler task.
func (c *Card) LoadScheduler(cfg SchedulerConfig) (*SchedulerExt, error) {
	ext := &SchedulerExt{
		Card:   c,
		QDelay: make(map[int]*stats.DelayTracker),
	}
	ext.Sched = c.buildScheduler(cfg, &ext.regB)
	ext.work = rtos.NewSemaphore(c.Kernel, c.Name+"/work", 0)
	if err := c.VCM.Register(ext); err != nil {
		return nil, err
	}
	if cfg.DispatchQueue > 0 {
		ext.dispatchCap = cfg.DispatchQueue
		ext.dispatchSem = rtos.NewSemaphore(c.Kernel, c.Name+"/dispatchq", 0)
		c.Kernel.Spawn(c.Name+"/dispatch", PrioScheduler+1, ext.runDispatcher)
	}
	ext.task = c.Kernel.Spawn(c.Name+"/dwcs", PrioScheduler, ext.run)
	return ext, nil
}

// Instrument attaches a telemetry registry to the extension and its card:
// dwcs counters and the queue-delay histogram join the registry, dispatches
// record the frame's queue span, and every meter charge is cycle-attributed.
func (ext *SchedulerExt) Instrument(reg *telemetry.Registry) {
	if reg == nil || ext.telQDelay != nil {
		return
	}
	ext.Card.Instrument(reg)
	ext.telQDelay = reg.HistogramMetric("dwcs", "queue_delay_ms",
		"enqueue-to-dispatch delay per frame (milliseconds)", nil)
	reg.CounterFunc("dwcs", "frames_dispatched_total",
		"frames the scheduler dispatched to the transmit path", func() int64 { return ext.Sent })
	reg.CounterFunc("dwcs", "frames_dropped_total",
		"frames dropped for missed deadlines", func() int64 { return ext.Dropped })
	reg.CounterFunc("dwcs", "decisions_total",
		"scheduling decisions made", func() int64 { return ext.Sched.TotalDecisions })
}

// Name implements core.Extension.
func (ext *SchedulerExt) Name() string { return "dwcs" }

// Attach implements core.Extension.
func (ext *SchedulerExt) Attach(*core.VCM) error { return nil }

// EnqueueArgs is the argument of the "enqueue" instruction.
type EnqueueArgs struct {
	StreamID int
	Packet   dwcs.Packet
}

// ReconfigureArgs is the argument of the "reconfigure" instruction — the
// network-near rate/loss adaptation of §3.1.
type ReconfigureArgs struct {
	StreamID int
	Period   sim.Time
	Loss     fixed.Frac
}

// Invoke implements core.Extension: the DVCM instruction set of the media
// scheduler.
func (ext *SchedulerExt) Invoke(op string, arg any) (any, error) {
	switch op {
	case "addStream":
		spec, ok := arg.(dwcs.StreamSpec)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: addStream wants StreamSpec, got %T", arg)
		}
		if ov := ext.Overload; ov != nil {
			if err := ov.Budget.AdmitStream(StreamMemCost(spec)); err != nil {
				return nil, err
			}
		}
		if err := ext.Sched.AddStream(spec); err != nil {
			if ov := ext.Overload; ov != nil {
				ov.Budget.ReleaseStream(StreamMemCost(spec))
			}
			return nil, err
		}
		if ext.Overload != nil {
			ext.ovCost[spec.ID] = StreamMemCost(spec)
		}
		ext.QDelay[spec.ID] = &stats.DelayTracker{Name: spec.Name}
		return nil, nil
	case "removeStream":
		id, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: removeStream wants int, got %T", arg)
		}
		return nil, ext.removeStream(id)
	case "importStream":
		img, ok := arg.(dwcs.StreamSnapshot)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: importStream wants dwcs.StreamSnapshot, got %T", arg)
		}
		return nil, ext.importStream(img)
	case "exportStream":
		id, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: exportStream wants int, got %T", arg)
		}
		return ext.Sched.ExportStream(id)
	case "enqueue":
		ea, ok := arg.(EnqueueArgs)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: enqueue wants EnqueueArgs, got %T", arg)
		}
		return nil, ext.Enqueue(ea.StreamID, ea.Packet)
	case "stats":
		id, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: stats wants int, got %T", arg)
		}
		return ext.Sched.Stats(id)
	case "snapshot":
		return ext.Sched.Snapshot(), nil
	case "pause":
		id, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: pause wants int, got %T", arg)
		}
		return nil, ext.Sched.Pause(id)
	case "resume":
		id, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: resume wants int, got %T", arg)
		}
		if err := ext.Sched.Resume(id); err != nil {
			return nil, err
		}
		// Freshly-eligible packets may need the task's attention.
		if ext.kick != nil {
			ext.kick()
		} else {
			ext.work.Give()
		}
		return nil, nil
	case "reconfigure":
		ra, ok := arg.(ReconfigureArgs)
		if !ok {
			return nil, fmt.Errorf("dwcs ext: reconfigure wants ReconfigureArgs, got %T", arg)
		}
		return nil, ext.Sched.Reconfigure(ra.StreamID, ra.Period, ra.Loss)
	default:
		return nil, core.ErrBadOp
	}
}

// AddStream registers a stream directly (card-local callers).
func (ext *SchedulerExt) AddStream(spec dwcs.StreamSpec) error {
	_, err := ext.Invoke("addStream", spec)
	return err
}

// importStream admits a migrated stream from its image, going through the
// same overload-budget gate as a fresh setup: a card past its high-water
// mark refuses the migration exactly as it would refuse a new viewer, so
// the migration protocol's candidate retry / AwaitSpace machinery applies.
func (ext *SchedulerExt) importStream(img dwcs.StreamSnapshot) error {
	if ov := ext.Overload; ov != nil {
		if err := ov.Budget.AdmitStream(StreamMemCost(img.Spec)); err != nil {
			return err
		}
	}
	if err := ext.Sched.ImportStream(img); err != nil {
		if ov := ext.Overload; ov != nil {
			ov.Budget.ReleaseStream(StreamMemCost(img.Spec))
		}
		return err
	}
	if ext.Overload != nil {
		ext.ovCost[img.Spec.ID] = StreamMemCost(img.Spec)
	}
	ext.QDelay[img.Spec.ID] = &stats.DelayTracker{Name: img.Spec.Name}
	ext.Blackbox.Record(blackbox.Event{At: ext.Card.Eng.Now(), Kind: blackbox.KindMigrate,
		Stream: img.Spec.ID, Seq: img.Seq, A: img.WindowX, B: img.WindowY, Note: "import"})
	return nil
}

// ImportStream registers a migrated stream directly (card-local callers).
func (ext *SchedulerExt) ImportStream(img dwcs.StreamSnapshot) error {
	_, err := ext.Invoke("importStream", img)
	return err
}

// ExportStream snapshots a stream's migration image (card-local callers).
func (ext *SchedulerExt) ExportStream(id int) (dwcs.StreamSnapshot, error) {
	img, err := ext.Sched.ExportStream(id)
	if err == nil {
		ext.Blackbox.Record(blackbox.Event{At: ext.Card.Eng.Now(), Kind: blackbox.KindMigrate,
			Stream: id, Seq: img.Seq, A: img.WindowX, B: img.WindowY, Note: "export"})
	}
	return img, err
}

// RemoveStream deregisters a stream directly (card-local callers), flushing
// queued frame payloads and releasing its admission charge.
func (ext *SchedulerExt) RemoveStream(id int) error {
	_, err := ext.Invoke("removeStream", id)
	return err
}

// DetachStream is the source half of a live migration: export the stream's
// image, flush the queued-but-undelivered frames (their card-memory payloads
// are released here — the bytes travel from the producer again, not over the
// migration channel), remove the stream, and rewind the image's frame cursor
// and deadline phase past the flushed frames. When the target re-enqueues
// the returned descriptors they reclaim their original sequence numbers, so
// the client sees one continuous stream across the hop. The payload fields
// of the returned packets are nil; replay re-addresses them.
func (ext *SchedulerExt) DetachStream(id int) (dwcs.StreamSnapshot, []dwcs.Packet, error) {
	img, err := ext.ExportStream(id)
	if err != nil {
		return dwcs.StreamSnapshot{}, nil, err
	}
	queued, err := ext.Sched.FlushStream(id)
	if err != nil {
		return dwcs.StreamSnapshot{}, nil, err
	}
	for i := range queued {
		releasePayload(queued[i].Payload)
		queued[i].Payload = nil
	}
	if err := ext.RemoveStream(id); err != nil {
		return dwcs.StreamSnapshot{}, nil, err
	}
	if n := int64(len(queued)); n > 0 {
		img.Seq -= n
		img.Phase -= sim.Time(n) * img.Spec.Period
		if img.Phase < 0 {
			img.Phase = 0
		}
		img.Queued = 0
	}
	return img, queued, nil
}

// Per-stream card-memory footprint constants for overload admission. One
// ring slot is eight descriptor words; stream state is the spec, window
// counters, and stats the scheduler keeps resident.
const (
	streamStateBytes = 256
	descriptorBytes  = 32
)

// streamCost projects a stream's card-memory footprint: admission charges
// State and Slots up front, while Ring — a full buffer of nominal frames,
// the worst case the stream can pin — is only tested against the high-water
// mark (live frame bytes are accounted by the allocator observer as they
// arrive).
func StreamMemCost(spec dwcs.StreamSpec) overload.StreamCost {
	return overload.StreamCost{
		State: streamStateBytes,
		Slots: int64(spec.BufCap) * descriptorBytes,
		Ring:  int64(spec.BufCap) * spec.NominalBytes,
	}
}

// removeStream flushes the stream's queued payloads back to card memory,
// deregisters it, and releases its admission charge. Flushing before removal
// also fixes frame buffers leaking when a populated stream is torn down.
func (ext *SchedulerExt) removeStream(id int) error {
	if pkts, err := ext.Sched.FlushStream(id); err == nil {
		for i := range pkts {
			releasePayload(pkts[i].Payload)
		}
	}
	if err := ext.Sched.RemoveStream(id); err != nil {
		return err
	}
	if ov := ext.Overload; ov != nil {
		if sc, ok := ext.ovCost[id]; ok {
			ov.Budget.ReleaseStream(sc)
			delete(ext.ovCost, id)
		}
	}
	return nil
}

// AttachOverload wires an overload controller to this extension: the card's
// allocator reports frame-buffer traffic to the budget, the controller's
// hooks drive shed/revoke/reinstate against the scheduler, and periodic
// evaluation starts on the card's engine. Idempotent; call once per card.
func (ext *SchedulerExt) AttachOverload(ctl *overload.Controller) {
	if ext.Overload != nil {
		return
	}
	ext.Overload = ctl
	ext.ovCost = make(map[int]overload.StreamCost)
	ext.Card.Mem.Observe(ctl.Budget)
	ctl.Hooks = overload.Hooks{
		QueueDepth:   func() int { return ext.Sched.Len() + len(ext.dispatchQ) },
		ShedTolerant: ext.shedTolerant,
		Revoke:       ext.revokeLowestValue,
		Reinstate:    ext.reinstateOne,
	}
	prev := ctl.Ladder.OnChange
	ctl.Ladder.OnChange = func(from, to overload.Rung) {
		ext.Trace.Recordf(trace.KindUser, ext.Card.Name+"/overload", -1, -1,
			"ladder %s -> %s", from, to)
		if prev != nil {
			prev(from, to)
		}
	}
	ctl.Start(ext.Card.Eng)
}

// shedTolerant is the ladder's rung-1 action: walk streams in insertion
// order shedding at most one head frame each — only where the DWCS window
// still tolerates a loss — until max frames are shed. Returns how many.
func (ext *SchedulerExt) shedTolerant(max int) int {
	shed := 0
	for _, id := range ext.Sched.StreamIDs() {
		if shed >= max {
			break
		}
		pkt, ok := ext.Sched.ShedTolerant(id)
		if !ok {
			continue
		}
		releasePayload(pkt.Payload)
		ext.Dropped++
		ext.Trace.Record(trace.KindDrop, ext.Card.Name+"/overload",
			pkt.StreamID, pkt.Seq, "shed within tolerance")
		ext.Blackbox.Record(blackbox.Event{At: ext.Card.Eng.Now(), Kind: blackbox.KindDrop,
			Stream: pkt.StreamID, Seq: pkt.Seq, A: pkt.Bytes, Note: "shed"})
		shed++
	}
	return shed
}

// revokeLowestValue is the ladder's last rung: revoke admission of the one
// lowest-value stream — lossy before lossless, then the largest declared
// loss tolerance, then the highest id — flushing its queue and releasing its
// charge. The stream's producer orphan-aborts on its next enqueue; the spec
// is kept so reinstateOne can reverse the revocation in FIFO order.
func (ext *SchedulerExt) revokeLowestValue() bool {
	best := -1
	var bestSpec dwcs.StreamSpec
	for _, sn := range ext.Sched.Snapshot() {
		sp := sn.Spec
		if best < 0 {
			best, bestSpec = sp.ID, sp
			continue
		}
		if c := cmpStreamValue(sp, bestSpec); c < 0 || (c == 0 && sp.ID > best) {
			best, bestSpec = sp.ID, sp
		}
	}
	if best < 0 {
		return false
	}
	if err := ext.removeStream(best); err != nil {
		return false
	}
	ext.revoked = append(ext.revoked, bestSpec)
	ext.Trace.Recordf(trace.KindUser, ext.Card.Name+"/overload", best, -1,
		"revoked (loss %v)", bestSpec.Loss)
	return true
}

// cmpStreamValue orders specs by value: negative when a should be revoked
// before b.
func cmpStreamValue(a, b dwcs.StreamSpec) int {
	if a.Lossy != b.Lossy {
		if a.Lossy {
			return -1
		}
		return 1
	}
	return b.Loss.Cmp(a.Loss) // larger tolerated loss revokes first
}

// reinstateOne readmits the oldest revoked stream, going back through the
// normal admission path (a still-tight budget refuses and the revocation
// stays on the queue for the next evaluation).
func (ext *SchedulerExt) reinstateOne() bool {
	if len(ext.revoked) == 0 {
		return false
	}
	spec := ext.revoked[0]
	if err := ext.AddStream(spec); err != nil {
		return false
	}
	ext.revoked = ext.revoked[1:]
	ext.Trace.Recordf(trace.KindUser, ext.Card.Name+"/overload", spec.ID, -1, "reinstated")
	if ext.OnReinstate != nil {
		ext.OnReinstate(spec)
	}
	return true
}

// RevokedCount returns how many revocations are awaiting reinstatement.
func (ext *SchedulerExt) RevokedCount() int { return len(ext.revoked) }

// Enqueue queues a packet and wakes the scheduler task.
func (ext *SchedulerExt) Enqueue(id int, p dwcs.Packet) error {
	if err := ext.Sched.Enqueue(id, p); err != nil {
		return err
	}
	ext.Trace.Recordf(trace.KindEnqueue, ext.Card.Name+"/dwcs", id, -1, "%dB", p.Bytes)
	if ext.kick != nil {
		ext.kick()
	} else {
		ext.work.Give()
	}
	return nil
}

// run is the scheduler task body.
func (ext *SchedulerExt) run(tc *rtos.TaskCtx) {
	c := ext.Card
	lap := cpu.StartLap(c.Meter)
	for {
		d := ext.Sched.Schedule()
		tc.Charge(lap) // decision CPU time at i960 speed
		ext.Dropped += int64(len(d.Dropped))
		for _, p := range d.Dropped {
			ext.Trace.Record(trace.KindDrop, c.Name+"/dwcs", p.StreamID, p.Seq, "deadline missed")
			ext.Blackbox.Record(blackbox.Event{At: tc.Now(), Kind: blackbox.KindDrop,
				Stream: p.StreamID, Seq: p.Seq, A: p.Bytes, Note: "deadline"})
			releasePayload(p.Payload)
		}
		switch {
		case d.Packet != nil:
			p := d.Packet
			if ext.dispatchSem != nil {
				// Decoupled mode: hand the decision to the dispatcher. A
				// full dispatch queue back-pressures the scheduler task.
				for len(ext.dispatchQ) >= ext.dispatchCap {
					tc.Sleep(sim.Millisecond)
				}
				ext.dispatchQ = append(ext.dispatchQ, p)
				ext.dispatchSem.Give()
				continue
			}
			ext.dispatch(tc, lap, p)
		case d.WaitUntil > 0:
			ext.sleepUntil(tc, d.WaitUntil)
		case len(d.Dropped) > 0:
			// progress was made; loop for the next decision
		default:
			ext.work.Take(tc) // idle until a producer enqueues
		}
	}
}

// dispatch charges the dispatch path and transmits p. It must run on the
// card.
func (ext *SchedulerExt) dispatch(tc *rtos.TaskCtx, lap *cpu.Lap, p *dwcs.Packet) {
	c := ext.Card
	c.ChargeDispatch()
	tc.Charge(lap)
	if t := ext.QDelay[p.StreamID]; t != nil {
		t.Record(tc.Now() - p.Enqueued)
	}
	if c.Tel != nil {
		c.Tel.Span(p.StreamID, p.Seq, telemetry.StageQueue, c.Name+"/dwcs", p.Enqueued, tc.Now())
		ext.telQDelay.Observe((tc.Now() - p.Enqueued).Milliseconds())
	}
	ext.Sent++
	ext.Trace.Recordf(trace.KindDispatch, c.Name+"/dwcs", p.StreamID, p.Seq,
		"qdelay=%v", tc.Now()-p.Enqueued)
	ext.Blackbox.Record(blackbox.Event{At: tc.Now(), Kind: blackbox.KindDecision,
		Stream: p.StreamID, Seq: p.Seq, A: p.Bytes, B: int64(tc.Now() - p.Enqueued)})
	if ext.OnDispatch != nil {
		ext.OnDispatch(p)
	}
	c.send(tc, &netsim.Packet{
		Src:        c.Name,
		Dst:        streamDst(p),
		StreamID:   p.StreamID,
		Seq:        p.Seq,
		Bytes:      p.Bytes,
		Enqueued:   p.Enqueued,
		Deadline:   p.Deadline,
		Dispatched: tc.Now(),
	}, p.Payload)
}

// runDispatcher is the decoupled-dispatch task: it drains the dispatch
// FIFO, paying the dispatch and protocol costs, while the scheduler task
// keeps making decisions.
func (ext *SchedulerExt) runDispatcher(tc *rtos.TaskCtx) {
	lap := cpu.StartLap(ext.Card.Meter)
	for {
		ext.dispatchSem.Take(tc)
		p := ext.dispatchQ[0]
		ext.dispatchQ = ext.dispatchQ[1:]
		ext.dispatch(tc, lap, p)
	}
}

// streamDst extracts the client address from the packet payload when the
// producer tagged one.
func streamDst(p *dwcs.Packet) string {
	if a, ok := p.Payload.(Addressed); ok {
		return a.ClientAddr()
	}
	return fmt.Sprintf("client-%d", p.StreamID)
}

// Addressed lets payloads carry an explicit client address.
type Addressed interface{ ClientAddr() string }

// AddrPayload is a payload carrying only a destination address.
type AddrPayload string

// ClientAddr implements Addressed.
func (a AddrPayload) ClientAddr() string { return string(a) }

// sleepUntil blocks the scheduler task until `until` or until a new
// enqueue kicks it, whichever comes first.
func (ext *SchedulerExt) sleepUntil(tc *rtos.TaskCtx, until sim.Time) {
	if until <= ext.Card.Eng.Now() {
		return // charging the decision's CPU time already passed the target
	}
	fired := false
	tc.Await(func(done func()) {
		once := func() {
			if fired {
				return
			}
			fired = true
			ext.kick = nil
			done()
		}
		ev := ext.Card.Eng.At(until, once)
		ext.kick = func() {
			ev.Cancel()
			once()
		}
	})
}

// Producer is a frame source feeding a scheduler extension.
type Producer struct {
	Injected  int64
	Stalled   int64 // injection attempts deferred because the ring was full
	Orphaned  int64 // frames abandoned because the stream disappeared
	Throttled int64 // fetches deferred by overload backpressure
	Shed      int64 // frames skipped at the source by the degradation ladder
}

// gateSource holds the producer at the source while overload backpressure is
// engaged or the budget lacks headroom for the next frame — this is what
// throttles disk prefetch (path C) and peer DMA (path B) end to end.
func gateSource(tc *rtos.TaskCtx, ext *SchedulerExt, n int64, p *Producer) {
	ov := ext.Overload
	if ov == nil {
		return
	}
	for !ov.AllowSource(n) {
		p.Throttled++
		tc.Sleep(ov.PollEvery)
	}
}

// skipShed applies the ladder's source downgrade to one frame, keeping the
// producer's pacing cadence when the frame is skipped. Returns true when the
// frame was shed.
func skipShed(tc *rtos.TaskCtx, ext *SchedulerExt, f mpeg.Frame, p *Producer, next *sim.Time, injectEvery sim.Time) bool {
	ov := ext.Overload
	if ov == nil || ov.AdmitFrame(f.Type) {
		return false
	}
	p.Shed++
	if injectEvery > 0 {
		*next += injectEvery
		tc.SleepUntil(*next)
	}
	return true
}

// SpawnLocalProducer streams clip from the card's own attached disk into
// the local scheduler — path C of Figure 3 (disk → NI CPU → network, no
// I/O bus, no host). Frames are injected every injectEvery (0 = flat out),
// looping over the clip `loops` times (≤0 = once). dst is the client
// address frames are delivered to.
func (ext *SchedulerExt) SpawnLocalProducer(clip *mpeg.Clip, streamID int, dst string, injectEvery sim.Time, loops int) *Producer {
	c := ext.Card
	if c.FS == nil {
		panic("nic: SpawnLocalProducer needs an attached disk")
	}
	if loops <= 0 {
		loops = 1
	}
	p := &Producer{}
	c.Kernel.Spawn(fmt.Sprintf("%s/prod%d", c.Name, streamID), PrioProducer, func(tc *rtos.TaskCtx) {
		next := tc.Now()
		var seq int64 // tracks the dwcs-assigned in-order sequence numbers
		for loop := 0; loop < loops; loop++ {
			for _, f := range clip.Frames {
				if skipShed(tc, ext, f, p, &next, injectEvery) {
					continue
				}
				gateSource(tc, ext, f.Size, p)
				readStart := tc.Now()
				tc.Await(func(done func()) { c.FS.Read(f.Offset, f.Size, done) })
				readEnd := tc.Now()
				addr := allocWithBackoff(tc, ext, f.Size, p)
				pkt := dwcs.Packet{Bytes: f.Size, Offset: f.Offset,
					Payload: addressedBuf{FrameBuf{c.Mem, addr}, dst}}
				if !enqueueWithBackoff(tc, ext, streamID, pkt, p, injectEvery) {
					return // stream is gone (failed over); stop sourcing
				}
				if c.Tel != nil {
					c.Tel.Span(streamID, seq, telemetry.StageDisk, c.Name, readStart, readEnd)
				}
				seq++
				p.Injected++
				if injectEvery > 0 {
					next += injectEvery
					tc.SleepUntil(next)
				}
			}
		}
	})
	return p
}

// enqueueWithBackoff retries a full ring until dispatches make room, but
// aborts (false) when the stream itself is gone — a removed or failed-over
// stream would otherwise trap the producer in an infinite retry spin. The
// orphaned frame's card memory is released on abort.
func enqueueWithBackoff(tc *rtos.TaskCtx, ext *SchedulerExt, streamID int, pkt dwcs.Packet, p *Producer, injectEvery sim.Time) bool {
	for {
		err := ext.Enqueue(streamID, pkt)
		if err == nil {
			return true
		}
		if errors.Is(err, dwcs.ErrUnknownStream) {
			releasePayload(pkt.Payload)
			p.Orphaned++
			return false
		}
		p.Stalled++
		tc.Sleep(injectOrDefault(injectEvery))
	}
}

// allocWithBackoff retries a card-memory allocation until dispatches free
// frames — memory pressure stalls the producer, it never loses a frame.
// With an overload controller attached, the budget's accounted total (which
// also covers stream state, queue slots, and injected leaks) must have
// headroom too, checked in the same instant as the allocation so the
// zero-breach invariant holds.
func allocWithBackoff(tc *rtos.TaskCtx, ext *SchedulerExt, n int64, p *Producer) mem.Addr {
	m := ext.Card.Mem
	for {
		if ov := ext.Overload; ov == nil || ov.Budget.HeadroomFor(n) {
			addr, err := m.Alloc(n)
			if err == nil {
				return addr
			}
		}
		p.Stalled++
		tc.Sleep(10 * sim.Millisecond)
	}
}

func injectOrDefault(d sim.Time) sim.Time {
	if d > 0 {
		return d
	}
	return 5 * sim.Millisecond
}

// addressedBuf is a FrameBuf plus a client address.
type addressedBuf struct {
	FrameBuf
	dst string
}

func (a addressedBuf) ClientAddr() string { return a.dst }

// SpawnPeerProducer streams clip from src's attached disk, DMAs each frame
// across the PCI bus into this scheduler card, and enqueues it — path B of
// Figure 3 (disk → I/O bus → scheduler NI → network; no host CPU or
// memory).
func (ext *SchedulerExt) SpawnPeerProducer(src *Card, clip *mpeg.Clip, streamID int, dst string, injectEvery sim.Time, loops int) *Producer {
	return ext.SpawnPeerProducerFrom(src, clip, streamID, dst, injectEvery, loops, 0)
}

// SpawnPeerProducerFrom is SpawnPeerProducer with a frame cursor: the first
// pass over the clip starts at frame startFrame (mod clip length) instead of
// 0, so a producer respawned after a live migration resumes the title where
// the moved stream left off rather than replaying from the top.
func (ext *SchedulerExt) SpawnPeerProducerFrom(src *Card, clip *mpeg.Clip, streamID int, dst string, injectEvery sim.Time, loops int, startFrame int) *Producer {
	if src.FS == nil {
		panic("nic: SpawnPeerProducer needs a disk on the source card")
	}
	if src.PCI == nil || ext.Card.PCI == nil {
		panic("nic: SpawnPeerProducer needs both cards on a PCI segment")
	}
	if loops <= 0 {
		loops = 1
	}
	skip := 0
	if startFrame > 0 && len(clip.Frames) > 0 {
		skip = startFrame % len(clip.Frames)
	}
	sched := ext.Card
	p := &Producer{}
	src.Kernel.Spawn(fmt.Sprintf("%s/peer%d", src.Name, streamID), PrioProducer, func(tc *rtos.TaskCtx) {
		next := tc.Now()
		var seq int64 // tracks the dwcs-assigned in-order sequence numbers
		for loop := 0; loop < loops; loop++ {
			frames := clip.Frames
			if loop == 0 {
				frames = frames[skip:]
			}
			for _, f := range frames {
				if skipShed(tc, ext, f, p, &next, injectEvery) {
					continue
				}
				gateSource(tc, ext, f.Size, p)
				readStart := tc.Now()
				tc.Await(func(done func()) { src.FS.Read(f.Offset, f.Size, done) })
				readEnd := tc.Now()
				addr := allocWithBackoff(tc, ext, f.Size, p)
				// Card-to-card peer DMA of the frame body.
				busStart := tc.Now()
				tc.Await(func(done func()) { src.PCI.DMA(f.Size, done) })
				busEnd := tc.Now()
				pkt := dwcs.Packet{Bytes: f.Size, Offset: f.Offset,
					Payload: addressedBuf{FrameBuf{sched.Mem, addr}, dst}}
				if !enqueueWithBackoff(tc, ext, streamID, pkt, p, injectEvery) {
					return // stream is gone (failed over); stop sourcing
				}
				if sched.Tel != nil {
					sched.Tel.Span(streamID, seq, telemetry.StageDisk, src.Name, readStart, readEnd)
					sched.Tel.Span(streamID, seq, telemetry.StageBus, src.PCI.Name(), busStart, busEnd)
				}
				seq++
				p.Injected++
				if injectEvery > 0 {
					next += injectEvery
					tc.SleepUntil(next)
				}
			}
		}
	})
	return p
}

// SpawnRelay streams clip from the card's attached disk straight to dst
// with no scheduler — the Experiment II configuration of Table 4
// (NI disk → NI CPU → network). perFrame receives each frame's disk-to-
// wire-handoff start time; done fires after the last frame is handed to
// the transmitter.
func (c *Card) SpawnRelay(clip *mpeg.Clip, dst string, frameBytes int64, frames int, done func()) *rtos.Task {
	if c.FS == nil {
		panic("nic: SpawnRelay needs an attached disk")
	}
	return c.Kernel.Spawn(c.Name+"/relay", PrioRelay, func(tc *rtos.TaskCtx) {
		for i := 0; i < frames; i++ {
			f := clip.Frames[i%len(clip.Frames)]
			sz := frameBytes
			if sz == 0 {
				sz = f.Size
			}
			tc.Await(func(cb func()) { c.FS.Read(f.Offset, sz, cb) })
			c.send(tc, &netsim.Packet{Src: c.Name, Dst: dst, Bytes: sz, Seq: int64(i)}, nil)
		}
		if done != nil {
			done()
		}
	})
}

// SpawnPeerRelay implements Experiment III of Table 4: src reads each frame
// from its disk, DMAs it across the PCI bus to this card, and this card
// transmits it (disk → I/O bus → NI CPU → network).
func (c *Card) SpawnPeerRelay(src *Card, clip *mpeg.Clip, dst string, frameBytes int64, frames int, done func()) {
	if src.FS == nil {
		panic("nic: SpawnPeerRelay needs a disk on the source card")
	}
	type handoff struct{ seq int64 }
	queue := make([]handoff, 0, 8)
	ready := rtos.NewSemaphore(c.Kernel, c.Name+"/relayq", 0)
	c.Kernel.Spawn(c.Name+"/peer-relay", PrioRelay, func(tc *rtos.TaskCtx) {
		for sent := 0; sent < frames; sent++ {
			ready.Take(tc)
			h := queue[0]
			queue = queue[1:]
			f := clip.Frames[int(h.seq)%len(clip.Frames)]
			sz := frameBytes
			if sz == 0 {
				sz = f.Size
			}
			c.send(tc, &netsim.Packet{Src: c.Name, Dst: dst, Bytes: sz, Seq: h.seq}, nil)
		}
		if done != nil {
			done()
		}
	})
	src.Kernel.Spawn(src.Name+"/peer-reader", PrioProducer, func(tc *rtos.TaskCtx) {
		for i := 0; i < frames; i++ {
			f := clip.Frames[i%len(clip.Frames)]
			sz := frameBytes
			if sz == 0 {
				sz = f.Size
			}
			tc.Await(func(cb func()) { src.FS.Read(f.Offset, sz, cb) })
			tc.Await(func(cb func()) { src.PCI.DMA(sz, cb) })
			queue = append(queue, handoff{seq: int64(i)})
			ready.Give()
		}
	})
}
