package nic

import (
	"strings"
	"testing"

	"repro/internal/blackbox"
	"repro/internal/dwcs"
	"repro/internal/overload"
	"repro/internal/sim"
)

// TestAttachBlackboxRecordsAndTriggers drives one card through dispatches, a
// budget refusal, a ladder climb, and a watchdog bite, and asserts the flight
// recorder saw each through the attached taps.
func TestAttachBlackboxRecordsAndTriggers(t *testing.T) {
	r := newRig(t, true)
	ext, err := r.card.LoadScheduler(SchedulerConfig{WorkConserving: true})
	if err != nil {
		t.Fatal(err)
	}
	ctl := overload.NewController(r.card.Name, 64<<10) // tiny budget: easy to refuse
	ext.AttachOverload(ctl)
	r.card.StartWatchdog(50*sim.Millisecond, func() { r.card.Reset() })

	rec, err := blackbox.New(blackbox.Config{Name: r.card.Name, Bytes: 4 << 10,
		Budget: ctl.Budget})
	if err != nil {
		t.Fatal(err)
	}
	ext.AttachBlackbox(rec)
	ext.AttachBlackbox(rec) // idempotent

	if err := ext.AddStream(streamSpec(1, 10*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// A stream whose projected ring cannot fit the 64 KiB budget: refusal.
	big := streamSpec(2, 10*sim.Millisecond)
	big.NominalBytes = 4096
	big.BufCap = 64
	if err := ext.AddStream(big); err == nil {
		t.Fatal("oversized stream should be refused")
	}

	for i := 0; i < 20; i++ {
		ext.Enqueue(1, dwcs.Packet{Bytes: 1000})
	}
	r.eng.At(200*sim.Millisecond, func() { r.card.HangHog(300 * sim.Millisecond) })
	r.eng.RunUntil(sim.Second)

	kinds := map[blackbox.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds[blackbox.KindDecision] == 0 {
		t.Fatal("no scheduler decisions recorded")
	}
	if kinds[blackbox.KindRefusal] == 0 {
		t.Fatal("budget refusal not recorded")
	}
	if kinds[blackbox.KindWatchdog] == 0 {
		t.Fatal("watchdog bite not recorded")
	}
	var reasons []string
	for _, inc := range rec.Incidents() {
		reasons = append(reasons, inc.Reason)
	}
	joined := strings.Join(reasons, " ")
	if !strings.Contains(joined, "budget-refusal") || !strings.Contains(joined, "watchdog") {
		t.Fatalf("incident reasons %v should include budget-refusal and watchdog", reasons)
	}
	// The default StateFn carries the budget ledger and ladder rung.
	if dump := rec.DumpAll(); !strings.Contains(dump, "ladder rung:") ||
		!strings.Contains(dump, r.card.Name+": used") {
		t.Fatalf("incident state missing budget/ladder:\n%s", dump)
	}
	// The ring itself is charged to the card budget.
	if got := ctl.Budget.UsedClass(overload.ClassBlackbox); got != rec.RingBytes() {
		t.Fatalf("ring charge = %d, want %d", got, rec.RingBytes())
	}
}

// TestRecordFaultTriggersOnArmOnly exercises the faults.Tee adapter surface.
func TestRecordFaultTriggersOnArmOnly(t *testing.T) {
	r := newRig(t, true)
	ext, err := r.card.LoadScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := blackbox.New(blackbox.Config{Name: r.card.Name})
	if err != nil {
		t.Fatal(err)
	}
	ext.AttachBlackbox(rec)
	ext.RecordFault(sim.Second, "mem-leak", "ni0", false)
	ext.RecordFault(2*sim.Second, "mem-leak", "ni0", true)
	if rec.Triggers != 1 {
		t.Fatalf("Triggers = %d, want 1 (arm only, not recovery)", rec.Triggers)
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Kind != blackbox.KindFault || evs[1].Note != "mem-leak ni0 recovered" {
		t.Fatalf("fault events %v", evs)
	}
}
