package nic

import (
	"testing"

	"repro/internal/dwcs"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/mpeg"
	"repro/internal/sim"
)

// TestCacheFrontedProducer fronts the producer card's filesystem with a
// media cache: the second pass over a looping clip never touches the disk,
// the §1 proxy/caching technique composed with NI scheduling.
func TestCacheFrontedProducer(t *testing.T) {
	r := newRig(t, true)
	d := disk.New(r.eng, disk.DefaultSCSI("ni-disk"))
	fs := cache.New(r.eng, disk.NewDOSFS(d), "clip", 1<<20, 0)
	r.card.AttachDisk(d, fs)

	ext, _ := r.card.LoadScheduler(SchedulerConfig{EligibleEarly: 10 * sim.Millisecond})
	ext.AddStream(streamSpec(1, 20*sim.Millisecond))
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 25, FPS: 30, GOPPattern: "IBB", MeanFrame: 1500, Seed: 5})
	ext.SpawnLocalProducer(clip, 1, "client-1", 20*sim.Millisecond, 2) // two passes

	r.eng.RunUntil(5 * sim.Second)
	if r.client.Received != 50 {
		t.Fatalf("client received %d of 50", r.client.Received)
	}
	if d.Stats.Reads != 25 {
		t.Fatalf("disk reads = %d, want 25 (second pass cached)", d.Stats.Reads)
	}
	if fs.Hits != 25 {
		t.Fatalf("cache hits = %d", fs.Hits)
	}
}

func TestStoreKindAndPayloadHelpers(t *testing.T) {
	if StoreDRAM.String() != "dram" || StoreHardwareQueue.String() != "hw-queue" {
		t.Error("store kind names")
	}
	if AddrPayload("client-9").ClientAddr() != "client-9" {
		t.Error("AddrPayload")
	}
}

func TestBenchSchedulerStandsAlone(t *testing.T) {
	eng := sim.NewEngine(1)
	card := New(eng, Config{Name: "bench", CacheOn: true})
	sched := card.NewBenchScheduler(SchedulerConfig{WorkConserving: true})
	if err := sched.AddStream(streamSpec(1, sim.Second)); err != nil {
		t.Fatal(err)
	}
	if err := sched.Enqueue(1, dwcsPacket(700)); err != nil {
		t.Fatal(err)
	}
	if d := sched.Schedule(); d.Packet == nil {
		t.Fatal("bench scheduler did not dispatch")
	}
	// No task was spawned: the engine has nothing scheduler-related queued.
	if card.Kernel.Switches != 0 {
		t.Fatalf("bench scheduler spawned kernel activity: %d switches", card.Kernel.Switches)
	}
}

func TestPeerRelayStreamsAllFrames(t *testing.T) {
	r := newRig(t, true)
	src := New(r.eng, Config{Name: "src", PCI: r.pci})
	d := disk.New(r.eng, disk.DefaultSCSI("sd"))
	src.AttachDisk(d, disk.NewDOSFS(d))
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 30, FPS: 30, GOPPattern: "IBB", MeanFrame: 1200, Seed: 6})
	done := false
	r.card.SpawnPeerRelay(src, clip, "client-1", 0, 30, func() { done = true })
	r.eng.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("peer relay did not finish")
	}
	if r.client.Received != 30 {
		t.Fatalf("client received %d of 30", r.client.Received)
	}
	if r.pci.Stats.DMATransfers < 30 {
		t.Fatalf("PCI DMA transfers = %d", r.pci.Stats.DMATransfers)
	}
}

func dwcsPacket(n int64) dwcs.Packet { return dwcs.Packet{Bytes: n} }

func TestPauseResumeInstructions(t *testing.T) {
	r := newRig(t, true)
	ext, _ := r.card.LoadScheduler(SchedulerConfig{EligibleEarly: 10 * sim.Millisecond})
	ext.AddStream(streamSpec(1, 20*sim.Millisecond))
	for i := 0; i < 5; i++ {
		ext.Enqueue(1, dwcsPacket(800))
	}
	if _, err := ext.Invoke("pause", 1); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(2 * sim.Second)
	if ext.Sent != 0 {
		t.Fatalf("paused stream sent %d frames", ext.Sent)
	}
	if _, err := ext.Invoke("resume", 1); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(4 * sim.Second)
	if ext.Sent != 5 {
		t.Fatalf("after resume sent %d of 5", ext.Sent)
	}
	if ext.Dropped != 0 {
		t.Fatalf("resume caused %d drops", ext.Dropped)
	}
	for _, op := range []string{"pause", "resume"} {
		if _, err := ext.Invoke(op, "bad"); err == nil {
			t.Errorf("%s with bad arg should fail", op)
		}
	}
}
