package hostos

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestSubmitRunsToCompletion(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := New(eng, 1, 10*sim.Millisecond)
	var doneAt sim.Time
	sys.Submit(0, 25*sim.Millisecond, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 25*sim.Millisecond {
		t.Fatalf("done at %v", doneAt)
	}
}

func TestZeroDemandCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := New(eng, 1, sim.Millisecond)
	done := false
	sys.Submit(0, 0, func() { done = true })
	if !done {
		t.Fatal("zero demand should complete synchronously")
	}
}

func TestRoundRobinInterleavesJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := New(eng, 1, 10*sim.Millisecond)
	var bigDone, smallDone sim.Time
	sys.Submit(0, 50*sim.Millisecond, func() { bigDone = eng.Now() })
	sys.Submit(0, 10*sim.Millisecond, func() { smallDone = eng.Now() })
	eng.Run()
	// With 10ms quanta the small job finishes long before the big one,
	// even though it arrived second.
	if smallDone >= bigDone {
		t.Fatalf("small done %v, big done %v: no interleaving", smallDone, bigDone)
	}
	if smallDone != 20*sim.Millisecond {
		t.Fatalf("small done at %v, want 20ms (one big quantum ahead)", smallDone)
	}
}

func TestSmallJobQueuesBehindBursts(t *testing.T) {
	// The Figure 7/8 mechanism: a µs-scale scheduler burst waits behind
	// web-request quanta on a loaded CPU.
	eng := sim.NewEngine(1)
	sys := New(eng, 1, 10*sim.Millisecond)
	for i := 0; i < 5; i++ {
		sys.Submit(0, 6*sim.Millisecond, nil)
	}
	var doneAt sim.Time
	sys.Submit(0, 100*sim.Microsecond, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt < 30*sim.Millisecond {
		t.Fatalf("tiny job done at %v, expected to queue behind 30ms of web work", doneAt)
	}
}

func TestAnyCPUPicksLeastLoaded(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := New(eng, 2, 10*sim.Millisecond)
	sys.Submit(0, 100*sim.Millisecond, nil)
	var doneAt sim.Time
	sys.Submit(AnyCPU, 10*sim.Millisecond, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 10*sim.Millisecond {
		t.Fatalf("job done at %v, want 10ms (should land on idle CPU 1)", doneAt)
	}
}

func TestBoundCPUStaysBound(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := New(eng, 2, 10*sim.Millisecond)
	sys.Submit(1, 30*sim.Millisecond, nil)
	eng.Run()
	if sys.CPU(1).BusyTime != 30*sim.Millisecond || sys.CPU(0).BusyTime != 0 {
		t.Fatalf("busy: cpu0=%v cpu1=%v", sys.CPU(0).BusyTime, sys.CPU(1).BusyTime)
	}
}

func TestUtilizationAndSampler(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := New(eng, 2, 10*sim.Millisecond)
	// 50ms of work on one of two CPUs over 100ms → 25% total.
	sys.Submit(0, 50*sim.Millisecond, nil)
	var series stats.Series
	stop := sys.SampleUtilization(10*sim.Millisecond, &series)
	eng.RunUntil(100 * sim.Millisecond)
	stop()
	total := sys.TotalUtilization()
	if total < 0.24 || total > 0.26 {
		t.Fatalf("total utilization = %v, want 0.25", total)
	}
	if series.Len() < 9 {
		t.Fatalf("sampler produced %d samples", series.Len())
	}
	// First five samples: CPU0 fully busy → 50% of 2 CPUs.
	if v := series.Points[0].Value; v < 49 || v > 51 {
		t.Fatalf("first sample = %v%%, want 50", v)
	}
	// After the work drains the samples go to zero.
	if v := series.Last(); v != 0 {
		t.Fatalf("last sample = %v%%, want 0", v)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, f := range []func(){
		func() { New(eng, 0, sim.Millisecond) },
		func() { New(eng, 1, sim.Millisecond).Submit(0, -1, nil) },
		func() { New(eng, 1, sim.Millisecond).Submit(5, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: work conservation — total busy time equals total demand once
// everything drains, regardless of submission pattern.
func TestWorkConservation(t *testing.T) {
	f := func(demands []uint8, cpus uint8) bool {
		eng := sim.NewEngine(2)
		n := int(cpus)%4 + 1
		sys := New(eng, n, 5*sim.Millisecond)
		var want sim.Time
		completed := 0
		for i, d := range demands {
			dem := sim.Time(d) * 100 * sim.Microsecond
			want += dem
			sys.Submit(i%n, dem, func() { completed++ })
		}
		eng.Run()
		var got sim.Time
		for i := 0; i < n; i++ {
			got += sys.CPU(i).BusyTime
		}
		return got == want && completed == len(demands)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
