// Package hostos models the Solaris x86 host of the quad Pentium Pro
// server: multiple CPUs, a time-sharing run queue per CPU, processor
// binding (the paper binds the DWCS process with Solaris `pbind`), and a
// Perfmeter-style utilization sampler (Figure 6).
//
// The model is deliberately coarser than the NI's RTOS model: host work is
// submitted as CPU demands that are sliced into scheduling quanta and
// round-robined per CPU. What matters for the reproduction is the
// *queueing* a small, latency-sensitive job (a DWCS scheduling decision
// plus a protocol-stack traversal, a few hundred µs) experiences behind
// web-request service bursts — that queueing is what degrades the
// host-based scheduler in Figures 7 and 8 while the NI-based scheduler of
// Figure 9/10 never sees it.
package hostos

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// AnyCPU submits work to the currently least-loaded CPU.
const AnyCPU = -1

// Job is one schedulable CPU demand.
type job struct {
	remaining sim.Time
	done      func()
}

// CPU is one processor's run queue.
type CPU struct {
	eng     *sim.Engine
	id      int
	quantum sim.Time
	queue   []*job
	running *job

	// BusyTime accumulates executed demand.
	BusyTime sim.Time
}

func (c *CPU) load() sim.Time {
	var l sim.Time
	if c.running != nil {
		l += c.running.remaining
	}
	for _, j := range c.queue {
		l += j.remaining
	}
	return l
}

func (c *CPU) submit(j *job) {
	c.queue = append(c.queue, j)
	c.kick()
}

func (c *CPU) kick() {
	if c.running != nil || len(c.queue) == 0 {
		return
	}
	j := c.queue[0]
	c.queue = c.queue[1:]
	c.running = j
	slice := j.remaining
	if slice > c.quantum {
		slice = c.quantum
	}
	c.eng.After(slice, func() {
		c.BusyTime += slice
		j.remaining -= slice
		c.running = nil
		if j.remaining > 0 {
			c.queue = append(c.queue, j) // round-robin: back of the queue
		} else if j.done != nil {
			j.done()
		}
		c.kick()
	})
}

// Utilization returns the fraction of elapsed time this CPU was busy.
func (c *CPU) Utilization() float64 {
	if c.eng.Now() == 0 {
		return 0
	}
	return float64(c.BusyTime) / float64(c.eng.Now())
}

// System is the host: a set of CPUs sharing nothing but the sampler.
type System struct {
	eng  *sim.Engine
	cpus []*CPU

	lastBusy   sim.Time
	lastSample sim.Time
}

// New returns a host with n CPUs and the given scheduling quantum.
func New(eng *sim.Engine, n int, quantum sim.Time) *System {
	if n <= 0 {
		panic("hostos: need at least one CPU")
	}
	s := &System{eng: eng}
	for i := 0; i < n; i++ {
		s.cpus = append(s.cpus, &CPU{eng: eng, id: i, quantum: quantum})
	}
	return s
}

// NumCPU returns the number of online CPUs.
func (s *System) NumCPU() int { return len(s.cpus) }

// CPU returns processor i.
func (s *System) CPU(i int) *CPU { return s.cpus[i] }

// Submit queues d of CPU demand on processor cpu (AnyCPU picks the least
// loaded), invoking done when it has fully executed.
func (s *System) Submit(cpu int, d sim.Time, done func()) {
	if d < 0 {
		panic(fmt.Sprintf("hostos: negative demand %v", d))
	}
	if d == 0 {
		if done != nil {
			done()
		}
		return
	}
	target := cpu
	if cpu == AnyCPU {
		target = 0
		best := s.cpus[0].load()
		for i := 1; i < len(s.cpus); i++ {
			if l := s.cpus[i].load(); l < best {
				best = l
				target = i
			}
		}
	} else if cpu < 0 || cpu >= len(s.cpus) {
		panic(fmt.Sprintf("hostos: no CPU %d", cpu))
	}
	s.cpus[target].submit(&job{remaining: d, done: done})
}

// QueueLen returns how many jobs are waiting (not running) on cpu i.
func (s *System) QueueLen(i int) int { return len(s.cpus[i].queue) }

// TotalUtilization returns the average utilization across CPUs since t=0.
func (s *System) TotalUtilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	var busy sim.Time
	for _, c := range s.cpus {
		busy += c.BusyTime
	}
	return float64(busy) / float64(s.eng.Now()) / float64(len(s.cpus))
}

// SampleUtilization appends a Perfmeter-style sample (percent CPU used over
// the interval since the previous sample) to series every period, until the
// returned stop function is called.
func (s *System) SampleUtilization(period sim.Time, series *stats.Series) (stop func()) {
	s.lastBusy = 0
	s.lastSample = s.eng.Now()
	return s.eng.Every(period, func() {
		var busy sim.Time
		for _, c := range s.cpus {
			busy += c.BusyTime
		}
		interval := s.eng.Now() - s.lastSample
		if interval <= 0 {
			return
		}
		pct := 100 * float64(busy-s.lastBusy) / float64(interval) / float64(len(s.cpus))
		series.Add(s.eng.Now(), pct)
		s.lastBusy = busy
		s.lastSample = s.eng.Now()
	})
}
