package qos

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/sim"
)

func s1() Stream {
	return Stream{Name: "s1", Period: 160 * sim.Millisecond, FrameBytes: 5000,
		Loss: fixed.New(1, 2)}
}

func TestStreamArithmetic(t *testing.T) {
	s := s1()
	// 5000 B × 8 / 0.16 s = 250 kbps requested.
	if got := s.RequestedBps(); math.Abs(got-250000) > 1 {
		t.Errorf("requested = %v", got)
	}
	if got := s.GuaranteedFraction(); got != 0.5 {
		t.Errorf("fraction = %v", got)
	}
	if got := s.MinBandwidthBps(); math.Abs(got-125000) > 1 {
		t.Errorf("min bw = %v", got)
	}
	// x=1 → at most (1+1)·T wait.
	if got := s.MaxDelayBound(); got != 320*sim.Millisecond {
		t.Errorf("delay bound = %v", got)
	}
}

func TestZeroLossStream(t *testing.T) {
	s := s1()
	s.Loss = fixed.New(0, 1)
	if s.GuaranteedFraction() != 1 {
		t.Error("zero-loss stream must be fully guaranteed")
	}
	if s.MaxDelayBound() != s.Period {
		t.Errorf("delay bound = %v, want one period", s.MaxDelayBound())
	}
	var zero Stream
	zero.Period = sim.Second
	zero.FrameBytes = 100
	if zero.GuaranteedFraction() != 1 { // zero Frac = 0/1
		t.Error("zero-value loss must mean no losses allowed")
	}
}

func TestCheckFeasible(t *testing.T) {
	streams := []Stream{s1(), s1(), s1()}
	rep, err := Check(streams, 100e6, 925*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("3×250kbps on 100 Mbps must be feasible")
	}
	if rep.LinkUtilization > 0.01 {
		t.Errorf("link util = %v", rep.LinkUtilization)
	}
	if !strings.Contains(rep.String(), "feasible") {
		t.Errorf("report: %s", rep)
	}
}

func TestCheckInfeasibleLink(t *testing.T) {
	// 500 × 250 kbps guaranteed-half streams = 62.5 Mbps guaranteed; on a
	// 10 Mbps link that is infeasible.
	streams := make([]Stream, 500)
	for i := range streams {
		streams[i] = s1()
	}
	rep, err := Check(streams, 10e6, sim.Microsecond)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if rep.Feasible || rep.LinkUtilization <= 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "INFEASIBLE") {
		t.Errorf("report: %s", rep)
	}
}

func TestCheckInfeasibleCPU(t *testing.T) {
	// 1000 streams at 10 ms periods with 100 µs decisions: CPU util = 10.
	streams := make([]Stream, 1000)
	for i := range streams {
		streams[i] = Stream{Name: "f", Period: 10 * sim.Millisecond, FrameBytes: 100,
			Loss: fixed.New(0, 1)}
	}
	_, err := Check(streams, 1e12, 100*sim.Microsecond)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckValidation(t *testing.T) {
	bad := []Stream{
		{Name: "p", Period: 0, FrameBytes: 1},
		{Name: "f", Period: 1, FrameBytes: 0},
		{Name: "l", Period: 1, FrameBytes: 1, Loss: fixed.New(3, 2)},
	}
	for _, s := range bad {
		if _, err := Check([]Stream{s}, 1e6, sim.Microsecond); err == nil {
			t.Errorf("stream %s should fail validation", s.Name)
		}
	}
}

func TestMaxStreams(t *testing.T) {
	s := s1()
	n := MaxStreams(s, 100e6, 925*sim.Microsecond)
	if n == 0 {
		t.Fatal("no streams fit")
	}
	// Link bound: 100e6/125000 = 800; CPU bound: 1/(0.5×0.000925/0.16) ≈ 345.
	if n != 345 {
		t.Fatalf("MaxStreams = %d, want 345 (CPU-bound)", n)
	}
	if MaxStreams(Stream{}, 1e6, sim.Microsecond) != 0 {
		t.Error("invalid stream should yield 0")
	}
}

// The analytical minimum-bandwidth guarantee must hold on the real
// scheduler: an overloaded link still delivers each stream at least its
// guaranteed fraction.
func TestGuaranteeHoldsUnderOverload(t *testing.T) {
	clock := sim.Time(0)
	// Packets are eligible for their whole period (EligibleEarly = T), so
	// the scheduler may serve each one any time before its deadline.
	sched := dwcs.New(dwcs.Config{
		WorkConserving: false,
		EligibleEarly:  10 * sim.Millisecond,
		Now:            func() sim.Time { return clock },
	})
	specs := []dwcs.StreamSpec{
		{ID: 1, Name: "tight", Period: 10 * sim.Millisecond, Loss: fixed.New(1, 4), Lossy: true, BufCap: 256},
		{ID: 2, Name: "loose", Period: 10 * sim.Millisecond, Loss: fixed.New(3, 4), Lossy: true, BufCap: 256},
	}
	for _, sp := range specs {
		if err := sched.AddStream(sp); err != nil {
			t.Fatal(err)
		}
	}
	// Both streams stay backlogged; the "link" only services one packet
	// per 8 ms — 125 packets/s against 200/s requested, a 1.6× overload.
	for clock < 10*sim.Second {
		for _, sp := range specs {
			for sched.QueueLen(sp.ID) < 4 {
				if err := sched.Enqueue(sp.ID, dwcs.Packet{Bytes: 1000}); err != nil {
					break
				}
			}
		}
		sched.Schedule()
		clock += 8 * sim.Millisecond
	}
	tight, _ := sched.Stats(1)
	loose, _ := sched.Stats(2)
	// The tight stream (guaranteed 3/4) must achieve a higher service
	// fraction than the loose one (guaranteed 1/4).
	fTight := float64(tight.Serviced) / float64(tight.Serviced+tight.Dropped)
	fLoose := float64(loose.Serviced) / float64(loose.Serviced+loose.Dropped)
	if fTight <= fLoose {
		t.Fatalf("tight=%.2f loose=%.2f: window constraints not honored", fTight, fLoose)
	}
	if fTight < 0.70 {
		t.Fatalf("tight stream served %.2f, want ≥ its 0.75 guarantee (within slack)", fTight)
	}
}

// Property: guaranteed bandwidth never exceeds requested, and scales
// linearly in frame size.
func TestBandwidthProperties(t *testing.T) {
	f := func(x8, y8 uint8, size uint16, periodMs uint8) bool {
		y := int64(y8)%16 + 1
		x := int64(x8) % (y + 1)
		s := Stream{
			Name:       "p",
			Period:     sim.Time(periodMs%100+1) * sim.Millisecond,
			FrameBytes: int64(size) + 1,
			Loss:       fixed.New(x, y),
		}
		if s.MinBandwidthBps() > s.RequestedBps()+1e-9 {
			return false
		}
		double := s
		double.FrameBytes *= 2
		return math.Abs(double.MinBandwidthBps()-2*s.MinBandwidthBps()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
