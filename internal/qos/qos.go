// Package qos provides the analytical side of DWCS: minimum-bandwidth
// guarantees, utilization-based feasibility checks, and delay bounds
// derived from the window-constrained scheduling model the paper's
// scheduler implements (§3.1.2, and the DWCS analyses it cites).
//
// The key identities:
//
//   - A stream with period T and loss-tolerance x/y is guaranteed service
//     of at least (y−x) packets per window of y packet slots, so its
//     guaranteed fraction of its own requested rate is (y−x)/y and its
//     minimum bandwidth is S·8·(y−x)/(y·T) for frame size S.
//   - A stream set is feasible on one link of capacity C when the sum of
//     minimum bandwidths does not exceed C, and feasible on the scheduler
//     CPU when Σ (y−x)/y · (c/T) ≤ 1 for per-decision service time c —
//     the utilization test the cluster's admission control applies.
//   - In a feasible schedule, a packet of stream i waits at most
//     (x_i + 1) · T_i from eligibility to service (it can lose at most its
//     window's loss budget before the constraint forces service).
package qos

import (
	"errors"
	"fmt"

	"repro/internal/fixed"
	"repro/internal/sim"
)

// Stream describes one stream for analysis.
type Stream struct {
	Name       string
	Period     sim.Time   // T: inter-frame service spacing
	FrameBytes int64      // S: nominal frame size
	Loss       fixed.Frac // x/y window constraint
}

func (s Stream) validate() error {
	if s.Period <= 0 {
		return fmt.Errorf("qos: %s: period must be positive", s.Name)
	}
	if s.FrameBytes <= 0 {
		return fmt.Errorf("qos: %s: frame size must be positive", s.Name)
	}
	x, y := s.Loss.Num, s.Loss.Den
	if y == 0 {
		y = 1
	}
	if x < 0 || x > y {
		return fmt.Errorf("qos: %s: loss tolerance %v out of range", s.Name, s.Loss)
	}
	return nil
}

// window returns (x, y) with the zero value normalized to 0/1.
func (s Stream) window() (x, y int64) {
	x, y = s.Loss.Num, s.Loss.Den
	if y == 0 {
		y = 1
	}
	return
}

// RequestedBps is the stream's full requested bandwidth S·8/T.
func (s Stream) RequestedBps() float64 {
	return float64(s.FrameBytes*8) / s.Period.Seconds()
}

// GuaranteedFraction is (y−x)/y: the fraction of packets that must be
// serviced on time in every window.
func (s Stream) GuaranteedFraction() float64 {
	x, y := s.window()
	return float64(y-x) / float64(y)
}

// MinBandwidthBps is the stream's guaranteed minimum bandwidth.
func (s Stream) MinBandwidthBps() float64 {
	return s.RequestedBps() * s.GuaranteedFraction()
}

// MaxDelayBound is the longest a packet can wait from eligibility to
// service in a feasible schedule: the window can defer it past at most x
// loss slots plus its own slot.
func (s Stream) MaxDelayBound() sim.Time {
	x, _ := s.window()
	return sim.Time(x+1) * s.Period
}

// Report is the outcome of a feasibility analysis.
type Report struct {
	Streams []Stream

	// RequestedBps and GuaranteedBps aggregate the stream set.
	RequestedBps  float64
	GuaranteedBps float64
	// LinkUtilization is GuaranteedBps over capacity; CPUUtilization is
	// Σ (y−x)/y · c/T.
	LinkUtilization float64
	CPUUtilization  float64
	// Feasible means both utilizations are ≤ 1.
	Feasible bool
}

// ErrInfeasible is wrapped by Check when the set cannot be guaranteed.
var ErrInfeasible = errors.New("qos: stream set infeasible")

// Check analyses a stream set against a link of linkBps and a scheduler
// that needs perDecision CPU time per serviced frame. It returns the
// report, plus ErrInfeasible when a guarantee bound is exceeded.
func Check(streams []Stream, linkBps float64, perDecision sim.Time) (*Report, error) {
	r := &Report{Streams: streams}
	for _, s := range streams {
		if err := s.validate(); err != nil {
			return nil, err
		}
		r.RequestedBps += s.RequestedBps()
		r.GuaranteedBps += s.MinBandwidthBps()
		r.CPUUtilization += s.GuaranteedFraction() * perDecision.Seconds() / s.Period.Seconds()
	}
	if linkBps > 0 {
		r.LinkUtilization = r.GuaranteedBps / linkBps
	}
	r.Feasible = r.LinkUtilization <= 1 && r.CPUUtilization <= 1
	if !r.Feasible {
		return r, fmt.Errorf("%w: link %.2f, cpu %.2f", ErrInfeasible, r.LinkUtilization, r.CPUUtilization)
	}
	return r, nil
}

// String summarizes the report.
func (r *Report) String() string {
	verdict := "feasible"
	if !r.Feasible {
		verdict = "INFEASIBLE"
	}
	return fmt.Sprintf("qos: %d streams, requested %.0f bps, guaranteed %.0f bps, link %.1f%%, cpu %.1f%% — %s",
		len(r.Streams), r.RequestedBps, r.GuaranteedBps,
		100*r.LinkUtilization, 100*r.CPUUtilization, verdict)
}

// MaxStreams returns how many identical streams fit a link of linkBps and
// a scheduler of perDecision cost, by the same bounds Check applies.
func MaxStreams(s Stream, linkBps float64, perDecision sim.Time) int {
	if err := s.validate(); err != nil {
		return 0
	}
	byLink := int(linkBps / s.MinBandwidthBps())
	cpuPer := s.GuaranteedFraction() * perDecision.Seconds() / s.Period.Seconds()
	byCPU := int(1 / cpuPer)
	if byLink < byCPU {
		return byLink
	}
	return byCPU
}
