// Package dvcmnet distributes the VCM across cluster nodes: "a
// cluster-wide, programmable distributed virtual communication machine
// (DVCM) executes 'close' to the network, on the CoProcessors ... The
// cluster-wide services executed by this machine are available to nodes'
// application programs as communication instructions" (§2, Figure 2).
//
// An Endpoint attaches one node's VCM to the system-area switch under an
// address; Invoke sends an instruction to a remote endpoint as a
// control-plane packet and delivers the reply (or the remote error)
// asynchronously. Instruction processing on the remote side pays that
// card's NI CPU before replying, like any other DVCM extension work.
package dvcmnet

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// reqBytes/respBytes size the control packets on the wire (instruction
// header plus marshalled argument descriptor).
const (
	reqBytes  = 128
	respBytes = 96
)

// ErrTimeout reports a remote invocation that received no reply in time.
var ErrTimeout = errors.New("dvcmnet: invocation timed out")

type kind uint8

const (
	kindRequest kind = iota
	kindReply
)

type message struct {
	kind  kind
	id    uint32
	from  string
	instr core.Instr
	reply any
	err   string
}

// Endpoint is one node's presence in the distributed machine.
type Endpoint struct {
	eng  *sim.Engine
	addr string
	vcm  *core.VCM
	out  *netsim.Link // toward the switch

	// ProcessCost is the NI CPU charged per remote instruction before the
	// reply is sent (the extension runs on the card).
	ProcessCost sim.Time
	// Timeout bounds each Invoke; 0 disables timeouts (reliable SAN).
	Timeout sim.Time

	nextID  uint32
	pending map[uint32]*call

	// Served counts remote instructions executed here; Issued counts
	// invocations sent from here.
	Served int64
	Issued int64
}

type call struct {
	done  func(any, error)
	timer sim.Event
}

// Attach joins the endpoint to the switch under addr. The VCM may be nil
// for pure-client endpoints.
func Attach(eng *sim.Engine, sw *netsim.Switch, addr string, vcm *core.VCM) *Endpoint {
	e := &Endpoint{
		eng:         eng,
		addr:        addr,
		vcm:         vcm,
		ProcessCost: 50 * sim.Microsecond,
		pending:     make(map[uint32]*call),
	}
	e.out = netsim.Fast100(eng, addr+"-dvcm", sw)
	sw.Attach(addr, netsim.Fast100(eng, "sw-"+addr, e))
	return e
}

// Addr returns the endpoint's SAN address.
func (e *Endpoint) Addr() string { return e.addr }

// Invoke executes an instruction on the remote endpoint, delivering the
// result (or error) to done. done may be nil for fire-and-forget control.
func (e *Endpoint) Invoke(remote string, in core.Instr, done func(any, error)) {
	e.nextID++
	id := e.nextID
	e.Issued++
	c := &call{done: done}
	if done != nil {
		e.pending[id] = c
		if e.Timeout > 0 {
			c.timer = e.eng.After(e.Timeout, func() {
				if _, still := e.pending[id]; still {
					delete(e.pending, id)
					done(nil, fmt.Errorf("%w: %s/%s on %s", ErrTimeout, in.Ext, in.Op, remote))
				}
			})
		}
	}
	e.out.Send(&netsim.Packet{
		Src:   e.addr,
		Dst:   remote,
		Bytes: reqBytes,
		Data:  &message{kind: kindRequest, id: id, from: e.addr, instr: in},
	}, nil)
}

// Deliver implements netsim.Port for packets arriving from the switch.
func (e *Endpoint) Deliver(p *netsim.Packet) {
	m, ok := p.Data.(*message)
	if !ok {
		return // not control-plane traffic for us
	}
	switch m.kind {
	case kindRequest:
		e.serve(m)
	case kindReply:
		c, ok := e.pending[m.id]
		if !ok {
			return // timed out or duplicate
		}
		delete(e.pending, m.id)
		c.timer.Cancel()
		if c.done == nil {
			return
		}
		if m.err != "" {
			c.done(nil, errors.New(m.err))
			return
		}
		c.done(m.reply, nil)
	}
}

func (e *Endpoint) serve(m *message) {
	e.eng.After(e.ProcessCost, func() {
		e.Served++
		reply := &message{kind: kindReply, id: m.id, from: e.addr}
		if e.vcm == nil {
			reply.err = "dvcmnet: endpoint " + e.addr + " hosts no VCM"
		} else if res, err := e.vcm.Invoke(m.instr); err != nil {
			reply.err = err.Error()
		} else {
			reply.reply = res
		}
		e.out.Send(&netsim.Packet{
			Src:   e.addr,
			Dst:   m.from,
			Bytes: respBytes,
			Data:  reply,
		}, nil)
	})
}

// Pending reports invocations awaiting replies.
func (e *Endpoint) Pending() int { return len(e.pending) }
