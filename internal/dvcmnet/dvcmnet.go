// Package dvcmnet distributes the VCM across cluster nodes: "a
// cluster-wide, programmable distributed virtual communication machine
// (DVCM) executes 'close' to the network, on the CoProcessors ... The
// cluster-wide services executed by this machine are available to nodes'
// application programs as communication instructions" (§2, Figure 2).
//
// An Endpoint attaches one node's VCM to the system-area switch under an
// address; Invoke sends an instruction to a remote endpoint as a
// control-plane packet and delivers the reply (or the remote error)
// asynchronously. Instruction processing on the remote side pays that
// card's NI CPU before replying, like any other DVCM extension work.
package dvcmnet

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ControlReqBytes/ControlRespBytes size the control packets on the wire
// (instruction header plus marshalled argument descriptor). Exported so
// other in-band control protocols — the fleet scrape plane derives its
// request and reply-header costs from these — stay consistent with the DVCM
// instruction format.
const (
	ControlReqBytes  = 128
	ControlRespBytes = 96
)

// Control-plane replication pricing. The primary DVCM controller journals
// every placement decision to its standby over the same control links the
// scrape plane rides, and ships a full-state checkpoint each poll period;
// these constants price that traffic so the journal overhead gate
// (journal bytes <= 2% of media goodput) measures something real.
const (
	// JournalEntryBytes is one write-ahead record: op tag, stream ID,
	// source/target card, migration sequence, DWCS (x,y) window, frame
	// cursor, stream epoch, leader epoch.
	JournalEntryBytes = 72
	// CkptHeaderBytes heads a full-state checkpoint: leader epoch, stream
	// count, violation-ledger totals. Doubles as the heartbeat the standby
	// watches for.
	CkptHeaderBytes = ControlRespBytes
	// CkptStreamBytes is one per-stream placement record inside a
	// checkpoint: stream ID, card, epoch, (x,y) window, frame cursor,
	// last-sighted violation/loss counters.
	CkptStreamBytes = 56
)

const (
	reqBytes  = ControlReqBytes
	respBytes = ControlRespBytes
)

// ErrTimeout reports a remote invocation that received no reply in time.
var ErrTimeout = errors.New("dvcmnet: invocation timed out")

type kind uint8

const (
	kindRequest kind = iota
	kindReply
)

type message struct {
	kind  kind
	id    uint32
	from  string
	instr core.Instr
	reply any
	err   string
}

// Endpoint is one node's presence in the distributed machine.
type Endpoint struct {
	eng  *sim.Engine
	addr string
	vcm  *core.VCM
	out  *netsim.Link // toward the switch

	// ProcessCost is the NI CPU charged per remote instruction before the
	// reply is sent (the extension runs on the card).
	ProcessCost sim.Time
	// Timeout bounds each Invoke attempt; 0 disables timeouts (reliable
	// SAN).
	Timeout sim.Time
	// MaxAttempts caps send attempts per Invoke (0 and 1 both mean a
	// single attempt). Retries reuse the original request ID so the remote
	// side can deduplicate re-executions.
	MaxAttempts int
	// Backoff delays the first retransmit; it doubles per further retry.
	// Zero retransmits immediately on timeout.
	Backoff sim.Time
	// Budget bounds the total elapsed time an Invoke may spend across all
	// attempts; 0 leaves only MaxAttempts as the limit.
	Budget sim.Time
	// Silent, when set and true, models a dark card: the endpoint drops
	// everything it would send or receive (crashed NI firmware does not
	// answer the SAN).
	Silent func() bool

	nextID  uint32
	pending map[uint32]*call
	seen    map[string]map[uint32]*served

	// Served counts remote instructions executed here; Issued counts
	// invocations sent from here; Retried counts request retransmits;
	// Deduped counts duplicate requests absorbed by the reply cache.
	Served  int64
	Issued  int64
	Retried int64
	Deduped int64
}

type call struct {
	done  func(any, error)
	timer sim.Event
}

// served is one entry in the duplicate-suppression cache: reply is nil
// while the instruction is still executing (a retransmit arriving then is
// absorbed; the in-flight execution's reply answers both).
type served struct {
	reply *message
}

// dedupWindow bounds the per-peer reply cache. IDs are monotone per peer,
// so anything further than the window behind the newest ID is pruned.
const dedupWindow = 128

// Attach joins the endpoint to the switch under addr. The VCM may be nil
// for pure-client endpoints.
func Attach(eng *sim.Engine, sw *netsim.Switch, addr string, vcm *core.VCM) *Endpoint {
	e := &Endpoint{
		eng:         eng,
		addr:        addr,
		vcm:         vcm,
		ProcessCost: 50 * sim.Microsecond,
		pending:     make(map[uint32]*call),
		seen:        make(map[string]map[uint32]*served),
	}
	e.out = netsim.Fast100(eng, addr+"-dvcm", sw)
	sw.Attach(addr, netsim.Fast100(eng, "sw-"+addr, e))
	return e
}

// Addr returns the endpoint's SAN address.
func (e *Endpoint) Addr() string { return e.addr }

// Instrument exports the endpoint's control-plane counters under the
// dvcmnet telemetry component.
func (e *Endpoint) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("dvcmnet", "instructions_served_total",
		"remote DVCM instructions executed here", func() int64 { return e.Served })
	reg.CounterFunc("dvcmnet", "invocations_issued_total",
		"DVCM invocations issued from here", func() int64 { return e.Issued })
	reg.CounterFunc("dvcmnet", "retries_total",
		"invocation retransmits", func() int64 { return e.Retried })
	reg.CounterFunc("dvcmnet", "deduped_total",
		"duplicate requests absorbed by the reply cache", func() int64 { return e.Deduped })
}

// Invoke executes an instruction on the remote endpoint, delivering the
// result (or error) to done. done may be nil for fire-and-forget control.
// With MaxAttempts > 1, each per-attempt Timeout triggers a retransmit
// after an exponentially doubling Backoff, reusing the same request ID so
// the remote reply cache absorbs duplicates; Budget caps the whole call.
func (e *Endpoint) Invoke(remote string, in core.Instr, done func(any, error)) {
	e.nextID++
	id := e.nextID
	e.Issued++
	if done == nil {
		e.sendRequest(remote, id, in)
		return
	}
	c := &call{done: done}
	e.pending[id] = c
	started := e.eng.Now()
	attempts := 1
	var arm func()
	arm = func() {
		if e.Timeout <= 0 {
			return
		}
		c.timer = e.eng.After(e.Timeout, func() {
			if _, still := e.pending[id]; !still {
				return // replied while the timer was in flight
			}
			max := e.MaxAttempts
			if max < 1 {
				max = 1
			}
			backoff := e.Backoff
			if backoff > 0 && attempts > 1 {
				backoff <<= uint(attempts - 1)
			}
			overBudget := e.Budget > 0 && e.eng.Now()+backoff-started >= e.Budget
			if attempts >= max || overBudget {
				delete(e.pending, id)
				done(nil, fmt.Errorf("%w: %s/%s on %s after %d attempt(s)",
					ErrTimeout, in.Ext, in.Op, remote, attempts))
				return
			}
			attempts++
			e.Retried++
			e.eng.After(backoff, func() {
				if _, still := e.pending[id]; !still {
					return // a late reply landed during the backoff
				}
				e.sendRequest(remote, id, in)
				arm()
			})
		})
	}
	arm()
	e.sendRequest(remote, id, in)
}

func (e *Endpoint) sendRequest(remote string, id uint32, in core.Instr) {
	if e.Silent != nil && e.Silent() {
		return // dark card: the request never reaches the wire
	}
	e.out.Send(&netsim.Packet{
		Src:   e.addr,
		Dst:   remote,
		Bytes: reqBytes,
		Data:  &message{kind: kindRequest, id: id, from: e.addr, instr: in},
	}, nil)
}

// Deliver implements netsim.Port for packets arriving from the switch.
func (e *Endpoint) Deliver(p *netsim.Packet) {
	m, ok := p.Data.(*message)
	if !ok {
		return // not control-plane traffic for us
	}
	if e.Silent != nil && e.Silent() {
		return // dark card: inbound control traffic is lost
	}
	switch m.kind {
	case kindRequest:
		e.serve(m)
	case kindReply:
		c, ok := e.pending[m.id]
		if !ok {
			return // timed out or duplicate
		}
		delete(e.pending, m.id)
		c.timer.Cancel()
		if c.done == nil {
			return
		}
		if m.err != "" {
			c.done(nil, reviveError(m.err))
			return
		}
		c.done(m.reply, nil)
	}
}

// reviveError reconstructs well-known typed errors from a reply's message
// text. Errors cross the wire as strings (only the text is marshalled), so
// without revival a remote overload admission reject loses its identity and
// callers can't errors.Is it against overload.ErrAdmission.
func reviveError(msg string) error {
	if strings.Contains(msg, overload.ErrAdmission.Error()) {
		return fmt.Errorf("%w (remote: %s)", overload.ErrAdmission, msg)
	}
	return errors.New(msg)
}

func (e *Endpoint) serve(m *message) {
	peer := e.seen[m.from]
	if peer == nil {
		peer = make(map[uint32]*served)
		e.seen[m.from] = peer
	}
	if s, ok := peer[m.id]; ok {
		// Retransmit of a request we already have. If the execution
		// finished, replay the cached reply (the instruction must not run
		// twice); if it is still in flight, its reply will answer both.
		e.Deduped++
		if s.reply != nil {
			e.sendReply(m.from, s.reply)
		}
		return
	}
	s := &served{}
	peer[m.id] = s
	if len(peer) > 2*dedupWindow {
		for k := range peer {
			if k+dedupWindow < m.id {
				delete(peer, k)
			}
		}
	}
	e.eng.After(e.ProcessCost, func() {
		if e.Silent != nil && e.Silent() {
			return // the card went dark mid-execution: no reply
		}
		e.Served++
		reply := &message{kind: kindReply, id: m.id, from: e.addr}
		if e.vcm == nil {
			reply.err = "dvcmnet: endpoint " + e.addr + " hosts no VCM"
		} else if res, err := e.vcm.Invoke(m.instr); err != nil {
			reply.err = err.Error()
		} else {
			reply.reply = res
		}
		s.reply = reply
		e.sendReply(m.from, reply)
	})
}

func (e *Endpoint) sendReply(to string, reply *message) {
	e.out.Send(&netsim.Packet{
		Src:   e.addr,
		Dst:   to,
		Bytes: respBytes,
		Data:  reply,
	}, nil)
}

// Pending reports invocations awaiting replies.
func (e *Endpoint) Pending() int { return len(e.pending) }
