package dvcmnet

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// echoExt is a toy remote extension.
type echoExt struct{}

func (echoExt) Name() string           { return "echo" }
func (echoExt) Attach(*core.VCM) error { return nil }
func (echoExt) Invoke(op string, arg any) (any, error) {
	if op != "echo" {
		return nil, core.ErrBadOp
	}
	return arg, nil
}

func twoNodes(t *testing.T) (*sim.Engine, *Endpoint, *Endpoint) {
	t.Helper()
	eng := sim.NewEngine(5)
	sw := netsim.NewSwitch(eng, "san", 90*sim.Microsecond)
	vcmB := core.NewVCM("node-b")
	if err := vcmB.Register(echoExt{}); err != nil {
		t.Fatal(err)
	}
	a := Attach(eng, sw, "node-a", nil) // client-only
	b := Attach(eng, sw, "node-b", vcmB)
	return eng, a, b
}

func TestRemoteInvocation(t *testing.T) {
	eng, a, b := twoNodes(t)
	var got any
	var doneAt sim.Time
	a.Invoke("node-b", core.Instr{Ext: "echo", Op: "echo", Arg: 42}, func(res any, err error) {
		if err != nil {
			t.Errorf("remote error: %v", err)
		}
		got = res
		doneAt = eng.Now()
	})
	eng.Run()
	if got != 42 {
		t.Fatalf("reply = %v", got)
	}
	// The round trip costs real network + processing time.
	if doneAt < 200*sim.Microsecond {
		t.Fatalf("round trip %v implausibly fast", doneAt)
	}
	if a.Issued != 1 || b.Served != 1 || a.Pending() != 0 {
		t.Fatalf("issued=%d served=%d pending=%d", a.Issued, b.Served, a.Pending())
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	eng, a, _ := twoNodes(t)
	var gotErr error
	a.Invoke("node-b", core.Instr{Ext: "missing"}, func(_ any, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "no such extension") {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestNoVCMEndpointError(t *testing.T) {
	eng := sim.NewEngine(6)
	sw := netsim.NewSwitch(eng, "san", 10*sim.Microsecond)
	a := Attach(eng, sw, "a", nil)
	Attach(eng, sw, "b", nil) // also no VCM
	var gotErr error
	a.Invoke("b", core.Instr{Ext: "echo"}, func(_ any, err error) { gotErr = err })
	eng.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "hosts no VCM") {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestTimeoutOnSilentRemote(t *testing.T) {
	eng := sim.NewEngine(6)
	sw := netsim.NewSwitch(eng, "san", 10*sim.Microsecond)
	a := Attach(eng, sw, "a", nil)
	a.Timeout = 5 * sim.Millisecond
	var gotErr error
	a.Invoke("ghost", core.Instr{Ext: "echo"}, func(_ any, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
	if a.Pending() != 0 {
		t.Fatal("timed-out call left pending")
	}
}

func TestConcurrentInvocationsMatchReplies(t *testing.T) {
	eng, a, _ := twoNodes(t)
	const n = 50
	got := make(map[int]bool)
	for i := 0; i < n; i++ {
		i := i
		a.Invoke("node-b", core.Instr{Ext: "echo", Op: "echo", Arg: i}, func(res any, err error) {
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if res != i {
				t.Errorf("call %d got reply %v", i, res)
			}
			got[i] = true
		})
	}
	eng.Run()
	if len(got) != n {
		t.Fatalf("completed %d of %d", len(got), n)
	}
}

// The cluster-wide story: a host application on node A drives the media
// scheduler running on node B's NI entirely through remote DVCM
// instructions.
func TestRemoteMediaSchedulerControl(t *testing.T) {
	eng := sim.NewEngine(8)
	sw := netsim.NewSwitch(eng, "san", 90*sim.Microsecond)
	client := netsim.NewClient(eng, "player")
	sw.Attach("player", netsim.Fast100(eng, "sw-player", client))

	pci := bus.New(eng, bus.PCI("b-pci0"))
	card := nic.New(eng, nic.Config{Name: "b-ni", PCI: pci, CacheOn: true})
	card.ConnectEthernet(netsim.Fast100(eng, "b-ni-eth", sw))
	ext, err := card.LoadScheduler(nic.SchedulerConfig{WorkConserving: true})
	if err != nil {
		t.Fatal(err)
	}

	Attach(eng, sw, "node-b", card.VCM)
	appA := Attach(eng, sw, "node-a", nil)

	appA.Invoke("node-b", core.Instr{Ext: "dwcs", Op: "addStream", Arg: dwcs.StreamSpec{
		ID: 1, Name: "remote", Period: 10 * sim.Millisecond,
		Loss: fixed.New(1, 2), Lossy: true, BufCap: 16,
	}}, func(_ any, err error) {
		if err != nil {
			t.Errorf("remote addStream: %v", err)
		}
	})
	for i := 0; i < 5; i++ {
		appA.Invoke("node-b", core.Instr{Ext: "dwcs", Op: "enqueue", Arg: nic.EnqueueArgs{
			StreamID: 1, Packet: dwcs.Packet{Bytes: 900, Payload: nic.AddrPayload("player")},
		}}, nil)
	}
	eng.RunUntil(sim.Second)
	if ext.Sent != 5 {
		t.Fatalf("remote-driven scheduler sent %d of 5", ext.Sent)
	}
	if client.Received != 5 {
		t.Fatalf("player received %d of 5", client.Received)
	}
	var stats dwcs.StreamStats
	appA.Invoke("node-b", core.Instr{Ext: "dwcs", Op: "stats", Arg: 1},
		func(res any, err error) {
			if err == nil {
				stats = res.(dwcs.StreamStats)
			}
		})
	eng.Run()
	if stats.Serviced != 5 {
		t.Fatalf("remote stats = %+v", stats)
	}
}
