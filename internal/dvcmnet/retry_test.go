package dvcmnet

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// countExt counts executions — the probe for at-most-once semantics.
type countExt struct{ calls int }

func (*countExt) Name() string           { return "count" }
func (*countExt) Attach(*core.VCM) error { return nil }
func (c *countExt) Invoke(op string, arg any) (any, error) {
	c.calls++
	return c.calls, nil
}

func countingNodes(t *testing.T) (*sim.Engine, *Endpoint, *Endpoint, *countExt) {
	t.Helper()
	eng := sim.NewEngine(5)
	sw := netsim.NewSwitch(eng, "san", 90*sim.Microsecond)
	vcm := core.NewVCM("node-b")
	ext := &countExt{}
	if err := vcm.Register(ext); err != nil {
		t.Fatal(err)
	}
	a := Attach(eng, sw, "node-a", nil)
	b := Attach(eng, sw, "node-b", vcm)
	return eng, a, b, ext
}

// TestLateReplyAfterTimeoutIsNoOp: the remote is slower than the caller's
// timeout. The caller must fail exactly once; the reply that eventually
// arrives finds no pending call and is dropped.
func TestLateReplyAfterTimeoutIsNoOp(t *testing.T) {
	eng, a, b, ext := countingNodes(t)
	b.ProcessCost = 10 * sim.Millisecond
	a.Timeout = sim.Millisecond
	calls := 0
	var gotErr error
	a.Invoke("node-b", core.Instr{Ext: "count", Op: "x"}, func(_ any, err error) {
		calls++
		gotErr = err
	})
	eng.Run()
	if calls != 1 {
		t.Fatalf("done callback ran %d times", calls)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
	if a.Pending() != 0 {
		t.Fatal("timed-out call left pending")
	}
	if ext.calls != 1 || b.Served != 1 {
		t.Fatalf("remote executed %d times, served=%d", ext.calls, b.Served)
	}
}

// TestDuplicateReplyIsNoOp: a retransmit racing the first (undropped)
// reply produces a second, cached reply on the wire. The first completes
// the call; the duplicate must be ignored, and the instruction must have
// executed exactly once.
func TestDuplicateReplyIsNoOp(t *testing.T) {
	eng, a, b, ext := countingNodes(t)
	a.Timeout = 150 * sim.Microsecond // below the ~300 µs round trip
	a.MaxAttempts = 2
	calls := 0
	a.Invoke("node-b", core.Instr{Ext: "count", Op: "x"}, func(_ any, err error) {
		calls++
		if err != nil {
			t.Errorf("call failed: %v", err)
		}
	})
	eng.Run()
	if calls != 1 {
		t.Fatalf("done callback ran %d times", calls)
	}
	if a.Retried != 1 {
		t.Fatalf("retried = %d, want the one premature retransmit", a.Retried)
	}
	if ext.calls != 1 {
		t.Fatalf("instruction executed %d times under a duplicate request", ext.calls)
	}
	if b.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", b.Deduped)
	}
	if a.Pending() != 0 {
		t.Fatal("completed call left pending")
	}
}

// TestRetryRidesOutOutage: the remote card is dark for 3 ms; exponential
// backoff keeps retransmitting with the same ID until it answers.
func TestRetryRidesOutOutage(t *testing.T) {
	eng, a, b, ext := countingNodes(t)
	down := true
	b.Silent = func() bool { return down }
	eng.At(3*sim.Millisecond, func() { down = false })
	a.Timeout = sim.Millisecond
	a.MaxAttempts = 8
	a.Backoff = sim.Millisecond
	var got any
	var gotErr error
	a.Invoke("node-b", core.Instr{Ext: "count", Op: "x"}, func(res any, err error) {
		got, gotErr = res, err
	})
	eng.Run()
	if gotErr != nil {
		t.Fatalf("call failed across a 3 ms outage: %v", gotErr)
	}
	if got != 1 || ext.calls != 1 {
		t.Fatalf("reply=%v calls=%d, want exactly one execution", got, ext.calls)
	}
	if a.Retried == 0 {
		t.Fatal("no retransmits across the outage")
	}
}

// TestBudgetBoundsRetries: with a generous attempt cap but a tight call
// budget, the invocation gives up once the next backoff would land past
// the budget — it must not retry forever against a dead address.
func TestBudgetBoundsRetries(t *testing.T) {
	eng := sim.NewEngine(6)
	sw := netsim.NewSwitch(eng, "san", 10*sim.Microsecond)
	a := Attach(eng, sw, "a", nil)
	a.Timeout = sim.Millisecond
	a.MaxAttempts = 100
	a.Backoff = sim.Millisecond
	a.Budget = 5 * sim.Millisecond
	var gotErr error
	var failedAt sim.Time
	a.Invoke("ghost", core.Instr{Ext: "count"}, func(_ any, err error) {
		gotErr, failedAt = err, eng.Now()
	})
	eng.Run()
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
	if failedAt > 6*sim.Millisecond {
		t.Fatalf("gave up at %v with a 5 ms budget", failedAt)
	}
	if a.Retried > 4 {
		t.Fatalf("retried %d times inside a 5 ms budget", a.Retried)
	}
	if a.Pending() != 0 {
		t.Fatal("failed call left pending")
	}
}

// TestInFlightRetransmitsAbsorbed: retransmits arriving while the first
// execution is still running are absorbed by the dedup cache — one
// execution, one reply, a successful call.
func TestInFlightRetransmitsAbsorbed(t *testing.T) {
	eng, a, b, ext := countingNodes(t)
	b.ProcessCost = 5 * sim.Millisecond
	a.Timeout = 2 * sim.Millisecond
	a.MaxAttempts = 5
	var gotErr error
	a.Invoke("node-b", core.Instr{Ext: "count", Op: "x"}, func(_ any, err error) {
		gotErr = err
	})
	eng.Run()
	if gotErr != nil {
		t.Fatalf("call failed: %v", gotErr)
	}
	if ext.calls != 1 {
		t.Fatalf("instruction executed %d times", ext.calls)
	}
	if b.Deduped != 2 {
		t.Fatalf("deduped = %d, want both retransmits absorbed in flight", b.Deduped)
	}
}
