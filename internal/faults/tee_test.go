package faults

import (
	"testing"

	"repro/internal/sim"
)

func TestTeeObservesBeforeInnerInjector(t *testing.T) {
	var order []string
	inner := InjectorFuncs{
		OnInject:  func(e Event) { order = append(order, "inject:"+e.Target) },
		OnRecover: func(e Event) { order = append(order, "recover:"+e.Target) },
	}
	tapped := Tee(inner, func(e Event, recover bool) {
		if recover {
			order = append(order, "tap-recover:"+e.Target)
		} else {
			order = append(order, "tap-inject:"+e.Target)
		}
	})

	eng := sim.NewEngine(1)
	p := &Plan{Events: []Event{{At: sim.Second, Duration: sim.Second,
		Kind: CardCrash, Target: "c0"}}}
	if err := p.Arm(eng, tapped, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	want := []string{"tap-inject:c0", "inject:c0", "tap-recover:c0", "recover:c0"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestTeeNilFnReturnsInner(t *testing.T) {
	inner := InjectorFuncs{}
	if _, wrapped := Tee(inner, nil).(tee); wrapped {
		t.Fatal("Tee(inj, nil) should return inj unchanged, not wrap it")
	}
}
