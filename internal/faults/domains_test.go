package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestCorrelatedKindValidation(t *testing.T) {
	for _, kind := range []Kind{HostCrash, NetPartition, RollingDrain} {
		ok := &Plan{Events: []Event{{
			At: sim.Second, Duration: 2 * sim.Second, Kind: kind, Target: "host0",
		}}}
		if err := ok.Validate(); err != nil {
			t.Fatalf("valid %v rejected: %v", kind, err)
		}
		noDur := &Plan{Events: []Event{{At: sim.Second, Kind: kind, Target: "host0"}}}
		if err := noDur.Validate(); err == nil {
			t.Fatalf("%v without a duration validated", kind)
		}
	}
}

func TestCorrelatedKindsNeedDomainTargets(t *testing.T) {
	spec := genSpec()
	spec.Counts[HostCrash] = 1
	if _, err := Generate(7, spec); err == nil {
		t.Fatal("host-crash drew with no Hosts declared")
	}
	spec.Counts[HostCrash] = 0
	spec.Counts[NetPartition] = 1
	if _, err := Generate(7, spec); err == nil {
		t.Fatal("net-partition drew with no Switches declared")
	}
}

// TestCorrelatedKindsComposeWithoutDisturbingOtherKinds pins the generator's
// append-at-the-end RNG discipline for the correlated kinds: layering
// host-crash / net-partition / rolling-drain onto an existing (seed, spec)
// plan must reproduce every pre-existing event byte-for-byte.
func TestCorrelatedKindsComposeWithoutDisturbingOtherKinds(t *testing.T) {
	without, err := Generate(99, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := genSpec()
	spec.Hosts = []string{"host0", "host1"}
	spec.Switches = []string{"sw0"}
	spec.Counts[HostCrash] = 1
	spec.Counts[NetPartition] = 1
	spec.Counts[RollingDrain] = 2
	with, err := Generate(99, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Events) != len(without.Events)+4 {
		t.Fatalf("event counts: %d with vs %d without", len(with.Events), len(without.Events))
	}
	counts := map[Kind]int{}
	var rest []Event
	for _, e := range with.Events {
		switch e.Kind {
		case HostCrash, RollingDrain:
			counts[e.Kind]++
			if e.Target != "host0" && e.Target != "host1" {
				t.Fatalf("%v targeted %q, want a host", e.Kind, e.Target)
			}
			if e.Duration <= 0 {
				t.Fatalf("%v drew without a duration", e.Kind)
			}
		case NetPartition:
			counts[e.Kind]++
			if e.Target != "sw0" {
				t.Fatalf("net-partition targeted %q, want a switch", e.Target)
			}
		default:
			rest = append(rest, e)
		}
	}
	if counts[HostCrash] != 1 || counts[NetPartition] != 1 || counts[RollingDrain] != 2 {
		t.Fatalf("drew %v, want 1/1/2", counts)
	}
	if !reflect.DeepEqual(rest, without.Events) {
		t.Fatalf("adding correlated kinds disturbed the other kinds:\n%s\nvs\n%s", with, without)
	}
}

func TestCorrelatedKindStrings(t *testing.T) {
	for kind, want := range map[Kind]string{
		HostCrash: "host-crash", NetPartition: "net-partition", RollingDrain: "rolling-drain",
	} {
		if got := kind.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}
