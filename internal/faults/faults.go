// Package faults is the deterministic fault-injection subsystem: a seeded,
// schedulable chaos plan for the reproduction's hardware substrate. The
// paper's headline result is that the NI-resident scheduler is immune to
// *host load* (Figures 6–10); this package extends that robustness story to
// *faults* — NI card crashes with delayed resets, SAN link outages and
// loss bursts, disk stalls, and RTOS task hangs — so the recovery machinery
// (rtos watchdogs, cluster heartbeat failover, dvcmnet retries, host
// fallback scheduling) can be exercised under a reproducible schedule.
//
// A Plan is a time-ordered list of Events, either hand-written or generated
// from a seed by Generate. Arm schedules the plan on a sim.Engine against an
// Injector, which maps each event onto the concrete testbed (crash this
// card, darken that link). The same seed and spec always produce the same
// plan, and the same plan armed on the same testbed always replays the same
// run — chaos here is an input, never a source of nondeterminism.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault kinds.
const (
	// CardCrash halts an NI card's kernel (firmware wedge / hardware
	// fault); recovery is a card reset, typically initiated by a watchdog
	// after the event's Duration.
	CardCrash Kind = iota
	// LinkDown takes a SAN link completely dark for Duration.
	LinkDown
	// LossBurst drops every Factor-th packet on a link for Duration.
	LossBurst
	// DiskStall multiplies a disk's access time by Factor for Duration
	// (layered on the existing disk.Degrade mechanism).
	DiskStall
	// TaskHang runs a runaway highest-priority task on a card's kernel for
	// Duration, starving every other task (priority-inversion hang).
	TaskHang
	// MemLeak gradually erodes an NI card's overload memory budget: Factor
	// KB leak per second for Duration, reclaimed in full on recovery.
	// Appended after TaskHang so plans generated before the kind existed
	// keep their exact RNG consumption schedule.
	MemLeak
	// HostCrash is a correlated failure: the host machine dies and takes
	// every NI card on its PCI bus with it. Target names the host domain;
	// the injector resolves member cards through the cluster topology.
	// Recovery is the host (and its cards) coming back after Duration.
	HostCrash
	// NetPartition severs a declared set of inter-partition channels for
	// Duration — a switch failure isolating whole card groups. Target
	// names the switch domain.
	NetPartition
	// RollingDrain is planned maintenance: the target host's cards are
	// drained (streams migrated off live, no heartbeat alarm) and the host
	// returns after Duration. Drain is not death — the monitor must treat
	// it as such.
	RollingDrain
	// ControllerCrash kills a DVCM controller replica outright for
	// Duration: its poll/migration/journal traffic stops, inbound messages
	// are dropped, and its in-flight job queue is wiped. Target names the
	// replica ("ctl-a", "ctl-b"). Appended after RollingDrain to keep the
	// generation RNG schedule stable.
	ControllerCrash
	// ControllerPartition isolates a controller replica from its peer for
	// Duration — the split-brain fault. Only the controller↔controller
	// links are severed; both replicas can still reach every card, which is
	// exactly the scenario leader-epoch fencing exists for. Target names
	// either replica; the pair link is symmetric.
	ControllerPartition

	// kindEnd is a sentinel one past the last defined kind, for
	// exhaustiveness tests (every kind must have a String name and a slot
	// in Generate's fixed draw order). Keep it last.
	kindEnd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CardCrash:
		return "card-crash"
	case LinkDown:
		return "link-down"
	case LossBurst:
		return "loss-burst"
	case DiskStall:
		return "disk-stall"
	case TaskHang:
		return "task-hang"
	case MemLeak:
		return "mem-leak"
	case HostCrash:
		return "host-crash"
	case NetPartition:
		return "net-partition"
	case RollingDrain:
		return "rolling-drain"
	case ControllerCrash:
		return "ctrl-crash"
	case ControllerPartition:
		return "ctrl-partition"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault: it strikes Target at At and — for kinds with
// a recovery action — clears at At+Duration.
type Event struct {
	At       sim.Time
	Duration sim.Time
	Kind     Kind
	Target   string // card, link, or disk name the injector resolves
	Factor   int64  // LossBurst: drop every k-th; DiskStall: slowdown ×k
}

// String renders the event for plan listings and reports.
func (e Event) String() string {
	s := fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Target)
	if e.Duration > 0 {
		s += fmt.Sprintf(" for %v", e.Duration)
	}
	if e.Factor > 1 {
		s += fmt.Sprintf(" ×%d", e.Factor)
	}
	return s
}

// Injector maps plan events onto a concrete testbed. Inject fires at
// e.At; Recover fires at e.At+e.Duration for events with Duration > 0.
// CardCrash recovery is the *reset completing* — an injector whose cards
// recover through a watchdog instead should ignore Recover for that kind.
type Injector interface {
	Inject(e Event)
	Recover(e Event)
}

// InjectorFuncs adapts two functions to Injector; either may be nil.
type InjectorFuncs struct {
	OnInject  func(e Event)
	OnRecover func(e Event)
}

// Inject implements Injector.
func (f InjectorFuncs) Inject(e Event) {
	if f.OnInject != nil {
		f.OnInject(e)
	}
}

// Recover implements Injector.
func (f InjectorFuncs) Recover(e Event) {
	if f.OnRecover != nil {
		f.OnRecover(e)
	}
}

// tee forwards to an inner injector and mirrors every event to fn.
type tee struct {
	inner Injector
	fn    func(e Event, recover bool)
}

func (t tee) Inject(e Event) {
	t.fn(e, false)
	t.inner.Inject(e)
}

func (t tee) Recover(e Event) {
	t.fn(e, true)
	t.inner.Recover(e)
}

// Tee wraps inj so fn also observes every injection (recover=false) and
// recovery (recover=true), before the inner injector acts — the flight
// recorder's tap on the chaos schedule, so the incident ring shows the
// fault that is about to strike.
func Tee(inj Injector, fn func(e Event, recover bool)) Injector {
	if fn == nil {
		return inj
	}
	return tee{inner: inj, fn: fn}
}

// Plan is a deterministic chaos schedule. The zero value is an empty plan
// (no faults); experiments treat chaos as strictly opt-in.
type Plan struct {
	Seed   int64 // seed the plan was generated from (0 for hand-written)
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate checks event sanity: non-negative times, targets present, and
// factors meaningful for the kinds that use them.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.At < 0 || e.Duration < 0 {
			return fmt.Errorf("faults: event %d: negative time (%v/%v)", i, e.At, e.Duration)
		}
		if e.Target == "" {
			return fmt.Errorf("faults: event %d: empty target", i)
		}
		switch e.Kind {
		case LossBurst:
			if e.Factor < 1 {
				return fmt.Errorf("faults: event %d: loss-burst factor %d", i, e.Factor)
			}
		case DiskStall:
			if e.Factor < 2 {
				return fmt.Errorf("faults: event %d: disk-stall factor %d", i, e.Factor)
			}
		case MemLeak:
			if e.Factor < 1 {
				return fmt.Errorf("faults: event %d: mem-leak factor %d", i, e.Factor)
			}
			if e.Duration <= 0 {
				return fmt.Errorf("faults: event %d: mem-leak needs a duration", i)
			}
		case HostCrash, NetPartition, RollingDrain, ControllerCrash, ControllerPartition:
			// Correlated and control-plane faults without an end are a dead
			// fleet, not chaos: recovery behavior is the thing under test,
			// so a window is mandatory.
			if e.Duration <= 0 {
				return fmt.Errorf("faults: event %d: %v needs a duration", i, e.Kind)
			}
		}
	}
	return nil
}

// Sort orders events by (At, Kind, Target) so hand-assembled plans arm in a
// deterministic order regardless of construction order.
func (p *Plan) Sort() {
	sort.SliceStable(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
}

// String lists the plan one event per line.
func (p *Plan) String() string {
	if p.Empty() {
		return "faults: empty plan\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "faults: plan seed=%d, %d event(s)\n", p.Seed, len(p.Events))
	for _, e := range p.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Record is one injection or recovery that actually fired, for reports.
type Record struct {
	At      sim.Time
	Event   Event
	Recover bool
}

// Log collects fired records in schedule order.
type Log struct {
	Records []Record
}

// String renders the log.
func (l *Log) String() string {
	var b strings.Builder
	for _, r := range l.Records {
		verb := "inject"
		if r.Recover {
			verb = "recover"
		}
		fmt.Fprintf(&b, "  %v %s %s %s\n", r.At, verb, r.Event.Kind, r.Event.Target)
	}
	return b.String()
}

// Arm validates the plan and schedules every event on eng against inj.
// The optional log (may be nil) records each injection and recovery as it
// fires. Events already in the past panic via sim.Engine, like any other
// mis-scheduled callback.
func (p *Plan) Arm(eng *sim.Engine, inj Injector, log *Log) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, e := range p.Events {
		e := e
		eng.At(e.At, func() {
			if log != nil {
				log.Records = append(log.Records, Record{At: eng.Now(), Event: e})
			}
			inj.Inject(e)
		})
		if e.Duration > 0 {
			eng.At(e.At+e.Duration, func() {
				if log != nil {
					log.Records = append(log.Records, Record{At: eng.Now(), Event: e, Recover: true})
				}
				inj.Recover(e)
			})
		}
	}
	return nil
}

// Spec bounds plan generation: how many faults of each kind to draw, over
// which targets, inside [Start, Start+Span). Durations and factors are drawn
// uniformly from the given ranges by the plan's own seeded RNG.
type Spec struct {
	Start, Span sim.Time

	Cards       []string // CardCrash / TaskHang targets
	Links       []string // LinkDown / LossBurst targets
	Disks       []string // DiskStall targets
	Hosts       []string // HostCrash / RollingDrain targets (host domains)
	Switches    []string // NetPartition targets (switch domains)
	Controllers []string // ControllerCrash / ControllerPartition targets (replicas)
	Counts      map[Kind]int

	MinDuration, MaxDuration sim.Time
	MinFactor, MaxFactor     int64
}

// Generate draws a reproducible plan from seed under spec. The same (seed,
// spec) always yields the identical plan; the engine's RNG is untouched.
func Generate(seed int64, spec Spec) (*Plan, error) {
	if spec.Span <= 0 {
		return nil, fmt.Errorf("faults: generation span must be positive")
	}
	if spec.MinDuration <= 0 {
		spec.MinDuration = sim.Second
	}
	if spec.MaxDuration < spec.MinDuration {
		spec.MaxDuration = spec.MinDuration
	}
	if spec.MinFactor < 2 {
		spec.MinFactor = 2
	}
	if spec.MaxFactor < spec.MinFactor {
		spec.MaxFactor = spec.MinFactor
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	draw := func(kind Kind, targets []string, n int) error {
		if n == 0 {
			return nil
		}
		if len(targets) == 0 {
			return fmt.Errorf("faults: %v requested with no targets", kind)
		}
		for i := 0; i < n; i++ {
			at := spec.Start + sim.Time(rng.Int63n(int64(spec.Span)))
			dur := spec.MinDuration
			if spec.MaxDuration > spec.MinDuration {
				dur += sim.Time(rng.Int63n(int64(spec.MaxDuration - spec.MinDuration)))
			}
			factor := spec.MinFactor
			if spec.MaxFactor > spec.MinFactor {
				factor += rng.Int63n(spec.MaxFactor - spec.MinFactor)
			}
			p.Events = append(p.Events, Event{
				At: at, Duration: dur, Kind: kind,
				Target: targets[rng.Intn(len(targets))], Factor: factor,
			})
		}
		return nil
	}
	// Fixed kind order keeps the RNG consumption schedule stable; new kinds
	// append at the end so pre-existing (seed, spec) plans are byte-stable.
	for _, kind := range []Kind{CardCrash, LinkDown, LossBurst, DiskStall, TaskHang, MemLeak,
		HostCrash, NetPartition, RollingDrain, ControllerCrash, ControllerPartition} {
		var targets []string
		switch kind {
		case CardCrash, TaskHang, MemLeak:
			targets = spec.Cards
		case LinkDown, LossBurst:
			targets = spec.Links
		case DiskStall:
			targets = spec.Disks
		case HostCrash, RollingDrain:
			targets = spec.Hosts
		case NetPartition:
			targets = spec.Switches
		case ControllerCrash, ControllerPartition:
			targets = spec.Controllers
		}
		if err := draw(kind, targets, spec.Counts[kind]); err != nil {
			return nil, err
		}
	}
	p.Sort()
	return p, p.Validate()
}
