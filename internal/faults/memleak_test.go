package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestMemLeakValidation(t *testing.T) {
	base := Event{At: sim.Second, Kind: MemLeak, Target: "ni0", Factor: 4, Duration: 2 * sim.Second}
	ok := &Plan{Events: []Event{base}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid mem-leak rejected: %v", err)
	}
	noFactor := base
	noFactor.Factor = 0
	if err := (&Plan{Events: []Event{noFactor}}).Validate(); err == nil {
		t.Fatal("mem-leak with factor 0 validated")
	}
	noDur := base
	noDur.Duration = 0
	if err := (&Plan{Events: []Event{noDur}}).Validate(); err == nil {
		t.Fatal("mem-leak without a duration validated")
	}
}

// TestMemLeakComposesWithoutDisturbingOtherKinds pins the generator's
// append-at-the-end RNG discipline: asking for a mem-leak on top of an
// existing (seed, spec) plan must reproduce the crash/stall/outage events
// byte-for-byte, so pre-existing chaos runs stay replayable.
func TestMemLeakComposesWithoutDisturbingOtherKinds(t *testing.T) {
	without, err := Generate(99, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := genSpec()
	spec.Counts[MemLeak] = 2
	with, err := Generate(99, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Events) != len(without.Events)+2 {
		t.Fatalf("event counts: %d with vs %d without", len(with.Events), len(without.Events))
	}
	var rest []Event
	leaks := 0
	for _, e := range with.Events {
		if e.Kind == MemLeak {
			leaks++
			if e.Target != "ni0" && e.Target != "ni1" {
				t.Fatalf("mem-leak targeted %q, want a card", e.Target)
			}
			continue
		}
		rest = append(rest, e)
	}
	if leaks != 2 {
		t.Fatalf("drew %d mem-leaks, want 2", leaks)
	}
	if !reflect.DeepEqual(rest, without.Events) {
		t.Fatalf("adding mem-leaks disturbed the other kinds:\n%s\nvs\n%s", with, without)
	}
}

func TestMemLeakArmsInjectAndRecover(t *testing.T) {
	eng := sim.NewEngine(1)
	p := &Plan{Events: []Event{{
		At: sim.Second, Duration: 2 * sim.Second, Kind: MemLeak, Target: "ni0", Factor: 8,
	}}}
	var injected, recovered sim.Time
	err := p.Arm(eng, InjectorFuncs{
		OnInject:  func(e Event) { injected = eng.Now() },
		OnRecover: func(e Event) { recovered = eng.Now() },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if injected != sim.Second || recovered != 3*sim.Second {
		t.Fatalf("inject at %v, recover at %v; want 1s and 3s", injected, recovered)
	}
}
