package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func genSpec() Spec {
	return Spec{
		Start: sim.Second, Span: 60 * sim.Second,
		Cards: []string{"ni0", "ni1"},
		Links: []string{"san-a", "san-b"},
		Disks: []string{"d0"},
		Counts: map[Kind]int{
			CardCrash: 1, LinkDown: 2, LossBurst: 2, DiskStall: 1, TaskHang: 1,
		},
		MinDuration: sim.Second, MaxDuration: 10 * sim.Second,
		MinFactor: 2, MaxFactor: 8,
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate(99, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(99, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", a, b)
	}
	if len(a.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(a.Events))
	}
	c, err := Generate(100, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestGenerateValidatesTargets(t *testing.T) {
	spec := genSpec()
	spec.Disks = nil
	if _, err := Generate(1, spec); err == nil {
		t.Fatal("disk-stall with no disks should fail")
	}
	spec = genSpec()
	spec.Span = 0
	if _, err := Generate(1, spec); err == nil {
		t.Fatal("zero span should fail")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Plan{
		{Events: []Event{{At: -1, Kind: LinkDown, Target: "l"}}},
		{Events: []Event{{At: 1, Kind: LinkDown}}},
		{Events: []Event{{At: 1, Kind: LossBurst, Target: "l", Factor: 0}}},
		{Events: []Event{{At: 1, Kind: DiskStall, Target: "d", Factor: 1}}},
	}
	for i := range cases {
		if err := cases[i].Validate(); err == nil {
			t.Errorf("case %d: bad plan validated", i)
		}
	}
}

func TestArmFiresInjectAndRecoverInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	p := &Plan{Events: []Event{
		{At: 2 * sim.Second, Duration: 3 * sim.Second, Kind: LinkDown, Target: "san"},
		{At: sim.Second, Kind: CardCrash, Target: "ni0"},
	}}
	p.Sort()
	if p.Events[0].Kind != CardCrash {
		t.Fatal("Sort did not order by time")
	}
	var log Log
	var seq []string
	inj := InjectorFuncs{
		OnInject:  func(e Event) { seq = append(seq, "inject "+e.Target) },
		OnRecover: func(e Event) { seq = append(seq, "recover "+e.Target) },
	}
	if err := p.Arm(eng, inj, &log); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []string{"inject ni0", "inject san", "recover san"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("sequence = %v, want %v", seq, want)
	}
	if len(log.Records) != 3 || !log.Records[2].Recover {
		t.Fatalf("log = %+v", log.Records)
	}
	if log.Records[2].At != 5*sim.Second {
		t.Fatalf("recovery at %v, want 5s", log.Records[2].At)
	}
}

func TestEmptyPlanIsNoOp(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Fatal("nil plan should be empty")
	}
	eng := sim.NewEngine(1)
	q := &Plan{}
	if err := q.Arm(eng, InjectorFuncs{}, nil); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Fatal("empty plan scheduled events")
	}
}
