package faults

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func genSpec() Spec {
	return Spec{
		Start: sim.Second, Span: 60 * sim.Second,
		Cards: []string{"ni0", "ni1"},
		Links: []string{"san-a", "san-b"},
		Disks: []string{"d0"},
		Counts: map[Kind]int{
			CardCrash: 1, LinkDown: 2, LossBurst: 2, DiskStall: 1, TaskHang: 1,
		},
		MinDuration: sim.Second, MaxDuration: 10 * sim.Second,
		MinFactor: 2, MaxFactor: 8,
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate(99, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(99, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", a, b)
	}
	if len(a.Events) != 7 {
		t.Fatalf("got %d events, want 7", len(a.Events))
	}
	c, err := Generate(100, genSpec())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestGenerateValidatesTargets(t *testing.T) {
	spec := genSpec()
	spec.Disks = nil
	if _, err := Generate(1, spec); err == nil {
		t.Fatal("disk-stall with no disks should fail")
	}
	spec = genSpec()
	spec.Span = 0
	if _, err := Generate(1, spec); err == nil {
		t.Fatal("zero span should fail")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	cases := []Plan{
		{Events: []Event{{At: -1, Kind: LinkDown, Target: "l"}}},
		{Events: []Event{{At: 1, Kind: LinkDown}}},
		{Events: []Event{{At: 1, Kind: LossBurst, Target: "l", Factor: 0}}},
		{Events: []Event{{At: 1, Kind: DiskStall, Target: "d", Factor: 1}}},
	}
	for i := range cases {
		if err := cases[i].Validate(); err == nil {
			t.Errorf("case %d: bad plan validated", i)
		}
	}
}

func TestArmFiresInjectAndRecoverInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	p := &Plan{Events: []Event{
		{At: 2 * sim.Second, Duration: 3 * sim.Second, Kind: LinkDown, Target: "san"},
		{At: sim.Second, Kind: CardCrash, Target: "ni0"},
	}}
	p.Sort()
	if p.Events[0].Kind != CardCrash {
		t.Fatal("Sort did not order by time")
	}
	var log Log
	var seq []string
	inj := InjectorFuncs{
		OnInject:  func(e Event) { seq = append(seq, "inject "+e.Target) },
		OnRecover: func(e Event) { seq = append(seq, "recover "+e.Target) },
	}
	if err := p.Arm(eng, inj, &log); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := []string{"inject ni0", "inject san", "recover san"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("sequence = %v, want %v", seq, want)
	}
	if len(log.Records) != 3 || !log.Records[2].Recover {
		t.Fatalf("log = %+v", log.Records)
	}
	if log.Records[2].At != 5*sim.Second {
		t.Fatalf("recovery at %v, want 5s", log.Records[2].At)
	}
}

// TestEveryKindHasAName fails when a kind is added without a String case:
// the fallback spelling "kind(N)" would leak into plan listings and chaos
// reports. It also pins the plan printer — every kind must render through
// Event.String and the plan lister without the fallback showing up.
func TestEveryKindHasAName(t *testing.T) {
	p := &Plan{}
	for k := Kind(0); k < kindEnd; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no String name", int(k))
		}
		p.Events = append(p.Events, Event{
			At: sim.Time(int(k)+1) * sim.Second, Duration: sim.Second,
			Kind: k, Target: "tgt", Factor: 2,
		})
	}
	listing := p.String()
	if strings.Contains(listing, "kind(") {
		t.Fatalf("plan printer leaked an unnamed kind:\n%s", listing)
	}
	for k := Kind(0); k < kindEnd; k++ {
		if !strings.Contains(listing, " "+k.String()+" ") {
			t.Errorf("plan printer missing kind %v:\n%s", k, listing)
		}
	}
}

// TestGenerateControllerKinds exercises the append-at-end RNG discipline for
// the controller kinds: a spec without them draws the exact same plan as
// before they existed, and a spec with them needs Controllers targets.
func TestGenerateControllerKinds(t *testing.T) {
	spec := genSpec()
	spec.Counts[ControllerCrash] = 1
	spec.Counts[ControllerPartition] = 1
	if _, err := Generate(7, spec); err == nil {
		t.Fatal("controller kinds with no Controllers targets should fail")
	}
	spec.Controllers = []string{"ctl-a", "ctl-b"}
	p, err := Generate(7, spec)
	if err != nil {
		t.Fatal(err)
	}
	got := map[Kind]int{}
	for _, e := range p.Events {
		got[e.Kind]++
		if e.Kind == ControllerCrash || e.Kind == ControllerPartition {
			if e.Target != "ctl-a" && e.Target != "ctl-b" {
				t.Errorf("controller event targeted %q", e.Target)
			}
			if e.Duration <= 0 {
				t.Errorf("controller event with no duration: %s", e)
			}
		}
	}
	if got[ControllerCrash] != 1 || got[ControllerPartition] != 1 {
		t.Fatalf("controller kind counts = %v", got)
	}
	// The prefix drawn before the controller kinds must match a plan
	// generated without them — the append-at-end discipline.
	spec2 := genSpec()
	base, err := Generate(7, spec2)
	if err != nil {
		t.Fatal(err)
	}
	strip := &Plan{Seed: p.Seed}
	for _, e := range p.Events {
		if e.Kind != ControllerCrash && e.Kind != ControllerPartition {
			strip.Events = append(strip.Events, e)
		}
	}
	if !reflect.DeepEqual(base.Events, strip.Events) {
		t.Fatalf("adding controller kinds perturbed the base plan:\n%s\nvs\n%s", base, strip)
	}
}

// TestValidateControllerDurations pins the Duration>0 requirement for the
// control-plane kinds: an unrecoverable controller fault is a dead control
// plane, not chaos.
func TestValidateControllerDurations(t *testing.T) {
	for _, k := range []Kind{ControllerCrash, ControllerPartition} {
		p := Plan{Events: []Event{{At: sim.Second, Kind: k, Target: "ctl-a"}}}
		if err := p.Validate(); err == nil {
			t.Errorf("%v with no duration validated", k)
		}
	}
}

func TestEmptyPlanIsNoOp(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Fatal("nil plan should be empty")
	}
	eng := sim.NewEngine(1)
	q := &Plan{}
	if err := q.Arm(eng, InjectorFuncs{}, nil); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Fatal("empty plan scheduled events")
	}
}
