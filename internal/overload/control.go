package overload

import (
	"repro/internal/mpeg"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Backpressure is the hysteresis gate between the transmit queue and the
// frame sources. It engages when queue depth reaches High and stays engaged
// until depth drains to Low, so throughput doesn't oscillate around a single
// threshold.
type Backpressure struct {
	High int // engage at this transmit-queue depth
	Low  int // release once depth drains to this

	engaged  bool
	Engages  int64
	Releases int64
}

// Update feeds the current queue depth and returns whether sources are gated.
func (bp *Backpressure) Update(depth int) bool {
	if bp.engaged {
		if depth <= bp.Low {
			bp.engaged = false
			bp.Releases++
		}
	} else if depth >= bp.High && bp.High > 0 {
		bp.engaged = true
		bp.Engages++
	}
	return bp.engaged
}

// Engaged reports the current gate state without feeding a sample.
func (bp *Backpressure) Engaged() bool { return bp.engaged }

// Rung is a step of the graceful-degradation ladder. Rungs are cumulative:
// at RungDropBP the scheduler is still shedding within loss tolerance and
// still dropping B frames.
type Rung int

// Ladder rungs, mildest first. I frames are never dropped at the source —
// losing one corrupts the whole GOP — so past RungDropBP the ladder revokes
// whole streams instead.
const (
	RungNone   Rung = iota
	RungShed        // shed queued frames within DWCS (x,y) loss tolerance
	RungDropB       // downgrade: drop B frames at the source
	RungDropBP      // downgrade further: drop B and P frames
	RungRevoke      // revoke admission of the lowest-value streams
	numRungs
)

// String names the rung for reports.
func (r Rung) String() string {
	switch r {
	case RungNone:
		return "none"
	case RungShed:
		return "shed"
	case RungDropB:
		return "drop-B"
	case RungDropBP:
		return "drop-BP"
	case RungRevoke:
		return "revoke"
	}
	return "rung?"
}

// Ladder walks the degradation rungs one step at a time: pressure must hold
// at or above EscalateAt for Sustain consecutive evaluations to climb, and at
// or below ClearAt for Sustain evaluations to step back down. The dead band
// between the two thresholds freezes the ladder where it is.
type Ladder struct {
	EscalateAt float64 // pressure at/above which the ladder climbs
	ClearAt    float64 // pressure at/below which it steps back down
	Sustain    int     // consecutive evaluations required either way

	rung        Rung
	hot, cool   int
	Transitions int64
	Evals       [numRungs]int64 // evaluations spent at each rung
	OnChange    func(from, to Rung)
}

// NewLadder returns a ladder with the default thresholds.
func NewLadder() *Ladder {
	return &Ladder{EscalateAt: 0.90, ClearAt: 0.75, Sustain: 3}
}

// Rung returns the current rung.
func (l *Ladder) Rung() Rung { return l.rung }

// Evaluate feeds one pressure sample and returns the (possibly new) rung.
func (l *Ladder) Evaluate(pressure float64) Rung {
	switch {
	case pressure >= l.EscalateAt:
		l.cool = 0
		l.hot++
		if l.hot >= l.Sustain && l.rung < RungRevoke {
			l.step(l.rung + 1)
		}
	case pressure <= l.ClearAt:
		l.hot = 0
		l.cool++
		if l.cool >= l.Sustain && l.rung > RungNone {
			l.step(l.rung - 1)
		}
	default:
		l.hot, l.cool = 0, 0
	}
	l.Evals[l.rung]++
	return l.rung
}

func (l *Ladder) step(to Rung) {
	from := l.rung
	l.rung = to
	l.hot, l.cool = 0, 0
	l.Transitions++
	if l.OnChange != nil {
		l.OnChange(from, to)
	}
}

// Hooks are the card-side actions a Controller drives. All are optional;
// a nil hook simply disables that rung's mechanism.
type Hooks struct {
	// QueueDepth returns the transmit-path backlog in frames (scheduler
	// rings plus dispatch queue).
	QueueDepth func() int
	// ShedTolerant sheds up to max queued frames whose streams still have
	// DWCS loss budget, returning how many were shed.
	ShedTolerant func(max int) int
	// Revoke revokes admission of the one lowest-value stream, reporting
	// whether a stream was revoked.
	Revoke func() bool
	// Reinstate reverses the oldest revocation once pressure has cleared,
	// reporting whether a stream came back.
	Reinstate func() bool
}

// Controller bundles budget, backpressure, and ladder for one scheduler NI
// and evaluates them on the simulation clock.
type Controller struct {
	Budget *Budget
	BP     *Backpressure
	Ladder *Ladder
	Hooks  Hooks

	// QueueCap is the transmit-queue depth treated as full pressure (1.0).
	QueueCap int
	// EvalEvery is the controller's evaluation period.
	EvalEvery sim.Time
	// PollEvery is how long a gated producer sleeps before re-testing.
	PollEvery sim.Time
	// ShedPerEval caps frames shed per evaluation so rung 1 degrades
	// output gradually instead of flushing queues in one tick.
	ShedPerEval int

	// Rung action counters.
	ShedTolerantFrames int64
	ShedBFrames        int64
	ShedPFrames        int64
	Revoked            int64
	Reinstated         int64
	SourceStalls       int64

	stop func()
	tel  *telemetry.Registry
}

// NewController returns a controller with default policy over a budget of
// size bytes (<= 0 selects the 4 MB card default).
func NewController(name string, size int64) *Controller {
	return &Controller{
		Budget:      NewBudget(name, size),
		BP:          &Backpressure{High: 192, Low: 96},
		Ladder:      NewLadder(),
		QueueCap:    256,
		EvalEvery:   100 * sim.Millisecond,
		PollEvery:   10 * sim.Millisecond,
		ShedPerEval: 8,
	}
}

// Start schedules periodic evaluation on eng. Idempotent via Stop.
func (c *Controller) Start(eng *sim.Engine) {
	if c.stop != nil {
		return
	}
	c.stop = eng.Every(c.EvalEvery, c.Evaluate)
}

// Stop cancels periodic evaluation.
func (c *Controller) Stop() {
	if c.stop != nil {
		c.stop()
		c.stop = nil
	}
}

// Pressure is the controller's scalar load signal: the worse of budget
// occupancy (vs the high-water mark) and transmit-queue fill.
func (c *Controller) Pressure() float64 {
	p := c.Budget.Occupancy()
	if c.QueueCap > 0 && c.Hooks.QueueDepth != nil {
		if q := float64(c.Hooks.QueueDepth()) / float64(c.QueueCap); q > p {
			p = q
		}
	}
	return p
}

// Evaluate runs one control step: sample pressure, update backpressure and
// the ladder, then apply the current rung's action. Revocation proceeds one
// stream per evaluation; so does reinstatement, once the ladder has stepped
// below RungRevoke and pressure sits at or below the clear threshold.
func (c *Controller) Evaluate() {
	depth := 0
	if c.Hooks.QueueDepth != nil {
		depth = c.Hooks.QueueDepth()
	}
	c.BP.Update(depth)
	p := c.Pressure()
	rung := c.Ladder.Evaluate(p)
	if rung >= RungShed && c.Hooks.ShedTolerant != nil {
		c.ShedTolerantFrames += int64(c.Hooks.ShedTolerant(c.ShedPerEval))
	}
	if rung >= RungRevoke && c.Hooks.Revoke != nil {
		if c.Hooks.Revoke() {
			c.Revoked++
		}
	}
	if rung < RungRevoke && p <= c.Ladder.ClearAt && c.Revoked > c.Reinstated && c.Hooks.Reinstate != nil {
		if c.Hooks.Reinstate() {
			c.Reinstated++
		}
	}
}

// AllowSource reports whether a producer may fetch its next frame of n
// bytes: backpressure must be clear and the budget must have headroom.
// A false return counts one source stall.
func (c *Controller) AllowSource(n int64) bool {
	if c.BP.Engaged() || !c.Budget.HeadroomFor(n) {
		c.SourceStalls++
		return false
	}
	return true
}

// AdmitFrame applies the ladder's downgrade policy to one source frame.
// B frames drop at RungDropB and above; P frames at RungDropBP and above;
// I frames always pass (revocation handles streams beyond saving).
func (c *Controller) AdmitFrame(t mpeg.FrameType) bool {
	rung := c.Ladder.Rung()
	if t == mpeg.BFrame && rung >= RungDropB {
		c.ShedBFrames++
		return false
	}
	if t == mpeg.PFrame && rung >= RungDropBP {
		c.ShedPFrames++
		return false
	}
	return true
}

// Instrument registers the controller's counters and gauges under the
// "overload" component; registries sum sources per (component, name), so a
// cluster of controllers aggregates naturally. Idempotent per controller.
func (c *Controller) Instrument(reg *telemetry.Registry) {
	if reg == nil || c.tel != nil {
		return
	}
	c.tel = reg
	b := c.Budget
	reg.GaugeFunc("overload", "budget_used_bytes", "accounted NI memory", func() float64 { return float64(b.Used()) })
	reg.GaugeFunc("overload", "budget_peak_bytes", "peak accounted NI memory", func() float64 { return float64(b.Peak()) })
	reg.GaugeFunc("overload", "budget_size_bytes", "absolute NI memory budget", func() float64 { return float64(b.Size()) })
	reg.GaugeFunc("overload", "ladder_rung", "current degradation rung", func() float64 { return float64(c.Ladder.Rung()) })
	reg.CounterFunc("overload", "admission_rejects_total", "setups refused at high water", func() int64 { return b.Rejects })
	reg.CounterFunc("overload", "budget_breaches_total", "accounted bytes over absolute budget", func() int64 { return b.Breaches })
	reg.CounterFunc("overload", "shed_tolerant_total", "frames shed within loss tolerance", func() int64 { return c.ShedTolerantFrames })
	reg.CounterFunc("overload", "shed_b_frames_total", "B frames dropped at source", func() int64 { return c.ShedBFrames })
	reg.CounterFunc("overload", "shed_p_frames_total", "P frames dropped at source", func() int64 { return c.ShedPFrames })
	reg.CounterFunc("overload", "revoked_total", "streams revoked under pressure", func() int64 { return c.Revoked })
	reg.CounterFunc("overload", "reinstated_total", "revoked streams readmitted", func() int64 { return c.Reinstated })
	reg.CounterFunc("overload", "backpressure_engages_total", "backpressure gate closures", func() int64 { return c.BP.Engages })
	reg.CounterFunc("overload", "backpressure_releases_total", "backpressure gate openings", func() int64 { return c.BP.Releases })
	reg.CounterFunc("overload", "source_stalls_total", "producer fetches gated", func() int64 { return c.SourceStalls })
	reg.CounterFunc("overload", "ladder_transitions_total", "degradation rung changes", func() int64 { return c.Ladder.Transitions })
}
