// Package overload protects a scheduler NI against load past its capacity.
// The i960 RD has 4 MB of on-board RAM (§3.1.2); everything the NI-resident
// scheduler holds — frame buffers, per-stream state, descriptor-queue slots —
// must fit inside it, so the card cannot survive overload by queueing.
// Instead it must (1) refuse work it can't hold, (2) push pressure back to
// the producers, and (3) degrade the streams it already carries in value
// order. This package supplies those three mechanisms:
//
//   - Budget: a byte-accurate accountant over the card memory, with a
//     high-water admission ceiling and a low-water readmission mark.
//   - Backpressure: transmit-queue-depth hysteresis that gates disk prefetch
//     (path C) and peer DMA (path B) at the source.
//   - Ladder: a graceful-degradation state machine (shed within DWCS loss
//     tolerance → drop B frames → drop B+P frames → revoke admission),
//     every rung reversible once pressure clears.
//
// A Controller bundles the three and is evaluated periodically on the
// simulation engine, so behaviour is a pure function of simulated time and
// runs are byte-identical at any host worker count.
package overload

import (
	"errors"
	"fmt"
)

// Accounting classes. Frame buffers are mirrored live from the card's
// physical allocator (mem.Observer); stream state and queue slots are charged
// at admission; Leak models chaos-injected erosion (faults.MemLeak).
type Class int

// Budget accounting classes.
const (
	ClassFrameBuf Class = iota
	ClassStreamState
	ClassQueueSlots
	ClassLeak
	// ClassBlackbox is the flight recorder's event ring: diagnostic state is
	// card-resident too, so it pays for its memory like any other tenant.
	ClassBlackbox
	// ClassTelemetry is in-band observability traffic: scrape reply buffers
	// staged on the card until they serialize onto the DVCM link. Charged
	// like any other tenant so a busy card sheds its own monitoring before
	// it sheds media.
	ClassTelemetry
	numClasses
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassFrameBuf:
		return "frame-buf"
	case ClassStreamState:
		return "stream-state"
	case ClassQueueSlots:
		return "queue-slots"
	case ClassLeak:
		return "leak"
	case ClassBlackbox:
		return "blackbox"
	case ClassTelemetry:
		return "telemetry"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ErrAdmission is returned when a stream setup would push projected occupancy
// past the budget's high-water mark. It crosses the dvcmnet wire by message
// text and is revived to this sentinel on the requesting side, so callers can
// errors.Is against it locally and remotely alike.
var ErrAdmission = errors.New("overload: admission rejected, budget above high water")

// ErrBudget is returned by Charge when a charge would exceed the absolute
// budget size. Observed (physical) allocations are never refused — they
// already happened — but they count as breaches if they overflow.
var ErrBudget = errors.New("overload: memory budget exceeded")

// Watermark defaults as fractions of the budget size.
const (
	DefaultHighWaterPct = 85 // admission ceiling
	DefaultLowWaterPct  = 70 // hysteresis: readmission resumes below this
)

// StreamCost is the projected memory footprint of one stream on the card.
type StreamCost struct {
	State int64 // per-stream scheduler state (window counters, spec, stats)
	Slots int64 // descriptor-ring slots (BufCap × descriptor bytes)
	Ring  int64 // worst-case resident frame bytes (BufCap × nominal frame)
}

// Projected is the occupancy admission tests against: everything the stream
// could pin at once.
func (sc StreamCost) Projected() int64 { return sc.State + sc.Slots + sc.Ring }

// charged is what admission actually charges. Frame bytes are accounted live
// through the mem.Observer hook as buffers are allocated, so charging Ring
// here would double-count them.
func (sc StreamCost) charged() int64 { return sc.State + sc.Slots }

// Budget is the byte-accurate accountant for one card's memory. It is not
// the allocator — mem.Memory still owns placement — it is the policy layer
// that decides whether new work may claim bytes at all.
type Budget struct {
	name string
	size int64
	high int64 // admission ceiling
	low  int64 // waiters drain below this

	used     [numClasses]int64
	total    int64
	peak     int64
	charged  int64 // lifetime bytes charged, all classes
	released int64 // lifetime bytes released, all classes

	// Rejects counts admissions refused at the high-water mark. Breaches
	// counts moments the accounted total exceeded the absolute size — the
	// invariant claim 4 requires to stay at zero.
	Rejects  int64
	Breaches int64

	// OnReject, when set, observes every admission refusal with the
	// projected footprint that was turned away; OnBreach observes every
	// breach. The flight recorder hangs its incident triggers here.
	OnReject func(projected int64)
	OnBreach func()

	waiters  []func() // FIFO reject-then-retry queue
	draining bool     // reentrancy guard: waiters may re-enroll while firing
}

// NewBudget returns an accountant over size bytes (size <= 0 selects the
// 4 MB card default) with the default watermarks.
func NewBudget(name string, size int64) *Budget {
	if size <= 0 {
		size = 4 << 20
	}
	return &Budget{
		name: name,
		size: size,
		high: size * DefaultHighWaterPct / 100,
		low:  size * DefaultLowWaterPct / 100,
	}
}

// SetWatermarks overrides the high/low marks, given as percentages of size.
func (b *Budget) SetWatermarks(highPct, lowPct int) {
	if highPct <= 0 || lowPct <= 0 || lowPct > highPct || highPct > 100 {
		panic(fmt.Sprintf("overload: bad watermarks %d/%d", highPct, lowPct))
	}
	b.high = b.size * int64(highPct) / 100
	b.low = b.size * int64(lowPct) / 100
}

// Name returns the budget's owner label.
func (b *Budget) Name() string { return b.name }

// Size returns the absolute budget in bytes.
func (b *Budget) Size() int64 { return b.size }

// HighWater returns the admission ceiling in bytes.
func (b *Budget) HighWater() int64 { return b.high }

// LowWater returns the readmission mark in bytes.
func (b *Budget) LowWater() int64 { return b.low }

// Used returns total accounted bytes across all classes.
func (b *Budget) Used() int64 { return b.total }

// UsedClass returns accounted bytes of one class.
func (b *Budget) UsedClass(c Class) int64 { return b.used[c] }

// Peak returns the high-water mark of accounted bytes over the budget's life.
func (b *Budget) Peak() int64 { return b.peak }

// Ledger returns lifetime charged and released byte totals. Conservation
// holds when charged - released == Used().
func (b *Budget) Ledger() (charged, released int64) { return b.charged, b.released }

// Occupancy returns Used()/HighWater() — ≥ 1 means the card is past its
// admission ceiling. Pure integer inputs keep it deterministic.
func (b *Budget) Occupancy() float64 {
	if b.high == 0 {
		return 0
	}
	return float64(b.total) / float64(b.high)
}

// CanAdmit reports (without side effects) whether a projected footprint fits
// under the high-water mark. Cluster placement uses it to redirect a setup to
// a less-loaded card instead of burning a reject on this one.
func (b *Budget) CanAdmit(projected int64) bool {
	return b.total+projected <= b.high
}

// AdmitStream admission-tests the stream's projected footprint against the
// high-water mark, then charges its state and slot bytes. Frame bytes are
// charged live via the allocator observer as buffers fill.
func (b *Budget) AdmitStream(sc StreamCost) error {
	if !b.CanAdmit(sc.Projected()) {
		b.Rejects++
		if b.OnReject != nil {
			b.OnReject(sc.Projected())
		}
		return fmt.Errorf("%w (%s: used %d + projected %d > high %d)",
			ErrAdmission, b.name, b.total, sc.Projected(), b.high)
	}
	b.apply(ClassStreamState, sc.State)
	b.apply(ClassQueueSlots, sc.Slots)
	return nil
}

// ReleaseStream returns a stream's admission charge.
func (b *Budget) ReleaseStream(sc StreamCost) {
	b.Release(ClassStreamState, sc.State)
	b.Release(ClassQueueSlots, sc.Slots)
}

// HeadroomFor reports whether n more bytes fit under the absolute size. The
// producers gate frame allocation on it, which is what keeps Breaches at 0.
func (b *Budget) HeadroomFor(n int64) bool { return b.total+n <= b.size }

// Charge accounts n bytes of class c, refusing charges that would exceed the
// absolute size.
func (b *Budget) Charge(c Class, n int64) error {
	if b.total+n > b.size {
		b.Breaches++
		if b.OnBreach != nil {
			b.OnBreach()
		}
		return fmt.Errorf("%w (%s: used %d + %d > size %d)", ErrBudget, b.name, b.total, n, b.size)
	}
	b.apply(c, n)
	return nil
}

// apply records a charge that has already been validated (or that mirrors a
// physical event which cannot be refused).
func (b *Budget) apply(c Class, n int64) {
	b.used[c] += n
	b.total += n
	b.charged += n
	if b.total > b.peak {
		b.peak = b.total
	}
}

// Release returns n bytes of class c and drains reject-then-retry waiters if
// occupancy fell to the low-water mark. Over-releasing a class panics: it is
// always a double-release bug in the caller.
func (b *Budget) Release(c Class, n int64) {
	if n > b.used[c] {
		panic(fmt.Sprintf("overload: release %d of %s exceeds charged %d", n, c, b.used[c]))
	}
	b.used[c] -= n
	b.total -= n
	b.released += n
	b.drain()
}

// OnAlloc implements mem.Observer: mirror a physical frame-buffer allocation.
// The allocation already happened, so it is recorded unconditionally; if it
// overflows the budget that is a breach (the gates upstream failed).
func (b *Budget) OnAlloc(n int64) {
	if b.total+n > b.size {
		b.Breaches++
		if b.OnBreach != nil {
			b.OnBreach()
		}
	}
	b.apply(ClassFrameBuf, n)
}

// OnFree implements mem.Observer.
func (b *Budget) OnFree(n int64) { b.Release(ClassFrameBuf, n) }

// Leak erodes the budget by n bytes (faults.MemLeak). Like OnAlloc it cannot
// be refused; overflow counts as a breach.
func (b *Budget) Leak(n int64) {
	if b.total+n > b.size {
		b.Breaches++
		if b.OnBreach != nil {
			b.OnBreach()
		}
	}
	b.apply(ClassLeak, n)
}

// ReclaimLeak returns all leaked bytes (fault recovery) and reports how many.
func (b *Budget) ReclaimLeak() int64 {
	n := b.used[ClassLeak]
	if n > 0 {
		b.Release(ClassLeak, n)
	}
	return n
}

// AwaitSpace enrolls cb to run once occupancy drains to the low-water mark.
// Callbacks fire in enrollment order (FIFO), so a retry queue of rejected
// setups is readmitted fairly. Each callback fires exactly once; a retry that
// fails again must re-enroll.
func (b *Budget) AwaitSpace(cb func()) {
	b.waiters = append(b.waiters, cb)
	b.drain()
}

// Waiting returns the number of enrolled retry callbacks.
func (b *Budget) Waiting() int { return len(b.waiters) }

// drain fires waiters while occupancy sits at or below the low-water mark.
// Only the waiters present at entry are considered, and nested calls (a
// firing waiter re-enrolling itself or releasing bytes) are absorbed, so a
// retry that fails again cannot recurse or spin the loop forever.
func (b *Budget) drain() {
	if b.draining {
		return
	}
	b.draining = true
	defer func() { b.draining = false }()
	for n := len(b.waiters); n > 0 && b.total <= b.low && len(b.waiters) > 0; n-- {
		cb := b.waiters[0]
		b.waiters = b.waiters[1:]
		cb()
	}
}

// String summarizes the ledger for reports.
func (b *Budget) String() string {
	return fmt.Sprintf("%s: used %d/%d (high %d, low %d) peak %d rejects %d breaches %d",
		b.name, b.total, b.size, b.high, b.low, b.peak, b.Rejects, b.Breaches)
}
