package overload

import (
	"errors"
	"testing"
)

func TestOnRejectAndOnBreachHooks(t *testing.T) {
	b := NewBudget("card", 1000)
	var rejects []int64
	var breaches int
	b.OnReject = func(projected int64) { rejects = append(rejects, projected) }
	b.OnBreach = func() { breaches++ }

	// Admission refusal fires OnReject with the projected footprint.
	if err := b.AdmitStream(StreamCost{State: 400, Slots: 300, Ring: 400}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("want ErrAdmission, got %v", err)
	}
	if len(rejects) != 1 || rejects[0] != 1100 {
		t.Fatalf("OnReject got %v, want [1100]", rejects)
	}

	// A refused Charge and an unrefusable overflow both fire OnBreach.
	if err := b.Charge(ClassQueueSlots, 2000); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	b.OnAlloc(900)
	b.OnAlloc(200) // 1100 > 1000: physical overflow
	b.Leak(100)    // still over: leak overflow
	if breaches != 3 {
		t.Fatalf("OnBreach fired %d times, want 3", breaches)
	}
	if b.Breaches != 3 {
		t.Fatalf("Breaches = %d, want 3", b.Breaches)
	}
}

func TestBlackboxClassAccounting(t *testing.T) {
	b := NewBudget("card", 1<<20)
	if err := b.Charge(ClassBlackbox, 16<<10); err != nil {
		t.Fatalf("charge: %v", err)
	}
	if got := b.UsedClass(ClassBlackbox); got != 16<<10 {
		t.Fatalf("UsedClass(ClassBlackbox) = %d, want %d", got, 16<<10)
	}
	if ClassBlackbox.String() != "blackbox" {
		t.Fatalf("ClassBlackbox.String() = %q", ClassBlackbox.String())
	}
	b.Release(ClassBlackbox, 16<<10)
	if b.Used() != 0 {
		t.Fatalf("Used = %d after release, want 0", b.Used())
	}
	charged, released := b.Ledger()
	if charged != released {
		t.Fatalf("ledger conservation: charged %d != released %d", charged, released)
	}
}
