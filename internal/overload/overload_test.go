package overload

import (
	"errors"
	"testing"
)

func testBudget() *Budget {
	// size 1000 → high 850, low 700 with the default watermarks.
	return NewBudget("card", 1000)
}

func TestAdmitExactlyAtHighWater(t *testing.T) {
	b := testBudget()
	// Projected footprint landing exactly on the high-water mark is admitted;
	// one byte more is rejected.
	at := StreamCost{State: 50, Slots: 100, Ring: b.HighWater() - 150}
	if err := b.AdmitStream(at); err != nil {
		t.Fatalf("admit at high water: %v", err)
	}
	b.ReleaseStream(at)
	over := at
	over.Ring++
	if err := b.AdmitStream(over); !errors.Is(err, ErrAdmission) {
		t.Fatalf("admit past high water: %v, want ErrAdmission", err)
	}
	if b.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", b.Rejects)
	}
	if b.Used() != 0 {
		t.Fatalf("used = %d after release, want 0", b.Used())
	}
}

func TestAdmissionChargesStateAndSlotsOnly(t *testing.T) {
	b := testBudget()
	sc := StreamCost{State: 10, Slots: 20, Ring: 500}
	if err := b.AdmitStream(sc); err != nil {
		t.Fatal(err)
	}
	// Ring bytes are mirrored live via the allocator observer, not charged at
	// admission — charging both would double-count.
	if got := b.Used(); got != 30 {
		t.Fatalf("used = %d after admission, want 30 (state+slots)", got)
	}
	if b.UsedClass(ClassStreamState) != 10 || b.UsedClass(ClassQueueSlots) != 20 {
		t.Fatalf("class split = %d/%d, want 10/20",
			b.UsedClass(ClassStreamState), b.UsedClass(ClassQueueSlots))
	}
}

func TestRejectThenRetryViaAwaitSpace(t *testing.T) {
	b := testBudget()
	b.Charge(ClassFrameBuf, 800)
	sc := StreamCost{State: 10, Slots: 10, Ring: 100}
	if err := b.AdmitStream(sc); !errors.Is(err, ErrAdmission) {
		t.Fatalf("admit under pressure: %v", err)
	}
	admitted := false
	b.AwaitSpace(func() {
		if err := b.AdmitStream(sc); err != nil {
			t.Fatalf("retry: %v", err)
		}
		admitted = true
	})
	if admitted {
		t.Fatal("retry fired above the low-water mark")
	}
	// Draining to just above low (701) keeps the waiter enrolled; reaching
	// low (700) fires it.
	b.Release(ClassFrameBuf, 99)
	if admitted {
		t.Fatal("retry fired at 701 used, low water is 700")
	}
	b.Release(ClassFrameBuf, 1)
	if !admitted {
		t.Fatal("retry did not fire at the low-water mark")
	}
	if b.Waiting() != 0 {
		t.Fatalf("waiting = %d, want 0", b.Waiting())
	}
}

func TestReadmissionIsFIFO(t *testing.T) {
	b := testBudget()
	b.Charge(ClassFrameBuf, 900)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		b.AwaitSpace(func() { order = append(order, i) })
	}
	b.Release(ClassFrameBuf, 900)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("fire order = %v, want [0 1 2]", order)
	}
}

func TestAwaitSpaceReenrollDoesNotRecurse(t *testing.T) {
	b := testBudget()
	// The budget is already below low water, so AwaitSpace fires its callback
	// synchronously. A callback whose retry fails re-enrolls from inside
	// drain; the reentrancy guard must absorb that instead of recursing.
	fires := 0
	var retry func()
	retry = func() {
		fires++
		if fires > 3 {
			t.Fatal("callback kept firing inside one drain")
		}
		b.AwaitSpace(retry) // still no room for us: get back in line
	}
	b.AwaitSpace(retry)
	if fires != 1 {
		t.Fatalf("fires = %d, want exactly 1 (re-enrollment waits for the next drain)", fires)
	}
	if b.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", b.Waiting())
	}
	// The next release drains again: one more firing, one more re-enrollment.
	b.Charge(ClassFrameBuf, 10)
	b.Release(ClassFrameBuf, 10)
	if fires != 2 {
		t.Fatalf("fires = %d after release, want 2", fires)
	}
}

func TestLedgerConservation(t *testing.T) {
	b := testBudget()
	sc := StreamCost{State: 16, Slots: 64, Ring: 100}
	if err := b.AdmitStream(sc); err != nil {
		t.Fatal(err)
	}
	b.OnAlloc(120)
	b.OnAlloc(80)
	b.OnFree(120)
	b.Leak(33)
	b.Charge(ClassFrameBuf, 7)
	charged, released := b.Ledger()
	if charged-released != b.Used() {
		t.Fatalf("charged %d - released %d != used %d", charged, released, b.Used())
	}
	b.OnFree(80)
	b.OnFree(7)
	if got := b.ReclaimLeak(); got != 33 {
		t.Fatalf("reclaimed %d, want 33", got)
	}
	b.ReleaseStream(sc)
	charged, released = b.Ledger()
	if b.Used() != 0 || charged != released {
		t.Fatalf("after full teardown: used=%d charged=%d released=%d", b.Used(), charged, released)
	}
	if b.Breaches != 0 {
		t.Fatalf("breaches = %d, want 0", b.Breaches)
	}
}

func TestChargeRefusalAndBreachAccounting(t *testing.T) {
	b := testBudget()
	if err := b.Charge(ClassFrameBuf, 1001); !errors.Is(err, ErrBudget) {
		t.Fatalf("overcharge: %v, want ErrBudget", err)
	}
	if b.Used() != 0 || b.Breaches != 1 {
		t.Fatalf("used=%d breaches=%d after refused charge", b.Used(), b.Breaches)
	}
	// Physical allocations can't be refused: they apply and count a breach.
	b.OnAlloc(1001)
	if b.Used() != 1001 || b.Breaches != 2 {
		t.Fatalf("used=%d breaches=%d after observed overflow", b.Used(), b.Breaches)
	}
}

func TestOverReleasePanics(t *testing.T) {
	b := testBudget()
	b.Charge(ClassFrameBuf, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release(ClassFrameBuf, 11)
}

func TestBackpressureHysteresis(t *testing.T) {
	bp := &Backpressure{High: 10, Low: 4}
	if bp.Update(9) {
		t.Fatal("engaged below high")
	}
	if !bp.Update(10) {
		t.Fatal("not engaged at high")
	}
	// Stays engaged through the dead band.
	if !bp.Update(5) {
		t.Fatal("released above low")
	}
	if bp.Update(4) {
		t.Fatal("not released at low")
	}
	// And doesn't re-engage until high again.
	if bp.Update(9) {
		t.Fatal("re-engaged below high")
	}
	if bp.Engages != 1 || bp.Releases != 1 {
		t.Fatalf("engages=%d releases=%d, want 1/1", bp.Engages, bp.Releases)
	}
}

func TestLadderSustainAndReversal(t *testing.T) {
	l := NewLadder() // escalate 0.90, clear 0.75, sustain 3
	for i := 0; i < 2; i++ {
		if got := l.Evaluate(0.95); got != RungNone {
			t.Fatalf("eval %d: rung %v before sustain", i, got)
		}
	}
	if got := l.Evaluate(0.95); got != RungShed {
		t.Fatalf("rung %v after sustained pressure, want shed", got)
	}
	// Dead-band samples freeze the ladder and reset both counters.
	l.Evaluate(0.95)
	l.Evaluate(0.80)
	if got := l.Evaluate(0.95); got != RungShed {
		t.Fatalf("dead band did not reset the hot counter (rung %v)", got)
	}
	// Climb to the top, then clear back down to none.
	for l.Rung() < RungRevoke {
		l.Evaluate(0.95)
	}
	for i := 0; l.Rung() > RungNone; i++ {
		l.Evaluate(0.10)
		if i > 100 {
			t.Fatal("ladder never cleared")
		}
	}
	if l.Transitions != 8 {
		t.Fatalf("transitions = %d, want 8 (4 up + 4 down)", l.Transitions)
	}
}

func TestControllerRevokesAndReinstatesOnePerEval(t *testing.T) {
	c := NewController("card", 1000)
	// Pin pressure through budget occupancy alone: 850 of 850 high water.
	c.Budget.Charge(ClassFrameBuf, 850)
	live := 3
	c.Hooks.Revoke = func() bool {
		if live == 0 {
			return false
		}
		live--
		return true
	}
	c.Hooks.Reinstate = func() bool {
		live++
		return true
	}
	// Climb: 3 evals per rung, 4 rungs. Revocation starts only at the top,
	// one stream per evaluation.
	for i := 0; i < 12; i++ {
		c.Evaluate()
	}
	if c.Ladder.Rung() != RungRevoke {
		t.Fatalf("rung %v after sustained pressure", c.Ladder.Rung())
	}
	if c.Revoked != 1 {
		t.Fatalf("revoked = %d at the transition eval, want 1", c.Revoked)
	}
	c.Evaluate()
	c.Evaluate()
	if c.Revoked != 3 || live != 0 {
		t.Fatalf("revoked = %d live = %d, want 3/0", c.Revoked, live)
	}
	// Pressure clears: the ladder steps down and reinstates one per eval
	// once below the revoke rung.
	c.Budget.Release(ClassFrameBuf, 850)
	for i := 0; c.Reinstated < c.Revoked; i++ {
		c.Evaluate()
		if i > 100 {
			t.Fatal("revocations never reversed")
		}
	}
	if live != 3 {
		t.Fatalf("live = %d after recovery, want 3", live)
	}
}

func TestAllowSourceGatesOnBudgetAndBackpressure(t *testing.T) {
	c := NewController("card", 1000)
	if !c.AllowSource(1000) {
		t.Fatal("fresh controller gated a fitting fetch")
	}
	if c.AllowSource(1001) {
		t.Fatal("fetch past the absolute budget allowed")
	}
	c.BP.Update(c.BP.High)
	if c.AllowSource(1) {
		t.Fatal("fetch allowed with backpressure engaged")
	}
	if c.SourceStalls != 2 {
		t.Fatalf("source stalls = %d, want 2", c.SourceStalls)
	}
}
