// Package fixed implements the fixed-point arithmetic the paper builds to
// avoid the VxWorks software floating-point library on the FPU-less i960 RD
// (§4.2: "arguments are simply stored as fractions with numerator and
// denominator with divisions implemented as shifts").
//
// Two representations are provided:
//
//   - Frac: an exact numerator/denominator pair, used by the DWCS scheduler
//     for loss-tolerance (window-constraint) values x/y.
//   - Q16: a 32.16 binary fixed-point scalar whose division is implemented
//     with shifts, used where a stream of arithmetic is needed (rates,
//     utilization accounting).
//
// All operations are integer-only; nothing in this package touches float64
// except the explicit conversion helpers, mirroring the paper's split
// between the software-FP build and the fixed-point build.
package fixed

import (
	"fmt"
	"math/bits"
)

// Frac is an exact fraction. The zero value is the fraction 0/1... except
// that a zero Den is normalized to 1 lazily by accessors, so the zero value
// is usable as 0.
type Frac struct {
	Num int64
	Den int64
}

// New returns the fraction num/den. A zero den is treated as 1 so that the
// zero value of Frac behaves as 0.
func New(num, den int64) Frac {
	if den == 0 {
		den = 1
	}
	if den < 0 {
		num, den = -num, -den
	}
	return Frac{num, den}
}

// Zero reports whether f equals 0.
func (f Frac) Zero() bool { return f.Num == 0 }

// den returns the denominator, mapping 0 to 1 so the zero value acts as 0/1.
func (f Frac) den() int64 {
	if f.Den == 0 {
		return 1
	}
	return f.Den
}

// Cmp compares f and g exactly, returning -1, 0, or +1.
func (f Frac) Cmp(g Frac) int {
	// Cross-multiply in 128 bits to avoid overflow for any int64 operands.
	lhsHi, lhsLo := mul64(f.Num, g.den())
	rhsHi, rhsLo := mul64(g.Num, f.den())
	switch {
	case lhsHi < rhsHi:
		return -1
	case lhsHi > rhsHi:
		return 1
	case lhsLo < rhsLo:
		return -1
	case lhsLo > rhsLo:
		return 1
	default:
		return 0
	}
}

// mul64 returns the signed 128-bit product hi:lo of a*b, with lo compared as
// unsigned when hi parts are equal.
func mul64(a, b int64) (hi int64, lo uint64) {
	neg := false
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
		neg = !neg
	}
	if b < 0 {
		ub = uint64(-b)
		neg = !neg
	}
	h, l := bits.Mul64(ua, ub)
	if neg {
		// two's complement negate the 128-bit value
		l = ^l + 1
		h = ^h
		if l == 0 {
			h++
		}
	}
	return int64(h), l
}

// Less reports whether f < g.
func (f Frac) Less(g Frac) bool { return f.Cmp(g) < 0 }

// Equal reports whether f == g as rational numbers (2/4 equals 1/2).
func (f Frac) Equal(g Frac) bool { return f.Cmp(g) == 0 }

// Add returns f+g, reduced.
func (f Frac) Add(g Frac) Frac {
	return New(f.Num*g.den()+g.Num*f.den(), f.den()*g.den()).Reduce()
}

// Sub returns f-g, reduced.
func (f Frac) Sub(g Frac) Frac {
	return New(f.Num*g.den()-g.Num*f.den(), f.den()*g.den()).Reduce()
}

// Mul returns f*g, reduced.
func (f Frac) Mul(g Frac) Frac {
	return New(f.Num*g.Num, f.den()*g.den()).Reduce()
}

// Div returns f/g, reduced. Division by a zero fraction returns f unchanged,
// matching the defensive behaviour of the embedded scheduler (a zero
// loss-tolerance denominator never occurs in a validated stream spec).
func (f Frac) Div(g Frac) Frac {
	if g.Num == 0 {
		return f
	}
	return New(f.Num*g.den(), f.den()*g.Num).Reduce()
}

// Reduce returns f in lowest terms with a positive denominator.
func (f Frac) Reduce() Frac {
	n, d := f.Num, f.den()
	g := gcd(abs(n), d)
	if g > 1 {
		n /= g
		d /= g
	}
	return Frac{n, d}
}

// Float converts f to float64. Only for reporting; the scheduler never calls
// this in its fixed-point build.
func (f Frac) Float() float64 { return float64(f.Num) / float64(f.den()) }

// String renders f as "num/den".
func (f Frac) String() string { return fmt.Sprintf("%d/%d", f.Num, f.den()) }

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Q16 is a signed binary fixed-point number with 16 fractional bits. The
// paper's fixed-point library implements divisions as shifts; Q16 does the
// same: scaling by the 2^16 radix is a shift, and DivPow2 divides by 2^k
// with an arithmetic shift.
type Q16 int64

// OneQ16 is the Q16 representation of 1.
const OneQ16 Q16 = 1 << 16

// FromInt converts an integer to Q16.
func FromInt(v int64) Q16 { return Q16(v << 16) }

// FromRatio converts the ratio num/den to Q16 (rounded toward zero).
func FromRatio(num, den int64) Q16 {
	if den == 0 {
		return 0
	}
	return Q16((num << 16) / den)
}

// Int returns the integer part of q (truncated toward zero).
func (q Q16) Int() int64 {
	if q < 0 {
		return -int64(-q >> 16)
	}
	return int64(q >> 16)
}

// MulQ returns q*r in Q16.
func (q Q16) MulQ(r Q16) Q16 { return Q16((int64(q) * int64(r)) >> 16) }

// DivQ returns q/r in Q16. Division by zero returns 0.
func (q Q16) DivQ(r Q16) Q16 {
	if r == 0 {
		return 0
	}
	return Q16((int64(q) << 16) / int64(r))
}

// DivPow2 divides q by 2^k using an arithmetic shift — the shift-based
// division the paper calls out.
func (q Q16) DivPow2(k uint) Q16 { return q >> k }

// MulPow2 multiplies q by 2^k using a shift.
func (q Q16) MulPow2(k uint) Q16 { return q << k }

// Float converts q to float64 for reporting.
func (q Q16) Float() float64 { return float64(q) / float64(OneQ16) }

// FromFloat converts a float64 to Q16. Only for test calibration; the
// embedded code paths never construct Q16 from floats.
func FromFloat(v float64) Q16 { return Q16(v * float64(OneQ16)) }
