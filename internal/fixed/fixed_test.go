package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewNormalizesSign(t *testing.T) {
	f := New(3, -4)
	if f.Num != -3 || f.Den != 4 {
		t.Fatalf("New(3,-4) = %v, want -3/4", f)
	}
}

func TestZeroValueActsAsZero(t *testing.T) {
	var f Frac
	if !f.Zero() {
		t.Fatal("zero value should be zero")
	}
	if got := f.Add(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Fatalf("0 + 1/2 = %v", got)
	}
	if f.Float() != 0 {
		t.Fatalf("zero value Float = %v", f.Float())
	}
}

func TestFracCmp(t *testing.T) {
	cases := []struct {
		a, b Frac
		want int
	}{
		{New(1, 2), New(1, 2), 0},
		{New(2, 4), New(1, 2), 0},
		{New(1, 3), New(1, 2), -1},
		{New(3, 4), New(2, 3), 1},
		{New(0, 5), New(0, 9), 0},
		{New(-1, 2), New(1, 2), -1},
		{New(-1, 2), New(-1, 3), -1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("(%v).Cmp(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFracCmpLargeOperands(t *testing.T) {
	// Values chosen so that naive int64 cross-multiplication overflows.
	big := int64(1) << 40
	a := New(big+1, big)
	b := New(big, big-1)
	if !a.Less(b) {
		t.Errorf("expected %v < %v", a, b)
	}
	if b.Less(a) {
		t.Errorf("did not expect %v < %v", b, a)
	}
}

func TestFracArithmetic(t *testing.T) {
	a, b := New(1, 2), New(1, 3)
	if got := a.Add(b); !got.Equal(New(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v, want 5/6", got)
	}
	if got := a.Sub(b); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v, want 1/6", got)
	}
	if got := a.Mul(b); !got.Equal(New(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v, want 1/6", got)
	}
	if got := a.Div(b); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2) / (1/3) = %v, want 3/2", got)
	}
}

func TestFracDivByZeroReturnsReceiver(t *testing.T) {
	a := New(7, 9)
	if got := a.Div(Frac{}); !got.Equal(a) {
		t.Errorf("div by zero = %v, want %v", got, a)
	}
}

func TestReduce(t *testing.T) {
	f := New(6, 8).Reduce()
	if f.Num != 3 || f.Den != 4 {
		t.Fatalf("Reduce(6/8) = %v", f)
	}
	f = New(0, 8).Reduce()
	if f.Num != 0 || f.Den != 1 {
		t.Fatalf("Reduce(0/8) = %v", f)
	}
}

func TestString(t *testing.T) {
	if got := New(2, 3).String(); got != "2/3" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Cmp agrees with float comparison for moderate operands.
func TestFracCmpMatchesFloat(t *testing.T) {
	f := func(an, ad, bn, bd int32) bool {
		a := New(int64(an), int64(ad))
		b := New(int64(bn), int64(bd))
		af, bf := a.Float(), b.Float()
		got := a.Cmp(b)
		switch {
		case af < bf:
			return got == -1
		case af > bf:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Sub round-trips.
func TestFracAddSubRoundTrip(t *testing.T) {
	f := func(an, bn int16, ad, bd uint8) bool {
		a := New(int64(an), int64(ad)+1)
		b := New(int64(bn), int64(bd)+1)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce preserves value.
func TestReducePreservesValue(t *testing.T) {
	f := func(n int32, d uint16) bool {
		a := New(int64(n), int64(d)+1)
		return a.Reduce().Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQ16Basics(t *testing.T) {
	if got := FromInt(5).Int(); got != 5 {
		t.Errorf("FromInt(5).Int() = %d", got)
	}
	half := FromRatio(1, 2)
	if got := half.Float(); math.Abs(got-0.5) > 1e-4 {
		t.Errorf("1/2 as Q16 = %v", got)
	}
	if got := half.MulQ(FromInt(6)).Int(); got != 3 {
		t.Errorf("0.5*6 = %d, want 3", got)
	}
	if got := FromInt(6).DivQ(FromInt(4)).Float(); math.Abs(got-1.5) > 1e-4 {
		t.Errorf("6/4 = %v, want 1.5", got)
	}
	if got := FromInt(8).DivPow2(2).Int(); got != 2 {
		t.Errorf("8>>2 = %d, want 2", got)
	}
	if got := FromInt(3).MulPow2(3).Int(); got != 24 {
		t.Errorf("3<<3 = %d, want 24", got)
	}
	if got := FromInt(5).DivQ(0); got != 0 {
		t.Errorf("div by zero = %v, want 0", got)
	}
	if got := FromRatio(1, 0); got != 0 {
		t.Errorf("FromRatio(1,0) = %v, want 0", got)
	}
}

func TestQ16NegativeInt(t *testing.T) {
	if got := FromInt(-5).Int(); got != -5 {
		t.Errorf("FromInt(-5).Int() = %d", got)
	}
	if got := FromRatio(-3, 2).Float(); math.Abs(got - -1.5) > 1e-4 {
		t.Errorf("-3/2 = %v", got)
	}
}

// Property: Q16 multiply matches float multiply within quantization error.
func TestQ16MulMatchesFloat(t *testing.T) {
	f := func(a, b int16) bool {
		qa, qb := FromInt(int64(a)), FromRatio(int64(b), 100)
		got := qa.MulQ(qb).Float()
		want := float64(a) * float64(b) / 100
		return math.Abs(got-want) <= math.Abs(want)*1e-3+1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.25, 123.5, -42.75} {
		if got := FromFloat(v).Float(); math.Abs(got-v) > 1e-4 {
			t.Errorf("FromFloat(%v).Float() = %v", v, got)
		}
	}
}
