package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Stage identifies one hop of a frame's end-to-end path (Figure 3's data
// paths, cut at the points the paper instruments).
type Stage uint8

// Frame path stages, in causal order.
const (
	// StageDisk is the filesystem read on the source card's spindle.
	StageDisk Stage = iota
	// StageBus is the PCI DMA hop from source card to scheduler card.
	StageBus
	// StageQueue is enqueue-to-dispatch inside DWCS (the queuing delay of
	// Figures 8 and 10).
	StageQueue
	// StageTx is the dispatch decision's hand-off through the protocol
	// stack until the first wire bit.
	StageTx
	// StageWire is serialization, switching, and propagation to the client.
	StageWire
	// StagePlayout is the client's receive stack before the player sees
	// the frame.
	StagePlayout
	numStages
)

var stageNames = [numStages]string{"disk", "bus", "queue", "tx", "wire", "playout"}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Segment is one stage of one frame's span: stream and sequence identify
// the frame, Where the substrate instance, and [Start, End] the simulated
// interval spent in the stage. Epoch identifies which placement of the
// stream served the frame: it starts at 0 and increments every time the
// stream is re-placed (live migration, cold restore, fresh re-add), so
// spans recorded on the old and new card of a migration remain one
// stitchable identity instead of two unrelated histories. Epoch -1 marks a
// segment recorded by a substrate that does not know the serving placement
// (e.g. the client side of the wire); the stitcher assigns those by frame
// cursor.
type Segment struct {
	Stream int
	Seq    int64
	Epoch  int
	Stage  Stage
	Where  string
	Start  sim.Time
	End    sim.Time
}

// Dur returns the segment's duration.
func (s Segment) Dur() sim.Time { return s.End - s.Start }

// SpanLink is an explicit edge between two epochs of one stream's span
// history: the frame-cursor handoff of a migration. Seq is the cursor the
// new placement starts serving from; Kind records how the handoff happened
// ("live" preserves the cursor, "cold" restores a possibly stale
// checkpoint, "readd" restarts with a fresh window, "abort" means the
// handoff failed and the epoch did not advance).
type SpanLink struct {
	Stream    int
	FromEpoch int
	ToEpoch   int
	FromWhere string
	ToWhere   string
	Seq       int64
	At        sim.Time
	Kind      string
}

// SpanLog accumulates span segments. Recording order is engine order, which
// is already deterministic; exports additionally sort canonically so two
// logs with the same segment set render identically.
type SpanLog struct {
	Segments []Segment

	// Links are the recorded epoch-handoff edges, in engine order.
	Links []SpanLink

	// Observer, when set, sees every accepted segment as it is recorded —
	// the tap the flight recorder and SLO monitor listen on. It runs inside
	// Record, so it must be cheap and must not re-enter the log.
	Observer func(Segment)
}

// Record appends one segment. Zero-length and negative segments are kept
// out of the log — they carry no latency information and would divide by
// zero in rate math.
func (l *SpanLog) Record(seg Segment) {
	if l == nil || seg.End < seg.Start {
		return
	}
	l.Segments = append(l.Segments, seg)
	if l.Observer != nil {
		l.Observer(seg)
	}
}

// RecordLink appends one epoch-handoff edge. Nil-safe like Record.
func (l *SpanLog) RecordLink(link SpanLink) {
	if l == nil {
		return
	}
	l.Links = append(l.Links, link)
}

// Len reports recorded segments.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Segments)
}

// sorted returns the segments in canonical order: by start time, then
// stream, sequence, stage, instance, end.
func (l *SpanLog) sorted() []Segment {
	out := append([]Segment(nil), l.Segments...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		return a.End < b.End
	})
	return out
}

// stageAgg is the critical-path analyzer's accumulator for one stage.
type stageAgg struct {
	count     int64
	total     sim.Time
	max       sim.Time
	durs      []sim.Time
	histogram [len(stageBucketsUs) + 1]int64
}

// stageBucketsUs are the fixed per-stage latency histogram bounds (µs).
var stageBucketsUs = [...]int64{
	10, 50, 100, 500, 1000, 5000, 10_000, 50_000, 100_000, 500_000,
	1_000_000, 5_000_000, 10_000_000,
}

func (l *SpanLog) aggregate() [numStages]stageAgg {
	var agg [numStages]stageAgg
	if l == nil {
		return agg
	}
	for _, seg := range l.Segments {
		if int(seg.Stage) >= int(numStages) {
			continue
		}
		a := &agg[seg.Stage]
		d := seg.Dur()
		a.count++
		a.total += d
		if d > a.max {
			a.max = d
		}
		a.durs = append(a.durs, d)
		us := int64(d / sim.Microsecond)
		placed := false
		for i, b := range stageBucketsUs {
			if us <= b {
				a.histogram[i]++
				placed = true
				break
			}
		}
		if !placed {
			a.histogram[len(stageBucketsUs)]++
		}
	}
	return agg
}

// quantile returns the q-quantile of ds (ds is sorted in place). The edge
// cases are pinned, not incidental: an empty slice yields 0, a single
// sample answers every q, q ≤ 0 is the minimum, and q ≥ 1 is the maximum —
// the index is clamped so no floating-point rounding of q can step outside
// the slice.
func quantile(ds []sim.Time, q float64) sim.Time {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	if q <= 0 {
		return ds[0]
	}
	if q >= 1 {
		return ds[len(ds)-1]
	}
	i := int(q * float64(len(ds)-1))
	if i < 0 {
		i = 0
	}
	if i > len(ds)-1 {
		i = len(ds) - 1
	}
	return ds[i]
}

// StageTable renders the critical-path analysis: one row per stage with
// count, total, mean, p50, p95, and max latency — the "where did the
// end-to-end latency go" table.
func (l *SpanLog) StageTable() string {
	agg := l.aggregate()
	var b strings.Builder
	b.WriteString("per-stage frame latency (simulated)\n")
	fmt.Fprintf(&b, "%-8s %9s %13s %11s %11s %11s %11s\n",
		"stage", "count", "total_ms", "mean_us", "p50_us", "p95_us", "max_us")
	for st := Stage(0); st < numStages; st++ {
		a := agg[st]
		if a.count == 0 {
			fmt.Fprintf(&b, "%-8s %9d %13.3f %11.1f %11.1f %11.1f %11.1f\n",
				st, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
			continue
		}
		mean := a.total / sim.Time(a.count)
		p50 := quantile(a.durs, 0.50)
		p95 := quantile(a.durs, 0.95)
		fmt.Fprintf(&b, "%-8s %9d %13.3f %11.1f %11.1f %11.1f %11.1f\n",
			st, a.count, a.total.Milliseconds(), mean.Microseconds(),
			p50.Microseconds(), p95.Microseconds(), a.max.Microseconds())
	}
	return b.String()
}

// StageHistograms renders the fixed-bucket latency distribution of each
// non-empty stage (cumulative counts, Prometheus-style le bounds in µs).
func (l *SpanLog) StageHistograms() string {
	agg := l.aggregate()
	var b strings.Builder
	for st := Stage(0); st < numStages; st++ {
		a := agg[st]
		if a.count == 0 {
			continue
		}
		fmt.Fprintf(&b, "stage %s latency histogram (n=%d)\n", st, a.count)
		var cum int64
		for i, bound := range stageBucketsUs {
			cum += a.histogram[i]
			fmt.Fprintf(&b, "  le %10dus %9d\n", bound, cum)
		}
		cum += a.histogram[len(stageBucketsUs)]
		fmt.Fprintf(&b, "  le       +Infus %9d\n", cum)
	}
	return b.String()
}

// Folded renders the span log in folded-stack format — one
// "frame;<stage>;<where> <µs>" line per distinct stack, sorted — directly
// consumable by flamegraph.pl and speedscope.
func (l *SpanLog) Folded() string {
	if l == nil {
		return ""
	}
	totals := make(map[string]int64)
	for _, seg := range l.Segments {
		totals["frame;"+seg.Stage.String()+";"+seg.Where] += int64(seg.Dur() / sim.Microsecond)
	}
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, totals[k])
	}
	return b.String()
}
