package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a", "b", "").Inc()
	r.Gauge("a", "b", "").Set(1)
	r.HistogramMetric("a", "h", "", nil).Observe(1)
	r.CounterFunc("a", "c", "", func() int64 { return 1 })
	r.GaugeFunc("a", "g", "", func() float64 { return 1 })
	r.Span(1, 0, StageDisk, "x", 0, 1)
	r.Snapshot(0)
	if r.PrometheusText() != "" || r.SnapshotsCSV() != "" {
		t.Error("nil registry exported something")
	}
	if r.Components() != nil || r.Snapshots() != 0 {
		t.Error("nil registry reported state")
	}
	var p *Profiler
	p.ObserveCycles("x", "y", 1, 10)
	if p.Total() != 0 {
		t.Error("nil profiler accumulated cycles")
	}
	var l *SpanLog
	if l.Len() != 0 || l.ChromeEvents() != nil {
		t.Error("nil span log reported segments")
	}
}

func TestMetricValuesAndSums(t *testing.T) {
	r := New()
	c := r.Counter("nic", "frames_total", "frames")
	c.Add(3)
	c.Inc()
	// Two lazy sources under the same key sum with the direct count.
	r.CounterFunc("nic", "frames_total", "frames", func() int64 { return 10 })
	r.CounterFunc("nic", "frames_total", "frames", func() int64 { return 100 })
	if got := c.Value(); got != 114 {
		t.Errorf("counter = %d, want 114", got)
	}
	g := r.Gauge("host", "util", "")
	g.Set(7.5)
	r.GaugeFunc("host", "util", "", func() float64 { return 2.5 })
	if got := g.Value(); got != 10 {
		t.Errorf("gauge = %v, want 10", got)
	}
	if got := r.Components(); len(got) != 2 || got[0] != "host" || got[1] != "nic" {
		t.Errorf("components = %v", got)
	}
}

func TestKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one key as counter then gauge did not panic")
		}
	}()
	r := New()
	r.Counter("a", "x", "")
	r.Gauge("a", "x", "")
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.HistogramMetric("dwcs", "delay_ms", "delay", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	text := r.PrometheusText()
	// Cumulative buckets: <=1: 2, <=10: 3, <=100: 4, +Inf: 5.
	for _, want := range []string{
		`repro_dwcs_delay_ms_bucket{component="dwcs",le="1"} 2`,
		`repro_dwcs_delay_ms_bucket{component="dwcs",le="10"} 3`,
		`repro_dwcs_delay_ms_bucket{component="dwcs",le="100"} 4`,
		`repro_dwcs_delay_ms_bucket{component="dwcs",le="+Inf"} 5`,
		`repro_dwcs_delay_ms_sum{component="dwcs"} 556.5`,
		`repro_dwcs_delay_ms_count{component="dwcs"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus text missing %q:\n%s", want, text)
		}
	}
	if _, _, err := CheckPrometheus(text); err != nil {
		t.Errorf("CheckPrometheus rejected our own output: %v", err)
	}
}

func TestPrometheusCanonicalOrder(t *testing.T) {
	r := New()
	// Register out of order; export must sort by (component, name).
	r.Counter("zeta", "b", "")
	r.Counter("alpha", "z", "")
	r.Counter("alpha", "a", "")
	text := r.PrometheusText()
	ia := strings.Index(text, "repro_alpha_a")
	iz := strings.Index(text, "repro_alpha_z")
	ib := strings.Index(text, "repro_zeta_b")
	if !(ia >= 0 && ia < iz && iz < ib) {
		t.Errorf("export order not canonical:\n%s", text)
	}
	families, samples, err := CheckPrometheus(text)
	if err != nil || families != 3 || samples != 3 {
		t.Errorf("CheckPrometheus = (%d, %d, %v), want (3, 3, nil)", families, samples, err)
	}
}

func TestCheckPrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"# TYPE repro_x badkind\n",
		"# TYPE repro_x counter\n# TYPE repro_x counter\n",
		"repro_x{component=\"a\"}\n",
		"repro_x{component=\"a\"} notanumber\n",
	} {
		if _, _, err := CheckPrometheus(bad); err == nil {
			t.Errorf("CheckPrometheus accepted %q", bad)
		}
	}
}

func TestSnapshotsCSV(t *testing.T) {
	eng := sim.NewEngine(1)
	r := New()
	c := r.Counter("nic", "frames_total", "")
	stop := r.SnapshotEvery(eng, sim.Second)
	eng.Every(400*sim.Millisecond, func() { c.Inc() })
	eng.RunUntil(3 * sim.Second)
	stop()
	if r.Snapshots() != 3 {
		t.Fatalf("snapshots = %d, want 3", r.Snapshots())
	}
	csv := r.SnapshotsCSV()
	// At each whole second the snapshot callback (registered first) runs
	// before that tick's increment.
	want := "time_ms,component,metric,value\n" +
		"1000.000,nic,frames_total,2\n" +
		"2000.000,nic,frames_total,4\n" +
		"3000.000,nic,frames_total,7\n"
	if csv != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", csv, want)
	}
}

func TestSpanStageTableAndFolded(t *testing.T) {
	l := &SpanLog{}
	l.Record(Segment{Stream: 1, Seq: 0, Stage: StageQueue, Where: "ni0/dwcs", Start: 10 * sim.Microsecond, End: 30 * sim.Microsecond})
	l.Record(Segment{Stream: 1, Seq: 1, Stage: StageQueue, Where: "ni0/dwcs", Start: 40 * sim.Microsecond, End: 100 * sim.Microsecond})
	l.Record(Segment{Stream: 2, Seq: 0, Stage: StageWire, Where: "client-a", Start: 5 * sim.Microsecond, End: 15 * sim.Microsecond})
	l.Record(Segment{Stream: 1, Seq: 2, Stage: StageQueue, Where: "ni0/dwcs", Start: 100 * sim.Microsecond, End: 90 * sim.Microsecond}) // dropped: End < Start
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3 (negative span must be dropped)", l.Len())
	}
	table := l.StageTable()
	if !strings.Contains(table, "queue") || !strings.Contains(table, "wire") {
		t.Errorf("stage table missing stages:\n%s", table)
	}
	// Folded stacks aggregate: equal stacks sum their µs (20+60 for queue).
	folded := l.Folded()
	for _, want := range []string{
		"frame;queue;ni0/dwcs 80\n",
		"frame;wire;client-a 10\n",
	} {
		if !strings.Contains(folded, want) {
			t.Errorf("folded output missing %q:\n%s", want, folded)
		}
	}
}

func TestChromeRoundTrip(t *testing.T) {
	l := &SpanLog{}
	l.Record(Segment{Stream: 2, Seq: 1, Stage: StageTx, Where: "ni0", Start: 100 * sim.Microsecond, End: 150 * sim.Microsecond})
	l.Record(Segment{Stream: 1, Seq: 0, Stage: StageDisk, Where: "prod0", Start: 0, End: 90 * sim.Microsecond})
	raw, err := MarshalChrome(l.ChromeEvents())
	if err != nil {
		t.Fatal(err)
	}
	events, err := UnmarshalChrome(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("round trip lost events: %d", len(events))
	}
	again, err := MarshalChrome(events)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again) {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", raw, again)
	}
	if events[0].Name != "disk" || events[0].TID != 1 || events[0].Dur != 90 {
		t.Errorf("first event wrong: %+v", events[0])
	}
}

func TestProfilerAttributionAndTable(t *testing.T) {
	model := cpu.I960RD()
	m := cpu.NewMeter(model)
	p := NewProfiler()
	m.Observe(p)

	prevC, prevO := m.SetContext("dwcs", "decision")
	m.Int(10)
	m.SetContext(prevC, prevO)
	m.ChargeCycles(100) // no context: unattributed

	// Reading Cycles flushes the pending delta to the observer, so the
	// profiled total reconciles exactly.
	cycles := m.Cycles()
	if p.Total() != cycles {
		t.Errorf("profiler total %d != meter cycles %d", p.Total(), cycles)
	}
	if p.Cycles("dwcs", "decision") == 0 {
		t.Error("dwcs/decision cycles not attributed")
	}
	if p.Cycles("unattributed", "other") != 100 {
		t.Errorf("unattributed = %d, want 100", p.Cycles("unattributed", "other"))
	}
	entries := p.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Cycles > entries[i-1].Cycles {
			t.Error("entries not sorted by descending cycles")
		}
	}
	table := p.Table(model)
	if !strings.Contains(table, model.Name) || !strings.Contains(table, "total") {
		t.Errorf("table missing header/total:\n%s", table)
	}
	if !strings.Contains(p.Table(nil), "cycle attribution\n") {
		t.Error("model-less table missing title")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5: "1.5",
		0:   "0",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if formatFloat(math.Inf(1)) != "+Inf" || formatFloat(math.Inf(-1)) != "-Inf" {
		t.Error("infinities not spelled out")
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Error("NaN not spelled out")
	}
}

// TestJitterBucketBounds pins the fixed jitter bucket set: strictly
// ascending bounds, sub-millisecond resolution at the low end, and samples
// landing in the bucket whose bound is the first not below them — the
// contract the receiver's inter-arrival histograms and the soak bench's
// session reports rely on.
func TestJitterBucketBounds(t *testing.T) {
	want := []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	if len(JitterBucketsMs) != len(want) {
		t.Fatalf("JitterBucketsMs has %d bounds, want %d", len(JitterBucketsMs), len(want))
	}
	for i, b := range JitterBucketsMs {
		if b != want[i] {
			t.Fatalf("JitterBucketsMs[%d] = %v, want %v", i, b, want[i])
		}
		if i > 0 && b <= JitterBucketsMs[i-1] {
			t.Fatalf("JitterBucketsMs not strictly ascending at %d: %v", i, JitterBucketsMs)
		}
	}

	reg := New()
	h := reg.HistogramMetric("recv", "interarrival_ms", "gap between frames", JitterBucketsMs)
	if got := h.Bounds(); len(got) != len(want) || got[0] != 0.1 {
		t.Fatalf("Bounds() = %v, want the jitter set", got)
	}
	for _, v := range []float64{0.05, 0.3, 4.9, 999, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, wantSum := h.Sum(), 0.05+0.3+4.9+999+5000; got != wantSum {
		t.Fatalf("Sum = %v, want %v", got, wantSum)
	}

	// The Prometheus rendering exposes cumulative bucket counts at exactly
	// the registered bounds: 0.05 ≤ 0.1, 0.3 ≤ 0.5, 4.9 ≤ 5, 999 ≤ 1000, and
	// 5000 overflows into +Inf only.
	text := reg.PrometheusText()
	for _, line := range []string{
		`repro_recv_interarrival_ms_bucket{component="recv",le="0.1"} 1`,
		`repro_recv_interarrival_ms_bucket{component="recv",le="0.5"} 2`,
		`repro_recv_interarrival_ms_bucket{component="recv",le="5"} 3`,
		`repro_recv_interarrival_ms_bucket{component="recv",le="1000"} 4`,
		`repro_recv_interarrival_ms_bucket{component="recv",le="+Inf"} 5`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
	if _, _, err := CheckPrometheus(text); err != nil {
		t.Fatalf("jitter histogram exposition malformed: %v", err)
	}

	// A nil histogram handle is inert like every other telemetry handle.
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Bounds() != nil {
		t.Fatal("nil histogram not inert")
	}
}
