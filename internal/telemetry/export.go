package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusText renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Metric names are
// repro_<component>_<name>; the component also appears as a label so dumps
// from several runs can be merged and still grouped. Output order is
// canonical (component, name) regardless of registration order.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, m := range r.sorted() {
		full := "repro_" + m.component + "_" + m.name
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", full, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", full, m.kind)
		label := `component="` + m.component + `"`
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s{%s} %d\n", full, label, m.counterValue())
		case kindGauge:
			fmt.Fprintf(&b, "%s{%s} %s\n", full, label, formatFloat(m.gaugeValue()))
		case kindHistogram:
			var cum int64
			for i, bound := range m.bounds {
				cum += m.buckets[i]
				fmt.Fprintf(&b, "%s_bucket{%s,le=%q} %d\n", full, label, formatFloat(bound), cum)
			}
			cum += m.buckets[len(m.bounds)]
			fmt.Fprintf(&b, "%s_bucket{%s,le=\"+Inf\"} %d\n", full, label, cum)
			fmt.Fprintf(&b, "%s_sum{%s} %s\n", full, label, formatFloat(m.hSum))
			fmt.Fprintf(&b, "%s_count{%s} %d\n", full, label, m.hCount)
		}
	}
	return b.String()
}

// CheckPrometheus is a minimal parser for the text exposition format used by
// CI to verify dumps are well formed. It returns the number of metric
// families and samples, or an error naming the first malformed line.
func CheckPrometheus(text string) (families, samples int, err error) {
	seenType := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return 0, 0, fmt.Errorf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, 0, fmt.Errorf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			if seenType[parts[2]] {
				return 0, 0, fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, parts[2])
			}
			seenType[parts[2]] = true
			families++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// sample line: name{labels} value  |  name value
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.IndexByte(rest, '}')
			if j < i {
				return 0, 0, fmt.Errorf("line %d: unbalanced braces in %q", ln+1, line)
			}
			rest = rest[:i] + rest[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return 0, 0, fmt.Errorf("line %d: sample missing value in %q", ln+1, line)
		}
		if _, perr := strconv.ParseFloat(fields[1], 64); perr != nil {
			if fields[1] != "+Inf" && fields[1] != "-Inf" && fields[1] != "NaN" {
				return 0, 0, fmt.Errorf("line %d: bad sample value %q", ln+1, fields[1])
			}
		}
		samples++
	}
	return families, samples, nil
}

// ---------------------------------------------------------------------------
// CSV snapshot series
// ---------------------------------------------------------------------------

// SnapshotsCSV renders the snapshot time series as CSV with header
// time_ms,component,metric,value — one row per metric per snapshot.
func (r *Registry) SnapshotsCSV() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("time_ms,component,metric,value\n")
	for _, s := range r.snaps {
		for _, v := range s.values {
			fmt.Fprintf(&b, "%.3f,%s,%s,%s\n", s.at.Milliseconds(), v.component, v.name, formatFloat(v.value))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON (Perfetto-loadable)
// ---------------------------------------------------------------------------

// ChromeArgs carries the frame identity on each trace event.
type ChromeArgs struct {
	Stream int    `json:"stream"`
	Seq    int64  `json:"seq"`
	Epoch  int    `json:"epoch,omitempty"`
	Where  string `json:"where"`
}

// ChromeEvent is one complete ("X" phase) trace event in the Chrome
// trace-event format. Timestamps and durations are microseconds.
type ChromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	Args ChromeArgs `json:"args"`
}

// ChromeTrace is the JSON-object container form of the trace-event format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvents converts the span log to trace events: one complete event per
// segment, pid 1, tid = stream id, name = stage. Order is the log's
// canonical segment order.
func (l *SpanLog) ChromeEvents() []ChromeEvent {
	if l == nil {
		return nil
	}
	segs := l.sorted()
	out := make([]ChromeEvent, 0, len(segs))
	for _, s := range segs {
		out = append(out, ChromeEvent{
			Name: s.Stage.String(),
			Cat:  "frame",
			Ph:   "X",
			TS:   float64(s.Start) / float64(sim.Microsecond),
			Dur:  float64(s.Dur()) / float64(sim.Microsecond),
			PID:  1,
			TID:  s.Stream,
			Args: ChromeArgs{Stream: s.Stream, Seq: s.Seq, Epoch: s.Epoch, Where: s.Where},
		})
	}
	return out
}

// MarshalChrome renders trace events as the canonical JSON byte stream:
// events sorted canonically, encoding/json field order, trailing newline.
// Both the exporter and tracetool use this one writer, so a dump that
// round-trips through UnmarshalChrome re-marshals byte-identically.
func MarshalChrome(events []ChromeEvent) ([]byte, error) {
	sorted := append([]ChromeEvent(nil), events...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Args.Seq != b.Args.Seq {
			return a.Args.Seq < b.Args.Seq
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Args.Where < b.Args.Where
	})
	raw, err := json.Marshal(ChromeTrace{TraceEvents: sorted, DisplayTimeUnit: "ms"})
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// UnmarshalChrome parses a trace written by MarshalChrome (or any
// JSON-object-form Chrome trace limited to the fields above).
func UnmarshalChrome(data []byte) ([]ChromeEvent, error) {
	var t ChromeTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	return t.TraceEvents, nil
}
