package telemetry

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// The quantile edge cases are pinned behavior, not incidental: the SLO
// monitor and the run-diff engine both consume StageTable output, so an
// empty log, a single sample, and the q=1.0 boundary must all render
// deterministically without panics.

func TestQuantileEdgeCases(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty slice: got %v, want 0", got)
	}
	one := []sim.Time{42}
	for _, q := range []float64{-1, 0, 0.5, 0.95, 1.0, 2.0} {
		if got := quantile(one, q); got != 42 {
			t.Fatalf("single sample q=%v: got %v, want 42", q, got)
		}
	}
	ds := []sim.Time{30, 10, 20, 50, 40} // unsorted on purpose
	if got := quantile(ds, 0); got != 10 {
		t.Fatalf("q=0: got %v, want min 10", got)
	}
	if got := quantile(ds, 1.0); got != 50 {
		t.Fatalf("q=1.0: got %v, want max 50", got)
	}
	if got := quantile(ds, 1.5); got != 50 {
		t.Fatalf("q>1 clamps: got %v, want 50", got)
	}
	if got := quantile(ds, -0.5); got != 10 {
		t.Fatalf("q<0 clamps: got %v, want 10", got)
	}
	if got := quantile(ds, 0.5); got != 30 {
		t.Fatalf("q=0.5: got %v, want 30", got)
	}
}

func TestStageTableEmptyLog(t *testing.T) {
	var l SpanLog
	table := l.StageTable()
	if !strings.Contains(table, "per-stage frame latency") {
		t.Fatalf("empty log table missing header:\n%s", table)
	}
	// Every stage renders an all-zero row; nothing panics, nothing is NaN.
	for st := Stage(0); st < numStages; st++ {
		if !strings.Contains(table, st.String()) {
			t.Fatalf("empty log table missing stage %v:\n%s", st, table)
		}
	}
	if strings.Contains(table, "NaN") {
		t.Fatalf("empty log table contains NaN:\n%s", table)
	}
	var nilLog *SpanLog
	if got := nilLog.StageTable(); !strings.Contains(got, "per-stage") {
		t.Fatalf("nil log StageTable: %q", got)
	}
}

func TestStageTableSingleSample(t *testing.T) {
	var l SpanLog
	l.Record(Segment{Stream: 1, Seq: 0, Stage: StageQueue, Where: "x",
		Start: 0, End: 7 * sim.Millisecond})
	table := l.StageTable()
	// One sample answers mean, p50, p95, and max identically.
	if !strings.Contains(table, "7000.0      7000.0      7000.0      7000.0") {
		t.Fatalf("single-sample row should repeat 7000 µs across mean/p50/p95/max:\n%s", table)
	}
}

func TestSpanLogObserverSeesAcceptedSegmentsOnly(t *testing.T) {
	var seen []Segment
	l := &SpanLog{Observer: func(s Segment) { seen = append(seen, s) }}
	l.Record(Segment{Stream: 1, Stage: StageDisk, Start: 10, End: 5}) // negative: rejected
	l.Record(Segment{Stream: 2, Stage: StageWire, Start: 5, End: 9})
	if len(seen) != 1 || seen[0].Stream != 2 {
		t.Fatalf("observer saw %v, want only the accepted stream-2 segment", seen)
	}
}

func TestRegistryOnSnapshotAndValuesText(t *testing.T) {
	r := New()
	r.Counter("a", "c", "").Add(3)
	r.Gauge("b", "g", "").Set(1.5)
	var at sim.Time
	var n int
	r.OnSnapshot = func(t sim.Time, values int) { at, n = t, values }
	r.Snapshot(7 * sim.Second)
	if at != 7*sim.Second || n != 2 {
		t.Fatalf("OnSnapshot got (%v, %d), want (7s, 2)", at, n)
	}
	want := "a.c 3\nb.g 1.5\n"
	if got := r.ValuesText(); got != want {
		t.Fatalf("ValuesText = %q, want %q", got, want)
	}
	var nilReg *Registry
	if nilReg.ValuesText() != "" {
		t.Fatal("nil registry ValuesText should be empty")
	}
}
