package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
)

// ProfileEntry is the accumulated cycle cost of one (component, operation)
// pair.
type ProfileEntry struct {
	Component, Operation string
	Ops                  int64 // charged operations (0 for pure raw-cycle charges)
	Cycles               int64
}

// Profiler attributes every cycle a cpu.Meter charges to the (component,
// operation) context active at charge time — the "where did the 65 µs go"
// view of the paper's microbenchmark totals. Attach with
// meter.Observe(reg.Prof); code sets context via meter.SetContext. A nil
// *Profiler is valid and records nothing.
type Profiler struct {
	byKey map[string]*ProfileEntry
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{byKey: make(map[string]*ProfileEntry)}
}

// ObserveCycles implements cpu.CycleObserver. Charges arriving with no
// context are pooled under ("unattributed", "other") so the profiled total
// always reconciles exactly with the meter's cycle count.
func (p *Profiler) ObserveCycles(component, operation string, ops, cycles int64) {
	if p == nil {
		return
	}
	if component == "" {
		component = "unattributed"
	}
	if operation == "" {
		operation = "other"
	}
	key := component + "\x00" + operation
	e, ok := p.byKey[key]
	if !ok {
		e = &ProfileEntry{Component: component, Operation: operation}
		p.byKey[key] = e
	}
	e.Ops += ops
	e.Cycles += cycles
}

// Entries returns the attribution table sorted by descending cycles, ties
// by (component, operation).
func (p *Profiler) Entries() []ProfileEntry {
	if p == nil {
		return nil
	}
	out := make([]ProfileEntry, 0, len(p.byKey))
	for _, e := range p.byKey {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Operation < out[j].Operation
	})
	return out
}

// Cycles returns the accumulated cycles of one (component, operation) pair.
func (p *Profiler) Cycles(component, operation string) int64 {
	if p == nil {
		return 0
	}
	if e, ok := p.byKey[component+"\x00"+operation]; ok {
		return e.Cycles
	}
	return 0
}

// Total returns all attributed cycles. When the profiler observed every
// charge on a meter, Total equals the meter's cycle count exactly.
func (p *Profiler) Total() int64 {
	var t int64
	if p == nil {
		return 0
	}
	for _, e := range p.byKey {
		t += e.Cycles
	}
	return t
}

// Table renders the attribution table. model, when non-nil, adds a µs
// column at that processor's clock.
func (p *Profiler) Table(model *cpu.Model) string {
	var b strings.Builder
	title := "cycle attribution"
	if model != nil {
		title += " (" + model.Name + ")"
	}
	b.WriteString(title + "\n")
	if model != nil {
		fmt.Fprintf(&b, "%-14s %-12s %12s %14s %12s %8s\n",
			"component", "operation", "ops", "cycles", "us", "share")
	} else {
		fmt.Fprintf(&b, "%-14s %-12s %12s %14s %8s\n",
			"component", "operation", "ops", "cycles", "share")
	}
	total := p.Total()
	for _, e := range p.Entries() {
		share := 0.0
		if total > 0 {
			share = 100 * float64(e.Cycles) / float64(total)
		}
		if model != nil {
			fmt.Fprintf(&b, "%-14s %-12s %12d %14d %12.2f %7.1f%%\n",
				e.Component, e.Operation, e.Ops, e.Cycles,
				model.Duration(e.Cycles).Microseconds(), share)
		} else {
			fmt.Fprintf(&b, "%-14s %-12s %12d %14d %7.1f%%\n",
				e.Component, e.Operation, e.Ops, e.Cycles, share)
		}
	}
	if model != nil {
		fmt.Fprintf(&b, "%-14s %-12s %12s %14d %12.2f %7.1f%%\n",
			"total", "", "", total, model.Duration(total).Microseconds(), 100.0)
	} else {
		fmt.Fprintf(&b, "%-14s %-12s %12s %14d %7.1f%%\n", "total", "", "", total, 100.0)
	}
	return b.String()
}
