// Package telemetry is the reproduction's deterministic observability
// subsystem — the instrumentation the paper "built ... to measure desired
// performance parameters at the scheduler card or at the remote client end"
// (§4.1), grown into three pillars:
//
//   - Causal spans (span.go): per-frame simulated-time segments from disk
//     read through bus DMA, scheduler queue, transmit stack, wire, and
//     client playout, aggregated into per-stage latency tables and
//     folded-stack output for flamegraph tools.
//   - A metrics registry (this file): counters, gauges, and fixed-bucket
//     histograms registered by component, snapshotted at simulated-time
//     intervals, and exported as Prometheus text and CSV (export.go).
//   - A cycle-cost profiler (profile.go): a cpu.CycleObserver that
//     attributes every charged processor cycle to a (component, operation)
//     pair, reconciling against the paper's Table 2/3 microbenchmarks.
//
// Everything is driven by simulated time and plain counters — no wall
// clock, no goroutines, no map-order dependence in any export — so every
// artifact is byte-identical across runs and worker counts. A nil *Registry
// is valid everywhere and records nothing, so instrumented substrates call
// it unconditionally (the same convention as a nil *cpu.Meter or a nil
// *trace.Log); with telemetry off the cost is one nil check per event.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series. Direct values (counter/gauge/
// buckets) come from handle method calls on the hot path; fns are lazy
// sources evaluated at snapshot/export time, so existing substrate counters
// can be surfaced without touching their update paths. Multiple fns under
// one (component, name) sum — several cards or segments aggregate into one
// component-level series.
type metric struct {
	kind            metricKind
	component, name string
	help            string

	counter    int64
	counterFns []func() int64

	gauge    float64
	gaugeFns []func() float64

	bounds  []float64 // histogram upper bounds, ascending
	buckets []int64   // len(bounds)+1; last is +Inf overflow
	hSum    float64
	hCount  int64
}

func (m *metric) counterValue() int64 {
	v := m.counter
	for _, fn := range m.counterFns {
		v += fn()
	}
	return v
}

func (m *metric) gaugeValue() float64 {
	v := m.gauge
	for _, fn := range m.gaugeFns {
		v += fn()
	}
	return v
}

// Counter is a monotonically increasing metric handle. A nil *Counter is
// valid and discards updates.
type Counter struct{ m *metric }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.m.counter += n
	}
}

// Value returns the current count (direct plus lazy sources).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.m.counterValue()
}

// Gauge is a point-in-time value handle. A nil *Gauge is valid.
type Gauge struct{ m *metric }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.m.gauge = v
	}
}

// Value returns the current value (direct plus lazy sources).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.m.gaugeValue()
}

// Histogram is a fixed-bucket distribution handle. Bucket boundaries are
// set at registration and never change, so exports are deterministic. A nil
// *Histogram is valid.
type Histogram struct{ m *metric }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	m := h.m
	m.hCount++
	m.hSum += v
	for i, b := range m.bounds {
		if v <= b {
			m.buckets[i]++
			return
		}
	}
	m.buckets[len(m.bounds)]++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.m.hCount
}

// Sum returns the running sum of observed samples; Sum/Count is the mean,
// which is how the real daemon's receiver reports mean inter-arrival gap
// from the same fixed-bucket histogram it exports.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.m.hSum
}

// Bounds returns the histogram's fixed upper bucket bounds (nil-safe).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.m.bounds
}

// LatencyBucketsMs is the shared fixed bucket set (milliseconds) for
// queueing and delivery latency histograms.
var LatencyBucketsMs = []float64{
	0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000,
}

// JitterBucketsMs is the shared fixed bucket set (milliseconds) for
// inter-arrival jitter histograms: finer than LatencyBucketsMs below 1 ms
// because a paced media stream's arrival gaps cluster around its period,
// and the interesting signal is sub-period dispersion.
var JitterBucketsMs = []float64{
	0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
}

// snapValue is one metric's value captured by a snapshot.
type snapValue struct {
	component, name string
	value           float64
}

// snapshot is the registry state at one simulated instant.
type snapshot struct {
	at     sim.Time
	values []snapValue
}

// Registry is the root of the telemetry subsystem: the metric store plus
// the span log and cycle profiler. Construct with New; a nil *Registry is
// valid and inert.
type Registry struct {
	// Spans is the causal span log.
	Spans *SpanLog
	// Prof is the cycle-cost profiler; attach it to a cpu.Meter with
	// meter.Observe(reg.Prof).
	Prof *Profiler

	// OnSnapshot, when set, observes every Snapshot call with the capture
	// time and how many values were recorded — the flight recorder's tap.
	OnSnapshot func(at sim.Time, values int)

	// EpochOf, when set, resolves the serving epoch of a stream at span
	// recording time — the hook the fleet wires so spans recorded before and
	// after a live migration stay one stitchable identity. It must return -1
	// for streams whose placement this substrate does not know (the stitcher
	// then assigns the segment by frame cursor). Unset means epoch 0: a
	// single-card run has exactly one placement.
	EpochOf func(stream int) int

	metrics []*metric // registration order
	byKey   map[string]*metric
	snaps   []snapshot
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{
		Spans: &SpanLog{},
		Prof:  NewProfiler(),
		byKey: make(map[string]*metric),
	}
}

// lookup finds or creates the metric for (component, name). Re-registering
// an existing key returns the same metric, so several instances of a
// substrate share one aggregated series; a kind clash is a programming
// error.
func (r *Registry) lookup(kind metricKind, component, name, help string) *metric {
	key := component + "\x00" + name
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s/%s registered as %v and %v", component, name, m.kind, kind))
		}
		return m
	}
	m := &metric{kind: kind, component: component, name: name, help: help}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(component, name, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{r.lookup(kindCounter, component, name, help)}
}

// CounterFunc registers a lazy counter source; multiple sources under one
// (component, name) sum at read time.
func (r *Registry) CounterFunc(component, name, help string, fn func() int64) {
	if r == nil {
		return
	}
	m := r.lookup(kindCounter, component, name, help)
	m.counterFns = append(m.counterFns, fn)
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(component, name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{r.lookup(kindGauge, component, name, help)}
}

// GaugeFunc registers a lazy gauge source; multiple sources sum.
func (r *Registry) GaugeFunc(component, name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.lookup(kindGauge, component, name, help)
	m.gaugeFns = append(m.gaugeFns, fn)
}

// HistogramMetric registers (or finds) a histogram with the given fixed
// ascending bucket bounds (nil uses LatencyBucketsMs).
func (r *Registry) HistogramMetric(component, name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(kindHistogram, component, name, help)
	if m.bounds == nil {
		if bounds == nil {
			bounds = LatencyBucketsMs
		}
		m.bounds = bounds
		m.buckets = make([]int64, len(bounds)+1)
	}
	return &Histogram{m}
}

// Span records one causal span segment (nil-safe sugar for Spans.Record).
func (r *Registry) Span(stream int, seq int64, stage Stage, where string, start, end sim.Time) {
	if r == nil {
		return
	}
	epoch := 0
	if r.EpochOf != nil {
		epoch = r.EpochOf(stream)
	}
	r.Spans.Record(Segment{Stream: stream, Seq: seq, Epoch: epoch, Stage: stage, Where: where, Start: start, End: end})
}

// sorted returns the metrics ordered by (component, name) — the canonical
// export order, independent of registration order.
func (r *Registry) sorted() []*metric {
	out := append([]*metric(nil), r.metrics...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].component != out[j].component {
			return out[i].component < out[j].component
		}
		return out[i].name < out[j].name
	})
	return out
}

// Components returns the distinct instrumented component names, sorted.
func (r *Registry) Components() []string {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.metrics {
		if !seen[m.component] {
			seen[m.component] = true
			out = append(out, m.component)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot captures every metric's current value at simulated time `at`,
// appending one row set to the time-series dump (SnapshotsCSV). Histograms
// contribute their running count and sum.
func (r *Registry) Snapshot(at sim.Time) {
	if r == nil {
		return
	}
	s := snapshot{at: at}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			s.values = append(s.values, snapValue{m.component, m.name, float64(m.counterValue())})
		case kindGauge:
			s.values = append(s.values, snapValue{m.component, m.name, m.gaugeValue()})
		case kindHistogram:
			s.values = append(s.values, snapValue{m.component, m.name + "_count", float64(m.hCount)})
			s.values = append(s.values, snapValue{m.component, m.name + "_sum", m.hSum})
		}
	}
	r.snaps = append(r.snaps, s)
	if r.OnSnapshot != nil {
		r.OnSnapshot(at, len(s.values))
	}
}

// ValuesText renders every metric's current value as compact sorted
// "component.name value" lines — the registry snapshot an incident dump
// embeds. Histograms contribute their count and sum, like SnapshotsCSV.
func (r *Registry) ValuesText() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s.%s %d\n", m.component, m.name, m.counterValue())
		case kindGauge:
			fmt.Fprintf(&b, "%s.%s %s\n", m.component, m.name, formatFloat(m.gaugeValue()))
		case kindHistogram:
			fmt.Fprintf(&b, "%s.%s_count %d\n", m.component, m.name, m.hCount)
			fmt.Fprintf(&b, "%s.%s_sum %s\n", m.component, m.name, formatFloat(m.hSum))
		}
	}
	return b.String()
}

// SnapshotEvery snapshots the registry once per period of simulated time.
func (r *Registry) SnapshotEvery(eng *sim.Engine, period sim.Time) (stop func()) {
	if r == nil {
		return func() {}
	}
	return eng.Every(period, func() { r.Snapshot(eng.Now()) })
}

// Snapshots reports how many snapshots have been taken.
func (r *Registry) Snapshots() int {
	if r == nil {
		return 0
	}
	return len(r.snaps)
}
