package disk

import (
	"fmt"

	"repro/internal/sim"
)

// Stripe reads across several spindles RAID-0 style. The paper points at
// the Tiger fileserver's "stripe-based disk and machine scheduling" (§5)
// and the I2O consortium's RAID storage subsystems as the scaling path for
// stream sourcing; Stripe is that substrate: consecutive stripe units live
// on consecutive disks, and a logical read fans out to every spindle it
// touches in parallel.
type Stripe struct {
	disks []*Disk
	unit  int64

	// Reads counts logical reads served.
	Reads int64
}

// NewStripe stripes across disks with the given unit (bytes per disk per
// stripe row).
func NewStripe(disks []*Disk, unit int64) *Stripe {
	if len(disks) == 0 {
		panic("disk: stripe needs at least one disk")
	}
	if unit <= 0 {
		panic(fmt.Sprintf("disk: bad stripe unit %d", unit))
	}
	return &Stripe{disks: disks, unit: unit}
}

// Width returns the number of spindles.
func (s *Stripe) Width() int { return len(s.disks) }

// Read performs a logical read of n bytes at off, invoking done when every
// covered spindle has delivered its part. Sub-reads proceed in parallel on
// their respective disks.
func (s *Stripe) Read(off, n int64, done func()) {
	if n <= 0 {
		if done != nil {
			done()
		}
		return
	}
	s.Reads++
	remaining := 0
	type span struct {
		disk     int
		diskOff  int64
		diskSpan int64
	}
	var spans []span
	for cur := off; cur < off+n; {
		row := cur / (s.unit * int64(len(s.disks)))
		within := cur % (s.unit * int64(len(s.disks)))
		d := int(within / s.unit)
		uOff := within % s.unit
		take := s.unit - uOff
		if max := off + n - cur; take > max {
			take = max
		}
		spans = append(spans, span{
			disk:     d,
			diskOff:  row*s.unit + uOff,
			diskSpan: take,
		})
		cur += take
	}
	remaining = len(spans)
	for _, sp := range spans {
		s.disks[sp.disk].Read(sp.diskOff, sp.diskSpan, func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}

// StripedFS adapts a Stripe to the FS interface (raw striped volume, no
// filesystem metadata — the Tiger-style layout where frame locations are
// known by schedule).
type StripedFS struct {
	Stripe *Stripe
}

// Read implements FS.
func (f *StripedFS) Read(off, n int64, done func()) { f.Stripe.Read(off, n, done) }

// Name implements FS.
func (f *StripedFS) Name() string {
	return fmt.Sprintf("stripe%d", f.Stripe.Width())
}

// Degrade multiplies every subsequent access time of d by factor —
// modelling a disk that has started remapping sectors or retrying reads
// (fault injection for robustness tests). factor 1 restores health.
func (d *Disk) Degrade(factor int64) {
	if factor < 1 {
		panic(fmt.Sprintf("disk: bad degrade factor %d", factor))
	}
	d.degrade = factor
}

// degradeTime applies the current degradation factor.
func (d *Disk) degradeTime(t sim.Time) sim.Time {
	if d.degrade > 1 {
		return t * sim.Time(d.degrade)
	}
	return t
}
