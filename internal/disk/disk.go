// Package disk models the SCSI disks attached to the I2O cards and to the
// host disk controller, plus the two filesystems the paper measures through:
// the VxWorks dos-based filesystem (dosFs) and the Solaris UFS.
//
// Calibration anchors (Table 4):
//
//   - A single 1000-byte frame read through dosFs with the FAT cached costs
//     ≈ 4.2 ms — dominated by rotational latency, because the driver issues
//     one synchronous access per frame with no read-ahead (the paper's
//     VxWorks driver even runs with the data cache disabled).
//   - The same file read through UFS costs ≈ 0.1–0.3 ms per frame on
//     average: UFS's 8 KB logical blocks, buffer cache, and prefetching
//     serve 7 of 8 frames from memory.
//   - dosFs mounted on the host without FAT caching pays a periodic
//     metadata detour that roughly doubles the effective per-frame cost,
//     producing the 8 ms host-path figure.
package disk

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Params describes a disk mechanism.
type Params struct {
	Name        string
	RPM         int64    // spindle speed
	TransferBps int64    // media transfer rate, bytes/second
	CmdOverhead sim.Time // controller + SCSI command processing
	TrackSeek   sim.Time // short (near) seek
	AvgSeek     sim.Time // long (random) seek
	SameCyl     int64    // |Δoffset| below this stays on-cylinder (no seek)
	NearBytes   int64    // |Δoffset| below this counts as a near seek
}

// DefaultSCSI returns the late-90s SCSI disk used for calibration:
// 7200 RPM (8.33 ms/rev, 4.17 ms average rotational latency), 10 MB/s media
// rate.
func DefaultSCSI(name string) Params {
	return Params{
		Name:        name,
		RPM:         7200,
		TransferBps: 10_000_000,
		CmdOverhead: 30 * sim.Microsecond,
		TrackSeek:   1 * sim.Millisecond,
		AvgSeek:     8500 * sim.Microsecond,
		SameCyl:     64 << 10,
		NearBytes:   1 << 20,
	}
}

// RotLatency returns the average rotational latency (half a revolution).
func (p Params) RotLatency() sim.Time {
	return sim.Time(int64(sim.Second) * 30 / p.RPM) // 60s/RPM / 2
}

// Stats counts disk activity.
type Stats struct {
	Reads     int64
	BytesRead int64
	SeekTime  sim.Time
}

// Disk is one spindle: a FIFO resource plus a head-position model. Requests
// are synchronous at the modelled driver level — exactly one outstanding
// operation, like the paper's polled VxWorks driver.
type Disk struct {
	eng     *sim.Engine
	p       Params
	res     *sim.Resource
	head    int64 // byte offset just past the last access
	degrade int64 // access-time multiplier set by Degrade (0/1 = healthy)

	// Stats accumulates access counters.
	Stats Stats
}

// New returns a disk with its head at offset 0.
func New(eng *sim.Engine, p Params) *Disk {
	return &Disk{eng: eng, p: p, res: sim.NewResource(eng, p.Name)}
}

// Params returns the mechanism parameters.
func (d *Disk) Params() Params { return d.p }

// Instrument exports the spindle's access counters under the disk telemetry
// component. Several disks registered on one registry sum into one
// component-level series.
func (d *Disk) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("disk", "reads_total",
		"disk read operations", func() int64 { return d.Stats.Reads })
	reg.CounterFunc("disk", "bytes_read_total",
		"bytes read from disk", func() int64 { return d.Stats.BytesRead })
	reg.GaugeFunc("disk", "seek_time_ms",
		"accumulated seek time (milliseconds)", func() float64 { return d.Stats.SeekTime.Milliseconds() })
}

// AccessTime returns the service time for reading n bytes at off given the
// current head position. Every access pays average rotational latency: the
// modelled driver has no read-ahead, so by the time the next request
// arrives the target sector has rotated past (this is what makes a
// sequential 1000-byte frame read cost ≈ 4.2 ms, matching Table 4).
func (d *Disk) AccessTime(off, n int64) sim.Time {
	if n < 0 || off < 0 {
		panic(fmt.Sprintf("disk %s: bad access off=%d n=%d", d.p.Name, off, n))
	}
	t := d.p.CmdOverhead + d.p.RotLatency()
	t += sim.Time(n * int64(sim.Second) / d.p.TransferBps)
	delta := off - d.head
	if delta < 0 {
		delta = -delta
	}
	switch {
	case delta <= d.p.SameCyl:
		// still on (or adjacent to) the current cylinder: no seek
	case delta <= d.p.NearBytes:
		t += d.p.TrackSeek
	default:
		t += d.p.AvgSeek
	}
	return t
}

// Read performs a read of n bytes at offset off and invokes done when the
// data is in the requester's buffer. Requests queue FIFO at the spindle.
func (d *Disk) Read(off, n int64, done func()) {
	d.res.Acquire(func() {
		t := d.degradeTime(d.AccessTime(off, n))
		delta := off - d.head
		if delta < 0 {
			delta = -delta
		}
		if delta > d.p.SameCyl {
			if delta <= d.p.NearBytes {
				d.Stats.SeekTime += d.p.TrackSeek
			} else {
				d.Stats.SeekTime += d.p.AvgSeek
			}
		}
		d.head = off + n
		d.Stats.Reads++
		d.Stats.BytesRead += n
		d.eng.After(t, func() {
			d.res.Release()
			if done != nil {
				done()
			}
		})
	})
}

// Utilization reports the fraction of time the spindle was busy.
func (d *Disk) Utilization() float64 { return d.res.Utilization() }

// QueueLen returns the number of requests waiting for the mechanism — a
// prefetch-pressure input for overload control.
func (d *Disk) QueueLen() int { return d.res.QueueLen() }

// FS is a filesystem through which frames are read.
type FS interface {
	// Read delivers n bytes at offset off of the (single, implicit) media
	// file, invoking done when the bytes are available to the caller.
	Read(off, n int64, done func())
	// Name identifies the filesystem for reports.
	Name() string
}

// DOSFS models the VxWorks dos-based filesystem. With FATCached (the native
// VxWorks configuration on the NI) every read is a single synchronous disk
// access. Without it (the paper's Solaris mount of the VxWorks filesystem)
// every MetaEvery-th read detours to the FAT region first, destroying
// sequentiality for the following data access.
type DOSFS struct {
	Disk      *Disk
	FATCached bool
	MetaEvery int64 // with FATCached=false: FAT detour every k reads (k ≥ 1)
	FATOffset int64 // byte offset of the FAT region

	reads int64
}

// NewDOSFS returns a dosFs over d with the FAT cached (the NI-resident
// configuration).
func NewDOSFS(d *Disk) *DOSFS {
	// The FAT lives at the front of the partition, a short seek away from
	// the small media file used in the experiments.
	return &DOSFS{Disk: d, FATCached: true, MetaEvery: 2, FATOffset: 0}
}

// Name implements FS.
func (f *DOSFS) Name() string {
	if f.FATCached {
		return "dosFs"
	}
	return "dosFs-nofatcache"
}

// Read implements FS.
func (f *DOSFS) Read(off, n int64, done func()) {
	f.reads++
	if !f.FATCached && f.MetaEvery > 0 && f.reads%f.MetaEvery == 1 {
		// FAT detour: read a FAT sector far from the data, then the data.
		f.Disk.Read(f.FATOffset, 512, func() {
			f.Disk.Read(off, n, done)
		})
		return
	}
	f.Disk.Read(off, n, done)
}

// UFS models the Solaris UFS: 8 KB logical blocks, a buffer cache, and
// one-block read-ahead. Sequential small reads mostly hit the cache.
type UFS struct {
	Disk      *Disk
	BlockSize int64
	HitCost   sim.Time // buffer-cache lookup + copy-out per read
	Prefetch  bool
	MaxBlocks int // cache capacity in blocks (FIFO eviction)

	eng     *sim.Engine
	cache   map[int64]*blockState
	order   []int64 // FIFO eviction order of ready blocks
	Hits    int64
	Misses  int64
	demands int64
}

type blockState struct {
	ready   bool
	waiters []func()
}

// NewUFS returns a UFS over d with the paper's 8 KB logical block size,
// prefetch enabled, and a 256-block cache.
func NewUFS(eng *sim.Engine, d *Disk) *UFS {
	return &UFS{
		Disk:      d,
		BlockSize: 8 << 10,
		HitCost:   60 * sim.Microsecond,
		Prefetch:  true,
		MaxBlocks: 256,
		eng:       eng,
		cache:     make(map[int64]*blockState),
	}
}

// Name implements FS.
func (u *UFS) Name() string { return "ufs" }

// Read implements FS. Reads spanning multiple blocks wait for each block in
// order.
func (u *UFS) Read(off, n int64, done func()) {
	first := off / u.BlockSize
	last := (off + n - 1) / u.BlockSize
	if n == 0 {
		last = first
	}
	var next func(b int64)
	next = func(b int64) {
		u.ensure(b, true, func() {
			if b < last {
				next(b + 1)
				return
			}
			// All blocks resident: charge the copy-out and complete.
			u.eng.After(u.HitCost, done)
		})
	}
	next(first)
}

// ensure makes block b resident, then calls ready. demand marks whether this
// is a foreground request (counted as hit/miss) or a prefetch.
func (u *UFS) ensure(b int64, demand bool, ready func()) {
	st, ok := u.cache[b]
	if ok && st.ready {
		if demand {
			u.Hits++
		}
		ready()
		return
	}
	if ok { // load in flight
		if demand {
			u.Misses++
		}
		st.waiters = append(st.waiters, ready)
		return
	}
	if demand {
		u.Misses++
	}
	st = &blockState{waiters: []func(){ready}}
	u.cache[b] = st
	u.Disk.Read(b*u.BlockSize, u.BlockSize, func() {
		st.ready = true
		u.order = append(u.order, b)
		u.evict()
		waiters := st.waiters
		st.waiters = nil
		for _, w := range waiters {
			w()
		}
	})
	// Read-ahead is driven by demand misses only; a prefetch never chains
	// into further prefetches (otherwise one read would walk the whole file).
	if u.Prefetch && demand {
		if _, have := u.cache[b+1]; !have {
			u.ensure(b+1, false, func() {})
		}
	}
}

func (u *UFS) evict() {
	for len(u.order) > u.MaxBlocks {
		old := u.order[0]
		u.order = u.order[1:]
		delete(u.cache, old)
	}
}
