package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newStripe(eng *sim.Engine, width int, unit int64) *Stripe {
	var disks []*Disk
	for i := 0; i < width; i++ {
		disks = append(disks, New(eng, DefaultSCSI("d")))
	}
	return NewStripe(disks, unit)
}

func TestStripeParallelSpeedup(t *testing.T) {
	// A 64 KB read from one disk vs striped over 4 disks at 16 KB units:
	// the striped read overlaps the four accesses.
	engOne := sim.NewEngine(1)
	one := New(engOne, DefaultSCSI("single"))
	var tOne sim.Time
	one.Read(0, 64<<10, func() { tOne = engOne.Now() })
	engOne.Run()

	engFour := sim.NewEngine(1)
	four := newStripe(engFour, 4, 16<<10)
	var tFour sim.Time
	four.Read(0, 64<<10, func() { tFour = engFour.Now() })
	engFour.Run()

	if tFour >= tOne {
		t.Fatalf("striped read %v not faster than single-disk %v", tFour, tOne)
	}
}

func TestStripeLayout(t *testing.T) {
	eng := sim.NewEngine(1)
	s := newStripe(eng, 2, 1000)
	// Read spanning rows: offsets 500..2500 touch disk0 [500,1000) + row1
	// [1000,1500)... verify by byte counts per spindle.
	s.Read(500, 2000, nil)
	eng.Run()
	got0 := s.disks[0].Stats.BytesRead
	got1 := s.disks[1].Stats.BytesRead
	if got0+got1 != 2000 {
		t.Fatalf("bytes = %d + %d, want 2000 total", got0, got1)
	}
	if got0 != 1000 || got1 != 1000 {
		t.Fatalf("unbalanced: disk0=%d disk1=%d", got0, got1)
	}
}

func TestStripeZeroLength(t *testing.T) {
	eng := sim.NewEngine(1)
	s := newStripe(eng, 2, 512)
	done := false
	s.Read(100, 0, func() { done = true })
	if !done {
		t.Fatal("zero read should complete immediately")
	}
}

func TestStripeValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, f := range []func(){
		func() { NewStripe(nil, 512) },
		func() { NewStripe([]*Disk{New(eng, DefaultSCSI("d"))}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStripedFSName(t *testing.T) {
	eng := sim.NewEngine(1)
	fs := &StripedFS{Stripe: newStripe(eng, 3, 512)}
	if fs.Name() != "stripe3" {
		t.Fatalf("name = %q", fs.Name())
	}
	done := false
	fs.Read(0, 100, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("read did not complete")
	}
}

func TestDegradeSlowsDisk(t *testing.T) {
	engA := sim.NewEngine(1)
	healthy := New(engA, DefaultSCSI("h"))
	var tH sim.Time
	healthy.Read(0, 1000, func() { tH = engA.Now() })
	engA.Run()

	engB := sim.NewEngine(1)
	sick := New(engB, DefaultSCSI("s"))
	sick.Degrade(3)
	var tS sim.Time
	sick.Read(0, 1000, func() { tS = engB.Now() })
	engB.Run()

	if tS != 3*tH {
		t.Fatalf("degraded read %v, want 3× healthy %v", tS, tH)
	}
	sick.Degrade(1) // recovery restores health
	engB2 := sim.NewEngine(1)
	_ = engB2
}

func TestDegradeValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("d"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Degrade(0)
}

// Property: striping conserves bytes and balances within one unit across
// spindles for unit-aligned reads.
func TestStripeConservationProperty(t *testing.T) {
	f := func(off16, n16 uint16, width8, unitSeed uint8) bool {
		width := int(width8)%6 + 1
		unit := int64(unitSeed)%2048 + 64
		eng := sim.NewEngine(1)
		s := newStripe(eng, width, unit)
		off, n := int64(off16), int64(n16)+1
		s.Read(off, n, nil)
		eng.Run()
		var total int64
		for _, d := range s.disks {
			total += d.Stats.BytesRead
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
