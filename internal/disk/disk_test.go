package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func run1000FrameReads(t *testing.T, fs FS, eng *sim.Engine) sim.Time {
	t.Helper()
	const frames = 1000
	const frameSize = 1000
	var total sim.Time
	var issue func(i int)
	issue = func(i int) {
		if i == frames {
			return
		}
		start := eng.Now()
		fs.Read(int64(i)*frameSize, frameSize, func() {
			total += eng.Now() - start
			issue(i + 1)
		})
	}
	issue(0)
	eng.Run()
	return total / frames
}

func TestDosFsFrameReadAbout4ms(t *testing.T) {
	// Table 4: the 4.2 ms disk component of Experiments II and III.
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("ni-disk"))
	fs := NewDOSFS(d)
	avg := run1000FrameReads(t, fs, eng)
	ms := avg.Milliseconds()
	if ms < 3.8 || ms > 4.7 {
		t.Fatalf("dosFs avg frame read = %.2f ms, want ≈4.2", ms)
	}
}

func TestUFSFrameReadFastViaCacheAndPrefetch(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("sys-disk"))
	fs := NewUFS(eng, d)
	avg := run1000FrameReads(t, fs, eng)
	ms := avg.Milliseconds()
	if ms > 1.0 {
		t.Fatalf("UFS avg frame read = %.3f ms, want < 1 (cache+prefetch)", ms)
	}
	if fs.Hits <= fs.Misses {
		t.Fatalf("expected mostly cache hits, got %d hits / %d misses", fs.Hits, fs.Misses)
	}
}

func TestDosFsWithoutFATCacheRoughlyDoubles(t *testing.T) {
	eng1 := sim.NewEngine(1)
	d1 := New(eng1, DefaultSCSI("a"))
	cached := run1000FrameReads(t, NewDOSFS(d1), eng1)

	eng2 := sim.NewEngine(1)
	d2 := New(eng2, DefaultSCSI("b"))
	fs := NewDOSFS(d2)
	fs.FATCached = false
	uncached := run1000FrameReads(t, fs, eng2)

	ratio := float64(uncached) / float64(cached)
	if ratio < 1.4 || ratio > 2.6 {
		t.Fatalf("no-FAT-cache/FAT-cache ratio = %.2f, want ~1.5–2.5×", ratio)
	}
}

func TestFilesystemOrdering(t *testing.T) {
	// The Table 4 shape: UFS ≪ dosFs < dosFs-without-FAT-cache.
	avg := func(mk func(*sim.Engine, *Disk) FS) sim.Time {
		eng := sim.NewEngine(1)
		d := New(eng, DefaultSCSI("x"))
		return run1000FrameReads(t, mk(eng, d), eng)
	}
	ufs := avg(func(e *sim.Engine, d *Disk) FS { return NewUFS(e, d) })
	dos := avg(func(e *sim.Engine, d *Disk) FS { return NewDOSFS(d) })
	nofat := avg(func(e *sim.Engine, d *Disk) FS {
		f := NewDOSFS(d)
		f.FATCached = false
		return f
	})
	if !(ufs < dos && dos < nofat) {
		t.Fatalf("ordering violated: ufs=%v dos=%v nofat=%v", ufs, dos, nofat)
	}
}

func TestAccessTimeComponents(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	p := d.Params()
	// First access from head 0 at offset 0: no seek.
	base := d.AccessTime(0, 1000)
	want := p.CmdOverhead + p.RotLatency() + sim.Time(1000*int64(sim.Second)/p.TransferBps)
	if base != want {
		t.Fatalf("no-seek access = %v, want %v", base, want)
	}
	// Same-cylinder offset: still no seek.
	if got := d.AccessTime(4096, 1000); got != want {
		t.Fatalf("same-cylinder access = %v, want %v", got, want)
	}
	// Near offset (past the cylinder, within NearBytes) adds a track seek.
	if got := d.AccessTime(200<<10, 1000); got != want+p.TrackSeek {
		t.Fatalf("near access = %v, want %v", got, want+p.TrackSeek)
	}
	// Far offset adds an average seek.
	if got := d.AccessTime(10<<20, 1000); got != want+p.AvgSeek {
		t.Fatalf("far access = %v, want %v", got, want+p.AvgSeek)
	}
}

func TestRotationalLatencyAt7200RPM(t *testing.T) {
	p := DefaultSCSI("x")
	// 7200 RPM → 8.33 ms/rev → 4.17 ms average.
	ms := p.RotLatency().Milliseconds()
	if ms < 4.0 || ms > 4.3 {
		t.Fatalf("rotational latency = %.2f ms, want ≈4.17", ms)
	}
}

func TestDiskSerializesRequests(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		d.Read(0, 1000, func() { finish = append(finish, eng.Now()) })
	}
	eng.Run()
	if len(finish) != 3 {
		t.Fatalf("completions = %d", len(finish))
	}
	for i := 1; i < len(finish); i++ {
		if finish[i] <= finish[i-1] {
			t.Fatalf("requests overlapped: %v", finish)
		}
	}
	if d.Stats.Reads != 3 || d.Stats.BytesRead != 3000 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestBadAccessPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.AccessTime(-1, 10)
}

func TestUFSMultiBlockRead(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	fs := NewUFS(eng, d)
	done := false
	// Spans blocks 0 and 1 (8 KB blocks).
	fs.Read(8000, 1000, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("multi-block read did not complete")
	}
	if d.Stats.Reads < 2 {
		t.Fatalf("expected ≥2 block reads, got %d", d.Stats.Reads)
	}
}

func TestUFSZeroLengthRead(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	fs := NewUFS(eng, d)
	done := false
	fs.Read(100, 0, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero-length read did not complete")
	}
}

func TestUFSEvictionBoundsCache(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	fs := NewUFS(eng, d)
	fs.MaxBlocks = 4
	var next func(i int64)
	next = func(i int64) {
		if i == 64 {
			return
		}
		fs.Read(i*fs.BlockSize, 100, func() { next(i + 1) })
	}
	next(0)
	eng.Run()
	if len(fs.cache) > fs.MaxBlocks+2 { // +in-flight prefetch slack
		t.Fatalf("cache grew to %d blocks, cap %d", len(fs.cache), fs.MaxBlocks)
	}
}

func TestUFSConcurrentReadersOfSameBlockShareLoad(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	fs := NewUFS(eng, d)
	fs.Prefetch = false
	done := 0
	for i := 0; i < 5; i++ {
		fs.Read(0, 100, func() { done++ })
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("completions = %d", done)
	}
	if d.Stats.Reads != 1 {
		t.Fatalf("disk reads = %d, want 1 (shared block load)", d.Stats.Reads)
	}
}

// Property: AccessTime grows monotonically with transfer size.
func TestAccessTimeMonotoneInSize(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng, DefaultSCSI("x"))
	f := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		return d.AccessTime(0, int64(a)) <= d.AccessTime(0, int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every DOSFS read eventually completes exactly once.
func TestDOSFSCompletionProperty(t *testing.T) {
	f := func(offsets []uint16, fatCached bool) bool {
		eng := sim.NewEngine(3)
		d := New(eng, DefaultSCSI("x"))
		fs := NewDOSFS(d)
		fs.FATCached = fatCached
		completions := 0
		for _, off := range offsets {
			fs.Read(int64(off), 512, func() { completions++ })
		}
		eng.Run()
		return completions == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
