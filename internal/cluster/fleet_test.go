package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func fleetArtifacts(r *FleetResult) string {
	return strings.Join([]string{r.Summary, r.Table, r.Pulse, r.CSV}, "\n---\n")
}

func testFleetConfig(workers int, mono bool) FleetConfig {
	return FleetConfig{
		Cards: 4, StreamsPerCard: 1, Dur: 800 * sim.Millisecond,
		Workers: workers, Monolithic: mono,
	}
}

// Media must flow: every card sources frames, every client receives them,
// and the controller pulse log covers every card at every poll.
func TestFleetDeliversMedia(t *testing.T) {
	r := RunFleet(testFleetConfig(1, false))
	if r.TotalInjected == 0 || r.TotalSent == 0 || r.TotalRecv == 0 {
		t.Fatalf("no media moved: %s", r.Summary)
	}
	if r.TotalRecv < r.TotalSent/2 {
		t.Fatalf("most sent frames never arrived: %s", r.Summary)
	}
	polls := int64(800/500) * int64(r.Cards)
	if got := int64(strings.Count(r.Pulse, "\n")); got != polls {
		t.Fatalf("pulse rows = %d, want %d\n%s", got, polls, r.Pulse)
	}
	if r.Rounds == 0 {
		t.Fatal("partitioned run reported zero synchronization rounds")
	}
}

// The byte-identical contract: partitioned artifacts must not depend on the
// worker count.
func TestFleetWorkersInvariance(t *testing.T) {
	ref := fleetArtifacts(RunFleet(testFleetConfig(1, false)))
	for _, workers := range []int{2, 4, 8} {
		got := fleetArtifacts(RunFleet(testFleetConfig(workers, false)))
		if got != ref {
			t.Fatalf("workers=%d artifacts diverged from workers=1:\n%s\n=== vs ===\n%s",
				workers, got, ref)
		}
	}
}

// The stronger contract: the partitioned engine replays the monolithic
// single-Engine fleet byte-for-byte. Every cross-card interaction rides the
// fleet hop, which both modes order identically.
func TestFleetMatchesMonolith(t *testing.T) {
	mono := fleetArtifacts(RunFleet(testFleetConfig(0, true)))
	part := fleetArtifacts(RunFleet(testFleetConfig(4, false)))
	if mono != part {
		t.Fatalf("partitioned fleet diverged from monolith:\n%s\n=== vs ===\n%s",
			part, mono)
	}
}

// A 1-card fleet keeps its media local (no self-channel) but still answers
// controller polls across the partition boundary.
func TestFleetSingleCard(t *testing.T) {
	cfg := testFleetConfig(2, false)
	cfg.Cards = 1
	r := RunFleet(cfg)
	if r.TotalRecv == 0 {
		t.Fatalf("no media delivered: %s", r.Summary)
	}
	if !strings.Contains(r.Pulse, "ni00") {
		t.Fatalf("controller never heard from the card:\n%s", r.Pulse)
	}
}
