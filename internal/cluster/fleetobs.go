// Fleet observability: the in-band scrape plane over the chaos fleet. The
// DVCM controller partition scrapes every card's telemetry, SLO, and
// flight-recorder state over the same simulated links the media rides —
// scrape requests and replies are real timestamped inter-partition messages,
// and each reply's buffer is charged to the card's overload budget before it
// ships, so observability is the first thing shed under pressure: a card
// past its high-water mark answers with a header-only refusal, and the
// controller widens that card's scrape interval (a degradation rung) instead
// of dropping media.
//
// On top of the scrape stream the controller keeps a deterministic fleet
// view: per-card → per-host → per-switch-domain rollups, top-k streams by
// loss-window pressure, and an incident timeline that merges every card's
// flight-recorder events (faults, watchdog bites, ladder moves, refusals,
// SLO transitions, migrations) with the controller's own decisions into one
// causally-ordered, byte-stable artifact. Frame spans carry a stream epoch
// that advances on every committed migration, and the controller records the
// frame-cursor handoff as an explicit span link — so a stream's
// disk→wire→playout trace stitches across live migration.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/blackbox"
	"repro/internal/fleetobs"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// FleetObsConfig parameterizes RunFleetObs: a chaos fleet plus the scrape
// plane's knobs.
type FleetObsConfig struct {
	FleetChaosConfig

	// ScrapeEvery is the controller's base scrape period; 0 = 200 ms. A
	// card at degradation rung r is scraped every ScrapeEvery<<r.
	ScrapeEvery sim.Time
	// TopK bounds the top-streams-by-pressure artifact; 0 = 8.
	TopK int
	// MaxScrapeRung caps the per-card degradation rung; 0 = 3 (so the
	// widest interval is 8× the base period).
	MaxScrapeRung int

	// StressPct, when positive, charges each card's budget up to this
	// percent of its size at StressAt and releases it StressDur later —
	// deterministic memory pressure that forces the scrape plane to shed
	// and widen before any media is dropped. 0 disables.
	StressPct int
	StressAt  sim.Time // 0 = Dur/3
	StressDur sim.Time // 0 = Dur/4
}

func (cfg *FleetObsConfig) setDefaults() {
	cfg.FleetChaosConfig.setDefaults()
	if cfg.ScrapeEvery <= 0 {
		cfg.ScrapeEvery = 200 * sim.Millisecond
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 8
	}
	if cfg.MaxScrapeRung <= 0 {
		cfg.MaxScrapeRung = 3
	}
	if cfg.StressPct > 0 {
		if cfg.StressAt <= 0 {
			cfg.StressAt = cfg.Dur / 3
		}
		if cfg.StressDur <= 0 {
			cfg.StressDur = cfg.Dur / 4
		}
	}
}

// FleetObsResult carries one observed chaos run's artifacts. Everything but
// Chaos.Rounds is byte-deterministic across Monolithic, Workers=1, and
// Workers=N runs of the same configuration.
type FleetObsResult struct {
	Chaos *FleetChaosResult

	Rollup      string // card → host → switch-domain health/goodput/burn table
	Timeline    string // merged incident timeline
	TopK        string // top streams by loss-window pressure
	ScrapeStats string // per-card scrape accounting and overhead
	Stitched    string // cross-migration stitched traces, one block per moved stream
	ObsSummary  string

	ObsBytes   int64 // total in-band scrape traffic (requests + replies)
	MediaBytes int64 // client-received media bytes (the overhead denominator)

	ScrapeReqs    int64
	ScrapeSamples int64
	ScrapeSheds   int64 // replies refused under budget pressure
	ScrapeSkips   int64 // scrapes not sent because the card's rung widened
	ScrapeDark    int64 // scrapes a crashed card never answered
	EventsShipped int64
	EventsLost    int64 // ring overwrites before the scrape could ship them
	Degrades      int64 // scrape-interval widenings
	Restores      int64 // full-rate restorations
	Breaches      int64 // budget breaches as last scraped, fleet-wide (want: 0)
	Links         int   // recorded epoch-handoff span links
	StitchedLive  int   // streams with a live handoff and a full span path
}

// obsSample is one card's scrape reply: partition-local reads bundled on the
// card and shipped to the controller as a value.
type obsSample struct {
	at      sim.Time
	bytes   int64
	samples []slo.StreamSample
	events  []blackbox.Event
	lost    int64

	used, low, size int64
	breaches        int64
	recvBytes       int64 // media bytes received by clients homed on the card
}

// scrapeStat is the controller's per-card scrape accounting.
type scrapeStat struct {
	reqs, samples, sheds, skips, dark int64
	events, lost                      int64
	bytes                             int64
}

// fleetObs is the scrape plane's state, split by partition: tel/ctel/mon/
// cardEpoch index i is touched only in card i's partition once the run
// starts; everything else lives in the controller partition.
type fleetObs struct {
	f   *fleetChaos
	cfg FleetObsConfig

	// Card-partition state.
	tel       []*telemetry.Registry // serving-side spans (disk/bus/queue), epoch-stamped
	ctel      []*telemetry.Registry // client-side spans (tx/wire/playout), epoch −1
	mon       []*slo.Monitor
	cardEpoch []map[int]int // card i's view: gid → serving epoch

	// Static after build.
	homed [][]*chaosStream // card → streams whose client is homed there

	// Controller-partition state.
	tick     int64
	cursor   []int64 // per-card flight-recorder scrape cursor
	rung     []int   // per-card scrape-degradation rung
	rungMax  []int
	dark     []bool
	last     []*obsSample
	stat     []scrapeStat
	epoch    map[int]int // gid → committed epoch
	links    []telemetry.SpanLink
	tl       *fleetobs.Timeline
	obsBytes int64
	degrades int64
	restores int64
}

func newFleetObs(cfg FleetObsConfig) *fleetObs {
	n := cfg.Cards
	return &fleetObs{
		cfg:       cfg,
		tel:       make([]*telemetry.Registry, n),
		ctel:      make([]*telemetry.Registry, n),
		mon:       make([]*slo.Monitor, n),
		cardEpoch: make([]map[int]int, n),
		homed:     make([][]*chaosStream, n),
		cursor:    make([]int64, n),
		rung:      make([]int, n),
		rungMax:   make([]int, n),
		dark:      make([]bool, n),
		last:      make([]*obsSample, n),
		stat:      make([]scrapeStat, n),
		epoch:     map[int]int{},
		tl:        fleetobs.NewTimeline(),
	}
}

func niName(i int) string { return fmt.Sprintf("ni%02d", i) }

// shippable selects the flight-recorder kinds worth the wire: incidents and
// transitions, not the per-frame decision/drop/span churn the ring also holds.
func shippable(k blackbox.Kind) bool {
	switch k {
	case blackbox.KindLadder, blackbox.KindFault, blackbox.KindWatchdog,
		blackbox.KindRefusal, blackbox.KindSLO, blackbox.KindMigrate,
		blackbox.KindDomainFault:
		return true
	}
	return false
}

// --- card-side wiring (build time, and migration imports in card context) ----

// attachCard instruments card i: two span registries (the serving side is
// epoch-stamped from the card's placement view; the client side never knows
// placements and stamps −1 for the stitcher to resolve), an SLO monitor
// whose transitions land in the flight recorder, and a dispatch trace log.
func (o *fleetObs) attachCard(i int) {
	fc := o.f.cards[i]
	o.cardEpoch[i] = map[int]int{}

	srv := telemetry.New()
	srv.EpochOf = func(stream int) int { return o.cardEpoch[i][stream] }
	fc.sched.Instrument(srv)
	o.tel[i] = srv

	cli := telemetry.New()
	cli.EpochOf = func(int) int { return -1 }
	o.ctel[i] = cli

	fc.ext.Trace = trace.New(fc.eng, 4096)

	mon := slo.NewMonitor(fc.sched.Name, slo.Config{})
	mon.OnChange = func(stream int, from, to slo.State) {
		fc.rec.Record(blackbox.Event{At: fc.eng.Now(), Kind: blackbox.KindSLO,
			Stream: stream, A: int64(from), B: int64(to),
			Note: from.String() + "→" + to.String()})
	}
	mon.Instrument(srv)
	mon.Start(fc.eng)
	o.mon[i] = mon
}

// attachStream wires one stream at build time: its client's spans record
// into the home card's client registry, its origin card tracks its SLO, and
// it starts at epoch 0.
func (o *fleetObs) attachStream(st *chaosStream) {
	st.cl.Instrument(o.ctel[st.home])
	o.cardEpoch[st.orig][st.gid] = 0
	o.trackOn(st.orig, st)
	o.homed[st.home] = append(o.homed[st.home], st)
	o.epoch[st.gid] = 0
}

// trackOn registers the stream's loss objective with card's SLO monitor. The
// stats closure freezes at the last sighting once the stream leaves the card
// (Stats errors after removal) and guards against cold-restore counter
// rewinds, so a monitor never reports negative deltas.
func (o *fleetObs) trackOn(card int, st *chaosStream) {
	m := o.mon[card]
	if m.Tracked(st.gid) {
		return
	}
	sched := o.f.cards[card].ext.Sched
	gid := st.gid
	var lastA, lastL int64
	m.Track(slo.FromSpec(st.spec, 0), func() (int64, int64) {
		if sn, err := sched.Stats(gid); err == nil {
			if a := sn.Attempts(); a >= lastA {
				lastA, lastL = a, sn.Losses()
			}
		}
		return lastA, lastL
	})
}

// cardImport runs in the target card's partition when a migration (or readd)
// lands: the card learns the stream's new epoch before any frame dispatches,
// tracks its SLO, and drops a handoff mark in its trace. Returns the card's
// import time — the instant the controller stamps on the span link, because
// replayed frames dispatch before the commit hop reaches the controller.
func (o *fleetObs) cardImport(to int, st *chaosStream, epoch int, seq int64) sim.Time {
	dst := o.f.cards[to]
	o.cardEpoch[to][st.gid] = epoch
	o.trackOn(to, st)
	dst.ext.Trace.Recordf(trace.KindHandoff, dst.sched.Name+"/migrate", st.gid, seq,
		"import epoch=%d", epoch)
	return dst.eng.Now()
}

// --- the scrape protocol -----------------------------------------------------

// scrape is one controller round: every card whose degradation rung divides
// this tick gets a scrape request over the DVCM link (one fixed-size
// instruction, counted as in-band traffic). The flight-recorder cursor rides
// the request, so the card ships exactly the events the controller has not
// seen.
func (o *fleetObs) scrape() {
	tick := o.tick
	o.tick++
	for i := range o.f.cards {
		i := i
		if r := o.rung[i]; r > 0 && tick%(1<<uint(r)) != 0 {
			o.stat[i].skips++
			continue
		}
		o.stat[i].reqs++
		o.stat[i].bytes += fleetobs.ReqBytes
		o.obsBytes += fleetobs.ReqBytes
		cur := o.cursor[i]
		// The scrape is a controller command like any other: with a
		// replicated control plane it is epoch-stamped and a card whose
		// fence outranks the sender rejects it (stale leaders cannot even
		// observe). Unreplicated, cmd is a plain toCard hop.
		o.f.reps[0].cmd(i, "scrape", 0, func() { o.reply(i, cur) }, nil)
	}
}

// reply runs in card i's partition: a crashed card answers nothing; a live
// card prices the reply (header + per-stream samples + per-event entries),
// admission-tests it against its own overload budget, and either ships the
// sample — charging the reply buffer for one hop's flight — or sheds it with
// a header-only refusal that keeps the cursor, so nothing is silently lost.
func (o *fleetObs) reply(i int, cur int64) {
	fc := o.f.cards[i]
	at := fc.eng.Now()
	if fc.sched.Crashed() {
		o.f.toCtrl(i, func() { o.onDark(i) })
		return
	}
	raw, newest, lost := fc.rec.EventsSince(cur)
	var events []blackbox.Event
	for _, e := range raw {
		if shippable(e.Kind) {
			events = append(events, e)
		}
	}
	samples := o.mon[i].Sample()
	bud := fc.ctl.Budget
	cost := int64(fleetobs.ReplyHeaderBytes +
		len(samples)*fleetobs.StreamEntryBytes + len(events)*fleetobs.EventEntryBytes)
	release := func(n int64) func() {
		return func() { bud.Release(overload.ClassTelemetry, n) }
	}
	if !bud.CanAdmit(cost) {
		if bud.CanAdmit(fleetobs.ShedReplyBytes) {
			_ = bud.Charge(overload.ClassTelemetry, fleetobs.ShedReplyBytes)
			fc.eng.After(o.f.cfg.NetLatency, release(fleetobs.ShedReplyBytes))
		}
		fc.rec.Record(blackbox.Event{At: at, Kind: blackbox.KindRefusal,
			A: cost, Note: "scrape shed"})
		o.f.toCtrl(i, func() { o.onShed(i, cost) })
		return
	}
	_ = bud.Charge(overload.ClassTelemetry, cost)
	fc.eng.After(o.f.cfg.NetLatency, release(cost))
	s := &obsSample{
		at: at, bytes: cost, samples: samples, events: events, lost: lost,
		used: bud.Used(), low: bud.LowWater(), size: bud.Size(),
		breaches: bud.Breaches,
	}
	for _, st := range o.homed[i] {
		s.recvBytes += st.cl.RecvBytes
	}
	o.f.toCtrl(i, func() { o.onSample(i, s, newest) })
}

func (o *fleetObs) ctrlNow() sim.Time { return o.f.ctrlEng().Now() }

// ctrlEvent drops one controller-local event on the timeline.
func (o *fleetObs) ctrlEvent(kind string, stream int, seq int64, note string) {
	o.tl.Add(fleetobs.TimelineEvent{
		At: o.ctrlNow(), Src: fleetobs.SrcController, SrcName: "dvcm",
		Kind: kind, Stream: stream, Seq: seq, Note: note,
	})
}

func (o *fleetObs) onDark(i int) {
	o.stat[i].dark++
	if !o.dark[i] {
		o.dark[i] = true
		o.ctrlEvent("scrape-dark", 0, 0,
			fmt.Sprintf("%s answered nothing; card presumed down", niName(i)))
	}
}

// onShed reacts to a refused reply: the card is under memory pressure, so
// the controller widens its scrape interval — observability degrades one
// rung before any media frame is at risk.
func (o *fleetObs) onShed(i int, cost int64) {
	o.stat[i].sheds++
	o.stat[i].bytes += fleetobs.ShedReplyBytes
	o.obsBytes += fleetobs.ShedReplyBytes
	if o.dark[i] {
		o.dark[i] = false
		o.ctrlEvent("scrape-recover", 0, 0, niName(i)+" answering again")
	}
	if o.rung[i] < o.cfg.MaxScrapeRung {
		o.rung[i]++
		if o.rung[i] > o.rungMax[i] {
			o.rungMax[i] = o.rung[i]
		}
		o.degrades++
		o.ctrlEvent("scrape-degrade", 0, 0, fmt.Sprintf(
			"%s shed %dB reply under pressure; scrape interval ×%d",
			niName(i), cost, 1<<uint(o.rung[i])))
	}
}

// onSample folds one reply into the controller's fleet view: cursor advance,
// timeline merge of the shipped flight-recorder events, and rung restoration
// once the card's budget is back under low water.
func (o *fleetObs) onSample(i int, s *obsSample, newest int64) {
	st := &o.stat[i]
	st.samples++
	st.events += int64(len(s.events))
	st.lost += s.lost
	st.bytes += s.bytes
	o.obsBytes += s.bytes
	o.cursor[i] = newest
	o.last[i] = s
	if o.dark[i] {
		o.dark[i] = false
		o.ctrlEvent("scrape-recover", 0, 0, niName(i)+" answering again")
	}
	if o.rung[i] > 0 && s.used <= s.low {
		o.rung[i] = 0
		o.restores++
		o.ctrlEvent("scrape-restore", 0, 0, fmt.Sprintf(
			"%s under low water (%d/%d); full scrape rate restored",
			niName(i), s.used, s.size))
	}
	host, sw := o.f.hostName(o.f.hostOf(i)), o.f.switchName(o.f.switchOf(i))
	for _, e := range s.events {
		o.tl.Add(fleetobs.TimelineEvent{
			At: e.At, Src: i, SrcName: niName(i), Host: host, Switch: sw,
			Kind: e.Kind.String(), Stream: e.Stream, Seq: e.Seq, Note: e.Note,
		})
	}
	if s.lost > 0 {
		o.ctrlEvent("scrape-gap", 0, 0, fmt.Sprintf(
			"%s ring overwrote %d event(s) before the scrape", niName(i), s.lost))
	}
}

// --- migration commits: epochs and span links (controller context) -----------

// commitMove records a committed live or cold migration: the stream's epoch
// advances and the frame-cursor handoff becomes an explicit span link. at is
// the card-side import instant (not the controller's later commit time) so
// replayed frames dispatched before this hop landed still sort after it.
func (o *fleetObs) commitMove(st *chaosStream, from, to, epoch int, seq int64,
	at sim.Time, kind string) {
	o.epoch[st.gid] = epoch
	o.links = append(o.links, telemetry.SpanLink{
		Stream: st.gid, FromEpoch: epoch - 1, ToEpoch: epoch,
		FromWhere: niName(from), ToWhere: niName(to),
		Seq: seq, At: at, Kind: kind,
	})
	o.ctrlEvent("migrate-"+kind, st.gid, seq, fmt.Sprintf(
		"%s→%s epoch %d→%d cursor handed off", niName(from), niName(to), epoch-1, epoch))
}

// commitReadd records a teardown restart: the epoch advances but the cursor
// is fresh, so the link is an explicit gap for the stitcher.
func (o *fleetObs) commitReadd(st *chaosStream, to, epoch int, seq int64, at sim.Time) {
	prev := o.epoch[st.gid]
	o.epoch[st.gid] = epoch
	o.links = append(o.links, telemetry.SpanLink{
		Stream: st.gid, FromEpoch: prev, ToEpoch: epoch,
		FromWhere: "?", ToWhere: niName(to),
		Seq: seq, At: at, Kind: fleetobs.LinkReadd,
	})
	o.ctrlEvent("readd", st.gid, seq, fmt.Sprintf(
		"→%s epoch %d→%d fresh window", niName(to), prev, epoch))
}

// abortMove records a failed handoff: the epoch does not advance; the link
// annotates the attempt so the stitched trace shows it.
func (o *fleetObs) abortMove(st *chaosStream, from, to int, seq int64, why string) {
	e := o.epoch[st.gid]
	toW := "?"
	if to >= 0 {
		toW = niName(to)
	}
	o.links = append(o.links, telemetry.SpanLink{
		Stream: st.gid, FromEpoch: e, ToEpoch: e,
		FromWhere: niName(from), ToWhere: toW,
		Seq: seq, At: o.ctrlNow(), Kind: fleetobs.LinkAbort,
	})
	o.ctrlEvent("migrate-abort", st.gid, seq, why+" (epoch unchanged)")
}

// --- stress (deterministic pressure for shedding demos and tests) ------------

// armStress schedules the memory-pressure window on every card: charge the
// budget up to StressPct of size at StressAt, release at StressAt+StressDur.
// The charge never exceeds size (so it cannot breach), but past the high
// water it makes every scrape reply — and nothing else — inadmissible.
func (o *fleetObs) armStress() {
	cfg := o.cfg
	if cfg.StressPct <= 0 {
		return
	}
	for i := range o.f.cards {
		fc := o.f.cards[i]
		fc.eng.At(cfg.StressAt, func() {
			bud := fc.ctl.Budget
			n := bud.Size()*int64(cfg.StressPct)/100 - bud.Used()
			if max := bud.Size() - bud.Used(); n > max {
				n = max
			}
			if n <= 0 {
				return
			}
			_ = bud.Charge(overload.ClassFrameBuf, n)
			fc.eng.At(cfg.StressAt+cfg.StressDur, func() {
				bud.Release(overload.ClassFrameBuf, n)
			})
		})
	}
}

// --- the run and the artifacts ----------------------------------------------

// RunFleetObs builds the chaos fleet with the scrape plane attached, runs
// it, and renders the observability artifacts alongside the chaos ones.
func RunFleetObs(cfg FleetObsConfig) *FleetObsResult {
	cfg.setDefaults()
	obs := newFleetObs(cfg)
	f := buildFleetChaos(cfg.FleetChaosConfig, obs)
	f.ctrlEng().Every(cfg.ScrapeEvery, obs.scrape)
	obs.armStress()
	f.runChaos()
	f.collectChaos()
	return obs.collect()
}

// collect renders the observability artifacts from the settled fleet.
func (o *fleetObs) collect() *FleetObsResult {
	f := o.f
	res := &FleetObsResult{Chaos: f.res, ObsBytes: o.obsBytes,
		Degrades: o.degrades, Restores: o.restores, Links: len(o.links)}

	// Rollup and top-k, from each card's last successful scrape. Stream
	// samples are kept only for streams the controller believes are placed
	// on the sampled card — a monitor keeps frozen rows for streams that
	// migrated away, and those must not double-count.
	cards := make([]fleetobs.CardStat, 0, len(f.cards))
	var pressures []fleetobs.StreamPressure
	for i := range f.cards {
		cs := fleetobs.CardStat{
			Card: i, Host: f.hostName(f.hostOf(i)), Switch: f.switchName(f.switchOf(i)),
			Rung: o.rung[i],
		}
		s := o.last[i]
		if s == nil || o.dark[i] {
			cs.Dark = true
		}
		if s != nil {
			cs.GoodputMB = float64(s.recvBytes) / (1 << 20)
			cs.MemPct = 100 * float64(s.used) / float64(s.size)
			cs.Breaches = s.breaches
			res.Breaches += s.breaches
			for _, sm := range s.samples {
				if f.lead().loc[sm.Stream] != i || f.lead().lost[sm.Stream] {
					continue
				}
				cs.Streams++
				if h := fleetobs.Health(sm.State); h > cs.Health {
					cs.Health = h
				}
				if sm.ShortBurn > cs.Burn {
					cs.Burn = sm.ShortBurn
				}
				pressures = append(pressures, fleetobs.StreamPressure{
					Stream: sm.Stream, Card: i, Health: fleetobs.Health(sm.State),
					ShortBurn: sm.ShortBurn, LongBurn: sm.LongBurn,
				})
			}
		}
		cards = append(cards, cs)
	}
	res.Rollup = fleetobs.RenderRollup(cards)
	res.TopK = fleetobs.RenderTopK(pressures, o.cfg.TopK)
	res.Timeline = o.tl.Render()

	// Scrape accounting and the in-band overhead against media goodput.
	for _, st := range f.cstream {
		res.MediaBytes += st.cl.RecvBytes
	}
	var b strings.Builder
	fmt.Fprintf(&b, "in-band scrape accounting (base period %v, interval ×2 per shed)\n",
		o.cfg.ScrapeEvery)
	fmt.Fprintf(&b, "%-6s %6s %8s %6s %6s %6s %8s %6s %10s %8s\n",
		"card", "reqs", "samples", "sheds", "skips", "dark", "events", "lost", "bytes", "rung_max")
	var tot scrapeStat
	for i := range f.cards {
		st := o.stat[i]
		fmt.Fprintf(&b, "%-6s %6d %8d %6d %6d %6d %8d %6d %10d %8d\n",
			niName(i), st.reqs, st.samples, st.sheds, st.skips, st.dark,
			st.events, st.lost, st.bytes, o.rungMax[i])
		tot.reqs += st.reqs
		tot.samples += st.samples
		tot.sheds += st.sheds
		tot.skips += st.skips
		tot.dark += st.dark
		tot.events += st.events
		tot.lost += st.lost
		tot.bytes += st.bytes
	}
	fmt.Fprintf(&b, "%-6s %6d %8d %6d %6d %6d %8d %6d %10d %8s\n",
		"total", tot.reqs, tot.samples, tot.sheds, tot.skips, tot.dark,
		tot.events, tot.lost, tot.bytes, "-")
	overhead := 0.0
	if res.MediaBytes > 0 {
		overhead = 100 * float64(res.ObsBytes) / float64(res.MediaBytes)
	}
	fmt.Fprintf(&b, "in-band obs=%dB media=%dB overhead=%.3f%%\n",
		res.ObsBytes, res.MediaBytes, overhead)
	res.ScrapeStats = b.String()
	res.ScrapeReqs, res.ScrapeSamples = tot.reqs, tot.samples
	res.ScrapeSheds, res.ScrapeSkips, res.ScrapeDark = tot.sheds, tot.skips, tot.dark
	res.EventsShipped, res.EventsLost = tot.events, tot.lost

	// Stitched traces: every stream that recorded at least one handoff link,
	// reassembled from all card- and client-side span registries.
	var segs []telemetry.Segment
	for i := range f.cards {
		segs = append(segs, o.tel[i].Spans.Segments...)
		segs = append(segs, o.ctel[i].Spans.Segments...)
	}
	moved := map[int]bool{}
	for _, l := range o.links {
		moved[l.Stream] = true
	}
	var gids []int
	for g := range moved {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	var sb strings.Builder
	for _, g := range gids {
		st := fleetobs.Stitch(g, segs, o.links)
		sb.WriteString(st.Render())
		if st.LiveMigrated() && st.FullPath() {
			res.StitchedLive++
		}
	}
	if len(gids) == 0 {
		sb.WriteString("no streams migrated; nothing to stitch\n")
	}
	res.Stitched = sb.String()

	res.ObsSummary = fmt.Sprintf(
		"fleet-obs: %d cards scraped every %v: reqs=%d samples=%d sheds=%d skips=%d dark=%d "+
			"events=%d lost=%d degrades=%d restores=%d links=%d stitched_live=%d "+
			"obs=%dB media=%dB overhead=%.3f%%",
		len(f.cards), o.cfg.ScrapeEvery, tot.reqs, tot.samples, tot.sheds, tot.skips,
		tot.dark, tot.events, tot.lost, o.degrades, o.restores, len(o.links),
		res.StitchedLive, res.ObsBytes, res.MediaBytes, overhead)
	return res
}
