// Crash-tolerant DVCM control plane: a replicated controller for the chaos
// fleet. The primary replica journals every placement decision (stream→card,
// DWCS (x,y) window, frame cursor, stream epoch) to a standby replica as
// priced DVCM messages, and ships a full-state checkpoint on every PollEvery
// boundary — the checkpoint doubles as the heartbeat the standby watches.
// When checkpoints stop (ControllerCrash kills the primary, or
// ControllerPartition severs the replica pair), the standby bumps the
// fleet-wide leader epoch and takes over: it fences every card against the
// old epoch, queries the cards' stream state, reconciles that view against
// its journal — adopting migrations the journal proves complete, re-issuing
// only the ones it proves incomplete — and resumes polling.
//
// Fencing is jurisdictional, like sim.Msg.Cancel: every controller→card
// command (poll, scrape, detach, import, readd) is stamped with the sender's
// leader epoch, and the card rejects any stamp older than the highest epoch
// it has witnessed — so a partitioned ex-primary can never double-migrate a
// stream. The ex-primary demotes itself on the first fenced rejection (or on
// receiving a higher-epoch checkpoint once the partition heals) and becomes
// the new standby; there is no automatic failback.
//
// Determinism: replica liveness (crashed/isolated) is a pure function of the
// static fault plan, evaluated partition-locally at send and delivery time,
// so both replicas and every card see the identical cut at any worker count.
// Role state (leader flag, epoch, checkpoint clock) is dynamic but touched
// only inside its own replica's partition; card-side fence state is touched
// only inside that card's partition; and the per-replica artifact fragments
// (migration log, pulse rows, incident events) are merged after the run by
// (time, replica, arrival) — so a single-replica run renders byte-identical
// to the pre-HA control plane, and an HA run is byte-identical across
// Monolithic, Workers=1, and Workers=N.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/blackbox"
	"repro/internal/dvcmnet"
	"repro/internal/dwcs"
	"repro/internal/faults"
	"repro/internal/fleetobs"
	"repro/internal/sim"
)

// logRow is one per-replica artifact line, timestamped for the post-run
// merge (the text already embeds the time in the legacy column format).
type logRow struct {
	at   sim.Time
	text string
}

// haEvent is one incident-timeline row from a replica or a card.
type haEvent struct {
	at     sim.Time
	src    int // fleetobs.SrcControllerB, fleetobs.SrcController, or card index
	name   string
	kind   string
	stream int
	seq    int64
	note   string
}

// Journal record opcodes. Intent is write-ahead: it ships before the detach
// hop leaves the leader, so a crash mid-protocol always leaves the standby
// knowing which stream was in flight.
const (
	jIntent = iota // migration decided: stream, source, wanted target
	jImage         // source detached: the live (x,y) window + frame cursor
	jCommit        // placement committed on a card
	jLost          // stream parked/lost; awaiting a readd
)

// jrec is one journal record. Applied on the standby it maintains the same
// materialized view the leader holds.
type jrec struct {
	op          int
	gid         int
	from, to    int
	img         dwcs.StreamSnapshot
	hasImg      bool
	sepoch      int
	at          sim.Time // leader-side decision time
	leaderEpoch int
}

// pending is an intent without a commit — the journal's proof that a
// migration is (or was, at crash time) in flight.
type pending struct {
	from, want int
	img        dwcs.StreamSnapshot
	hasImg     bool
}

// ckptMsg is the full-state checkpoint the leader ships every poll period.
// All maps are deep copies: the receiver stores them wholesale.
type ckptMsg struct {
	epoch int
	at    sim.Time

	loc      map[int]int
	placedAt map[int]sim.Time
	lost     map[int]bool
	sepoch   map[int]int
	ckpt     map[int]dwcs.StreamSnapshot

	lastV       map[int]int64
	lastT       map[int]sim.Time
	violByGid   map[int][2]int64
	violDuring  int64
	violOutside int64
}

// cardView is one card's answer to the new leader's fence+query round.
type cardView struct {
	snaps  []dwcs.StreamSnapshot
	sepoch map[int]int // gid → stream epoch as stamped at import time
}

// ctrlRep is one DVCM controller replica. Replica 0 ("ctl-a") boots as
// leader; replica 1 ("ctl-b") boots as the synced standby. Every field below
// the hop helpers is touched only in this replica's partition (or after the
// run has fully settled).
type ctrlRep struct {
	f    *fleetChaos
	id   int
	name string
	part *sim.Partition // nil in monolithic mode
	peer *ctrlRep       // nil when the control plane is unreplicated

	// Role state.
	leader   bool
	epoch    int      // leader epoch this replica operates under
	lastCkpt sim.Time // follower: arrival of the last checkpoint
	synced   bool     // follower: heard the current leader at least once

	// Placement state — on the standby, the journal's materialized view.
	loc      map[int]int
	ckpt     map[int]dwcs.StreamSnapshot
	lastV    map[int]int64
	lastT    map[int]sim.Time
	lost     map[int]bool
	placedAt map[int]sim.Time
	sepoch   map[int]int     // gid → stream epoch (advances per committed move)
	pend     map[int]pending // gid → journaled intent awaiting commit

	jobs   []func(done func()) // serialized migration work queue
	active bool

	// Artifact fragments, merged at collect time.
	migLog []logRow
	pulses []logRow
	haEv   []haEvent

	// Violation ledger (continued across failover via checkpoints).
	violByGid   map[int]*[2]int64
	violDuring  int64
	violOutside int64

	// Counters. Migration counters tally this replica's own committed
	// actions (summed at collect — fencing keeps them disjoint); the
	// replication counters feed the control-plane rollup.
	live, cold, readds, parked, replayed int
	ckptsSent, ckptsRecv                 int
	jentries, jdrops                     int
	jbytes                               int64
	takeovers, fencedSeen                int
	adopted, reissued                    int

	// Takeover scratch: card → answered view, rebuilt per fence+query round.
	view map[int]*cardView
}

func newCtrlRep(f *fleetChaos, id int, part *sim.Partition) *ctrlRep {
	return &ctrlRep{
		f: f, id: id, name: ctrlReplicaName(id), part: part,
		leader: id == 0, epoch: 1, synced: true,
		loc:       map[int]int{},
		ckpt:      map[int]dwcs.StreamSnapshot{},
		lastV:     map[int]int64{},
		lastT:     map[int]sim.Time{},
		lost:      map[int]bool{},
		placedAt:  map[int]sim.Time{},
		sepoch:    map[int]int{},
		pend:      map[int]pending{},
		violByGid: map[int]*[2]int64{},
	}
}

// ctrlReplicaName names replica k in plans, timelines, and tables.
func ctrlReplicaName(k int) string {
	if k == 0 {
		return "ctl-a"
	}
	return "ctl-b"
}

// timelineSrc maps a replica to its merged-timeline source index. The
// standby sorts before the primary at equal instants, so a takeover's fence
// broadcast renders above the ex-primary's rejected commands.
func (r *ctrlRep) timelineSrc() int {
	if r.id == 0 {
		return fleetobs.SrcController
	}
	return fleetobs.SrcControllerB
}

// --- plan-derived replica liveness -------------------------------------------

func (f *fleetChaos) ha() bool { return len(f.reps) > 1 }

// ctrlFaultAt reports whether a controller fault of the given kind covers
// replica k at t. A pure function of the static plan, so every partition
// evaluates the identical answer.
func (f *fleetChaos) ctrlFaultAt(kind faults.Kind, k int, t sim.Time) bool {
	for _, e := range f.plan.Events {
		if e.Kind == kind && eventActive(e, t) && e.Target == ctrlReplicaName(k) {
			return true
		}
	}
	return false
}

func (f *fleetChaos) ctrlDeadAt(k int, t sim.Time) bool {
	return f.ctrlFaultAt(faults.ControllerCrash, k, t)
}

// ctrlSeveredAt reports whether the replica pair link is cut at t: with two
// replicas, isolating either one severs the pair.
func (f *fleetChaos) ctrlSeveredAt(t sim.Time) bool {
	return f.ctrlFaultAt(faults.ControllerPartition, 0, t) ||
		f.ctrlFaultAt(faults.ControllerPartition, 1, t)
}

// lead returns the replica whose books render the run's placement and
// violation artifacts: the surviving leader, by highest epoch.
func (f *fleetChaos) lead() *ctrlRep {
	best := f.reps[0]
	for _, r := range f.reps[1:] {
		if r.leader && (!best.leader || r.epoch > best.epoch) {
			best = r
		}
	}
	return best
}

// streamBy resolves a gid to its stream record (gids are 1-based and dense
// in cstream order — see the stream build loop in buildFleetChaos).
func (f *fleetChaos) streamBy(gid int) *chaosStream { return f.cstream[gid-1] }

// --- hops ---------------------------------------------------------------------

func (r *ctrlRep) eng() *sim.Engine {
	if r.part == nil {
		return r.f.mono
	}
	return r.part.Eng()
}

func (r *ctrlRep) deadNow() bool { return r.f.ctrlDeadAt(r.id, r.eng().Now()) }

// toCard runs fn in card i's partition one network hop from now. A crashed
// replica sends nothing.
func (r *ctrlRep) toCard(i int, fn func()) {
	if r.deadNow() {
		return
	}
	if r.part == nil {
		r.f.mono.After(r.f.cfg.NetLatency, fn)
		return
	}
	r.part.Send(r.f.cards[i].part, r.f.cfg.NetLatency, fn)
}

// fromCard runs fn in this replica's partition one hop from now (card i
// context). Delivery is dropped while the replica is crashed — a dead
// controller's inbox answers nothing.
func (r *ctrlRep) fromCard(i int, fn func()) {
	guarded := func() {
		if r.deadNow() {
			return
		}
		fn()
	}
	if r.part == nil {
		r.f.mono.After(r.f.cfg.NetLatency, guarded)
		return
	}
	r.f.cards[i].part.Send(r.part, r.f.cfg.NetLatency, guarded)
}

// toPeer ships one replication message of the given wire size to the other
// replica. The bytes are priced at send time (offered journal traffic); the
// message is dropped when the pair link is severed or either end is crashed,
// counted on whichever replica observed the drop.
func (r *ctrlRep) toPeer(bytes int64, fn func()) {
	p := r.peer
	if p == nil || r.deadNow() {
		return
	}
	r.jbytes += bytes
	if r.f.ctrlSeveredAt(r.eng().Now()) {
		r.jdrops++
		return
	}
	deliver := func() {
		if p.deadNow() {
			p.jdrops++
			return
		}
		fn()
	}
	if r.part == nil {
		r.f.mono.After(r.f.cfg.NetLatency, deliver)
		return
	}
	r.part.Send(p.part, r.f.cfg.NetLatency, deliver)
}

// cmd delivers a controller command to card i behind the leader-epoch fence:
// the card executes fn only when the stamp is current, raising its fence on
// a newer stamp and rejecting (with a reply that demotes the sender) on a
// stale one. fenced, when non-nil, runs on the sender after a rejection so
// multi-step protocols (the migration queue's done callbacks) still settle.
// With an unreplicated control plane this is a plain single-hop send.
func (r *ctrlRep) cmd(i int, what string, gid int, fn func(), fenced func()) {
	if !r.f.ha() {
		r.toCard(i, fn)
		return
	}
	ep, rep := r.epoch, r.id
	r.toCard(i, func() {
		f := r.f
		if !f.fence[i].admit(ep, rep) {
			cur := f.fence[i].epoch
			fc := f.cards[i]
			f.cardHA[i] = append(f.cardHA[i], haEvent{
				at: fc.eng.Now(), src: i, name: niName(i), kind: "fenced",
				stream: gid,
				note: fmt.Sprintf("%s from %s stamped epoch %d < fence %d; rejected",
					what, ctrlReplicaName(rep), ep, cur),
			})
			fc.rec.Record(blackbox.Event{At: fc.eng.Now(), Kind: blackbox.KindRefusal,
				Stream: gid, A: int64(ep), B: int64(cur),
				Note: "fenced: stale leader epoch (" + what + ")"})
			f.fencedByCard[i]++
			r.fromCard(i, func() {
				r.onFenced(what, cur)
				if fenced != nil {
					fenced()
				}
			})
			return
		}
		fn()
	})
}

// --- the serialized migration queue and per-replica logs ----------------------

// enqueueJob appends one unit of migration work to this replica's queue.
// Jobs run strictly one at a time — a migration's multi-hop protocol settles
// before the next starts — which is what makes the global order of target
// admissions (and therefore every artifact byte) independent of worker
// count.
func (r *ctrlRep) enqueueJob(job func(done func())) {
	r.jobs = append(r.jobs, job)
	r.pump()
}

func (r *ctrlRep) pump() {
	if r.active || len(r.jobs) == 0 {
		return
	}
	r.active = true
	job := r.jobs[0]
	r.jobs = r.jobs[1:]
	job(func() {
		r.active = false
		r.pump()
	})
}

func (r *ctrlRep) logf(at sim.Time, format string, args ...any) {
	r.migLog = append(r.migLog, logRow{at, fmt.Sprintf(format, args...)})
}

func (r *ctrlRep) pulse(at sim.Time, format string, args ...any) {
	r.pulses = append(r.pulses, logRow{at, fmt.Sprintf(format, args...)})
}

// halog drops one row on this replica's incident-timeline fragment.
func (r *ctrlRep) halog(kind string, stream int, format string, args ...any) {
	r.haEv = append(r.haEv, haEvent{
		at: r.eng().Now(), src: r.timelineSrc(), name: r.name,
		kind: kind, stream: stream, note: fmt.Sprintf(format, args...),
	})
}

// --- the journal ----------------------------------------------------------------

// journal ships one write-ahead record to the standby and mirrors intent
// bookkeeping locally, so the leader's own pend map proves the same
// in-flight set its peer reconstructs.
func (r *ctrlRep) journal(rec jrec) {
	rec.at = r.eng().Now()
	rec.leaderEpoch = r.epoch
	switch rec.op {
	case jIntent:
		r.pend[rec.gid] = pending{from: rec.from, want: rec.to}
	case jImage:
		p := r.pend[rec.gid]
		p.img, p.hasImg = rec.img, true
		r.pend[rec.gid] = p
	case jCommit, jLost:
		delete(r.pend, rec.gid)
	}
	if r.peer == nil {
		return
	}
	r.jentries++
	r.toPeer(dvcmnet.JournalEntryBytes, func() { r.peer.applyJournal(rec) })
}

// applyJournal folds one record into the standby's materialized view. Stale
// leader epochs are ignored — after a takeover the deposed leader's
// stragglers must not overwrite the new leader's books.
func (r *ctrlRep) applyJournal(rec jrec) {
	if rec.leaderEpoch < r.epoch || r.leader {
		return
	}
	switch rec.op {
	case jIntent:
		r.pend[rec.gid] = pending{from: rec.from, want: rec.to}
	case jImage:
		p := r.pend[rec.gid]
		p.img, p.hasImg = rec.img, true
		r.pend[rec.gid] = p
		// The detached live image is the freshest checkpoint there is.
		r.ckpt[rec.gid] = rec.img
	case jCommit:
		r.loc[rec.gid] = rec.to
		r.placedAt[rec.gid] = rec.at
		r.sepoch[rec.gid] = rec.sepoch
		delete(r.lost, rec.gid)
		delete(r.pend, rec.gid)
	case jLost:
		r.lost[rec.gid] = true
		delete(r.pend, rec.gid)
	}
}

// --- checkpoints and the standby watchdog --------------------------------------

// tick is one PollEvery round: the leader polls the cards and ships a
// checkpoint; a follower watches for the leader's silence. A crashed
// replica does neither.
func (r *ctrlRep) tick() {
	if r.deadNow() {
		return
	}
	if r.leader {
		r.poll()
		r.sendCheckpoint()
		return
	}
	r.watchdog()
}

func (r *ctrlRep) sendCheckpoint() {
	if r.peer == nil {
		return
	}
	m := &ckptMsg{
		epoch: r.epoch, at: r.eng().Now(),
		loc:         copyMap(r.loc),
		placedAt:    copyMap(r.placedAt),
		lost:        copyMap(r.lost),
		sepoch:      copyMap(r.sepoch),
		ckpt:        copyMap(r.ckpt),
		lastV:       copyMap(r.lastV),
		lastT:       copyMap(r.lastT),
		violByGid:   map[int][2]int64{},
		violDuring:  r.violDuring,
		violOutside: r.violOutside,
	}
	for gid, t := range r.violByGid {
		m.violByGid[gid] = *t
	}
	r.ckptsSent++
	bytes := int64(dvcmnet.CkptHeaderBytes + len(m.loc)*dvcmnet.CkptStreamBytes)
	r.toPeer(bytes, func() { r.peer.onCheckpoint(m) })
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// onCheckpoint adopts the leader's state. A higher epoch than our own while
// we hold leadership means a new leader exists (the healed-partition case):
// we demote first, then resync.
func (r *ctrlRep) onCheckpoint(m *ckptMsg) {
	r.ckptsRecv++
	if m.epoch < r.epoch {
		return // straggler from a deposed leader; fencing will demote it
	}
	if r.leader && m.epoch > r.epoch {
		r.demote(fmt.Sprintf("checkpoint at epoch %d outranks own %d", m.epoch, r.epoch))
	}
	r.epoch = m.epoch
	if r.leader {
		return
	}
	r.lastCkpt = r.eng().Now()
	r.synced = true
	r.loc, r.placedAt, r.lost = m.loc, m.placedAt, m.lost
	r.sepoch, r.ckpt = m.sepoch, m.ckpt
	r.lastV, r.lastT = m.lastV, m.lastT
	r.violDuring, r.violOutside = m.violDuring, m.violOutside
	r.violByGid = map[int]*[2]int64{}
	for gid, t := range m.violByGid {
		t := t
		r.violByGid[gid] = &t
	}
}

// watchdog suspects the leader once the checkpoint gap exceeds 1.5 poll
// periods (a healthy gap is one period minus a hop), which bounds takeover
// at two poll periods after the loss. A follower that has not heard the
// current leader at least once — a deposed ex-primary still partitioned
// away from its successor — must stay quiet: seizing leadership while cut
// off is exactly the split-brain the fence exists to stop.
func (r *ctrlRep) watchdog() {
	if !r.synced {
		return
	}
	gap := r.eng().Now() - r.lastCkpt
	if gap < r.f.ccfg.PollEvery*3/2 {
		return
	}
	r.leader = true
	r.epoch++
	r.takeovers++
	r.synced = false
	r.halog("leader-takeover", 0,
		"no checkpoint for %v (> 1.5 poll periods); leader epoch %d→%d",
		gap, r.epoch-1, r.epoch)
	r.fenceAndReconcile("takeover")
}

// demote surrenders leadership: the job queue is wiped (its in-flight
// protocol steps will be fenced anyway) and the replica becomes an unsynced
// follower that must hear the new leader's checkpoint before it may ever
// suspect loss again.
func (r *ctrlRep) demote(why string) {
	if !r.leader {
		return
	}
	r.leader = false
	r.jobs, r.active = nil, false
	r.lastCkpt = r.eng().Now()
	r.synced = false
	r.halog("leader-deposed", 0, "%s", why)
}

// onFenced runs on a sender whose command a card rejected: a newer leader
// epoch exists, so surrender.
func (r *ctrlRep) onFenced(what string, fence int) {
	r.fencedSeen++
	if fence > r.epoch {
		r.epoch = fence
	}
	r.demote(fmt.Sprintf("%s fenced at epoch %d", what, fence))
}

// --- controller fault arming ---------------------------------------------------

// onCrash marks the blackout start in this replica's own partition. Liveness
// itself is plan-derived; this hook only wipes the dynamic state a real
// crash destroys — the in-flight job queue.
func (r *ctrlRep) onCrash(e faults.Event) {
	r.jobs, r.active = nil, false
	r.halog("ctrl-crash", 0, "replica halted for %v", e.Duration)
}

// onRecover brings the replica back. A leader that was never deposed while
// dark resumes by reconciling its journal against the cards — exactly the
// takeover procedure minus the epoch bump — so any migration its crash cut
// mid-protocol is adopted or re-issued, never leaked. A follower resets its
// watchdog clock and waits for a fresh checkpoint to resync.
func (r *ctrlRep) onRecover(e faults.Event) {
	r.halog("ctrl-recover", 0, "replica back after %v", e.Duration)
	if r.leader {
		r.fenceAndReconcile("recovery")
		return
	}
	r.lastCkpt = r.eng().Now()
}

// --- takeover: fence, query, reconcile ------------------------------------------

// fenceAndReconcile broadcasts the (possibly just bumped) leader epoch to
// every card and queries each card's stream state; reconcileJournal runs one
// round-trip plus a millisecond later, by which time every live card's
// answer has deterministically arrived (crashed cards answer nothing).
func (r *ctrlRep) fenceAndReconcile(why string) {
	r.view = map[int]*cardView{}
	ep, rep := r.epoch, r.id
	for i := range r.f.cards {
		i := i
		r.toCard(i, func() {
			f := r.f
			fc := f.cards[i]
			if f.fence[i].epoch < ep {
				f.cardHA[i] = append(f.cardHA[i], haEvent{
					at: fc.eng.Now(), src: i, name: niName(i), kind: "fence",
					note: fmt.Sprintf("fence raised to epoch %d by %s (%s)",
						ep, ctrlReplicaName(rep), why),
				})
			}
			f.fence[i].admit(ep, rep)
			if fc.sched.Crashed() {
				return // a dead card answers nothing; the plan predicates cover it
			}
			v := &cardView{sepoch: map[int]int{}}
			v.snaps = fc.ext.Sched.Snapshot()
			for _, sn := range v.snaps {
				v.sepoch[sn.Spec.ID] = f.cardSE[i][sn.Spec.ID]
			}
			r.fromCard(i, func() { r.view[i] = v })
		})
	}
	wait := 2*r.f.cfg.NetLatency + sim.Millisecond
	r.eng().After(wait, func() {
		if r.deadNow() || !r.leader {
			return
		}
		r.reconcileJournal(why)
	})
}

// reconcileJournal folds the fence+query answers into this replica's books
// and re-issues exactly the work the journal proves incomplete:
//
//   - a pending intent whose stream a card confirms → the old leader's
//     migration completed; adopt the placement (no data moves);
//   - a pending intent no card confirms → the stream was detached and never
//     landed; re-place it cold from the journaled live image (freshest) or
//     the last checkpoint;
//   - a journaled location whose card answered without the stream → the
//     placement is a ghost (wiped, or detached mid-protocol before the
//     intent shipped); mark lost for the standard pass to readd.
//
// A full standard reconcile follows, so fault-driven moves that fell into
// the detection gap are also caught.
func (r *ctrlRep) reconcileJournal(why string) {
	t := r.eng().Now()
	for _, st := range r.f.cstream {
		gid := st.gid
		if p, ok := r.pend[gid]; ok {
			if card, se, found := r.findInView(gid); found {
				r.loc[gid] = card
				r.placedAt[gid] = t
				if se > r.sepoch[gid] {
					r.sepoch[gid] = se
				}
				delete(r.pend, gid)
				delete(r.lost, gid)
				r.adopted++
				r.halog("journal-adopt", gid,
					"intent %s: ni%02d confirms placement; adopted, no re-issue",
					why, card)
				continue
			}
			img, has := p.img, p.hasImg
			if !has {
				img, has = r.ckpt[gid]
			}
			delete(r.pend, gid)
			if !has {
				r.lost[gid] = true
				r.halog("journal-lost", gid,
					"intent incomplete and no image or checkpoint; awaiting readd")
				continue
			}
			r.reissued++
			r.halog("journal-reissue", gid,
				"intent incomplete (detached, never landed); re-placing seq=%d win=(%d,%d)",
				img.Seq, img.WindowX, img.WindowY)
			st := st
			from := p.from
			r.enqueueJob(func(done func()) {
				now := r.eng().Now()
				r.placeImage(st, from, img, nil, true,
					r.f.candidates(st, now, r.f.desired(st, now), true), done)
			})
			continue
		}
		if c, ok := r.loc[gid]; ok && !r.lost[gid] {
			if v := r.view[c]; v != nil {
				if _, on := v.sepoch[gid]; !on {
					r.lost[gid] = true
					r.halog("journal-ghost", gid,
						"journal places it on ni%02d but the card disowns it; readd pending", c)
				}
			}
		}
		// Refresh checkpoints from the answers — fresher than anything the
		// journal shipped before the blackout.
		if c, ok := r.loc[gid]; ok {
			if v := r.view[c]; v != nil {
				for _, sn := range v.snaps {
					if sn.Spec.ID == gid {
						r.ckpt[gid] = sn
					}
				}
			}
		}
	}
	r.view = nil
	r.reconcile()
}

// findInView locates gid on the answered cards, preferring the lowest card
// index (deterministic; at most one card can genuinely hold an attached
// stream — detach removes it from the source before import adds it).
func (r *ctrlRep) findInView(gid int) (card, sepoch int, found bool) {
	for i := range r.f.cards {
		v := r.view[i]
		if v == nil {
			continue
		}
		if se, ok := v.sepoch[gid]; ok {
			return i, se, true
		}
	}
	return 0, 0, false
}

// --- row merging (after the run) ------------------------------------------------

// mergeRows flattens per-replica log fragments into one deterministic
// sequence ordered by (time, replica, per-replica arrival). A single-replica
// run reduces to that replica's original order.
func mergeRows(reps []*ctrlRep, pick func(*ctrlRep) []logRow) []string {
	type tagged struct {
		at       sim.Time
		rep, seq int
		text     string
	}
	var all []tagged
	for _, r := range reps {
		for i, row := range pick(r) {
			all = append(all, tagged{row.at, r.id, i, row.text})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.rep != b.rep {
			return a.rep < b.rep
		}
		return a.seq < b.seq
	})
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.text
	}
	return out
}

// --- the ctrl-chaos run -----------------------------------------------------------

// CtrlChaosResult carries one controller-chaos run's artifacts on top of the
// underlying chaos run's. Everything but Chaos.Rounds is byte-deterministic
// across Monolithic, Workers=1, and Workers=N.
type CtrlChaosResult struct {
	Chaos *FleetChaosResult

	CtrlPlane  string // per-replica leadership/journal rollup
	HATimeline string // merged takeover/fence/journal incident timeline
	HASummary  string // the one-line summary the overhead gate parses

	JournalBytes int64 // journal + checkpoint traffic offered (both replicas)
	MediaBytes   int64 // client-received media bytes (the overhead denominator)

	Takeovers     int
	Adopted       int // journaled intents adopted as complete on takeover
	Reissued      int // journaled intents re-issued as cold placements
	FencedRejects int // stale-epoch commands rejected by cards
	DoublePlaced  int // streams attached on more than one live card (want: 0)
	LeaderName    string
	LeaderEpoch   int
}

// RunCtrlChaos builds the chaos fleet with the replicated control plane,
// runs it, and renders the HA artifacts alongside the chaos ones.
func RunCtrlChaos(cfg FleetChaosConfig) *CtrlChaosResult {
	cfg.CtrlHA = true
	cfg.setDefaults()
	f := buildFleetChaos(cfg, nil)
	f.runChaos()
	f.collectChaos()
	return f.collectHA()
}

// collectHA renders the control-plane artifacts from the settled fleet.
func (f *fleetChaos) collectHA() *CtrlChaosResult {
	res := &CtrlChaosResult{Chaos: f.res}
	lead := f.lead()
	res.LeaderName, res.LeaderEpoch = lead.name, lead.epoch

	stats := make([]fleetobs.CtrlStat, 0, len(f.reps))
	for _, r := range f.reps {
		stats = append(stats, fleetobs.CtrlStat{
			Name: r.name, Leader: r.leader, Epoch: r.epoch, Takeovers: r.takeovers,
			CkptsSent: r.ckptsSent, CkptsRecv: r.ckptsRecv,
			JournalSent: r.jentries, JournalBytes: r.jbytes,
			Dropped: r.jdrops, Fenced: r.fencedSeen,
		})
		res.JournalBytes += r.jbytes
		res.Takeovers += r.takeovers
		res.Adopted += r.adopted
		res.Reissued += r.reissued
	}
	res.CtrlPlane = fleetobs.RenderCtrlPlane(stats)

	// The incident timeline: replica fragments plus card-side fence
	// rejections, merged by (time, source, per-source arrival) and rendered
	// through the standard timeline artifact (tracetool -timeline parses it).
	var evs []haEvent
	for _, r := range f.reps {
		evs = append(evs, r.haEv...)
	}
	for i := range f.cards {
		evs = append(evs, f.cardHA[i]...)
		res.FencedRejects += f.fencedByCard[i]
	}
	ords := map[int]int{}
	for i := range evs {
		ords[evs[i].src]++
		evs[i].seq = int64(ords[evs[i].src])
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	tl := fleetobs.NewTimeline()
	for _, e := range evs {
		host, sw := "", ""
		if e.src >= 0 {
			host, sw = f.hostName(f.hostOf(e.src)), f.switchName(f.switchOf(e.src))
		}
		tl.Add(fleetobs.TimelineEvent{
			At: e.at, Src: e.src, SrcName: e.name, Host: host, Switch: sw,
			Kind: e.kind, Stream: e.stream, Note: e.note,
		})
	}
	res.HATimeline = tl.Render()

	// Double-placement scan: a stream attached on two live cards means a
	// stale command executed — the fence failed. Crashed cards hold only
	// wipe-pending ghosts and do not count.
	placed := map[int][]int{}
	for i, fc := range f.cards {
		if fc.sched.Crashed() {
			continue
		}
		for _, gid := range fc.ext.Sched.StreamIDs() {
			placed[gid] = append(placed[gid], i)
		}
	}
	var gids []int
	for gid, on := range placed {
		if len(on) > 1 {
			gids = append(gids, gid)
		}
	}
	sort.Ints(gids)
	res.DoublePlaced = len(gids)

	for _, st := range f.cstream {
		res.MediaBytes += st.cl.RecvBytes
	}
	overhead := 0.0
	if res.MediaBytes > 0 {
		overhead = 100 * float64(res.JournalBytes) / float64(res.MediaBytes)
	}
	var extra string
	if len(gids) > 0 {
		var b strings.Builder
		for _, gid := range gids {
			fmt.Fprintf(&b, " gid=%02d on %v", gid, placed[gid])
		}
		extra = " DOUBLE-PLACED:" + b.String()
	}
	res.HASummary = fmt.Sprintf(
		"ctrl-ha: leader=%s epoch=%d takeovers=%d adopted=%d reissued=%d "+
			"fenced=%d double_placed=%d journal=%dB media=%dB overhead=%.3f%%%s",
		res.LeaderName, res.LeaderEpoch, res.Takeovers, res.Adopted, res.Reissued,
		res.FencedRejects, res.DoublePlaced, res.JournalBytes, res.MediaBytes,
		overhead, extra)
	return res
}
