package cluster

import (
	"strings"
	"testing"
)

func chaosArtifacts(r *FleetChaosResult) string {
	return strings.Join([]string{
		r.Plan, r.Table, r.Pulse, r.MigLog, r.Recovery, r.Violations, r.CSV, r.Summary,
	}, "\n---\n")
}

func resumedPct(r *FleetChaosResult) float64 {
	moved := r.LiveMigrations + r.ColdMigrations
	attempted := moved + r.Readds + r.Parked
	if attempted == 0 {
		return 100
	}
	return 100 * float64(moved) / float64(attempted)
}

// The full default chaos plan — one host crash, one switch partition, one
// rolling drain — must be survived: no stream parked, ≥90% of displaced
// streams resume via live or cold migration (ID preserved, no teardown),
// and zero loss-window violations land outside the padded outage windows.
func TestFleetChaosSurvivesCorrelatedFaults(t *testing.T) {
	r := RunFleetChaos(FleetChaosConfig{Workers: 1})
	if r.TotalRecv == 0 {
		t.Fatalf("no media delivered: %s", r.Summary)
	}
	if r.LiveMigrations+r.ColdMigrations == 0 {
		t.Fatalf("chaos plan displaced no streams: %s\n%s", r.Summary, r.Plan)
	}
	if r.Parked != 0 {
		t.Errorf("streams left unplaced: %s\n%s", r.Summary, r.MigLog)
	}
	if pct := resumedPct(r); pct < 90 {
		t.Errorf("resumed %.0f%% < 90%%: %s\n%s", pct, r.Summary, r.MigLog)
	}
	if r.ViolOutside != 0 {
		t.Errorf("loss-window violations outside outage windows: %s\n%s",
			r.Summary, r.Violations)
	}
	if strings.Contains(r.Recovery, "no frame after strike") {
		t.Errorf("affected stream never recovered:\n%s", r.Recovery)
	}
}

// Each fault kind alone must also be survivable — the correlated-plan test
// can mask a kind-specific hole when another kind's migrations shuffle the
// same streams.
func TestFleetChaosEachKindAlone(t *testing.T) {
	kinds := []struct {
		name                  string
		crash, part, drain    int
		wantLive, wantCold    bool
		wantSevered, wantMove bool
	}{
		{name: "host-crash", crash: 1, part: -1, drain: -1, wantCold: true, wantMove: true},
		{name: "net-partition", crash: -1, part: 1, drain: -1, wantSevered: true, wantMove: true},
		{name: "rolling-drain", crash: -1, part: -1, drain: 1, wantLive: true, wantMove: true},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			r := RunFleetChaos(FleetChaosConfig{
				Workers: 1, HostCrashes: k.crash, NetPartitions: k.part, RollingDrains: k.drain,
			})
			if k.wantMove && r.LiveMigrations+r.ColdMigrations == 0 {
				t.Fatalf("no migrations: %s\n%s", r.Summary, r.Plan)
			}
			if k.wantCold && r.ColdMigrations == 0 {
				t.Errorf("host crash produced no cold migrations: %s", r.Summary)
			}
			if k.wantLive && r.LiveMigrations == 0 {
				t.Errorf("drain produced no live migrations: %s", r.Summary)
			}
			if k.wantSevered && r.SeveredDrops == 0 {
				t.Errorf("partition severed no fleet-network hops: %s", r.Summary)
			}
			if pct := resumedPct(r); pct < 90 {
				t.Errorf("resumed %.0f%% < 90%%: %s", pct, r.Summary)
			}
			if r.ViolOutside != 0 {
				t.Errorf("violations outside outage: %s\n%s", r.Summary, r.Violations)
			}
		})
	}
}

// The byte-identical contract extends to chaos: the injected plan, every
// migration decision, and all artifacts must not depend on the worker count
// or on partitioned-vs-monolithic execution.
func TestFleetChaosDeterminism(t *testing.T) {
	ref := chaosArtifacts(RunFleetChaos(FleetChaosConfig{Workers: 1}))
	if got := chaosArtifacts(RunFleetChaos(FleetChaosConfig{Workers: 4})); got != ref {
		t.Fatalf("workers=4 artifacts diverged from workers=1:\n%s", firstDiff(ref, got))
	}
	if got := chaosArtifacts(RunFleetChaos(FleetChaosConfig{Monolithic: true})); got != ref {
		t.Fatalf("monolithic artifacts diverged from workers=1:\n%s", firstDiff(ref, got))
	}
}

// firstDiff trims a pair of big artifact blobs to the first divergent line.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + string(rune('0'+i%10)) + ": " + al[i] + "\n vs: " + bl[i]
		}
	}
	return "length mismatch"
}

// A bigger fleet with a heavier correlated plan: two host crashes plus a
// partition and a drain overlapping. The controller must still place every
// stream somewhere and keep violations inside the outage windows.
func TestFleetChaosHeavyPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy chaos plan")
	}
	r := RunFleetChaos(FleetChaosConfig{
		Workers: 1, Cards: 12, CardsPerHost: 2, HostsPerSwitch: 3,
		HostCrashes: 2, NetPartitions: 1, RollingDrains: 1,
	})
	if r.ViolOutside != 0 {
		t.Errorf("violations outside outage: %s\n%s", r.Summary, r.Violations)
	}
	if pct := resumedPct(r); pct < 90 {
		t.Errorf("resumed %.0f%% < 90%%: %s\n%s", pct, r.Summary, r.MigLog)
	}
}
