// Fleet: the multi-card scaling scenario (Figure 6 / claim 4) on the
// partitioned conservative engine. Each card complex — a PCI segment with a
// disk NI, a scheduler NI running DWCS with overload control and a flight
// recorder — lives in its own sim.Partition with a private event heap and
// RNG stream; a DVCM-style controller partition polls every card over the
// distribution network. Media leaves a card's Ethernet port into the fleet
// network, whose per-hop latency is the topology's channel lookahead, and
// lands on clients homed with the next card complex — so every media frame
// genuinely crosses a partition boundary.
//
// The same wiring runs in three modes with byte-identical artifacts:
// monolithic (every component on one shared Engine — the sequential
// reference), partitioned with Workers=1, and partitioned with Workers=N.
// The media path draws nothing from the engines' RNG streams and all
// cross-card interactions ride the fleet hop, which both modes order
// identically (per-hop arrivals tie-break by source card, and card-local
// event times never collide with hop arrivals' sub-microsecond phases), so
// the per-card tables, controller pulse log, and per-stream CSV are a pure
// function of the FleetConfig.
package cluster

import (
	"fmt"
	"strings"

	"repro/internal/blackbox"
	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/overload"
	"repro/internal/sim"
)

// Fleet wiring parameters that are not worth configuring per run.
const (
	// fleetStreamPeriod is each stream's DWCS deadline period and producer
	// injection cadence (25 fps).
	fleetStreamPeriod = 40 * sim.Millisecond
	// fleetEligibleEarly keeps the scheduler work-conserving within a small
	// window, as the single-card experiments do.
	fleetEligibleEarly = 20 * sim.Millisecond
	// fleetBufCap bounds each stream's descriptor ring.
	fleetBufCap = 64
	// fleetRingBytes sizes each card's flight-recorder ring.
	fleetRingBytes = 16 << 10
)

// FleetConfig parameterizes RunFleet.
type FleetConfig struct {
	Cards          int      // card complexes; 0 = 8
	StreamsPerCard int      // media streams sourced by each card; 0 = 2
	Dur            sim.Time // simulated run length; 0 = 2 s
	Workers        int      // topology worker cap; 0 = GOMAXPROCS, 1 = sequential
	NetLatency     sim.Time // distribution-network hop latency (= lookahead); 0 = 5 ms
	PollEvery      sim.Time // controller poll period; 0 = 500 ms
	Seed           int64    // topology seed; 0 = 1960
	// Monolithic builds the identical fleet on one shared Engine instead of
	// partitions — the sequential reference the byte-identical contract is
	// checked against.
	Monolithic bool
}

func (cfg *FleetConfig) setDefaults() {
	if cfg.Cards <= 0 {
		cfg.Cards = 8
	}
	if cfg.StreamsPerCard <= 0 {
		cfg.StreamsPerCard = 2
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 2 * sim.Second
	}
	if cfg.NetLatency <= 0 {
		cfg.NetLatency = 5 * sim.Millisecond
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 500 * sim.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1960
	}
}

// fleetCard is one card complex plus the clients homed alongside it.
type fleetCard struct {
	part  *sim.Partition // nil in monolithic mode
	eng   *sim.Engine
	disk  *nic.Card
	sched *nic.Card
	ext   *nic.SchedulerExt
	ctl   *overload.Controller
	rec   *blackbox.Recorder
	rx    map[string]*netsim.Link // client addr → receive link (this partition)
}

// fleetStream is one media stream: sourced on cards[card], received by a
// client homed with cards[(card+1)%Cards].
type fleetStream struct {
	card int
	id   int
	addr string
	prod *nic.Producer
	cl   *netsim.Client
}

// FleetResult carries the deterministic artifacts of one fleet run. Table,
// Pulse, CSV, and Summary are the byte-compared artifacts; Rounds is an
// engine-internal diagnostic (undefined in monolithic mode) and is not part
// of the determinism contract.
type FleetResult struct {
	Cards   int
	Streams int
	Dur     sim.Time

	Table   string // per-card ledger
	Pulse   string // controller poll log
	CSV     string // per-stream rows
	Summary string

	TotalInjected int64
	TotalSent     int64
	TotalRecv     int64
	TotalLate     int64
	TotalDropped  int64
	RecvBytes     int64

	Rounds int64
}

// fleet is the assembled topology during a run.
type fleet struct {
	cfg     FleetConfig
	topo    *sim.Topology // nil in monolithic mode
	mono    *sim.Engine   // shared engine in monolithic mode
	ctrl    *sim.Partition
	cards   []*fleetCard
	streams []*fleetStream
	route   map[string]int // client addr → home card index
	pulses  []string

	// drop, when set, vetoes a fleet-network hop from the source card to the
	// home card — the chaos layer's network-partition severance. It runs in
	// the source card's partition at transmit time.
	drop func(from, home int) bool
}

// forward carries one media frame across the fleet network: NetLatency of
// distribution-network flight, then the home card's receive link to the
// client. In partitioned mode this is the inter-partition channel whose
// lookahead is exactly that latency.
func (f *fleet) forward(from int, p *netsim.Packet) {
	home, ok := f.route[p.Dst]
	if !ok {
		return // not a media destination; drop on the fleet floor
	}
	if f.drop != nil && f.drop(from, home) {
		return // severed by an active network partition
	}
	dst := f.cards[home]
	deliver := func() { dst.rx[p.Dst].Send(p, nil) }
	if f.topo == nil || home == from {
		f.cards[from].eng.After(f.cfg.NetLatency, deliver)
		return
	}
	f.cards[from].part.Send(dst.part, f.cfg.NetLatency, deliver)
}

// buildCard assembles card complex i on eng: PCI segment, disk NI,
// scheduler NI with DWCS + overload controller + flight recorder, and the
// Ethernet port into the fleet network.
func (f *fleet) buildCard(i int, eng *sim.Engine, part *sim.Partition) *fleetCard {
	name := fmt.Sprintf("ni%02d", i)
	seg := bus.New(eng, bus.PCI(name+"-pci"))

	diskCard := nic.New(eng, nic.Config{Name: name + "-disk", PCI: seg})
	d := disk.New(eng, disk.DefaultSCSI(name+"-scsi0"))
	diskCard.AttachDisk(d, disk.NewDOSFS(d))

	schedCard := nic.New(eng, nic.Config{Name: name + "-sched", PCI: seg, CacheOn: true})
	ext, err := schedCard.LoadScheduler(nic.SchedulerConfig{EligibleEarly: fleetEligibleEarly})
	if err != nil {
		panic(err)
	}
	ctl := overload.NewController(schedCard.Name, schedCard.Mem.Size())
	ext.AttachOverload(ctl)
	rec, err := blackbox.New(blackbox.Config{
		Name: schedCard.Name, Bytes: fleetRingBytes, Budget: ctl.Budget,
	})
	if err != nil {
		panic(err)
	}
	ext.AttachBlackbox(rec)

	from := i
	schedCard.ConnectEthernet(netsim.Fast100(eng, name+"-eth",
		netsim.PortFunc(func(p *netsim.Packet) { f.forward(from, p) })))

	return &fleetCard{
		part: part, eng: eng,
		disk: diskCard, sched: schedCard,
		ext: ext, ctl: ctl, rec: rec,
		rx: map[string]*netsim.Link{},
	}
}

// pollCard is one controller poll of card i: NetLatency out, a stats read
// on the card, NetLatency back, one pulse row on arrival. send/reply
// abstract the hop so monolithic and partitioned modes share the logic.
func (f *fleet) pollCard(i int, send, reply func(fn func())) {
	fc := f.cards[i]
	send(func() {
		at := fc.eng.Now()
		sent, dropped := fc.ext.Sent, fc.ext.Dropped
		revoked := fc.ext.RevokedCount()
		used, size := fc.ctl.Budget.Used(), fc.ctl.Budget.Size()
		reply(func() {
			f.pulses = append(f.pulses, fmt.Sprintf(
				"t=%-10v ni%02d sent=%-6d dropped=%-4d revoked=%d mem=%d/%d",
				at, i, sent, dropped, revoked, used, size))
		})
	})
}

// RunFleet builds and runs the fleet scenario, returning its deterministic
// artifacts. The artifact bytes are identical for Monolithic, Workers=1,
// and Workers=N runs of the same configuration.
func RunFleet(cfg FleetConfig) *FleetResult {
	cfg.setDefaults()
	f := &fleet{cfg: cfg, route: map[string]int{}}

	var ctrlEng *sim.Engine
	if cfg.Monolithic {
		f.mono = sim.NewEngine(cfg.Seed)
		ctrlEng = f.mono
		for i := 0; i < cfg.Cards; i++ {
			f.cards = append(f.cards, f.buildCard(i, f.mono, nil))
		}
	} else {
		f.topo = sim.NewTopology(cfg.Seed)
		f.topo.Workers = cfg.Workers
		f.ctrl = f.topo.AddPartition("dvcm")
		ctrlEng = f.ctrl.Eng()
		parts := make([]*sim.Partition, cfg.Cards)
		for i := 0; i < cfg.Cards; i++ {
			parts[i] = f.topo.AddPartition(fmt.Sprintf("card%02d", i))
		}
		for i := 0; i < cfg.Cards; i++ {
			f.cards = append(f.cards, f.buildCard(i, parts[i].Eng(), parts[i]))
		}
		for i, p := range parts {
			// Media ring hop (distinct endpoints only: a 1-card fleet keeps
			// its media local) and the controller's poll round-trip.
			if next := parts[(i+1)%cfg.Cards]; next != p {
				if _, ok := f.topo.Lookahead(p, next); !ok {
					mustConnect(f.topo, p, next, cfg.NetLatency)
				}
			}
			mustConnect(f.topo, f.ctrl, p, cfg.NetLatency)
			mustConnect(f.topo, p, f.ctrl, cfg.NetLatency)
		}
	}

	// Streams, producers, clients. Card i's clients are homed with card
	// (i+1)%Cards, so media crosses the fleet network (and, partitioned, a
	// partition boundary).
	clip := mpeg.GenerateDefault()
	nominal := clip.MeanFrameSize()
	for i, fc := range f.cards {
		home := f.cards[(i+1)%cfg.Cards]
		for s := 1; s <= cfg.StreamsPerCard; s++ {
			addr := fmt.Sprintf("c%02ds%d", i, s)
			f.route[addr] = (i + 1) % cfg.Cards
			cl := netsim.NewClient(home.eng, addr)
			home.rx[addr] = netsim.Fast100(home.eng, "rx-"+addr, cl)
			spec := dwcs.StreamSpec{
				ID: s, Name: addr, Period: fleetStreamPeriod,
				Loss: fixed.New(1, 4), Lossy: true,
				BufCap: fleetBufCap, NominalBytes: nominal,
			}
			if err := fc.ext.AddStream(spec); err != nil {
				panic(err)
			}
			prod := fc.ext.SpawnPeerProducer(fc.disk, clip, s, addr, fleetStreamPeriod, 1<<30)
			f.streams = append(f.streams, &fleetStream{
				card: i, id: s, addr: addr, prod: prod, cl: cl,
			})
		}
	}

	// Controller: poll every card each PollEvery over the fleet network.
	ctrlEng.Every(cfg.PollEvery, func() {
		for i := range f.cards {
			fc := f.cards[i]
			if f.topo == nil {
				f.pollCard(i,
					func(fn func()) { ctrlEng.After(cfg.NetLatency, fn) },
					func(fn func()) { fc.eng.After(cfg.NetLatency, fn) })
			} else {
				f.pollCard(i,
					func(fn func()) { f.ctrl.Send(fc.part, cfg.NetLatency, fn) },
					func(fn func()) { fc.part.Send(f.ctrl, cfg.NetLatency, fn) })
			}
		}
	})

	res := &FleetResult{Cards: cfg.Cards, Streams: cfg.Cards * cfg.StreamsPerCard, Dur: cfg.Dur}
	if f.topo == nil {
		f.mono.RunUntil(cfg.Dur)
	} else {
		f.topo.RunUntil(cfg.Dur)
		res.Rounds = f.topo.Rounds
		f.topo.Drain() // release every partition's peak arena before reporting
	}

	f.collect(res)
	return res
}

func mustConnect(t *sim.Topology, src, dst *sim.Partition, la sim.Time) {
	if err := t.Connect(src, dst, la); err != nil {
		panic(err)
	}
}

// collect renders the deterministic artifacts from the settled fleet.
func (f *fleet) collect(res *FleetResult) {
	var table, csv strings.Builder
	fmt.Fprintf(&table, "%-6s %8s %8s %8s %8s %8s %8s %10s\n",
		"card", "injected", "sent", "dropped", "recv", "late", "stalls", "recvMB")
	csv.WriteString("card,stream,addr,injected,sent_by_card,recv,bytes,late,mean_lat_us,jitter_us\n")

	perCard := make([]struct{ injected, recv, late, stalls, bytes int64 }, len(f.cards))
	for _, st := range f.streams {
		c := &perCard[st.card]
		c.injected += st.prod.Injected
		c.stalls += st.prod.Stalled
		c.recv += st.cl.Received
		c.late += st.cl.Late
		c.bytes += st.cl.RecvBytes
		fmt.Fprintf(&csv, "%02d,%d,%s,%d,%d,%d,%d,%d,%.1f,%.1f\n",
			st.card, st.id, st.addr, st.prod.Injected, f.cards[st.card].ext.Sent,
			st.cl.Received, st.cl.RecvBytes, st.cl.Late,
			st.cl.MeanLatency().Microseconds(), st.cl.Jitter().Microseconds())
	}
	for i, fc := range f.cards {
		c := perCard[i]
		fmt.Fprintf(&table, "ni%02d   %8d %8d %8d %8d %8d %8d %10.2f\n",
			i, c.injected, fc.ext.Sent, fc.ext.Dropped, c.recv, c.late, c.stalls,
			float64(c.bytes)/(1<<20))
		res.TotalInjected += c.injected
		res.TotalSent += fc.ext.Sent
		res.TotalDropped += fc.ext.Dropped
		res.TotalRecv += c.recv
		res.TotalLate += c.late
		res.RecvBytes += c.bytes
	}
	res.Table = table.String()
	res.Pulse = strings.Join(f.pulses, "\n") + "\n"
	res.CSV = csv.String()

	goodput := float64(res.RecvBytes) * 8 / res.Dur.Seconds() / 1e6
	res.Summary = fmt.Sprintf(
		"fleet: %d cards × %d streams over %v: injected=%d sent=%d recv=%d late=%d dropped=%d goodput=%.1f Mbps",
		res.Cards, f.cfg.StreamsPerCard, res.Dur,
		res.TotalInjected, res.TotalSent, res.TotalRecv, res.TotalLate,
		res.TotalDropped, goodput)
}
