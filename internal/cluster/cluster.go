// Package cluster builds the scalable media server of §1 and §6: nodes
// with several PCI segments, each populated with scheduler NIs (dedicated
// i960 RD cards, caches enabled, no disks) and producer NIs (disk-attached
// cards), joined by a system-area switch to remote clients.
//
// "Given the limited I/O slot real-estate, careful balance between NIs
// dedicated for scheduling and stream sourcing is required" (§6) — Admit
// implements that balance: it places each requested stream on the least-
// loaded scheduler NI with CPU, link, and memory headroom, pairs it with
// the least-loaded producer NI on the same bus segment, and rejects
// requests that would overcommit any of the three resources. The paper's
// future-work item — bandwidth allocation across a large number of streams
// — is exercised by cmd/clustersim's stream-count sweep.
package cluster

import (
	"errors"
	"fmt"

	"sort"

	"repro/internal/bus"
	"repro/internal/disk"
	"repro/internal/dvcmnet"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/overload"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrAdmission is returned when no NI has capacity for a requested stream.
var ErrAdmission = errors.New("cluster: admission denied")

// Per-frame NI CPU budget: one scheduling decision plus dispatch plus
// protocol stack (§4 measurements: ≈67 µs + ≈27 µs + ≈830 µs).
const cpuPerFrame = 925 * sim.Microsecond

// maxUtil is the admission ceiling on every resource.
const maxUtil = 0.7

// StreamRequest asks the cluster to serve one media stream.
type StreamRequest struct {
	Name       string
	Period     sim.Time   // requested inter-frame service time
	FrameBytes int64      // nominal frame size
	Loss       fixed.Frac // DWCS loss-tolerance
	Lossy      bool
	BufCap     int // ring depth; 0 = 64
}

func (r StreamRequest) validate() error {
	if r.Period <= 0 {
		return fmt.Errorf("cluster: %s: period must be positive", r.Name)
	}
	if r.FrameBytes <= 0 {
		return fmt.Errorf("cluster: %s: frame size must be positive", r.Name)
	}
	return nil
}

// SchedulerNI is a dedicated scheduling card plus its load bookkeeping.
type SchedulerNI struct {
	Card *nic.Card
	Ext  *nic.SchedulerExt
	// Endpoint is the card's presence in the distributed VCM: any node can
	// drive this scheduler with remote instructions over the SAN.
	Endpoint *dvcmnet.Endpoint
	// Overload is the card's overload controller once EnableOverload armed
	// protection; nil keeps the pre-overload admission behaviour.
	Overload *overload.Controller

	cpuLoad  float64 // fraction of NI CPU committed
	linkLoad float64 // fraction of the Ethernet port committed
	memLoad  int64   // bytes of card memory committed to rings
	streams  int
	specs    map[int]qos.Stream // admitted streams, for feasibility analysis
	failed   bool
	draining bool
}

// Failed reports whether the card has been failed out of service.
func (s *SchedulerNI) Failed() bool { return s.failed }

// Draining reports whether the card is under planned maintenance: it keeps
// serving its current streams (and answering heartbeats) but accepts no new
// placements. Drain is not death — the monitor must not fail it over.
func (s *SchedulerNI) Draining() bool { return s.draining }

// SetDraining marks the card in or out of planned maintenance.
func (s *SchedulerNI) SetDraining(v bool) { s.draining = v }

// Streams returns how many streams are placed on this card.
func (s *SchedulerNI) Streams() int { return s.streams }

// CPULoad returns the committed CPU fraction.
func (s *SchedulerNI) CPULoad() float64 { return s.cpuLoad }

// LinkLoad returns the committed link fraction.
func (s *SchedulerNI) LinkLoad() float64 { return s.linkLoad }

// Feasibility analyses this card's admitted stream set against its link
// and CPU with the internal/qos window-constraint bounds — the analytical
// check dual to the admission accounting.
func (s *SchedulerNI) Feasibility() (*qos.Report, error) {
	streams := make([]qos.Stream, 0, len(s.specs))
	for _, st := range s.specs {
		streams = append(streams, st)
	}
	linkBps := 0.0
	if s.Card.Link != nil {
		linkBps = 100e6
	}
	return qos.Check(streams, linkBps, cpuPerFrame)
}

// ProducerNI is a disk-attached source card.
type ProducerNI struct {
	Card    *nic.Card
	Disk    *disk.Disk
	streams int
}

// Node is one server in the cluster.
type Node struct {
	Name       string
	Segments   []*bus.Bus
	Schedulers []*SchedulerNI
	Producers  []*ProducerNI

	segOf map[*nic.Card]*bus.Bus
}

// NodeConfig sizes one node.
type NodeConfig struct {
	Name         string
	Segments     int // PCI bus segments
	SchedulerNIs int // dedicated scheduler cards, spread across segments
	ProducerNIs  int // disk-attached cards, spread across segments
}

// Cluster is the whole server complex.
type Cluster struct {
	Eng    *sim.Engine
	Switch *netsim.Switch
	Nodes  []*Node

	// Domains is the failure-domain topology: every scheduler card is
	// mapped to its node's host domain, hosts to the SAN switch domain.
	Domains *Domains

	nextID   int
	Placed   int
	Rejected int
	// Admitted counts every successful admission (Placed decrements on
	// Release; this never does).
	Admitted int64

	// Tel is the attached telemetry registry; nil disables telemetry.
	Tel *telemetry.Registry

	placements map[int]*Placement // live admitted streams by ID
	migrating  map[int]bool       // streams mid-migration (double-migrate guard)
}

// Instrument attaches a telemetry registry to the whole cluster: admission
// counters under the cluster component, and every bus segment, scheduler NI,
// DVCM endpoint, producer card, and disk instrumented in turn. Clients
// attached afterwards (AttachClient) inherit the registry.
func (c *Cluster) Instrument(reg *telemetry.Registry) {
	if reg == nil || c.Tel != nil {
		return
	}
	c.Tel = reg
	reg.CounterFunc("cluster", "streams_admitted_total",
		"streams admitted by the cluster", func() int64 { return c.Admitted })
	reg.CounterFunc("cluster", "streams_rejected_total",
		"stream requests denied admission", func() int64 { return int64(c.Rejected) })
	reg.GaugeFunc("cluster", "live_streams",
		"currently placed streams", func() float64 { return float64(c.Placed) })
	for _, n := range c.Nodes {
		for _, b := range n.Segments {
			b.Instrument(reg)
		}
		for _, s := range n.Schedulers {
			s.Ext.Instrument(reg)
			s.Endpoint.Instrument(reg)
			if s.Overload != nil {
				s.Overload.Instrument(reg)
			}
		}
		for _, p := range n.Producers {
			p.Card.Instrument(reg)
			p.Disk.Instrument(reg)
		}
	}
}

// EnableOverload arms overload protection on every scheduler NI: each card
// gets its own controller (budget sized to the card's installed memory) and
// the placement loop starts redirecting setups away from cards past their
// high-water mark. configure, if non-nil, tunes each controller before it
// starts. Already-instrumented clusters instrument the new controllers too.
func (c *Cluster) EnableOverload(configure func(*overload.Controller)) {
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			if s.Overload != nil {
				continue
			}
			ctl := overload.NewController(s.Card.Name, s.Card.Mem.Size())
			if configure != nil {
				configure(ctl)
			}
			s.Ext.AttachOverload(ctl)
			s.Overload = ctl
			if c.Tel != nil {
				ctl.Instrument(c.Tel)
			}
		}
	}
}

// New builds a cluster of nodes per cfg, all attached to one SAN switch.
func New(eng *sim.Engine, cfgs []NodeConfig) *Cluster {
	c := &Cluster{
		Eng:        eng,
		Switch:     netsim.NewSwitch(eng, "san", 90*sim.Microsecond),
		Domains:    NewDomains(),
		placements: make(map[int]*Placement),
	}
	for _, cfg := range cfgs {
		c.Nodes = append(c.Nodes, c.buildNode(cfg))
	}
	return c
}

func (c *Cluster) buildNode(cfg NodeConfig) *Node {
	if cfg.Segments <= 0 {
		cfg.Segments = 1
	}
	n := &Node{Name: cfg.Name, segOf: make(map[*nic.Card]*bus.Bus)}
	for i := 0; i < cfg.Segments; i++ {
		n.Segments = append(n.Segments, bus.New(c.Eng, bus.PCI(fmt.Sprintf("%s/pci%d", cfg.Name, i))))
	}
	for i := 0; i < cfg.SchedulerNIs; i++ {
		seg := n.Segments[i%len(n.Segments)]
		card := nic.New(c.Eng, nic.Config{
			Name:    fmt.Sprintf("%s/sched%d", cfg.Name, i),
			PCI:     seg,
			CacheOn: true, // dedicated scheduler NI: no disk, cache stays on
		})
		card.ConnectEthernet(netsim.Fast100(c.Eng, card.Name+"-eth", c.Switch))
		ext, err := card.LoadScheduler(nic.SchedulerConfig{
			Selector: dwcs.Heaps, // large stream counts
			// Dispatch a little ahead of each deadline so stack + wire
			// time lands frames at clients on time.
			EligibleEarly: 20 * sim.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		sni := &SchedulerNI{
			Card: card, Ext: ext,
			Endpoint: dvcmnet.Attach(c.Eng, c.Switch, card.Name, card.VCM),
			specs:    make(map[int]qos.Stream),
		}
		// A crashed card answers nothing on the SAN — that silence is what
		// heartbeat monitoring detects.
		sni.Endpoint.Silent = card.Crashed
		n.Schedulers = append(n.Schedulers, sni)
		n.segOf[card] = seg
		// One node = one host domain, all hosts behind the single SAN
		// switch. Multi-switch fleets remap via c.Domains directly.
		c.Domains.SetHost(card.Name, cfg.Name)
		c.Domains.SetSwitch(cfg.Name, "san")
	}
	for i := 0; i < cfg.ProducerNIs; i++ {
		seg := n.Segments[i%len(n.Segments)]
		card := nic.New(c.Eng, nic.Config{
			Name: fmt.Sprintf("%s/prod%d", cfg.Name, i),
			PCI:  seg,
		})
		d := disk.New(c.Eng, disk.DefaultSCSI(card.Name+"-disk"))
		card.AttachDisk(d, disk.NewDOSFS(d))
		n.Producers = append(n.Producers, &ProducerNI{Card: card, Disk: d})
		n.segOf[card] = seg
	}
	return n
}

// Placement records where an admitted stream landed.
type Placement struct {
	StreamID  int
	Node      *Node
	Scheduler *SchedulerNI
	Producer  *ProducerNI
	Client    string        // client address the stream is delivered to
	Req       StreamRequest // original request, for re-admission after a fault

	commit *commitment
}

// commitment remembers what Admit charged so Release can refund it.
type commitment struct {
	cpu, link float64
	mem       int64
}

// Admit places a stream, preferring the least-CPU-loaded scheduler NI whose
// CPU, link, and memory all stay under the admission ceiling, paired with
// the least-loaded producer NI on the same segment. It returns ErrAdmission
// when nothing fits.
func (c *Cluster) Admit(req StreamRequest) (*Placement, error) {
	return c.admit(req, nil, "")
}

// admit is Admit plus failover knobs: exclude skips one scheduler NI (the
// card the stream is being moved off), and client, when non-empty, keeps an
// existing client address instead of minting a new one.
func (c *Cluster) admit(req StreamRequest, exclude *SchedulerNI, client string) (*Placement, error) {
	var avoid func(*SchedulerNI) bool
	if exclude != nil {
		avoid = func(s *SchedulerNI) bool { return s == exclude }
	}
	return c.place(req, 0, client, nil, avoid)
}

// place is the placement engine under Admit, Readmit, and Migrate. id, when
// non-zero, preserves an existing stream ID (a migrating stream keeps its
// identity) instead of minting one. img, when non-nil, is a migration image:
// the target imports the stream mid-window via ImportStream rather than
// registering it cold. avoid, when non-nil, vetoes candidate cards beyond
// the standing failed/draining exclusions — the domain-aware failover filter.
func (c *Cluster) place(req StreamRequest, id int, client string, img *dwcs.StreamSnapshot, avoid func(*SchedulerNI) bool) (*Placement, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	bufCap := req.BufCap
	if bufCap == 0 {
		bufCap = 64
	}
	frameRate := float64(sim.Second) / float64(req.Period)
	cpuNeed := frameRate * cpuPerFrame.Seconds()
	var best *SchedulerNI
	var bestNode *Node
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			if s.Card.Link == nil || s.failed || s.draining {
				continue
			}
			if avoid != nil && avoid(s) {
				continue
			}
			linkNeed := frameRate * s.Card.Link.WireTime(req.FrameBytes).Seconds()
			memNeed := int64(bufCap) * req.FrameBytes
			if s.cpuLoad+cpuNeed > maxUtil || s.linkLoad+linkNeed > maxUtil {
				continue
			}
			if s.memLoad+memNeed > s.Card.Mem.Size()*7/10 {
				continue
			}
			// Overload-protected cards refuse setups past their budget's
			// high-water mark; skipping here redirects the stream to a
			// less-pressured card instead of failing the request.
			if s.Overload != nil && !s.Overload.Budget.CanAdmit(nic.StreamMemCost(dwcs.StreamSpec{
				BufCap: bufCap, NominalBytes: req.FrameBytes,
			}).Projected()) {
				continue
			}
			if best == nil || s.cpuLoad < best.cpuLoad {
				best = s
				bestNode = n
			}
		}
	}
	if best == nil {
		c.Rejected++
		return nil, fmt.Errorf("%w: %s (rate %.1f/s, %d B frames)", ErrAdmission, req.Name, frameRate, req.FrameBytes)
	}
	// Least-loaded producer NI on the same segment (fall back to any on the
	// node).
	seg := bestNode.segOf[best.Card]
	var prod *ProducerNI
	for _, p := range bestNode.Producers {
		if bestNode.segOf[p.Card] != seg {
			continue
		}
		if prod == nil || p.streams < prod.streams {
			prod = p
		}
	}
	if prod == nil {
		for _, p := range bestNode.Producers {
			if prod == nil || p.streams < prod.streams {
				prod = p
			}
		}
	}
	if prod == nil {
		c.Rejected++
		return nil, fmt.Errorf("%w: %s: no producer NI available", ErrAdmission, req.Name)
	}

	if id == 0 {
		c.nextID++
		id = c.nextID
	}
	spec := dwcs.StreamSpec{
		ID:           id,
		Name:         req.Name,
		Period:       req.Period,
		Loss:         req.Loss,
		Lossy:        req.Lossy,
		BufCap:       bufCap,
		NominalBytes: req.FrameBytes,
	}
	if img != nil {
		// Migration: restore the stream's window position and frame cursor
		// on the target instead of registering it cold. The image's spec is
		// re-stamped so the preserved ID and request shape win over whatever
		// the (possibly stale) checkpoint carried.
		restored := *img
		restored.Spec = spec
		if err := best.Ext.ImportStream(restored); err != nil {
			return nil, err
		}
	} else if err := best.Ext.AddStream(spec); err != nil {
		return nil, err
	}
	linkNeed := frameRate * best.Card.Link.WireTime(req.FrameBytes).Seconds()
	memNeed := int64(bufCap) * req.FrameBytes
	best.cpuLoad += cpuNeed
	best.linkLoad += linkNeed
	best.memLoad += memNeed
	best.streams++
	best.specs[id] = qos.Stream{
		Name: req.Name, Period: req.Period, FrameBytes: req.FrameBytes, Loss: req.Loss,
	}
	prod.streams++
	c.Placed++
	c.Admitted++

	if client == "" {
		client = fmt.Sprintf("client-%d", id)
	}
	p := &Placement{
		StreamID:  id,
		Node:      bestNode,
		Scheduler: best,
		Producer:  prod,
		Client:    client,
		Req:       req,
		commit:    &commitment{cpu: cpuNeed, link: linkNeed, mem: memNeed},
	}
	c.placements[id] = p
	return p, nil
}

// refund returns a placement's committed CPU, link, and memory to its
// scheduler's admission budget, exactly once.
func (c *Cluster) refund(p *Placement) {
	ct := p.commit
	if ct == nil {
		return
	}
	p.commit = nil
	p.Scheduler.cpuLoad -= ct.cpu
	p.Scheduler.linkLoad -= ct.link
	p.Scheduler.memLoad -= ct.mem
	// Refunds are float subtractions of earlier additions; clamp the dust so
	// an emptied card reports exactly zero load.
	if p.Scheduler.cpuLoad < 0 {
		p.Scheduler.cpuLoad = 0
	}
	if p.Scheduler.linkLoad < 0 {
		p.Scheduler.linkLoad = 0
	}
	if p.Scheduler.memLoad < 0 {
		p.Scheduler.memLoad = 0
	}
}

// Live returns the currently admitted placements in StreamID order.
func (c *Cluster) Live() []*Placement {
	ids := make([]int, 0, len(c.placements))
	for id := range c.placements {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Placement, len(ids))
	for i, id := range ids {
		out[i] = c.placements[id]
	}
	return out
}

// Start begins streaming an admitted placement: a producer task on the
// disk card reads the clip and feeds the scheduler card over the shared
// PCI segment (path B), looping `loops` times.
func (c *Cluster) Start(p *Placement, clip *mpeg.Clip, injectEvery sim.Time, loops int) *nic.Producer {
	return p.Scheduler.Ext.SpawnPeerProducer(p.Producer.Card, clip, p.StreamID, p.Client, injectEvery, loops)
}

// Release tears down an admitted stream: the scheduler forgets it and its
// committed CPU, link, and memory return to the admission budget.
func (c *Cluster) Release(p *Placement) error {
	if err := p.Scheduler.Ext.RemoveStream(p.StreamID); err != nil {
		return err
	}
	c.refund(p)
	delete(p.Scheduler.specs, p.StreamID)
	delete(c.placements, p.StreamID)
	p.Scheduler.streams--
	p.Producer.streams--
	c.Placed--
	return nil
}

// AttachClient creates a measuring client for a placement and wires it to
// the SAN switch.
func (c *Cluster) AttachClient(p *Placement) *netsim.Client {
	cl := netsim.NewClient(c.Eng, p.Client)
	if c.Tel != nil {
		cl.Instrument(c.Tel)
	}
	c.Switch.Attach(p.Client, netsim.Fast100(c.Eng, "san-"+p.Client, cl))
	return cl
}

// FailScheduler takes a scheduler NI out of service (card fault, §6's
// "careful construction" concern): its placements are returned so the
// caller can re-admit the affected streams on surviving cards. The failed
// card's scheduler stops accepting streams; in-flight frames on its wire
// are lost with the card.
func (c *Cluster) FailScheduler(s *SchedulerNI, placements []*Placement) []*Placement {
	s.failed = true
	var affected []*Placement
	for _, p := range placements {
		if p.Scheduler != s {
			continue
		}
		// Tear down bookkeeping; the dead card's DWCS state is gone, and
		// the commitment is refunded so the card's admission budget is
		// clean if it later recovers.
		_ = p.Scheduler.Ext.RemoveStream(p.StreamID)
		c.refund(p)
		delete(s.specs, p.StreamID)
		delete(c.placements, p.StreamID)
		s.streams--
		p.Producer.streams--
		c.Placed--
		affected = append(affected, p)
	}
	return affected
}

// Recover returns a previously failed scheduler NI to admission service
// (its card has been reset). Streams moved off it stay where they are.
func (c *Cluster) Recover(s *SchedulerNI) { s.failed = false }

// Readmit re-places a stream that was on a failed card: the old commitment
// is refunded (if FailScheduler hasn't already), the failed card is
// excluded from candidacy, and the stream keeps its client address so
// delivery resumes where the viewer is, under a fresh stream ID.
func (c *Cluster) Readmit(old *Placement, req StreamRequest) (*Placement, error) {
	if old == nil {
		return c.Admit(req)
	}
	c.refund(old)
	delete(c.placements, old.StreamID)
	return c.admit(req, old.Scheduler, old.Client)
}

// TotalMem reports committed ring memory across all scheduler NIs.
func (c *Cluster) TotalMem() int64 {
	var tot int64
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			tot += s.memLoad
		}
	}
	return tot
}

// Capacity reports how many streams of the given request shape the cluster
// would admit in total, without mutating state beyond a scratch copy — used
// by sizing tools. It simply admits into a fresh identical cluster.
func Capacity(cfgs []NodeConfig, req StreamRequest) int {
	eng := sim.NewEngine(1)
	scratch := New(eng, cfgs)
	n := 0
	for {
		r := req
		r.Name = fmt.Sprintf("%s-%d", req.Name, n)
		if _, err := scratch.Admit(r); err != nil {
			return n
		}
		n++
		if n > 1_000_000 {
			return n
		}
	}
}
