// Failure domains: the card → host → switch containment hierarchy the
// correlated fault kinds strike along. A host crash takes every card on its
// PCI bus; a switch partition isolates every host behind it. Placement and
// failover consult this topology so a stream is never re-placed into the
// blast radius it is escaping.
package cluster

import "sort"

// Domains maps cards to hosts and hosts to switches. The zero value is
// usable; unmapped cards belong to the empty host/switch, which compares
// equal only to other unmapped cards.
type Domains struct {
	hostOf   map[string]string // card name → host domain
	switchOf map[string]string // host domain → switch domain
}

// NewDomains returns an empty topology.
func NewDomains() *Domains {
	return &Domains{hostOf: map[string]string{}, switchOf: map[string]string{}}
}

// SetHost places a card in a host domain.
func (d *Domains) SetHost(card, host string) {
	if d.hostOf == nil {
		d.hostOf = map[string]string{}
	}
	d.hostOf[card] = host
}

// SetSwitch places a host domain behind a switch domain.
func (d *Domains) SetSwitch(host, sw string) {
	if d.switchOf == nil {
		d.switchOf = map[string]string{}
	}
	d.switchOf[host] = sw
}

// Host returns the card's host domain ("" if unmapped).
func (d *Domains) Host(card string) string {
	if d == nil {
		return ""
	}
	return d.hostOf[card]
}

// Switch returns the card's switch domain ("" if unmapped).
func (d *Domains) Switch(card string) string {
	if d == nil {
		return ""
	}
	return d.switchOf[d.hostOf[card]]
}

// CardsOnHost lists the cards in a host domain, sorted for determinism.
func (d *Domains) CardsOnHost(host string) []string {
	if d == nil || host == "" {
		return nil
	}
	var out []string
	for card, h := range d.hostOf {
		if h == host {
			out = append(out, card)
		}
	}
	sort.Strings(out)
	return out
}

// HostsOnSwitch lists the host domains behind a switch, sorted.
func (d *Domains) HostsOnSwitch(sw string) []string {
	if d == nil || sw == "" {
		return nil
	}
	var out []string
	for host, s := range d.switchOf {
		if s == sw {
			out = append(out, host)
		}
	}
	sort.Strings(out)
	return out
}

// SameHost reports whether two cards share a host domain (false when either
// is unmapped — unknown topology must never veto a placement).
func (d *Domains) SameHost(a, b string) bool {
	if d == nil {
		return false
	}
	ha, hb := d.hostOf[a], d.hostOf[b]
	return ha != "" && ha == hb
}

// SameSwitch reports whether two cards share a switch domain.
func (d *Domains) SameSwitch(a, b string) bool {
	if d == nil {
		return false
	}
	sa, sb := d.Switch(a), d.Switch(b)
	return sa != "" && sa == sb
}
