package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEpochFenceAdmission(t *testing.T) {
	var f epochFence
	if !f.admit(1, 0) {
		t.Fatal("first epoch refused")
	}
	if f.epoch != 1 || f.leader != 0 {
		t.Fatalf("fence = %+v after first admit", f)
	}
	if !f.admit(1, 0) {
		t.Fatal("current epoch refused")
	}
	if !f.admit(3, 1) {
		t.Fatal("newer epoch refused")
	}
	if f.epoch != 3 || f.leader != 1 {
		t.Fatalf("fence = %+v after raise", f)
	}
	// Stale stamps are rejected and the fence never lowers.
	for _, ep := range []int{2, 1, 0} {
		if f.admit(ep, 0) {
			t.Fatalf("stale epoch %d admitted", ep)
		}
	}
	if f.epoch != 3 || f.leader != 1 {
		t.Fatalf("fence lowered to %+v", f)
	}
}

// TestStaleEpochMigrationFenced is the failover-safety scenario in
// miniature: the old primary begins a live migration (intent journaled,
// detach executed) immediately before the standby seizes leadership; the
// migration's import step then arrives at the target stamped with the old
// leader epoch and must be rejected by the card's fence, while the new
// leader's journal reconcile re-places the detached stream from its last
// image — frame cursor and DWCS (x,y) window intact, never double-placed,
// never restarted with a fresh window.
func TestStaleEpochMigrationFenced(t *testing.T) {
	cfg := FleetChaosConfig{
		Dur: 3 * sim.Second, Workers: 1, CtrlHA: true,
		// No injected faults: the takeover below is the only disturbance.
		HostCrashes: -1, NetPartitions: -1, RollingDrains: -1,
		CtrlCrashes: -1, CtrlPartitions: -1,
	}
	cfg.setDefaults()
	f := buildFleetChaos(cfg, nil)
	ra, rb := f.reps[0], f.reps[1]
	st := f.cstream[0] // gid 1, sourced on card 0

	// t=1.093s: the primary decides to move gid 1 from card 0 to card 1.
	// The detach lands before the standby's fence broadcast; the import
	// lands after it.
	ra.eng().At(1093*sim.Millisecond, func() {
		ra.enqueueJob(func(done func()) { ra.migrateLive(st, 0, 1, done) })
	})

	// t=1.1s: the standby seizes leadership (the watchdog path, forced so
	// the timing brackets the in-flight migration deterministically).
	rb.eng().At(1100*sim.Millisecond, func() {
		rb.leader = true
		rb.epoch++
		rb.takeovers++
		rb.synced = false
		rb.halog("leader-takeover", 0, "forced by test; leader epoch %d→%d", rb.epoch-1, rb.epoch)
		rb.fenceAndReconcile("takeover")
	})

	f.runChaos()
	f.collectChaos()
	res := f.collectHA()

	if res.LeaderName != "ctl-b" || res.LeaderEpoch != 2 {
		t.Fatalf("leadership = %s@%d, want ctl-b@2\n%s",
			res.LeaderName, res.LeaderEpoch, res.CtrlPlane)
	}
	fenced := 0
	for _, n := range f.fencedByCard {
		fenced += n
	}
	if fenced < 1 {
		t.Fatalf("the stale import was not fenced\n%s", res.HATimeline)
	}
	if ra.leader {
		t.Fatal("ex-primary still believes it leads")
	}
	if ra.fencedSeen < 1 {
		t.Fatalf("ex-primary never observed a fence rejection\n%s", res.HATimeline)
	}
	if rb.reissued != 1 {
		t.Fatalf("reissued = %d, want exactly the interrupted migration\n%s",
			rb.reissued, res.HATimeline)
	}
	if res.DoublePlaced != 0 {
		t.Fatalf("stream double-placed: %s", res.HASummary)
	}
	if res.Chaos.Readds != 0 {
		t.Fatalf("readds = %d — the stream lost its window instead of resuming",
			res.Chaos.Readds)
	}

	// The re-issue must carry a mid-stream image: a positive frame cursor in
	// the journal-reissue row proves cursor/window continuity (a fresh
	// window restart would be a readd, asserted zero above).
	var reissueRow string
	for _, line := range strings.Split(res.HATimeline, "\n") {
		if strings.Contains(line, "journal-reissue") {
			reissueRow = line
			break
		}
	}
	if reissueRow == "" {
		t.Fatalf("no journal-reissue row\n%s", res.HATimeline)
	}
	if strings.Contains(reissueRow, "seq=0 ") || !strings.Contains(reissueRow, "seq=") {
		t.Fatalf("re-issue did not preserve the frame cursor: %s", reissueRow)
	}

	// The stream must end attached exactly once, where the new leader's
	// books say it is.
	end, ok := f.lead().loc[st.gid]
	if !ok {
		t.Fatal("leader lost track of the stream")
	}
	found := false
	for _, sn := range f.cards[end].ext.Sched.Snapshot() {
		if sn.Spec.ID == st.gid {
			found = true
			if sn.Seq == 0 {
				t.Fatalf("stream restarted from seq 0 on ni%02d", end)
			}
		}
	}
	if !found {
		t.Fatalf("leader places gid %d on ni%02d but the card disowns it", st.gid, end)
	}
}

// TestCtrlChaosSplitBrainFencing pins the partition half of the scenario on
// the default plan: while the replica pair link is severed the synced
// follower seizes leadership, and every command the other replica sends at
// its stale epoch is rejected and logged to the incident timeline.
func TestCtrlChaosSplitBrainFencing(t *testing.T) {
	res := RunCtrlChaos(FleetChaosConfig{Workers: 2})
	if res.Takeovers < 2 {
		t.Fatalf("takeovers = %d, want crash takeover + partition takeover\n%s",
			res.Takeovers, res.CtrlPlane)
	}
	if !strings.Contains(res.HATimeline, "ctrl-partition") {
		t.Fatalf("no partition rows in the timeline\n%s", res.HATimeline)
	}
	if !strings.Contains(res.HATimeline, "stamped epoch") {
		t.Fatalf("no fence rejections logged\n%s", res.HATimeline)
	}
	if !strings.Contains(res.HATimeline, "leader-deposed") {
		t.Fatalf("no deposition logged\n%s", res.HATimeline)
	}
	if res.DoublePlaced != 0 {
		t.Fatalf("split brain double-placed a stream: %s", res.HASummary)
	}
	if res.Chaos.ViolOutside != 0 {
		t.Fatalf("violations outside outage windows: %s", res.Chaos.Summary)
	}
	// Replication messages were genuinely dropped while severed.
	drops := 0
	for _, r := range f0reps(res) {
		drops += r
	}
	if drops < 1 {
		t.Fatal("partition dropped no replication traffic")
	}
}

// f0reps pulls the per-replica dropped counts out of the control-plane
// rollup table (column "dropped").
func f0reps(res *CtrlChaosResult) []int {
	var out []int
	for _, line := range strings.Split(res.CtrlPlane, "\n") {
		fs := strings.Fields(line)
		if len(fs) != 10 || fs[0] == "replica" {
			continue
		}
		n := 0
		for _, c := range fs[8] {
			if c < '0' || c > '9' {
				return nil
			}
			n = n*10 + int(c-'0')
		}
		out = append(out, n)
	}
	return out
}
