// Fleet chaos: correlated failure domains and live stream migration on the
// partitioned fleet. Cards are grouped into hosts (a host crash takes every
// card on its PCI bus) and hosts into switch domains (a switch failure
// partitions the fleet network); a seeded faults.Plan injects HostCrash,
// NetPartition, and RollingDrain events, and the DVCM controller partition
// reacts the way the cluster control plane does — cold migration from the
// last heartbeat checkpoint when a domain dies, live migration (DWCS window
// + frame cursor + queued-frame replay, stream ID preserved) for drains and
// partition avoidance, and a return-home rebalance pass once the domain
// recovers.
//
// Everything is deterministic: the chaos schedule is a pure function of the
// fault seed, the controller reacts at fixed detection delays, migrations
// are serialized through one controller work queue, and all cross-partition
// interaction rides the same fixed-latency hops the baseline fleet uses —
// so every artifact is byte-identical across Monolithic, Workers=1, and
// Workers=N runs of the same configuration.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/blackbox"
	"repro/internal/dwcs"
	"repro/internal/faults"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
)

// FleetChaosConfig parameterizes RunFleetChaos.
type FleetChaosConfig struct {
	Cards          int      // card complexes; 0 = 8
	StreamsPerCard int      // media streams sourced by each card; 0 = 2
	Dur            sim.Time // simulated run length; 0 = 6 s
	Workers        int      // topology worker cap; 0 = GOMAXPROCS, 1 = sequential
	NetLatency     sim.Time // distribution-network hop latency; 0 = 5 ms
	PollEvery      sim.Time // controller poll/checkpoint period; 0 = 250 ms
	Seed           int64    // topology seed; 0 = 1960
	Monolithic     bool     // single shared engine (the sequential reference)

	// Failure-domain shape: cards per host bus, hosts per switch domain.
	CardsPerHost   int // 0 = 2
	HostsPerSwitch int // 0 = 2

	// Chaos plan: how many correlated faults of each kind to draw. The
	// zero value of all three means the default single event of each kind;
	// set Severity below -1 to force an empty plan.
	HostCrashes   int
	NetPartitions int
	RollingDrains int
	FaultSeed     int64 // 0 = Seed+77

	// DetectDelay is how long after a fault strikes (or clears) the
	// controller reacts — the missed-heartbeat detection lag. 0 = 2 polls.
	DetectDelay sim.Time
	// SettleMargin pads the outage window when classifying loss-window
	// violations: violations inside [At, At+Duration+DetectDelay+margin]
	// count as "during" the outage. 0 = 500 ms.
	SettleMargin sim.Time

	// CtrlHA replicates the control plane: a standby controller replica
	// ("ctl-b") receives the primary's placement journal and per-poll
	// checkpoints and takes over with a bumped leader epoch when the primary
	// goes silent (see ctrlha.go). Off by default — an unreplicated run is
	// byte-identical to the pre-HA control plane.
	CtrlHA bool
	// CtrlCrashes / CtrlPartitions count the controller faults injected when
	// CtrlHA is set (0 = 1 each; negative = none). Crashes kill the primary
	// mid-migration; partitions sever the replica pair link (split brain).
	CtrlCrashes    int
	CtrlPartitions int
}

func (cfg *FleetChaosConfig) setDefaults() {
	if cfg.Cards <= 0 {
		cfg.Cards = 8
	}
	if cfg.StreamsPerCard <= 0 {
		cfg.StreamsPerCard = 2
	}
	if cfg.Dur <= 0 {
		cfg.Dur = 6 * sim.Second
	}
	if cfg.NetLatency <= 0 {
		cfg.NetLatency = 5 * sim.Millisecond
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 250 * sim.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1960
	}
	if cfg.CardsPerHost <= 0 {
		cfg.CardsPerHost = 2
	}
	if cfg.HostsPerSwitch <= 0 {
		cfg.HostsPerSwitch = 2
	}
	if cfg.HostCrashes == 0 && cfg.NetPartitions == 0 && cfg.RollingDrains == 0 {
		cfg.HostCrashes, cfg.NetPartitions, cfg.RollingDrains = 1, 1, 1
	}
	if cfg.HostCrashes < 0 {
		cfg.HostCrashes = 0
	}
	if cfg.NetPartitions < 0 {
		cfg.NetPartitions = 0
	}
	if cfg.RollingDrains < 0 {
		cfg.RollingDrains = 0
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = cfg.Seed + 77
	}
	if cfg.DetectDelay <= 0 {
		cfg.DetectDelay = 2 * cfg.PollEvery
	}
	if cfg.SettleMargin <= 0 {
		cfg.SettleMargin = 500 * sim.Millisecond
	}
	if cfg.CtrlHA {
		if cfg.CtrlCrashes == 0 {
			cfg.CtrlCrashes = 1
		}
		if cfg.CtrlPartitions == 0 {
			cfg.CtrlPartitions = 1
		}
	}
	if cfg.CtrlCrashes < 0 {
		cfg.CtrlCrashes = 0
	}
	if cfg.CtrlPartitions < 0 {
		cfg.CtrlPartitions = 0
	}
}

func (cfg *FleetChaosConfig) hosts() int {
	return (cfg.Cards + cfg.CardsPerHost - 1) / cfg.CardsPerHost
}

func (cfg *FleetChaosConfig) switches() int {
	return (cfg.hosts() + cfg.HostsPerSwitch - 1) / cfg.HostsPerSwitch
}

// FleetChaosResult carries one chaos run's deterministic artifacts. Plan,
// Table, Pulse, MigLog, Recovery, Violations, CSV, and Summary are the
// byte-compared artifacts; Rounds is an engine diagnostic and is not.
type FleetChaosResult struct {
	Cards, Hosts, Switches, Streams int
	Dur                             sim.Time

	Plan       string // the injected chaos schedule
	Table      string // per-card ledger
	Pulse      string // controller poll log (DOWN rows while a card is dark)
	MigLog     string // every controller-driven migration, in decision order
	Recovery   string // per-event recovery times for affected streams
	Violations string // per-stream loss-window violations, during vs outside
	CSV        string // per-stream rows
	Summary    string

	LiveMigrations int // live moves (window+cursor exported, ID preserved)
	ColdMigrations int // checkpoint restores off dead domains (ID preserved)
	Readds         int // teardown restarts (fresh window — the failure path)
	Parked         int // streams left unplaced after every candidate refused
	Replayed       int // in-flight frames replayed onto migration targets

	ViolDuring   int64 // loss-window violations inside padded outage windows
	ViolOutside  int64 // violations outside every outage window (want: 0)
	SeveredDrops int64 // frames dropped on severed fleet-network hops

	TotalRecv, TotalLate int64
	Rounds               int64
}

// chaosStream is one media stream plus its chaos bookkeeping.
type chaosStream struct {
	gid   int // globally unique stream ID
	orig  int // card the stream is sourced on at t=0
	home  int // card index the client is homed with
	addr  string
	spec  dwcs.StreamSpec
	cl    *netsim.Client
	prods []*nic.Producer // initial producer plus one per migration respawn

	// watchAt[k] is plan event k's strike time; watchGot[k] is the first
	// client arrival at or after it (0 = none before the run ended).
	// Written only in the home card's partition, read after the run.
	watchAt  []sim.Time
	watchGot []sim.Time
}

// fleetChaos layers failure domains and the migration control plane on the
// baseline fleet wiring. All controller-side placement state lives on the
// replicas (ctrlha.go); an unreplicated run has exactly one.
type fleetChaos struct {
	*fleet
	ccfg    FleetChaosConfig
	plan    *faults.Plan
	clip    *mpeg.Clip
	cstream []*chaosStream
	severed []int64 // per-source-card severed-hop drops (partition-local)

	// reps are the controller replicas: reps[0] ("ctl-a") boots as leader;
	// reps[1] ("ctl-b"), present only with CtrlHA, is the journaled standby.
	reps []*ctrlRep

	// Card-side fence state, allocated only with CtrlHA and touched only in
	// each card's own partition: the highest leader epoch the card has
	// witnessed, its per-stream epoch stamps (set at import time), its
	// fence-rejection timeline fragment, and a rejection counter.
	fence        []epochFence
	cardSE       []map[int]int
	cardHA       [][]haEvent
	fencedByCard []int

	res *FleetChaosResult

	// obs, when set, is the in-band observability plane (fleetobs.go). Every
	// hook below is nil-guarded, so a plain chaos run is byte-identical with
	// or without the scrape plane compiled in.
	obs *fleetObs
}

// --- failure-domain geometry ------------------------------------------------

func (f *fleetChaos) hostOf(card int) int   { return card / f.ccfg.CardsPerHost }
func (f *fleetChaos) switchOf(card int) int { return f.hostOf(card) / f.ccfg.HostsPerSwitch }

func (f *fleetChaos) hostName(h int) string   { return fmt.Sprintf("h%02d", h) }
func (f *fleetChaos) switchName(s int) string { return fmt.Sprintf("sw%d", s) }

func (f *fleetChaos) hostIndex(target string) int {
	var h int
	fmt.Sscanf(target, "h%d", &h)
	return h
}

func (f *fleetChaos) switchIndex(target string) int {
	var s int
	fmt.Sscanf(target, "sw%d", &s)
	return s
}

// active reports whether event e covers time t.
func eventActive(e faults.Event, t sim.Time) bool {
	return e.At <= t && t < e.At+e.Duration
}

// deadAt reports whether card i is inside a HostCrash window at t.
func (f *fleetChaos) deadAt(card int, t sim.Time) bool {
	for _, e := range f.plan.Events {
		if e.Kind == faults.HostCrash && eventActive(e, t) &&
			f.hostOf(card) == f.hostIndex(e.Target) {
			return true
		}
	}
	return false
}

// drainingAt reports whether card i is inside a RollingDrain window at t.
func (f *fleetChaos) drainingAt(card int, t sim.Time) bool {
	for _, e := range f.plan.Events {
		if e.Kind == faults.RollingDrain && eventActive(e, t) &&
			f.hostOf(card) == f.hostIndex(e.Target) {
			return true
		}
	}
	return false
}

// severedAt reports whether the fleet-network path between cards a and b is
// cut by an active NetPartition at t: a switch failure isolates its card
// group, so the hop dies exactly when one endpoint is inside the failed
// domain and the other is not.
func (f *fleetChaos) severedAt(a, b int, t sim.Time) bool {
	for _, e := range f.plan.Events {
		if e.Kind != faults.NetPartition || !eventActive(e, t) {
			continue
		}
		s := f.switchIndex(e.Target)
		if (f.switchOf(a) == s) != (f.switchOf(b) == s) {
			return true
		}
	}
	return false
}

// usable reports whether card i can serve streams at t (alive, not in
// maintenance).
func (f *fleetChaos) usable(card int, t sim.Time) bool {
	return !f.deadAt(card, t) && !f.drainingAt(card, t)
}

// desired returns where stream st should live at time t: its original card
// when that card is alive, not draining, and can reach the client; otherwise
// the first card (scanning from the original) that qualifies. Returns -1
// when no card currently qualifies — the caller decides whether staying put
// or a degraded placement beats not moving. Deterministic and a pure
// function of the static plan.
func (f *fleetChaos) desired(st *chaosStream, t sim.Time) int {
	ok := func(i int) bool {
		return f.usable(i, t) && !f.severedAt(i, st.home, t)
	}
	if ok(st.orig) {
		return st.orig
	}
	for d := 1; d < f.ccfg.Cards; d++ {
		if i := (st.orig + d) % f.ccfg.Cards; ok(i) {
			return i
		}
	}
	return -1
}

// candidates lists up to three target cards for a migration, preferring
// want and then scanning the ring. Tier one is strict: alive, not draining,
// reachable from the client. When relax is set (the stream's current card
// is dead, so anything alive beats losing the stream) two degraded tiers
// open up in turn: draining-but-reachable cards (maintenance hosts still
// serve), then alive-but-severed cards (the window state survives; frames
// drop until the partition heals).
func (f *fleetChaos) candidates(st *chaosStream, t sim.Time, want int, relax bool) []int {
	tier := func(ok func(i int) bool) []int {
		var out []int
		add := func(i int) {
			if !ok(i) {
				return
			}
			for _, j := range out {
				if j == i {
					return
				}
			}
			if len(out) < 3 {
				out = append(out, i)
			}
		}
		if want >= 0 {
			add(want)
		} else {
			want = st.orig
		}
		for d := 0; d < f.ccfg.Cards; d++ {
			add((want + d) % f.ccfg.Cards)
		}
		return out
	}
	out := tier(func(i int) bool { return f.usable(i, t) && !f.severedAt(i, st.home, t) })
	if len(out) > 0 || !relax {
		return out
	}
	out = tier(func(i int) bool { return !f.deadAt(i, t) && !f.severedAt(i, st.home, t) })
	if len(out) > 0 {
		return out
	}
	return tier(func(i int) bool { return !f.deadAt(i, t) })
}

// wipedSince reports whether card i's scheduler state was erased (a host
// crash recovery wipe) after the stream was last placed on it — the
// controller's view of that placement is stale and the stream needs a
// teardown restart.
func (f *fleetChaos) wipedSince(card int, placedAt, t sim.Time) bool {
	for _, e := range f.plan.Events {
		if e.Kind != faults.HostCrash || f.hostOf(card) != f.hostIndex(e.Target) {
			continue
		}
		if w := e.At + e.Duration; w <= t && w > placedAt {
			return true
		}
	}
	return false
}

// --- controller hops (observability-plane compatibility wrappers) -----------

// ctrlEng, toCard, and toCtrl address "the controller" as the scrape plane
// and other single-controller callers knew it: replica 0. With CtrlHA off
// that replica is the whole control plane and these are exactly the old
// single-controller hops.
func (f *fleetChaos) ctrlEng() *sim.Engine { return f.reps[0].eng() }

// toCard runs fn in card i's partition one network hop from now (controller
// context).
func (f *fleetChaos) toCard(i int, fn func()) { f.reps[0].toCard(i, fn) }

// toCtrl runs fn in the controller partition one hop from now (card i
// context).
func (f *fleetChaos) toCtrl(i int, fn func()) { f.reps[0].fromCard(i, fn) }

// --- the reconcile loop ------------------------------------------------------

// reconcile runs in the leading replica at each fault boundary
// (+DetectDelay): every stream whose current placement no longer matches its
// desired one is queued for migration, in gid order.
func (r *ctrlRep) reconcile() {
	for _, st := range r.f.cstream {
		st := st
		r.enqueueJob(func(done func()) { r.step(st, done) })
	}
}

// markLost records a stream as unplaced, journaling the fact so the standby
// parks it too.
func (r *ctrlRep) markLost(gid int) {
	r.lost[gid] = true
	r.journal(jrec{op: jLost, gid: gid})
}

// step decides and executes one stream's move, if any.
func (r *ctrlRep) step(st *chaosStream, done func()) {
	f := r.f
	t := r.eng().Now()
	gid := st.gid
	want := f.desired(st, t)
	if r.lost[gid] {
		// Unplaced (every candidate refused, or its state was erased):
		// restart it fresh as soon as somewhere can take it.
		if want >= 0 {
			r.readd(st, want, done)
			return
		}
		done()
		return
	}
	cur := r.loc[gid]
	if f.deadAt(cur, t) {
		// The stream's card is dark: restore from the last heartbeat
		// checkpoint — the window position and frame cursor survive even
		// though the card contributed nothing at failure time. Degraded
		// targets (draining, or severed until the partition heals) beat
		// losing the stream, so the candidate tiers relax.
		img, ok := r.ckpt[gid]
		if !ok {
			r.markLost(gid)
			r.logf(t, "t=%-12v cold gid=%02d ni%02d→?     no checkpoint; stream lost until readd", t, gid, cur)
			if f.obs != nil {
				f.obs.ctrlEvent("stream-lost", gid, 0,
					fmt.Sprintf("ni%02d dark and no checkpoint; awaiting readd", cur))
			}
			done()
			return
		}
		r.journal(jrec{op: jIntent, gid: gid, from: cur, to: want})
		r.journal(jrec{op: jImage, gid: gid, from: cur, img: img, hasImg: true})
		r.placeImage(st, cur, img, nil, true, f.candidates(st, t, want, true), done)
		return
	}
	if f.wipedSince(cur, r.placedAt[gid], t) {
		// The card recovered from a host crash after this stream was placed
		// on it: the recovery wipe erased the stream, so the controller's
		// placement record is a ghost. Teardown restart.
		r.markLost(gid)
		r.logf(t, "t=%-12v wipe gid=%02d ni%02d state erased by crash recovery; readd pending", t, gid, cur)
		if f.obs != nil {
			f.obs.ctrlEvent("state-wiped", gid, 0,
				fmt.Sprintf("ni%02d crash recovery erased placement; readd pending", cur))
		}
		r.step(st, done)
		return
	}
	if want < 0 || want == cur {
		// Either the placement is right, or no strict candidate exists and
		// the current card is at least alive — moving to a degraded target
		// would not improve anything.
		done()
		return
	}
	r.migrateLive(st, cur, want, done)
}

// migrateLive is the three-hop live protocol: detach on the source (image +
// queued frames, stream removed, producer orphans out), then import on the
// target with frame replay and a producer respawned at the stream's cursor.
// The intent is journaled before the detach leaves — if this replica dies
// mid-protocol, its successor knows exactly which stream is homeless.
func (r *ctrlRep) migrateLive(st *chaosStream, from, want int, done func()) {
	f := r.f
	gid := st.gid
	r.journal(jrec{op: jIntent, gid: gid, from: from, to: want})
	r.cmd(from, "detach", gid, func() {
		src := f.cards[from]
		img, queued, err := src.ext.DetachStream(gid)
		r.fromCard(from, func() {
			if err != nil {
				// Controller view was stale (stream already gone on the
				// source). Nothing was detached; mark it lost so a later
				// reconcile restarts it.
				r.markLost(gid)
				r.logf(r.eng().Now(), "t=%-12v live gid=%02d ni%02d→ni%02d detach failed: %v",
					r.eng().Now(), gid, from, want, err)
				if f.obs != nil {
					f.obs.abortMove(st, from, want, 0, "detach failed")
				}
				done()
				return
			}
			// The stream is detached and homeless from here on, so the
			// degraded candidate tiers are open: anywhere alive beats loss.
			r.journal(jrec{op: jImage, gid: gid, from: from, img: img, hasImg: true})
			t := r.eng().Now()
			r.placeImage(st, from, img, queued, false, f.candidates(st, t, want, true), done)
		})
	}, done)
}

// placeImage walks the candidate list: import the migration image through
// the target's overload-budget front door, replay the queued frames, and
// respawn the producer at the stream's frame cursor. A refusal (budget past
// high water, card crashed in flight) falls through to the next candidate;
// exhausting the list parks the stream for a later readd.
func (r *ctrlRep) placeImage(st *chaosStream, from int, img dwcs.StreamSnapshot,
	queued []dwcs.Packet, cold bool, cands []int, done func()) {
	f := r.f
	gid := st.gid
	kind := "live"
	if cold {
		kind = "cold"
	}
	// The epoch this placement will commit as, decided before the first hop
	// so the target card can stamp spans with it at import time.
	nextEpoch := r.sepoch[gid] + 1
	if len(cands) == 0 {
		r.markLost(gid)
		r.parked++
		r.logf(r.eng().Now(), "t=%-12v %s gid=%02d ni%02d→?     no live candidate; stream parked",
			r.eng().Now(), kind, gid, from)
		if f.obs != nil {
			f.obs.abortMove(st, from, -1, img.Seq, "no candidate; parked")
		}
		done()
		return
	}
	var try func(k int)
	try = func(k int) {
		to := cands[k]
		r.cmd(to, "import", gid, func() {
			dst := f.cards[to]
			var err error
			var importAt sim.Time
			replayed := 0
			if dst.sched.Crashed() {
				err = fmt.Errorf("card ni%02d crashed", to)
			} else if err = dst.ext.ImportStream(img); err == nil {
				for _, pkt := range queued {
					pkt.Payload = nic.AddrPayload(st.addr)
					if dst.ext.Enqueue(gid, pkt) == nil {
						replayed++
					}
				}
				start := int(img.Seq) + len(queued)
				p := dst.ext.SpawnPeerProducerFrom(dst.disk, f.clip, gid, st.addr,
					fleetStreamPeriod, 1<<30, start)
				st.prods = append(st.prods, p)
				if f.ha() {
					f.cardSE[to][gid] = nextEpoch
				}
				if f.obs != nil {
					importAt = f.obs.cardImport(to, st, nextEpoch, img.Seq)
				}
			}
			r.fromCard(to, func() {
				if err == nil {
					r.loc[gid] = to
					r.placedAt[gid] = r.eng().Now()
					delete(r.lost, gid)
					r.sepoch[gid] = nextEpoch
					if cold {
						r.cold++
					} else {
						r.live++
					}
					r.replayed += replayed
					r.logf(r.eng().Now(), "t=%-12v %s gid=%02d ni%02d→ni%02d ok seq=%d win=(%d,%d) replay=%d",
						r.eng().Now(), kind, gid, from, to,
						img.Seq, img.WindowX, img.WindowY, replayed)
					r.journal(jrec{op: jCommit, gid: gid, from: from, to: to,
						img: img, hasImg: true, sepoch: nextEpoch})
					if f.obs != nil {
						f.obs.commitMove(st, from, to, nextEpoch, img.Seq, importAt, kind)
					}
					done()
					return
				}
				r.logf(r.eng().Now(), "t=%-12v %s gid=%02d ni%02d→ni%02d refused: %v",
					r.eng().Now(), kind, gid, from, to, err)
				if k+1 < len(cands) {
					try(k + 1)
					return
				}
				r.markLost(gid)
				r.parked++
				r.logf(r.eng().Now(), "t=%-12v %s gid=%02d ni%02d→?     every candidate refused; stream parked",
					r.eng().Now(), kind, gid, from)
				if f.obs != nil {
					f.obs.abortMove(st, from, to, img.Seq, "every candidate refused; parked")
				}
				done()
			})
		}, done)
	}
	try(0)
}

// readd is the teardown path: the stream's state is gone (no checkpoint, or
// nowhere to place it while its domain was down), so it restarts with a
// fresh window on card `to`. The ID is preserved but the window history is
// not — this is exactly what migration exists to avoid, so it is counted
// separately and weighed against the resume rate.
func (r *ctrlRep) readd(st *chaosStream, to int, done func()) {
	f := r.f
	gid := st.gid
	nextEpoch := r.sepoch[gid] + 1
	r.cmd(to, "readd", gid, func() {
		dst := f.cards[to]
		var err error
		var importAt sim.Time
		var startSeq int64
		if dst.sched.Crashed() {
			err = fmt.Errorf("card ni%02d crashed", to)
		} else if err = dst.ext.AddStream(st.spec); err == nil {
			start := 0
			if img, ok := r.ckpt[gid]; ok {
				start = int(img.Seq)
			}
			p := dst.ext.SpawnPeerProducerFrom(dst.disk, f.clip, gid, st.addr,
				fleetStreamPeriod, 1<<30, start)
			st.prods = append(st.prods, p)
			startSeq = int64(start)
			if f.ha() {
				f.cardSE[to][gid] = nextEpoch
			}
			if f.obs != nil {
				importAt = f.obs.cardImport(to, st, nextEpoch, startSeq)
			}
		}
		r.fromCard(to, func() {
			if err == nil {
				r.loc[gid] = to
				r.placedAt[gid] = r.eng().Now()
				delete(r.lost, gid)
				r.sepoch[gid] = nextEpoch
				r.readds++
				r.logf(r.eng().Now(), "t=%-12v readd gid=%02d →ni%02d fresh window (teardown restart)",
					r.eng().Now(), gid, to)
				r.journal(jrec{op: jCommit, gid: gid, to: to, sepoch: nextEpoch})
				if f.obs != nil {
					f.obs.commitReadd(st, to, nextEpoch, startSeq, importAt)
				}
			} else {
				r.logf(r.eng().Now(), "t=%-12v readd gid=%02d →ni%02d refused: %v",
					r.eng().Now(), gid, to, err)
				if f.obs != nil {
					f.obs.ctrlEvent("readd-refused", gid, 0,
						fmt.Sprintf("→ni%02d: %v", to, err))
				}
			}
			done()
		})
	}, done)
}

// --- polling, checkpoints, and violation accounting --------------------------

// inOutage reports whether the card-side interval (a, b] overlaps any padded
// outage window [At, At+Duration+DetectDelay+SettleMargin] — violations in
// such an interval are attributed to the injected fault.
func (f *fleetChaos) inOutage(a, b sim.Time) bool {
	for _, e := range f.plan.Events {
		end := e.At + e.Duration + f.ccfg.DetectDelay + f.ccfg.SettleMargin
		if b >= e.At && a < end {
			return true
		}
	}
	return false
}

// account folds one stream sighting (a heartbeat snapshot taken on a card at
// card-side time `at`) into the violation ledger, classifying any new
// violations by whether the interval since the last sighting touches an
// outage window. The ledger rides checkpoints across failovers: cumulative
// counters make the first post-takeover delta cover whatever the deposed
// leader saw after its last checkpoint, so nothing is lost or double-counted.
func (r *ctrlRep) account(sn dwcs.StreamSnapshot, at sim.Time) {
	gid := sn.Spec.ID
	v := sn.Stats.Violations
	if v > r.lastV[gid] {
		delta := v - r.lastV[gid]
		tally := r.violByGid[gid]
		if tally == nil {
			tally = new([2]int64)
			r.violByGid[gid] = tally
		}
		if r.f.inOutage(r.lastT[gid], at) {
			r.violDuring += delta
			tally[0] += delta
		} else {
			r.violOutside += delta
			tally[1] += delta
		}
	}
	// A rewind (cold restore from a stale checkpoint, or a fresh readd)
	// lowers the cumulative counter; re-seed so later deltas stay honest.
	r.lastV[gid] = v
	r.lastT[gid] = at
}

// poll is one controller round: every card is probed over the management
// network (out-of-band — a fleet-network partition does not sever it), its
// stream snapshots become the cold-migration checkpoints, and violations
// are classified. A crashed card answers nothing and logs a DOWN row; a
// card whose fence outranks this replica's epoch rejects the probe instead
// (the rejection demotes the sender).
func (r *ctrlRep) poll() {
	f := r.f
	for i := range f.cards {
		i := i
		r.cmd(i, "poll", 0, func() {
			fc := f.cards[i]
			at := fc.eng.Now()
			if fc.sched.Crashed() {
				r.fromCard(i, func() {
					r.pulse(at, "t=%-10v ni%02d DOWN", at, i)
				})
				return
			}
			snaps := fc.ext.Sched.Snapshot()
			sent, dropped := fc.ext.Sent, fc.ext.Dropped
			used, size := fc.ctl.Budget.Used(), fc.ctl.Budget.Size()
			r.fromCard(i, func() {
				var viol int64
				for _, sn := range snaps {
					viol += sn.Stats.Violations
					r.ckpt[sn.Spec.ID] = sn
					r.account(sn, at)
				}
				r.pulse(at,
					"t=%-10v ni%02d streams=%d sent=%-6d dropped=%-4d viol=%-3d mem=%d/%d",
					at, i, len(snaps), sent, dropped, viol, used, size)
			})
		}, nil)
	}
}

// --- fault arming ------------------------------------------------------------

// armHostCrash schedules the crash and recovery of every card on the event's
// host, in each card's own partition. Recovery resets the card and wipes its
// scheduler: any stream still registered was either migrated away (the copy
// here is stale) or unrecoverable (its frames died with the card) — either
// way the controller owns re-placement, and the wipe guarantees a resumed
// producer cannot double-feed a migrated stream.
func (f *fleetChaos) armHostCrash(e faults.Event) {
	h := f.hostIndex(e.Target)
	for i := 0; i < f.ccfg.Cards; i++ {
		if f.hostOf(i) != h {
			continue
		}
		fc := f.cards[i]
		fc.eng.At(e.At, func() {
			fc.rec.Record(blackbox.Event{At: fc.eng.Now(), Kind: blackbox.KindDomainFault,
				Note: "host-crash " + e.Target})
			fc.sched.Crash()
			fc.disk.Crash()
		})
		fc.eng.At(e.At+e.Duration, func() {
			fc.sched.Reset()
			fc.disk.Reset()
			for _, id := range fc.ext.Sched.StreamIDs() {
				fc.ext.RemoveStream(id)
			}
			fc.rec.Record(blackbox.Event{At: fc.eng.Now(), Kind: blackbox.KindDomainFault,
				Note: "host-recover " + e.Target})
		})
	}
}

// armDomainMark drops a domain-fault marker in each member card's flight
// recorder at strike and clear time (NetPartition and RollingDrain leave the
// card itself running, so this is the only card-side trace).
func (f *fleetChaos) armDomainMark(e faults.Event, member func(card int) bool) {
	for i := 0; i < f.ccfg.Cards; i++ {
		if !member(i) {
			continue
		}
		fc := f.cards[i]
		note := e.Kind.String() + " " + e.Target
		fc.eng.At(e.At, func() {
			fc.rec.Record(blackbox.Event{At: fc.eng.Now(), Kind: blackbox.KindDomainFault, Note: note})
		})
		fc.eng.At(e.At+e.Duration, func() {
			fc.rec.Record(blackbox.Event{At: fc.eng.Now(), Kind: blackbox.KindDomainFault,
				Note: note + " cleared"})
		})
	}
}

// affects reports whether plan event e bears on stream st, attributed by the
// stream's original placement (crash/drain: sourced on the failed host;
// partition: its source→client path straddles the failed switch domain).
func (f *fleetChaos) affects(e faults.Event, st *chaosStream) bool {
	switch e.Kind {
	case faults.HostCrash, faults.RollingDrain:
		return f.hostOf(st.orig) == f.hostIndex(e.Target)
	case faults.NetPartition:
		s := f.switchIndex(e.Target)
		return (f.switchOf(st.orig) == s) != (f.switchOf(st.home) == s)
	}
	return false
}

// --- the run -----------------------------------------------------------------

// RunFleetChaos builds the fleet with failure domains, arms the chaos plan,
// and runs it, returning byte-deterministic artifacts.
func RunFleetChaos(cfg FleetChaosConfig) *FleetChaosResult {
	cfg.setDefaults()
	f := buildFleetChaos(cfg, nil)
	f.runChaos()
	f.collectChaos()
	return f.res
}

// buildFleetChaos assembles the chaos fleet ready to run: topology, cards,
// streams, armed chaos plan, and the controller's poll loop. obs, when
// non-nil, is wired in during the build so its card-side instrumentation
// exists before the first event fires.
func buildFleetChaos(cfg FleetChaosConfig, obs *fleetObs) *fleetChaos {
	f := &fleetChaos{
		fleet: &fleet{
			cfg: FleetConfig{
				Cards: cfg.Cards, StreamsPerCard: cfg.StreamsPerCard,
				Dur: cfg.Dur, Workers: cfg.Workers, NetLatency: cfg.NetLatency,
				PollEvery: cfg.PollEvery, Seed: cfg.Seed, Monolithic: cfg.Monolithic,
			},
			route: map[string]int{},
		},
		ccfg:    cfg,
		severed: make([]int64, cfg.Cards),
		res: &FleetChaosResult{
			Cards: cfg.Cards, Hosts: cfg.hosts(), Switches: cfg.switches(),
			Streams: cfg.Cards * cfg.StreamsPerCard, Dur: cfg.Dur,
		},
	}
	if obs != nil {
		f.obs = obs
		obs.f = f
	}

	// The chaos plan: correlated faults over the host and switch domains,
	// drawn inside the middle of the run so recovery (and a clean tail that
	// proves zero violations outside the outage) fits before Dur.
	var hostNames, switchNames []string
	for h := 0; h < cfg.hosts(); h++ {
		hostNames = append(hostNames, f.hostName(h))
	}
	for s := 0; s < cfg.switches(); s++ {
		switchNames = append(switchNames, f.switchName(s))
	}
	plan, err := faults.Generate(cfg.FaultSeed, faults.Spec{
		Start: cfg.Dur / 6, Span: cfg.Dur / 4,
		Hosts: hostNames, Switches: switchNames,
		Counts: map[faults.Kind]int{
			faults.HostCrash:    cfg.HostCrashes,
			faults.NetPartition: cfg.NetPartitions,
			faults.RollingDrain: cfg.RollingDrains,
		},
		MinDuration: cfg.Dur / 8, MaxDuration: cfg.Dur / 5,
	})
	if err != nil {
		panic(err)
	}
	if cfg.CtrlHA {
		appendCtrlEvents(plan, cfg)
	}
	plan.Sort()
	f.plan = plan

	// Topology: same wiring as the baseline fleet, plus a full mesh between
	// card partitions — a migrated stream's frames must reach its client's
	// home card from wherever the stream lands. With CtrlHA the standby gets
	// its own partition ("dvcm-b"), added after the cards so the merge order
	// of same-instant cross-partition events puts the primary's traffic
	// first — matching the monolithic insertion order.
	var parts []*sim.Partition
	if cfg.Monolithic {
		f.mono = sim.NewEngine(cfg.Seed)
		for i := 0; i < cfg.Cards; i++ {
			f.cards = append(f.cards, f.buildCard(i, f.mono, nil))
		}
	} else {
		f.topo = sim.NewTopology(cfg.Seed)
		f.topo.Workers = cfg.Workers
		f.ctrl = f.topo.AddPartition("dvcm")
		parts = make([]*sim.Partition, cfg.Cards)
		for i := 0; i < cfg.Cards; i++ {
			parts[i] = f.topo.AddPartition(fmt.Sprintf("card%02d", i))
		}
		for i := 0; i < cfg.Cards; i++ {
			f.cards = append(f.cards, f.buildCard(i, parts[i].Eng(), parts[i]))
		}
		for i, p := range parts {
			for j, q := range parts {
				if i != j {
					mustConnect(f.topo, p, q, cfg.NetLatency)
				}
			}
			mustConnect(f.topo, f.ctrl, p, cfg.NetLatency)
			mustConnect(f.topo, p, f.ctrl, cfg.NetLatency)
		}
	}
	f.reps = append(f.reps, newCtrlRep(f, 0, f.ctrl))
	if cfg.CtrlHA {
		var bPart *sim.Partition
		if !cfg.Monolithic {
			bPart = f.topo.AddPartition("dvcm-b")
			for _, p := range parts {
				mustConnect(f.topo, bPart, p, cfg.NetLatency)
				mustConnect(f.topo, p, bPart, cfg.NetLatency)
			}
			mustConnect(f.topo, f.ctrl, bPart, cfg.NetLatency)
			mustConnect(f.topo, bPart, f.ctrl, cfg.NetLatency)
		}
		rb := newCtrlRep(f, 1, bPart)
		f.reps[0].peer, rb.peer = rb, f.reps[0]
		f.reps = append(f.reps, rb)
		f.fence = make([]epochFence, cfg.Cards)
		f.cardSE = make([]map[int]int, cfg.Cards)
		for i := range f.cardSE {
			f.cardSE[i] = map[int]int{}
		}
		f.cardHA = make([][]haEvent, cfg.Cards)
		f.fencedByCard = make([]int, cfg.Cards)
	}
	if f.obs != nil {
		for i := range f.cards {
			f.obs.attachCard(i)
		}
	}

	// Severance: the drop hook runs in the source card's partition at
	// transmit time against the static plan, so every worker count sees the
	// identical cut.
	f.fleet.drop = func(from, home int) bool {
		if f.severedAt(from, home, f.cards[from].eng.Now()) {
			f.severed[from]++
			return true
		}
		return false
	}

	// Streams: globally unique IDs (gid), so a stream keeps its identity no
	// matter which card it lands on. Clients are homed with the next card;
	// client endpoints model external viewers, so a host crash kills the
	// cards, not the viewers.
	f.clip = mpeg.GenerateDefault()
	nominal := f.clip.MeanFrameSize()
	watchAt := make([]sim.Time, len(plan.Events))
	for k, e := range plan.Events {
		watchAt[k] = e.At
	}
	for i := 0; i < cfg.Cards; i++ {
		fc := f.cards[i]
		home := (i + 1) % cfg.Cards
		hc := f.cards[home]
		for s := 1; s <= cfg.StreamsPerCard; s++ {
			gid := i*cfg.StreamsPerCard + s
			addr := fmt.Sprintf("c%02ds%d", i, s)
			f.route[addr] = home
			st := &chaosStream{
				gid: gid, orig: i, home: home, addr: addr,
				cl:       netsim.NewClient(hc.eng, addr),
				watchAt:  watchAt,
				watchGot: make([]sim.Time, len(watchAt)),
			}
			st.spec = dwcs.StreamSpec{
				ID: gid, Name: addr, Period: fleetStreamPeriod,
				Loss: fixed.New(1, 4), Lossy: true,
				BufCap: fleetBufCap, NominalBytes: nominal,
			}
			homeEng := hc.eng
			hc.rx[addr] = netsim.Fast100(homeEng, "rx-"+addr, netsim.PortFunc(func(p *netsim.Packet) {
				now := homeEng.Now()
				for k := range st.watchAt {
					if st.watchGot[k] == 0 && now >= st.watchAt[k] {
						st.watchGot[k] = now
					}
				}
				st.cl.Deliver(p)
			}))
			if err := fc.ext.AddStream(st.spec); err != nil {
				panic(err)
			}
			st.prods = append(st.prods,
				fc.ext.SpawnPeerProducer(fc.disk, f.clip, gid, addr, fleetStreamPeriod, 1<<30))
			f.cstream = append(f.cstream, st)
			for _, r := range f.reps {
				r.loc[gid] = i
			}
			if f.obs != nil {
				f.obs.attachStream(st)
			}
		}
	}

	// Arm the plan: card-side crash/reset and flight-recorder marks at build
	// time, controller-side reconciles one detection delay after each fault
	// boundary. Reconciles are armed on every replica but run only on the
	// one holding leadership when the boundary fires.
	boundary := map[sim.Time]bool{}
	for _, e := range plan.Events {
		e := e
		switch e.Kind {
		case faults.HostCrash:
			f.armHostCrash(e)
		case faults.NetPartition:
			s := f.switchIndex(e.Target)
			f.armDomainMark(e, func(card int) bool { return f.switchOf(card) == s })
		case faults.RollingDrain:
			h := f.hostIndex(e.Target)
			f.armDomainMark(e, func(card int) bool { return f.hostOf(card) == h })
		case faults.ControllerCrash, faults.ControllerPartition:
			f.armCtrlFault(e)
		}
		boundary[e.At+cfg.DetectDelay] = true
		boundary[e.At+e.Duration+cfg.DetectDelay] = true
	}
	var times []sim.Time
	for t := range boundary {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		for _, r := range f.reps {
			r := r
			r.eng().At(t, func() {
				if r.leader && !r.deadNow() {
					r.reconcile()
				}
			})
		}
	}

	for _, r := range f.reps {
		r.eng().Every(cfg.PollEvery, r.tick)
	}

	return f
}

// appendCtrlEvents adds the hand-timed controller faults to the generated
// plan (the caller re-sorts). The first crash is anchored one detection
// delay plus a hop plus a couple of milliseconds after the first host crash
// (or first event) — squarely inside the primary's post-fault migration
// burst, so the kill lands mid-protocol: the journal holds an intent whose
// commit reply the crash swallowed, and the standby must prove it complete
// (adopt) or not (re-issue). The partition starts after the last crash has
// recovered and the replicas have exchanged a checkpoint or two, so the
// split-brain scenario runs against a healthy pair.
func appendCtrlEvents(plan *faults.Plan, cfg FleetChaosConfig) {
	anchor := cfg.Dur / 3
	if len(plan.Events) > 0 {
		anchor = plan.Events[0].At
		for _, e := range plan.Events {
			if e.Kind == faults.HostCrash {
				anchor = e.At
				break
			}
		}
	}
	crashAt := anchor + cfg.DetectDelay + cfg.NetLatency + 2*sim.Millisecond
	crashDur := cfg.Dur / 4
	spacing := crashDur + 4*cfg.PollEvery
	for k := 0; k < cfg.CtrlCrashes; k++ {
		plan.Events = append(plan.Events, faults.Event{
			At: crashAt + sim.Time(k)*spacing, Duration: crashDur,
			Kind: faults.ControllerCrash, Target: ctrlReplicaName(0),
		})
	}
	lastCrash := crashAt
	if cfg.CtrlCrashes > 1 {
		lastCrash += sim.Time(cfg.CtrlCrashes-1) * spacing
	}
	partAt := lastCrash + crashDur + 2*cfg.PollEvery
	partDur := cfg.Dur / 6
	for k := 0; k < cfg.CtrlPartitions; k++ {
		plan.Events = append(plan.Events, faults.Event{
			At: partAt + sim.Time(k)*(partDur+4*cfg.PollEvery), Duration: partDur,
			Kind: faults.ControllerPartition, Target: ctrlReplicaName(0),
		})
	}
}

// armCtrlFault schedules a controller fault's replica-side hooks. Liveness
// and pair-link severance are plan-derived pure predicates; these hooks only
// handle the dynamic fallout (wiping a crashed replica's job queue, timeline
// rows, the recovering leader's journal reconcile).
func (f *fleetChaos) armCtrlFault(e faults.Event) {
	for _, r := range f.reps {
		r := r
		e := e
		if e.Kind == faults.ControllerCrash {
			if e.Target != r.name {
				continue
			}
			r.eng().At(e.At, func() { r.onCrash(e) })
			r.eng().At(e.At+e.Duration, func() { r.onRecover(e) })
			continue
		}
		// The pair link is symmetric: both replicas log the severance.
		r.eng().At(e.At, func() {
			r.halog("ctrl-partition", 0, "replica pair link severed for %v", e.Duration)
		})
		r.eng().At(e.At+e.Duration, func() {
			r.halog("ctrl-partition", 0, "replica pair link healed")
		})
	}
}

// runChaos drives the built fleet to Dur and settles the topology.
func (f *fleetChaos) runChaos() {
	if f.topo == nil {
		f.mono.RunUntil(f.ccfg.Dur)
	} else {
		f.topo.RunUntil(f.ccfg.Dur)
		f.res.Rounds = f.topo.Rounds
		f.topo.Drain()
	}
}

// collectChaos renders the artifacts from the settled fleet. Runs after the
// topology has fully stopped, so cross-partition reads are safe.
func (f *fleetChaos) collectChaos() {
	res := f.res
	cfg := f.ccfg
	lead := f.lead()

	// Final sweep: fold each card's end-of-run stream stats into the leading
	// replica's violation ledger (covering the tail after the last poll).
	// The ledger rode checkpoints across any failovers, so the leader's copy
	// is the complete one; the deposed replica's is a stale prefix.
	for _, fc := range f.cards {
		if fc.sched.Crashed() {
			continue
		}
		for _, sn := range fc.ext.Sched.Snapshot() {
			lead.account(sn, cfg.Dur)
		}
	}
	res.ViolDuring, res.ViolOutside = lead.violDuring, lead.violOutside

	// Migration action counters are per-replica (each counts only the moves
	// it committed — fencing keeps them disjoint) and summed here.
	for _, r := range f.reps {
		res.LiveMigrations += r.live
		res.ColdMigrations += r.cold
		res.Readds += r.readds
		res.Parked += r.parked
		res.Replayed += r.replayed
	}

	res.Plan = f.plan.String()

	// Per-card ledger.
	var table strings.Builder
	fmt.Fprintf(&table, "%-6s %-5s %8s %8s %8s %8s %8s %8s %10s\n",
		"card", "host", "injected", "sent", "dropped", "recv", "late", "severed", "recvMB")
	perCard := make([]struct{ injected, recv, late, bytes int64 }, len(f.cards))
	for _, st := range f.cstream {
		c := &perCard[st.orig]
		for _, p := range st.prods {
			c.injected += p.Injected
		}
		c.recv += st.cl.Received
		c.late += st.cl.Late
		c.bytes += st.cl.RecvBytes
	}
	for i, fc := range f.cards {
		c := perCard[i]
		fmt.Fprintf(&table, "ni%02d   %-5s %8d %8d %8d %8d %8d %8d %10.2f\n",
			i, f.hostName(f.hostOf(i)), c.injected, fc.ext.Sent, fc.ext.Dropped,
			c.recv, c.late, f.severed[i], float64(c.bytes)/(1<<20))
		res.TotalRecv += c.recv
		res.TotalLate += c.late
		res.SeveredDrops += f.severed[i]
	}
	res.Table = table.String()

	res.Pulse = strings.Join(mergeRows(f.reps, func(r *ctrlRep) []logRow { return r.pulses }), "\n") + "\n"
	res.MigLog = strings.Join(mergeRows(f.reps, func(r *ctrlRep) []logRow { return r.migLog }), "\n") + "\n"

	// Recovery table: for each plan event, the affected streams' first
	// client arrival at or after the strike.
	var rec strings.Builder
	for k, e := range f.plan.Events {
		fmt.Fprintf(&rec, "%v %s %s (for %v):\n", e.At, e.Kind, e.Target, e.Duration)
		for _, st := range f.cstream {
			if !f.affects(e, st) {
				continue
			}
			if got := st.watchGot[k]; got > 0 {
				fmt.Fprintf(&rec, "  gid=%02d recovered +%v (end ni%02d)\n",
					st.gid, got-e.At, lead.loc[st.gid])
			} else {
				fmt.Fprintf(&rec, "  gid=%02d no frame after strike\n", st.gid)
			}
		}
	}
	res.Recovery = rec.String()

	// Violation table, per stream.
	var vio strings.Builder
	fmt.Fprintf(&vio, "%-6s %10s %10s\n", "stream", "during", "outside")
	for _, st := range f.cstream {
		d, o := int64(0), int64(0)
		if t := lead.violByGid[st.gid]; t != nil {
			d, o = t[0], t[1]
		}
		fmt.Fprintf(&vio, "g%02d    %10d %10d\n", st.gid, d, o)
	}
	fmt.Fprintf(&vio, "%-6s %10d %10d\n", "total", res.ViolDuring, res.ViolOutside)
	res.Violations = vio.String()

	// Per-stream CSV.
	var csv strings.Builder
	csv.WriteString("orig_card,gid,addr,end_card,injected,recv,bytes,late,viol_during,viol_outside\n")
	for _, st := range f.cstream {
		var injected int64
		for _, p := range st.prods {
			injected += p.Injected
		}
		d, o := int64(0), int64(0)
		if t := lead.violByGid[st.gid]; t != nil {
			d, o = t[0], t[1]
		}
		fmt.Fprintf(&csv, "%02d,%d,%s,%02d,%d,%d,%d,%d,%d,%d\n",
			st.orig, st.gid, st.addr, lead.loc[st.gid], injected,
			st.cl.Received, st.cl.RecvBytes, st.cl.Late, d, o)
	}
	res.CSV = csv.String()

	moved := res.LiveMigrations + res.ColdMigrations
	attempted := moved + res.Readds + res.Parked
	resumed := 100.0
	if attempted > 0 {
		resumed = 100 * float64(moved) / float64(attempted)
	}
	res.Summary = fmt.Sprintf(
		"fleet-chaos: %d cards / %d hosts / %d switches × %d streams over %v: "+
			"events=%d live=%d cold=%d readd=%d parked=%d replay=%d resumed=%.0f%% "+
			"violDuring=%d violOutside=%d severed=%d recv=%d late=%d",
		res.Cards, res.Hosts, res.Switches, cfg.StreamsPerCard, res.Dur,
		len(f.plan.Events), res.LiveMigrations, res.ColdMigrations, res.Readds,
		res.Parked, res.Replayed, resumed,
		res.ViolDuring, res.ViolOutside, res.SeveredDrops, res.TotalRecv, res.TotalLate)
}
