package cluster

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dvcmnet"
	"repro/internal/fixed"
	"repro/internal/mpeg"
	"repro/internal/nic"
	"repro/internal/sim"
)

func oneNode() []NodeConfig {
	return []NodeConfig{{Name: "n0", Segments: 2, SchedulerNIs: 2, ProducerNIs: 2}}
}

func request(name string, period sim.Time) StreamRequest {
	return StreamRequest{
		Name: name, Period: period, FrameBytes: 5000,
		Loss: fixed.New(1, 2), Lossy: true,
	}
}

func TestAdmitPlacesStream(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	p, err := c.Admit(request("s1", 160*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheduler == nil || p.Producer == nil || p.Node == nil {
		t.Fatalf("incomplete placement: %+v", p)
	}
	if p.Scheduler.Streams() != 1 {
		t.Fatalf("scheduler streams = %d", p.Scheduler.Streams())
	}
	if c.Placed != 1 {
		t.Fatalf("placed = %d", c.Placed)
	}
}

func TestAdmitBalancesAcrossSchedulerNIs(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	for i := 0; i < 8; i++ {
		if _, err := c.Admit(request("s", 160*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	n := c.Nodes[0]
	a, b := n.Schedulers[0].Streams(), n.Schedulers[1].Streams()
	if a != 4 || b != 4 {
		t.Fatalf("unbalanced placement: %d vs %d", a, b)
	}
}

func TestAdmissionRejectsOverCommit(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, []NodeConfig{{Name: "n0", Segments: 1, SchedulerNIs: 1, ProducerNIs: 1}})
	// Very fast large-frame streams exhaust the 100 Mbps link quickly:
	// 5 ms period × 12 kB ≈ 20 Mbps each → ~3.5 fit under a 70% ceiling.
	admitted := 0
	var lastErr error
	for i := 0; i < 50; i++ {
		_, err := c.Admit(StreamRequest{
			Name: "fat", Period: 5 * sim.Millisecond, FrameBytes: 12000,
			Loss: fixed.New(1, 2), Lossy: true,
		})
		if err != nil {
			lastErr = err
			break
		}
		admitted++
	}
	if admitted == 0 || admitted > 10 {
		t.Fatalf("admitted %d fat streams, want a small number", admitted)
	}
	if !errors.Is(lastErr, ErrAdmission) {
		t.Fatalf("err = %v", lastErr)
	}
	if c.Rejected != 1 {
		t.Fatalf("rejected = %d", c.Rejected)
	}
}

func TestAdmissionValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	if _, err := c.Admit(StreamRequest{Name: "bad", Period: 0, FrameBytes: 100}); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := c.Admit(StreamRequest{Name: "bad", Period: sim.Second, FrameBytes: 0}); err == nil {
		t.Error("zero frame size should fail")
	}
}

func TestNoProducersMeansRejection(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, []NodeConfig{{Name: "n0", SchedulerNIs: 1, ProducerNIs: 0}})
	if _, err := c.Admit(request("s", sim.Second)); !errors.Is(err, ErrAdmission) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndClusterStreaming(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 30, FPS: 30, GOPPattern: "IBB", MeanFrame: 2000, Seed: 8})
	var clients []interface{ String() string }
	for i := 0; i < 4; i++ {
		p, err := c.Admit(request("s", 100*sim.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		cl := c.AttachClient(p)
		clients = append(clients, cl)
		c.Start(p, clip, 50*sim.Millisecond, 1)
	}
	eng.RunUntil(6 * sim.Second)
	for i, cl := range clients {
		s := cl.String()
		if s == "" {
			t.Fatalf("client %d produced no summary", i)
		}
	}
	// All 4×30 frames delivered through the SAN switch.
	if c.Switch.Forwarded < 110 {
		t.Fatalf("switch forwarded %d frames, want ≈120", c.Switch.Forwarded)
	}
}

func TestCapacityScalesWithHardware(t *testing.T) {
	req := request("s", 160*sim.Millisecond)
	small := Capacity([]NodeConfig{{Name: "n", SchedulerNIs: 1, ProducerNIs: 1}}, req)
	big := Capacity([]NodeConfig{
		{Name: "a", Segments: 2, SchedulerNIs: 2, ProducerNIs: 2},
		{Name: "b", Segments: 2, SchedulerNIs: 2, ProducerNIs: 2},
	}, req)
	if small == 0 {
		t.Fatal("single-NI cluster admits nothing")
	}
	if big < 3*small {
		t.Fatalf("4× hardware admits %d vs %d — should scale ≈4×", big, small)
	}
}

func TestCapacityLimitedByMemoryForHugeBuffers(t *testing.T) {
	// 4 MB cards: 64-deep rings of 50 kB frames = 3.2 MB each → ~1 stream
	// per card under the 70% ceiling.
	req := StreamRequest{Name: "hd", Period: 500 * sim.Millisecond, FrameBytes: 50000,
		Loss: fixed.New(1, 2), Lossy: true}
	got := Capacity([]NodeConfig{{Name: "n", SchedulerNIs: 1, ProducerNIs: 1}}, req)
	if got != 0 && got > 2 {
		t.Fatalf("memory ceiling should cap admissions, got %d", got)
	}
}

func TestReleaseRefundsCapacity(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, []NodeConfig{{Name: "n0", SchedulerNIs: 1, ProducerNIs: 1}})
	// Fill the link with fat streams.
	var placements []*Placement
	for {
		p, err := c.Admit(StreamRequest{
			Name: "fat", Period: 5 * sim.Millisecond, FrameBytes: 12000,
			Loss: fixed.New(1, 2), Lossy: true,
		})
		if err != nil {
			break
		}
		placements = append(placements, p)
	}
	if len(placements) == 0 {
		t.Fatal("nothing admitted")
	}
	// Saturated: one more is rejected.
	if _, err := c.Admit(request("extra", 5*sim.Millisecond)); err == nil {
		// a small stream may still fit; force with another fat one
		if _, err := c.Admit(StreamRequest{Name: "fat2", Period: 5 * sim.Millisecond,
			FrameBytes: 12000, Loss: fixed.New(1, 2), Lossy: true}); err == nil {
			t.Fatal("expected saturation")
		}
	}
	// Release one; the same shape must fit again.
	if err := c.Release(placements[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(StreamRequest{Name: "fat3", Period: 5 * sim.Millisecond,
		FrameBytes: 12000, Loss: fixed.New(1, 2), Lossy: true}); err != nil {
		t.Fatalf("re-admission after release failed: %v", err)
	}
	s := placements[0].Scheduler
	if s.CPULoad() < 0 || s.LinkLoad() < 0 {
		t.Fatalf("negative load after release: cpu=%v link=%v", s.CPULoad(), s.LinkLoad())
	}
}

func TestReleaseUnknownStream(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	p, err := c.Admit(request("s", 160*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(p); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestFeasibilityReportMatchesAdmission(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	for i := 0; i < 6; i++ {
		if _, err := c.Admit(request("s", 160*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			rep, err := s.Feasibility()
			if err != nil {
				t.Fatalf("%s: %v", s.Card.Name, err)
			}
			if !rep.Feasible {
				t.Fatalf("%s: admitted set reported infeasible: %s", s.Card.Name, rep)
			}
			if len(rep.Streams) != s.Streams() {
				t.Fatalf("%s: report has %d streams, card has %d",
					s.Card.Name, len(rep.Streams), s.Streams())
			}
		}
	}
}

func TestRemoteInstructionToPlacedStream(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, oneNode())
	p, err := c.Admit(request("s", 160*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// A management client elsewhere on the SAN reconfigures the placed
	// stream through the distributed VCM.
	mgr := dvcmnet.Attach(eng, c.Switch, "mgmt", nil)
	var rerr error
	mgr.Invoke(p.Scheduler.Card.Name, core.Instr{Ext: "dwcs", Op: "reconfigure",
		Arg: nic.ReconfigureArgs{StreamID: p.StreamID, Period: 80 * sim.Millisecond,
			Loss: fixed.New(0, 1)}},
		func(_ any, err error) { rerr = err })
	eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if x, y, _ := p.Scheduler.Ext.Sched.Window(p.StreamID); x != 0 || y != 1 {
		t.Fatalf("window = %d/%d after remote reconfigure", x, y)
	}
}

func TestSchedulerFailover(t *testing.T) {
	eng := sim.NewEngine(2)
	c := New(eng, oneNode())
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 200, FPS: 30, GOPPattern: "IBB", MeanFrame: 1500, Seed: 9})
	var placements []*Placement
	reqs := map[int]StreamRequest{}
	for i := 0; i < 6; i++ {
		r := request("s", 100*sim.Millisecond)
		p, err := c.Admit(r)
		if err != nil {
			t.Fatal(err)
		}
		c.AttachClient(p)
		c.Start(p, clip, 100*sim.Millisecond, 1<<30)
		placements = append(placements, p)
		reqs[p.StreamID] = r
	}
	eng.RunUntil(3 * sim.Second)

	victim := c.Nodes[0].Schedulers[0]
	survivor := c.Nodes[0].Schedulers[1]
	affected := c.FailScheduler(victim, placements)
	if len(affected) != 3 {
		t.Fatalf("affected = %d, want 3 (balanced placement)", len(affected))
	}
	if !victim.Failed() || survivor.Failed() {
		t.Fatal("failure flags wrong")
	}
	// Re-admit the victims: they must land on the survivor.
	for _, old := range affected {
		np, err := c.Readmit(old, reqs[old.StreamID])
		if err != nil {
			t.Fatalf("re-admission failed: %v", err)
		}
		if np.Scheduler != survivor {
			t.Fatal("re-admitted stream placed on a failed card")
		}
		c.AttachClient(np)
		c.Start(np, clip, 100*sim.Millisecond, 1<<30)
	}
	sentBefore := survivor.Ext.Sent
	eng.RunUntil(6 * sim.Second)
	if survivor.Ext.Sent <= sentBefore {
		t.Fatal("survivor is not carrying the failed-over streams")
	}
	if survivor.Streams() != 6 {
		t.Fatalf("survivor streams = %d, want all 6", survivor.Streams())
	}
	// New admissions avoid the failed card too.
	p, err := c.Admit(request("late", 160*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheduler == victim {
		t.Fatal("admission placed a stream on a failed card")
	}
}
