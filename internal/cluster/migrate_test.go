package cluster

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/blackbox"
	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/overload"
	"repro/internal/sim"
)

// lossyReq is req() with a (1,4) window so partial window positions are
// visible across a migration (1/2 resets to full after one service), and a
// small ring so one card can host the whole test population.
func lossyReq(name string) StreamRequest {
	r := req(name)
	r.Loss = fixed.New(1, 4)
	r.BufCap = 8
	return r
}

// enqueueFrames pushes n address-only frames onto a placement's scheduler.
func enqueueFrames(t *testing.T, p *Placement, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := p.Scheduler.Ext.Enqueue(p.StreamID, dwcs.Packet{
			Bytes: p.Req.FrameBytes, Payload: nic.AddrPayload(p.Client),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMigratePreservesWindowCursorAndReplaysQueued: the live-migration happy
// path. A stream partway through its loss window, with frames still queued,
// moves to the other card: same stream ID, same client, window position and
// frame cursor intact, queued frames replayed onto the target.
func TestMigratePreservesWindowCursorAndReplaysQueued(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheduler != s0 {
		t.Fatalf("admitted on %s, want sched0", p.Scheduler.Card.Name)
	}
	c.AttachClient(p)
	enqueueFrames(t, p, 3)
	// Run past the first frame's eligibility (deadline 160ms − 20ms early
	// window): one frame serviced, (1,4) → (1,3); two frames stay queued.
	c.Eng.RunUntil(200 * sim.Millisecond)
	if st, err := s0.Ext.Sched.Stats(p.StreamID); err != nil || st.Serviced != 1 {
		t.Fatalf("pre-migration stats = %+v err=%v, want serviced=1", st, err)
	}

	var m *Migration
	c.Migrate(p, MigrateOptions{}, func(mig *Migration, err error) {
		if err != nil {
			t.Fatalf("migrate: %v", err)
		}
		m = mig
	})
	if m == nil {
		t.Fatal("migration did not settle inline on an idle target")
	}
	if m.To != s1 || m.New == nil || m.New.Scheduler != s1 {
		t.Fatalf("migrated to %v, want sched1", m.To)
	}
	if m.New.StreamID != p.StreamID {
		t.Fatalf("stream ID changed %d → %d; migration must not tear down", p.StreamID, m.New.StreamID)
	}
	if m.New.Client != p.Client {
		t.Fatalf("client changed %s → %s", p.Client, m.New.Client)
	}
	if m.Replayed != 2 {
		t.Fatalf("replayed %d frames, want 2", m.Replayed)
	}
	if cx, cy, err := s1.Ext.Sched.Window(p.StreamID); err != nil || cx != 1 || cy != 3 {
		t.Fatalf("target window = (%d,%d) err=%v, want (1,3)", cx, cy, err)
	}
	if got := s1.Ext.Sched.QueueLen(p.StreamID); got != 2 {
		t.Fatalf("target queue = %d, want the 2 replayed frames", got)
	}
	st, err := s1.Ext.Sched.Stats(p.StreamID)
	if err != nil || st.Serviced != 1 {
		t.Fatalf("target stats = %+v err=%v, want serviced=1 carried over", st, err)
	}
	if _, _, err := s0.Ext.Sched.Window(p.StreamID); err == nil {
		t.Fatal("source still owns the stream after migration")
	}
	if s0.Streams() != 0 || s1.Streams() != 1 {
		t.Fatalf("stream counts: s0=%d s1=%d", s0.Streams(), s1.Streams())
	}
	if s0.CPULoad() != 0 {
		t.Fatalf("source still holds cpu load %v", s0.CPULoad())
	}
	if live := c.Live(); len(live) != 1 || live[0] != m.New {
		t.Fatalf("live = %v, want just the migrated placement", live)
	}
}

// fill charges a card's budget up to its high-water mark so admission
// refuses, returning the release function.
func fill(s *SchedulerNI) func() {
	n := s.Overload.Budget.HighWater() - s.Overload.Budget.Used()
	if err := s.Overload.Budget.Charge(overload.ClassLeak, n); err != nil {
		panic(err)
	}
	return func() { s.Overload.Budget.Release(overload.ClassLeak, n) }
}

// TestMigrateDuringAwaitSpaceAndDoubleMigrateGuard: the target refuses at
// its budget high-water mark, so the migration parks in AwaitSpace; a second
// migrate of the same stream while the first is parked is refused by the
// double-migrate guard; when the target's budget drains, the parked
// migration completes.
func TestMigrateDuringAwaitSpaceAndDoubleMigrateGuard(t *testing.T) {
	c := twoSchedCluster(t)
	c.EnableOverload(nil)
	s1 := c.Nodes[0].Schedulers[1]
	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	release := fill(s1)

	var m *Migration
	var settleErr error
	settled := false
	c.Migrate(p, MigrateOptions{Backoff: 10 * sim.Second}, func(mig *Migration, err error) {
		m, settleErr, settled = mig, err, true
	})
	if settled {
		t.Fatal("migration settled against a full target")
	}
	if s1.Overload.Budget.Waiting() == 0 {
		t.Fatal("pending migration is not enrolled in AwaitSpace")
	}
	if len(c.Live()) != 0 {
		t.Fatal("stream still placed while migration is in flight")
	}

	c.Migrate(p, MigrateOptions{}, func(mig *Migration, err error) {
		if !errors.Is(err, ErrMigrationInProgress) {
			t.Fatalf("double migrate err = %v, want ErrMigrationInProgress", err)
		}
	})

	release() // budget drains to low-water; the parked migration fires
	if !settled || settleErr != nil {
		t.Fatalf("settled=%v err=%v after budget drain", settled, settleErr)
	}
	if m.To != s1 || m.Attempts != 2 {
		t.Fatalf("to=%v attempts=%d, want sched1 on the 2nd attempt", m.To, m.Attempts)
	}
	if m.New.StreamID != p.StreamID {
		t.Fatal("stream identity lost across the AwaitSpace park")
	}
}

// enqueueSink counts frames routed to the host tier.
type enqueueSink struct{ got int }

func (e *enqueueSink) Enqueue(id int, p dwcs.Packet) error { e.got++; return nil }

// TestRefusalCascadeFallsBackToHost: every candidate card refuses for the
// whole retry budget, so the stream falls back to the host-resident
// scheduler tier, queued frames included — degraded service, not teardown.
func TestRefusalCascadeFallsBackToHost(t *testing.T) {
	c := twoSchedCluster(t)
	c.EnableOverload(nil)
	s1 := c.Nodes[0].Schedulers[1]
	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	enqueueFrames(t, p, 2)
	fill(s1) // never released: the refusal cascade runs dry

	backup := &enqueueSink{}
	ft := &host.FailoverTarget{Primary: &enqueueSink{}, Backup: backup}
	var m *Migration
	c.Migrate(p, MigrateOptions{
		MaxAttempts: 2, Backoff: 10 * sim.Millisecond, Fallback: ft,
	}, func(mig *Migration, err error) {
		if err != nil {
			t.Fatalf("fallback migrate: %v", err)
		}
		m = mig
	})
	// Drive the backoff retries to exhaustion (bounded: the overload
	// controllers' periodic evaluation never lets a bare Run terminate).
	c.Eng.RunUntil(sim.Second)
	if m == nil {
		t.Fatal("migration never settled")
	}
	if !m.FellBack || m.To != nil {
		t.Fatalf("fellBack=%v to=%v, want host-tier fallback", m.FellBack, m.To)
	}
	if m.Attempts != 2 {
		t.Fatalf("attempts = %d, want the configured 2", m.Attempts)
	}
	if !ft.OnBackup() {
		t.Fatal("failover target never switched to backup")
	}
	if backup.got != 2 {
		t.Fatalf("backup received %d frames, want the 2 queued", backup.got)
	}
}

// TestBudgetLedgerConservationAcrossMigration: a migration must release on
// the source exactly what admission charged, and charge the target through
// the same front door — ledger symmetry on both cards.
func TestBudgetLedgerConservationAcrossMigration(t *testing.T) {
	c := twoSchedCluster(t)
	c.EnableOverload(nil)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	enqueueFrames(t, p, 3)
	charged := s0.Overload.Budget.Used()
	if charged == 0 {
		t.Fatal("admission charged nothing")
	}

	c.Migrate(p, MigrateOptions{}, func(mig *Migration, err error) {
		if err != nil {
			t.Fatalf("migrate: %v", err)
		}
	})
	if got := s0.Overload.Budget.Used(); got != 0 {
		t.Fatalf("source budget used = %d after migration, want 0", got)
	}
	ch, rel := s0.Overload.Budget.Ledger()
	if ch != rel {
		t.Fatalf("source ledger charged=%d released=%d, want conservation", ch, rel)
	}
	if got := s1.Overload.Budget.Used(); got != charged {
		t.Fatalf("target budget used = %d, want the stream's %d", got, charged)
	}
}

// TestMonitorIgnoresDrainingCard is the regression test for the spurious
// drain failover: a card under planned maintenance answers nothing, and the
// old monitor counted that silence as missed heartbeats and failed it over.
// Draining cards are skipped, their miss counters cleared, and the card
// rejoins cleanly when maintenance ends.
func TestMonitorIgnoresDrainingCard(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	if _, err := c.Admit(lossyReq("movie")); err != nil {
		t.Fatal(err)
	}

	m := NewMonitor(c, "monitor")
	m.Interval = 100 * sim.Millisecond
	m.Timeout = 10 * sim.Millisecond
	m.Misses = 2
	m.Auto = true
	m.OnFail = func(s *SchedulerNI, _ []*Placement) {
		t.Errorf("monitor failed over %s during its drain", s.Card.Name)
	}
	m.Start()

	// Maintenance window: the card goes dark for 1.5s — 15 probe intervals,
	// far past the 2-miss threshold — but is draining the whole time.
	c.Eng.At(200*sim.Millisecond, func() {
		s0.SetDraining(true)
		s0.Card.Crash()
	})
	c.Eng.At(1700*sim.Millisecond, func() {
		s0.Card.Reset()
		s0.SetDraining(false)
	})
	c.Eng.RunUntil(3 * sim.Second)
	m.Stop()

	if m.Detected != 0 {
		t.Fatalf("detected = %d failures during a declared drain", m.Detected)
	}
	if s0.Failed() {
		t.Fatal("draining card ended up failed")
	}
	if s0.Draining() {
		t.Fatal("card still draining after maintenance ended")
	}
}

// TestDrainSchedulerMovesStreamsLiveAndRebalanceReturns: planned drain
// migrates every stream off the card without teardown; after maintenance a
// rebalance pass pulls load back onto it.
func TestDrainSchedulerMovesStreamsLiveAndRebalanceReturns(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	ids := map[int]bool{}
	for _, name := range []string{"a", "b", "c", "d"} {
		p, err := c.Admit(lossyReq(name))
		if err != nil {
			t.Fatal(err)
		}
		ids[p.StreamID] = true
	}
	if s0.Streams() != 2 || s1.Streams() != 2 {
		t.Fatalf("streams s0=%d s1=%d, want 2/2", s0.Streams(), s1.Streams())
	}

	var drained []*Migration
	c.DrainScheduler(s0, MigrateOptions{}, func(ms []*Migration) { drained = ms })
	if len(drained) != 2 {
		t.Fatalf("drained %d migrations, want 2", len(drained))
	}
	for _, m := range drained {
		if m.To != s1 || !ids[m.StreamID] {
			t.Fatalf("drain moved %d to %v", m.StreamID, m.To)
		}
	}
	if s0.Streams() != 0 || s1.Streams() != 4 {
		t.Fatalf("post-drain streams s0=%d s1=%d, want 0/4", s0.Streams(), s1.Streams())
	}
	if _, err := c.Admit(lossyReq("e")); err != nil {
		t.Fatal(err)
	} else if s0.Streams() != 0 {
		t.Fatal("draining card accepted a new placement")
	}

	s0.SetDraining(false)
	var moves []*Migration
	c.Rebalance(MigrateOptions{}, func(ms []*Migration) { moves = ms })
	if len(moves) == 0 {
		t.Fatal("rebalance moved nothing back")
	}
	if spread := s1.Streams() - s0.Streams(); spread < -1 || spread > 1 {
		t.Fatalf("post-rebalance streams s0=%d s1=%d, want spread ≤ 1", s0.Streams(), s1.Streams())
	}
}

// TestMigrateColdFromCheckpoint: a crashed card's stream resumes from the
// monitor-style checkpoint image — window position and cursor survive even
// though the card contributed nothing at failure time.
func TestMigrateColdFromCheckpoint(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint a heartbeat would have cached: mid-window, cursor at 7.
	img, err := s0.Ext.Sched.ExportStream(p.StreamID)
	if err != nil {
		t.Fatal(err)
	}
	img.WindowX, img.WindowY = 1, 2
	img.Seq = 7

	affected := c.FailScheduler(s0, c.Live())
	if len(affected) != 1 {
		t.Fatalf("affected = %v", affected)
	}
	var m *Migration
	c.MigrateCold(affected[0], img, MigrateOptions{}, func(mig *Migration, err error) {
		if err != nil {
			t.Fatalf("cold migrate: %v", err)
		}
		m = mig
	})
	if m == nil || !m.Cold || m.To != s1 {
		t.Fatalf("cold migration = %+v", m)
	}
	if m.New.StreamID != p.StreamID {
		t.Fatal("cold migration minted a new stream ID")
	}
	if cx, cy, err := s1.Ext.Sched.Window(p.StreamID); err != nil || cx != 1 || cy != 2 {
		t.Fatalf("restored window = (%d,%d) err=%v, want checkpoint (1,2)", cx, cy, err)
	}
}

// migRing attaches a flight recorder to a scheduler NI and returns it.
func migRing(t *testing.T, s *SchedulerNI) *blackbox.Recorder {
	t.Helper()
	rec, err := blackbox.New(blackbox.Config{Name: s.Card.Name})
	if err != nil {
		t.Fatal(err)
	}
	s.Ext.AttachBlackbox(rec)
	return rec
}

// findNote returns the first event with the given note, or nil.
func findNote(evs []blackbox.Event, note string) *blackbox.Event {
	for i := range evs {
		if evs[i].Note == note {
			return &evs[i]
		}
	}
	return nil
}

// migEvents filters a ring down to its migration events.
func migEvents(rec *blackbox.Recorder) []blackbox.Event {
	var out []blackbox.Event
	for _, e := range rec.Events() {
		if e.Kind == blackbox.KindMigrate {
			out = append(out, e)
		}
	}
	return out
}

// TestMigrateRecordsBlackboxEvents: migrations must be visible in incident
// dumps — export begin on the source ring, import commit on the target ring,
// and an abort on the source when every candidate refuses.
func TestMigrateRecordsBlackboxEvents(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	rec0, rec1 := migRing(t, s0), migRing(t, s1)

	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	c.AttachClient(p)
	c.Migrate(p, MigrateOptions{}, func(m *Migration, err error) {
		if err != nil {
			t.Fatalf("migrate: %v", err)
		}
	})

	// The nic layer records raw export/import hops; the cluster layer must
	// add the migration lifecycle on top.
	if e := findNote(migEvents(rec0), "export begin (live)"); e == nil || e.Stream != p.StreamID {
		t.Fatalf("source ring missing export begin: %v", migEvents(rec0))
	}
	want := "import commit (live) from " + s0.Card.Name + " replay=0"
	if e := findNote(migEvents(rec1), want); e == nil || e.Stream != p.StreamID {
		t.Fatalf("target ring missing %q: %v", want, migEvents(rec1))
	}

	// Abort path: the only candidate is pinned at its high-water mark and
	// retries are exhausted, so the migration aborts — on the record.
	c.EnableOverload(nil)
	release := fill(s0)
	defer release()
	var aborted error
	c.Migrate(c.Live()[0], MigrateOptions{MaxAttempts: 1}, func(m *Migration, err error) {
		aborted = err
	})
	if aborted == nil {
		t.Fatal("migration should abort with every candidate refusing")
	}
	found := false
	for _, e := range migEvents(rec1) {
		if strings.HasPrefix(e.Note, "migration aborted:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("abort not recorded on source ring: %v", migEvents(rec1))
	}
}

// TestMigrateColdRecordsCommit: a cold restore records its import (marked
// cold) on the target ring.
func TestMigrateColdRecordsCommit(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	rec1 := migRing(t, s1)

	p, err := c.Admit(lossyReq("movie"))
	if err != nil {
		t.Fatal(err)
	}
	img, err := s0.Ext.Sched.ExportStream(p.StreamID)
	if err != nil {
		t.Fatal(err)
	}
	img.Seq = 7
	affected := c.FailScheduler(s0, c.Live())
	c.MigrateCold(affected[0], img, MigrateOptions{}, func(m *Migration, err error) {
		if err != nil {
			t.Fatalf("cold migrate: %v", err)
		}
	})
	e := findNote(migEvents(rec1), "import commit (cold) from "+s0.Card.Name+" replay=0")
	if e == nil || e.Seq != 7 {
		t.Fatalf("cold commit not recorded: %v", migEvents(rec1))
	}
}
