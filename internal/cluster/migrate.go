// Live stream migration: move an admitted stream between scheduler NIs
// without tearing it down. The protocol is the redirect-not-rebuild shape
// the control planes of production media servers use — the source exports
// the stream's DWCS window position and frame cursor as a migration image,
// the target re-admits it through the overload budget's front door (with
// AwaitSpace enrollment and capped-backoff retry when candidates refuse),
// the queued-but-undelivered frames replay onto the target, and the stream
// keeps its ID and client address across the hop. When every card refuses,
// the stream can fall back to the host-resident scheduler tier — degraded
// service beats none.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/dvcmnet"
	"repro/internal/dwcs"
	"repro/internal/host"
	"repro/internal/nic"
	"repro/internal/sim"
)

// ErrMigrationInProgress is returned when a stream is asked to migrate while
// a previous migration of the same stream is still running — the
// double-migrate guard.
var ErrMigrationInProgress = errors.New("cluster: migration already in progress")

// epochFence is a card's admission gate against stale controllers: the
// highest leader epoch the card has witnessed, and which replica stamped it.
// Commands stamped with an older epoch are rejected outright — the same
// jurisdictional semantics as sim.Msg.Cancel, where authority over an
// in-flight operation belongs to whoever holds the newest claim, applied
// here to the whole control plane. A newer stamp raises the fence as a side
// effect, so a takeover's first command (or its explicit fence broadcast)
// locks every reachable card against the deposed leader; there is no way to
// lower a fence. Card-partition-local state (ctrlha.go allocates one per
// card when the control plane is replicated).
type epochFence struct {
	epoch  int
	leader int
}

// admit reports whether a command stamped (epoch, replica) may execute,
// raising the fence when the stamp is newer than anything seen.
func (f *epochFence) admit(epoch, replica int) bool {
	if epoch < f.epoch {
		return false
	}
	if epoch > f.epoch {
		f.epoch, f.leader = epoch, replica
	}
	return true
}

// MigrateOptions tunes one migration.
type MigrateOptions struct {
	// Avoid vetoes candidate target cards beyond the standing exclusions
	// (source card, failed, draining) — the domain-aware failover filter.
	Avoid func(*SchedulerNI) bool
	// MaxAttempts caps placement attempts before giving up or falling back
	// to the host tier. 0 = 3.
	MaxAttempts int
	// Backoff is the initial retry delay after a refused attempt; it
	// doubles per refusal up to MaxBackoff. 0 = 50 ms / 1 s.
	Backoff    sim.Time
	MaxBackoff sim.Time
	// Fallback, when set, receives the stream after MaxAttempts refusals:
	// injection fails over to the host-resident scheduler instead of the
	// stream dying. The caller wires the target's Backup path beforehand.
	Fallback *host.FailoverTarget
	// Via, when set, carries the frame replay over the SAN through this
	// management endpoint, so retransmitted replays are absorbed by the
	// dvcmnet request-ID dedup. Nil replays card-locally.
	Via *dvcmnet.Endpoint
}

// Migration records one completed (or failed) stream move.
type Migration struct {
	StreamID          int
	From, To          *SchedulerNI
	Old, New          *Placement
	Image             dwcs.StreamSnapshot
	Cold              bool // restored from a heartbeat checkpoint, not a live export
	Replayed          int  // in-flight frames replayed onto the target
	Attempts          int  // placement attempts (≥1)
	FellBack          bool // landed on the host tier, not a card
	StartedAt, DoneAt sim.Time
}

// Migrate moves a live stream off its current scheduler NI. done fires when
// the migration settles — inline when the first candidate admits, later when
// the protocol had to wait on AwaitSpace or backoff timers. done may be nil.
//
// The source side is destructive-but-capturing: the stream's image and
// queued frames are detached first, so from this call on the stream is
// either on its new card, on the host fallback tier, or (every retry
// exhausted, no fallback) reported lost through done's error.
func (c *Cluster) Migrate(p *Placement, opts MigrateOptions, done func(*Migration, error)) {
	if done == nil {
		done = func(*Migration, error) {}
	}
	if c.migrating == nil {
		c.migrating = make(map[int]bool)
	}
	if c.migrating[p.StreamID] {
		done(nil, fmt.Errorf("%w: stream %d", ErrMigrationInProgress, p.StreamID))
		return
	}
	if c.placements[p.StreamID] != p {
		done(nil, fmt.Errorf("cluster: migrate: stream %d is not the live placement", p.StreamID))
		return
	}
	c.migrating[p.StreamID] = true

	m := &Migration{StreamID: p.StreamID, From: p.Scheduler, Old: p, StartedAt: c.Eng.Now()}
	img, queued, err := p.Scheduler.Ext.DetachStream(p.StreamID)
	if err != nil {
		p.Scheduler.Ext.Blackbox.Record(blackbox.Event{
			At: c.Eng.Now(), Kind: blackbox.KindMigrate, Stream: p.StreamID,
			Note: "export failed: " + err.Error(),
		})
		delete(c.migrating, p.StreamID)
		done(m, err)
		return
	}
	m.Image = img
	p.Scheduler.Ext.Blackbox.Record(blackbox.Event{
		At: c.Eng.Now(), Kind: blackbox.KindMigrate, Stream: p.StreamID,
		Seq: img.Seq, A: int64(img.WindowX), B: int64(img.WindowY),
		Note: "export begin (live)",
	})
	c.refund(p)
	delete(p.Scheduler.specs, p.StreamID)
	delete(c.placements, p.StreamID)
	p.Scheduler.streams--
	p.Producer.streams--
	c.Placed--

	c.settle(m, p, img, queued, opts, done)
}

// MigrateCold re-places a stream torn off a dead card from its last
// heartbeat checkpoint. The source card contributed nothing at failure time
// — the image is the monitor's cached snapshot, one poll interval stale at
// worst — so there are no frames to replay, but the window position and
// frame cursor survive, which is what keeps the loss-window honest through
// the outage. old must already have been torn down by FailScheduler.
func (c *Cluster) MigrateCold(old *Placement, img dwcs.StreamSnapshot, opts MigrateOptions, done func(*Migration, error)) {
	if done == nil {
		done = func(*Migration, error) {}
	}
	if c.migrating == nil {
		c.migrating = make(map[int]bool)
	}
	if c.migrating[old.StreamID] {
		done(nil, fmt.Errorf("%w: stream %d", ErrMigrationInProgress, old.StreamID))
		return
	}
	c.migrating[old.StreamID] = true
	m := &Migration{StreamID: old.StreamID, From: old.Scheduler, Old: old,
		Image: img, Cold: true, StartedAt: c.Eng.Now()}
	c.settle(m, old, img, nil, opts, done)
}

// settle is the target half of both migration flavors: candidate placement
// with AwaitSpace enrollment and capped-backoff retry, then frame replay,
// then host-tier fallback as the last resort.
func (c *Cluster) settle(m *Migration, p *Placement, img dwcs.StreamSnapshot,
	queued []dwcs.Packet, opts MigrateOptions, done func(*Migration, error)) {
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 50 * sim.Millisecond
	}
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = sim.Second
	}
	avoid := func(s *SchedulerNI) bool {
		return s == p.Scheduler || (opts.Avoid != nil && opts.Avoid(s))
	}
	finish := func(err error) {
		m.DoneAt = c.Eng.Now()
		delete(c.migrating, p.StreamID)
		// Commit/abort lands in the flight-recorder ring so migrations are
		// visible in incident dumps: commit on the card that now serves the
		// stream, abort on the card that lost it.
		switch {
		case err != nil:
			m.From.Ext.Blackbox.Record(blackbox.Event{
				At: m.DoneAt, Kind: blackbox.KindMigrate, Stream: m.StreamID,
				Note: "migration aborted: " + err.Error(),
			})
		case m.FellBack:
			m.From.Ext.Blackbox.Record(blackbox.Event{
				At: m.DoneAt, Kind: blackbox.KindMigrate, Stream: m.StreamID,
				Seq: img.Seq, Note: "fell back to host tier",
			})
		case m.To != nil:
			kind := "live"
			if m.Cold {
				kind = "cold"
			}
			m.To.Ext.Blackbox.Record(blackbox.Event{
				At: m.DoneAt, Kind: blackbox.KindMigrate, Stream: m.StreamID,
				Seq: img.Seq, A: int64(img.WindowX), B: int64(img.WindowY),
				Note: fmt.Sprintf("import commit (%s) from %s replay=%d",
					kind, m.From.Card.Name, m.Replayed),
			})
		}
		done(m, err)
	}
	var try func()
	try = func() {
		m.Attempts++
		np, err := c.place(p.Req, p.StreamID, p.Client, &img, avoid)
		if err == nil {
			m.To, m.New = np.Scheduler, np
			m.Replayed = c.replay(np, queued, opts)
			finish(nil)
			return
		}
		if !errors.Is(err, ErrAdmission) {
			finish(err)
			return
		}
		if m.Attempts >= maxAttempts {
			if opts.Fallback != nil {
				opts.Fallback.FailToBackup()
				for _, pkt := range queued {
					if opts.Fallback.Enqueue(p.StreamID, pkt) == nil {
						m.Replayed++
					}
				}
				m.FellBack = true
				finish(nil)
				return
			}
			finish(err)
			return
		}
		// Refused everywhere: re-attempt when a pressured candidate's budget
		// drains back under its low-water mark, or after the capped backoff
		// — whichever fires first (the other firing is absorbed).
		fired := false
		once := func() {
			if fired {
				return
			}
			fired = true
			try()
		}
		if cand := c.awaitCandidate(avoid); cand != nil {
			cand.Overload.Budget.AwaitSpace(once)
		}
		c.Eng.After(backoff, once)
		if backoff < maxBackoff/2 {
			backoff *= 2
		} else {
			backoff = maxBackoff
		}
	}
	try()
}

// awaitCandidate picks the least-CPU-loaded overload-protected card not
// vetoed by avoid — the budget whose drain most plausibly unblocks the
// migration.
func (c *Cluster) awaitCandidate(avoid func(*SchedulerNI) bool) *SchedulerNI {
	var best *SchedulerNI
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			if s.Card.Link == nil || s.failed || s.draining || s.Overload == nil || avoid(s) {
				continue
			}
			if best == nil || s.cpuLoad < best.cpuLoad {
				best = s
			}
		}
	}
	return best
}

// replay re-enqueues the detached in-flight frames on the target card. Over
// the SAN (opts.Via) each frame rides a dvcmnet request, so a retransmitted
// replay is absorbed by the target's request-ID dedup instead of duplicating
// the frame; card-locally it is a direct enqueue.
func (c *Cluster) replay(np *Placement, queued []dwcs.Packet, opts MigrateOptions) int {
	n := 0
	for _, pkt := range queued {
		pkt.Payload = nic.AddrPayload(np.Client)
		if opts.Via != nil {
			opts.Via.Invoke(np.Scheduler.Card.Name, core.Instr{
				Ext: "dwcs", Op: "enqueue",
				Arg: nic.EnqueueArgs{StreamID: np.StreamID, Packet: pkt},
			}, nil)
			n++
			continue
		}
		if np.Scheduler.Ext.Enqueue(np.StreamID, pkt) == nil {
			n++
		}
	}
	return n
}

// DrainScheduler starts planned maintenance on a card: it stops taking new
// placements and every stream it serves is migrated off live. done fires
// once all migrations settle, with the per-stream results in StreamID order.
// The card keeps answering heartbeats throughout — drain is not death.
func (c *Cluster) DrainScheduler(s *SchedulerNI, opts MigrateOptions, done func([]*Migration)) {
	s.SetDraining(true)
	var affected []*Placement
	for _, p := range c.Live() {
		if p.Scheduler == s {
			affected = append(affected, p)
		}
	}
	results := make([]*Migration, 0, len(affected))
	pendingCount := len(affected)
	if pendingCount == 0 {
		if done != nil {
			done(results)
		}
		return
	}
	for _, p := range affected {
		c.Migrate(p, opts, func(m *Migration, err error) {
			results = append(results, m)
			pendingCount--
			if pendingCount == 0 && done != nil {
				done(results)
			}
		})
	}
}

// Rebalance evens stream counts after a recovery or drain return: while the
// spread between the most- and least-loaded live cards exceeds one stream,
// the newest stream on the most-loaded card migrates (the placement engine
// lands it on the least-loaded card). Sequential and deterministic: each
// step starts when the previous migration settles. done receives the moves.
func (c *Cluster) Rebalance(opts MigrateOptions, done func([]*Migration)) {
	var moves []*Migration
	var step func()
	step = func() {
		src, spread := c.widestSpread()
		if src == nil || spread <= 1 {
			if done != nil {
				done(moves)
			}
			return
		}
		// Newest stream on the hot card: cheapest history to move.
		var pick *Placement
		for _, p := range c.Live() {
			if p.Scheduler == src && (pick == nil || p.StreamID > pick.StreamID) {
				pick = p
			}
		}
		if pick == nil {
			if done != nil {
				done(moves)
			}
			return
		}
		c.Migrate(pick, opts, func(m *Migration, err error) {
			if err != nil || m.To == src {
				// No better home exists; stop rather than churn.
				if done != nil {
					done(moves)
				}
				return
			}
			moves = append(moves, m)
			step()
		})
	}
	step()
}

// widestSpread returns the most-loaded live card and the stream-count gap to
// the least-loaded one.
func (c *Cluster) widestSpread() (*SchedulerNI, int) {
	var hot *SchedulerNI
	minStreams := -1
	for _, n := range c.Nodes {
		for _, s := range n.Schedulers {
			if s.Card.Link == nil || s.failed || s.draining {
				continue
			}
			if hot == nil || s.streams > hot.streams {
				hot = s
			}
			if minStreams < 0 || s.streams < minStreams {
				minStreams = s.streams
			}
		}
	}
	if hot == nil {
		return nil, 0
	}
	return hot, hot.streams - minStreams
}
