package cluster

import (
	"testing"

	"repro/internal/fixed"
	"repro/internal/sim"
)

func twoSchedCluster(t *testing.T) *Cluster {
	t.Helper()
	eng := sim.NewEngine(11)
	return New(eng, []NodeConfig{{Name: "n0", Segments: 1, SchedulerNIs: 2, ProducerNIs: 1}})
}

func req(name string) StreamRequest {
	return StreamRequest{Name: name, Period: 160 * sim.Millisecond,
		FrameBytes: 12_000, Loss: fixed.New(1, 2), Lossy: true}
}

// TestReadmitRefundsAndPreservesClient is the regression test for the old
// Readmit, which ignored the failed placement entirely: the dead card's
// commitment was never refunded and the stream was re-admitted under a
// fresh client address, orphaning the viewer.
func TestReadmitRefundsAndPreservesClient(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]

	p, err := c.Admit(req("movie"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheduler != s0 {
		t.Fatalf("first admit on %s, want sched0", p.Scheduler.Card.Name)
	}
	affected := c.FailScheduler(s0, c.Live())
	if len(affected) != 1 || affected[0] != p {
		t.Fatalf("affected = %v", affected)
	}
	if s0.CPULoad() != 0 || s0.LinkLoad() != 0 {
		t.Fatalf("failed card still holds cpu=%v link=%v", s0.CPULoad(), s0.LinkLoad())
	}

	np, err := c.Readmit(p, p.Req)
	if err != nil {
		t.Fatal(err)
	}
	if np.Scheduler != s1 {
		t.Fatalf("readmitted to %s, want the surviving card", np.Scheduler.Card.Name)
	}
	if np.Client != p.Client {
		t.Fatalf("client %s changed to %s across failover", p.Client, np.Client)
	}
	if np.StreamID == p.StreamID {
		t.Fatal("stream ID reused; the dead card's DWCS state is gone")
	}
	live := c.Live()
	if len(live) != 1 || live[0] != np {
		t.Fatalf("live = %v, want just the new placement", live)
	}
	// Double Readmit of the same old placement must not double-refund.
	if _, err := c.Readmit(p, p.Req); err != nil {
		t.Fatal(err)
	}
	if s0.CPULoad() != 0 {
		t.Fatalf("sched0 cpu load %v after double readmit, want 0", s0.CPULoad())
	}
}

// TestReadmitExcludesOldCardEvenIfNotFailed: moving a stream must not land
// it back on the card it is being moved off.
func TestReadmitExcludesOldCardEvenIfNotFailed(t *testing.T) {
	c := twoSchedCluster(t)
	p, err := c.Admit(req("movie"))
	if err != nil {
		t.Fatal(err)
	}
	np, err := c.Readmit(p, p.Req)
	if err != nil {
		t.Fatal(err)
	}
	if np.Scheduler == p.Scheduler {
		t.Fatal("readmit placed the stream back on the card it left")
	}
}

// TestMonitorDetectsCrashFailsOverAndSeesRecovery: the full loop — a card
// crash silences its endpoint, heartbeats miss, the monitor fails the card
// and re-admits its stream on the survivor, and after the card resets the
// monitor readmits it to service.
func TestMonitorDetectsCrashFailsOverAndSeesRecovery(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	s1 := c.Nodes[0].Schedulers[1]
	p0, err := c.Admit(req("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(req("b")); err != nil {
		t.Fatal(err)
	}

	m := NewMonitor(c, "monitor")
	m.Interval = 100 * sim.Millisecond
	m.Timeout = 10 * sim.Millisecond
	m.Misses = 2
	m.Auto = true
	var moved *Placement
	m.OnReadmit = func(old, now *Placement, err error) {
		if err != nil {
			t.Errorf("readmit %s: %v", old.Req.Name, err)
			return
		}
		moved = now
	}
	m.Start()

	c.Eng.At(sim.Second, s0.Card.Crash)
	c.Eng.At(2*sim.Second, s0.Card.Reset)
	c.Eng.RunUntil(3 * sim.Second)
	m.Stop()

	if m.Detected != 1 {
		t.Fatalf("detected = %d failures", m.Detected)
	}
	if m.Failovers != 1 || moved == nil {
		t.Fatalf("failovers = %d, moved = %v", m.Failovers, moved)
	}
	if moved.Scheduler != s1 {
		t.Fatalf("stream moved to %s, want the survivor", moved.Scheduler.Card.Name)
	}
	if moved.Client != p0.Client {
		t.Fatalf("client changed across monitor failover: %s → %s", p0.Client, moved.Client)
	}
	if m.Recovered != 1 || s0.Failed() {
		t.Fatalf("recovered = %d, s0 failed = %v after reset", m.Recovered, s0.Failed())
	}
	if m.Probes == 0 {
		t.Fatal("monitor sent no probes")
	}
}
