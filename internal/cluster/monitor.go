// Monitor: heartbeat-based failure detection for scheduler NIs. The
// paper's cluster leans on "careful construction" of NI firmware (§6);
// here a small management endpoint on the SAN probes every scheduler card
// with a cheap DVCM instruction and, after a run of consecutive silent
// probes, declares the card dead — driving FailScheduler and re-admission
// automatically instead of by test-harness oracle.
package cluster

import (
	"repro/internal/core"
	"repro/internal/dvcmnet"
	"repro/internal/dwcs"
	"repro/internal/sim"
)

// Monitor probes scheduler NIs over the SAN and fails over their streams.
type Monitor struct {
	Cluster  *Cluster
	Endpoint *dvcmnet.Endpoint

	// Interval is the probe period; Timeout bounds each probe; Misses is
	// how many consecutive unanswered probes declare a card dead.
	Interval sim.Time
	Timeout  sim.Time
	Misses   int

	// Auto, when set, re-admits a dead card's streams onto surviving cards
	// immediately on detection. Without it the monitor only detects and
	// reports via OnFail.
	Auto bool

	// RebalanceOnRecover, when set with Auto, runs a rebalance pass after a
	// failed card rejoins service, pulling streams back onto it until the
	// fleet's per-card spread is within one stream.
	RebalanceOnRecover bool

	// MigrateOpts shapes the cold migrations and rebalance moves the
	// monitor performs in Auto mode (the domain-aware avoid filter is
	// layered on top of MigrateOpts.Avoid, not replaced by it).
	MigrateOpts MigrateOptions

	// OnFail fires when a card is declared dead, with the placements torn
	// off it. OnReadmit fires per affected stream in Auto mode (err is the
	// admission error, if any; now is nil then). OnRecover fires when a
	// failed card answers probes again and rejoins admission.
	OnFail    func(s *SchedulerNI, affected []*Placement)
	OnReadmit func(old, now *Placement, err error)
	OnRecover func(s *SchedulerNI)

	// Unhealthy, when set, is consulted every probe round: a card it flags
	// is treated as a missed heartbeat even though the probe answered. An
	// SLO monitor plugs in here so a card burning its error budget fails
	// over *before* it goes silent — the early-failover signal. A flagged
	// card still needs Misses consecutive strikes, so one bad evaluation
	// window cannot bounce a card.
	Unhealthy func(s *SchedulerNI) bool

	// Probes counts heartbeats sent; Detected counts declared failures;
	// Failovers counts streams successfully re-admitted; Recovered counts
	// cards readmitted to service. SLOFails counts probe rounds where a
	// responsive card was struck by the Unhealthy hook. Checkpointed counts
	// streams failed over warm (from a cached heartbeat snapshot);
	// Rebalanced counts post-recovery rebalance moves.
	Probes       int64
	Detected     int64
	Failovers    int64
	Recovered    int64
	SLOFails     int64
	Checkpointed int64
	Rebalanced   int64

	miss map[*SchedulerNI]int
	stop func()

	// checkpoints caches each card's last heartbeat snapshot per stream:
	// the reply the probe was already carrying becomes the cold-migration
	// image when the card later goes dark — failover state for free.
	checkpoints map[*SchedulerNI]map[int]dwcs.StreamSnapshot
}

// NewMonitor attaches a monitor endpoint to the cluster's SAN under addr.
// Defaults: 250 ms probe interval, 25 ms probe timeout, 2 misses.
func NewMonitor(c *Cluster, addr string) *Monitor {
	m := &Monitor{
		Cluster:  c,
		Endpoint: dvcmnet.Attach(c.Eng, c.Switch, addr, nil),
		Interval: 250 * sim.Millisecond,
		Timeout:  25 * sim.Millisecond,
		Misses:   2,
		miss:     make(map[*SchedulerNI]int),

		checkpoints: make(map[*SchedulerNI]map[int]dwcs.StreamSnapshot),
	}
	return m
}

// Start begins probing. The first probe round fires one interval in.
func (m *Monitor) Start() {
	if m.stop != nil {
		return
	}
	m.Endpoint.Timeout = m.Timeout
	m.stop = m.Cluster.Eng.Every(m.Interval, m.tick)
}

// Stop ends probing (needed before a bare eng.Run can terminate).
func (m *Monitor) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

func (m *Monitor) tick() {
	for _, n := range m.Cluster.Nodes {
		for _, s := range n.Schedulers {
			s := s
			if s.draining {
				// Planned maintenance: the card may be rebooting or busy
				// migrating its streams off. Silence here is expected, not
				// death — probing it would strike misses and trigger a
				// spurious failover on top of the drain.
				m.miss[s] = 0
				continue
			}
			m.Probes++
			m.Endpoint.Invoke(s.Card.Name, core.Instr{Ext: "dwcs", Op: "snapshot"},
				func(reply any, err error) {
					switch {
					case err != nil:
						m.missed(s)
					case m.Unhealthy != nil && m.Unhealthy(s):
						m.SLOFails++
						m.missed(s)
					default:
						m.checkpoint(s, reply)
						m.alive(s)
					}
				})
		}
	}
}

// checkpoint caches the probe reply — the card's full stream snapshot —
// as the warm failover image for each stream on that card.
func (m *Monitor) checkpoint(s *SchedulerNI, reply any) {
	snaps, ok := reply.([]dwcs.StreamSnapshot)
	if !ok {
		return
	}
	byID := make(map[int]dwcs.StreamSnapshot, len(snaps))
	for _, snap := range snaps {
		byID[snap.Spec.ID] = snap
	}
	m.checkpoints[s] = byID
}

// avoidDomains is the domain-aware failover filter. A lone card crash is a
// card problem — same-host siblings stay eligible. But when another card in
// the same host domain has also failed, the host itself is suspect (a host
// crash takes every card on its bus) and the whole host domain is vetoed;
// likewise two dead cards behind one switch on different hosts make the
// switch suspect and veto its domain.
func (m *Monitor) avoidDomains(failed *SchedulerNI) func(*SchedulerNI) bool {
	dom := m.Cluster.Domains
	hostSuspect, switchSuspect := false, false
	if dom != nil {
		for _, n := range m.Cluster.Nodes {
			for _, s := range n.Schedulers {
				if s == failed || !s.failed {
					continue
				}
				if dom.SameHost(failed.Card.Name, s.Card.Name) {
					hostSuspect = true
				} else if dom.SameSwitch(failed.Card.Name, s.Card.Name) {
					switchSuspect = true
				}
			}
		}
	}
	base := m.MigrateOpts.Avoid
	return func(s *SchedulerNI) bool {
		if base != nil && base(s) {
			return true
		}
		if hostSuspect && dom.SameHost(failed.Card.Name, s.Card.Name) {
			return true
		}
		return switchSuspect && dom.SameSwitch(failed.Card.Name, s.Card.Name)
	}
}

func (m *Monitor) missed(s *SchedulerNI) {
	if s.failed || s.draining {
		return // already failed out or in maintenance; not a new detection
	}
	m.miss[s]++
	if m.miss[s] < m.Misses {
		return
	}
	m.Detected++
	affected := m.Cluster.FailScheduler(s, m.Cluster.Live())
	if m.OnFail != nil {
		m.OnFail(s, affected)
	}
	if !m.Auto {
		return
	}
	avoid := m.avoidDomains(s)
	ckpts := m.checkpoints[s]
	for _, old := range affected {
		if img, ok := ckpts[old.StreamID]; ok {
			// Warm failover: the stream resumes mid-window from its last
			// heartbeat checkpoint, keeping its ID — no teardown.
			opts := m.MigrateOpts
			opts.Avoid = avoid
			m.Cluster.MigrateCold(old, img, opts, func(mig *Migration, err error) {
				if err == nil {
					m.Failovers++
					m.Checkpointed++
				}
				if m.OnReadmit != nil {
					m.OnReadmit(old, mig.New, err)
				}
			})
			continue
		}
		now, err := m.Cluster.Readmit(old, old.Req)
		if err == nil {
			m.Failovers++
		}
		if m.OnReadmit != nil {
			m.OnReadmit(old, now, err)
		}
	}
}

func (m *Monitor) alive(s *SchedulerNI) {
	m.miss[s] = 0
	if !s.failed {
		return
	}
	m.Recovered++
	m.Cluster.Recover(s)
	if m.OnRecover != nil {
		m.OnRecover(s)
	}
	if m.Auto && m.RebalanceOnRecover {
		m.Cluster.Rebalance(m.MigrateOpts, func(moves []*Migration) {
			m.Rebalanced += int64(len(moves))
		})
	}
}
