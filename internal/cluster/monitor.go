// Monitor: heartbeat-based failure detection for scheduler NIs. The
// paper's cluster leans on "careful construction" of NI firmware (§6);
// here a small management endpoint on the SAN probes every scheduler card
// with a cheap DVCM instruction and, after a run of consecutive silent
// probes, declares the card dead — driving FailScheduler and re-admission
// automatically instead of by test-harness oracle.
package cluster

import (
	"repro/internal/core"
	"repro/internal/dvcmnet"
	"repro/internal/sim"
)

// Monitor probes scheduler NIs over the SAN and fails over their streams.
type Monitor struct {
	Cluster  *Cluster
	Endpoint *dvcmnet.Endpoint

	// Interval is the probe period; Timeout bounds each probe; Misses is
	// how many consecutive unanswered probes declare a card dead.
	Interval sim.Time
	Timeout  sim.Time
	Misses   int

	// Auto, when set, re-admits a dead card's streams onto surviving cards
	// immediately on detection. Without it the monitor only detects and
	// reports via OnFail.
	Auto bool

	// OnFail fires when a card is declared dead, with the placements torn
	// off it. OnReadmit fires per affected stream in Auto mode (err is the
	// admission error, if any; now is nil then). OnRecover fires when a
	// failed card answers probes again and rejoins admission.
	OnFail    func(s *SchedulerNI, affected []*Placement)
	OnReadmit func(old, now *Placement, err error)
	OnRecover func(s *SchedulerNI)

	// Unhealthy, when set, is consulted every probe round: a card it flags
	// is treated as a missed heartbeat even though the probe answered. An
	// SLO monitor plugs in here so a card burning its error budget fails
	// over *before* it goes silent — the early-failover signal. A flagged
	// card still needs Misses consecutive strikes, so one bad evaluation
	// window cannot bounce a card.
	Unhealthy func(s *SchedulerNI) bool

	// Probes counts heartbeats sent; Detected counts declared failures;
	// Failovers counts streams successfully re-admitted; Recovered counts
	// cards readmitted to service. SLOFails counts probe rounds where a
	// responsive card was struck by the Unhealthy hook.
	Probes    int64
	Detected  int64
	Failovers int64
	Recovered int64
	SLOFails  int64

	miss map[*SchedulerNI]int
	stop func()
}

// NewMonitor attaches a monitor endpoint to the cluster's SAN under addr.
// Defaults: 250 ms probe interval, 25 ms probe timeout, 2 misses.
func NewMonitor(c *Cluster, addr string) *Monitor {
	m := &Monitor{
		Cluster:  c,
		Endpoint: dvcmnet.Attach(c.Eng, c.Switch, addr, nil),
		Interval: 250 * sim.Millisecond,
		Timeout:  25 * sim.Millisecond,
		Misses:   2,
		miss:     make(map[*SchedulerNI]int),
	}
	return m
}

// Start begins probing. The first probe round fires one interval in.
func (m *Monitor) Start() {
	if m.stop != nil {
		return
	}
	m.Endpoint.Timeout = m.Timeout
	m.stop = m.Cluster.Eng.Every(m.Interval, m.tick)
}

// Stop ends probing (needed before a bare eng.Run can terminate).
func (m *Monitor) Stop() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

func (m *Monitor) tick() {
	for _, n := range m.Cluster.Nodes {
		for _, s := range n.Schedulers {
			s := s
			m.Probes++
			m.Endpoint.Invoke(s.Card.Name, core.Instr{Ext: "dwcs", Op: "snapshot"},
				func(_ any, err error) {
					switch {
					case err != nil:
						m.missed(s)
					case m.Unhealthy != nil && m.Unhealthy(s):
						m.SLOFails++
						m.missed(s)
					default:
						m.alive(s)
					}
				})
		}
	}
}

func (m *Monitor) missed(s *SchedulerNI) {
	if s.failed {
		return // already failed out; waiting for recovery
	}
	m.miss[s]++
	if m.miss[s] < m.Misses {
		return
	}
	m.Detected++
	affected := m.Cluster.FailScheduler(s, m.Cluster.Live())
	if m.OnFail != nil {
		m.OnFail(s, affected)
	}
	if !m.Auto {
		return
	}
	for _, old := range affected {
		now, err := m.Cluster.Readmit(old, old.Req)
		if err == nil {
			m.Failovers++
		}
		if m.OnReadmit != nil {
			m.OnReadmit(old, now, err)
		}
	}
}

func (m *Monitor) alive(s *SchedulerNI) {
	m.miss[s] = 0
	if !s.failed {
		return
	}
	m.Recovered++
	m.Cluster.Recover(s)
	if m.OnRecover != nil {
		m.OnRecover(s)
	}
}
