package cluster

import (
	"testing"

	"repro/internal/sim"
)

// TestUnhealthyHookFailsOverResponsiveCard: a card whose SLO monitor reports
// it burning is failed over even though its heartbeat still answers — the
// early-failover signal — and rejoins once the hook clears.
func TestUnhealthyHookFailsOverResponsiveCard(t *testing.T) {
	c := twoSchedCluster(t)
	s0 := c.Nodes[0].Schedulers[0]
	if _, err := c.Admit(req("a")); err != nil {
		t.Fatal(err)
	}

	m := NewMonitor(c, "monitor")
	m.Interval = 100 * sim.Millisecond
	m.Timeout = 10 * sim.Millisecond
	m.Misses = 2
	m.Auto = true
	burning := false
	m.Unhealthy = func(s *SchedulerNI) bool { return s == s0 && burning }
	m.Start()

	c.Eng.At(sim.Second, func() { burning = true })
	c.Eng.At(2*sim.Second, func() { burning = false })
	c.Eng.RunUntil(3 * sim.Second)
	m.Stop()

	if m.SLOFails < int64(m.Misses) {
		t.Fatalf("SLOFails = %d, want at least %d strikes", m.SLOFails, m.Misses)
	}
	if m.Detected != 1 || m.Failovers != 1 {
		t.Fatalf("detected = %d, failovers = %d: SLO burn did not fail over", m.Detected, m.Failovers)
	}
	if m.Recovered != 1 || s0.Failed() {
		t.Fatalf("card did not rejoin after the hook cleared: recovered=%d failed=%v",
			m.Recovered, s0.Failed())
	}
	// One bad round is not enough: Misses hysteresis still applies.
	if m.SLOFails > 0 && m.Misses < 2 {
		t.Fatal("test requires Misses >= 2 to prove hysteresis")
	}
}
