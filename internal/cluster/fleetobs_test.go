package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func obsTestConfig() FleetObsConfig {
	return FleetObsConfig{
		FleetChaosConfig: FleetChaosConfig{
			Cards: 8, StreamsPerCard: 2, Dur: 4 * sim.Second,
		},
	}
}

// obsArts lists every byte-compared observability artifact.
func obsArts(r *FleetObsResult) map[string]string {
	return map[string]string{
		"rollup":   r.Rollup,
		"timeline": r.Timeline,
		"topk":     r.TopK,
		"scrape":   r.ScrapeStats,
		"stitched": r.Stitched,
		"summary":  r.ObsSummary,
		// The underlying chaos artifacts must stay deterministic too.
		"chaos-miglog":  r.Chaos.MigLog,
		"chaos-table":   r.Chaos.Table,
		"chaos-summary": r.Chaos.Summary,
	}
}

// The full observability plane — scrape timing, timeline merge, rollups,
// epoch links, stitched traces — must be byte-identical across the
// monolithic reference and any worker count.
func TestFleetObsDeterminism(t *testing.T) {
	base := obsTestConfig()
	base.Monolithic = true
	ref := RunFleetObs(base)

	for _, workers := range []int{1, 4} {
		cfg := obsTestConfig()
		cfg.Workers = workers
		got := RunFleetObs(cfg)
		want, have := obsArts(ref), obsArts(got)
		for name := range want {
			if want[name] != have[name] {
				t.Errorf("workers=%d: artifact %q differs from monolithic reference\nmono:\n%s\nworkers:\n%s",
					workers, name, clip(want[name]), clip(have[name]))
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

// The scrape plane must actually move data in-band and never breach a card
// budget: replies are admission-tested before they are charged.
func TestFleetObsScrapeChargedNoBreach(t *testing.T) {
	res := RunFleetObs(obsTestConfig())
	if res.ScrapeReqs == 0 || res.ScrapeSamples == 0 {
		t.Fatalf("no scrape traffic: reqs=%d samples=%d", res.ScrapeReqs, res.ScrapeSamples)
	}
	if res.ObsBytes == 0 {
		t.Fatalf("scrape traffic not accounted")
	}
	if res.Breaches != 0 {
		t.Fatalf("scrape replies breached a card budget %d time(s)", res.Breaches)
	}
	if res.EventsShipped == 0 {
		t.Fatalf("no flight-recorder events rode the scrape plane")
	}
	// The chaos plan crashes a host, so the controller must have seen at
	// least one card go dark and the timeline must record it.
	if res.ScrapeDark == 0 {
		t.Fatalf("host crash never made a card scrape-dark")
	}
	for _, want := range []string{"scrape-dark", "domain-fault", "migrate"} {
		if !strings.Contains(res.Timeline, want) {
			t.Fatalf("timeline missing %q:\n%s", want, clip(res.Timeline))
		}
	}
	// The overhead line exists and in-band telemetry stays a sliver of the
	// media it shares links with.
	if !strings.Contains(res.ScrapeStats, "overhead=") {
		t.Fatalf("scrape accounting missing overhead line:\n%s", res.ScrapeStats)
	}
	if res.MediaBytes > 0 && res.ObsBytes*10 > res.MediaBytes {
		t.Fatalf("in-band obs bytes (%d) exceed 10%% of media bytes (%d)",
			res.ObsBytes, res.MediaBytes)
	}
}

// The default chaos plan live-migrates streams; their disk→wire→playout
// traces must stitch across the handoff via the recorded epoch links.
func TestFleetObsStitchesLiveMigration(t *testing.T) {
	res := RunFleetObs(obsTestConfig())
	if res.Chaos.LiveMigrations == 0 {
		t.Skipf("plan produced no live migrations (chaos draw)")
	}
	if res.Links == 0 {
		t.Fatalf("migrations committed but no span links recorded")
	}
	if res.StitchedLive == 0 {
		t.Fatalf("no live-migrated stream stitched to a full path:\n%s", clip(res.Stitched))
	}
	for _, want := range []string{"cursor contiguous", "full span: disk["} {
		if !strings.Contains(res.Stitched, want) {
			t.Fatalf("stitched artifact missing %q:\n%s", want, clip(res.Stitched))
		}
	}
}

// Under deterministic memory pressure the scrape plane degrades first:
// replies shed, the interval widens, and once pressure clears the full rate
// is restored — all without a single budget breach and with media flowing.
func TestFleetObsShedsUnderPressureThenRestores(t *testing.T) {
	cfg := obsTestConfig()
	// Quiet chaos: pressure is the only disturbance, so the shed/restore
	// cycle is isolated.
	cfg.HostCrashes, cfg.NetPartitions, cfg.RollingDrains = -1, -1, -1
	cfg.StressPct = 95
	cfg.StressAt = 1 * sim.Second
	cfg.StressDur = 1 * sim.Second
	res := RunFleetObs(cfg)
	if res.ScrapeSheds == 0 || res.Degrades == 0 {
		t.Fatalf("pressure never shed a scrape: sheds=%d degrades=%d",
			res.ScrapeSheds, res.Degrades)
	}
	if res.ScrapeSkips == 0 {
		t.Fatalf("degraded rung never skipped a scrape")
	}
	if res.Restores == 0 {
		t.Fatalf("full scrape rate never restored after pressure cleared")
	}
	if res.Breaches != 0 {
		t.Fatalf("shedding must prevent breaches, got %d", res.Breaches)
	}
	if res.Chaos.TotalRecv == 0 {
		t.Fatalf("media stopped flowing under scrape pressure")
	}
	for _, want := range []string{"scrape-degrade", "scrape-restore", "scrape shed"} {
		if !strings.Contains(res.Timeline, want) {
			t.Fatalf("timeline missing %q:\n%s", want, clip(res.Timeline))
		}
	}
}
