// Graceful degradation: when a stream's scheduler NI dies, its producer
// falls back to the host-resident DWCS — the paper's §4.2.3 configuration
// — so viewers keep receiving frames (at host-grade jitter) instead of
// nothing, and migrates back once the card recovers.
package host

import "repro/internal/dwcs"

// FailoverTarget is an EnqueueTarget that routes to Primary until told to
// fail over, then to Backup, and back again on restore. Producers keep
// injecting blindly; the switch is invisible to them.
type FailoverTarget struct {
	Primary EnqueueTarget // the scheduler NI path
	Backup  EnqueueTarget // the host-resident DWCS path

	// OnSwitch, if set, observes each transition (true = now on backup).
	OnSwitch func(toBackup bool)

	// ToPrimary/ToBackup count injection attempts per path; Switches
	// counts transitions.
	ToPrimary int64
	ToBackup  int64
	Switches  int64

	onBackup bool
}

// Enqueue implements EnqueueTarget, routing to the active path.
func (f *FailoverTarget) Enqueue(id int, p dwcs.Packet) error {
	if f.onBackup {
		f.ToBackup++
		return f.Backup.Enqueue(id, p)
	}
	f.ToPrimary++
	return f.Primary.Enqueue(id, p)
}

// FailToBackup switches injection to the backup path. Idempotent.
func (f *FailoverTarget) FailToBackup() {
	if f.onBackup {
		return
	}
	f.onBackup = true
	f.Switches++
	if f.OnSwitch != nil {
		f.OnSwitch(true)
	}
}

// RestorePrimary migrates injection back to the primary path. Idempotent.
func (f *FailoverTarget) RestorePrimary() {
	if !f.onBackup {
		return
	}
	f.onBackup = false
	f.Switches++
	if f.OnSwitch != nil {
		f.OnSwitch(false)
	}
}

// OnBackup reports whether injection currently flows to the backup.
func (f *FailoverTarget) OnBackup() bool { return f.onBackup }
