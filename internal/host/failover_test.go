package host

import (
	"errors"
	"testing"

	"repro/internal/dwcs"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/sim"
)

// recordTarget counts enqueues and can simulate a dead path.
type recordTarget struct {
	got  int64
	dead bool
}

func (r *recordTarget) Enqueue(id int, p dwcs.Packet) error {
	if r.dead {
		return errors.New("dead path")
	}
	r.got++
	return nil
}

func TestFailoverTargetRoutesAndMigratesBack(t *testing.T) {
	pri, bak := &recordTarget{}, &recordTarget{}
	var transitions []bool
	f := &FailoverTarget{Primary: pri, Backup: bak,
		OnSwitch: func(b bool) { transitions = append(transitions, b) }}

	for i := 0; i < 3; i++ {
		if err := f.Enqueue(1, dwcs.Packet{Bytes: 100}); err != nil {
			t.Fatal(err)
		}
	}
	f.FailToBackup()
	f.FailToBackup() // idempotent
	for i := 0; i < 5; i++ {
		if err := f.Enqueue(1, dwcs.Packet{Bytes: 100}); err != nil {
			t.Fatal(err)
		}
	}
	f.RestorePrimary()
	if err := f.Enqueue(1, dwcs.Packet{Bytes: 100}); err != nil {
		t.Fatal(err)
	}

	if pri.got != 4 || bak.got != 5 {
		t.Fatalf("primary=%d backup=%d, want 4/5", pri.got, bak.got)
	}
	if f.Switches != 2 || f.ToPrimary != 4 || f.ToBackup != 5 {
		t.Fatalf("switches=%d toPri=%d toBak=%d", f.Switches, f.ToPrimary, f.ToBackup)
	}
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
}

// TestProducerKeepsStreamingThroughFailover: a producer injecting through
// a FailoverTarget whose primary goes dead mid-run keeps delivering via
// the host-resident backup scheduler — the graceful-degradation path.
func TestProducerKeepsStreamingThroughFailover(t *testing.T) {
	b := newBench(t)
	T := 80 * sim.Millisecond
	if err := b.sched.AddStream(stream(1, T), "c1"); err != nil {
		t.Fatal(err)
	}
	pri := &recordTarget{}
	f := &FailoverTarget{Primary: pri, Backup: b.sched}
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 200, FPS: 30, GOPPattern: "IBB", MeanFrame: 1500, Seed: 9})
	p := StartProducer(b.eng, b.sys, f, ProducerConfig{
		Clip: clip, StreamID: 1, Every: 40 * sim.Millisecond,
		PerFrameCPU: 200 * sim.Microsecond, CPU: hostos.AnyCPU, Loop: true,
	})
	b.eng.At(2*sim.Second, func() {
		pri.dead = true
		f.FailToBackup()
	})
	b.eng.RunUntil(6 * sim.Second)
	p.Stop()
	if pri.got == 0 {
		t.Fatal("primary path never used before the fault")
	}
	if b.client.Received < 40 {
		t.Fatalf("client received %d frames via the backup, want ≥40", b.client.Received)
	}
	if p.Stalled != 0 {
		t.Fatalf("producer stalled %d times across the switch", p.Stalled)
	}
}
