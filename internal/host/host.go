// Package host implements the host-CPU-based DWCS configuration the paper
// compares against (§4.2.3): the same dwcs.Scheduler code, but running as a
// Solaris process bound to one CPU with `pbind`, paying system-call and
// context-switch costs, competing with web-server load in the hostos run
// queues, and transmitting through a dumb Intel 82557 NI.
//
// The host scheduler's CPU demand per decision is tiny (tens of µs on a
// 200–300 MHz processor), but every decision must *wait its turn* on the
// time-shared CPU. Under web load that queueing delays decisions past frame
// deadlines; DWCS then drops late packets of lossy streams — which is
// exactly the bandwidth collapse of Figure 7 and the queuing-delay blow-up
// of Figure 8. The NI-based scheduler of internal/nic never competes for
// the host CPU, which is Figures 9 and 10.
package host

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/dwcs"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// perDecisionSyscalls models the gettimeofday/poll traffic around each
// host-scheduler decision.
const perDecisionSyscalls = 3

// SchedulerConfig parameterizes the host-based scheduler process.
type SchedulerConfig struct {
	CPU            int // processor the process is bound to (pbind)
	Model          *cpu.Model
	Precedence     dwcs.Precedence
	WorkConserving bool
	EligibleEarly  sim.Time
	// DecisionOverheadCycles covers shared-memory synchronization and
	// library overhead per decision; 0 uses the value calibrated to the
	// ≈50 µs UltraSPARC figure the paper quotes.
	DecisionOverheadCycles int64
}

// DefaultHostDecisionOverhead reproduces the ≈50 µs quiescent scheduling
// overhead reported for the host-based DWCS on a 300 MHz UltraSPARC.
const DefaultHostDecisionOverhead = 14600

// Scheduler is the host-resident DWCS process.
type Scheduler struct {
	Sched *dwcs.Scheduler
	Meter *cpu.Meter

	// QDelay tracks queuing delay per stream (Figure 8).
	QDelay map[int]*stats.DelayTracker
	// Trace, when set, records dispatch/drop events.
	Trace *trace.Log
	// Sent/Dropped count outcomes.
	Sent    int64
	Dropped int64

	eng   *sim.Engine
	sys   *hostos.System
	cfg   SchedulerConfig
	stack netsim.StackProfile
	link  *netsim.Link
	lap   *cpu.Lap

	running bool      // a decision's CPU demand is queued or executing
	waitEv  sim.Event // pending paced wakeup
	dst     map[int]string

	tel       *telemetry.Registry
	telQDelay *telemetry.Histogram
}

// Instrument attaches a telemetry registry: the host scheduler's counters
// and queue-delay histogram join under the host component, dispatches record
// the frame's queue span, and meter charges are cycle-attributed.
func (h *Scheduler) Instrument(reg *telemetry.Registry) {
	if reg == nil || h.tel != nil {
		return
	}
	h.tel = reg
	h.Meter.Observe(reg.Prof)
	h.telQDelay = reg.HistogramMetric("host", "queue_delay_ms",
		"enqueue-to-dispatch delay per frame on the host scheduler (milliseconds)", nil)
	reg.CounterFunc("host", "frames_sent_total",
		"frames the host scheduler dispatched", func() int64 { return h.Sent })
	reg.CounterFunc("host", "frames_dropped_total",
		"frames the host scheduler dropped for missed deadlines", func() int64 { return h.Dropped })
	reg.CounterFunc("host", "decisions_total",
		"host scheduling decisions made", func() int64 { return h.Sched.TotalDecisions })
}

// NewScheduler creates the process. link is the 82557 NI the host transmits
// through (frames flow host memory → I/O bus → NI → wire; the I/O-bus DMA
// is folded into the stack cost, as it is pipelined by the NI).
func NewScheduler(eng *sim.Engine, sys *hostos.System, link *netsim.Link, cfg SchedulerConfig) *Scheduler {
	if cfg.Model == nil {
		cfg.Model = cpu.UltraSparc300()
	}
	if cfg.DecisionOverheadCycles == 0 {
		cfg.DecisionOverheadCycles = DefaultHostDecisionOverhead
	}
	meter := cpu.NewMeter(cfg.Model)
	meter.Arith = cpu.NativeFP // host builds use the FPU
	h := &Scheduler{
		Meter:  meter,
		QDelay: make(map[int]*stats.DelayTracker),
		eng:    eng,
		sys:    sys,
		cfg:    cfg,
		stack:  netsim.HostStack(),
		link:   link,
		dst:    make(map[int]string),
	}
	h.Sched = dwcs.New(dwcs.Config{
		Precedence:          cfg.Precedence,
		WorkConserving:      cfg.WorkConserving,
		EligibleEarly:       cfg.EligibleEarly,
		Meter:               meter,
		Now:                 eng.Now,
		DecisionOverhead:    cfg.DecisionOverheadCycles,
		MaxDropsPerDecision: 1, // one head packet per scheduling pass
	})
	h.lap = cpu.StartLap(meter)
	return h
}

// AddStream registers a stream delivered to client address dst.
func (h *Scheduler) AddStream(spec dwcs.StreamSpec, dst string) error {
	if err := h.Sched.AddStream(spec); err != nil {
		return err
	}
	h.QDelay[spec.ID] = &stats.DelayTracker{Name: spec.Name}
	h.dst[spec.ID] = dst
	return nil
}

// Enqueue queues a packet (producer side) and pokes the process.
func (h *Scheduler) Enqueue(id int, p dwcs.Packet) error {
	if err := h.Sched.Enqueue(id, p); err != nil {
		return err
	}
	h.pump()
	return nil
}

// QueuedBytes reports the payload bytes resident in the host scheduler's
// rings. The host has no 4 MB card constraint — this is the number that grows
// without bound under overload, the contrast claim 4 draws against the NI.
func (h *Scheduler) QueuedBytes() int64 { return h.Sched.QueuedBytes() }

// wakeupSlice is the CPU demand of getting the woken scheduler process back
// onto the processor and through its decision code — what the process must
// *queue for* before the scheduling decision executes. This queueing is the
// degradation mechanism of §4.2.3: under load the decision runs late, the
// head frame has missed its deadline by then, and DWCS drops it.
const wakeupSlice = 120 * sim.Microsecond

// pump advances the process state machine: at most one decision's CPU
// demand is outstanding at a time, mirroring the single scheduler process.
// Every decision first queues for the bound CPU; Schedule() executes only
// once the process actually runs.
func (h *Scheduler) pump() {
	if h.running {
		return
	}
	h.waitEv.Cancel()
	h.running = true
	h.sys.Submit(h.cfg.CPU, wakeupSlice, func() {
		d := h.Sched.Schedule()
		h.Meter.Syscall(perDecisionSyscalls)
		demand := h.lap.Take()
		h.Dropped += int64(len(d.Dropped))
		for _, p := range d.Dropped {
			h.Trace.Record(trace.KindDrop, "host/dwcs", p.StreamID, p.Seq, "deadline missed")
		}
		switch {
		case d.Packet != nil:
			p := d.Packet
			// Per-frame protocol work also competes for the bound CPU.
			h.sys.Submit(h.cfg.CPU, demand+h.stack.Tx, func() {
				h.running = false
				if t := h.QDelay[p.StreamID]; t != nil {
					t.Record(h.eng.Now() - p.Enqueued)
				}
				if h.tel != nil {
					h.tel.Span(p.StreamID, p.Seq, telemetry.StageQueue, "host/dwcs", p.Enqueued, h.eng.Now())
					h.telQDelay.Observe((h.eng.Now() - p.Enqueued).Milliseconds())
				}
				h.Sent++
				h.Trace.Recordf(trace.KindDispatch, "host/dwcs", p.StreamID, p.Seq,
					"qdelay=%v", h.eng.Now()-p.Enqueued)
				if h.link != nil {
					h.link.Send(&netsim.Packet{
						Src:        "host",
						Dst:        h.dst[p.StreamID],
						StreamID:   p.StreamID,
						Seq:        p.Seq,
						Bytes:      p.Bytes,
						Enqueued:   p.Enqueued,
						Deadline:   p.Deadline,
						Dispatched: h.eng.Now(),
					}, nil)
				}
				h.pump()
			})
		case d.WaitUntil > 0:
			h.running = false
			if h.eng.Now() >= d.WaitUntil {
				h.pump()
				return
			}
			h.waitEv = h.eng.At(d.WaitUntil, func() {
				h.pump()
			})
		case len(d.Dropped) > 0:
			h.running = false
			h.pump()
		default:
			h.running = false
			// Idle: the next Enqueue pumps again.
		}
	})
}

// Producer injects segmented MPEG frames into a host or NI scheduler at a
// fixed rate, modelling the paper's MPEG segmentation program running as an
// application thread. Each injection costs a little CPU on the host (read
// from the filesystem cache plus segmentation work).
type Producer struct {
	Injected int64
	Stalled  int64

	stop func()
}

// EnqueueTarget abstracts where producers inject (host scheduler or a
// DVCM/NI extension).
type EnqueueTarget interface {
	Enqueue(id int, p dwcs.Packet) error
}

// ProducerConfig drives one producer.
type ProducerConfig struct {
	Clip        *mpeg.Clip
	StreamID    int
	Every       sim.Time // injection period
	PerFrameCPU sim.Time // host CPU per *mean-size* frame; scaled by frame size
	CPU         int      // hostos CPU for that work, or hostos.AnyCPU
	Loop        bool     // cycle through the clip forever
}

// StartProducer begins injecting into target until Stop.
func StartProducer(eng *sim.Engine, sys *hostos.System, target EnqueueTarget, cfg ProducerConfig) *Producer {
	if cfg.Every <= 0 {
		panic("host: producer period must be positive")
	}
	p := &Producer{}
	i := 0
	p.stop = eng.Every(cfg.Every, func() {
		if i >= len(cfg.Clip.Frames) {
			if !cfg.Loop {
				p.stop()
				return
			}
			i = 0
		}
		f := cfg.Clip.Frames[i]
		work := func() {
			err := target.Enqueue(cfg.StreamID, dwcs.Packet{Bytes: f.Size, Offset: f.Offset})
			if err != nil {
				p.Stalled++ // ring full: frame dropped at the producer
				return
			}
			p.Injected++
		}
		if cfg.PerFrameCPU > 0 && sys != nil {
			// Segmentation + copy cost scales with frame size (I frames
			// cost several times what B frames do).
			mean := cfg.Clip.MeanFrameSize()
			d := cfg.PerFrameCPU
			if mean > 0 {
				d = sim.Time(int64(d) * f.Size / mean)
			}
			sys.Submit(cfg.CPU, d, work)
		} else {
			work()
		}
		i++
	})
	return p
}

// Stop halts the producer.
func (p *Producer) Stop() {
	if p.stop != nil {
		p.stop()
		p.stop = nil
	}
}

// String summarizes the producer.
func (p *Producer) String() string {
	return fmt.Sprintf("injected=%d stalled=%d", p.Injected, p.Stalled)
}
