package host

import (
	"testing"

	"repro/internal/dwcs"
	"repro/internal/fixed"
	"repro/internal/hostos"
	"repro/internal/mpeg"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/webload"
)

// bench wires a 2-CPU host with a scheduler process and one client.
type bench struct {
	eng    *sim.Engine
	sys    *hostos.System
	sched  *Scheduler
	client *netsim.Client
}

func newBench(t *testing.T) *bench {
	t.Helper()
	eng := sim.NewEngine(11)
	sys := hostos.New(eng, 2, 10*sim.Millisecond)
	client := netsim.NewClient(eng, "c1")
	sw := netsim.NewSwitch(eng, "sw", 90*sim.Microsecond)
	sw.Attach("c1", netsim.Fast100(eng, "sw-c1", client))
	link := netsim.Fast100(eng, "host-eth", sw)
	sched := NewScheduler(eng, sys, link, SchedulerConfig{
		CPU:           0,
		EligibleEarly: 40 * sim.Millisecond,
	})
	return &bench{eng: eng, sys: sys, sched: sched, client: client}
}

func stream(id int, period sim.Time) dwcs.StreamSpec {
	return dwcs.StreamSpec{ID: id, Name: "s", Period: period,
		Loss: fixed.New(1, 2), Lossy: true, BufCap: 64}
}

func TestHostSchedulerDeliversUnloaded(t *testing.T) {
	b := newBench(t)
	T := 80 * sim.Millisecond
	if err := b.sched.AddStream(stream(1, T), "c1"); err != nil {
		t.Fatal(err)
	}
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 60, FPS: 30, GOPPattern: "IBB", MeanFrame: 1500, Seed: 9})
	StartProducer(b.eng, b.sys, b.sched, ProducerConfig{
		Clip: clip, StreamID: 1, Every: 40 * sim.Millisecond,
		PerFrameCPU: 200 * sim.Microsecond, CPU: hostos.AnyCPU,
	})
	b.eng.RunUntil(8 * sim.Second)
	if b.client.Received < 50 {
		t.Fatalf("client received %d frames", b.client.Received)
	}
	if b.sched.Dropped > 3 {
		t.Fatalf("unloaded host dropped %d frames", b.sched.Dropped)
	}
}

func TestHostSchedulerDegradesUnderLoad(t *testing.T) {
	run := func(loadPct float64) (sent, dropped int64) {
		b := newBench(t)
		T := 80 * sim.Millisecond
		b.sched.AddStream(stream(1, T), "c1")
		clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 60, FPS: 30, GOPPattern: "IBB", MeanFrame: 1500, Seed: 9})
		StartProducer(b.eng, b.sys, b.sched, ProducerConfig{
			Clip: clip, StreamID: 1, Every: 40 * sim.Millisecond,
			PerFrameCPU: 200 * sim.Microsecond, CPU: hostos.AnyCPU, Loop: true,
		})
		if loadPct > 0 {
			g := webload.NewGenerator(b.eng, b.sys, webload.TargetUtilization("w", loadPct, 2))
			g.Start()
		}
		b.eng.RunUntil(20 * sim.Second)
		return b.sched.Sent, b.sched.Dropped
	}
	sent0, _ := run(0)
	sent60, dropped60 := run(60)
	if sent60 >= sent0 {
		t.Fatalf("60%% load did not reduce throughput: %d vs %d", sent60, sent0)
	}
	if dropped60 == 0 {
		t.Fatal("60% load should force deadline drops")
	}
}

func TestProducerLoopAndStop(t *testing.T) {
	b := newBench(t)
	b.sched.AddStream(stream(1, 10*sim.Millisecond), "c1")
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 5, FPS: 30, GOPPattern: "IBB", MeanFrame: 800, Seed: 2})
	p := StartProducer(b.eng, b.sys, b.sched, ProducerConfig{
		Clip: clip, StreamID: 1, Every: 5 * sim.Millisecond, Loop: true,
	})
	b.eng.RunUntil(200 * sim.Millisecond)
	if p.Injected <= 5 {
		t.Fatalf("loop producer injected only %d", p.Injected)
	}
	p.Stop()
	p.Stop() // idempotent
	before := p.Injected
	b.eng.RunUntil(400 * sim.Millisecond)
	if p.Injected != before {
		t.Fatal("producer kept injecting after Stop")
	}
}

func TestProducerWithoutLoopStops(t *testing.T) {
	b := newBench(t)
	b.sched.AddStream(stream(1, 10*sim.Millisecond), "c1")
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 7, FPS: 30, GOPPattern: "IBB", MeanFrame: 800, Seed: 2})
	p := StartProducer(b.eng, b.sys, b.sched, ProducerConfig{
		Clip: clip, StreamID: 1, Every: 5 * sim.Millisecond,
	})
	b.eng.RunUntil(sim.Second)
	if p.Injected != 7 {
		t.Fatalf("injected = %d, want 7 (one pass)", p.Injected)
	}
}

func TestProducerFullRingCountsStalls(t *testing.T) {
	b := newBench(t)
	sp := stream(1, sim.Second) // very slow service
	sp.BufCap = 2
	b.sched.AddStream(sp, "c1")
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 30, FPS: 30, GOPPattern: "IBB", MeanFrame: 800, Seed: 2})
	p := StartProducer(b.eng, b.sys, b.sched, ProducerConfig{
		Clip: clip, StreamID: 1, Every: sim.Millisecond,
	})
	b.eng.RunUntil(500 * sim.Millisecond)
	if p.Stalled == 0 {
		t.Fatal("expected stalls against a full 2-slot ring")
	}
}

func TestBadProducerPeriodPanics(t *testing.T) {
	b := newBench(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	StartProducer(b.eng, b.sys, b.sched, ProducerConfig{Every: 0})
}

func TestQueuingDelayRecorded(t *testing.T) {
	b := newBench(t)
	b.sched.AddStream(stream(1, 50*sim.Millisecond), "c1")
	clip, _ := mpeg.Generate(mpeg.GenConfig{Frames: 20, FPS: 30, GOPPattern: "IBB", MeanFrame: 1000, Seed: 2})
	StartProducer(b.eng, b.sys, b.sched, ProducerConfig{
		Clip: clip, StreamID: 1, Every: 10 * sim.Millisecond,
	})
	b.eng.RunUntil(3 * sim.Second)
	qd := b.sched.QDelay[1]
	if qd == nil || len(qd.Delays) == 0 {
		t.Fatal("no queuing delays recorded")
	}
	// Producers inject 5× faster than service: delays must grow.
	if qd.Max() < 100*sim.Millisecond {
		t.Fatalf("max queuing delay = %v, expected backlog growth", qd.Max())
	}
}
