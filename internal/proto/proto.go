// Package proto implements the wire protocols the NI's transmit path
// speaks: Ethernet II framing with FCS, IPv4 with header checksum and
// fragmentation, UDP with checksum, and the media framing layer that
// carries one MPEG frame across several datagrams and reassembles it at
// the client.
//
// The simulation charges protocol *time* in internal/netsim; this package
// supplies the actual *bytes* for the paths that touch a real network
// (cmd/dwcsd) and for tests that want to verify the encapsulation the
// paper's NI performs ("transfers of frames from host CPU memory to the
// network via the NI with suitable protocol encapsulation", §3.1).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Header sizes.
const (
	EthHeaderLen  = 14
	EthFCSLen     = 4
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	// EthMTU is the classic Ethernet payload limit.
	EthMTU = 1500
)

// EtherTypeIPv4 is the Ethernet type for IPv4.
const EtherTypeIPv4 = 0x0800

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// Errors returned by decoders.
var (
	ErrTooShort    = errors.New("proto: buffer too short")
	ErrBadFCS      = errors.New("proto: ethernet FCS mismatch")
	ErrBadChecksum = errors.New("proto: checksum mismatch")
	ErrBadVersion  = errors.New("proto: not IPv4")
	ErrNotUDP      = errors.New("proto: not UDP")
)

// MAC is an Ethernet address.
type MAC [6]byte

// String renders the MAC conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IP is an IPv4 address.
type IP [4]byte

// String renders dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// EthFrame is an Ethernet II frame.
type EthFrame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// MarshalEth serializes the frame with a trailing CRC-32 FCS.
func MarshalEth(f EthFrame) []byte {
	out := make([]byte, EthHeaderLen+len(f.Payload)+EthFCSLen)
	copy(out[0:6], f.Dst[:])
	copy(out[6:12], f.Src[:])
	binary.BigEndian.PutUint16(out[12:14], f.EtherType)
	copy(out[14:], f.Payload)
	fcs := crc32.ChecksumIEEE(out[:EthHeaderLen+len(f.Payload)])
	binary.BigEndian.PutUint32(out[EthHeaderLen+len(f.Payload):], fcs)
	return out
}

// UnmarshalEth parses and verifies a frame.
func UnmarshalEth(b []byte) (EthFrame, error) {
	if len(b) < EthHeaderLen+EthFCSLen {
		return EthFrame{}, ErrTooShort
	}
	body := b[:len(b)-EthFCSLen]
	want := binary.BigEndian.Uint32(b[len(b)-EthFCSLen:])
	if crc32.ChecksumIEEE(body) != want {
		return EthFrame{}, ErrBadFCS
	}
	var f EthFrame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.EtherType = binary.BigEndian.Uint16(b[12:14])
	f.Payload = append([]byte(nil), body[EthHeaderLen:]...)
	return f, nil
}

// IPv4Header is the fixed 20-byte IPv4 header (no options).
type IPv4Header struct {
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	DontFrag   bool
	MoreFrags  bool
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   uint8
	Src, Dst   IP
}

// MarshalIPv4 serializes header+payload, computing the header checksum.
func MarshalIPv4(h IPv4Header, payload []byte) []byte {
	h.TotalLen = uint16(IPv4HeaderLen + len(payload))
	out := make([]byte, IPv4HeaderLen+len(payload))
	out[0] = 0x45 // version 4, IHL 5
	out[1] = h.TOS
	binary.BigEndian.PutUint16(out[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(out[4:6], h.ID)
	flags := h.FragOffset & 0x1FFF
	if h.DontFrag {
		flags |= 0x4000
	}
	if h.MoreFrags {
		flags |= 0x2000
	}
	binary.BigEndian.PutUint16(out[6:8], flags)
	out[8] = h.TTL
	out[9] = h.Protocol
	copy(out[12:16], h.Src[:])
	copy(out[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(out[10:12], Checksum(out[:IPv4HeaderLen]))
	copy(out[IPv4HeaderLen:], payload)
	return out
}

// UnmarshalIPv4 parses and verifies a packet, returning header and payload.
func UnmarshalIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, ErrTooShort
	}
	if b[0]>>4 != 4 || b[0]&0x0F != 5 {
		return IPv4Header{}, nil, ErrBadVersion
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return IPv4Header{}, nil, fmt.Errorf("%w: ipv4 header", ErrBadChecksum)
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(h.TotalLen) > len(b) {
		return IPv4Header{}, nil, ErrTooShort
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	flags := binary.BigEndian.Uint16(b[6:8])
	h.DontFrag = flags&0x4000 != 0
	h.MoreFrags = flags&0x2000 != 0
	h.FragOffset = flags & 0x1FFF
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, append([]byte(nil), b[IPv4HeaderLen:h.TotalLen]...), nil
}

// Checksum is the RFC 1071 Internet checksum (one's-complement sum of
// 16-bit words, complemented).
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// UDPHeader is the 8-byte UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// MarshalUDP serializes header+payload with the pseudo-header checksum.
func MarshalUDP(h UDPHeader, src, dst IP, payload []byte) []byte {
	out := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(out[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], h.DstPort)
	binary.BigEndian.PutUint16(out[4:6], uint16(len(out)))
	copy(out[UDPHeaderLen:], payload)
	binary.BigEndian.PutUint16(out[6:8], udpChecksum(out, src, dst))
	return out
}

func udpChecksum(seg []byte, src, dst IP) uint16 {
	pseudo := make([]byte, 12+len(seg))
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoUDP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	copy(pseudo[12:], seg)
	ck := Checksum(pseudo)
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted as all ones
	}
	return ck
}

// UnmarshalUDP parses and verifies a segment given the IP endpoints.
func UnmarshalUDP(b []byte, src, dst IP) (UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, ErrTooShort
	}
	length := binary.BigEndian.Uint16(b[4:6])
	if int(length) > len(b) || length < UDPHeaderLen {
		return UDPHeader{}, nil, ErrTooShort
	}
	seg := append([]byte(nil), b[:length]...)
	got := binary.BigEndian.Uint16(seg[6:8])
	if got != 0 { // checksum 0 = disabled
		binary.BigEndian.PutUint16(seg[6:8], 0)
		want := udpChecksum(seg, src, dst)
		if got != want {
			return UDPHeader{}, nil, fmt.Errorf("%w: udp", ErrBadChecksum)
		}
	}
	return UDPHeader{
		SrcPort: binary.BigEndian.Uint16(seg[0:2]),
		DstPort: binary.BigEndian.Uint16(seg[2:4]),
	}, seg[UDPHeaderLen:], nil
}
